#include "mech/vickrey.hpp"

namespace dmw::mech {

VickreyOutcome run_vickrey(const std::vector<Cost>& bids) {
  DMW_REQUIRE_MSG(bids.size() >= 2, "Vickrey auction needs >= 2 bidders");
  VickreyOutcome out;
  out.winner = 0;
  out.first_price = bids[0];
  for (std::size_t i = 1; i < bids.size(); ++i) {
    if (bids[i] < out.first_price) {
      out.first_price = bids[i];
      out.winner = i;
    }
  }
  bool have_second = false;
  for (std::size_t i = 0; i < bids.size(); ++i) {
    if (i == out.winner) continue;
    if (!have_second || bids[i] < out.second_price) {
      out.second_price = bids[i];
      have_second = true;
    }
    if (bids[i] == out.first_price) out.tie = true;
  }
  return out;
}

}  // namespace dmw::mech
