#include "mech/problem.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace dmw::mech {

BidSet::BidSet(std::vector<Cost> values) : values_(std::move(values)) {
  DMW_REQUIRE_MSG(!values_.empty(), "bid set must be non-empty");
  DMW_REQUIRE_MSG(values_.front() > 0, "bids must be positive (paper: 0 < w1)");
  for (std::size_t i = 1; i < values_.size(); ++i) {
    DMW_REQUIRE_MSG(values_[i] > values_[i - 1],
                    "bid set must be strictly increasing");
  }
}

BidSet BidSet::iota(Cost k) {
  DMW_REQUIRE(k >= 1);
  std::vector<Cost> v(k);
  std::iota(v.begin(), v.end(), Cost{1});
  return BidSet(std::move(v));
}

bool BidSet::contains(Cost v) const {
  return std::binary_search(values_.begin(), values_.end(), v);
}

std::size_t BidSet::index_of(Cost v) const {
  const auto it = std::lower_bound(values_.begin(), values_.end(), v);
  DMW_REQUIRE_MSG(it != values_.end() && *it == v, "value not in bid set");
  return static_cast<std::size_t>(it - values_.begin());
}

Cost BidSet::round_up(Cost v) const {
  const auto it = std::lower_bound(values_.begin(), values_.end(), v);
  return it == values_.end() ? values_.back() : *it;
}

void SchedulingInstance::validate() const {
  DMW_REQUIRE(n >= 1 && m >= 1);
  DMW_REQUIRE(cost.size() == n);
  for (const auto& row : cost) {
    DMW_REQUIRE(row.size() == m);
    for (Cost c : row) DMW_REQUIRE_MSG(c > 0, "costs must be positive");
  }
}

std::string SchedulingInstance::describe() const {
  std::ostringstream os;
  os << "instance n=" << n << " m=" << m << "\n";
  for (std::size_t i = 0; i < n; ++i) {
    os << "  A" << (i + 1) << ":";
    for (std::size_t j = 0; j < m; ++j) os << " " << cost[i][j];
    os << "\n";
  }
  return os.str();
}

BidMatrix truthful_bids(const SchedulingInstance& instance) {
  return instance.cost;
}

SchedulingInstance make_uniform_instance(std::size_t n, std::size_t m,
                                         const BidSet& bids,
                                         dmw::Xoshiro256ss& rng) {
  SchedulingInstance instance;
  instance.n = n;
  instance.m = m;
  instance.cost.assign(n, std::vector<Cost>(m));
  for (auto& row : instance.cost)
    for (auto& c : row)
      c = bids.values()[rng.below(bids.size())];
  instance.validate();
  return instance;
}

SchedulingInstance make_machine_correlated_instance(std::size_t n,
                                                    std::size_t m,
                                                    const BidSet& bids,
                                                    dmw::Xoshiro256ss& rng) {
  SchedulingInstance instance;
  instance.n = n;
  instance.m = m;
  instance.cost.assign(n, std::vector<Cost>(m));
  const std::size_t k = bids.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Speed class shifts the machine's band within W; bands are at least
    // two values wide and overlap, so per-task winners vary across
    // machines instead of collapsing onto one globally-fastest machine.
    const std::size_t band = rng.below(3);  // 0 fast, 1 medium, 2 slow
    const std::size_t lo = band * k / 4;
    const std::size_t width = std::max<std::size_t>(2, (k + 1) / 2);
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t idx = std::min(k - 1, lo + rng.below(width));
      instance.cost[i][j] = bids.values()[idx];
    }
  }
  instance.validate();
  return instance;
}

SchedulingInstance make_task_correlated_instance(std::size_t n, std::size_t m,
                                                 const BidSet& bids,
                                                 dmw::Xoshiro256ss& rng) {
  SchedulingInstance instance;
  instance.n = n;
  instance.m = m;
  instance.cost.assign(n, std::vector<Cost>(m));
  const std::size_t k = bids.size();
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t base = rng.below(k);
    for (std::size_t i = 0; i < n; ++i) {
      // Perturb the intrinsic size by at most one index either way.
      const std::size_t jitter = rng.below(3);  // 0,1,2 -> -1,0,+1
      std::size_t idx = base;
      if (jitter == 0 && idx > 0) --idx;
      if (jitter == 2 && idx + 1 < k) ++idx;
      instance.cost[i][j] = bids.values()[idx];
    }
  }
  instance.validate();
  return instance;
}

SchedulingInstance make_zipf_instance(std::size_t n, std::size_t m,
                                      const BidSet& bids,
                                      dmw::Xoshiro256ss& rng) {
  SchedulingInstance instance;
  instance.n = n;
  instance.m = m;
  instance.cost.assign(n, std::vector<Cost>(m));
  const std::size_t k = bids.size();
  // Zipf over the k size classes: P(class c) ~ 1/(c+1).
  std::vector<double> cumulative(k);
  double total = 0;
  for (std::size_t c = 0; c < k; ++c) {
    total += 1.0 / static_cast<double>(c + 1);
    cumulative[c] = total;
  }
  for (std::size_t j = 0; j < m; ++j) {
    const double u = rng.real() * total;
    std::size_t base = k - 1;
    for (std::size_t c = 0; c < k; ++c) {
      if (u <= cumulative[c]) {
        base = c;
        break;
      }
    }
    // Zipf classes are light-first; map class 0 to the SMALL end of W.
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t jitter = rng.below(3);  // -1, 0, +1 index
      std::size_t idx = base;
      if (jitter == 0 && idx > 0) --idx;
      if (jitter == 2 && idx + 1 < k) ++idx;
      instance.cost[i][j] = bids.values()[idx];
    }
  }
  instance.validate();
  return instance;
}

SchedulingInstance make_bimodal_instance(std::size_t n, std::size_t m,
                                         const BidSet& bids,
                                         double heavy_fraction,
                                         dmw::Xoshiro256ss& rng) {
  DMW_REQUIRE(heavy_fraction >= 0.0 && heavy_fraction <= 1.0);
  SchedulingInstance instance;
  instance.n = n;
  instance.m = m;
  instance.cost.assign(n, std::vector<Cost>(m));
  const std::size_t k = bids.size();
  const std::size_t light_band = std::max<std::size_t>(1, k / 3);
  for (std::size_t j = 0; j < m; ++j) {
    const bool heavy = rng.chance(heavy_fraction);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = heavy
                                  ? k - 1 - rng.below(light_band)
                                  : rng.below(light_band);
      instance.cost[i][j] = bids.values()[idx];
    }
  }
  instance.validate();
  return instance;
}

SchedulingInstance make_minwork_worst_case(std::size_t n, std::size_t m,
                                           const BidSet& bids) {
  SchedulingInstance instance;
  instance.n = n;
  instance.m = m;
  // Agent 1 is marginally cheaper on every task, so MinWork assigns it
  // everything; the optimum spreads tasks across all machines.
  const Cost cheap = bids.min();
  const Cost dear = bids.size() >= 2 ? bids.values()[1] : bids.min();
  instance.cost.assign(n, std::vector<Cost>(m, dear));
  for (std::size_t j = 0; j < m; ++j) instance.cost[0][j] = cheap;
  instance.validate();
  return instance;
}

}  // namespace dmw::mech
