#include "mech/truthful.hpp"

#include <algorithm>

namespace dmw::mech {

std::int64_t minwork_utility(const SchedulingInstance& instance,
                             const BidMatrix& bids, std::size_t agent) {
  const MinWorkOutcome outcome = run_minwork(bids);
  return utility(instance, outcome.schedule, agent, outcome.payments[agent]);
}

TruthfulnessReport check_truthfulness(const SchedulingInstance& instance,
                                      const BidSet& bids,
                                      const UtilityFn& utility_of,
                                      std::size_t joint_samples,
                                      dmw::Xoshiro256ss& rng) {
  instance.validate();
  TruthfulnessReport report;
  const BidMatrix truthful = truthful_bids(instance);

  for (std::size_t agent = 0; agent < instance.n; ++agent) {
    const std::int64_t base = utility_of(truthful, agent);
    if (base < 0) report.voluntary = false;

    // Exhaustive single-task misreports.
    for (std::size_t task = 0; task < instance.m; ++task) {
      for (Cost w : bids.values()) {
        if (w == truthful[agent][task]) continue;
        BidMatrix deviant = truthful;
        deviant[agent][task] = w;
        const std::int64_t u = utility_of(deviant, agent);
        ++report.deviations_tried;
        const std::int64_t gain = u - base;
        report.max_gain = std::max(report.max_gain, gain);
        if (gain > 0) {
          report.truthful = false;
          report.violations.push_back(
              DeviationRecord{agent, task, w, base, u});
        }
      }
    }

    // Random joint misreports.
    for (std::size_t s = 0; s < joint_samples; ++s) {
      BidMatrix deviant = truthful;
      bool changed = false;
      for (std::size_t task = 0; task < instance.m; ++task) {
        const Cost w = bids.values()[rng.below(bids.size())];
        if (w != truthful[agent][task]) changed = true;
        deviant[agent][task] = w;
      }
      if (!changed) continue;
      const std::int64_t u = utility_of(deviant, agent);
      ++report.deviations_tried;
      const std::int64_t gain = u - base;
      report.max_gain = std::max(report.max_gain, gain);
      if (gain > 0) {
        report.truthful = false;
        report.violations.push_back(
            DeviationRecord{agent, instance.m, 0, base, u});
      }
    }
  }
  return report;
}

TruthfulnessReport check_minwork_truthfulness(
    const SchedulingInstance& instance, const BidSet& bids,
    std::size_t joint_samples, dmw::Xoshiro256ss& rng) {
  return check_truthfulness(
      instance, bids,
      [&](const BidMatrix& b, std::size_t agent) {
        return minwork_utility(instance, b, agent);
      },
      joint_samples, rng);
}

}  // namespace dmw::mech
