// Exact and heuristic makespan baselines.
//
// MinWork minimizes total work and is only an n-approximation for the
// makespan (paper §2.2); the approximation bench (A-approx in DESIGN.md)
// needs the true optimum and standard heuristics to compare against.
#pragma once

#include <cstdint>
#include <optional>

#include "mech/problem.hpp"
#include "mech/schedule.hpp"

namespace dmw::mech {

struct OptResult {
  Schedule schedule;
  std::uint64_t makespan = 0;
  std::uint64_t nodes_explored = 0;  ///< branch-and-bound search effort
};

/// Exact minimum makespan via depth-first branch-and-bound over task
/// assignments. Exponential in m; intended for m <= ~12 at small n.
OptResult optimal_makespan(const SchedulingInstance& instance);

/// Greedy list scheduling: assign each task (in index order) to the machine
/// whose completion time after the assignment is smallest.
OptResult greedy_makespan(const SchedulingInstance& instance);

/// LPT-style variant: order tasks by decreasing minimum cost before the
/// greedy pass; classic heuristic for makespan scheduling.
OptResult lpt_makespan(const SchedulingInstance& instance);

}  // namespace dmw::mech
