// Scheduling on RELATED machines — the paper's named future-work direction
// ("designing distributed versions of the centralized mechanism for
// scheduling on related machines").
//
// In the related model each machine has a single private parameter, its
// processing rate r_i (time per unit of work); task j has public size p_j
// and costs r_i * p_j on machine i. Related machines are therefore the
// rank-one special case of the unrelated model, and DMW applies directly
// once the cost products are discretized into the published bid set W.
//
// With unit-size tasks the embedding is exact (cost == rate, no rounding)
// and DMW inherits truthfulness verbatim; with general sizes the rounding
// into W can perturb incentives by up to one bid step — quantified by
// tests/test_related.cpp and discussed in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <vector>

#include "mech/minwork.hpp"
#include "mech/problem.hpp"

namespace dmw::mech {

struct RelatedInstance {
  /// Public task sizes (units of work).
  std::vector<std::uint32_t> sizes;
  /// Private per-agent rates: time per unit of work, values in W.
  std::vector<Cost> rates;

  std::size_t n() const { return rates.size(); }
  std::size_t m() const { return sizes.size(); }

  void validate() const {
    DMW_REQUIRE(n() >= 2 && m() >= 1);
    for (auto s : sizes) DMW_REQUIRE_MSG(s > 0, "task sizes must be positive");
    for (auto r : rates) DMW_REQUIRE_MSG(r > 0, "rates must be positive");
  }
};

/// Embed a related instance into the unrelated model:
/// cost[i][j] = round_up_W(rate_i * size_j).
/// `exact` (when non-null) is set to true iff no rounding occurred, i.e.
/// every product already lies in W — then all truthfulness guarantees carry
/// over exactly.
inline SchedulingInstance to_unrelated(const RelatedInstance& related,
                                       const BidSet& bids,
                                       bool* exact = nullptr) {
  related.validate();
  SchedulingInstance instance;
  instance.n = related.n();
  instance.m = related.m();
  instance.cost.assign(instance.n, std::vector<Cost>(instance.m));
  bool all_exact = true;
  for (std::size_t i = 0; i < instance.n; ++i) {
    for (std::size_t j = 0; j < instance.m; ++j) {
      const std::uint64_t product =
          static_cast<std::uint64_t>(related.rates[i]) * related.sizes[j];
      DMW_REQUIRE_MSG(product <= bids.max(),
                      "cost product exceeds the published bid set");
      const Cost rounded = bids.round_up(static_cast<Cost>(product));
      if (rounded != product) all_exact = false;
      instance.cost[i][j] = rounded;
    }
  }
  if (exact != nullptr) *exact = all_exact;
  return instance;
}

/// Unit-size related instance: every task has size 1, so the unrelated
/// embedding is exact and cost columns are identical (the adversarial shape
/// that drives MinWork's approximation ratio toward n).
inline RelatedInstance make_unit_related(std::vector<Cost> rates,
                                         std::size_t m_tasks) {
  RelatedInstance related;
  related.rates = std::move(rates);
  related.sizes.assign(m_tasks, 1);
  related.validate();
  return related;
}

/// Centralized MinWork on a related instance (via the embedding).
inline MinWorkOutcome run_related_minwork(const RelatedInstance& related,
                                          const BidSet& bids) {
  return run_minwork(to_unrelated(related, bids));
}

/// Lower bound on the optimal related-machines makespan:
/// total work / fastest rate spread over machines, and the largest single
/// task on the fastest machine.
inline double related_makespan_lower_bound(const RelatedInstance& related) {
  related.validate();
  double inv_rate_sum = 0;
  Cost fastest = related.rates[0];
  for (Cost r : related.rates) {
    inv_rate_sum += 1.0 / static_cast<double>(r);
    fastest = std::min(fastest, r);
  }
  std::uint64_t total = 0;
  std::uint32_t largest = 0;
  for (auto s : related.sizes) {
    total += s;
    largest = std::max(largest, s);
  }
  // Work split proportionally to speed cannot beat total / sum(1/r); and
  // the largest task must run somewhere, at best on the fastest machine.
  const double balanced = static_cast<double>(total) / inv_rate_sum;
  const double single =
      static_cast<double>(largest) * static_cast<double>(fastest);
  return std::max(single, balanced);
}

}  // namespace dmw::mech
