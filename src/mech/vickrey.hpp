// Sealed-bid Vickrey (second-price) auction on a vector of bids.
//
// MinWork "can be viewed as running a set of parallel and independent
// Vickrey auctions, one for each task" (paper §2.2); this is that auction.
// DMW uses the deterministic smallest-pseudonym tie-break (III.3), which we
// mirror here as smallest-index so the centralized and distributed outcomes
// are comparable.
#pragma once

#include <cstddef>
#include <vector>

#include "mech/problem.hpp"

namespace dmw::mech {

struct VickreyOutcome {
  std::size_t winner = 0;   ///< lowest bidder (smallest index on ties)
  Cost first_price = 0;     ///< the winning (lowest) bid
  Cost second_price = 0;    ///< lowest bid among the others = winner's payment
  bool tie = false;         ///< more than one bidder at first_price
};

/// Requires at least two bidders (a second price must exist).
VickreyOutcome run_vickrey(const std::vector<Cost>& bids);

}  // namespace dmw::mech
