// The centralized MinWork mechanism (Nisan & Ronen; paper Definition 5).
//
// Allocation: each task goes to the agent bidding the minimum time for it
// (smallest index on ties — see DESIGN.md). Payment (Eq. (1)): the winner of
// task j receives the second-lowest bid for j; an agent's total payment is
// the sum over its tasks. MinWork is truthful and an n-approximation of the
// optimal makespan.
//
// The implementation counts its elementary operations (bid comparisons and
// additions) so Table 1's Θ(mn) computational cost is measurable.
#pragma once

#include <cstdint>
#include <vector>

#include "mech/problem.hpp"
#include "mech/schedule.hpp"
#include "mech/vickrey.hpp"

namespace dmw::mech {

struct MinWorkOutcome {
  Schedule schedule;
  std::vector<std::uint64_t> payments;     ///< P_i per agent
  std::vector<VickreyOutcome> auctions;    ///< per-task auction results
  std::uint64_t comparisons = 0;           ///< elementary ops performed
  /// Messages a centralized run would exchange: each agent sends its m-value
  /// bid vector to the administrator, and the administrator returns each
  /// agent its allocation/payment (Θ(mn) communication; Thm. 11 Remark).
  std::uint64_t message_count = 0;
  std::uint64_t message_bytes = 0;
};

/// Run MinWork on a bid matrix (bids[i][j] = agent i's bid for task j).
MinWorkOutcome run_minwork(const BidMatrix& bids);

/// Convenience: run on the truthful bids of an instance.
MinWorkOutcome run_minwork(const SchedulingInstance& instance);

}  // namespace dmw::mech
