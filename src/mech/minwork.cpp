#include "mech/minwork.hpp"

namespace dmw::mech {

MinWorkOutcome run_minwork(const BidMatrix& bids) {
  DMW_REQUIRE_MSG(bids.size() >= 2, "MinWork needs >= 2 agents");
  const std::size_t n = bids.size();
  const std::size_t m = bids[0].size();
  DMW_REQUIRE(m >= 1);
  for (const auto& row : bids) DMW_REQUIRE(row.size() == m);

  MinWorkOutcome out;
  out.payments.assign(n, 0);
  std::vector<std::size_t> task_to_agent(m);

  std::vector<Cost> column(n);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = bids[i][j];
    const VickreyOutcome auction = run_vickrey(column);
    out.comparisons += 2 * (n - 1);  // first- and second-price scans
    task_to_agent[j] = auction.winner;
    out.payments[auction.winner] += auction.second_price;
    ++out.comparisons;  // payment accumulation
    out.auctions.push_back(auction);
  }
  out.schedule = Schedule(std::move(task_to_agent));

  // Communication accounting for the centralized model (Fig. 1): one
  // m-entry bid vector per agent inbound, one result message per agent
  // outbound. 4 bytes per bid plus a small header.
  out.message_count = 2 * n;
  out.message_bytes = n * (12 + 4 * m) + n * (12 + 16);
  return out;
}

MinWorkOutcome run_minwork(const SchedulingInstance& instance) {
  instance.validate();
  return run_minwork(truthful_bids(instance));
}

}  // namespace dmw::mech
