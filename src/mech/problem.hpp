// Scheduling on unrelated machines (paper §2.1).
//
// m independent tasks, n agents (machines); agent i processes task j in
// t_i^j time units. DMW requires discrete bids drawn from a published set
// W = {w_1 < ... < w_k} with 0 < w_1 and w_k bounded by the agent count
// (§3 Notation), so instances carry costs that are *values in W*.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dmw::mech {

using Cost = std::uint32_t;

/// The published discrete bid set W.
class BidSet {
 public:
  /// Values must be strictly increasing and positive.
  explicit BidSet(std::vector<Cost> values);

  /// The canonical choice {1, 2, ..., k}.
  static BidSet iota(Cost k);

  const std::vector<Cost>& values() const { return values_; }
  std::size_t size() const { return values_.size(); }
  Cost min() const { return values_.front(); }
  Cost max() const { return values_.back(); }
  bool contains(Cost v) const;

  /// Index of value v in the set; v must be a member.
  std::size_t index_of(Cost v) const;

  /// Smallest member >= v, clamped to max().
  Cost round_up(Cost v) const;

 private:
  std::vector<Cost> values_;
};

/// A problem instance: the true types t_i^j.
struct SchedulingInstance {
  std::size_t n = 0;  ///< agents (machines)
  std::size_t m = 0;  ///< tasks
  /// cost[i][j] = t_i^j, the true time for agent i to run task j.
  std::vector<std::vector<Cost>> cost;

  Cost at(std::size_t agent, std::size_t task) const {
    DMW_REQUIRE(agent < n && task < m);
    return cost[agent][task];
  }

  void validate() const;
  std::string describe() const;
};

/// A full bid matrix y_i^j (possibly != the true types).
using BidMatrix = std::vector<std::vector<Cost>>;

/// Bids equal to the true types (the truthful report).
BidMatrix truthful_bids(const SchedulingInstance& instance);

// ---- workload generators ---------------------------------------------------

/// Uniform: every t_i^j drawn independently and uniformly from W.
SchedulingInstance make_uniform_instance(std::size_t n, std::size_t m,
                                         const BidSet& bids,
                                         dmw::Xoshiro256ss& rng);

/// Machine-correlated: each machine has a speed class; fast machines draw
/// from the low end of W. Models heterogeneous clusters.
SchedulingInstance make_machine_correlated_instance(std::size_t n,
                                                    std::size_t m,
                                                    const BidSet& bids,
                                                    dmw::Xoshiro256ss& rng);

/// Task-correlated: each task has an intrinsic size; all machines see it
/// shifted by +-1 index in W. Models mostly-uniform hardware.
SchedulingInstance make_task_correlated_instance(std::size_t n, std::size_t m,
                                                 const BidSet& bids,
                                                 dmw::Xoshiro256ss& rng);

/// Adversarial for MinWork's approximation ratio: every agent quotes the
/// same cost for every task, so MinWork piles all tasks on one machine while
/// OPT spreads them (drives the makespan ratio toward n).
SchedulingInstance make_minwork_worst_case(std::size_t n, std::size_t m,
                                           const BidSet& bids);

/// Zipf-distributed task sizes (exponent ~1): a few heavy tasks, a long
/// tail of light ones — the classic shape of batch-queue traces. Machines
/// perturb the intrinsic size by at most one index of W.
SchedulingInstance make_zipf_instance(std::size_t n, std::size_t m,
                                      const BidSet& bids,
                                      dmw::Xoshiro256ss& rng);

/// Bimodal tasks: a `heavy_fraction` of tasks drawn from the top of W, the
/// rest from the bottom. Models mixed interactive/batch workloads.
SchedulingInstance make_bimodal_instance(std::size_t n, std::size_t m,
                                         const BidSet& bids,
                                         double heavy_fraction,
                                         dmw::Xoshiro256ss& rng);

}  // namespace dmw::mech
