#include "mech/schedule.hpp"

#include <algorithm>
#include <sstream>

namespace dmw::mech {

std::vector<std::size_t> Schedule::tasks_for(std::size_t agent) const {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < task_to_agent_.size(); ++j)
    if (task_to_agent_[j] == agent) out.push_back(j);
  return out;
}

std::uint64_t Schedule::load(const SchedulingInstance& instance,
                             std::size_t agent) const {
  DMW_REQUIRE(agent < instance.n);
  std::uint64_t total = 0;
  for (std::size_t j = 0; j < task_to_agent_.size(); ++j)
    if (task_to_agent_[j] == agent) total += instance.at(agent, j);
  return total;
}

std::uint64_t Schedule::makespan(const SchedulingInstance& instance) const {
  std::uint64_t best = 0;
  for (std::size_t i = 0; i < instance.n; ++i)
    best = std::max(best, load(instance, i));
  return best;
}

std::uint64_t Schedule::total_work(const SchedulingInstance& instance) const {
  std::uint64_t total = 0;
  for (std::size_t j = 0; j < task_to_agent_.size(); ++j)
    total += instance.at(task_to_agent_[j], j);
  return total;
}

void Schedule::validate(const SchedulingInstance& instance) const {
  DMW_REQUIRE_MSG(task_to_agent_.size() == instance.m,
                  "schedule covers wrong task count");
  for (std::size_t a : task_to_agent_)
    DMW_REQUIRE_MSG(a < instance.n, "task assigned to unknown agent");
}

std::string Schedule::describe() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t j = 0; j < task_to_agent_.size(); ++j) {
    if (j) os << ", ";
    os << "T" << (j + 1) << "->A" << (task_to_agent_[j] + 1);
  }
  os << "}";
  return os.str();
}

std::int64_t valuation(const SchedulingInstance& instance,
                       const Schedule& schedule, std::size_t agent) {
  return -static_cast<std::int64_t>(schedule.load(instance, agent));
}

std::int64_t utility(const SchedulingInstance& instance,
                     const Schedule& schedule, std::size_t agent,
                     std::uint64_t payment) {
  return static_cast<std::int64_t>(payment) +
         valuation(instance, schedule, agent);
}

}  // namespace dmw::mech
