// Empirical truthfulness and voluntary-participation checking
// (paper Definitions 3 and 4, Theorem 2).
//
// MinWork's utility is additive across tasks and the per-task auctions are
// independent, so a mechanism-wide profitable misreport exists iff a
// single-task profitable misreport exists; the checker sweeps every agent,
// every task and every alternative bid in W exhaustively, and additionally
// samples random joint (multi-task) misreports as a belt-and-braces check.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mech/minwork.hpp"
#include "mech/problem.hpp"
#include "support/rng.hpp"

namespace dmw::mech {

/// Utility of `agent` under true types when the mechanism ran on `bids`.
std::int64_t minwork_utility(const SchedulingInstance& instance,
                             const BidMatrix& bids, std::size_t agent);

struct DeviationRecord {
  std::size_t agent = 0;
  std::size_t task = 0;     ///< meaningful for single-task deviations
  Cost reported = 0;        ///< the misreported bid
  std::int64_t truthful_utility = 0;
  std::int64_t deviant_utility = 0;
  std::int64_t gain() const { return deviant_utility - truthful_utility; }
};

struct TruthfulnessReport {
  bool truthful = true;              ///< no deviation gained
  bool voluntary = true;             ///< truthful utility >= 0 for all agents
  std::size_t deviations_tried = 0;
  std::int64_t max_gain = 0;         ///< best gain over all deviations (<= 0)
  std::vector<DeviationRecord> violations;  ///< deviations with gain > 0
};

/// Exhaustive single-task misreports for all agents plus `joint_samples`
/// random whole-vector misreports per agent.
TruthfulnessReport check_minwork_truthfulness(
    const SchedulingInstance& instance, const BidSet& bids,
    std::size_t joint_samples, dmw::Xoshiro256ss& rng);

/// Generic variant used to test any mechanism that maps a bid matrix to
/// per-agent utilities under fixed true types (used end-to-end on DMW).
using UtilityFn =
    std::function<std::int64_t(const BidMatrix& bids, std::size_t agent)>;

TruthfulnessReport check_truthfulness(const SchedulingInstance& instance,
                                      const BidSet& bids,
                                      const UtilityFn& utility_of,
                                      std::size_t joint_samples,
                                      dmw::Xoshiro256ss& rng);

}  // namespace dmw::mech
