// Schedules and objectives (paper §2.1, §2.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mech/problem.hpp"

namespace dmw::mech {

/// A schedule is a partition of task indices across agents; we store the
/// inverse map (task -> agent) which is always a valid partition.
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::vector<std::size_t> task_to_agent)
      : task_to_agent_(std::move(task_to_agent)) {}

  std::size_t tasks() const { return task_to_agent_.size(); }
  std::size_t agent_for(std::size_t task) const {
    DMW_REQUIRE(task < task_to_agent_.size());
    return task_to_agent_[task];
  }

  /// S_i: the tasks assigned to `agent`.
  std::vector<std::size_t> tasks_for(std::size_t agent) const;

  /// Completion time of `agent` under true types.
  std::uint64_t load(const SchedulingInstance& instance,
                     std::size_t agent) const;

  /// C_max = max_i sum_{j in S_i} t_i^j.
  std::uint64_t makespan(const SchedulingInstance& instance) const;

  /// Total work = sum over all tasks of the assigned agent's true cost
  /// (the quantity MinWork actually minimizes).
  std::uint64_t total_work(const SchedulingInstance& instance) const;

  void validate(const SchedulingInstance& instance) const;
  std::string describe() const;

  friend bool operator==(const Schedule&, const Schedule&) = default;

 private:
  std::vector<std::size_t> task_to_agent_;
};

/// Agent valuation V_i(S, t_i) = -sum_{j in S_i} t_i^j (Def. 2).
std::int64_t valuation(const SchedulingInstance& instance,
                       const Schedule& schedule, std::size_t agent);

/// Utility U_i = P_i + V_i (Def. 2, item 4).
std::int64_t utility(const SchedulingInstance& instance,
                     const Schedule& schedule, std::size_t agent,
                     std::uint64_t payment);

}  // namespace dmw::mech
