#include "mech/opt.hpp"

#include <algorithm>
#include <numeric>

namespace dmw::mech {

namespace {

struct BnbState {
  const SchedulingInstance* instance;
  std::vector<std::size_t> order;        // tasks, hardest first
  std::vector<std::uint64_t> loads;
  std::vector<std::size_t> assignment;   // by original task index
  std::vector<std::size_t> best_assignment;
  std::uint64_t best = 0;                // current upper bound (exclusive)
  std::uint64_t nodes = 0;
  std::vector<Cost> min_cost;            // cheapest machine per task
  std::vector<std::uint64_t> suffix_min_sum;  // sum of min costs from depth d
  std::vector<Cost> suffix_min_max;           // max of min costs from depth d
  std::uint64_t assigned_sum = 0;
};

void bnb(BnbState& state, std::size_t depth) {
  ++state.nodes;
  const auto& instance = *state.instance;
  if (depth == instance.m) {
    const std::uint64_t makespan =
        *std::max_element(state.loads.begin(), state.loads.end());
    if (makespan < state.best) {
      state.best = makespan;
      state.best_assignment = state.assignment;
    }
    return;
  }
  const std::uint64_t current_max =
      *std::max_element(state.loads.begin(), state.loads.end());
  // Lower bounds: (1) the current maximum never decreases; (2) each
  // remaining task costs at least its global minimum somewhere, so the
  // average load is bounded below; (3) the hardest remaining task's
  // cheapest placement bounds the final makespan.
  const std::uint64_t average_bound =
      (state.assigned_sum + state.suffix_min_sum[depth] +
       static_cast<std::uint64_t>(instance.n) - 1) /
      static_cast<std::uint64_t>(instance.n);
  const std::uint64_t lower_bound =
      std::max({current_max, average_bound,
                static_cast<std::uint64_t>(state.suffix_min_max[depth])});
  if (lower_bound >= state.best) return;

  const std::size_t task = state.order[depth];
  for (std::size_t i = 0; i < instance.n; ++i) {
    const Cost cost = instance.at(i, task);
    const std::uint64_t new_load = state.loads[i] + cost;
    if (new_load >= state.best) continue;
    state.loads[i] = new_load;
    state.assigned_sum += cost;
    state.assignment[task] = i;
    bnb(state, depth + 1);
    state.loads[i] = new_load - cost;
    state.assigned_sum -= cost;
  }
}

OptResult greedy_in_order(const SchedulingInstance& instance,
                          const std::vector<std::size_t>& order) {
  std::vector<std::uint64_t> loads(instance.n, 0);
  std::vector<std::size_t> assignment(instance.m, 0);
  for (std::size_t task : order) {
    std::size_t best_agent = 0;
    std::uint64_t best_finish = loads[0] + instance.at(0, task);
    for (std::size_t i = 1; i < instance.n; ++i) {
      const std::uint64_t finish = loads[i] + instance.at(i, task);
      if (finish < best_finish) {
        best_finish = finish;
        best_agent = i;
      }
    }
    loads[best_agent] = best_finish;
    assignment[task] = best_agent;
  }
  OptResult out;
  out.schedule = Schedule(std::move(assignment));
  out.makespan = out.schedule.makespan(instance);
  return out;
}

std::vector<Cost> min_cost_per_task(const SchedulingInstance& instance) {
  std::vector<Cost> out(instance.m);
  for (std::size_t j = 0; j < instance.m; ++j) {
    Cost best = instance.at(0, j);
    for (std::size_t i = 1; i < instance.n; ++i)
      best = std::min(best, instance.at(i, j));
    out[j] = best;
  }
  return out;
}

}  // namespace

OptResult optimal_makespan(const SchedulingInstance& instance) {
  instance.validate();
  // Seed the bound with the better of the two heuristics so pruning bites
  // from the first node.
  OptResult seed = greedy_makespan(instance);
  const OptResult lpt_seed = lpt_makespan(instance);
  if (lpt_seed.makespan < seed.makespan) seed = lpt_seed;

  BnbState state;
  state.instance = &instance;
  state.min_cost = min_cost_per_task(instance);
  state.order.resize(instance.m);
  std::iota(state.order.begin(), state.order.end(), std::size_t{0});
  // Hardest-first ordering makes early bounds tight.
  std::stable_sort(state.order.begin(), state.order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return state.min_cost[a] > state.min_cost[b];
                   });
  state.suffix_min_sum.assign(instance.m + 1, 0);
  state.suffix_min_max.assign(instance.m + 1, 0);
  for (std::size_t d = instance.m; d-- > 0;) {
    const Cost c = state.min_cost[state.order[d]];
    state.suffix_min_sum[d] = state.suffix_min_sum[d + 1] + c;
    state.suffix_min_max[d] = std::max(state.suffix_min_max[d + 1], c);
  }
  state.loads.assign(instance.n, 0);
  state.assignment.assign(instance.m, 0);
  state.best = seed.makespan + 1;  // strict-improvement bound
  bnb(state, 0);

  OptResult out;
  out.nodes_explored = state.nodes;
  if (state.best_assignment.empty()) {
    // The heuristic seed was already optimal.
    out.schedule = seed.schedule;
    out.makespan = seed.makespan;
  } else {
    out.schedule = Schedule(state.best_assignment);
    out.makespan = state.best;
  }
  return out;
}

OptResult greedy_makespan(const SchedulingInstance& instance) {
  instance.validate();
  std::vector<std::size_t> order(instance.m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  return greedy_in_order(instance, order);
}

OptResult lpt_makespan(const SchedulingInstance& instance) {
  instance.validate();
  std::vector<std::size_t> order(instance.m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const auto min_cost = min_cost_per_task(instance);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return min_cost[a] > min_cost[b];
                   });
  return greedy_in_order(instance, order);
}

}  // namespace dmw::mech
