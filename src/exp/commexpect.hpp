// Closed-form honest-run communication expectations (Theorem 11 bookkeeping).
//
// For an honest run over the simulated star network, every ledger cell of
// net::SimNetwork's communication ledger (network.hpp) is determined exactly
// by the public parameters: which kinds flow, in which phase/round, from
// which sender, how many envelopes, and how many wire bytes each. This
// header spells those counts out as closed forms in (n, m, sigma, c) plus
// the per-task first prices, so tests and the T1-comm bench can assert the
// measured ledger *equals* the paper's cost model instead of eyeballing
// totals.
//
// Scope: the forms assume the fixed-width scalar codec (Group64's raw
// 8-byte scalars/elements; see net/serialize.hpp) and a delay-free network
// (no delivery injector), which is exactly the honest-measurement setup of
// exp/complexity.hpp. GroupBig's variable-length `big` encoding has no
// closed form, so there is deliberately no overload for it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dmw/messages.hpp"
#include "dmw/protocol.hpp"
#include "net/network.hpp"

namespace dmw::exp {

/// Everything the closed forms depend on. Build one by hand or with
/// comm_spec_for() below.
struct CommSpec {
  std::size_t n = 0;      ///< agents
  std::size_t m = 0;      ///< tasks
  std::size_t c = 0;      ///< max faulty (enters the disclosure quorum)
  std::size_t sigma = 0;  ///< degree bound w_k + c + 1 (commitment width)
  bool encrypt_channels = false;
  bool crash_tolerant = false;
  /// Winning bid per task; the III.3 disclosure count is y*_j + 1 (+c when
  /// crash tolerant). Taken from Outcome::first_prices.
  std::vector<mech::Cost> first_prices;
  /// Encoded width of one scalar/element; 8 for Group64's raw-u64 codec.
  std::size_t scalar_bytes = 8;
};

/// LEB128 length of `value` (net/serialize.hpp varint).
inline std::size_t varint_len(std::uint64_t value) {
  std::size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

/// Envelope framing billed by the cost model: from + to/round + kind.
inline constexpr std::size_t kEnvelopeOverhead = 12;

/// Wire size of one message of `kind` under `spec` (header + payload,
/// matching net::Envelope::wire_size over the codecs in dmw/messages.hpp).
inline std::uint64_t expected_wire_size(const CommSpec& spec,
                                        proto::MsgKind kind) {
  const std::uint64_t s = spec.scalar_bytes;
  std::uint64_t payload = 0;
  switch (kind) {
    case proto::MsgKind::kKeyExchange:
      payload = s;  // one group element
      break;
    case proto::MsgKind::kShares:
      // task + the four shares e, f, g, h; the AEAD layer wraps that in a
      // cleartext u32 nonce plus ciphertext||16-byte tag (dmw/agent.hpp).
      payload = 4 + 4 * s;
      if (spec.encrypt_channels) payload += 4 + 16;
      break;
    case proto::MsgKind::kCommitments:
      // task + the O, Q, R vectors, each sigma elements behind a varint.
      payload = 4 + 3 * (varint_len(spec.sigma) + spec.sigma * s);
      break;
    case proto::MsgKind::kLambdaPsi:
    case proto::MsgKind::kReducedLambdaPsi:
      payload = 4 + 2 * s;  // task + Lambda + Psi
      break;
    case proto::MsgKind::kWinnerShares:
      // task + the n received f-shares behind a varint.
      payload = 4 + varint_len(spec.n) + spec.n * s;
      break;
    case proto::MsgKind::kPaymentClaim:
      payload = varint_len(spec.n) + spec.n * 8;  // claimed P_i vector
      break;
    case proto::MsgKind::kAbort:
      payload = 8;  // never sent in an honest run
      break;
  }
  return kEnvelopeOverhead + payload;
}

/// Prescribed III.3 disclosure quorum for task j: the first y*_j + 1 alive
/// agents in pseudonym order, padded by c under crash tolerance so missing
/// disclosers cannot deadlock winner identification (dmw/agent.hpp).
inline std::size_t expected_disclosers(const CommSpec& spec, std::size_t task) {
  return static_cast<std::size_t>(spec.first_prices[task]) + 1 +
         (spec.crash_tolerant ? spec.c : 0);
}

/// The full expected ledger of an honest run, in CommKey order — one row per
/// (phase, round, kind, sender) cell, exactly as SimNetwork::comm_rows()
/// reports it. Rounds are the delay-free step indices of
/// ProtocolRunner::run(): keys fold in round 0, shares + commitments in
/// round 1, Lambda/Psi in round 2, disclosures in round 4, reduced
/// Lambda/Psi in round 6, payment claims in round 8.
inline std::vector<net::CommRow> expected_honest_comm(const CommSpec& spec) {
  std::vector<net::CommRow> rows;
  const auto phase_of = [](proto::Phase phase) {
    return static_cast<std::uint32_t>(phase);
  };
  const auto emit = [&](proto::Phase phase, std::uint64_t round,
                        proto::MsgKind kind, std::size_t sender,
                        std::uint64_t messages, std::uint64_t fanout) {
    if (messages == 0) return;
    const std::uint64_t wire = expected_wire_size(spec, kind);
    net::CommRow row;
    row.key = net::CommKey{phase_of(phase), round,
                           static_cast<std::uint32_t>(kind),
                           static_cast<net::AgentId>(sender)};
    row.phase_label = proto::to_string(phase);
    row.kind_name = net::comm_kind_name(static_cast<std::uint32_t>(kind));
    row.counts.messages = messages;
    row.counts.wire_bytes = messages * wire;
    row.counts.p2p_messages = messages * fanout;
    row.counts.p2p_bytes = messages * fanout * wire;
    rows.push_back(std::move(row));
  };

  const std::uint64_t n = spec.n;
  const std::uint64_t m = spec.m;
  const std::uint64_t broadcast = n > 1 ? n - 1 : 1;  // publish billing

  // Round 0: DH key publication, only when the AEAD layer is on.
  if (spec.encrypt_channels) {
    for (std::size_t i = 0; i < n; ++i)
      emit(proto::Phase::kBidding, 0, proto::MsgKind::kKeyExchange, i, 1,
           broadcast);
  }
  // Round 1: per task, each agent unicasts shares to the n-1 peers...
  for (std::size_t i = 0; i < n; ++i)
    emit(proto::Phase::kBidding, 1, proto::MsgKind::kShares, i, m * (n - 1),
         1);
  // ...and publishes one commitment vector per task.
  for (std::size_t i = 0; i < n; ++i)
    emit(proto::Phase::kBidding, 1, proto::MsgKind::kCommitments, i, m,
         broadcast);
  // Round 2: Lambda/Psi, one posting per (agent, task).
  for (std::size_t i = 0; i < n; ++i)
    emit(proto::Phase::kLambdaPsi, 2, proto::MsgKind::kLambdaPsi, i, m,
         broadcast);
  // Round 4: III.3 disclosures — agent k (pseudonym rank k+1) discloses for
  // task j iff k+1 <= y*_j + 1 (+c when crash tolerant).
  for (std::size_t k = 0; k < n; ++k) {
    std::uint64_t tasks_disclosed = 0;
    for (std::size_t j = 0; j < spec.m; ++j)
      if (k + 1 <= expected_disclosers(spec, j)) ++tasks_disclosed;
    emit(proto::Phase::kWinner, 4, proto::MsgKind::kWinnerShares, k,
         tasks_disclosed, broadcast);
  }
  // Round 6: winner-excluded Lambda/Psi, again one per (agent, task).
  for (std::size_t i = 0; i < n; ++i)
    emit(proto::Phase::kSecondPrice, 6, proto::MsgKind::kReducedLambdaPsi, i,
         m, broadcast);
  // Round 8: one payment-claim vector per agent.
  for (std::size_t i = 0; i < n; ++i)
    emit(proto::Phase::kPayments, 8, proto::MsgKind::kPaymentClaim, i, 1,
         broadcast);
  return rows;
}

/// Spec for the honest measurement run that produced `outcome`.
inline CommSpec comm_spec_for(
    const proto::PublicParams<dmw::num::Group64>& params,
    const proto::Outcome& outcome, const proto::RunConfig& config) {
  CommSpec spec;
  spec.n = params.n();
  spec.m = params.m();
  spec.c = params.c();
  spec.sigma = params.sigma();
  spec.encrypt_channels = config.encrypt_channels;
  spec.crash_tolerant = params.crash_tolerant();
  spec.first_prices = outcome.first_prices;
  return spec;
}

/// Collapse ledger rows to per-kind totals (kind name -> summed counts),
/// the granularity the T1-comm bench reports and gates.
inline std::map<std::string, net::CommCounts> comm_totals_by_kind(
    const std::vector<net::CommRow>& rows) {
  std::map<std::string, net::CommCounts> totals;
  for (const auto& row : rows) totals[row.kind_name] += row.counts;
  return totals;
}

/// Whole-ledger totals; equals TrafficStats' p2p-equivalent columns on the
/// p2p side when every send was recorded under the ledger.
inline net::CommCounts comm_grand_total(const std::vector<net::CommRow>& rows) {
  net::CommCounts total;
  for (const auto& row : rows) total += row.counts;
  return total;
}

}  // namespace dmw::exp
