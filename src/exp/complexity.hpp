// Complexity measurement harness (Table 1, Theorems 11 and 12).
//
// Runs DMW and centralized MinWork on identical instances, collecting
//   - point-to-point-equivalent message counts and bytes (Thm. 11),
//   - modular-operation counts and wall time (Thm. 12),
// across sweeps of n, m and the prime size log p, then fits power laws so
// the measured exponents can be compared against the claimed Θ(mn) vs
// Θ(mn^2) / O(mn^2 log p) shapes.
#pragma once

#include <vector>

#include "dmw/centralized.hpp"
#include "dmw/protocol.hpp"
#include "mech/minwork.hpp"
#include "numeric/opcount.hpp"
#include "support/stats.hpp"
#include "support/stopwatch.hpp"

namespace dmw::exp {

struct CostRow {
  std::size_t n = 0;
  std::size_t m = 0;
  unsigned p_bits = 0;

  // DMW (distributed), point-to-point equivalents.
  std::uint64_t dmw_messages = 0;
  std::uint64_t dmw_bytes = 0;
  std::uint64_t dmw_mod_ops = 0;   ///< modular mul+pow+inv count
  std::uint64_t dmw_mod_pows = 0;  ///< exponentiations only
  double dmw_seconds = 0.0;

  // MinWork (centralized).
  std::uint64_t mw_messages = 0;
  std::uint64_t mw_bytes = 0;
  std::uint64_t mw_ops = 0;  ///< bid comparisons/additions
  double mw_seconds = 0.0;
};

/// Run both mechanisms once on a fresh uniform instance.
template <dmw::num::GroupBackend G>
CostRow measure_costs(const proto::PublicParams<G>& params,
                      std::uint64_t instance_seed) {
  Xoshiro256ss rng(instance_seed);
  const auto instance =
      mech::make_uniform_instance(params.n(), params.m(), params.bid_set(), rng);

  CostRow row;
  row.n = params.n();
  row.m = params.m();
  row.p_bits = params.group().p_bits();

  {
    // The paper's cost model (Thms. 11-12) assumes physically private
    // channels; measure the protocol proper without the optional AEAD
    // layer. (Encryption overhead is reported separately in EXPERIMENTS.)
    proto::RunConfig config;
    config.encrypt_channels = false;
    dmw::num::OpCountScope ops;
    Stopwatch timer;
    const auto outcome = proto::run_honest_dmw(params, instance, config);
    row.dmw_seconds = timer.seconds();
    DMW_CHECK_MSG(!outcome.aborted, "honest run aborted during measurement");
    row.dmw_messages = outcome.traffic.p2p_equivalent_messages;
    row.dmw_bytes = outcome.traffic.p2p_equivalent_bytes;
    const auto delta = ops.delta();
    row.dmw_mod_ops = delta.mul + delta.pow + delta.inv;
    row.dmw_mod_pows = delta.pow;
  }
  {
    // Measured over the simulated star network (Fig. 1), not hand-counted.
    Stopwatch timer;
    const auto outcome =
        proto::run_centralized_minwork(mech::truthful_bids(instance));
    row.mw_seconds = timer.seconds();
    row.mw_messages = outcome.traffic.p2p_equivalent_messages;
    row.mw_bytes = outcome.traffic.p2p_equivalent_bytes;
    row.mw_ops = outcome.mechanism.comparisons;
  }
  return row;
}

/// Fit cost ~ C * x^k over a sweep where only one dimension varied.
struct ScalingFit {
  double exponent = 0.0;
  double r_squared = 0.0;
};

inline ScalingFit fit_scaling(const std::vector<double>& x,
                              const std::vector<double>& y) {
  const auto fit = fit_power_law(x, y);
  return ScalingFit{fit.slope, fit.r_squared};
}

}  // namespace dmw::exp
