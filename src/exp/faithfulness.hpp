// Faithfulness and voluntary-participation experiments
// (paper Theorems 4, 5, 8, 9).
//
// For a given instance, run the all-honest baseline, then re-run the
// protocol once per (deviation, deviator) pair with everyone else honest.
// DMW is empirically faithful iff no deviation ever yields the deviator more
// utility than its honest utility; it satisfies strong voluntary
// participation iff honest agents never end with negative utility no matter
// what the defectors do.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dmw/protocol.hpp"
#include "dmw/strategies.hpp"

namespace dmw::exp {

template <dmw::num::GroupBackend G>
using StrategyFactory = std::function<std::unique_ptr<proto::Strategy<G>>(
    std::size_t deviator, const G& group)>;

template <dmw::num::GroupBackend G>
struct NamedDeviation {
  std::string name;
  StrategyFactory<G> make;
};

/// The full catalogue from the Theorem 4 / Theorem 8 case analyses.
template <dmw::num::GroupBackend G>
std::vector<NamedDeviation<G>> deviation_catalogue(std::size_t n_agents) {
  using namespace proto;
  std::vector<NamedDeviation<G>> out;
  out.push_back({"misreport(+1)", [](std::size_t, const G&) {
                   return std::make_unique<MisreportStrategy<G>>(+1);
                 }});
  out.push_back({"misreport(-1)", [](std::size_t, const G&) {
                   return std::make_unique<MisreportStrategy<G>>(-1);
                 }});
  out.push_back({"corrupt-share", [n_agents](std::size_t deviator, const G&) {
                   return std::make_unique<CorruptShareStrategy<G>>(
                       (deviator + 1) % n_agents);
                 }});
  out.push_back({"withhold-share", [n_agents](std::size_t deviator, const G&) {
                   return std::make_unique<WithholdShareStrategy<G>>(
                       (deviator + 1) % n_agents);
                 }});
  out.push_back({"inconsistent-commitments", [](std::size_t, const G&) {
                   return std::make_unique<InconsistentCommitmentsStrategy<G>>();
                 }});
  out.push_back({"withhold-commitments", [](std::size_t, const G&) {
                   return std::make_unique<WithholdCommitmentsStrategy<G>>();
                 }});
  out.push_back({"bad-lambda", [](std::size_t, const G&) {
                   return std::make_unique<BadLambdaStrategy<G>>();
                 }});
  out.push_back({"compensated-lambda", [](std::size_t, const G& group) {
                   return std::make_unique<CompensatedLambdaStrategy<G>>(
                       group, 17);
                 }});
  out.push_back({"silent-lambda", [](std::size_t, const G&) {
                   return std::make_unique<SilentLambdaStrategy<G>>();
                 }});
  out.push_back({"withhold-disclosure", [](std::size_t, const G&) {
                   return std::make_unique<WithholdDisclosureStrategy<G>>();
                 }});
  out.push_back({"corrupt-disclosure", [](std::size_t, const G&) {
                   return std::make_unique<CorruptDisclosureStrategy<G>>();
                 }});
  out.push_back({"eager-disclosure", [](std::size_t, const G&) {
                   return std::make_unique<EagerDisclosureStrategy<G>>();
                 }});
  out.push_back({"bad-reduced-lambda", [](std::size_t, const G&) {
                   return std::make_unique<BadReducedLambdaStrategy<G>>();
                 }});
  out.push_back({"greedy-payment", [](std::size_t deviator, const G&) {
                   return std::make_unique<GreedyPaymentStrategy<G>>(deviator);
                 }});
  out.push_back({"silent-payment", [](std::size_t, const G&) {
                   return std::make_unique<SilentPaymentStrategy<G>>();
                 }});
  return out;
}

struct DeviationResult {
  std::string strategy;
  std::size_t deviator = 0;
  bool aborted = false;
  proto::AbortReason reason = proto::AbortReason::kNone;
  std::int64_t honest_utility = 0;   ///< deviator's utility when honest
  std::int64_t deviant_utility = 0;  ///< deviator's utility when deviating
  /// Minimum utility over the *honest* agents in the deviant run; strong
  /// voluntary participation requires this to be >= 0.
  std::int64_t min_honest_bystander_utility = 0;

  bool gained() const { return deviant_utility > honest_utility; }
};

struct FaithfulnessReport {
  bool faithful = true;               ///< no deviation gained
  bool strong_voluntary = true;       ///< no honest bystander lost
  std::vector<DeviationResult> results;
  proto::Outcome honest_outcome;
};

/// Run the whole deviation suite on one instance.
template <dmw::num::GroupBackend G>
FaithfulnessReport run_faithfulness_suite(
    const proto::PublicParams<G>& params,
    const mech::SchedulingInstance& instance,
    proto::RunConfig config = proto::RunConfig{}) {
  FaithfulnessReport report;
  report.honest_outcome = proto::run_honest_dmw(params, instance, config);
  DMW_CHECK_MSG(!report.honest_outcome.aborted,
                "honest baseline must not abort");

  const auto catalogue = deviation_catalogue<G>(params.n());
  for (const auto& deviation : catalogue) {
    for (std::size_t deviator = 0; deviator < params.n(); ++deviator) {
      auto deviant_strategy = deviation.make(deviator, params.group());
      proto::HonestStrategy<G> honest;
      std::vector<proto::Strategy<G>*> strategies(params.n(), &honest);
      strategies[deviator] = deviant_strategy.get();
      proto::ProtocolRunner<G> runner(params, instance, std::move(strategies),
                                      config);
      const auto outcome = runner.run();

      DeviationResult result;
      result.strategy = deviation.name;
      result.deviator = deviator;
      result.aborted = outcome.aborted;
      if (outcome.abort_record) result.reason = outcome.abort_record->reason;
      result.honest_utility =
          report.honest_outcome.utility(instance, deviator);
      result.deviant_utility = outcome.utility(instance, deviator);
      result.min_honest_bystander_utility = 0;
      for (std::size_t i = 0; i < params.n(); ++i) {
        if (i == deviator) continue;
        result.min_honest_bystander_utility =
            std::min(result.min_honest_bystander_utility,
                     outcome.utility(instance, i));
      }
      if (result.gained()) report.faithful = false;
      if (result.min_honest_bystander_utility < 0)
        report.strong_voluntary = false;
      report.results.push_back(std::move(result));
    }
  }
  return report;
}

}  // namespace dmw::exp
