// Repeated-execution experiments (paper, Remark after Theorem 10).
//
// "The knowledge of first and second-highest bid can be exploited only if
// the same set of jobs is scheduled repeatedly using repeated executions of
// DMW." This harness quantifies both sides of that remark:
//
//   1. *Unilateral* adaptive bidding based on the revealed prices gains
//      nothing: second-price auctions are strategyproof round by round, so
//      a lone price-learner can at best match truth-telling.
//
//   2. A *coalition* (the repeat winner plus the agent it learned to be the
//      price-setter) can exploit the revelations: once the winner knows who
//      sets its price, the accomplice inflates its bid to the top of W and
//      the winner's payment — extracted from the payment infrastructure —
//      rises every round. This is the concrete risk the remark warns about.
//
// Rounds use the centralized MinWork auctions; DMW computes the identical
// outcome (established by the protocol tests), and the information used by
// the adaptive bidders is exactly what DMW reveals: the winner, the first
// price and the second price of each task.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mech/minwork.hpp"

namespace dmw::exp {

/// What one round reveals about one task (DMW's intrinsic disclosures).
struct RevealedAuction {
  std::size_t winner = 0;
  mech::Cost first_price = 0;
  mech::Cost second_price = 0;
};

using RoundHistory = std::vector<std::vector<RevealedAuction>>;  // [round][task]

/// A bidding policy for repeated play: maps the public history to the next
/// round's bid vector for one agent.
class BiddingPolicy {
 public:
  virtual ~BiddingPolicy() = default;
  virtual std::string name() const = 0;
  virtual std::vector<mech::Cost> next_bids(
      const std::vector<mech::Cost>& true_costs, const mech::BidSet& bids,
      std::size_t self, const RoundHistory& history) = 0;
};

/// Truth-telling every round (the suggested strategy).
class TruthfulPolicy : public BiddingPolicy {
 public:
  std::string name() const override { return "truthful"; }
  std::vector<mech::Cost> next_bids(const std::vector<mech::Cost>& costs,
                                    const mech::BidSet&, std::size_t,
                                    const RoundHistory&) override {
    return costs;
  }
};

/// Shade upward toward the revealed second price on tasks won last round
/// (the classic "can I charge more?" probe).
class ShadeToSecondPricePolicy : public BiddingPolicy {
 public:
  std::string name() const override { return "shade-to-second-price"; }
  std::vector<mech::Cost> next_bids(const std::vector<mech::Cost>& costs,
                                    const mech::BidSet& bids, std::size_t self,
                                    const RoundHistory& history) override {
    std::vector<mech::Cost> out = costs;
    if (history.empty()) return out;
    const auto& last = history.back();
    for (std::size_t j = 0; j < out.size(); ++j) {
      if (last[j].winner == self)
        out[j] = std::max(costs[j], bids.round_up(last[j].second_price));
    }
    return out;
  }
};

/// Undercut the revealed first price on tasks lost last round, ignoring own
/// costs (the "steal the job" probe; may win at a loss).
class UndercutFirstPricePolicy : public BiddingPolicy {
 public:
  std::string name() const override { return "undercut-first-price"; }
  std::vector<mech::Cost> next_bids(const std::vector<mech::Cost>& costs,
                                    const mech::BidSet& bids, std::size_t self,
                                    const RoundHistory& history) override {
    std::vector<mech::Cost> out = costs;
    if (history.empty()) return out;
    const auto& last = history.back();
    for (std::size_t j = 0; j < out.size(); ++j) {
      if (last[j].winner != self && last[j].first_price > bids.min()) {
        // Bid one step below the revealed winning price.
        const std::size_t idx = bids.index_of(last[j].first_price);
        out[j] = bids.values()[idx - 1];
      }
    }
    return out;
  }
};

/// Price-fixing accomplice: on tasks where its partner won and it was the
/// revealed price-setter (its bid equals the second price), it jumps to the
/// top of W so the partner's next payment is maximal.
class AccomplicePolicy : public BiddingPolicy {
 public:
  explicit AccomplicePolicy(std::size_t partner) : partner_(partner) {}
  std::string name() const override { return "price-fixing-accomplice"; }
  std::vector<mech::Cost> next_bids(const std::vector<mech::Cost>& costs,
                                    const mech::BidSet& bids, std::size_t,
                                    const RoundHistory& history) override {
    std::vector<mech::Cost> out = costs;
    if (history.empty()) return out;
    const auto& last = history.back();
    for (std::size_t j = 0; j < out.size(); ++j) {
      if (last[j].winner == partner_ && costs[j] == last[j].second_price)
        out[j] = bids.max();
    }
    return out;
  }

 private:
  std::size_t partner_;
};

struct RepeatedResult {
  std::string policy;
  std::size_t agent = 0;
  std::int64_t adaptive_total = 0;   ///< cumulative utility with the policy
  std::int64_t truthful_total = 0;   ///< cumulative utility if truthful
  std::int64_t coalition_adaptive = 0;  ///< with a partner, if applicable
  std::int64_t coalition_truthful = 0;
};

/// Run `rounds` repeated executions with one adaptive agent (and optionally
/// a coalition partner also playing a policy); everyone else is truthful.
inline RepeatedResult run_repeated(
    const mech::SchedulingInstance& instance, const mech::BidSet& bids,
    std::size_t adaptive_agent, BiddingPolicy& policy, std::size_t rounds,
    std::size_t partner = std::size_t(-1),
    BiddingPolicy* partner_policy = nullptr) {
  instance.validate();
  RepeatedResult result;
  result.policy = policy.name();
  result.agent = adaptive_agent;

  TruthfulPolicy truthful;
  RoundHistory adaptive_history, truthful_history;

  auto play_round = [&](RoundHistory& history, bool adaptive) {
    mech::BidMatrix round_bids = mech::truthful_bids(instance);
    if (adaptive) {
      round_bids[adaptive_agent] = policy.next_bids(
          instance.cost[adaptive_agent], bids, adaptive_agent, history);
      if (partner_policy != nullptr) {
        round_bids[partner] = partner_policy->next_bids(
            instance.cost[partner], bids, partner, history);
      }
    }
    const auto outcome = mech::run_minwork(round_bids);
    std::vector<RevealedAuction> revealed;
    for (const auto& auction : outcome.auctions) {
      revealed.push_back(RevealedAuction{auction.winner, auction.first_price,
                                         auction.second_price});
    }
    history.push_back(std::move(revealed));
    return outcome;
  };

  for (std::size_t r = 0; r < rounds; ++r) {
    const auto adaptive_outcome = play_round(adaptive_history, true);
    const auto truthful_outcome = play_round(truthful_history, false);
    result.adaptive_total += mech::utility(
        instance, adaptive_outcome.schedule, adaptive_agent,
        adaptive_outcome.payments[adaptive_agent]);
    result.truthful_total += mech::utility(
        instance, truthful_outcome.schedule, adaptive_agent,
        truthful_outcome.payments[adaptive_agent]);
    if (partner != std::size_t(-1)) {
      result.coalition_adaptive +=
          mech::utility(instance, adaptive_outcome.schedule, adaptive_agent,
                        adaptive_outcome.payments[adaptive_agent]) +
          mech::utility(instance, adaptive_outcome.schedule, partner,
                        adaptive_outcome.payments[partner]);
      result.coalition_truthful +=
          mech::utility(instance, truthful_outcome.schedule, adaptive_agent,
                        truthful_outcome.payments[adaptive_agent]) +
          mech::utility(instance, truthful_outcome.schedule, partner,
                        truthful_outcome.payments[partner]);
    }
  }
  return result;
}

}  // namespace dmw::exp
