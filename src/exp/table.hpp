// Fixed-width console table printer for the bench binaries.
#pragma once

#include <concepts>
#include <cstdio>
#include <iomanip>
#include <iostream>  // dmwlint:allow(include-hygiene) std::cout default arg
#include <sstream>
#include <string>
#include <vector>

namespace dmw::exp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  template <class T>
    requires std::integral<T>
  static std::string num(T v) {
    return std::to_string(v);
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], r[c].size());

    auto print_row = [&](const std::vector<std::string>& cells) {
      os << "|";
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : "";
        os << " " << std::setw(static_cast<int>(widths[c])) << cell << " |";
      }
      os << "\n";
    };
    print_row(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dmw::exp
