// Privacy experiments (paper Theorem 10).
//
// A coalition of curious-but-passive agents pools everything it legitimately
// holds after a completed run:
//   - its members' private shares of every other agent's polynomials, and
//   - the public bulletin (commitments, Lambda/Psi, winner disclosures).
// and tries to recover a losing agent's bid.
//
// Attack 1 ("e-attack", the one Theorem 10 addresses): resolve the degree of
// the target's e polynomial from the coalition's e-shares. The bid encoding
// pads degrees by c+1, so a coalition of size <= c+1 can never resolve even
// the weakest bid; success requires |C| >= sigma - y + 1 points.
//
// Attack 2 ("f-attack", a leak the paper does not account for): the winner-
// identification phase publicly discloses y*+1 points of *every* agent's f
// polynomial, whose degree equals the bid directly (no c padding). A
// coalition holding a few extra f-shares can resolve low losing bids. The
// privacy bench quantifies this gap; see EXPERIMENTS.md.
#pragma once

#include <optional>
#include <vector>

#include "dmw/protocol.hpp"
#include "poly/lagrange.hpp"

namespace dmw::exp {

struct PrivacyAttackResult {
  std::size_t coalition_size = 0;
  std::size_t target = 0;
  std::size_t task = 0;
  mech::Cost true_bid = 0;
  std::optional<mech::Cost> e_attack_guess;  ///< nullopt: unresolved
  std::optional<mech::Cost> f_attack_guess;
  bool e_attack_succeeded() const {
    return e_attack_guess && *e_attack_guess == true_bid;
  }
  bool f_attack_succeeded() const {
    return f_attack_guess && *f_attack_guess == true_bid;
  }
};

/// Run both attacks for one (coalition, target, task) triple. The runner
/// must have completed a non-aborted honest run; the coalition is the first
/// `coalition_size` agents excluding the target (losers attack each other in
/// the worst case for privacy).
template <dmw::num::GroupBackend G>
PrivacyAttackResult attack_bid_privacy(
    const proto::ProtocolRunner<G>& runner,
    const proto::PublicParams<G>& params, std::size_t coalition_size,
    std::size_t target, std::size_t task) {
  DMW_REQUIRE(coalition_size >= 1 && coalition_size < params.n());
  DMW_REQUIRE(target < params.n());
  const G& g = params.group();

  PrivacyAttackResult result;
  result.coalition_size = coalition_size;
  result.target = target;
  result.task = task;
  result.true_bid = runner.agent(target).bids()[task];

  // Coalition membership: first `coalition_size` agents skipping the target.
  std::vector<std::size_t> coalition;
  for (std::size_t i = 0; i < params.n() && coalition.size() < coalition_size;
       ++i) {
    if (i != target) coalition.push_back(i);
  }

  // ---- e-attack: pooled e-shares of the target ---------------------------
  {
    std::vector<typename G::Scalar> points, values;
    for (std::size_t member : coalition) {
      const auto& view = runner.agent(member).task_view(task);
      DMW_CHECK(view.shares_in[target].has_value());
      points.push_back(params.pseudonym(member));
      // The coalition pools its own received shares — a deliberate,
      // in-model reveal (the attack the privacy theorem bounds).
      values.push_back(view.shares_in[target]->reveal().e);
    }
    const auto resolution = poly::resolve_degree(g, points, values);
    if (resolution.degree && params.degree_is_valid_bid(*resolution.degree))
      result.e_attack_guess = params.bid_for_degree(*resolution.degree);
  }

  // ---- f-attack: public winner-phase disclosures + coalition f-shares ----
  {
    // Points disclosed publicly during III.3 (first y*+1 agents), plus the
    // coalition's own f-shares of the target.
    std::vector<typename G::Scalar> points, values;
    std::vector<bool> used(params.n(), false);
    const auto& reference_view = runner.agent(0).task_view(task);
    if (reference_view.first_price) {
      const std::size_t disclosed = *reference_view.first_price + 1;
      for (std::size_t k = 0; k < disclosed && k < params.n(); ++k) {
        const auto& view = runner.agent(0).task_view(task);
        if (view.disclosures[k]) {
          points.push_back(params.pseudonym(k));
          values.push_back((*view.disclosures[k])[target]);
          used[k] = true;
        }
      }
    }
    for (std::size_t member : coalition) {
      if (used[member]) continue;
      const auto& view = runner.agent(member).task_view(task);
      points.push_back(params.pseudonym(member));
      values.push_back(view.shares_in[target]->reveal().f);
      used[member] = true;
    }
    const auto resolution = poly::resolve_degree(g, points, values);
    // f's degree IS the bid (deg f = sigma - tau = y).
    if (resolution.degree &&
        params.bid_set().contains(static_cast<mech::Cost>(*resolution.degree)))
      result.f_attack_guess = static_cast<mech::Cost>(*resolution.degree);
  }

  return result;
}

struct PrivacySweepRow {
  std::size_t coalition_size = 0;
  std::size_t trials = 0;
  std::size_t e_successes = 0;
  std::size_t f_successes = 0;
  double e_rate() const {
    return trials ? static_cast<double>(e_successes) / trials : 0.0;
  }
  double f_rate() const {
    return trials ? static_cast<double>(f_successes) / trials : 0.0;
  }
};

/// Sweep coalition sizes 1..max_coalition against every losing agent on
/// every task of a fresh honest run.
template <dmw::num::GroupBackend G>
std::vector<PrivacySweepRow> privacy_sweep(
    const proto::PublicParams<G>& params,
    const mech::SchedulingInstance& instance, std::size_t max_coalition,
    proto::RunConfig config = proto::RunConfig{}) {
  proto::HonestStrategy<G> honest;
  std::vector<proto::Strategy<G>*> strategies(params.n(), &honest);
  proto::ProtocolRunner<G> runner(params, instance, std::move(strategies),
                                  config);
  const auto outcome = runner.run();
  DMW_CHECK_MSG(!outcome.aborted, "privacy sweep needs a clean run");

  std::vector<PrivacySweepRow> rows;
  for (std::size_t size = 1; size <= max_coalition; ++size) {
    PrivacySweepRow row;
    row.coalition_size = size;
    for (std::size_t task = 0; task < params.m(); ++task) {
      const std::size_t winner = outcome.schedule.agent_for(task);
      for (std::size_t target = 0; target < params.n(); ++target) {
        if (target == winner) continue;  // losers are the privacy subjects
        const auto attack =
            attack_bid_privacy(runner, params, size, target, task);
        ++row.trials;
        if (attack.e_attack_succeeded()) ++row.e_successes;
        if (attack.f_attack_succeeded()) ++row.f_successes;
      }
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace dmw::exp
