// Dense polynomials over the exponent field Z_q of a group backend.
//
// DMW encodes a bid y in the *degree* of a random polynomial (paper §2.4 and
// §3 Phase II): small bids become large degrees. Coefficients are sampled
// uniformly from Z_q, the constant term is forced to zero (sums in Eq. (3)
// start at l = 1) and the leading coefficient is forced nonzero so the degree
// is exact.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "numeric/group.hpp"
#include "support/check.hpp"
#include "support/secret.hpp"

namespace dmw::poly {

template <dmw::num::GroupBackend G>
class Polynomial {
 public:
  using Scalar = typename G::Scalar;

  Polynomial() = default;

  /// Coefficients in ascending power order: coeffs[i] multiplies x^i.
  explicit Polynomial(std::vector<Scalar> coeffs)
      : coeffs_(std::move(coeffs)) {}

  static Polynomial zero() { return Polynomial(); }

  /// Uniformly random polynomial of *exact* degree `degree` with zero
  /// constant term: f(x) = a_1 x + ... + a_degree x^degree, a_degree != 0.
  template <class Rng>
  static Polynomial random_zero_const(const G& g, std::size_t degree,
                                      Rng& rng) {
    DMW_REQUIRE_MSG(degree >= 1, "degree-0 polynomial cannot hide anything");
    std::vector<Scalar> coeffs(degree + 1, g.szero());
    for (std::size_t i = 1; i < degree; ++i) coeffs[i] = g.random_scalar(rng);
    coeffs[degree] = g.random_nonzero_scalar(rng);
    return Polynomial(std::move(coeffs));
  }

  const std::vector<Scalar>& coeffs() const { return coeffs_; }

  /// Coefficient of x^i (zero beyond the stored range).
  Scalar coeff(const G& g, std::size_t i) const {
    return i < coeffs_.size() ? coeffs_[i] : g.szero();
  }

  bool is_zero(const G& g) const {
    for (const auto& c : coeffs_)
      if (c != g.szero()) return false;
    return true;
  }

  /// Degree, with deg(0) represented as std::nullopt.
  std::optional<std::size_t> degree(const G& g) const {
    for (std::size_t i = coeffs_.size(); i-- > 0;) {
      if (coeffs_[i] != g.szero()) return i;
    }
    return std::nullopt;
  }

  /// Horner evaluation at x (paper Phase II computes all n shares this way).
  Scalar eval(const G& g, const Scalar& x) const {
    Scalar acc = g.szero();
    for (std::size_t i = coeffs_.size(); i-- > 0;) {
      acc = g.sadd(g.smul(acc, x), coeffs_[i]);
    }
    return acc;
  }

  /// Shares at a whole pseudonym vector.
  std::vector<Scalar> eval_all(const G& g,
                               const std::vector<Scalar>& points) const {
    std::vector<Scalar> out;
    out.reserve(points.size());
    for (const auto& x : points) out.push_back(eval(g, x));
    return out;
  }

  Polynomial add(const G& g, const Polynomial& other) const {
    std::vector<Scalar> out(std::max(coeffs_.size(), other.coeffs_.size()),
                            g.szero());
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = g.sadd(coeff(g, i), other.coeff(g, i));
    return Polynomial(std::move(out));
  }

  Polynomial sub(const G& g, const Polynomial& other) const {
    std::vector<Scalar> out(std::max(coeffs_.size(), other.coeffs_.size()),
                            g.szero());
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = g.ssub(coeff(g, i), other.coeff(g, i));
    return Polynomial(std::move(out));
  }

  /// Schoolbook product (degrees in DMW are at most n, so O(deg^2) is fine
  /// and matches the paper's cost accounting).
  Polynomial mul(const G& g, const Polynomial& other) const {
    if (coeffs_.empty() || other.coeffs_.empty()) return Polynomial();
    std::vector<Scalar> out(coeffs_.size() + other.coeffs_.size() - 1,
                            g.szero());
    for (std::size_t i = 0; i < coeffs_.size(); ++i) {
      if (coeffs_[i] == g.szero()) continue;
      for (std::size_t j = 0; j < other.coeffs_.size(); ++j) {
        out[i + j] = g.sadd(out[i + j], g.smul(coeffs_[i], other.coeffs_[j]));
      }
    }
    return Polynomial(std::move(out));
  }

  Polynomial scale(const G& g, const Scalar& k) const {
    std::vector<Scalar> out = coeffs_;
    for (auto& c : out) c = g.smul(c, k);
    return Polynomial(std::move(out));
  }

  friend bool operator==(const Polynomial& a, const Polynomial& b) {
    // Compare with trailing-zero normalization left to the caller; protocol
    // code always constructs exact-degree polynomials.
    return a.coeffs_ == b.coeffs_;
  }

  /// Secret-hygiene hook (support/secret.hpp): bid polynomials carry the
  /// agent's private bid in their degree, so Secret<Polynomial> must be able
  /// to scrub the coefficient buffer.
  void wipe_secret() noexcept { dmw::zeroize(coeffs_); }

 private:
  std::vector<Scalar> coeffs_;
};

}  // namespace dmw::poly
