// Standard Shamir secret sharing (free-term encoding), for contrast with
// DMW's degree encoding.
//
// The paper is explicit about the difference (§3): Kikuchi-style auctions
// encode the secret "in the degree of the polynomial. This is different
// from the standard secret sharing protocols [35], in which the information
// is encoded in the free term". This module implements the standard scheme
// so the trade-off is demonstrable in code and tests:
//
//   - Shamir shares are additively homomorphic in the *secret*:
//     reconstructing summed shares yields the sum of secrets — useless for
//     computing a minimum.
//   - Degree-encoded shares are "max-homomorphic" in the encoding:
//     summing shares yields a polynomial whose degree is the max of the
//     degrees — exactly the min-bid computation DMW needs (bids are encoded
//     inversely).
#pragma once

#include <vector>

#include "numeric/group.hpp"
#include "poly/lagrange.hpp"
#include "poly/polynomial.hpp"
#include "support/check.hpp"
#include "support/secret.hpp"

namespace dmw::poly {

/// A (threshold, n) Shamir sharing of a scalar secret.
template <dmw::num::GroupBackend G>
class ShamirSharing {
 public:
  using Scalar = typename G::Scalar;

  /// Split `secret` into shares at the given distinct nonzero points;
  /// any `threshold` shares reconstruct, fewer reveal nothing.
  template <class Rng>
  static ShamirSharing split(const G& g, const Scalar& secret,
                             std::size_t threshold,
                             const std::vector<Scalar>& points, Rng& rng) {
    DMW_REQUIRE_MSG(threshold >= 1, "threshold must be at least 1");
    DMW_REQUIRE_MSG(points.size() >= threshold,
                    "need at least `threshold` share points");
    // f(x) = secret + a_1 x + ... + a_{t-1} x^{t-1}. The coefficient bundle
    // is exactly the secret material the sharing protects, so it lives
    // behind the hygiene wrapper and is wiped the moment shares exist.
    std::vector<Scalar> coeffs(threshold, g.szero());
    coeffs[0] = secret;
    for (std::size_t i = 1; i < threshold; ++i)
      coeffs[i] = g.random_scalar(rng);
    const Secret<Polynomial<G>> f{Polynomial<G>(std::move(coeffs))};

    ShamirSharing sharing;
    sharing.threshold_ = threshold;
    sharing.points_ = points;
    sharing.shares_ = f.reveal().eval_all(g, points);
    return sharing;
  }

  std::size_t threshold() const { return threshold_; }
  const std::vector<Scalar>& points() const { return points_; }
  const std::vector<Scalar>& shares() const { return shares_; }

  /// Reconstruct from the first `count` shares (>= threshold required):
  /// Lagrange interpolation at zero recovers the free term.
  Scalar reconstruct(const G& g, std::size_t count) const {
    DMW_REQUIRE_MSG(count >= threshold_,
                    "not enough shares to reconstruct");
    DMW_REQUIRE(count <= shares_.size());
    return interpolate_at_zero(g, points_, shares_, count);
  }

  /// Share-wise sum: reconstructing the result yields the sum of the
  /// secrets (the additive homomorphism Shamir offers and DMW cannot use).
  static ShamirSharing add(const G& g, const ShamirSharing& a,
                           const ShamirSharing& b) {
    DMW_REQUIRE(a.points_ == b.points_);
    ShamirSharing out;
    out.threshold_ = std::max(a.threshold_, b.threshold_);
    out.points_ = a.points_;
    out.shares_.reserve(a.shares_.size());
    for (std::size_t i = 0; i < a.shares_.size(); ++i)
      out.shares_.push_back(g.sadd(a.shares_[i], b.shares_[i]));
    return out;
  }

 private:
  std::size_t threshold_ = 0;
  std::vector<Scalar> points_;
  std::vector<Scalar> shares_;
};

}  // namespace dmw::poly
