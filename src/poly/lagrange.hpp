// Lagrange interpolation at zero and the paper's §2.4 degree-resolution
// procedure, in both the scalar domain (Z_q) and the exponent domain (group
// elements, Eq. (12)).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "numeric/batchinv.hpp"
#include "numeric/group.hpp"
#include "numeric/multiexp.hpp"
#include "support/check.hpp"

namespace dmw::poly {

/// Lagrange basis evaluated at zero for the first s points:
/// rho_k = prod_{i != k, i < s} alpha_i / (alpha_i - alpha_k)  (paper Eq. 12).
/// All points must be distinct and nonzero. The s denominators are inverted
/// with one field inversion (numeric/batchinv.hpp).
template <dmw::num::GroupBackend G>
std::vector<typename G::Scalar> lagrange_basis_at_zero(
    const G& g, const std::vector<typename G::Scalar>& points,
    std::size_t s) {
  DMW_REQUIRE(s >= 1 && s <= points.size());
  std::vector<typename G::Scalar> rho(s);
  std::vector<typename G::Scalar> dens(s);
  for (std::size_t k = 0; k < s; ++k) {
    typename G::Scalar num = g.sone();
    typename G::Scalar den = g.sone();
    for (std::size_t i = 0; i < s; ++i) {
      if (i == k) continue;
      num = g.smul(num, points[i]);
      den = g.smul(den, g.ssub(points[i], points[k]));
    }
    rho[k] = num;
    dens[k] = den;
  }
  dmw::num::batch_inverse(g, std::span<typename G::Scalar>(dens));
  for (std::size_t k = 0; k < s; ++k) rho[k] = g.smul(rho[k], dens[k]);
  return rho;
}

/// Value at zero of the unique degree-(s-1) polynomial through the first s
/// (point, value) pairs.
template <dmw::num::GroupBackend G>
typename G::Scalar interpolate_at_zero(
    const G& g, const std::vector<typename G::Scalar>& points,
    const std::vector<typename G::Scalar>& values, std::size_t s) {
  DMW_REQUIRE(points.size() >= s && values.size() >= s);
  const auto rho = lagrange_basis_at_zero(g, points, s);
  typename G::Scalar acc = g.szero();
  for (std::size_t k = 0; k < s; ++k)
    acc = g.sadd(acc, g.smul(values[k], rho[k]));
  return acc;
}

/// The paper's efficient Θ(s^2) algorithm for f^{(s)}(0) exactly as printed
/// in §2.4 (steps 1-3). Note: as printed it computes (-1)^{s-1} times the
/// Lagrange value at zero; the sign is irrelevant for the zero test used by
/// degree resolution. Exposed for fidelity and tested against
/// interpolate_at_zero; kept as the literal per-element-inversion
/// transcription, so the batch-inversion rewrite everywhere else stays
/// differentially testable against it.
template <dmw::num::GroupBackend G>
typename G::Scalar paper_interpolation_at_zero(
    const G& g, const std::vector<typename G::Scalar>& points,
    const std::vector<typename G::Scalar>& values, std::size_t s) {
  DMW_REQUIRE(points.size() >= s && values.size() >= s);
  // Step 1: psi_k = f(alpha_k) / prod_{i != k} (alpha_k - alpha_i).
  std::vector<typename G::Scalar> psi(s);
  for (std::size_t k = 0; k < s; ++k) {
    typename G::Scalar den = g.sone();
    for (std::size_t i = 0; i < s; ++i) {
      if (i == k) continue;
      den = g.smul(den, g.ssub(points[k], points[i]));
    }
    // dmwlint:allow(loop-inverse) paper-literal transcription of §2.4
    psi[k] = g.smul(values[k], g.sinv(den));
  }
  // Step 2: phi(0) = prod_k alpha_k.
  typename G::Scalar phi = g.sone();
  for (std::size_t k = 0; k < s; ++k) phi = g.smul(phi, points[k]);
  // Step 3: f^{(s)}(0) = phi(0) * sum_k psi_k / alpha_k.
  typename G::Scalar acc = g.szero();
  for (std::size_t k = 0; k < s; ++k)
    // dmwlint:allow(loop-inverse) paper-literal transcription of §2.4
    acc = g.sadd(acc, g.smul(psi[k], g.sinv(points[k])));
  return g.smul(phi, acc);
}

/// Result of a degree-resolution scan.
struct DegreeResolution {
  /// Resolved degree (least s with a vanishing interpolation, minus one).
  /// nullopt when no s <= points.size() vanishes, i.e. the degree is at
  /// least points.size() or the polynomial has a nonzero constant term.
  std::optional<std::size_t> degree;
  /// Number of interpolation probes performed (complexity accounting).
  std::size_t probes = 0;
};

/// Scalar-domain degree resolution for a polynomial with known-zero constant
/// term, given its values at the (distinct, nonzero) points.
///
/// Erratum vs the paper: §2.4 claims the least s with f^{(s)}(0) = f(0)
/// equals the degree d; in fact d+1 points are required, so the resolved
/// degree is s_min - 1 (see DESIGN.md). False early vanishing occurs with
/// probability 1/q per probe for random coefficients.
template <dmw::num::GroupBackend G>
DegreeResolution resolve_degree(const G& g,
                                const std::vector<typename G::Scalar>& points,
                                const std::vector<typename G::Scalar>& values) {
  DMW_REQUIRE(points.size() == values.size());
  DegreeResolution out;
  // Incremental Lagrange basis: adding point alpha_s multiplies each
  // existing rho_k by alpha_s / (alpha_s - alpha_k), keeping the whole scan
  // Θ(s^2) instead of the Θ(s^3) of recomputing each probe from scratch
  // (mirrors resolve_degree_in_exponent; equivalence is tested). The s-1
  // denominators of one extension step are inverted with a single field
  // inversion: sinv(alpha_k - alpha_s) = -sinv(alpha_s - alpha_k), so both
  // update factors come out of the same batch.
  std::vector<typename G::Scalar> rho;
  std::vector<typename G::Scalar> diffs;
  for (std::size_t s = 1; s <= points.size(); ++s) {
    const auto& alpha_new = points[s - 1];
    typename G::Scalar rho_new = g.sone();
    diffs.resize(s - 1);
    for (std::size_t k = 0; k + 1 < s; ++k)
      diffs[k] = g.ssub(alpha_new, points[k]);
    dmw::num::batch_inverse(g, std::span<typename G::Scalar>(diffs));
    for (std::size_t k = 0; k + 1 < s; ++k) {
      const auto& alpha_k = points[k];
      rho[k] = g.smul(rho[k], g.smul(alpha_new, diffs[k]));
      rho_new = g.smul(rho_new, g.smul(alpha_k, g.sneg(diffs[k])));
    }
    rho.push_back(rho_new);

    ++out.probes;
    typename G::Scalar acc = g.szero();
    for (std::size_t k = 0; k < s; ++k)
      acc = g.sadd(acc, g.smul(values[k], rho[k]));
    if (acc == g.szero()) {
      out.degree = s - 1;
      return out;
    }
  }
  return out;
}

/// Exponent-domain degree resolution (paper Eq. (12)): given group elements
/// Lambda_k = z^{E(alpha_k)}, find the least s with
///   prod_{k<s} Lambda_k^{rho_k} == identity,
/// i.e. z^{E-interpolated-at-0} == 1, and return s-1 as the degree of E.
///
/// The rho basis is maintained incrementally across s (each new point
/// multiplies every existing rho_k by alpha_s/(alpha_s - alpha_k)), keeping
/// the scalar work Θ(s^2) overall as in the paper's §2.4 algorithm. Each
/// extension step batch-inverts its denominators (one inversion instead of
/// 2(s-1)), and each probe evaluates prod_k Lambda_k^{rho_k} as one
/// multi-exponentiation — a shared squaring chain instead of s independent
/// full-length exponentiations.
template <dmw::num::GroupBackend G>
DegreeResolution resolve_degree_in_exponent(
    const G& g, const std::vector<typename G::Scalar>& points,
    const std::vector<typename G::Elem>& lambdas) {
  DMW_REQUIRE(points.size() == lambdas.size());
  DegreeResolution out;
  std::vector<typename G::Scalar> rho;  // basis for current s
  std::vector<typename G::Scalar> diffs;
  for (std::size_t s = 1; s <= points.size(); ++s) {
    // Extend the basis from s-1 to s points (same batched update as
    // resolve_degree above).
    const auto& alpha_new = points[s - 1];
    typename G::Scalar rho_new = g.sone();
    diffs.resize(s - 1);
    for (std::size_t k = 0; k + 1 < s; ++k)
      diffs[k] = g.ssub(alpha_new, points[k]);
    dmw::num::batch_inverse(g, std::span<typename G::Scalar>(diffs));
    for (std::size_t k = 0; k + 1 < s; ++k) {
      const auto& alpha_k = points[k];
      rho[k] = g.smul(rho[k], g.smul(alpha_new, diffs[k]));
      rho_new = g.smul(rho_new, g.smul(alpha_k, g.sneg(diffs[k])));
    }
    rho.push_back(rho_new);

    ++out.probes;
    const auto acc = dmw::num::multi_pow<G>(
        g, std::span<const typename G::Elem>(lambdas.data(), s),
        std::span<const typename G::Scalar>(rho.data(), s));
    if (g.is_identity(acc)) {
      out.degree = s - 1;
      return out;
    }
  }
  return out;
}

}  // namespace dmw::poly
