// Minimal leveled logger.
//
// The protocol simulator is chatty at Debug level (per-message traces); tests
// and benches run at Warn. The logger is a process-wide singleton with a
// swappable sink so tests can capture output.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace dmw {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* to_string(LogLevel level);

/// Process-wide logger. Thread-compatible (the simulator is single-threaded).
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Replace the output sink; returns the previous one.
  Sink set_sink(Sink sink);

  void log(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

namespace detail {
/// Stream-style log statement builder; emits on destruction.
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() { Logger::instance().log(level_, stream_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <class T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dmw

#define DMW_LOG(level)                                   \
  if (!::dmw::Logger::instance().enabled(level)) {       \
  } else                                                 \
    ::dmw::detail::LogStatement(level)

#define DMW_TRACE() DMW_LOG(::dmw::LogLevel::kTrace)
#define DMW_DEBUG() DMW_LOG(::dmw::LogLevel::kDebug)
#define DMW_INFO() DMW_LOG(::dmw::LogLevel::kInfo)
#define DMW_WARN() DMW_LOG(::dmw::LogLevel::kWarn)
#define DMW_ERROR() DMW_LOG(::dmw::LogLevel::kError)
