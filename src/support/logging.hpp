// Minimal leveled logger.
//
// The protocol simulator is chatty at Debug level (per-message traces); tests
// and benches run at Warn. The logger is a process-wide singleton with a
// swappable sink so tests can capture output.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

#include "support/annotations.hpp"

namespace dmw {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* to_string(LogLevel level);

/// Process-wide logger. Thread-safe: ThreadPool workers (dmw/parallel.hpp)
/// log concurrently, so the level gate is an atomic and sink swap + emission
/// are serialized by a mutex — concurrent statements never interleave
/// within a line and never race a set_sink(). Sinks must not log
/// re-entrantly (they run under the emission lock). The default sink
/// prefixes each line with the tracer's run-relative clock and, when
/// tracing, the calling thread's active span (support/trace.hpp).
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const { return level >= this->level(); }

  /// Replace the output sink; returns the previous one.
  Sink set_sink(Sink sink);

  void log(LogLevel level, const std::string& message);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  Mutex mutex_;  ///< guards sink_ (swap and every emission)
  Sink sink_ DMW_GUARDED_BY(mutex_);
};

namespace detail {
/// Stream-style log statement builder; emits on destruction.
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() { Logger::instance().log(level_, stream_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <class T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dmw

#define DMW_LOG(level)                                   \
  if (!::dmw::Logger::instance().enabled(level)) {       \
  } else                                                 \
    ::dmw::detail::LogStatement(level)

#define DMW_TRACE() DMW_LOG(::dmw::LogLevel::kTrace)
#define DMW_DEBUG() DMW_LOG(::dmw::LogLevel::kDebug)
#define DMW_INFO() DMW_LOG(::dmw::LogLevel::kInfo)
#define DMW_WARN() DMW_LOG(::dmw::LogLevel::kWarn)
#define DMW_ERROR() DMW_LOG(::dmw::LogLevel::kError)
