// Descriptive statistics and least-squares fitting.
//
// The benchmark harness validates the paper's asymptotic claims (Table 1,
// Theorems 11 and 12) by fitting measured cost against problem size on a
// log-log scale; the fitted slope is the empirical scaling exponent.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dmw {

/// Streaming summary statistics (Welford's online algorithm).
class Summary {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double total() const { return total_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double total_ = 0.0;
};

/// Result of an ordinary least-squares line fit y = slope*x + intercept.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Fit a straight line through (x, y) pairs. Requires >= 2 points.
LineFit fit_line(std::span<const double> x, std::span<const double> y);

/// Fit y = C * x^k by regressing log y on log x; returns k as `slope` and
/// log C as `intercept`. All inputs must be positive.
LineFit fit_power_law(std::span<const double> x, std::span<const double> y);

/// Percentile of a sample (linear interpolation), p in [0, 100].
double percentile(std::vector<double> values, double p);

}  // namespace dmw
