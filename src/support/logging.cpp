#include "support/logging.hpp"

#include <cstdio>
#include <utility>

namespace dmw {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    // dmwlint:allow(banned-pattern) the default sink IS the choke point
    std::fprintf(stderr, "[%s] %s\n", to_string(level), message.c_str());
  };
}

Logger::Sink Logger::set_sink(Sink sink) {
  std::swap(sink, sink_);
  return sink;
}

void Logger::log(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  if (sink_) sink_(level, message);
}

}  // namespace dmw
