#include "support/logging.hpp"

#include <cstdio>
#include <utility>

#include "support/trace.hpp"

namespace dmw {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  // Decoration (run-relative timestamp + active span) lives here, in the
  // default sink, not in log(): custom sinks — test capture, JSON
  // emitters — receive the undecorated message.
  sink_ = [](LogLevel level, const std::string& message) {
    // dmwlint:allow(banned-pattern) the default sink IS the choke point
    std::fprintf(stderr, "[%s %s] %s\n", to_string(level),
                 trace::log_stamp().c_str(), message.c_str());
  };
}

Logger::Sink Logger::set_sink(Sink sink) {
  MutexLock lock(mutex_);
  std::swap(sink, sink_);
  return sink;
}

void Logger::log(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  MutexLock lock(mutex_);
  if (sink_) sink_(level, message);
}

}  // namespace dmw
