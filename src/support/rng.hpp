// Deterministic pseudo-random number generators used throughout the
// simulation.
//
// Every source of randomness in this repository is seeded explicitly so that
// protocol runs, experiments and benches are exactly reproducible. Two
// generators are provided:
//   - SplitMix64: used for seeding and cheap stream splitting.
//   - Xoshiro256ss (xoshiro256**): the general-purpose workhorse.
// The cryptographic-strength deterministic generator (ChaCha20-based) lives in
// crypto/; protocol polynomial sampling uses that one.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "support/check.hpp"

namespace dmw {

/// SplitMix64 — tiny, fast generator whose main role is turning one 64-bit
/// seed into many well-distributed seeds for other generators.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return next(); }

  /// Unbiased integer in [0, bound) via Lemire-style rejection.
  std::uint64_t below(std::uint64_t bound) {
    DMW_REQUIRE(bound > 0);
    // Rejection sampling on the top of the range to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Unbiased integer in [lo, hi] (inclusive).
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    DMW_REQUIRE(lo <= hi);
    if (lo == 0 && hi == max()) return next();
    return lo + below(hi - lo + 1);
  }

  /// Real number in [0, 1).
  double real() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return real() < p; }

  /// Derive an independent child generator (for stream splitting).
  Xoshiro256ss split() { return Xoshiro256ss(next() ^ 0xa5a5a5a5a5a5a5a5ULL); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Fisher-Yates shuffle with the repository RNG (std::shuffle's result is
/// implementation-defined; this one is stable across platforms).
template <class Vec>
void deterministic_shuffle(Vec& v, Xoshiro256ss& rng) {
  if (v.empty()) return;
  for (std::size_t i = v.size() - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i + 1));
    using std::swap;
    swap(v[i], v[j]);
  }
}

}  // namespace dmw
