// Fixed-size worker pool for the task-parallel auction engine.
//
// The DMW protocol runs m *independent* per-task Vickrey auctions (paper §4;
// Thm. 11/12 costs are per task), so the natural units of parallelism are the
// task index and, finer, the (agent, task-chunk) slice. The pool offers two
// scheduling disciplines:
//
//   - static: parallel_for() hands each worker one contiguous, statically
//     computed block of indices. The mapping worker -> indices is a pure
//     function of (count, thread count), so a run's schedule of
//     who-computes-what is reproducible — TSan reports and perf numbers are
//     stable across runs.
//   - dynamic (default): jobs are pushed onto per-worker deques and idle
//     workers steal from the back of their victims' deques. parallel_for()
//     becomes chunked self-scheduling, and submit()/drain() let a driver seed
//     dependency chains whose continuation jobs are spawned *by workers* —
//     the basis of the pipelined protocol engine, where a slow slice no
//     longer stalls every sibling at a stage barrier.
//
// Which discipline runs is the `deterministic_schedule` knob (per pool;
// default from the DMW_DETERMINISTIC_SCHEDULE env var, else dynamic). The
// protocol's *results* are bit-identical either way — determinism of outputs
// is carried by keyed per-(agent,task) randomness and deferred-failure
// commit, not by the schedule — but the static mode pins the execution
// interleaving itself when that is what you need to reproduce.
//
// This is the only sanctioned threading primitive for protocol code: dmwlint's
// `raw-thread` rule rejects direct std::thread/std::mutex/latch/semaphore use
// in src/dmw and src/exp so every concurrent path stays inside this audited
// pool (and thus inside the TSan CI job's coverage). The pool's own locking
// discipline is capability-annotated (support/annotations.hpp): clang's
// -Wthread-safety pass proves every access to the guarded members below
// happens under mutex_ / the owning deque's mutex.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "support/annotations.hpp"
#include "support/check.hpp"

namespace dmw {

/// N persistent workers executing index-sharded jobs and stealable queued
/// jobs.
///
/// Reentrancy contract: parallel_for() and drain() may only be called from
/// the thread that owns the pool (never from inside a job — workers would
/// deadlock waiting on themselves). submit() is callable from anywhere,
/// including from inside a running job (that is how dependency chains
/// schedule their continuations). One parallel_for/drain runs at a time; the
/// call returns after every index/job has been processed, which gives callers
/// a happens-before barrier between successive stages.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads,
                      bool deterministic = deterministic_schedule_default())
      : size_(threads == 0 ? 1 : threads),
        deterministic_(deterministic),
        queues_(make_queues(size_)) {
    workers_.reserve(size_);
    for (std::size_t w = 0; w < size_; ++w)
      workers_.emplace_back([this, w] { worker_loop(w); });
  }

  ~ThreadPool() {
    {
      MutexLock lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return size_; }

  /// Worker index [0, size) on a pool thread, -1 on any other thread. Used
  /// to address per-worker accumulator slots without locks.
  static int current_worker_id() { return t_worker_id; }

  /// Sensible default worker count for "--threads 0": the hardware
  /// concurrency, floored at 1 (hardware_concurrency() may report 0).
  static std::size_t default_thread_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }

  /// Process-wide default for the `deterministic_schedule` knob: the
  /// DMW_DETERMINISTIC_SCHEDULE env var ("1"/"true"/"on" enables), else off
  /// (dynamic work stealing). CI's TSan job runs the suite under both.
  static bool deterministic_schedule_default() {
    const char* env = std::getenv("DMW_DETERMINISTIC_SCHEDULE");
    if (env == nullptr) return false;
    const std::string_view v(env);
    return v == "1" || v == "true" || v == "on";
  }

  bool deterministic_schedule() const { return deterministic_; }

  /// Flip the scheduling discipline. Only legal between batches (no
  /// parallel_for or drain in flight) and from the owning thread.
  void set_deterministic_schedule(bool on) {
    DMW_REQUIRE_MSG(current_worker_id() == -1,
                    "set_deterministic_schedule called from a worker");
    DMW_REQUIRE_MSG(outstanding_.load(std::memory_order_acquire) == 0,
                    "set_deterministic_schedule with jobs in flight");
    deterministic_ = on;
  }

  /// Run fn(i) for every i in [0, count). Blocks until all indices are done;
  /// the first exception thrown by any index is rethrown here after the
  /// barrier.
  ///
  /// Static mode shards into contiguous blocks: worker w owns
  /// [w*count/T, (w+1)*count/T). Dynamic mode seeds chunked jobs onto the
  /// worker deques and lets stealing balance them; every index still runs
  /// exactly once on exactly one worker, but which worker is
  /// schedule-dependent.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    DMW_REQUIRE_MSG(current_worker_id() == -1,
                    "ThreadPool::parallel_for called from a worker");
    if (deterministic_) {
      parallel_for_static(count, fn);
      return;
    }
    // Chunked self-scheduling: ~4 chunks per worker bounds both the job
    // overhead (few, fat jobs) and the tail imbalance (enough chunks to
    // steal).
    const std::size_t chunk = chunk_size(count);
    for (std::size_t begin = 0; begin < count; begin += chunk) {
      const std::size_t end = begin + chunk < count ? begin + chunk : count;
      submit([&fn, begin, end] {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      });
    }
    drain();
  }

  /// Enqueue one job. From a worker: pushed onto that worker's own deque
  /// (front — continuations run hot). From the owner: distributed round-robin
  /// across the deques (back). Jobs may submit further jobs; drain() counts
  /// them all.
  void submit(std::function<void()> job) {
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    const int self = current_worker_id();
    const std::size_t target =
        self >= 0 ? static_cast<std::size_t>(self)
                  : next_queue_.fetch_add(1, std::memory_order_relaxed) % size_;
    {
      WorkerQueue& q = *queues_[target];
      MutexLock lock(q.mutex);
      if (self >= 0)
        q.jobs.emplace_front(std::move(job));
      else
        q.jobs.emplace_back(std::move(job));
    }
    queued_.fetch_add(1, std::memory_order_release);
    {
      // Empty critical section: pairs the notify with the sleepers'
      // predicate re-check so a worker cannot miss the wakeup between
      // testing queued_ and blocking.
      MutexLock lock(mutex_);
    }
    wake_.notify_all();
  }

  /// Block the owning thread until every submitted job (including jobs
  /// submitted by jobs) has finished. Rethrows the first job exception.
  void drain() {
    DMW_REQUIRE_MSG(current_worker_id() == -1,
                    "ThreadPool::drain called from a worker");
    MutexLock lock(mutex_);
    while (outstanding_.load(std::memory_order_acquire) != 0)
      done_.wait(mutex_);
    if (error_) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

  /// Chunk width parallel_for uses in dynamic mode for `count` indices:
  /// max(1, count / (4 * workers)). Exposed so callers slicing their own
  /// fan-outs (the pipelined engine) agree with the pool's granularity.
  std::size_t chunk_size(std::size_t count) const {
    const std::size_t chunks = 4 * size_;
    const std::size_t chunk = count / chunks;
    return chunk == 0 ? 1 : chunk;
  }

 private:
  struct WorkerQueue {
    Mutex mutex;
    std::deque<std::function<void()>> jobs DMW_GUARDED_BY(mutex);
  };

  static std::vector<std::unique_ptr<WorkerQueue>> make_queues(
      std::size_t count) {
    std::vector<std::unique_ptr<WorkerQueue>> queues(count);
    for (auto& q : queues) q = std::make_unique<WorkerQueue>();
    return queues;
  }

  void parallel_for_static(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
    MutexLock lock(mutex_);
    DMW_REQUIRE_MSG(job_fn_ == nullptr,
                    "ThreadPool::parallel_for is not reentrant");
    job_fn_ = &fn;
    job_count_ = count;
    pending_ = size_;
    ++generation_;
    wake_.notify_all();
    while (pending_ != 0) done_.wait(mutex_);
    job_fn_ = nullptr;
    if (error_) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

  /// Pop from own front, else steal from victims' backs (round-robin scan
  /// starting after self, so steal pressure spreads). Returns false when
  /// every deque is empty.
  bool try_pop(std::size_t id, std::function<void()>& job) {
    {
      WorkerQueue& own = *queues_[id];
      MutexLock lock(own.mutex);
      if (!own.jobs.empty()) {
        job = std::move(own.jobs.front());
        own.jobs.pop_front();
        return true;
      }
    }
    for (std::size_t off = 1; off < size_; ++off) {
      WorkerQueue& victim = *queues_[(id + off) % size_];
      MutexLock lock(victim.mutex);
      if (!victim.jobs.empty()) {
        job = std::move(victim.jobs.back());
        victim.jobs.pop_back();
        return true;
      }
    }
    return false;
  }

  void run_job(std::function<void()>& job) {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    try {
      job();
    } catch (...) {
      MutexLock lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    job = nullptr;  // destroy captures before the completion count drops
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      MutexLock lock(mutex_);
      done_.notify_all();
    }
  }

  void worker_loop(std::size_t id) {
    t_worker_id = static_cast<int>(id);
    std::uint64_t seen = 0;
    std::function<void()> job;
    for (;;) {
      // Drain deque jobs first: continuations submitted by running jobs must
      // make progress even while a static generation is pending.
      while (try_pop(id, job)) run_job(job);

      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t count = 0;
      {
        MutexLock lock(mutex_);
        while (!stop_ && generation_ == seen &&
               queued_.load(std::memory_order_acquire) == 0)
          wake_.wait(mutex_);
        if (stop_) return;
        if (generation_ != seen) {
          seen = generation_;
          fn = job_fn_;
          count = job_count_;
        }
      }
      if (fn == nullptr) continue;  // woken for deque work
      const std::size_t begin = id * count / size_;
      const std::size_t end = (id + 1) * count / size_;
      std::exception_ptr error;
      try {
        for (std::size_t i = begin; i < end; ++i) (*fn)(i);
      } catch (...) {
        error = std::current_exception();
      }
      {
        MutexLock lock(mutex_);
        if (error && !error_) error_ = error;
        if (--pending_ == 0) done_.notify_all();
      }
    }
  }

  const std::size_t size_;
  // dmwlint:allow(guarded-member) flipped only between batches, from the
  // owning thread, with outstanding_ == 0 (runtime-checked above).
  bool deterministic_;
  // Vector and pointees are built once in the ctor; each WorkerQueue's deque
  // is guarded by its own mutex.
  const std::vector<std::unique_ptr<WorkerQueue>> queues_;
  // dmwlint:allow(guarded-member) written only by the ctor (emplace) and the
  // dtor (join), strictly before workers exist / after they stopped.
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar wake_;
  CondVar done_;

  // Static parallel_for state — every member below is guarded by mutex_;
  // clang's capability analysis enforces it.
  const std::function<void(std::size_t)>* job_fn_ DMW_GUARDED_BY(mutex_) =
      nullptr;
  std::size_t job_count_ DMW_GUARDED_BY(mutex_) = 0;
  std::size_t pending_ DMW_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ DMW_GUARDED_BY(mutex_) = 0;
  bool stop_ DMW_GUARDED_BY(mutex_) = false;
  std::exception_ptr error_ DMW_GUARDED_BY(mutex_);

  // Dynamic scheduler state.
  std::atomic<std::size_t> outstanding_{0};  ///< submitted, not yet finished
  std::atomic<std::size_t> queued_{0};       ///< submitted, not yet popped
  std::atomic<std::size_t> next_queue_{0};   ///< owner-submit round-robin

  inline static thread_local int t_worker_id = -1;
};

}  // namespace dmw
