// Fixed-size worker pool for the task-parallel auction engine.
//
// The DMW protocol runs m *independent* per-task Vickrey auctions (paper §4;
// Thm. 11/12 costs are per task), so the natural unit of parallelism is the
// task index. ThreadPool deliberately does NOT work-steal: parallel_for()
// hands each worker one contiguous, statically computed block of indices.
// Static partitioning keeps the mapping worker -> indices a pure function of
// (count, thread count), which the determinism story depends on twice over:
//   - per-worker side buffers (traffic accumulators, op counters) are indexed
//     by current_worker_id() with no locking on the hot path, and
//   - a run's schedule of who-computes-what is reproducible, which makes
//     TSan reports and perf numbers stable across runs.
//
// This is the only sanctioned threading primitive for protocol code: dmwlint's
// `raw-thread` rule rejects direct std::thread/std::mutex use in src/dmw and
// src/exp so every concurrent path stays inside this audited pool (and thus
// inside the TSan CI job's coverage).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/check.hpp"

namespace dmw {

/// N persistent workers executing index-sharded jobs.
///
/// Reentrancy contract: parallel_for() may only be called from the thread
/// that owns the pool (never from inside a job — workers would deadlock
/// waiting on themselves). One job runs at a time; the call returns after
/// every index has been processed, which gives callers a happens-before
/// barrier between successive stages.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads) : size_(threads == 0 ? 1 : threads) {
    workers_.reserve(size_);
    for (std::size_t w = 0; w < size_; ++w)
      workers_.emplace_back([this, w] { worker_loop(w); });
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return size_; }

  /// Worker index [0, size) on a pool thread, -1 on any other thread. Used
  /// to address per-worker accumulator slots without locks.
  static int current_worker_id() { return t_worker_id; }

  /// Sensible default worker count for "--threads 0": the hardware
  /// concurrency, floored at 1 (hardware_concurrency() may report 0).
  static std::size_t default_thread_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }

  /// Run fn(i) for every i in [0, count), sharded across the workers in
  /// static contiguous blocks: worker w owns [w*count/T, (w+1)*count/T).
  /// Blocks until all indices are done. The first exception thrown by any
  /// worker is rethrown here after the barrier.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    std::unique_lock<std::mutex> lock(mutex_);
    DMW_REQUIRE_MSG(job_fn_ == nullptr,
                    "ThreadPool::parallel_for is not reentrant");
    job_fn_ = &fn;
    job_count_ = count;
    pending_ = size_;
    ++generation_;
    wake_.notify_all();
    done_.wait(lock, [&] { return pending_ == 0; });
    job_fn_ = nullptr;
    if (error_) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      std::rethrow_exception(error);
    }
  }

 private:
  void worker_loop(std::size_t id) {
    t_worker_id = static_cast<int>(id);
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t count = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        fn = job_fn_;
        count = job_count_;
      }
      const std::size_t begin = id * count / size_;
      const std::size_t end = (id + 1) * count / size_;
      std::exception_ptr error;
      try {
        for (std::size_t i = begin; i < end; ++i) (*fn)(i);
      } catch (...) {
        error = std::current_exception();
      }
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (error && !error_) error_ = error;
        if (--pending_ == 0) done_.notify_one();
      }
    }
  }

  std::size_t size_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_count_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;

  inline static thread_local int t_worker_id = -1;
};

}  // namespace dmw
