// Minimal JSON writer (no parser needed): the CLI tools emit machine-
// readable run reports for downstream analysis.
#pragma once

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "support/check.hpp"

namespace dmw {

/// Streaming JSON writer with nesting validation.
class JsonWriter {
 public:
  JsonWriter& begin_object() {
    prefix();
    out_ << '{';
    stack_.push_back(Frame::kObject);
    first_ = true;
    return *this;
  }

  JsonWriter& end_object() {
    DMW_REQUIRE_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                    "unbalanced end_object");
    stack_.pop_back();
    out_ << '}';
    first_ = false;
    return *this;
  }

  JsonWriter& begin_array(std::string_view key = {}) {
    if (!key.empty()) this->key(key);
    prefix();
    out_ << '[';
    stack_.push_back(Frame::kArray);
    first_ = true;
    return *this;
  }

  JsonWriter& end_array() {
    DMW_REQUIRE_MSG(!stack_.empty() && stack_.back() == Frame::kArray,
                    "unbalanced end_array");
    stack_.pop_back();
    out_ << ']';
    first_ = false;
    return *this;
  }

  JsonWriter& key(std::string_view name) {
    DMW_REQUIRE_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                    "key outside object");
    DMW_REQUIRE_MSG(!pending_key_, "two keys in a row");
    prefix();
    write_string(name);
    out_ << ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    prefix();
    write_string(v);
    first_ = false;
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    prefix();
    out_ << (v ? "true" : "false");
    first_ = false;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    prefix();
    out_ << v;
    first_ = false;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    prefix();
    out_ << v;
    first_ = false;
    return *this;
  }
  JsonWriter& value(double v) {
    prefix();
    out_ << v;
    first_ = false;
    return *this;
  }

  template <class T>
  JsonWriter& field(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  std::string str() const {
    DMW_REQUIRE_MSG(stack_.empty(), "unterminated JSON document");
    return out_.str();
  }

 private:
  enum class Frame { kObject, kArray };

  void prefix() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!first_ && !stack_.empty()) out_ << ',';
    first_ = false;
  }

  void write_string(std::string_view s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\t':
          out_ << "\\t";
          break;
        case '\r':
          out_ << "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
            out_ << buffer;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  std::vector<Frame> stack_;
  bool first_ = true;
  bool pending_key_ = false;
};

}  // namespace dmw
