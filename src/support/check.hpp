// Checked-precondition and invariant machinery.
//
// All library invariants are enforced with DMW_CHECK / DMW_REQUIRE, which
// throw (never abort) so protocol code can translate internal violations
// into protocol aborts and tests can assert on them.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace dmw {

/// Thrown when a DMW_CHECK / DMW_REQUIRE condition fails.
class CheckError : public std::logic_error {
 public:
  CheckError(const std::string& expr, const std::string& msg,
             std::source_location loc)
      : std::logic_error(format(expr, msg, loc)) {}

 private:
  static std::string format(const std::string& expr, const std::string& msg,
                            std::source_location loc) {
    std::string out = "check failed: ";
    out += expr;
    if (!msg.empty()) {
      out += " (";
      out += msg;
      out += ")";
    }
    out += " at ";
    out += loc.file_name();
    out += ":";
    out += std::to_string(loc.line());
    return out;
  }
};

namespace detail {
[[noreturn]] inline void check_failed(
    const char* expr, const std::string& msg,
    std::source_location loc = std::source_location::current()) {
  throw CheckError(expr, msg, loc);
}
}  // namespace detail

}  // namespace dmw

/// Invariant check: active in all build types.
#define DMW_CHECK(cond)                                \
  do {                                                 \
    if (!(cond)) ::dmw::detail::check_failed(#cond, ""); \
  } while (0)

/// Invariant check with an explanatory message.
#define DMW_CHECK_MSG(cond, msg)                          \
  do {                                                    \
    if (!(cond)) ::dmw::detail::check_failed(#cond, (msg)); \
  } while (0)

/// Precondition check on public API arguments.
#define DMW_REQUIRE(cond) DMW_CHECK(cond)
#define DMW_REQUIRE_MSG(cond, msg) DMW_CHECK_MSG(cond, (msg))
