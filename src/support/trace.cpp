#include "support/trace.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>

#include "support/annotations.hpp"
#include "support/json.hpp"

namespace dmw::trace {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Current steady-clock reading as plain ns (the tracer's epoch is stored
/// this way so it can live in an atomic).
std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now().time_since_epoch())
      .count();
}

/// Everything mutable the tracer owns besides the inline enabled latch.
/// One mutex guards the thread-state registry and the central event log;
/// record paths never take it (they only touch their own ThreadState).
struct TracerState {
  Mutex mutex;
  std::vector<std::shared_ptr<detail::ThreadState>> registered
      DMW_GUARDED_BY(mutex);
  std::uint64_t next_sequence DMW_GUARDED_BY(mutex) = 0;
  /// Flushed events.
  std::vector<SpanEvent> log DMW_GUARDED_BY(mutex);
  /// Flushed message-flow endpoints.
  std::vector<FlowEvent> flow_log DMW_GUARDED_BY(mutex);
  /// Dropped counts folded at flush.
  std::uint64_t dropped_flushed DMW_GUARDED_BY(mutex) = 0;
  std::atomic<std::int64_t> logical{0};
  std::atomic<int> mode{static_cast<int>(ClockMode::kReal)};
  /// Run-relative real-clock origin as steady-clock ns. Atomic, not
  /// guarded: now_ns() reads it on every span record without touching the
  /// registry lock, while reset() rebases it from the driver.
  std::atomic<std::int64_t> epoch_ns{steady_ns()};
};

TracerState& state() {
  static TracerState* s = new TracerState;  // leaked: threads may outlive exit
  return *s;
}

/// Metric maps are ordered by name so snapshots come out sorted. Values
/// are heap-allocated once and never freed: cached Counter& references
/// (DMW_COUNT statics) must stay valid for the process lifetime.
struct MetricsState {
  Mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
      DMW_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges
      DMW_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
      DMW_GUARDED_BY(mutex);
};

MetricsState& metrics() {
  static MetricsState* s = new MetricsState;
  return *s;
}

void write_ops(JsonWriter& w, const dmw::num::OpCounts& ops) {
  w.begin_object();
  w.field("mul", ops.mul);
  w.field("pow", ops.pow);
  w.field("inv", ops.inv);
  w.field("add", ops.add);
  w.field("total", ops.total());
  w.end_object();
}

}  // namespace

namespace detail {

ThreadState& thread_state() {
  thread_local std::shared_ptr<ThreadState> local = [] {
    auto fresh = std::make_shared<ThreadState>();
    fresh->worker = ThreadPool::current_worker_id();
    auto& s = state();
    MutexLock lock(s.mutex);
    fresh->sequence = s.next_sequence++;
    s.registered.push_back(fresh);
    return fresh;
  }();
  return *local;
}

}  // namespace detail

Tracer::Tracer() = default;

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_enabled(bool enabled) {
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

ClockMode Tracer::clock_mode() const {
  return static_cast<ClockMode>(state().mode.load(std::memory_order_relaxed));
}

void Tracer::set_clock_mode(ClockMode mode) {
  state().mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

std::int64_t Tracer::now_ns() const {
  auto& s = state();
  if (s.mode.load(std::memory_order_relaxed) ==
      static_cast<int>(ClockMode::kLogical))
    return s.logical.load(std::memory_order_relaxed);
  return steady_ns() - s.epoch_ns.load(std::memory_order_relaxed);
}

void Tracer::tick() {
  if (!on()) return;
  state().logical.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::reset() {
  auto& s = state();
  MutexLock lock(s.mutex);
  s.log.clear();
  s.flow_log.clear();
  s.dropped_flushed = 0;
  s.logical.store(0, std::memory_order_relaxed);
  s.epoch_ns.store(steady_ns(), std::memory_order_relaxed);
  for (auto& thread : s.registered) {
    thread->events.clear();
    thread->flows.clear();
    thread->dropped = 0;
  }
  // Prune states whose threads have exited (registry holds the only ref).
  std::erase_if(s.registered,
                [](const std::shared_ptr<detail::ThreadState>& thread) {
                  return thread.use_count() == 1;
                });

  auto& m = metrics();
  MutexLock metrics_lock(m.mutex);
  for (auto& [name, value] : m.counters) value->clear();
  for (auto& [name, value] : m.gauges) value->clear();
  for (auto& [name, value] : m.histograms) value->clear();
}

void Tracer::flush_thread_buffers() {
  auto& s = state();
  MutexLock lock(s.mutex);
  // Worker-id order (driver thread's -1 first), registration order as the
  // tiebreak: the flushed log's layout is a function of the run, not of
  // which buffer happened to fill first.
  std::vector<detail::ThreadState*> order;
  order.reserve(s.registered.size());
  for (auto& thread : s.registered) order.push_back(thread.get());
  std::sort(order.begin(), order.end(),
            [](const detail::ThreadState* a, const detail::ThreadState* b) {
              if (a->worker != b->worker) return a->worker < b->worker;
              return a->sequence < b->sequence;
            });
  for (auto* thread : order) {
    s.log.insert(s.log.end(), thread->events.begin(), thread->events.end());
    thread->events.clear();
    s.flow_log.insert(s.flow_log.end(), thread->flows.begin(),
                      thread->flows.end());
    thread->flows.clear();
    s.dropped_flushed += thread->dropped;
    thread->dropped = 0;
  }
}

std::vector<FlowEvent> Tracer::flows() {
  flush_thread_buffers();
  auto& s = state();
  MutexLock lock(s.mutex);
  return s.flow_log;
}

std::vector<SpanEvent> Tracer::events() {
  flush_thread_buffers();
  auto& s = state();
  MutexLock lock(s.mutex);
  return s.log;
}

std::vector<SpanAggregate> Tracer::aggregate_spans() {
  flush_thread_buffers();
  auto& s = state();
  MutexLock lock(s.mutex);
  std::map<std::string_view, SpanAggregate> by_name;
  for (const SpanEvent& event : s.log) {
    SpanAggregate& agg = by_name[event.name];
    if (agg.count == 0) agg.name = event.name;
    ++agg.count;
    agg.total_ns += event.end_ns - event.begin_ns;
    agg.ops += event.ops;
  }
  std::vector<SpanAggregate> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) out.push_back(std::move(agg));
  return out;
}

std::uint64_t Tracer::events_dropped() {
  flush_thread_buffers();
  auto& s = state();
  MutexLock lock(s.mutex);
  return s.dropped_flushed;
}

const char* Tracer::active_span() const {
  const auto& stack = detail::thread_state().stack;
  return stack.empty() ? nullptr : stack.back();
}

std::string Tracer::chrome_trace_json() {
  const auto log = events();
  const auto flow_log = flows();
  JsonWriter w;
  w.begin_object();
  w.begin_array("traceEvents");
  // Thread-name metadata so Perfetto labels lanes "driver"/"worker N".
  std::vector<int> workers;
  for (const SpanEvent& event : log) {
    if (std::find(workers.begin(), workers.end(), event.worker) ==
        workers.end())
      workers.push_back(event.worker);
  }
  for (const FlowEvent& event : flow_log) {
    if (std::find(workers.begin(), workers.end(), event.worker) ==
        workers.end())
      workers.push_back(event.worker);
  }
  std::sort(workers.begin(), workers.end());
  for (int worker : workers) {
    w.begin_object();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", std::uint64_t{1});
    w.field("tid", static_cast<std::int64_t>(worker + 1));
    w.key("args").begin_object();
    w.field("name", worker < 0 ? std::string("driver")
                               : "worker " + std::to_string(worker));
    w.end_object();
    w.end_object();
  }
  for (const SpanEvent& event : log) {
    w.begin_object();
    w.field("name", event.name);
    w.field("cat", "dmw");
    w.field("ph", "X");
    // trace_event wants microseconds; integer µs keeps the JSON free of
    // float formatting artifacts. Exact ns live in args.
    w.field("ts", event.begin_ns / 1000);
    w.field("dur", (event.end_ns - event.begin_ns) / 1000);
    w.field("pid", std::uint64_t{1});
    w.field("tid", static_cast<std::int64_t>(event.worker + 1));
    w.key("args").begin_object();
    if (event.id != kNoId) w.field("id", event.id);
    w.field("depth", std::uint64_t{event.depth});
    w.field("begin_ns", event.begin_ns);
    w.field("end_ns", event.end_ns);
    w.key("ops");
    write_ops(w, event.ops);
    w.end_object();
    w.end_object();
  }
  // Message causality: one "s"/"f" flow pair per message id links send to
  // deliver across the round barrier ("bp":"e" binds the finish to the
  // enclosing slice, the receiving phase span).
  for (const FlowEvent& event : flow_log) {
    w.begin_object();
    w.field("name", event.name);
    w.field("cat", "msg");
    w.field("ph", event.send ? "s" : "f");
    if (!event.send) w.field("bp", "e");
    w.field("id", event.id);
    w.field("ts", event.ts_ns / 1000);
    w.field("pid", std::uint64_t{1});
    w.field("tid", static_cast<std::int64_t>(event.worker + 1));
    w.end_object();
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

// ---- Metrics registry ------------------------------------------------------

void Histogram::observe(std::uint64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[static_cast<std::size_t>(std::bit_width(v))].fetch_add(
      1, std::memory_order_relaxed);
}

std::vector<std::pair<unsigned, std::uint64_t>> Histogram::buckets() const {
  std::vector<std::pair<unsigned, std::uint64_t>> out;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t count = buckets_[b].load(std::memory_order_relaxed);
    if (count != 0) out.emplace_back(static_cast<unsigned>(b), count);
  }
  return out;
}

void Histogram::clear() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
  auto& m = metrics();
  MutexLock lock(m.mutex);
  auto it = m.counters.find(name);
  if (it == m.counters.end())
    it = m.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& gauge(std::string_view name) {
  auto& m = metrics();
  MutexLock lock(m.mutex);
  auto it = m.gauges.find(name);
  if (it == m.gauges.end())
    it = m.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& histogram(std::string_view name) {
  auto& m = metrics();
  MutexLock lock(m.mutex);
  auto it = m.histograms.find(name);
  if (it == m.histograms.end())
    it = m.histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> counters_snapshot() {
  auto& m = metrics();
  MutexLock lock(m.mutex);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, value] : m.counters) {
    if (value->value() != 0) out.emplace_back(name, value->value());
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> counters_delta(
    const std::vector<std::pair<std::string, std::uint64_t>>& newer,
    const std::vector<std::pair<std::string, std::uint64_t>>& older) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  std::size_t o = 0;
  for (const auto& [name, value] : newer) {
    while (o < older.size() && older[o].first < name) ++o;
    const std::uint64_t base =
        (o < older.size() && older[o].first == name) ? older[o].second : 0;
    // Counters are monotone between snapshots of the same run; a reset()
    // in between makes `base` larger — report the raw value then.
    const std::uint64_t delta = value >= base ? value - base : value;
    if (delta != 0) out.emplace_back(name, delta);
  }
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> gauges_snapshot() {
  auto& m = metrics();
  MutexLock lock(m.mutex);
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (const auto& [name, value] : m.gauges) {
    if (value->value() != 0) out.emplace_back(name, value->value());
  }
  return out;
}

std::vector<HistogramSnapshot> histograms_snapshot() {
  auto& m = metrics();
  MutexLock lock(m.mutex);
  std::vector<HistogramSnapshot> out;
  for (const auto& [name, value] : m.histograms) {
    if (value->count() == 0) continue;
    HistogramSnapshot snap;
    snap.name = name;
    snap.count = value->count();
    snap.sum = value->sum();
    snap.buckets = value->buckets();
    out.push_back(std::move(snap));
  }
  return out;
}

// ---- RunReport -------------------------------------------------------------

std::string RunReport::json() const {
  JsonWriter w;
  w.begin_object();
  w.field("report", "dmw-run");
  w.field("bench", "runreport");
  // v2: added the comm_report ledger section (docs/tracing.md).
  w.field("schema_version", std::uint64_t{2});
  w.field("label", label);
  w.field("n", n);
  w.field("m", m);
  w.field("c", c);
  w.field("aborted", aborted);
  w.field("abort_reason", abort_reason);
  w.field("rounds", rounds);
  w.begin_array("phases");
  for (const PhaseRow& phase : phases) {
    w.begin_object();
    w.field("phase", phase.name);
    w.field("wall_ns", phase.wall_ns);
    w.key("ops");
    write_ops(w, phase.ops);
    w.field("unicasts", phase.unicasts);
    w.field("broadcasts", phase.broadcasts);
    w.field("p2p_messages", phase.p2p_messages);
    w.field("p2p_bytes", phase.p2p_bytes);
    w.end_object();
  }
  w.end_array();
  w.begin_array("comm_report");
  for (const CommRow& row : comm) {
    w.begin_object();
    w.field("phase", row.phase);
    w.field("round", row.round);
    w.field("kind", row.kind);
    w.field("sender", row.sender);
    w.field("messages", row.messages);
    w.field("wire_bytes", row.wire_bytes);
    w.field("p2p_messages", row.p2p_messages);
    w.field("p2p_bytes", row.p2p_bytes);
    w.end_object();
  }
  w.end_array();
  w.begin_array("spans");
  for (const SpanAggregate& span : spans) {
    w.begin_object();
    w.field("name", span.name);
    w.field("count", span.count);
    w.field("total_ns", span.total_ns);
    w.key("ops");
    write_ops(w, span.ops);
    w.end_object();
  }
  w.end_array();
  w.key("metrics").begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) w.field(name, value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) w.field(name, value);
  w.end_object();
  w.begin_array("histograms");
  for (const HistogramSnapshot& hist : histograms) {
    w.begin_object();
    w.field("name", hist.name);
    w.field("count", hist.count);
    w.field("sum", hist.sum);
    w.begin_array("buckets");
    for (const auto& [pow2, count] : hist.buckets) {
      w.begin_object();
      w.field("pow2", std::uint64_t{pow2});
      w.field("count", count);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.field("events_dropped", events_dropped);
  w.end_object();
  return w.str();
}

void collect_into(RunReport& report) {
  Tracer& tracer = Tracer::instance();
  report.spans = tracer.aggregate_spans();
  report.counters = counters_snapshot();
  report.gauges = gauges_snapshot();
  report.histograms = histograms_snapshot();
  report.events_dropped = tracer.events_dropped();
}

namespace {

/// "net/kind/shares/bytes" -> "dmw_net_kind_shares_bytes".
std::string prometheus_name(std::string_view name) {
  std::string out = "dmw_";
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out.push_back(ok ? ch : '_');
  }
  return out;
}

}  // namespace

std::string prometheus_text() {
  std::string out;
  char line[256];
  for (const auto& [name, value] : counters_snapshot()) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " counter\n";
    std::snprintf(line, sizeof line, "%s %llu\n", metric.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : gauges_snapshot()) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " gauge\n";
    std::snprintf(line, sizeof line, "%s %lld\n", metric.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const HistogramSnapshot& hist : histograms_snapshot()) {
    const std::string metric = prometheus_name(hist.name);
    out += "# TYPE " + metric + " summary\n";
    for (const double q : {0.5, 0.9, 0.99}) {
      // Smallest pow2 bucket whose cumulative count covers quantile q; the
      // estimate is the bucket's inclusive upper edge (2^b - 1, 0 for b=0).
      std::uint64_t cumulative = 0;
      double estimate = 0.0;
      for (const auto& [pow2, count] : hist.buckets) {
        cumulative += count;
        estimate = pow2 == 0
                       ? 0.0
                       : std::ldexp(1.0, static_cast<int>(pow2)) - 1.0;
        if (static_cast<double>(cumulative) >=
            q * static_cast<double>(hist.count))
          break;
      }
      std::snprintf(line, sizeof line, "%s{quantile=\"%g\"} %.0f\n",
                    metric.c_str(), q, estimate);
      out += line;
    }
    std::snprintf(line, sizeof line, "%s_sum %llu\n%s_count %llu\n",
                  metric.c_str(), static_cast<unsigned long long>(hist.sum),
                  metric.c_str(), static_cast<unsigned long long>(hist.count));
    out += line;
  }
  return out;
}

std::string log_stamp() {
  Tracer& tracer = Tracer::instance();
  char buffer[64];
  if (tracer.clock_mode() == ClockMode::kLogical) {
    std::snprintf(buffer, sizeof buffer, "t%lld",
                  static_cast<long long>(tracer.now_ns()));
  } else {
    std::snprintf(buffer, sizeof buffer, "+%.6fs",
                  static_cast<double>(tracer.now_ns()) * 1e-9);
  }
  std::string out = buffer;
  if (on()) {
    if (const char* span = tracer.active_span()) {
      out += ' ';
      out += span;
    }
  }
  return out;
}

}  // namespace dmw::trace
