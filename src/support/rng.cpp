#include "support/rng.hpp"

// All generator logic is header-inline; this translation unit exists so the
// library has a stable archive member and a place for future out-of-line
// helpers.
namespace dmw {}
