// dmwtrace — span-based tracing and process metrics for the DMW stack.
//
// The paper states its complexity claims per phase (Thm. 11/12) and its
// faithfulness argument through detected deviations (§5). dmwtrace makes
// both observable in one place:
//
//   - RAII spans (`DMW_SPAN("phase3/price_resolution", task)`) record wall
//     time, the ThreadPool worker id and the OpCounts delta of the enclosed
//     work. Spans nest, and are safe inside pool workers: every thread
//     appends to its own buffer, which the parallel driver flushes at stage
//     barriers (worker-id order), so exported data never depends on
//     scheduling.
//   - A process metrics registry of counters/gauges/histograms (messages
//     and bytes per round, batched vs. replayed commitment checks, aborts
//     by reason, fixed-base table evaluations).
//   - Two exporters: Chrome `trace_event` JSON (load in about:tracing or
//     https://ui.perfetto.dev) and the aggregated, engine-invariant
//     `RunReport` JSON (docs/tracing.md documents the schema).
//
// Overhead contract: tracing is compiled in but OFF by default. A disabled
// span or counter costs one relaxed atomic load and a predicted branch —
// no allocation, no clock read, no registry lookup. The CI trace-overhead
// gate holds the tracing-off simulator inside the perf-regression band.
//
// Clock: ClockMode::kReal (default) reads steady_clock relative to the
// tracer epoch. ClockMode::kLogical counts network rounds — the driver
// advances one tick per SimNetwork::advance_round() — which makes every
// exported duration a pure function of the protocol, so RunReports are
// bit-identical across `--threads T` and across machines.
//
// Threading contract: record() paths (Span, counters) are safe from any
// thread. Structural calls — set_enabled, set_clock_mode, reset, tick,
// flush_thread_buffers, the exporters — are driver-thread-only, called
// between epochs, i.e. after ThreadPool::drain()/parallel_for returns
// (same rule as SimNetwork's round-structural methods).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "numeric/opcount.hpp"
#include "support/thread_pool.hpp"

namespace dmw::trace {

/// Sentinel for spans with no per-task/per-agent id.
inline constexpr std::uint64_t kNoId = ~std::uint64_t{0};

enum class ClockMode {
  kReal,     ///< steady_clock ns since the tracer epoch (human profiling)
  kLogical,  ///< driver-advanced tick counter, 1 tick per network round
};

/// One completed span occurrence.
struct SpanEvent {
  const char* name = nullptr;  ///< static-storage name passed to the Span
  std::uint64_t id = kNoId;    ///< task/agent id, kNoId when absent
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  int worker = -1;             ///< ThreadPool worker id; -1 = driver thread
  std::uint32_t depth = 0;     ///< nesting depth on its thread
  dmw::num::OpCounts ops;      ///< per-thread op-count delta of the span
};

/// Per-name aggregate over all flushed events (worker-id free, so it is
/// identical at any thread count).
struct SpanAggregate {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  dmw::num::OpCounts ops;
};

/// One message-flow endpoint: a send (Chrome "s") or a deliver ("f"),
/// stamped with the monotonic message id that links the pair into one
/// arrow across the round barrier. SimNetwork records these; they only
/// reach the Chrome exporter, never the RunReport (ids are assigned in
/// arrival order, so they are not thread-count invariant).
struct FlowEvent {
  const char* name = nullptr;  ///< static-storage kind label
  std::uint64_t id = 0;        ///< message id (1-based; 0 never recorded)
  std::int64_t ts_ns = 0;
  int worker = -1;  ///< ThreadPool worker id; -1 = driver thread
  bool send = false;  ///< true = flow start ("s"), false = finish ("f")
};

namespace detail {

/// The global on/off latch, inline so a disabled DMW_SPAN/DMW_COUNT costs
/// exactly one relaxed load + branch with no function call.
inline std::atomic<bool> g_enabled{false};

/// Calling thread's span buffer + active-span stack. First use registers
/// the state with the tracer (under the registry lock); subsequent access
/// is lock-free.
struct ThreadState {
  std::vector<SpanEvent> events;
  std::vector<FlowEvent> flows;     ///< buffered message-flow endpoints
  std::vector<const char*> stack;   ///< active span names, innermost last
  std::uint64_t dropped = 0;        ///< events beyond the per-thread cap
  int worker = -1;                  ///< worker id at registration
  std::uint64_t sequence = 0;       ///< registration order (flush tiebreak)
};

ThreadState& thread_state();

/// Per-thread buffer cap between flushes; overflow increments `dropped`
/// instead of reallocating without bound.
inline constexpr std::size_t kMaxBufferedEvents = std::size_t{1} << 16;

}  // namespace detail

/// True when tracing is enabled. The only cost a disabled span pays.
inline bool on() { return detail::g_enabled.load(std::memory_order_relaxed); }

class Tracer {
 public:
  static Tracer& instance();

  bool enabled() const { return on(); }
  void set_enabled(bool enabled);

  ClockMode clock_mode() const;
  /// Driver-only; call before the run being traced.
  void set_clock_mode(ClockMode mode);

  /// Run-relative monotonic now: steady_clock ns since the tracer epoch
  /// (kReal) or the logical tick count (kLogical). Works with tracing
  /// disabled too — the logger uses it for run-relative timestamps.
  std::int64_t now_ns() const;

  /// Advance the logical clock by one tick (no-op unless tracing is
  /// enabled). SimNetwork::advance_round() calls this, so in kLogical mode
  /// every duration is measured in protocol rounds.
  void tick();

  /// Drop all buffered/flushed events, re-arm the epoch and the logical
  /// clock, and zero every registered metric (registry entries survive —
  /// cached Counter& references stay valid). Driver-only.
  void reset();

  /// Move every thread's buffered events into the central log, visiting
  /// buffers in (worker id, registration) order. Driver-only, at an epoch
  /// boundary (ThreadPool::drain() or parallel_for has returned, so the
  /// workers' writes happen-before this read).
  void flush_thread_buffers();

  /// Flush + copy of the central event log. Driver-only.
  std::vector<SpanEvent> events();

  /// Flush + per-name aggregation, sorted by name. Worker ids and event
  /// order do not enter the result. Driver-only.
  std::vector<SpanAggregate> aggregate_spans();

  /// Total events dropped at the per-thread cap (0 in any sane run).
  std::uint64_t events_dropped();

  /// Innermost active span name on the calling thread, nullptr when none.
  const char* active_span() const;

  /// Flush + copy of the central message-flow log. Driver-only.
  std::vector<FlowEvent> flows();

  /// Chrome trace_event JSON ("X" complete events + thread-name metadata +
  /// "s"/"f" message-flow pairs; ts/dur in microseconds). Load in
  /// about:tracing or Perfetto. Driver-only.
  std::string chrome_trace_json();

 private:
  Tracer();
};

/// Record one message-flow endpoint (send when `send` is true, deliver
/// otherwise). `name` must have static storage duration. A no-op while
/// tracing is off; overflow past the per-thread cap counts as dropped.
inline void flow_event(const char* name, std::uint64_t id, bool send) {
  if (!on()) return;
  auto& state = detail::thread_state();
  if (state.flows.size() >= detail::kMaxBufferedEvents) {
    ++state.dropped;
    return;
  }
  FlowEvent event;
  event.name = name;
  event.id = id;
  event.ts_ns = Tracer::instance().now_ns();
  event.worker = ThreadPool::current_worker_id();
  event.send = send;
  state.flows.push_back(event);
}

/// RAII span. `name` must have static storage duration (string literals /
/// to_string tables); the tracer keeps the pointer, not a copy.
class Span {
 public:
  explicit Span(const char* name, std::uint64_t id = kNoId)
      : active_(on()) {
    if (!active_) return;
    name_ = name;
    id_ = id;
    auto& state = detail::thread_state();
    depth_ = static_cast<std::uint32_t>(state.stack.size());
    state.stack.push_back(name);
    begin_ns_ = Tracer::instance().now_ns();
    ops_begin_ = dmw::num::op_counts();
  }

  ~Span() {
    if (!active_) return;
    auto& state = detail::thread_state();
    state.stack.pop_back();
    if (state.events.size() >= detail::kMaxBufferedEvents) {
      ++state.dropped;
      return;
    }
    SpanEvent event;
    event.name = name_;
    event.id = id_;
    event.begin_ns = begin_ns_;
    event.end_ns = Tracer::instance().now_ns();
    event.worker = ThreadPool::current_worker_id();
    event.depth = depth_;
    event.ops = dmw::num::op_counts() - ops_begin_;
    state.events.push_back(event);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_;
  const char* name_ = nullptr;
  std::uint64_t id_ = kNoId;
  std::int64_t begin_ns_ = 0;
  std::uint32_t depth_ = 0;
  dmw::num::OpCounts ops_begin_;
};

// ---- Metrics registry ------------------------------------------------------

/// Monotone event counter. add() is thread-safe; references returned by
/// counter() stay valid for the process lifetime (reset() zeroes values,
/// it never removes entries).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void clear() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void clear() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Power-of-two histogram: observe(v) lands in bucket bit_width(v), i.e.
/// bucket b holds values in [2^(b-1), 2^b) and bucket 0 holds v == 0.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t v);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Non-empty buckets as (pow2 exponent, count), ascending.
  std::vector<std::pair<unsigned, std::uint64_t>> buckets() const;
  void clear();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Registry lookups: find-or-create by name, thread-safe, stable
/// references. Prefer DMW_COUNT on hot paths — it skips the lookup (and
/// the name allocation) entirely while tracing is off.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Sorted (name, value) snapshots of the non-zero registry entries.
std::vector<std::pair<std::string, std::uint64_t>> counters_snapshot();
std::vector<std::pair<std::string, std::int64_t>> gauges_snapshot();

/// Interval delta between two counters_snapshot() results (both sorted by
/// name): `newer - older`, dropping entries whose delta is zero. The serve
/// driver reports its RunReport-over-interval stream with this — counters
/// are cumulative, so the delta is what one interval actually did.
std::vector<std::pair<std::string, std::uint64_t>> counters_delta(
    const std::vector<std::pair<std::string, std::uint64_t>>& newer,
    const std::vector<std::pair<std::string, std::uint64_t>>& older);

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::pair<unsigned, std::uint64_t>> buckets;
};
std::vector<HistogramSnapshot> histograms_snapshot();

// ---- RunReport -------------------------------------------------------------

/// The stable machine-readable export: per-phase wall time / ops / traffic
/// (filled by proto::make_run_report from the Outcome), per-name span
/// aggregates and the metrics snapshots (filled by collect_into). By
/// design it contains no thread ids, worker counts or event orderings, so
/// under ClockMode::kLogical the JSON is bit-identical at any --threads T
/// (tests/test_trace.cpp and the CI determinism gate pin this).
struct RunReport {
  std::string label;
  std::uint64_t n = 0, m = 0, c = 0;
  bool aborted = false;
  std::string abort_reason;
  std::uint64_t rounds = 0;

  struct PhaseRow {
    std::string name;
    std::int64_t wall_ns = 0;
    dmw::num::OpCounts ops;
    std::uint64_t unicasts = 0;
    std::uint64_t broadcasts = 0;
    std::uint64_t p2p_messages = 0;
    std::uint64_t p2p_bytes = 0;
  };
  std::vector<PhaseRow> phases;

  /// One communication-ledger row: the (phase, round, kind, sender)
  /// attribution cell from SimNetwork::comm_rows(), label-resolved by
  /// proto::make_run_report. Ordered by (phase index, round, kind, sender),
  /// so the section is byte-identical across thread counts and schedules.
  struct CommRow {
    std::string phase;  ///< phase label ("II bidding", ...)
    std::uint64_t round = 0;
    std::string kind;  ///< registered kind name ("shares", ...)
    std::uint64_t sender = 0;
    std::uint64_t messages = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t p2p_messages = 0;
    std::uint64_t p2p_bytes = 0;
  };
  std::vector<CommRow> comm;

  std::vector<SpanAggregate> spans;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::uint64_t events_dropped = 0;

  /// Render the report. Top-level tag `"bench": "runreport"` lets
  /// tools/check_bench_regression.py dispatch on it like the bench JSONs.
  std::string json() const;
};

/// Fill the spans/metrics/events_dropped sections from the process-wide
/// tracer and registry. Driver-only (flushes thread buffers).
void collect_into(RunReport& report);

/// Prometheus text-format dump of the metrics registry: counters and gauges
/// as one sample each, histograms as summaries (p50/p90/p99 quantile
/// estimates from the pow2 buckets, plus _sum and _count). Names are
/// sanitized to the Prometheus charset ('/' and other separators become
/// '_') and prefixed "dmw_". dmw_serve --telemetry-out writes this
/// periodically for scraping a long-lived server.
std::string prometheus_text();

/// "+1.234567s" run-relative stamp ("t42" under the logical clock), plus
/// the calling thread's active span name when tracing. The logger's
/// default sink prefixes every line with it.
std::string log_stamp();

}  // namespace dmw::trace

#define DMW_TRACE_CONCAT2(a, b) a##b
#define DMW_TRACE_CONCAT(a, b) DMW_TRACE_CONCAT2(a, b)

/// DMW_SPAN("phase3/price_resolution", task) — RAII span over the rest of
/// the enclosing scope. The name must be a literal (or otherwise static).
#define DMW_SPAN(...) \
  ::dmw::trace::Span DMW_TRACE_CONCAT(dmw_span_, __LINE__)(__VA_ARGS__)

/// DMW_COUNT("expwin/fixedbase_evals", 1) — bump a registry counter iff
/// tracing is on. The Counter& is resolved once (lazily, only ever while
/// tracing) and cached in a function-local static, so the off path does no
/// allocation and the on path does no repeated lookup.
#define DMW_COUNT(name, n)                                      \
  do {                                                          \
    if (::dmw::trace::on()) {                                   \
      static ::dmw::trace::Counter& DMW_TRACE_CONCAT(           \
          dmw_counter_, __LINE__) = ::dmw::trace::counter(name); \
      DMW_TRACE_CONCAT(dmw_counter_, __LINE__).add(n);          \
    }                                                           \
  } while (0)
