// Secret-hygiene type layer.
//
// The paper's privacy results (Thm. 10) only hold if losing bids, Phase II
// share payloads and channel keys never leave an agent's process by accident.
// Secret<T> makes that property visible in the type system:
//
//   - the backing bytes are zeroized on destruction (and on overwrite), via
//     volatile stores the optimizer may not elide;
//   - reading the value requires an explicit reveal() call, which is the
//     single token the `dmwlint` secret-sink rule audits — a Secret-typed
//     identifier flowing into a logging/JSON/serialization sink without
//     reveal() is a lint error;
//   - ct_eq compares secret bytes in constant time (no data-dependent
//     early exit), for tag and key comparisons.
//
// Wiping dispatch: a member `wipe_secret()` wins if present (used by types
// with heap-owned state such as poly::Polynomial); otherwise trivially
// copyable values are byte-wiped in place, and std::vector / std::array
// recurse element-wise.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace dmw {

/// Overwrite `size` bytes at `data` with zeros through a volatile pointer so
/// the compiler cannot drop the stores as dead (the object is about to die).
inline void secure_wipe(void* data, std::size_t size) noexcept {
  volatile auto* p = static_cast<volatile std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) p[i] = 0;
}

template <class T>
concept HasWipeSecret = requires(T& value) {
  { value.wipe_secret() };
};

/// Zeroize a value in place. The value remains alive and assignable; its
/// previous content is unrecoverable.
template <class T>
void zeroize(T& value) noexcept {
  if constexpr (HasWipeSecret<T>) {
    value.wipe_secret();
  } else {
    static_assert(std::is_trivially_copyable_v<T>,
                  "zeroize: type needs a wipe_secret() member");
    secure_wipe(&value, sizeof(T));
  }
}

template <class T>
void zeroize(std::vector<T>& values) noexcept {
  for (auto& v : values) zeroize(v);
  values.clear();
}

template <class T, std::size_t N>
void zeroize(std::array<T, N>& values) noexcept {
  for (auto& v : values) zeroize(v);
}

/// Constant-time byte-span equality: every byte is inspected regardless of
/// where the first mismatch sits. Lengths are treated as public.
// dmwlint: constant-time
inline bool ct_eq(std::span<const std::uint8_t> a,
                  std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;  // dmwlint:allow(ct-branch) public length
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  return acc == 0;
}
// dmwlint: end-constant-time

/// Constant-time equality of trivially copyable values via their bytes.
template <class T>
  requires std::is_trivially_copyable_v<T>
bool ct_eq(const T& a, const T& b) noexcept {
  return ct_eq(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(&a), sizeof(T)),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(&b), sizeof(T)));
}

/// A value the rest of the program treats as radioactive: zeroized when the
/// wrapper dies or is overwritten, and only readable through reveal().
template <class T>
class Secret {
 public:
  Secret() = default;
  explicit Secret(T value) : value_(std::move(value)) {}

  Secret(const Secret& other) : value_(other.value_) {}
  Secret(Secret&& other) noexcept : value_(std::move(other.value_)) {
    zeroize(other.value_);
  }
  Secret& operator=(const Secret& other) {
    if (this != &other) {
      zeroize(value_);
      value_ = other.value_;
    }
    return *this;
  }
  Secret& operator=(Secret&& other) noexcept {
    if (this != &other) {
      zeroize(value_);
      value_ = std::move(other.value_);
      zeroize(other.value_);
    }
    return *this;
  }
  ~Secret() { zeroize(value_); }

  /// Explicit, auditable access to the secret value. dmwlint treats
  /// `<identifier>.reveal()` as the only sanctioned way a Secret may reach
  /// a logging / serialization sink.
  const T& reveal() const { return value_; }

  /// Mutable access, for filling the value in place (decode paths) and for
  /// strategy hooks that edit outgoing payloads.
  T& reveal_mut() { return value_; }

  /// Constant-time comparison of two secrets of trivially copyable type.
  friend bool ct_eq(const Secret& a, const Secret& b) noexcept
    requires std::is_trivially_copyable_v<T>
  {
    return ct_eq(a.value_, b.value_);
  }

 private:
  T value_{};
};

}  // namespace dmw
