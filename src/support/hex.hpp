// Hex encoding helpers (digest printing, test vectors, wire-format dumps).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace dmw {

inline std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

inline int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

inline std::vector<std::uint8_t> from_hex(std::string_view hex) {
  DMW_REQUIRE_MSG(hex.size() % 2 == 0, "hex string must have even length");
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    DMW_REQUIRE_MSG(hi >= 0 && lo >= 0, "invalid hex digit");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace dmw
