#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dmw {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  total_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

LineFit fit_line(std::span<const double> x, std::span<const double> y) {
  DMW_REQUIRE(x.size() == y.size());
  DMW_REQUIRE(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  DMW_CHECK_MSG(denom != 0.0, "degenerate x values in line fit");
  LineFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LineFit fit_power_law(std::span<const double> x, std::span<const double> y) {
  DMW_REQUIRE(x.size() == y.size());
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    DMW_REQUIRE_MSG(x[i] > 0 && y[i] > 0, "power-law fit needs positive data");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  return fit_line(lx, ly);
}

double percentile(std::vector<double> values, double p) {
  DMW_REQUIRE(!values.empty());
  DMW_REQUIRE(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace dmw
