// Tiny command-line flag parser for the tools/ binaries.
//
// Supports --name=value, --name value, and boolean --name. Unknown flags
// are errors (typos should not silently change an experiment). Positional
// arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace dmw {

class Flags {
 public:
  /// Parse argv. `known` lists every accepted flag name (without dashes);
  /// names ending in '!' denote boolean flags that take no value.
  Flags(int argc, const char* const* argv,
        const std::vector<std::string>& known) {
    std::map<std::string, bool> is_bool;
    for (const auto& name : known) {
      if (!name.empty() && name.back() == '!') {
        is_bool[name.substr(0, name.size() - 1)] = true;
      } else {
        is_bool[name] = false;
      }
    }
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      std::string name = arg, value;
      bool has_value = false;
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        name = arg.substr(0, eq);
        value = arg.substr(eq + 1);
        has_value = true;
      }
      const auto it = is_bool.find(name);
      DMW_REQUIRE_MSG(it != is_bool.end(), "unknown flag --" + name);
      if (it->second) {
        DMW_REQUIRE_MSG(!has_value, "flag --" + name + " takes no value");
        values_[name] = "true";
      } else {
        if (!has_value) {
          DMW_REQUIRE_MSG(i + 1 < argc, "flag --" + name + " needs a value");
          value = argv[++i];
        }
        values_[name] = value;
      }
    }
  }

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  std::string get_string(const std::string& name,
                         const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    std::size_t consumed = 0;
    const std::uint64_t parsed = std::stoull(it->second, &consumed);
    DMW_REQUIRE_MSG(consumed == it->second.size(),
                    "flag --" + name + " is not an integer");
    return parsed;
  }

  bool get_bool(const std::string& name) const {
    return get_string(name, "false") == "true";
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dmw
