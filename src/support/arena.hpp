// Per-worker bump/slab arena for per-auction scratch state.
//
// The marketplace server mode (tools/dmw_serve) runs an unbounded stream of
// auctions through one persistent engine. Each auction needs short-lived
// scratch — digest buffers, workload decode state, per-request bookkeeping
// — whose lifetime ends exactly at the auction boundary. Heap-allocating
// that scratch per request makes the steady state allocator-bound and
// fragmentation-prone; the fix is the classic thread-local-memory pattern
// (the ROADMAP's `tlm.c` reference): each pool worker owns a private arena of
// chained slabs, allocation is a bump of a cursor, and the per-auction
// "free" is a reset() that rewinds every cursor while *keeping* the slabs.
// After a short warmup the slab set reaches its high-water mark and the
// steady state performs zero heap allocations through the arena — a
// property the serve report exposes (`steady_state_slab_allocations`) and
// CI gates.
//
// Concurrency contract: an Arena is deliberately lock-free by *exclusion*,
// not by atomics — it is owned by exactly one thread at a time. WorkerArenas
// hands each ThreadPool worker (and the driver thread) its own slot, indexed
// by ThreadPool::current_worker_id(), so no two threads ever share an arena
// mid-auction. reset_all() may only run at auction boundaries, after the
// pool has drained (same happens-before edge the engine's epoch barrier
// provides). The TSan CI job exercises exactly this pattern via
// tests/test_arena.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace dmw {

/// Single-owner bump allocator over a chain of heap slabs.
///
/// allocate() bumps a cursor inside the current slab, chaining a new slab
/// only when the current one is exhausted (oversized requests get a
/// dedicated slab). reset() rewinds to the first slab without releasing
/// memory, so a warmed-up arena services any workload it has already seen
/// without touching the heap. Not thread-safe: one thread owns an Arena at a
/// time (see WorkerArenas).
class Arena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = 64 * 1024;

  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes == 0 ? kDefaultSlabBytes : slab_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Cumulative and live allocator state. `slab_allocations` is monotone —
  /// the steady-state gate asserts it stops moving after warmup.
  struct Stats {
    std::size_t slabs = 0;             ///< slabs currently chained
    std::size_t reserved_bytes = 0;    ///< total capacity across slabs
    std::size_t used_bytes = 0;        ///< bytes handed out since last reset
    std::size_t high_water_bytes = 0;  ///< max used_bytes over any cycle
    std::size_t slab_allocations = 0;  ///< heap slab allocations, cumulative
    std::size_t resets = 0;            ///< reset() calls, cumulative
  };

  /// Aligned raw storage valid until the next reset(). `align` must be a
  /// power of two; zero-byte requests return a unique aligned pointer.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    DMW_REQUIRE_MSG(align != 0 && (align & (align - 1)) == 0,
                    "Arena::allocate alignment must be a power of two");
    while (current_ < slabs_.size()) {
      Slab& slab = slabs_[current_];
      const std::size_t base =
          reinterpret_cast<std::size_t>(slab.data.get()) + offset_;
      const std::size_t aligned = (base + (align - 1)) & ~(align - 1);
      const std::size_t padding = aligned - base;
      if (offset_ + padding + bytes <= slab.size) {
        offset_ += padding + bytes;
        used_bytes_ += padding + bytes;
        if (used_bytes_ > high_water_bytes_) high_water_bytes_ = used_bytes_;
        return reinterpret_cast<void*>(aligned);
      }
      ++current_;
      offset_ = 0;
    }
    // Exhausted every chained slab: grow. Oversized requests get a dedicated
    // slab so a single large ask does not blow up the default slab size.
    const std::size_t need = bytes + align;
    add_slab(need > slab_bytes_ ? need : slab_bytes_);
    current_ = slabs_.size() - 1;
    offset_ = 0;
    return allocate(bytes, align);
  }

  /// Typed uninitialized storage for `count` objects of T.
  template <typename T>
  T* allocate_array(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewind every cursor to the first slab. Keeps all slabs: a warmed-up
  /// arena re-services the same footprint with zero heap traffic. Only legal
  /// when no allocation from the previous cycle is still referenced.
  void reset() {
    current_ = 0;
    offset_ = 0;
    used_bytes_ = 0;
    ++resets_;
  }

  /// Release every slab (cold restart). Mainly for tests.
  void release() {
    slabs_.clear();
    slabs_.shrink_to_fit();
    current_ = 0;
    offset_ = 0;
    used_bytes_ = 0;
  }

  Stats stats() const {
    Stats s;
    s.slabs = slabs_.size();
    for (const Slab& slab : slabs_) s.reserved_bytes += slab.size;
    s.used_bytes = used_bytes_;
    s.high_water_bytes = high_water_bytes_;
    s.slab_allocations = slab_allocations_;
    s.resets = resets_;
    return s;
  }

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void add_slab(std::size_t size) {
    Slab slab;
    slab.data = std::make_unique<std::byte[]>(size);
    slab.size = size;
    slabs_.push_back(std::move(slab));
    ++slab_allocations_;
  }

  const std::size_t slab_bytes_;
  std::vector<Slab> slabs_;
  std::size_t current_ = 0;  ///< index of the slab being bumped
  std::size_t offset_ = 0;   ///< bump cursor within slabs_[current_]
  std::size_t used_bytes_ = 0;
  std::size_t high_water_bytes_ = 0;
  std::size_t slab_allocations_ = 0;
  std::size_t resets_ = 0;
};

/// std::allocator adapter so standard containers can draw from an Arena.
/// deallocate() is a no-op — storage is reclaimed wholesale by
/// Arena::reset(). Containers using this must not outlive the cycle.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t count) { return arena_->allocate_array<T>(count); }
  void deallocate(T*, std::size_t) {}  // reclaimed by Arena::reset()

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  Arena* arena_;
};

/// Vector whose backing store lives in an Arena cycle.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/// One Arena per ThreadPool worker plus one for the driver thread, addressed
/// without locks via ThreadPool::current_worker_id(). Worker w uses slot w;
/// any non-pool thread (the serve driver) uses the extra trailing slot.
///
/// reset_all() is driver-only and only legal at an auction boundary, i.e.
/// after ThreadPool::drain()/parallel_for() returned — that barrier is the
/// happens-before edge that makes the unlocked resets race-free.
class WorkerArenas {
 public:
  explicit WorkerArenas(std::size_t workers,
                        std::size_t slab_bytes = Arena::kDefaultSlabBytes)
      : arenas_(make_arenas(workers + 1, slab_bytes)) {}

  /// Arena owned by the calling thread: per-worker slot on pool threads, the
  /// trailing driver slot elsewhere.
  Arena& local() {
    const int id = ThreadPool::current_worker_id();
    const std::size_t slot =
        id >= 0 ? static_cast<std::size_t>(id) : arenas_.size() - 1;
    DMW_REQUIRE_MSG(slot < arenas_.size(),
                    "WorkerArenas: worker id exceeds configured pool size");
    return *arenas_[slot];
  }

  Arena& at(std::size_t slot) { return *arenas_[slot]; }
  const Arena& at(std::size_t slot) const { return *arenas_[slot]; }

  /// Slot count including the driver slot.
  std::size_t size() const { return arenas_.size(); }

  /// Rewind every arena. Driver-only, at auction boundaries (post-drain).
  void reset_all() {
    DMW_REQUIRE_MSG(ThreadPool::current_worker_id() == -1,
                    "WorkerArenas::reset_all called from a pool worker");
    for (auto& arena : arenas_) arena->reset();
  }

  /// Sum of per-slot stats — the serve report's arena block.
  Arena::Stats combined_stats() const {
    Arena::Stats total;
    for (const auto& arena : arenas_) {
      const Arena::Stats s = arena->stats();
      total.slabs += s.slabs;
      total.reserved_bytes += s.reserved_bytes;
      total.used_bytes += s.used_bytes;
      total.high_water_bytes += s.high_water_bytes;
      total.slab_allocations += s.slab_allocations;
      total.resets += s.resets;
    }
    return total;
  }

 private:
  static std::vector<std::unique_ptr<Arena>> make_arenas(
      std::size_t count, std::size_t slab_bytes) {
    std::vector<std::unique_ptr<Arena>> arenas(count);
    for (auto& arena : arenas) arena = std::make_unique<Arena>(slab_bytes);
    return arenas;
  }

  // Pointees are built once in the ctor; each Arena is owned by exactly one
  // thread between reset_all() barriers (see class comment).
  const std::vector<std::unique_ptr<Arena>> arenas_;
};

}  // namespace dmw
