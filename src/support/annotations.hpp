// Clang thread-safety (capability) annotations + the annotated lock types.
//
// The parallel engine's correctness argument is a locking discipline: which
// mutex guards which member, which members are epoch-frozen read-only caches,
// which state only the driver thread may touch. TSan checks that discipline
// dynamically — on the paths the test suite happens to execute. This header
// makes it *compile-time* checked on every clang build: Clang's
// -Wthread-safety capability analysis verifies, per function, that every
// access to a DMW_GUARDED_BY member happens with its capability held, that
// DMW_REQUIRES contracts hold at every call site, and that a scoped lock
// actually covers the accesses it claims to. The CI `thread-safety` job
// compiles the whole tree (src, tools, tests, bench) with
// -Werror=thread-safety -Werror=thread-safety-beta.
//
// On GCC (which has no such analysis) every macro expands to nothing, so the
// annotations cost nothing and gate nothing there — dmwlint's
// `guarded-member` rule keeps new code annotated even when only GCC is
// around.
//
// Use the annotated wrappers below (Mutex, MutexLock, CondVar) instead of
// std::mutex / std::condition_variable: the std types carry no capability
// attributes, so locking through them is invisible to the analysis.
// dmwlint's `raw-thread` rule points protocol code here.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

// ---- attribute plumbing ----------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DMW_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DMW_THREAD_ANNOTATION
#define DMW_THREAD_ANNOTATION(x)  // expands to nothing outside clang
#endif

/// Tags a type as a capability ("mutex", "role", ...). Instances can then be
/// named in the other annotations.
#define DMW_CAPABILITY(x) DMW_THREAD_ANNOTATION(capability(x))

/// Tags an RAII type whose constructor acquires and destructor releases a
/// capability (MutexLock below).
#define DMW_SCOPED_CAPABILITY DMW_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read/written while holding `x`.
#define DMW_GUARDED_BY(x) DMW_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointee* may only be accessed while holding `x`
/// (the pointer itself is unguarded).
#define DMW_PT_GUARDED_BY(x) DMW_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and does not
/// release them).
#define DMW_REQUIRES(...) \
  DMW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (caller must not hold them).
#define DMW_ACQUIRE(...) \
  DMW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (caller must hold them).
#define DMW_RELEASE(...) \
  DMW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held (deadlock
/// guard for functions that acquire them internally).
#define DMW_EXCLUDES(...) DMW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to a value guarded by `x`.
#define DMW_RETURN_CAPABILITY(x) DMW_THREAD_ANNOTATION(lock_returned(x))

/// Assert-style acquisition: the function *checks at runtime* that the
/// calling context holds the capability (or is otherwise sole owner) and
/// tells the analysis to assume it from here on. Used for role capabilities
/// (driver-only state) where no lock object changes hands.
#define DMW_ASSERT_CAPABILITY(x) \
  DMW_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the discipline holds anyway.
#define DMW_NO_THREAD_SAFETY_ANALYSIS \
  DMW_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dmw {

// ---- annotated lock types --------------------------------------------------

/// std::mutex with the capability attribute, so DMW_GUARDED_BY(mutex_)
/// declarations are enforceable. Same cost: the wrapper is one std::mutex,
/// and every method is a forwarded inline call.
class DMW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DMW_ACQUIRE() { mu_.lock(); }
  void unlock() DMW_RELEASE() { mu_.unlock(); }

  /// The wrapped std::mutex, for CondVar only (a condition wait must
  /// unlock/relock the native handle). Not for direct locking — that would
  /// bypass the capability bookkeeping.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII scoped lock over Mutex (the std::lock_guard/std::unique_lock of the
/// annotated world). Constructor acquires, destructor releases; unlock()
/// releases early (drain() uses it to rethrow outside the critical section).
class DMW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DMW_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }

  /// Release before destruction (no-op if already released).
  void unlock() DMW_RELEASE() {
    if (mu_ != nullptr) {
      mu_->unlock();
      mu_ = nullptr;
    }
  }

  ~MutexLock() DMW_RELEASE() {
    if (mu_ != nullptr) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with Mutex. wait() takes the Mutex itself
/// (absl::CondVar-style) and is annotated DMW_REQUIRES(mu): the caller must
/// hold mu — via a MutexLock — and still holds it when wait() returns. The
/// implementation adopts the held native handle for the duration of the
/// wait and releases ownership back before returning, so the MutexLock's
/// destructor remains the one unlocker.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically unlock mu, block until notified, relock mu.
  void wait(Mutex& mu) DMW_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.native(), std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  /// wait() until pred() holds (checked with mu held).
  template <class Pred>
  void wait(Mutex& mu, Pred pred) DMW_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.native(), std::adopt_lock);
    cv_.wait(adopted, std::move(pred));
    adopted.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A role capability: a phantom lock that marks *thread identity* instead of
/// mutual exclusion. State annotated DMW_GUARDED_BY(role) may only be
/// touched by functions that DMW_REQUIRES(role) — and the role is only ever
/// produced by an AssertRole that runtime-checks the caller really is that
/// thread. ParallelProtocol uses one to make "driver-only" (deferred
/// failure commits, op-bank merges, epoch advancement) machine-checked
/// instead of a comment.
class DMW_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;
};

}  // namespace dmw
