#include "net/network.hpp"

#include <algorithm>

#include "net/serialize.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace dmw::net {

std::vector<std::uint8_t> Envelope::encode() const {
  Writer w;
  w.u32(from);
  w.u32(to);
  w.u32(kind);
  w.blob(payload);
  return w.take();
}

Envelope Envelope::decode(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  Envelope env;
  env.from = r.u32();
  env.to = r.u32();
  env.kind = r.u32();
  env.payload = r.blob();
  r.expect_done();
  return env;
}

std::vector<std::uint8_t> Posting::encode() const {
  Writer w;
  w.u32(from);
  w.u32(kind);
  w.u64(round);
  w.blob(payload);
  return w.take();
}

Posting Posting::decode(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  Posting posting;
  posting.from = r.u32();
  posting.kind = r.u32();
  posting.round = r.u64();
  posting.payload = r.blob();
  r.expect_done();
  return posting;
}

namespace {

/// Kind-name registry. Leaked (registrations run at static init from
/// dmw/messages.cpp, lookups can outlive main's locals); names are static
/// storage, so the registry keeps bare pointers.
struct KindRegistry {
  Mutex mutex;
  std::map<std::uint32_t, const char*> names DMW_GUARDED_BY(mutex);
};

KindRegistry& kind_registry() {
  static KindRegistry* r = new KindRegistry;
  return *r;
}

}  // namespace

void register_comm_kind(std::uint32_t kind, const char* name) {
  DMW_REQUIRE(name != nullptr);
  auto& r = kind_registry();
  MutexLock lock(r.mutex);
  r.names[kind] = name;
}

std::string comm_kind_name(std::uint32_t kind) {
  auto& r = kind_registry();
  MutexLock lock(r.mutex);
  const auto it = r.names.find(kind);
  if (it != r.names.end()) return it->second;
  return "kind" + std::to_string(kind);
}

const char* comm_kind_label(std::uint32_t kind) {
  auto& r = kind_registry();
  MutexLock lock(r.mutex);
  const auto it = r.names.find(kind);
  return it != r.names.end() ? it->second : "unregistered";
}

SimNetwork::SimNetwork(std::size_t n_agents)
    : n_(n_agents), inboxes_(n_agents), per_agent_(n_agents) {
  DMW_REQUIRE(n_agents >= 1);
  for (auto& inbox : inboxes_) inbox = std::make_unique<Inbox>();
}

void SimNetwork::enable_concurrency(std::size_t workers) {
  DMW_REQUIRE(workers >= 1);
  if (worker_stats_.size() < workers) {
    worker_stats_.resize(workers);
    for (auto& slot : worker_stats_) slot.per_agent.resize(n_);
  }
}

std::pair<TrafficStats*, TrafficStats*> SimNetwork::stat_slots(AgentId from) {
  const int worker = ThreadPool::current_worker_id();
  if (worker >= 0 && static_cast<std::size_t>(worker) < worker_stats_.size()) {
    auto& slot = worker_stats_[static_cast<std::size_t>(worker)];
    return {&slot.totals, &slot.per_agent[from]};
  }
  return {&totals_, &per_agent_[from]};
}

std::map<std::uint64_t, CommCounts>& SimNetwork::comm_slot() {
  const int worker = ThreadPool::current_worker_id();
  if (worker >= 0 && static_cast<std::size_t>(worker) < worker_stats_.size())
    return worker_stats_[static_cast<std::size_t>(worker)].comm;
  return comm_cells_;
}

std::uint64_t SimNetwork::record_comm(AgentId from, std::uint32_t kind,
                                      std::uint64_t p2p_fanout,
                                      std::uint64_t size) {
  CommCounts& cell = comm_slot()[(std::uint64_t{kind} << 32) | from];
  cell.messages += 1;
  cell.wire_bytes += size;
  cell.p2p_messages += p2p_fanout;
  cell.p2p_bytes += p2p_fanout * size;
  return next_msg_id_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void SimNetwork::fold_comm_cells() {
  const auto fold = [&](std::map<std::uint64_t, CommCounts>& cells) {
    for (const auto& [packed, counts] : cells) {
      const auto kind = static_cast<std::uint32_t>(packed >> 32);
      const auto sender = static_cast<AgentId>(packed & 0xffffffffu);
      comm_ledger_[CommKey{comm_phase_, round_, kind, sender}] += counts;
      // Per-kind registry counters: cumulative across rounds, so they show
      // up in RunReport metrics and in the serve interval counter deltas.
      const std::string name = comm_kind_name(kind);
      trace::counter("net/kind/" + name + "/messages").add(counts.messages);
      trace::counter("net/kind/" + name + "/bytes").add(counts.wire_bytes);
    }
    cells.clear();
  };
  fold(comm_cells_);
  for (auto& slot : worker_stats_) fold(slot.comm);
}

void SimNetwork::flush_worker_stats() {
  fold_comm_cells();
  for (auto& slot : worker_stats_) {
    totals_ += slot.totals;
    slot.totals = TrafficStats{};
    for (std::size_t a = 0; a < n_; ++a) {
      per_agent_[a] += slot.per_agent[a];
      slot.per_agent[a] = TrafficStats{};
    }
  }
}

void SimNetwork::set_comm_phase(std::uint32_t phase, std::string_view label) {
  comm_phase_ = phase;
  auto& stored = comm_phase_labels_[phase];
  if (stored.empty()) stored.assign(label);
}

std::vector<CommRow> SimNetwork::comm_rows() const {
  std::vector<CommRow> out;
  out.reserve(comm_ledger_.size());
  for (const auto& [key, counts] : comm_ledger_) {
    CommRow row;
    row.key = key;
    const auto it = comm_phase_labels_.find(key.phase);
    row.phase_label = it != comm_phase_labels_.end()
                          ? it->second
                          : std::string("unattributed");
    row.kind_name = comm_kind_name(key.kind);
    row.counts = counts;
    out.push_back(std::move(row));
  }
  return out;
}

void SimNetwork::send(AgentId from, AgentId to, std::uint32_t kind,
                      std::vector<std::uint8_t> payload) {
  DMW_REQUIRE(from < n_ && to < n_);
  Envelope env{from, to, kind, std::move(payload)};

  const std::size_t size = env.wire_size();
  const auto [totals, sender] = stat_slots(from);
  totals->unicast_messages += 1;
  totals->unicast_bytes += size;
  totals->p2p_equivalent_messages += 1;
  totals->p2p_equivalent_bytes += size;
  sender->unicast_messages += 1;
  sender->unicast_bytes += size;
  sender->p2p_equivalent_messages += 1;
  sender->p2p_equivalent_bytes += size;
  if (trace::on()) {
    // Ledger + flow stamp. Billed like TrafficStats — before the injector,
    // so a dropped message still counts as sent (its flow arrow dangles,
    // which is exactly what a Perfetto view of a lossy run should show).
    env.msg_id = record_comm(from, kind, 1, size);
    trace::flow_event(comm_kind_label(kind), env.msg_id, /*send=*/true);
  }

  std::uint64_t deliver_round = round_ + 1;
  if (injector_) {
    const FaultAction action = injector_(env);
    if (action.drop) return;
    deliver_round += action.extra_delay_rounds;
    if (action.replace_payload) env.payload = *action.replace_payload;
  }
  Inbox& inbox = *inboxes_[to];
  MutexLock lock(inbox.mutex);
  inbox.items.push_back(Pending{std::move(env), deliver_round});
}

void SimNetwork::publish(AgentId from, std::uint32_t kind,
                         std::vector<std::uint8_t> payload) {
  DMW_REQUIRE(from < n_);
  Posting posting{from, kind, std::move(payload), round_ + 1};

  const std::size_t size = posting.wire_size();
  const std::uint64_t fanout = n_ > 1 ? n_ - 1 : 1;
  const auto [totals, sender] = stat_slots(from);
  totals->broadcast_messages += 1;
  totals->broadcast_bytes += size;
  totals->p2p_equivalent_messages += fanout;
  totals->p2p_equivalent_bytes += fanout * size;
  sender->broadcast_messages += 1;
  sender->broadcast_bytes += size;
  sender->p2p_equivalent_messages += fanout;
  sender->p2p_equivalent_bytes += fanout * size;
  if (trace::on()) {
    posting.msg_id = record_comm(from, kind, fanout, size);
    trace::flow_event(comm_kind_label(kind), posting.msg_id, /*send=*/true);
  }

  MutexLock lock(pending_mutex_);
  pending_postings_.push_back(std::move(posting));
}

std::vector<Envelope> SimNetwork::receive(AgentId to) {
  DMW_REQUIRE(to < n_);
  std::vector<Envelope> out;
  {
    Inbox& inbox = *inboxes_[to];
    MutexLock lock(inbox.mutex);
    // Stable extraction preserving arrival order among deliverable messages.
    std::deque<Pending> keep;
    for (auto& pending : inbox.items) {
      if (pending.deliver_round <= round_) {
        out.push_back(std::move(pending.env));
      } else {
        keep.push_back(std::move(pending));
      }
    }
    inbox.items = std::move(keep);
  }
  if (trace::on()) {
    // Close the send->deliver flow arrows on the receiving thread.
    for (const Envelope& env : out) {
      if (env.msg_id != 0)
        trace::flow_event(comm_kind_label(env.kind), env.msg_id,
                          /*send=*/false);
    }
  }
  return out;
}

std::vector<Posting> SimNetwork::read_bulletin(std::size_t& cursor) const {
  // bulletin_ only grows in advance_round() (driver thread, between stage
  // barriers), so concurrent readers need no lock.
  std::vector<Posting> out;
  for (; cursor < bulletin_.size(); ++cursor) out.push_back(bulletin_[cursor]);
  return out;
}

void SimNetwork::advance_round() {
  DMW_SPAN("net/advance_round");
  trace::Tracer::instance().tick();
  flush_worker_stats();
  ++round_;
  const std::size_t published_from = bulletin_.size();
  {
    // Driver-only and between barriers, so uncontended — but the lock keeps
    // the capability analysis sound for pending_postings_.
    MutexLock lock(pending_mutex_);
    auto it = std::stable_partition(
        pending_postings_.begin(), pending_postings_.end(),
        [&](const Posting& posting) { return posting.round > round_; });
    for (auto moved = it; moved != pending_postings_.end(); ++moved)
      bulletin_.push_back(std::move(*moved));
    pending_postings_.erase(it, pending_postings_.end());
  }
  if (trace::on()) {
    // A posting is "delivered" the moment it reaches the bulletin: close its
    // flow arrow here on the driver, across the round barrier.
    for (std::size_t b = published_from; b < bulletin_.size(); ++b) {
      const Posting& posting = bulletin_[b];
      if (posting.msg_id != 0)
        trace::flow_event(comm_kind_label(posting.kind), posting.msg_id,
                          /*send=*/false);
    }
  }
  if (trace::on()) {
    // Per-round traffic shape: observe the delta since the last traced
    // boundary (totals_ is complete here — workers flushed above).
    static trace::Histogram& messages =
        trace::histogram("net/round_p2p_messages");
    static trace::Histogram& bytes = trace::histogram("net/round_p2p_bytes");
    static trace::Gauge& postings = trace::gauge("net/bulletin_postings");
    messages.observe(totals_.p2p_equivalent_messages -
                     traced_.p2p_equivalent_messages);
    bytes.observe(totals_.p2p_equivalent_bytes - traced_.p2p_equivalent_bytes);
    postings.set(static_cast<std::int64_t>(bulletin_.size()));
    traced_ = totals_;
  }
}

std::size_t SimNetwork::in_flight() const {
  std::size_t count = 0;
  {
    MutexLock lock(pending_mutex_);
    count = pending_postings_.size();
  }
  for (const auto& inbox : inboxes_) {
    MutexLock lock(inbox->mutex);
    for (const auto& pending : inbox->items) {
      if (pending.deliver_round > round_) ++count;
    }
  }
  return count;
}

void SimNetwork::reset_stats() {
  totals_ = TrafficStats{};
  traced_ = TrafficStats{};
  for (auto& s : per_agent_) s = TrafficStats{};
  for (auto& slot : worker_stats_) {
    slot.totals = TrafficStats{};
    for (auto& s : slot.per_agent) s = TrafficStats{};
    slot.comm.clear();
  }
  comm_cells_.clear();
  comm_ledger_.clear();
  comm_phase_ = kCommPhaseUnattributed;
}

}  // namespace dmw::net
