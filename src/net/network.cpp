#include "net/network.hpp"

#include <algorithm>

namespace dmw::net {

SimNetwork::SimNetwork(std::size_t n_agents)
    : n_(n_agents), inboxes_(n_agents), per_agent_(n_agents) {
  DMW_REQUIRE(n_agents >= 1);
}

void SimNetwork::send(AgentId from, AgentId to, std::uint32_t kind,
                      std::vector<std::uint8_t> payload) {
  DMW_REQUIRE(from < n_ && to < n_);
  Envelope env{from, to, kind, std::move(payload)};

  const std::size_t size = env.wire_size();
  totals_.unicast_messages += 1;
  totals_.unicast_bytes += size;
  totals_.p2p_equivalent_messages += 1;
  totals_.p2p_equivalent_bytes += size;
  per_agent_[from].unicast_messages += 1;
  per_agent_[from].unicast_bytes += size;
  per_agent_[from].p2p_equivalent_messages += 1;
  per_agent_[from].p2p_equivalent_bytes += size;

  std::uint64_t deliver_round = round_ + 1;
  if (injector_) {
    const FaultAction action = injector_(env);
    if (action.drop) return;
    deliver_round += action.extra_delay_rounds;
    if (action.replace_payload) env.payload = *action.replace_payload;
  }
  inboxes_[to].push_back(Pending{std::move(env), deliver_round});
}

void SimNetwork::publish(AgentId from, std::uint32_t kind,
                         std::vector<std::uint8_t> payload) {
  DMW_REQUIRE(from < n_);
  Posting posting{from, kind, std::move(payload), round_ + 1};

  const std::size_t size = posting.wire_size();
  const std::uint64_t fanout = n_ > 1 ? n_ - 1 : 1;
  totals_.broadcast_messages += 1;
  totals_.broadcast_bytes += size;
  totals_.p2p_equivalent_messages += fanout;
  totals_.p2p_equivalent_bytes += fanout * size;
  per_agent_[from].broadcast_messages += 1;
  per_agent_[from].broadcast_bytes += size;
  per_agent_[from].p2p_equivalent_messages += fanout;
  per_agent_[from].p2p_equivalent_bytes += fanout * size;

  pending_postings_.push_back(std::move(posting));
}

std::vector<Envelope> SimNetwork::receive(AgentId to) {
  DMW_REQUIRE(to < n_);
  std::vector<Envelope> out;
  auto& inbox = inboxes_[to];
  // Stable extraction preserving arrival order among deliverable messages.
  std::deque<Pending> keep;
  for (auto& pending : inbox) {
    if (pending.deliver_round <= round_) {
      out.push_back(std::move(pending.env));
    } else {
      keep.push_back(std::move(pending));
    }
  }
  inbox = std::move(keep);
  return out;
}

std::vector<Posting> SimNetwork::read_bulletin(std::size_t& cursor) const {
  std::vector<Posting> out;
  for (; cursor < bulletin_.size(); ++cursor) out.push_back(bulletin_[cursor]);
  return out;
}

void SimNetwork::advance_round() {
  ++round_;
  auto it = std::stable_partition(
      pending_postings_.begin(), pending_postings_.end(),
      [&](const Posting& posting) { return posting.round > round_; });
  for (auto moved = it; moved != pending_postings_.end(); ++moved)
    bulletin_.push_back(std::move(*moved));
  pending_postings_.erase(it, pending_postings_.end());
}

std::size_t SimNetwork::in_flight() const {
  std::size_t count = pending_postings_.size();
  for (const auto& inbox : inboxes_) {
    for (const auto& pending : inbox) {
      if (pending.deliver_round > round_) ++count;
    }
  }
  return count;
}

void SimNetwork::reset_stats() {
  totals_ = TrafficStats{};
  for (auto& s : per_agent_) s = TrafficStats{};
}

}  // namespace dmw::net
