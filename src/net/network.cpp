#include "net/network.hpp"

#include <algorithm>

#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace dmw::net {

SimNetwork::SimNetwork(std::size_t n_agents)
    : n_(n_agents), inboxes_(n_agents), per_agent_(n_agents) {
  DMW_REQUIRE(n_agents >= 1);
  for (auto& inbox : inboxes_) inbox = std::make_unique<Inbox>();
}

void SimNetwork::enable_concurrency(std::size_t workers) {
  DMW_REQUIRE(workers >= 1);
  if (worker_stats_.size() < workers) {
    worker_stats_.resize(workers);
    for (auto& slot : worker_stats_) slot.per_agent.resize(n_);
  }
}

std::pair<TrafficStats*, TrafficStats*> SimNetwork::stat_slots(AgentId from) {
  const int worker = ThreadPool::current_worker_id();
  if (worker >= 0 && static_cast<std::size_t>(worker) < worker_stats_.size()) {
    auto& slot = worker_stats_[static_cast<std::size_t>(worker)];
    return {&slot.totals, &slot.per_agent[from]};
  }
  return {&totals_, &per_agent_[from]};
}

void SimNetwork::flush_worker_stats() {
  for (auto& slot : worker_stats_) {
    totals_ += slot.totals;
    slot.totals = TrafficStats{};
    for (std::size_t a = 0; a < n_; ++a) {
      per_agent_[a] += slot.per_agent[a];
      slot.per_agent[a] = TrafficStats{};
    }
  }
}

void SimNetwork::send(AgentId from, AgentId to, std::uint32_t kind,
                      std::vector<std::uint8_t> payload) {
  DMW_REQUIRE(from < n_ && to < n_);
  Envelope env{from, to, kind, std::move(payload)};

  const std::size_t size = env.wire_size();
  const auto [totals, sender] = stat_slots(from);
  totals->unicast_messages += 1;
  totals->unicast_bytes += size;
  totals->p2p_equivalent_messages += 1;
  totals->p2p_equivalent_bytes += size;
  sender->unicast_messages += 1;
  sender->unicast_bytes += size;
  sender->p2p_equivalent_messages += 1;
  sender->p2p_equivalent_bytes += size;

  std::uint64_t deliver_round = round_ + 1;
  if (injector_) {
    const FaultAction action = injector_(env);
    if (action.drop) return;
    deliver_round += action.extra_delay_rounds;
    if (action.replace_payload) env.payload = *action.replace_payload;
  }
  Inbox& inbox = *inboxes_[to];
  MutexLock lock(inbox.mutex);
  inbox.items.push_back(Pending{std::move(env), deliver_round});
}

void SimNetwork::publish(AgentId from, std::uint32_t kind,
                         std::vector<std::uint8_t> payload) {
  DMW_REQUIRE(from < n_);
  Posting posting{from, kind, std::move(payload), round_ + 1};

  const std::size_t size = posting.wire_size();
  const std::uint64_t fanout = n_ > 1 ? n_ - 1 : 1;
  const auto [totals, sender] = stat_slots(from);
  totals->broadcast_messages += 1;
  totals->broadcast_bytes += size;
  totals->p2p_equivalent_messages += fanout;
  totals->p2p_equivalent_bytes += fanout * size;
  sender->broadcast_messages += 1;
  sender->broadcast_bytes += size;
  sender->p2p_equivalent_messages += fanout;
  sender->p2p_equivalent_bytes += fanout * size;

  MutexLock lock(pending_mutex_);
  pending_postings_.push_back(std::move(posting));
}

std::vector<Envelope> SimNetwork::receive(AgentId to) {
  DMW_REQUIRE(to < n_);
  std::vector<Envelope> out;
  Inbox& inbox = *inboxes_[to];
  MutexLock lock(inbox.mutex);
  // Stable extraction preserving arrival order among deliverable messages.
  std::deque<Pending> keep;
  for (auto& pending : inbox.items) {
    if (pending.deliver_round <= round_) {
      out.push_back(std::move(pending.env));
    } else {
      keep.push_back(std::move(pending));
    }
  }
  inbox.items = std::move(keep);
  return out;
}

std::vector<Posting> SimNetwork::read_bulletin(std::size_t& cursor) const {
  // bulletin_ only grows in advance_round() (driver thread, between stage
  // barriers), so concurrent readers need no lock.
  std::vector<Posting> out;
  for (; cursor < bulletin_.size(); ++cursor) out.push_back(bulletin_[cursor]);
  return out;
}

void SimNetwork::advance_round() {
  DMW_SPAN("net/advance_round");
  trace::Tracer::instance().tick();
  flush_worker_stats();
  ++round_;
  {
    // Driver-only and between barriers, so uncontended — but the lock keeps
    // the capability analysis sound for pending_postings_.
    MutexLock lock(pending_mutex_);
    auto it = std::stable_partition(
        pending_postings_.begin(), pending_postings_.end(),
        [&](const Posting& posting) { return posting.round > round_; });
    for (auto moved = it; moved != pending_postings_.end(); ++moved)
      bulletin_.push_back(std::move(*moved));
    pending_postings_.erase(it, pending_postings_.end());
  }
  if (trace::on()) {
    // Per-round traffic shape: observe the delta since the last traced
    // boundary (totals_ is complete here — workers flushed above).
    static trace::Histogram& messages =
        trace::histogram("net/round_p2p_messages");
    static trace::Histogram& bytes = trace::histogram("net/round_p2p_bytes");
    static trace::Gauge& postings = trace::gauge("net/bulletin_postings");
    messages.observe(totals_.p2p_equivalent_messages -
                     traced_.p2p_equivalent_messages);
    bytes.observe(totals_.p2p_equivalent_bytes - traced_.p2p_equivalent_bytes);
    postings.set(static_cast<std::int64_t>(bulletin_.size()));
    traced_ = totals_;
  }
}

std::size_t SimNetwork::in_flight() const {
  std::size_t count = 0;
  {
    MutexLock lock(pending_mutex_);
    count = pending_postings_.size();
  }
  for (const auto& inbox : inboxes_) {
    MutexLock lock(inbox->mutex);
    for (const auto& pending : inbox->items) {
      if (pending.deliver_round > round_) ++count;
    }
  }
  return count;
}

void SimNetwork::reset_stats() {
  totals_ = TrafficStats{};
  traced_ = TrafficStats{};
  for (auto& s : per_agent_) s = TrafficStats{};
  for (auto& slot : worker_stats_) {
    slot.totals = TrafficStats{};
    for (auto& s : slot.per_agent) s = TrafficStats{};
  }
}

}  // namespace dmw::net
