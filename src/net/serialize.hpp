// Binary wire format.
//
// Every protocol message is serialized to bytes before entering the
// simulated network, so the communication-cost measurements (Table 1,
// Theorem 11) count real encoded sizes, not in-memory object counts.
// Little-endian fixed-width integers plus LEB128 varints for lengths.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "numeric/biguint.hpp"
#include "numeric/group.hpp"
#include "support/check.hpp"

namespace dmw::net {

class Writer {
 public:
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

  void u8(std::uint8_t v) { bytes_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// LEB128 variable-length unsigned integer.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }

  void raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  void blob(std::span<const std::uint8_t> data) {
    varint(data.size());
    raw(data);
  }

  void str(std::string_view s) {
    varint(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  template <std::size_t W>
  void big(const dmw::num::BigUInt<W>& v) {
    for (std::size_t i = 0; i < W; ++i) u64(v.limb(i));
  }

  void u64_vec(const std::vector<std::uint64_t>& v) {
    varint(v.size());
    for (auto x : v) u64(x);
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Thrown on malformed input (truncated buffer, bad varint, trailing bytes).
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_++]} << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_++]} << (8 * i);
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      need(1);
      const std::uint8_t b = data_[pos_++];
      if (shift == 63 && (b & 0x7e) != 0)
        throw DecodeError("varint overflows 64 bits");
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
      if (shift >= 64) throw DecodeError("varint too long");
    }
  }

  std::vector<std::uint8_t> blob() {
    const std::uint64_t n = varint();
    need(n);
    std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                  data_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string str() {
    const std::uint64_t n = varint();
    need(n);
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  template <std::size_t W>
  dmw::num::BigUInt<W> big() {
    dmw::num::BigUInt<W> v;
    for (std::size_t i = 0; i < W; ++i) v.set_limb(i, u64());
    return v;
  }

  std::vector<std::uint64_t> u64_vec() {
    const std::uint64_t n = varint();
    if (n > remaining() / 8) throw DecodeError("u64 vector length too large");
    std::vector<std::uint64_t> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(u64());
    return out;
  }

  void expect_done() const {
    if (!done()) throw DecodeError("trailing bytes after message");
  }

 private:
  void need(std::uint64_t n) const {
    if (remaining() < n) throw DecodeError("buffer underrun");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// Group-parameterized scalar/element codecs: Group64 uses raw u64, GroupBig
// uses fixed-width limb dumps. Overload on the group type.
inline void write_scalar(Writer& w, const dmw::num::Group64&,
                         dmw::num::Group64::Scalar s) {
  w.u64(s);
}
inline void write_elem(Writer& w, const dmw::num::Group64&,
                       dmw::num::Group64::Elem e) {
  w.u64(e);
}
inline dmw::num::Group64::Scalar read_scalar(Reader& r,
                                             const dmw::num::Group64&) {
  return r.u64();
}
inline dmw::num::Group64::Elem read_elem(Reader& r, const dmw::num::Group64&) {
  return r.u64();
}

template <std::size_t W>
void write_scalar(Writer& w, const dmw::num::GroupBig<W>&,
                  const dmw::num::BigUInt<W>& s) {
  w.big(s);
}
template <std::size_t W>
void write_elem(Writer& w, const dmw::num::GroupBig<W>&,
                const dmw::num::BigUInt<W>& e) {
  w.big(e);
}
template <std::size_t W>
dmw::num::BigUInt<W> read_scalar(Reader& r, const dmw::num::GroupBig<W>&) {
  return r.template big<W>();
}
template <std::size_t W>
dmw::num::BigUInt<W> read_elem(Reader& r, const dmw::num::GroupBig<W>&) {
  return r.template big<W>();
}

}  // namespace dmw::net
