// Simulated network: private point-to-point channels plus a broadcast
// bulletin.
//
// The paper assumes "a communication infrastructure composed of a broadcast
// channel and of private channels among the agents" (§3) and, for the cost
// accounting, "no explicit broadcast facilities ... implemented using
// point-to-point message transmissions" (Thm. 11). SimNetwork models exactly
// that: unicast queues with round-based delivery, and a publish operation
// that is billed as n-1 unicasts.
//
// Delivery is deterministic. Fault injection (drop/corrupt/delay) is a hook
// on each channel, used by the robustness tests.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace dmw::net {

using AgentId = std::uint32_t;  ///< dense agent index 0..n-1

/// A sealed unicast envelope.
struct Envelope {
  AgentId from = 0;
  AgentId to = 0;
  std::uint32_t kind = 0;  ///< protocol-defined message kind tag
  std::vector<std::uint8_t> payload;

  /// Wire size charged to the traffic statistics: fixed header + payload.
  std::size_t wire_size() const { return 12 + payload.size(); }
};

/// A published (broadcast) record. Readable by everyone including observers.
struct Posting {
  AgentId from = 0;
  std::uint32_t kind = 0;
  std::vector<std::uint8_t> payload;
  std::uint64_t round = 0;  ///< round in which it became visible

  std::size_t wire_size() const { return 12 + payload.size(); }
};

/// Per-agent and aggregate traffic statistics.
struct TrafficStats {
  std::uint64_t unicast_messages = 0;
  std::uint64_t unicast_bytes = 0;
  std::uint64_t broadcast_messages = 0;  ///< publish operations
  std::uint64_t broadcast_bytes = 0;     ///< payload bytes published
  /// Point-to-point equivalents (each publish billed as n-1 unicasts).
  std::uint64_t p2p_equivalent_messages = 0;
  std::uint64_t p2p_equivalent_bytes = 0;

  TrafficStats& operator+=(const TrafficStats& o) {
    unicast_messages += o.unicast_messages;
    unicast_bytes += o.unicast_bytes;
    broadcast_messages += o.broadcast_messages;
    broadcast_bytes += o.broadcast_bytes;
    p2p_equivalent_messages += o.p2p_equivalent_messages;
    p2p_equivalent_bytes += o.p2p_equivalent_bytes;
    return *this;
  }
};

/// Fault-injection decision for one in-flight envelope.
struct FaultAction {
  bool drop = false;
  std::uint32_t extra_delay_rounds = 0;
  /// If set, replaces the payload (models corruption).
  std::optional<std::vector<std::uint8_t>> replace_payload;
};

using FaultInjector = std::function<FaultAction(const Envelope&)>;

/// Round-synchronous simulated network.
///
/// Messages sent during round r are visible to receivers from round r+1
/// (plus any injected delay). advance_round() moves the clock.
///
/// Concurrency: after enable_concurrency(workers), send()/publish()/
/// receive()/read_bulletin() may be called from ThreadPool workers while a
/// protocol stage is in flight. Queue mutations take short per-inbox (or
/// bulletin) locks; traffic statistics stay lock-free on the hot path by
/// writing to a per-worker accumulator slot selected via
/// ThreadPool::current_worker_id(), folded into the base counters at the
/// next advance_round(). Everything round-structural — advance_round(),
/// in_flight(), stats(), reset_stats(), set_fault_injector() — remains
/// driver-thread-only (the protocol runner calls them between stage
/// barriers). A fault injector installed on a concurrent run is invoked
/// from worker threads and must be thread-safe.
class SimNetwork {
 public:
  explicit SimNetwork(std::size_t n_agents);

  std::size_t agent_count() const { return n_; }
  std::uint64_t round() const { return round_; }

  /// Private channel send (Phase II share distribution).
  void send(AgentId from, AgentId to, std::uint32_t kind,
            std::vector<std::uint8_t> payload);

  /// Broadcast publish (commitments, Λ/Ψ, disclosures). Billed as n-1
  /// unicasts in the point-to-point-equivalent statistics.
  void publish(AgentId from, std::uint32_t kind,
               std::vector<std::uint8_t> payload);

  /// Drain the unicast messages addressed to `to` that are deliverable in
  /// the current round.
  std::vector<Envelope> receive(AgentId to);

  /// All postings visible in the current round (index into the global log).
  /// Callers track their own read cursor.
  const std::vector<Posting>& bulletin() const { return bulletin_; }

  /// Postings from `cursor` onward that are already visible; advances cursor.
  std::vector<Posting> read_bulletin(std::size_t& cursor) const;

  void advance_round();

  /// Number of messages/postings still in flight (sent but not yet
  /// visible). The protocol runner advances rounds until the network is
  /// idle, so injected delivery delays cost extra rounds instead of
  /// spuriously aborting the (round-synchronized) protocol.
  std::size_t in_flight() const;

  void set_fault_injector(FaultInjector injector) {
    injector_ = std::move(injector);
  }

  /// Allocate `workers` per-worker traffic-accumulator slots so stat
  /// updates from pool threads stay lock-free. Idempotent; call before the
  /// first concurrent stage. With no slots (the default), counters are
  /// updated directly — the historical single-threaded behaviour.
  void enable_concurrency(std::size_t workers);

  /// Fold every per-worker accumulator into the base counters. Called
  /// automatically by advance_round(); callers only need it when reading
  /// stats mid-round after a concurrent stage.
  void flush_worker_stats();

  /// Whole-run totals. Complete after advance_round()/flush_worker_stats();
  /// during a concurrent stage, workers' traffic is still parked in their
  /// accumulator slots.
  const TrafficStats& stats() const { return totals_; }
  const TrafficStats& stats_for(AgentId a) const {
    DMW_REQUIRE(a < n_);
    return per_agent_[a];
  }
  void reset_stats();

 private:
  struct Pending {
    Envelope env;
    std::uint64_t deliver_round;
  };

  /// One worker's private counters; padded out by the vectors' allocation
  /// granularity rather than explicit alignment — contention, not false
  /// sharing, is what the design removes.
  struct WorkerStats {
    TrafficStats totals;
    std::vector<TrafficStats> per_agent;
  };

  /// Stat targets for the calling thread: the per-worker slot on a pool
  /// thread with concurrency enabled, the base counters otherwise.
  std::pair<TrafficStats*, TrafficStats*> stat_slots(AgentId from);

  std::size_t n_;
  std::uint64_t round_ = 0;
  std::vector<std::deque<Pending>> inboxes_;  // per recipient
  std::vector<Posting> bulletin_;          // visible postings
  std::vector<Posting> pending_postings_;  // visible once round_ >= .round
  FaultInjector injector_;
  TrafficStats totals_;
  std::vector<TrafficStats> per_agent_;

  /// Snapshot of totals_ at the last traced round boundary, so the
  /// per-round traffic histograms (support/trace.hpp) observe deltas.
  TrafficStats traced_;

  // Concurrency support (empty/unused until enable_concurrency()).
  std::vector<WorkerStats> worker_stats_;
  std::unique_ptr<std::mutex[]> inbox_mutexes_;  // one per recipient
  std::mutex pending_mutex_;                     // guards pending_postings_
};

}  // namespace dmw::net
