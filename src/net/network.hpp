// Simulated network: private point-to-point channels plus a broadcast
// bulletin.
//
// The paper assumes "a communication infrastructure composed of a broadcast
// channel and of private channels among the agents" (§3) and, for the cost
// accounting, "no explicit broadcast facilities ... implemented using
// point-to-point message transmissions" (Thm. 11). SimNetwork models exactly
// that: unicast queues with round-based delivery, and a publish operation
// that is billed as n-1 unicasts.
//
// Delivery is deterministic. Fault injection (drop/corrupt/delay) is a hook
// on each channel, used by the robustness tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/annotations.hpp"
#include "support/check.hpp"

namespace dmw::net {

using AgentId = std::uint32_t;  ///< dense agent index 0..n-1

/// A sealed unicast envelope.
struct Envelope {
  AgentId from = 0;
  AgentId to = 0;
  std::uint32_t kind = 0;  ///< protocol-defined message kind tag
  std::vector<std::uint8_t> payload;
  /// Flow-trace id stamped by SimNetwork::send while tracing is on (0 =
  /// unstamped). Simulator-local: excluded from wire_size() and the codec.
  std::uint64_t msg_id = 0;

  /// Wire size charged to the traffic statistics: fixed header + payload.
  std::size_t wire_size() const { return 12 + payload.size(); }

  /// Transport codec (from, to, kind, length-prefixed payload). wire_size()
  /// stays the *billed* size of the paper's 12-byte-header cost model; the
  /// codec is the actual byte image a real transport would ship.
  std::vector<std::uint8_t> encode() const;
  static Envelope decode(std::span<const std::uint8_t> bytes);
};

/// A published (broadcast) record. Readable by everyone including observers.
struct Posting {
  AgentId from = 0;
  std::uint32_t kind = 0;
  std::vector<std::uint8_t> payload;
  std::uint64_t round = 0;  ///< round in which it became visible
  /// Flow-trace id stamped by SimNetwork::publish while tracing is on (0 =
  /// unstamped). Simulator-local: excluded from wire_size() and the codec.
  std::uint64_t msg_id = 0;

  std::size_t wire_size() const { return 12 + payload.size(); }

  /// Transport codec (from, kind, round, length-prefixed payload).
  std::vector<std::uint8_t> encode() const;
  static Posting decode(std::span<const std::uint8_t> bytes);
};

// ---- Communication ledger --------------------------------------------------

/// Phase value for traffic recorded before any set_comm_phase() call.
inline constexpr std::uint32_t kCommPhaseUnattributed = 0xffffffffu;

/// Attribution key of one ledger cell: protocol phase and network round the
/// message left in, its kind tag, and its sender.
struct CommKey {
  std::uint32_t phase = kCommPhaseUnattributed;
  std::uint64_t round = 0;
  std::uint32_t kind = 0;
  AgentId sender = 0;

  friend bool operator==(const CommKey&, const CommKey&) = default;
  friend bool operator<(const CommKey& a, const CommKey& b) {
    if (a.phase != b.phase) return a.phase < b.phase;
    if (a.round != b.round) return a.round < b.round;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.sender < b.sender;
  }
};

/// Counters of one ledger cell. `messages`/`wire_bytes` count send/publish
/// operations at their billed wire size; the p2p fields apply the paper's
/// broadcast-as-(n-1)-unicasts equivalence (Thm. 11), matching TrafficStats.
struct CommCounts {
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t p2p_messages = 0;
  std::uint64_t p2p_bytes = 0;

  CommCounts& operator+=(const CommCounts& o) {
    messages += o.messages;
    wire_bytes += o.wire_bytes;
    p2p_messages += o.p2p_messages;
    p2p_bytes += o.p2p_bytes;
    return *this;
  }
  friend bool operator==(const CommCounts&, const CommCounts&) = default;
};

/// One label-resolved ledger row, ordered by key.
struct CommRow {
  CommKey key;
  std::string phase_label;
  std::string kind_name;
  CommCounts counts;
};

/// Register a human-readable name for a message-kind tag (driver/static-init
/// only; `name` must have static storage duration — the registry keeps the
/// pointer for flow-event labels). Idempotent; last registration wins.
void register_comm_kind(std::uint32_t kind, const char* name);

/// Registered name for `kind`, or "kind<N>" for unregistered tags.
std::string comm_kind_name(std::uint32_t kind);

/// Registered static-storage label for `kind`, or "unregistered". This is
/// the pointer flow events carry (trace keeps it, not a copy).
const char* comm_kind_label(std::uint32_t kind);

/// Per-agent and aggregate traffic statistics.
struct TrafficStats {
  std::uint64_t unicast_messages = 0;
  std::uint64_t unicast_bytes = 0;
  std::uint64_t broadcast_messages = 0;  ///< publish operations
  std::uint64_t broadcast_bytes = 0;     ///< payload bytes published
  /// Point-to-point equivalents (each publish billed as n-1 unicasts).
  std::uint64_t p2p_equivalent_messages = 0;
  std::uint64_t p2p_equivalent_bytes = 0;

  TrafficStats& operator+=(const TrafficStats& o) {
    unicast_messages += o.unicast_messages;
    unicast_bytes += o.unicast_bytes;
    broadcast_messages += o.broadcast_messages;
    broadcast_bytes += o.broadcast_bytes;
    p2p_equivalent_messages += o.p2p_equivalent_messages;
    p2p_equivalent_bytes += o.p2p_equivalent_bytes;
    return *this;
  }
};

/// Fault-injection decision for one in-flight envelope.
struct FaultAction {
  bool drop = false;
  std::uint32_t extra_delay_rounds = 0;
  /// If set, replaces the payload (models corruption).
  std::optional<std::vector<std::uint8_t>> replace_payload;
};

using FaultInjector = std::function<FaultAction(const Envelope&)>;

/// Round-synchronous simulated network.
///
/// Messages sent during round r are visible to receivers from round r+1
/// (plus any injected delay). advance_round() moves the clock.
///
/// Concurrency: send()/publish()/receive()/read_bulletin() may be called
/// from ThreadPool workers while a protocol stage is in flight. Queue
/// mutations take short per-inbox (or pending-postings) locks — each inbox
/// deque is DMW_GUARDED_BY its own mutex, machine-checked by clang's
/// thread-safety pass; an uncontended lock is noise next to the crypto per
/// message, so sequential runs pay it too. Traffic statistics stay
/// lock-free on the hot path: after enable_concurrency(workers), stat
/// updates from pool threads write a per-worker accumulator slot selected
/// via ThreadPool::current_worker_id(), folded into the base counters at
/// the next advance_round(). Everything round-structural —
/// advance_round(), in_flight(), stats(), reset_stats(),
/// set_fault_injector() — remains driver-thread-only (the protocol runner
/// calls them between stage barriers). A fault injector installed on a
/// concurrent run is invoked from worker threads and must be thread-safe.
class SimNetwork {
 public:
  explicit SimNetwork(std::size_t n_agents);

  std::size_t agent_count() const { return n_; }
  std::uint64_t round() const { return round_; }

  /// Private channel send (Phase II share distribution).
  void send(AgentId from, AgentId to, std::uint32_t kind,
            std::vector<std::uint8_t> payload);

  /// Broadcast publish (commitments, Λ/Ψ, disclosures). Billed as n-1
  /// unicasts in the point-to-point-equivalent statistics.
  void publish(AgentId from, std::uint32_t kind,
               std::vector<std::uint8_t> payload);

  /// Drain the unicast messages addressed to `to` that are deliverable in
  /// the current round.
  std::vector<Envelope> receive(AgentId to);

  /// All postings visible in the current round (index into the global log).
  /// Callers track their own read cursor.
  const std::vector<Posting>& bulletin() const { return bulletin_; }

  /// Postings from `cursor` onward that are already visible; advances cursor.
  std::vector<Posting> read_bulletin(std::size_t& cursor) const;

  void advance_round();

  /// Number of messages/postings still in flight (sent but not yet
  /// visible). The protocol runner advances rounds until the network is
  /// idle, so injected delivery delays cost extra rounds instead of
  /// spuriously aborting the (round-synchronized) protocol.
  std::size_t in_flight() const;

  void set_fault_injector(FaultInjector injector) {
    injector_ = std::move(injector);
  }

  /// Allocate `workers` per-worker traffic-accumulator slots so stat
  /// updates from pool threads stay lock-free. Idempotent; call before the
  /// first concurrent stage. With no slots (the default), counters are
  /// updated directly — the historical single-threaded behaviour. (Inbox
  /// and posting queues are always mutex-guarded, concurrency or not.)
  void enable_concurrency(std::size_t workers);

  /// Fold every per-worker accumulator into the base counters. Called
  /// automatically by advance_round(); callers only need it when reading
  /// stats mid-round after a concurrent stage.
  void flush_worker_stats();

  /// Whole-run totals. Complete after advance_round()/flush_worker_stats();
  /// during a concurrent stage, workers' traffic is still parked in their
  /// accumulator slots.
  const TrafficStats& stats() const { return totals_; }
  const TrafficStats& stats_for(AgentId a) const {
    DMW_REQUIRE(a < n_);
    return per_agent_[a];
  }
  void reset_stats();

  /// Attribute subsequent traffic to `phase` in the communication ledger
  /// (the label is copied). Driver-only, between stage barriers — the value
  /// is epoch-frozen for workers, like round(). The protocol runners call
  /// this at the top of every step/epoch; traffic outside any step lands in
  /// kCommPhaseUnattributed.
  void set_comm_phase(std::uint32_t phase, std::string_view label);

  /// Label-resolved (phase, round, kind, sender) ledger rows in key order.
  /// Recording is gated on trace::on() (the ledger is empty in untraced
  /// runs, keeping the tracing-off send path at one extra branch). Complete
  /// after advance_round()/flush_worker_stats(); driver-only.
  std::vector<CommRow> comm_rows() const;

 private:
  struct Pending {
    Envelope env;
    std::uint64_t deliver_round;
  };

  /// One recipient's unicast queue paired with the mutex that guards it.
  /// Pairing them in one struct (instead of a parallel mutex array) is what
  /// lets the capability analysis tie the deque to *its* lock. Held by
  /// unique_ptr because Mutex is immovable.
  struct Inbox {
    Mutex mutex;
    std::deque<Pending> items DMW_GUARDED_BY(mutex);
  };

  /// One worker's private counters; padded out by the vectors' allocation
  /// granularity rather than explicit alignment — contention, not false
  /// sharing, is what the design removes.
  struct WorkerStats {
    TrafficStats totals;
    std::vector<TrafficStats> per_agent;
    /// Current-round ledger cells keyed (kind << 32) | sender; phase and
    /// round are epoch-frozen during a stage, so they attach at fold time.
    std::map<std::uint64_t, CommCounts> comm;
  };

  /// Stat targets for the calling thread: the per-worker slot on a pool
  /// thread with concurrency enabled, the base counters otherwise.
  std::pair<TrafficStats*, TrafficStats*> stat_slots(AgentId from);

  /// Ledger cell map for the calling thread (same slot selection rule).
  std::map<std::uint64_t, CommCounts>& comm_slot();

  /// Tracing-on bookkeeping shared by send()/publish(): bump the calling
  /// thread's ledger cell and stamp + flow-trace the message id.
  std::uint64_t record_comm(AgentId from, std::uint32_t kind,
                            std::uint64_t p2p_fanout, std::uint64_t size);

  /// Fold every slot's current-round ledger cells into the ledger under
  /// (comm_phase_, round_) and bump the per-kind net/* registry counters.
  /// Driver-only, called by flush_worker_stats() before round_ advances.
  void fold_comm_cells();

  const std::size_t n_;
  // dmwlint:allow(guarded-member) epoch-frozen: written only by
  // advance_round() on the driver thread between stage barriers; workers
  // read a constant value for the whole stage.
  std::uint64_t round_ = 0;
  // dmwlint:allow(guarded-member) the pointer vector is built once in the
  // ctor and never resized; each Inbox's deque is guarded by its own mutex.
  std::vector<std::unique_ptr<Inbox>> inboxes_;  // per recipient
  // dmwlint:allow(guarded-member) epoch-frozen: grows only inside
  // advance_round() (driver, between barriers); stage-concurrent readers
  // only ever see the immutable already-published prefix.
  std::vector<Posting> bulletin_;  // visible postings
  // mutable: in_flight() is logically const but must take the lock.
  mutable Mutex pending_mutex_;
  // Visible once round_ >= .round.
  std::vector<Posting> pending_postings_ DMW_GUARDED_BY(pending_mutex_);
  // dmwlint:allow(guarded-member) installed by set_fault_injector()
  // (driver-only, before the run); workers only invoke it afterwards.
  FaultInjector injector_;
  // dmwlint:allow(guarded-member) driver-only base counters: workers write
  // their own worker_stats_ slot instead (stat_slots), folded in here at
  // advance_round()/flush_worker_stats() on the driver thread.
  TrafficStats totals_;
  // dmwlint:allow(guarded-member) same discipline as totals_.
  std::vector<TrafficStats> per_agent_;

  /// Snapshot of totals_ at the last traced round boundary, so the
  /// per-round traffic histograms (support/trace.hpp) observe deltas.
  // dmwlint:allow(guarded-member) driver-only (advance_round tracing).
  TrafficStats traced_;

  // Concurrency support (empty/unused until enable_concurrency()).
  // dmwlint:allow(guarded-member) slot w is written only by pool worker w
  // during a stage and read/cleared only by the driver at barriers.
  std::vector<WorkerStats> worker_stats_;

  // ---- Communication ledger ----
  // dmwlint:allow(guarded-member) epoch-frozen like round_: written only by
  // set_comm_phase() on the driver thread between stage barriers.
  std::uint32_t comm_phase_ = kCommPhaseUnattributed;
  // dmwlint:allow(guarded-member) driver-only (set_comm_phase/comm_rows).
  std::map<std::uint32_t, std::string> comm_phase_labels_;
  // dmwlint:allow(guarded-member) same discipline as totals_: the base cell
  // map takes non-worker writes, worker cells live in worker_stats_, and
  // the driver folds both at barriers.
  std::map<std::uint64_t, CommCounts> comm_cells_;
  // dmwlint:allow(guarded-member) driver-only (fold_comm_cells/comm_rows).
  std::map<CommKey, CommCounts> comm_ledger_;
  /// Monotonic flow-trace message id; stamped only while tracing is on.
  /// Never reset: ids stay unique across reset_stats() so a multi-auction
  /// trace (dmw_serve) keeps its send->deliver arrows unambiguous.
  std::atomic<std::uint64_t> next_msg_id_{0};
};

}  // namespace dmw::net
