// Vectorized Montgomery lane kernels: the data-parallel floor of the
// numeric tier.
//
// Every hot path above this file (share-verify, RLC batch verification,
// Phase II commitments) eventually batches many *independent* same-modulus
// Montgomery multiplications — exactly the shape a SIMD unit wants. This
// header supplies the 64-bit-tier group kernels: one call processes
// kLanes = 4 independent REDC multiplications. Three backends share one
// contract (bit-identical results, they are the same exact integer
// arithmetic re-bracketed):
//
//   - AVX2: 4x64 lanes. x86 has no packed 64x64->128 multiply below
//     AVX-512, so products are assembled from vpmuludq 32x32->64 half
//     products (the standard carry-free m1/m2 decomposition). Kernels carry
//     __attribute__((target("avx2"))) so the TU needs no -mavx2; the
//     dispatcher only installs them when __builtin_cpu_supports("avx2").
//   - NEON (aarch64): 2x64 lanes via vmull_u32 half products; a 4-lane call
//     runs two pairs.
//   - portable: a plain 4-iteration u128 loop, byte-for-byte the same
//     algorithm as Mont64::redc. Always compiled; the only backend when
//     DMW_SIMD=0 or the CPU lacks the vector ISA.
//
// Dispatch is decided once per process (function-pointer latch on first
// use); SimdMode (off/auto/on) is the *policy* knob carried by the group
// backends deciding whether callers group work into lanes at all — see
// montlane.hpp for the engine and the op-accounting contract.
//
// `lane_ops()` counts vector-kernel invocations per thread. It measures the
// engine (how many 4-lane dispatches ran), not the algorithm, and is
// deliberately NOT part of OpCounts: RunReports must stay bit-identical
// across set_simd(on/off), and the modular-multiplication accounting
// (opcount.hpp) already credits one `mul` per lane-slot either way.
//
// This is the only file in the tree allowed to include vendor intrinsic
// headers; dmwlint's include-hygiene rule enforces the confinement.
#pragma once

#include <cstddef>
#include <cstdint>

#ifndef DMW_SIMD
#define DMW_SIMD 1
#endif

#if DMW_SIMD && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define DMW_SIMD_X86 1
#include <immintrin.h>
#endif

#if DMW_SIMD && defined(__ARM_NEON) && defined(__aarch64__)
#define DMW_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace dmw::num::simd {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/// Lane-group width of the engine. Fixed at 4 for every backend so the
/// grouping schedule (and therefore the multiset and order of counted
/// multiplications) never depends on which kernel the host dispatches to:
/// AVX2 retires a group in one vector op, NEON in two 2-lane halves, the
/// portable backend in a 4-iteration loop.
inline constexpr std::size_t kLanes = 4;

/// Lane-grouping policy, carried by the group backends and settable through
/// PublicParams::set_simd / dmw_sim --simd:
///   kOff  — never group; every caller keeps the historical scalar path.
///   kAuto — group when the runtime-detected backend is a real vector ISA;
///           scalar hosts keep the scalar path (grouping without a vector
///           unit only reorders work).
///   kOn   — always group, portable kernels included: forces the lane code
///           paths for tests/ablations on any host.
enum class SimdMode { kOff, kAuto, kOn };

/// Which kernel set the running CPU gets.
enum class LaneBackend { kScalar, kAvx2, kNeon };

/// Vector-kernel invocations on this thread (one per 4-lane group retired).
/// Engine telemetry only — never folded into OpCounts or RunReports.
inline u64& lane_ops() {
  thread_local u64 count = 0;
  return count;
}

// ---- portable kernels ------------------------------------------------------

/// a * b * R^{-1} mod n (R = 2^64): one REDC multiplication, identical
/// arithmetic to Mont64::redc applied to the product. Valid for
/// a * b < n * 2^64 (any pair with one operand < n), result < n. Uncounted —
/// callers own the op accounting (montlane.hpp).
inline u64 mont_mul_scalar(u64 a, u64 b, u64 n, u64 ninv) {
  const u128 t = static_cast<u128>(a) * b;
  const u64 m = static_cast<u64>(t) * ninv;
  const u128 mn = static_cast<u128>(m) * n;
  const u64 r = static_cast<u64>(t >> 64) + static_cast<u64>(mn >> 64) +
                (static_cast<u64>(t) != 0 ? 1 : 0);
  return r >= n ? r - n : r;
}

/// out[l] = a[l] * b[l] * R^{-1} mod n for l < kLanes.
inline void mont_mul_lanes_portable(const u64* a, const u64* b, u64 n,
                                    u64 ninv, u64* out) {
  for (std::size_t l = 0; l < kLanes; ++l)
    out[l] = mont_mul_scalar(a[l], b[l], n, ninv);
}

// ---- AVX2 kernels ----------------------------------------------------------

#if defined(DMW_SIMD_X86)

// When the whole TU is already compiled for AVX2 (-march=native leg) the
// target attribute is redundant and would block inlining between kernels.
#if defined(__AVX2__)
#define DMW_TARGET_AVX2
#else
#define DMW_TARGET_AVX2 __attribute__((target("avx2")))
#endif

/// Low 64 bits of the lanewise 64x64 product, from vpmuludq half products:
/// lo = ll + ((lh + hl) << 32) mod 2^64 (the cross-sum may wrap; only its
/// low 32 bits survive the shift).
DMW_TARGET_AVX2 inline __m256i mullo64_avx2(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
}

/// High 64 bits of the lanewise 64x64 product: the carry-free m1/m2
/// decomposition (each partial sum stays below 2^64, so no lane overflows).
DMW_TARGET_AVX2 inline __m256i mulhi64_avx2(__m256i a, __m256i b) {
  const __m256i lo32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i lh = _mm256_mul_epu32(a, b_hi);
  const __m256i hl = _mm256_mul_epu32(a_hi, b);
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i m1 = _mm256_add_epi64(lh, _mm256_srli_epi64(ll, 32));
  const __m256i m2 = _mm256_add_epi64(hl, _mm256_and_si256(m1, lo32));
  return _mm256_add_epi64(
      hh, _mm256_add_epi64(_mm256_srli_epi64(m1, 32),
                           _mm256_srli_epi64(m2, 32)));
}

/// 4-lane Montgomery REDC multiply, same contract as the portable kernel.
DMW_TARGET_AVX2 inline void mont_mul_lanes_avx2(const u64* pa, const u64* pb,
                                                u64 n, u64 ninv, u64* out) {
  const __m256i a =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa));
  const __m256i b =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb));
  const __m256i vn = _mm256_set1_epi64x(static_cast<long long>(n));
  const __m256i vninv = _mm256_set1_epi64x(static_cast<long long>(ninv));
  const __m256i t_lo = mullo64_avx2(a, b);
  const __m256i t_hi = mulhi64_avx2(a, b);
  const __m256i m = mullo64_avx2(t_lo, vninv);
  const __m256i mn_hi = mulhi64_avx2(m, vn);
  // t + m*n: low halves cancel mod 2^64, carrying exactly when t_lo != 0.
  const __m256i lo_zero = _mm256_cmpeq_epi64(t_lo, _mm256_setzero_si256());
  const __m256i carry =
      _mm256_andnot_si256(lo_zero, _mm256_set1_epi64x(1));
  __m256i r = _mm256_add_epi64(_mm256_add_epi64(t_hi, mn_hi), carry);
  // Conditional subtract via unsigned compare (sign-flip trick: AVX2 only
  // has signed 64-bit compares). r < 2n < 2^64 so one subtract suffices.
  const __m256i flip =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i keep = _mm256_cmpgt_epi64(_mm256_xor_si256(vn, flip),
                                          _mm256_xor_si256(r, flip));
  r = _mm256_blendv_epi8(_mm256_sub_epi64(r, vn), r, keep);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), r);
}

#endif  // DMW_SIMD_X86

// ---- NEON kernels ----------------------------------------------------------

#if defined(DMW_SIMD_NEON)

inline uint64x2_t mullo64_neon(uint64x2_t a, uint64x2_t b) {
  const uint32x2_t a_lo = vmovn_u64(a);
  const uint32x2_t a_hi = vshrn_n_u64(a, 32);
  const uint32x2_t b_lo = vmovn_u64(b);
  const uint32x2_t b_hi = vshrn_n_u64(b, 32);
  const uint64x2_t ll = vmull_u32(a_lo, b_lo);
  const uint64x2_t cross = vmlal_u32(vmull_u32(a_lo, b_hi), a_hi, b_lo);
  return vaddq_u64(ll, vshlq_n_u64(cross, 32));
}

inline uint64x2_t mulhi64_neon(uint64x2_t a, uint64x2_t b) {
  const uint32x2_t a_lo = vmovn_u64(a);
  const uint32x2_t a_hi = vshrn_n_u64(a, 32);
  const uint32x2_t b_lo = vmovn_u64(b);
  const uint32x2_t b_hi = vshrn_n_u64(b, 32);
  const uint64x2_t ll = vmull_u32(a_lo, b_lo);
  const uint64x2_t lh = vmull_u32(a_lo, b_hi);
  const uint64x2_t hl = vmull_u32(a_hi, b_lo);
  const uint64x2_t hh = vmull_u32(a_hi, b_hi);
  const uint64x2_t m1 = vaddq_u64(lh, vshrq_n_u64(ll, 32));
  const uint64x2_t m2 =
      vaddq_u64(hl, vandq_u64(m1, vdupq_n_u64(0xffffffffULL)));
  return vaddq_u64(hh, vaddq_u64(vshrq_n_u64(m1, 32), vshrq_n_u64(m2, 32)));
}

/// 2-lane REDC multiply; the 4-lane entry below runs two of these.
inline uint64x2_t mont_mul_pair_neon(uint64x2_t a, uint64x2_t b, uint64x2_t vn,
                                     uint64x2_t vninv) {
  const uint64x2_t t_lo = mullo64_neon(a, b);
  const uint64x2_t t_hi = mulhi64_neon(a, b);
  const uint64x2_t m = mullo64_neon(t_lo, vninv);
  const uint64x2_t mn_hi = mulhi64_neon(m, vn);
  const uint64x2_t carry =
      vbicq_u64(vdupq_n_u64(1), vceqq_u64(t_lo, vdupq_n_u64(0)));
  const uint64x2_t r = vaddq_u64(vaddq_u64(t_hi, mn_hi), carry);
  return vsubq_u64(r, vandq_u64(vcgeq_u64(r, vn), vn));
}

inline void mont_mul_lanes_neon(const u64* a, const u64* b, u64 n, u64 ninv,
                                u64* out) {
  const uint64x2_t vn = vdupq_n_u64(n);
  const uint64x2_t vninv = vdupq_n_u64(ninv);
  vst1q_u64(out, mont_mul_pair_neon(vld1q_u64(a), vld1q_u64(b), vn, vninv));
  vst1q_u64(out + 2, mont_mul_pair_neon(vld1q_u64(a + 2), vld1q_u64(b + 2),
                                        vn, vninv));
}

#endif  // DMW_SIMD_NEON

// ---- runtime dispatch ------------------------------------------------------

inline LaneBackend detect_backend() {
#if defined(DMW_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return LaneBackend::kAvx2;
#endif
#if defined(DMW_SIMD_NEON)
  return LaneBackend::kNeon;
#endif
  return LaneBackend::kScalar;
}

/// The backend this process dispatches to (latched on first call).
inline LaneBackend active_backend() {
  static const LaneBackend backend = detect_backend();
  return backend;
}

inline const char* backend_name(LaneBackend b) {
  switch (b) {
    case LaneBackend::kAvx2: return "avx2";
    case LaneBackend::kNeon: return "neon";
    case LaneBackend::kScalar: return "scalar";
  }
  return "scalar";
}

/// True when the lane kernels were compiled in at all (DMW_SIMD=1).
inline constexpr bool compiled_in() { return DMW_SIMD != 0; }

using MontMulLanesFn = void (*)(const u64*, const u64*, u64, u64, u64*);

inline MontMulLanesFn resolve_mont_mul_lanes() {
#if defined(DMW_SIMD_X86)
  if (active_backend() == LaneBackend::kAvx2) return &mont_mul_lanes_avx2;
#endif
#if defined(DMW_SIMD_NEON)
  if (active_backend() == LaneBackend::kNeon) return &mont_mul_lanes_neon;
#endif
  return &mont_mul_lanes_portable;
}

/// Dispatching 4-lane REDC multiply: out[l] = a[l]*b[l]*R^{-1} mod n.
/// All kLanes input slots must hold values with a[l]*b[l] < n * 2^64
/// (callers pad ragged tails with in-range values and ignore the outputs).
inline void mont_mul_lanes(const u64* a, const u64* b, u64 n, u64 ninv,
                           u64* out) {
  static const MontMulLanesFn fn = resolve_mont_mul_lanes();
  ++lane_ops();
  fn(a, b, n, ninv, out);
}

/// Resolve a policy against the runtime backend: should callers group work
/// into lanes? (kAuto engages only when a real vector ISA is present.)
inline bool mode_groups_lanes(SimdMode mode) {
  switch (mode) {
    case SimdMode::kOff: return false;
    case SimdMode::kOn: return true;
    case SimdMode::kAuto: return active_backend() != LaneBackend::kScalar;
  }
  return false;
}

}  // namespace dmw::num::simd
