// Fixed-base windowed exponentiation tables.
//
// The two commitment bases z1, z2 are fixed for the lifetime of a group, and
// every Pedersen commitment z1^a z2^b (3*sigma of them per agent per task in
// DMW Phase II, plus every verification identity's left-hand side) raises
// exactly those bases. Precomputing the radix-2^w ladder
//
//     table[i][j] = base^(j * 2^(w*i)),   j in [1, 2^w),  i < ceil(B/w)
//
// once per group turns each subsequent exponentiation into at most
// ceil(B/w) multiplications and *zero* squarings (the textbook loop costs
// B squarings + B/2 multiplications). For the default w = 4:
//
//     exponent bits B   rows   table entries   muls per exponentiation
//     40  (Group64 q)    10        150                <= 10
//     160 (Group256 q)   40        600                <= 40
//
// Table entries live in the backend's multiplicative domain (Montgomery form
// for GroupBig), so commitments run start-to-finish in the domain with one
// conversion out at the end. Build cost is one ladder pass
// (rows * (2^w - 1) multiplications), amortized across every commitment made
// with the group.
//
// Thread-sharing contract: a FixedBaseTable is immutable once built — the
// group backends construct their z1/z2 tables eagerly in their constructors
// and only ever call the const eval path afterwards. Any number of
// ThreadPool workers may therefore share one table (and one group) with no
// locks; builders must not race with readers, which the eager construction
// rules out by design.
#pragma once

#include "numeric/expwin.hpp"
#include "support/check.hpp"
#include "support/trace.hpp"

namespace dmw::num {

/// Default radix width for fixed-base tables: w = 4 keeps the tables a few
/// KB while already collapsing the per-exponentiation cost to B/4 muls.
inline constexpr unsigned kFixedBaseWindow = 4;

template <DomainOps Ops>
class FixedBaseTable {
 public:
  using Dom = typename Ops::Dom;

  FixedBaseTable() = default;

  /// Precompute for exponents up to `max_exp_bits` bits.
  FixedBaseTable(const Ops& ops, const Dom& base, unsigned max_exp_bits,
                 unsigned window = kFixedBaseWindow)
      : window_(window), max_bits_(max_exp_bits) {
    DMW_REQUIRE(window >= 1 && window <= 8);
    const unsigned rows = (max_exp_bits + window - 1) / window;
    rows_.reserve(rows);
    Dom cur = base;  // base^(2^(w*i)) as rows are built
    for (unsigned i = 0; i < rows; ++i) {
      std::vector<Dom> row;
      row.reserve((std::size_t(1) << window) - 1);
      row.push_back(cur);
      for (std::size_t j = 2; j < (std::size_t(1) << window); ++j)
        row.push_back(ops.mul(row.back(), cur));
      cur = ops.mul(row.back(), cur);  // base^(2^(w*(i+1)))
      rows_.push_back(std::move(row));
    }
  }

  bool initialized() const { return !rows_.empty(); }
  unsigned window() const { return window_; }
  unsigned max_bits() const { return max_bits_; }
  std::size_t table_entries() const {
    return rows_.empty() ? 0 : rows_.size() * rows_.front().size();
  }

  /// acc * base^e, in ceil(bits/w) multiplications, no squarings.
  template <class S>
  Dom mul_pow(const Ops& ops, Dom acc, const S& e) const {
    DMW_REQUIRE_MSG(exp_bit_length(e) <= max_bits_,
                    "fixed-base exponent exceeds precomputed range");
    DMW_COUNT("expwin/fixedbase_evals", 1);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const unsigned d =
          exp_window(e, static_cast<unsigned>(i) * window_, window_);
      if (d != 0) acc = ops.mul(acc, rows_[i][d - 1]);
    }
    return acc;
  }

  /// base^e.
  template <class S>
  Dom pow(const Ops& ops, const S& e) const {
    return mul_pow(ops, ops.one(), e);
  }

 private:
  unsigned window_ = kFixedBaseWindow;
  unsigned max_bits_ = 0;
  std::vector<std::vector<Dom>> rows_;
};

}  // namespace dmw::num
