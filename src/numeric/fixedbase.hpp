// Fixed-base windowed exponentiation tables.
//
// The two commitment bases z1, z2 are fixed for the lifetime of a group, and
// every Pedersen commitment z1^a z2^b (3*sigma of them per agent per task in
// DMW Phase II, plus every verification identity's left-hand side) raises
// exactly those bases. Precomputing the radix-2^w ladder
//
//     table[i][j] = base^(j * 2^(w*i)),   j in [1, 2^w),  i < ceil(B/w)
//
// once per group turns each subsequent exponentiation into at most
// ceil(B/w) multiplications and *zero* squarings (the textbook loop costs
// B squarings + B/2 multiplications). For the default w = 4:
//
//     exponent bits B   rows   table entries   muls per exponentiation
//     40  (Group64 q)    10        150                <= 10
//     160 (Group256 q)   40        600                <= 40
//
// Table entries live in the backend's multiplicative domain (Montgomery form
// for GroupBig), so commitments run start-to-finish in the domain with one
// conversion out at the end. Build cost is one ladder pass
// (rows * (2^w - 1) multiplications), amortized across every commitment made
// with the group.
//
// Thread-sharing contract: a FixedBaseTable is immutable once built — the
// group backends construct their z1/z2 tables eagerly in their constructors
// and only ever call the const eval path afterwards. Any number of
// ThreadPool workers may therefore share one table (and one group) with no
// locks; builders must not race with readers, which the eager construction
// rules out by design.
//
// Layout: all rows live in ONE contiguous allocation, row-major
// (entry(i, d) = flat_[i * (2^w - 1) + d - 1]). The lane scan
// mul_pow_lanes() walks kLanes commitments down the rows in lockstep, so
// each step gathers from a single 2^w-entry stripe — the whole stripe is a
// few cache lines (120 B per row for Mont64 at w = 4) instead of the
// per-row heap blocks the nested-vector layout scattered.
#pragma once

#include "numeric/expwin.hpp"
#include "support/check.hpp"
#include "support/trace.hpp"

namespace dmw::num {

/// Default radix width for fixed-base tables: w = 4 keeps the tables a few
/// KB while already collapsing the per-exponentiation cost to B/4 muls.
inline constexpr unsigned kFixedBaseWindow = 4;

template <DomainOps Ops>
class FixedBaseTable {
 public:
  using Dom = typename Ops::Dom;

  FixedBaseTable() = default;

  /// Precompute for exponents up to `max_exp_bits` bits.
  FixedBaseTable(const Ops& ops, const Dom& base, unsigned max_exp_bits,
                 unsigned window = kFixedBaseWindow)
      : window_(window),
        max_bits_(max_exp_bits),
        per_row_((std::size_t(1) << window) - 1),
        nrows_((max_exp_bits + window - 1) / window) {
    DMW_REQUIRE(window >= 1 && window <= 8);
    flat_.reserve(nrows_ * per_row_);
    Dom cur = base;  // base^(2^(w*i)) as rows are built
    for (unsigned i = 0; i < nrows_; ++i) {
      flat_.push_back(cur);
      for (std::size_t j = 2; j <= per_row_; ++j)
        flat_.push_back(ops.mul(flat_.back(), cur));
      cur = ops.mul(flat_.back(), cur);  // base^(2^(w*(i+1)))
    }
  }

  bool initialized() const { return !flat_.empty(); }
  unsigned window() const { return window_; }
  unsigned max_bits() const { return max_bits_; }
  std::size_t table_entries() const { return flat_.size(); }

  /// acc * base^e, in ceil(bits/w) multiplications, no squarings.
  template <class S>
  Dom mul_pow(const Ops& ops, Dom acc, const S& e) const {
    DMW_REQUIRE_MSG(exp_bit_length(e) <= max_bits_,
                    "fixed-base exponent exceeds precomputed range");
    DMW_COUNT("expwin/fixedbase_evals", 1);
    for (unsigned i = 0; i < nrows_; ++i) {
      const unsigned d = exp_window(e, i * window_, window_);
      if (d != 0) acc = ops.mul(acc, flat_[i * per_row_ + d - 1]);
    }
    return acc;
  }

  /// base^e.
  template <class S>
  Dom pow(const Ops& ops, const S& e) const {
    return mul_pow(ops, ops.one(), e);
  }

  /// Lockstep lane scan: acc[l] *= base^{es[l]} for l < count, one masked
  /// lane multiplication per row (lanes whose digit is zero sit the row
  /// out, exactly like mul_pow's skip). `acc` is a Lanes::kLanes-sized
  /// array whose every slot the caller initialized to an in-range domain
  /// value; slots >= count are padding and left meaningless. Values and
  /// OpCounts identical to `count` sequential mul_pow calls — including
  /// one fixedbase_evals tick per commitment scanned.
  template <class Lanes, class S>
  void mul_pow_lanes(const Lanes& lanes, const S* es, Dom* acc,
                     std::size_t count) const {
    constexpr std::size_t L = Lanes::kLanes;
    DMW_REQUIRE(count >= 1 && count <= L);
    for (std::size_t l = 0; l < count; ++l)
      DMW_REQUIRE_MSG(exp_bit_length(es[l]) <= max_bits_,
                      "fixed-base exponent exceeds precomputed range");
    DMW_COUNT("expwin/fixedbase_evals", count);
    Dom gather[L];
    bool active[L];
    for (unsigned i = 0; i < nrows_; ++i) {
      const Dom* row = flat_.data() + std::size_t(i) * per_row_;
      bool any = false;
      for (std::size_t l = 0; l < L; ++l) {
        const unsigned d = l < count ? exp_window(es[l], i * window_, window_)
                                     : 0;
        active[l] = d != 0;
        any = any || active[l];
        gather[l] = row[d != 0 ? d - 1 : 0];
      }
      if (any) lanes.mul_masked(acc, gather, active);
    }
  }

 private:
  unsigned window_ = kFixedBaseWindow;
  unsigned max_bits_ = 0;
  std::size_t per_row_ = 0;  ///< entries per row: 2^w - 1
  unsigned nrows_ = 0;
  std::vector<Dom> flat_;  ///< row-major contiguous rows
};

}  // namespace dmw::num
