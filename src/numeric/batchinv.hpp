// Montgomery batch inversion over the scalar field Z_q.
//
// A field inversion (extended Euclid, mod_inv) costs tens of multiplications
// worth of divisions; Montgomery's trick inverts n elements with ONE
// inversion plus 3(n-1) multiplications by inverting the running product and
// peeling per-element inverses back out. Lagrange-coefficient generation
// (poly/lagrange.hpp) is the protocol's inversion hot spot — every
// degree-resolution probe and every winner-interpolation basis inverts one
// denominator per point — and converts wholesale: dmwlint rule `loop-inverse`
// flags any new inv()-in-a-loop in src/dmw and src/poly and points here.
//
// Op-count contract (opcount.hpp): the trick's multiplications go through
// the backend's counted smul and the single inversion through sinv, so the
// `inv` counter drops from n to 1 per converted loop while `mul` gains
// 3(n-1) — exactly the trade the complexity accounting should show.
#pragma once

#include <span>
#include <vector>

#include "numeric/group.hpp"

namespace dmw::num {

/// In-place batch inversion in Z_q: values[i] <- values[i]^{-1}. Every entry
/// must be invertible (nonzero mod q); a zero entry would poison the shared
/// product, so it is rejected up front rather than surfacing as a confusing
/// failure on the aggregate.
template <GroupBackend G>
void batch_inverse(const G& g, std::span<typename G::Scalar> values) {
  const std::size_t n = values.size();
  if (n == 0) return;
  for (const auto& v : values)
    DMW_REQUIRE_MSG(v != g.szero(), "batch_inverse: zero operand");
  if (n == 1) {
    values[0] = g.sinv(values[0]);
    return;
  }
  // prefix[i] = values[0] * ... * values[i]
  std::vector<typename G::Scalar> prefix(n);
  prefix[0] = values[0];
  for (std::size_t i = 1; i < n; ++i)
    prefix[i] = g.smul(prefix[i - 1], values[i]);
  // Peel back: `suffix` holds (values[i] * ... * values[n-1])^{-1}.
  typename G::Scalar suffix = g.sinv(prefix[n - 1]);
  for (std::size_t i = n - 1; i > 0; --i) {
    const typename G::Scalar inv_i = g.smul(suffix, prefix[i - 1]);
    suffix = g.smul(suffix, values[i]);
    values[i] = inv_i;
  }
  values[0] = suffix;
}

/// Convenience: batch-invert a freshly built vector (the common shape in
/// Lagrange basis generation: collect denominators, invert, consume).
template <GroupBackend G>
std::vector<typename G::Scalar> batch_inverted(
    const G& g, std::vector<typename G::Scalar> values) {
  batch_inverse(g, std::span<typename G::Scalar>(values));
  return values;
}

}  // namespace dmw::num
