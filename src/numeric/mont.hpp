// Montgomery multiplication context for odd BigUInt moduli.
//
// Used by the cryptographic-scale group backend (Group256): exponentiation in
// the Schnorr group dominates DMW's computation, and plain divmod-based
// reduction would make the 256-bit backend needlessly slow.
//
// The context models the exponentiation engine's DomainOps concept
// (expwin.hpp): `Dom` values are residues in Montgomery form, `one()` is the
// Montgomery form of 1, and `mul()` is a single REDC multiplication. Window
// tables, squaring chains, and whole multi-exponentiations therefore run
// inside the domain, converting once on entry and once on exit.
#pragma once

#include "numeric/biguint.hpp"
#include "numeric/expwin.hpp"
#include "numeric/modarith.hpp"

namespace dmw::num {

template <std::size_t W>
class Montgomery {
 public:
  using Dom = BigUInt<W>;  ///< residue in Montgomery form (DomainOps)
  /// Requires an odd modulus > 1.
  explicit Montgomery(const BigUInt<W>& modulus) : n_(modulus) {
    DMW_REQUIRE_MSG(modulus.is_odd(), "Montgomery modulus must be odd");
    DMW_REQUIRE(modulus > BigUInt<W>::one());
    // n' = -n^{-1} mod 2^64 via Newton iteration on the low limb.
    u64 inv = 1;
    const u64 n0 = modulus.limb(0);
    for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;  // 64-bit wraparound
    ninv_ = ~inv + 1;  // negate mod 2^64
    // R mod n where R = 2^{64W}: max_value() is R - 1, so add one modularly.
    const BigUInt<W> r_mod_n =
        mod_add(mod(BigUInt<W>::max_value(), n_), BigUInt<W>::one(), n_);
    // R^2 mod n by doubling R mod n a further 64W times.
    r2_ = r_mod_n;
    for (std::size_t i = 0; i < 64 * W; ++i) r2_ = mod_add(r2_, r2_, n_);
    one_mont_ = r_mod_n;
  }

  const BigUInt<W>& modulus() const { return n_; }

  /// Montgomery form of 1 (the DomainOps identity).
  const BigUInt<W>& one() const { return one_mont_; }

  /// Convert into the Montgomery domain: x -> x * R mod n.
  /// Counted as one `mul` (it is one REDC multiplication).
  BigUInt<W> to_mont(const BigUInt<W>& x) const { return mul(x, r2_); }

  /// Convert out of the Montgomery domain: x~ -> x~ * R^{-1} mod n.
  BigUInt<W> from_mont(const BigUInt<W>& x) const {
    return mul(x, BigUInt<W>::one());
  }

  /// Montgomery product of two values already in the domain.
  BigUInt<W> mul(const BigUInt<W>& a, const BigUInt<W>& b) const {
    ++op_counts().mul;
    return redc_mul(a, b);
  }

  /// a^e mod n for a in *normal* form; result in normal form.
  /// Sliding-window exponentiation, entirely inside the domain.
  BigUInt<W> pow(const BigUInt<W>& base, const BigUInt<W>& exponent) const {
    ++op_counts().pow;
    return from_mont(pow_window(*this, to_mont(mod(base, n_)), exponent));
  }

  /// Square-and-multiply reference (differential-testing oracle / ablation).
  BigUInt<W> pow_naive(const BigUInt<W>& base,
                       const BigUInt<W>& exponent) const {
    ++op_counts().pow;
    BigUInt<W> acc = one_mont_;
    BigUInt<W> b = to_mont(mod(base, n_));
    const unsigned bits = exponent.bit_length();
    for (unsigned i = 0; i < bits; ++i) {
      if (exponent.bit(i)) acc = mul(acc, b);
      b = mul(b, b);
    }
    return from_mont(acc);
  }

 private:
  /// CIOS Montgomery multiplication: returns a*b*R^{-1} mod n.
  BigUInt<W> redc_mul(const BigUInt<W>& a, const BigUInt<W>& b) const {
    // t has W+2 limbs conceptually; we keep W limbs plus two carry limbs.
    std::array<u64, W + 2> t{};
    for (std::size_t i = 0; i < W; ++i) {
      // t += a[i] * b
      u64 carry = 0;
      for (std::size_t j = 0; j < W; ++j) {
        const u128 cur =
            static_cast<u128>(a.limb(i)) * b.limb(j) + t[j] + carry;
        t[j] = static_cast<u64>(cur);
        carry = static_cast<u64>(cur >> 64);
      }
      u128 cur = static_cast<u128>(t[W]) + carry;
      t[W] = static_cast<u64>(cur);
      t[W + 1] += static_cast<u64>(cur >> 64);

      // m = t[0] * n' mod 2^64; t += m * n; t >>= 64
      const u64 m = t[0] * ninv_;
      carry = 0;
      {
        const u128 first = static_cast<u128>(m) * n_.limb(0) + t[0];
        carry = static_cast<u64>(first >> 64);
      }
      for (std::size_t j = 1; j < W; ++j) {
        const u128 cur2 = static_cast<u128>(m) * n_.limb(j) + t[j] + carry;
        t[j - 1] = static_cast<u64>(cur2);
        carry = static_cast<u64>(cur2 >> 64);
      }
      cur = static_cast<u128>(t[W]) + carry;
      t[W - 1] = static_cast<u64>(cur);
      t[W] = t[W + 1] + static_cast<u64>(cur >> 64);
      t[W + 1] = 0;
    }
    BigUInt<W> r;
    for (std::size_t i = 0; i < W; ++i) r.set_limb(i, t[i]);
    if (t[W] != 0 || r >= n_) r.sub_with_borrow(n_);
    return r;
  }

  BigUInt<W> n_;
  u64 ninv_ = 0;        ///< -n^{-1} mod 2^64
  BigUInt<W> r2_;       ///< R^2 mod n
  BigUInt<W> one_mont_; ///< R mod n (Montgomery form of 1)
};

}  // namespace dmw::num
