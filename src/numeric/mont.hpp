// Montgomery multiplication context for odd BigUInt moduli.
//
// Used by the cryptographic-scale group backend (Group256): exponentiation in
// the Schnorr group dominates DMW's computation, and plain divmod-based
// reduction would make the 256-bit backend needlessly slow.
//
// The context models the exponentiation engine's DomainOps concept
// (expwin.hpp): `Dom` values are residues in Montgomery form, `one()` is the
// Montgomery form of 1, and `mul()` is a single REDC multiplication. Window
// tables, squaring chains, and whole multi-exponentiations therefore run
// inside the domain, converting once on entry and once on exit.
#pragma once

#include "numeric/biguint.hpp"
#include "numeric/expwin.hpp"
#include "numeric/modarith.hpp"

namespace dmw::num {

template <std::size_t W>
class Montgomery {
 public:
  using Dom = BigUInt<W>;  ///< residue in Montgomery form (DomainOps)
  /// Requires an odd modulus > 1.
  explicit Montgomery(const BigUInt<W>& modulus) : n_(modulus) {
    DMW_REQUIRE_MSG(modulus.is_odd(), "Montgomery modulus must be odd");
    DMW_REQUIRE(modulus > BigUInt<W>::one());
    // n' = -n^{-1} mod 2^64 via Newton iteration on the low limb.
    u64 inv = 1;
    const u64 n0 = modulus.limb(0);
    for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;  // 64-bit wraparound
    ninv_ = ~inv + 1;  // negate mod 2^64
    // R mod n where R = 2^{64W}: max_value() is R - 1, so add one modularly.
    const BigUInt<W> r_mod_n =
        mod_add(mod(BigUInt<W>::max_value(), n_), BigUInt<W>::one(), n_);
    // R^2 mod n by doubling R mod n a further 64W times.
    r2_ = r_mod_n;
    for (std::size_t i = 0; i < 64 * W; ++i) r2_ = mod_add(r2_, r2_, n_);
    one_mont_ = r_mod_n;
  }

  const BigUInt<W>& modulus() const { return n_; }

  /// -n^{-1} mod 2^64 (the REDC constant; montlane.hpp lane kernels).
  u64 ninv() const { return ninv_; }

  /// R^2 mod n (the to_mont factor; montlane.hpp lane kernels).
  const BigUInt<W>& r2() const { return r2_; }

  /// Montgomery form of 1 (the DomainOps identity).
  const BigUInt<W>& one() const { return one_mont_; }

  /// Convert into the Montgomery domain: x -> x * R mod n.
  /// Counted as one `mul` (it is one REDC multiplication).
  BigUInt<W> to_mont(const BigUInt<W>& x) const { return mul(x, r2_); }

  /// Convert out of the Montgomery domain: x~ -> x~ * R^{-1} mod n.
  BigUInt<W> from_mont(const BigUInt<W>& x) const {
    return mul(x, BigUInt<W>::one());
  }

  /// Montgomery product of two values already in the domain.
  BigUInt<W> mul(const BigUInt<W>& a, const BigUInt<W>& b) const {
    ++op_counts().mul;
    return redc_mul(a, b);
  }

  /// a * b mod n for values in *normal* (non-Montgomery) form: two REDC
  /// passes (a*b*R^{-1}, then times R^2*R^{-1}), no division. Counted as one
  /// modular multiplication — like mod_mul, it performs exactly one a*b mod
  /// n at the accounting level the op counters track.
  BigUInt<W> mul_values(const BigUInt<W>& a, const BigUInt<W>& b) const {
    DMW_REQUIRE(a < n_ && b < n_);
    ++op_counts().mul;
    return redc_mul(redc_mul(a, b), r2_);
  }

  /// a^e mod n for a in *normal* form; result in normal form.
  /// Sliding-window exponentiation, entirely inside the domain.
  BigUInt<W> pow(const BigUInt<W>& base, const BigUInt<W>& exponent) const {
    ++op_counts().pow;
    return from_mont(pow_window(*this, to_mont(mod(base, n_)), exponent));
  }

  /// Square-and-multiply reference (differential-testing oracle / ablation).
  BigUInt<W> pow_naive(const BigUInt<W>& base,
                       const BigUInt<W>& exponent) const {
    ++op_counts().pow;
    BigUInt<W> acc = one_mont_;
    BigUInt<W> b = to_mont(mod(base, n_));
    const unsigned bits = exponent.bit_length();
    for (unsigned i = 0; i < bits; ++i) {
      if (exponent.bit(i)) acc = mul(acc, b);
      b = mul(b, b);
    }
    return from_mont(acc);
  }

 private:
  /// CIOS Montgomery multiplication: returns a*b*R^{-1} mod n.
  BigUInt<W> redc_mul(const BigUInt<W>& a, const BigUInt<W>& b) const {
    // t has W+2 limbs conceptually; we keep W limbs plus two carry limbs.
    std::array<u64, W + 2> t{};
    for (std::size_t i = 0; i < W; ++i) {
      // t += a[i] * b
      u64 carry = 0;
      for (std::size_t j = 0; j < W; ++j) {
        const u128 cur =
            static_cast<u128>(a.limb(i)) * b.limb(j) + t[j] + carry;
        t[j] = static_cast<u64>(cur);
        carry = static_cast<u64>(cur >> 64);
      }
      u128 cur = static_cast<u128>(t[W]) + carry;
      t[W] = static_cast<u64>(cur);
      t[W + 1] += static_cast<u64>(cur >> 64);

      // m = t[0] * n' mod 2^64; t += m * n; t >>= 64
      const u64 m = t[0] * ninv_;
      carry = 0;
      {
        const u128 first = static_cast<u128>(m) * n_.limb(0) + t[0];
        carry = static_cast<u64>(first >> 64);
      }
      for (std::size_t j = 1; j < W; ++j) {
        const u128 cur2 = static_cast<u128>(m) * n_.limb(j) + t[j] + carry;
        t[j - 1] = static_cast<u64>(cur2);
        carry = static_cast<u64>(cur2 >> 64);
      }
      cur = static_cast<u128>(t[W]) + carry;
      t[W - 1] = static_cast<u64>(cur);
      t[W] = t[W + 1] + static_cast<u64>(cur >> 64);
      t[W + 1] = 0;
    }
    BigUInt<W> r;
    for (std::size_t i = 0; i < W; ++i) r.set_limb(i, t[i]);
    if (t[W] != 0 || r >= n_) r.sub_with_borrow(n_);
    return r;
  }

  BigUInt<W> n_;
  u64 ninv_ = 0;        ///< -n^{-1} mod 2^64
  BigUInt<W> r2_;       ///< R^2 mod n
  BigUInt<W> one_mont_; ///< R mod n (Montgomery form of 1)
};

/// Montgomery context for the 64-bit tier: odd moduli below 2^63, i.e. every
/// Group64 modulus. Same DomainOps shape as Montgomery<W>; with R = 2^64 the
/// whole REDC fits in one u128, so a domain multiplication is three 64x64
/// multiplies instead of mod_mul's 128/64 division — the mod_pow() fast path
/// is built on this.
class Mont64 {
 public:
  using Dom = u64;  ///< residue in Montgomery form (DomainOps)
  /// Requires an odd modulus in (1, 2^63): the reduction bound result < 2n
  /// must fit a u64 for the single conditional subtract.
  explicit Mont64(u64 modulus) : n_(modulus) {
    DMW_REQUIRE_MSG((modulus & 1) != 0, "Montgomery modulus must be odd");
    DMW_REQUIRE(modulus > 1 && modulus < (u64{1} << 63));
    u64 inv = 1;
    for (int i = 0; i < 6; ++i) inv *= 2 - n_ * inv;  // 64-bit wraparound
    ninv_ = ~inv + 1;                                 // -n^{-1} mod 2^64
    r_ = static_cast<u64>(~u64{0} % n_) + 1;          // 2^64 mod n, n > 1
    r2_ = static_cast<u64>(static_cast<u128>(r_) * r_ % n_);
  }

  u64 modulus() const { return n_; }

  /// -n^{-1} mod 2^64 (the REDC constant; simd.hpp lane kernels).
  u64 ninv() const { return ninv_; }

  /// R^2 mod n (the to_mont factor; montlane.hpp lane kernels).
  u64 r2() const { return r2_; }

  /// Montgomery form of 1 (the DomainOps identity).
  Dom one() const { return r_; }

  /// Convert into the Montgomery domain: x -> x * R mod n.
  /// Counted as one `mul` (it is one REDC multiplication).
  Dom to_mont(u64 x) const { return mul(x, r2_); }

  /// Convert out of the Montgomery domain: x~ -> x~ * R^{-1} mod n.
  u64 from_mont(Dom x) const {
    ++op_counts().mul;
    return redc(x);
  }

  /// Montgomery product of two values already in the domain.
  Dom mul(Dom a, Dom b) const {
    ++op_counts().mul;
    return redc(static_cast<u128>(a) * b);
  }

 private:
  /// t * R^{-1} mod n for t < n * 2^64.
  u64 redc(u128 t) const {
    const u64 m = static_cast<u64>(t) * ninv_;
    const u128 mn = static_cast<u128>(m) * n_;
    // t + mn: the low halves cancel to 0 mod 2^64 by choice of m, carrying
    // into the high half exactly when t's low half is nonzero.
    const u64 r = static_cast<u64>(t >> 64) + static_cast<u64>(mn >> 64) +
                  (static_cast<u64>(t) != 0 ? 1 : 0);
    return r >= n_ ? r - n_ : r;
  }

  u64 n_;
  u64 ninv_ = 0;  ///< -n^{-1} mod 2^64
  u64 r_ = 0;     ///< R mod n (Montgomery form of 1)
  u64 r2_ = 0;    ///< R^2 mod n
};

/// a^e mod n through an existing Mont64 context: what mod_pow() runs after
/// building a per-call context; callers holding a long-lived one (Group64)
/// skip the setup divisions. Counts the `pow` and every domain
/// multiplication.
inline u64 pow_mont64(const Mont64& mont, u64 a, u64 e) {
  ++op_counts().pow;
  const unsigned bits = exp_bit_length(e);
  if (bits == 0) return 1;  // modulus > 1, so 1 is already reduced
  if (bits >= kPow64WindowMinBits) {
    const u64 base = mont.to_mont(a % mont.modulus());
    return mont.from_mont(pow_window(mont, base, e));
  }
  // LSB-first square-and-multiply (bits-1 squarings + popcount-1 products):
  // each result update multiplies by the b from *before* the squaring that
  // follows, so the two multiplication chains overlap in the pipeline — the
  // MSB-first order serializes every product behind the previous one.
  u64 b = mont.to_mont(a % mont.modulus());
  u64 result = 0;
  bool started = false;
  for (u64 rest = e;;) {
    if (rest & 1) {
      result = started ? mont.mul(result, b) : b;
      started = true;
    }
    rest >>= 1;
    if (rest == 0) break;
    b = mont.mul(b, b);
  }
  return mont.from_mont(result);
}

}  // namespace dmw::num
