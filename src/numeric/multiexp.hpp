// Simultaneous multi-exponentiation (Straus interleaving).
//
// DMW's verification identities all reduce to products of the form
// prod_l C_l^{x_l}; evaluating each factor independently costs one full
// exponentiation per term, while interleaving shares the squaring chain
// across all terms (one squaring per exponent bit total, plus one
// multiplication per set bit). The ablation bench (bench_multiexp) measures
// the saving; correctness is tested against the naive product.
#pragma once

#include <span>

#include "numeric/group.hpp"

namespace dmw::num {

// ---- scalar bit accessors shared by both backends -------------------------

inline bool scalar_bit(const Group64&, Group64::Scalar s, unsigned i) {
  return ((s >> i) & 1) != 0;
}
inline unsigned scalar_bit_length(const Group64&, Group64::Scalar s) {
  return s == 0 ? 0 : 64 - static_cast<unsigned>(__builtin_clzll(s));
}

template <std::size_t W>
bool scalar_bit(const GroupBig<W>&, const BigUInt<W>& s, unsigned i) {
  return s.bit(i);
}
template <std::size_t W>
unsigned scalar_bit_length(const GroupBig<W>&, const BigUInt<W>& s) {
  return s.bit_length();
}

// ---- multi-exponentiation --------------------------------------------------

/// prod_j bases[j]^{exponents[j]} with one shared squaring chain.
template <GroupBackend G>
typename G::Elem multi_pow(const G& g,
                           std::span<const typename G::Elem> bases,
                           std::span<const typename G::Scalar> exponents) {
  DMW_REQUIRE(bases.size() == exponents.size());
  unsigned max_bits = 0;
  for (const auto& e : exponents)
    max_bits = std::max(max_bits, scalar_bit_length(g, e));
  typename G::Elem acc = g.identity();
  for (unsigned bit = max_bits; bit-- > 0;) {
    acc = g.mul(acc, acc);
    for (std::size_t j = 0; j < bases.size(); ++j) {
      if (scalar_bit(g, exponents[j], bit)) acc = g.mul(acc, bases[j]);
    }
  }
  return acc;
}

/// Naive reference: independent exponentiations multiplied together.
template <GroupBackend G>
typename G::Elem multi_pow_naive(const G& g,
                                 std::span<const typename G::Elem> bases,
                                 std::span<const typename G::Scalar> exponents) {
  DMW_REQUIRE(bases.size() == exponents.size());
  typename G::Elem acc = g.identity();
  for (std::size_t j = 0; j < bases.size(); ++j)
    acc = g.mul(acc, g.pow(bases[j], exponents[j]));
  return acc;
}

}  // namespace dmw::num
