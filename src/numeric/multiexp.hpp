// Simultaneous multi-exponentiation (windowed Straus interleaving).
//
// DMW's verification identities all reduce to products of the form
// prod_l C_l^{x_l}; evaluating each factor independently costs one full
// exponentiation per term, while interleaving shares the squaring chain
// across all terms. The windowed variant decomposes every exponent into
// sliding-window digits (expwin.hpp) and keeps an odd-power table per base,
// so the shared chain costs one squaring per exponent bit total plus
// ~bits/(w+1) table multiplications per term — and the whole evaluation
// runs in the backend's multiplicative domain (Montgomery form for
// GroupBig), converting once per base on entry and once on exit.
//
// MultiExpCache separates the per-base table construction from the per-call
// digit work: DMW agents evaluate the *same* commitment vector at n
// different pseudonyms (commitment_eval in every Phase III check), so the
// tables amortize across all n evaluations. The ablation bench
// (bench_multiexp) measures the saving; correctness is tested against the
// naive product.
//
// multi_pow() is the dispatching entry point: it compares the Straus and
// Pippenger cost models (pippenger.hpp) per call and switches to the bucket
// method past the crossover length, so callers producing products of very
// different sizes (a sigma-term commitment evaluation vs. a 3*n*sigma-term
// RLC verification batch) all get the cheaper engine automatically.
// multi_pow_straus() pins the interleaving for benches and ablations.
//
// Thread-sharing contract: a MultiExpCache (and CommitmentEvalCache built on
// it) is immutable after construction; eval() is const and touches no
// mutable state. The parallel protocol driver keeps each cache local to the
// per-task step that built it — one worker, one task, one cache — so the
// PR-1 caches never serialize workers; sharing a built cache read-only
// across threads is also safe.
#pragma once

#include <algorithm>
#include <span>

#include "numeric/group.hpp"
#include "numeric/groupdom.hpp"
#include "numeric/pippenger.hpp"

namespace dmw::num {

// ---- multi-exponentiation --------------------------------------------------

/// Precomputed per-base odd-power tables for windowed Straus evaluation of
/// prod_j bases[j]^{e_j}, reusable across many exponent vectors. Building
/// the cache converts each base into the domain once and spends
/// 2^(w-1) domain multiplications per base; each eval() then costs one
/// shared squaring chain regardless of how many bases there are.
template <GroupBackend G>
class MultiExpCache {
 public:
  /// `max_exp_bits` bounds the exponents eval() will see (usually
  /// g.scalar_bits(): protocol exponents are scalars < q).
  MultiExpCache(const G& g, std::span<const typename G::Elem> bases,
                unsigned max_exp_bits)
      : ops_{&g},
        window_(multiexp_window_bits(max_exp_bits == 0 ? 1 : max_exp_bits)),
        stride_(std::size_t(1) << (window_ - 1)),
        count_(bases.size()) {
    if (lanes_profitable(g, count_)) {
      build_lanes(g, bases);
      return;
    }
    // All per-base odd-power tables in one flat allocation, stride_ apart.
    table_.reserve(count_ * stride_);
    for (const auto& b : bases) {
      const auto base = g.to_dom(b);
      table_.push_back(base);
      if (window_ > 1) {
        const auto sq = ops_.mul(base, base);
        for (std::size_t j = 1; j < stride_; ++j)
          table_.push_back(ops_.mul(table_.back(), sq));
      }
    }
  }

  std::size_t size() const { return count_; }
  unsigned window() const { return window_; }

  /// prod_j bases[j]^{exponents[j]}.
  typename G::Elem eval(
      std::span<const typename G::Scalar> exponents) const {
    DMW_REQUIRE(exponents.size() == count_);
    const G& g = *ops_.g;
    unsigned max_bits = 0;
    for (const auto& e : exponents)
      max_bits = std::max(max_bits, scalar_bit_length(g, e));
    if (max_bits == 0) return g.identity();
    // Decompose every exponent into sliding-window digits, bucket them by
    // descending bit position with one counting pass, and run one shared
    // squaring chain. Counting beats comparison sorting here because a long
    // product (an RLC verification batch folds thousands of digits) spends
    // more time ordering the schedule than multiplying; positions are small
    // integers (< max_bits), so placement is two linear passes.
    std::vector<u64> packed;  // pos << 32 | flat table index, per digit
    packed.reserve(count_ * (max_bits / (window_ + 1) + 1));
    std::vector<WindowDigit> digits;
    for (std::size_t j = 0; j < count_; ++j) {
      digits.clear();
      decompose_windows(exponents[j], window_, digits);
      for (const WindowDigit& d : digits)
        packed.push_back((static_cast<u64>(d.pos) << 32) |
                         (j * stride_ + (d.value - 1) / 2));
    }
    std::vector<unsigned> count_at(max_bits, 0);
    for (u64 pd : packed) ++count_at[pd >> 32];
    // slot[p] = number of digits at strictly higher positions (descending
    // placement order); the placement loop advances each slot through its
    // position's slice.
    std::vector<unsigned> slot(max_bits, 0);
    {
      unsigned run = 0;
      for (unsigned b = max_bits; b-- > 0;) {
        slot[b] = run;
        run += count_at[b];
      }
    }
    std::vector<unsigned> ordered(packed.size());
    for (u64 pd : packed)
      ordered[slot[pd >> 32]++] = static_cast<unsigned>(pd);
    std::size_t next = 0;
    typename G::Dom acc = ops_.one();
    for (unsigned b = max_bits; b-- > 0;) {
      if (b + 1 < max_bits) acc = ops_.mul(acc, acc);
      for (unsigned t = 0; t < count_at[b]; ++t)
        acc = ops_.mul(acc, table_[ordered[next++]]);
    }
    return g.from_dom(acc);
  }

 private:
  /// Lane-grouped table build: domain conversions, the per-base squarings,
  /// and each odd-power chain step are independent across bases, so the
  /// lane engine retires them kLanes bases at a time. The multiset of
  /// multiplications — one conversion, one squaring, stride_-1 chain muls
  /// per base — is exactly the scalar build's, so OpCounts and every table
  /// entry are bit-identical; only the execution grouping changes.
  void build_lanes(const G& g, std::span<const typename G::Elem> bases) {
    const auto lanes = make_lane_engine(g);
    std::vector<typename G::Dom> col(count_), sq, next;
    lanes.to_mont_lanes(bases.data(), col.data(), count_);
    table_.resize(count_ * stride_);
    for (std::size_t j = 0; j < count_; ++j) table_[j * stride_] = col[j];
    if (window_ <= 1) return;
    sq.resize(count_);
    next.resize(count_);
    lanes.mul_lanes(col.data(), col.data(), sq.data(), count_);
    for (std::size_t k = 1; k < stride_; ++k) {
      lanes.mul_lanes(col.data(), sq.data(), next.data(), count_);
      col.swap(next);
      for (std::size_t j = 0; j < count_; ++j)
        table_[j * stride_ + k] = col[j];
    }
  }

  GroupDomOps<G> ops_;
  unsigned window_;
  std::size_t stride_;  ///< table entries per base (2^(w-1))
  std::size_t count_;   ///< number of bases
  std::vector<typename G::Dom> table_;
};

/// prod_j bases[j]^{exponents[j]}, windowed Straus interleaving.
template <GroupBackend G>
typename G::Elem multi_pow_straus(
    const G& g, std::span<const typename G::Elem> bases,
    std::span<const typename G::Scalar> exponents) {
  DMW_REQUIRE(bases.size() == exponents.size());
  if (bases.empty()) return g.identity();
  unsigned max_bits = 0;
  for (const auto& e : exponents)
    max_bits = std::max(max_bits, scalar_bit_length(g, e));
  return MultiExpCache<G>(g, bases, max_bits).eval(exponents);
}

/// prod_j bases[j]^{exponents[j]}: picks windowed Straus or the Pippenger
/// bucket method (pippenger.hpp) by comparing their cost models on the
/// product's shape — short products keep the interleaving, long ones (RLC
/// verification batches) switch to buckets past the crossover length.
template <GroupBackend G>
typename G::Elem multi_pow(const G& g,
                           std::span<const typename G::Elem> bases,
                           std::span<const typename G::Scalar> exponents) {
  DMW_REQUIRE(bases.size() == exponents.size());
  if (bases.empty()) return g.identity();
  unsigned max_bits = 0;
  for (const auto& e : exponents)
    max_bits = std::max(max_bits, scalar_bit_length(g, e));
  if (multi_pow_prefers_pippenger(bases.size(), max_bits))
    return multi_pow_pippenger(g, bases, exponents);
  return MultiExpCache<G>(g, bases, max_bits).eval(exponents);
}

/// Naive reference: independent exponentiations multiplied together
/// (differential-testing oracle and the bench_multiexp ablation baseline).
template <GroupBackend G>
typename G::Elem multi_pow_naive(const G& g,
                                 std::span<const typename G::Elem> bases,
                                 std::span<const typename G::Scalar> exponents) {
  DMW_REQUIRE(bases.size() == exponents.size());
  typename G::Elem acc = g.identity();
  for (std::size_t j = 0; j < bases.size(); ++j)
    acc = g.mul(acc, g.pow(bases[j], exponents[j]));
  return acc;
}

/// Batched *independent* exponentiations out[j] = bases[j]^{exponents[j]}
/// — no product, no shared squaring chain; the batched counterpart of
/// calling g.pow in a loop. The cost model picks the lane engine when the
/// group's SimdMode engages and at least one full lane group of same-
/// modulus exponentiations exists (lanes_profitable); otherwise the scalar
/// ladder runs — same values, same OpCounts (montlane.hpp contract), so
/// callers may switch freely. This is the Phase III share-verify shape:
/// many independent pows against one modulus.
template <GroupBackend G>
std::vector<typename G::Elem> multi_pow_batched(
    const G& g, std::span<const typename G::Elem> bases,
    std::span<const typename G::Scalar> exponents) {
  DMW_REQUIRE(bases.size() == exponents.size());
  std::vector<typename G::Elem> out(bases.size());
  if (bases.empty()) return out;
  const MontLane<typename GroupLaneCtx<G>::Ctx> lane{
      g.mont(), lanes_profitable(g, bases.size())};
  lane.pow_lanes(bases.data(), exponents.data(), out.data(), bases.size());
  return out;
}

}  // namespace dmw::num
