// Primality testing and prime generation.
//
// 64-bit: deterministic Miller-Rabin with the known-complete witness set for
// the full 64-bit range. BigUInt: probabilistic Miller-Rabin with a caller-
// chosen round count (error <= 4^-rounds) after small-prime trial division.
#pragma once

#include <cstdint>

#include "numeric/biguint.hpp"
#include "support/rng.hpp"

namespace dmw::num {

/// Deterministic primality for any 64-bit integer.
bool is_prime_u64(u64 n);

/// Random prime with exactly `bits` significant bits, 2 <= bits <= 63.
u64 random_prime_u64(unsigned bits, dmw::Xoshiro256ss& rng);

/// Uniform random value in [0, bound) with rejection sampling. Works with
/// any generator exposing a 64-bit next() (Xoshiro256ss, crypto::ChaChaRng).
template <std::size_t W, class Rng>
BigUInt<W> random_below(const BigUInt<W>& bound, Rng& rng) {
  DMW_REQUIRE(!bound.is_zero());
  const unsigned bits = bound.bit_length();
  for (;;) {
    BigUInt<W> r;
    for (std::size_t i = 0; i * 64 < bits; ++i) r.set_limb(i, rng.next());
    // Mask off bits above the bound's bit length.
    for (unsigned b = bits; b < BigUInt<W>::kBits; ++b) r.set_bit(b, false);
    if (r < bound) return r;
  }
}

/// Probabilistic Miller-Rabin for BigUInt (after trial division by small
/// primes). `rounds` random bases; error probability <= 4^-rounds.
template <std::size_t W>
bool is_probable_prime(const BigUInt<W>& n, dmw::Xoshiro256ss& rng,
                       int rounds = 32);

/// Random probable prime with exactly `bits` significant bits.
template <std::size_t W>
BigUInt<W> random_prime(unsigned bits, dmw::Xoshiro256ss& rng, int rounds = 32);

}  // namespace dmw::num
