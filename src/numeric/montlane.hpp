// MontLane: L independent same-modulus Montgomery operations per step.
//
// The protocol's hot paths batch many independent exponentiations and
// domain multiplications over one modulus (share-verify Eqs. (7)-(9), the
// RLC fold of batchverify.hpp, Phase II commitment vectors). MontLane turns
// such a batch into lane groups: one group step performs L multiplications
// through the simd.hpp kernels (AVX2/NEON when the host has them, the
// portable kernel otherwise), or — when lane grouping is disabled — the
// exact historical scalar sequence. Both paths are the same integer
// arithmetic, so results are bit-identical by construction.
//
// Op-accounting contract (opcount.hpp): every lane-slot that performs a
// modular multiplication credits one `mul`, masked-off and padding slots
// credit nothing, and `pow_lanes` credits one `pow` per element — the
// grouped engine therefore reports *exactly* the OpCounts of its scalar
// ablation, which is what keeps RunReports bit-identical across
// PublicParams::set_simd(on/off). The per-thread simd::lane_ops() counter
// (vector dispatches, not algorithm work) is the only observable
// difference, and it is deliberately outside OpCounts.
//
// `pow_lanes` advances L *independent* LSB-first ladders in shared
// bit-index rounds: within a round each lane runs exactly its own ladder's
// product/square steps, so the executed multiset equals the counted one,
// and the interleaving overlaps L dependent REDC chains in the multiplier
// pipeline (the speedup source — a lone ladder is latency-bound). Its
// scalar ablation is the same per-lane ladder (the Group64 tier's own pow
// path for protocol exponents — pow_mont64 below kPow64WindowMinBits), so
// lane-vs-scalar comparisons are algorithm-identical, not
// algorithm-vs-algorithm. The masked lockstep alternative — all lanes
// stepping through the vector kernels together — executes ~4/3 more
// multiplications (a group product retires when ANY lane has the bit) and
// loses on hosts whose vector unit lacks a 64x64 multiplier; the kernels
// earn their keep on the always-dense paths below instead.
//
// Two specializations cover both arithmetic tiers:
//   MontLane<Mont64, L>        — u64 lanes, vector kernels when L == 4.
//   MontLane<Montgomery<W>, L> — multi-limb CIOS over an interleaved limb
//     layout t[limb][lane]: the lane index is the fastest-moving dimension,
//     so the per-limb inner loops are stride-1 over independent work (ILP /
//     auto-vectorizable); there is no hand-written vector kernel for this
//     tier, the interleaving itself is the optimization.
#pragma once

#include <array>
#include <cstddef>

#include "numeric/expwin.hpp"
#include "numeric/mont.hpp"
#include "numeric/simd.hpp"

namespace dmw::num {

template <class Ctx, std::size_t L = simd::kLanes>
class MontLane;

/// 64-bit tier: L lanes of Mont64 arithmetic.
template <std::size_t L>
class MontLane<Mont64, L> {
  static_assert(L >= 1 && L <= 64);

 public:
  using Dom = u64;
  static constexpr std::size_t kLanes = L;

  /// `grouped` selects the engine: true = lane groups through the simd.hpp
  /// kernels, false = the scalar ablation (identical values and OpCounts).
  MontLane(const Mont64& m, bool grouped) : m_(&m), grouped_(grouped) {}

  bool grouped() const { return grouped_; }

  /// out[i] = a[i] * b[i] (Montgomery domain), one counted mul each.
  void mul_lanes(const Dom* a, const Dom* b, Dom* out, std::size_t n) const {
    if (!grouped_) {
      for (std::size_t i = 0; i < n; ++i) out[i] = m_->mul(a[i], b[i]);
      return;
    }
    op_counts().mul += n;
    std::size_t i = 0;
    for (; i + L <= n; i += L) group_mul(a + i, b + i, out + i);
    if (i < n) {
      Dom pa[L] = {}, pb[L] = {}, po[L];
      for (std::size_t j = i; j < n; ++j) {
        pa[j - i] = a[j];
        pb[j - i] = b[j];
      }
      group_mul(pa, pb, po);
      for (std::size_t j = i; j < n; ++j) out[j] = po[j - i];
    }
  }

  /// One group: acc[l] *= b[l] where active[l]; inactive slots untouched
  /// and uncounted. Arrays are L-sized; every slot must hold a value < n
  /// (or < 2^64 with the partner < n) so padded lanes stay in kernel range.
  void mul_masked(Dom* acc, const Dom* b, const bool* active) const {
    std::size_t live = 0;
    for (std::size_t l = 0; l < L; ++l) live += active[l] ? 1 : 0;
    if (live == 0) return;
    op_counts().mul += live;
    if (!grouped_) {
      for (std::size_t l = 0; l < L; ++l)
        if (active[l])
          acc[l] = simd::mont_mul_scalar(acc[l], b[l], m_->modulus(),
                                         m_->ninv());
      return;
    }
    Dom prod[L];
    group_mul(acc, b, prod);
    for (std::size_t l = 0; l < L; ++l)
      if (active[l]) acc[l] = prod[l];
  }

  /// out[i] = x[i] * R mod n (domain entry), one counted mul each.
  void to_mont_lanes(const u64* x, Dom* out, std::size_t n) const {
    if (!grouped_) {
      for (std::size_t i = 0; i < n; ++i) out[i] = m_->to_mont(x[i]);
      return;
    }
    Dom r2[L];
    for (std::size_t l = 0; l < L; ++l) r2[l] = m_->r2();
    op_counts().mul += n;
    for (std::size_t i = 0; i < n; i += L) {
      Dom px[L] = {}, po[L];
      const std::size_t cnt = n - i < L ? n - i : L;
      for (std::size_t j = 0; j < cnt; ++j) px[j] = x[i + j];
      group_mul(px, r2, po);
      for (std::size_t j = 0; j < cnt; ++j) out[i + j] = po[j];
    }
  }

  /// out[i] = x[i] * R^{-1} mod n (domain exit), one counted mul each.
  void from_mont_lanes(const Dom* x, u64* out, std::size_t n) const {
    if (!grouped_) {
      for (std::size_t i = 0; i < n; ++i) out[i] = m_->from_mont(x[i]);
      return;
    }
    Dom one[L];
    for (std::size_t l = 0; l < L; ++l) one[l] = 1;
    op_counts().mul += n;
    for (std::size_t i = 0; i < n; i += L) {
      Dom px[L] = {}, po[L];
      const std::size_t cnt = n - i < L ? n - i : L;
      for (std::size_t j = 0; j < cnt; ++j) px[j] = x[i + j];
      group_mul(px, one, po);
      for (std::size_t j = 0; j < cnt; ++j) out[i + j] = po[j];
    }
  }

  /// out[i] = base[i]^{e[i]} mod n, normal form in and out, by L
  /// round-interleaved independent LSB-first ladders. Per element: one
  /// `pow`; for e != 0 exactly 1 (to_mont) + (bits-1) squarings +
  /// (popcount-1) products + 1 (from_mont) counted muls — the same as the
  /// scalar ladder, grouped or not. e == 0 yields 1 with no muls.
  template <class S>
  void pow_lanes(const u64* base, const S* e, u64* out, std::size_t n) const {
    for (std::size_t i = 0; i < n; i += L) {
      const std::size_t cnt = n - i < L ? n - i : L;
      pow_group(base + i, e + i, out + i, cnt);
    }
  }

 private:
  void group_mul(const Dom* a, const Dom* b, Dom* out) const {
    if constexpr (L == simd::kLanes) {
      simd::mont_mul_lanes(a, b, m_->modulus(), m_->ninv(), out);
    } else {
      ++simd::lane_ops();
      for (std::size_t l = 0; l < L; ++l)
        out[l] = simd::mont_mul_scalar(a[l], b[l], m_->modulus(), m_->ninv());
    }
  }

  template <class S>
  void pow_group(const u64* base, const S* e, u64* out,
                 std::size_t cnt) const {
    // One op_counts() resolution for the whole group: the accessor is an
    // out-of-line thread_local lookup, and the ladder below credits up to
    // 2L muls per round — calling it per credit dominated the grouped
    // path's runtime. The batched total is exactly the per-increment total.
    OpCounts& oc = op_counts();
    oc.pow += cnt;
    if (!grouped_) {
      for (std::size_t l = 0; l < cnt; ++l) out[l] = ladder_one(base[l], e[l]);
      return;
    }
    unsigned bits[L] = {};
    unsigned max_bits = 0;
    u64 live = 0;
    for (std::size_t l = 0; l < cnt; ++l) {
      bits[l] = exp_bit_length(e[l]);
      live += bits[l] != 0;
      if (bits[l] > max_bits) max_bits = bits[l];
    }
    if (live == 0) {
      for (std::size_t l = 0; l < cnt; ++l) out[l] = 1;
      return;
    }
    // L independent ladders in shared bit-index rounds (header rationale):
    // each lane performs exactly its own ladder's REDC multiplications —
    // the multiset ladder_one executes, hence the same counted muls — and
    // the interleaving overlaps L dependent chains in the pipeline.
    const u64 n = m_->modulus();
    const u64 ninv = m_->ninv();
    const u64 r2 = m_->r2();
    u64 b[L] = {}, r[L] = {};
    bool started[L] = {};
    u64 counted = 2 * live;  // to_mont + from_mont per live lane
    for (std::size_t l = 0; l < cnt; ++l)
      if (bits[l] != 0) b[l] = simd::mont_mul_scalar(base[l], r2, n, ninv);
    for (unsigned i = 0; i < max_bits; ++i) {
      for (std::size_t l = 0; l < cnt; ++l) {
        if (i >= bits[l]) continue;
        if (exp_bit(e[l], i)) {
          if (started[l]) {
            r[l] = simd::mont_mul_scalar(r[l], b[l], n, ninv);
            ++counted;
          } else {
            r[l] = b[l];
            started[l] = true;
          }
        }
        if (i + 1 < bits[l]) {
          b[l] = simd::mont_mul_scalar(b[l], b[l], n, ninv);
          ++counted;
        }
      }
    }
    oc.mul += counted;
    for (std::size_t l = 0; l < cnt; ++l)
      out[l] = bits[l] == 0 ? 1 : simd::mont_mul_scalar(r[l], 1, n, ninv);
  }

  /// Scalar ablation of one lane: the LSB-first ladder of pow_mont64 with
  /// the ladder kept for every exponent width (the lane engine has no
  /// windowed branch, and the ablation must count exactly like it).
  template <class S>
  u64 ladder_one(u64 a, const S& e) const {
    if (exp_bit_length(e) == 0) return 1;
    u64 b = m_->to_mont(a);
    u64 r = 0;
    bool started = false;
    const unsigned bits = exp_bit_length(e);
    for (unsigned i = 0;; ++i) {
      if (exp_bit(e, i)) {
        r = started ? m_->mul(r, b) : b;
        started = true;
      }
      if (i + 1 >= bits) break;
      b = m_->mul(b, b);
    }
    return m_->from_mont(r);
  }

  const Mont64* m_;
  bool grouped_;
};

/// Multi-limb tier: L lanes of Montgomery<W> arithmetic over an interleaved
/// limb layout (limb-major, lane fastest-moving).
template <std::size_t W, std::size_t L>
class MontLane<Montgomery<W>, L> {
  static_assert(L >= 1 && L <= 64);

 public:
  using Dom = BigUInt<W>;
  static constexpr std::size_t kLanes = L;
  /// One lane group: limbs[j][l] = limb j of lane l.
  using Lanes = std::array<std::array<u64, L>, W>;

  MontLane(const Montgomery<W>& m, bool grouped) : m_(&m), grouped_(grouped) {}

  bool grouped() const { return grouped_; }

  void mul_lanes(const Dom* a, const Dom* b, Dom* out, std::size_t n) const {
    if (!grouped_) {
      for (std::size_t i = 0; i < n; ++i) out[i] = m_->mul(a[i], b[i]);
      return;
    }
    op_counts().mul += n;
    for (std::size_t i = 0; i < n; i += L) {
      const std::size_t cnt = n - i < L ? n - i : L;
      Lanes la, lb, lo;
      load(a + i, cnt, la);
      load(b + i, cnt, lb);
      group_mul(la, lb, lo);
      store(lo, out + i, cnt);
    }
  }

  void mul_masked(Dom* acc, const Dom* b, const bool* active) const {
    std::size_t live = 0;
    for (std::size_t l = 0; l < L; ++l) live += active[l] ? 1 : 0;
    if (live == 0) return;
    op_counts().mul += live;
    if (!grouped_) {
      for (std::size_t l = 0; l < L; ++l)
        if (active[l]) acc[l] = redc_mul_one(acc[l], b[l]);
      return;
    }
    Lanes la, lb, lo;
    load(acc, L, la);
    load(b, L, lb);
    group_mul(la, lb, lo);
    for (std::size_t l = 0; l < L; ++l)
      if (active[l]) acc[l] = extract(lo, l);
  }

  void to_mont_lanes(const Dom* x, Dom* out, std::size_t n) const {
    if (!grouped_) {
      for (std::size_t i = 0; i < n; ++i) out[i] = m_->to_mont(x[i]);
      return;
    }
    op_counts().mul += n;
    Lanes r2;
    broadcast(m_->r2(), r2);
    for (std::size_t i = 0; i < n; i += L) {
      const std::size_t cnt = n - i < L ? n - i : L;
      Lanes lx, lo;
      load(x + i, cnt, lx);
      group_mul(lx, r2, lo);
      store(lo, out + i, cnt);
    }
  }

  void from_mont_lanes(const Dom* x, Dom* out, std::size_t n) const {
    if (!grouped_) {
      for (std::size_t i = 0; i < n; ++i) out[i] = m_->from_mont(x[i]);
      return;
    }
    op_counts().mul += n;
    Lanes one;
    broadcast(Dom::one(), one);
    for (std::size_t i = 0; i < n; i += L) {
      const std::size_t cnt = n - i < L ? n - i : L;
      Lanes lx, lo;
      load(x + i, cnt, lx);
      group_mul(lx, one, lo);
      store(lo, out + i, cnt);
    }
  }

  /// Round-interleaved independent ladders, same contract and accounting
  /// as the Mont64 specialization (see above). Note the *scalar*
  /// Montgomery<W>::pow is sliding-window — the ladder here is pow_lanes'
  /// own algorithm, and its grouped/ungrouped paths count identically
  /// against each other.
  template <class S>
  void pow_lanes(const Dom* base, const S* e, Dom* out, std::size_t n) const {
    for (std::size_t i = 0; i < n; i += L) {
      const std::size_t cnt = n - i < L ? n - i : L;
      pow_group(base + i, e + i, out + i, cnt);
    }
  }

 private:
  static void load(const Dom* x, std::size_t cnt, Lanes& out) {
    for (std::size_t j = 0; j < W; ++j)
      for (std::size_t l = 0; l < L; ++l)
        out[j][l] = l < cnt ? x[l].limb(j) : 0;
  }

  static void broadcast(const Dom& x, Lanes& out) {
    for (std::size_t j = 0; j < W; ++j)
      for (std::size_t l = 0; l < L; ++l) out[j][l] = x.limb(j);
  }

  static Dom extract(const Lanes& x, std::size_t lane) {
    Dom out;
    for (std::size_t j = 0; j < W; ++j) out.set_limb(j, x[j][lane]);
    return out;
  }

  static void store(const Lanes& x, Dom* out, std::size_t cnt) {
    for (std::size_t l = 0; l < cnt; ++l) out[l] = extract(x, l);
  }

  /// Interleaved CIOS: the redc_mul of Montgomery<W> with a lane dimension
  /// added as the innermost stride-1 loop. Exact same per-lane arithmetic.
  void group_mul(const Lanes& a, const Lanes& b, Lanes& out) const {
    ++simd::lane_ops();
    const Dom& n = m_->modulus();
    const u64 ninv = m_->ninv();
    std::array<std::array<u64, L>, W + 2> t{};
    std::array<u64, L> carry;
    std::array<u64, L> m;
    for (std::size_t i = 0; i < W; ++i) {
      carry.fill(0);
      for (std::size_t j = 0; j < W; ++j) {
        for (std::size_t l = 0; l < L; ++l) {
          const u128 cur =
              static_cast<u128>(a[i][l]) * b[j][l] + t[j][l] + carry[l];
          t[j][l] = static_cast<u64>(cur);
          carry[l] = static_cast<u64>(cur >> 64);
        }
      }
      for (std::size_t l = 0; l < L; ++l) {
        const u128 cur = static_cast<u128>(t[W][l]) + carry[l];
        t[W][l] = static_cast<u64>(cur);
        t[W + 1][l] += static_cast<u64>(cur >> 64);
      }
      for (std::size_t l = 0; l < L; ++l) m[l] = t[0][l] * ninv;
      for (std::size_t l = 0; l < L; ++l) {
        const u128 first = static_cast<u128>(m[l]) * n.limb(0) + t[0][l];
        carry[l] = static_cast<u64>(first >> 64);
      }
      for (std::size_t j = 1; j < W; ++j) {
        for (std::size_t l = 0; l < L; ++l) {
          const u128 cur2 =
              static_cast<u128>(m[l]) * n.limb(j) + t[j][l] + carry[l];
          t[j - 1][l] = static_cast<u64>(cur2);
          carry[l] = static_cast<u64>(cur2 >> 64);
        }
      }
      for (std::size_t l = 0; l < L; ++l) {
        const u128 cur = static_cast<u128>(t[W][l]) + carry[l];
        t[W - 1][l] = static_cast<u64>(cur);
        t[W][l] = t[W + 1][l] + static_cast<u64>(cur >> 64);
        t[W + 1][l] = 0;
      }
    }
    for (std::size_t l = 0; l < L; ++l) {
      Dom r;
      for (std::size_t j = 0; j < W; ++j) r.set_limb(j, t[j][l]);
      if (t[W][l] != 0 || r >= n) r.sub_with_borrow(n);
      for (std::size_t j = 0; j < W; ++j) out[j][l] = r.limb(j);
    }
  }

  /// Uncounted single REDC multiplication (mul_masked's scalar path does
  /// its own slot accounting).
  Dom redc_mul_one(const Dom& a, const Dom& b) const {
    Lanes la, lb, lo;
    broadcast(a, la);
    broadcast(b, lb);
    const u64 saved = simd::lane_ops();
    group_mul(la, lb, lo);
    simd::lane_ops() = saved;  // broadcast trick, not a lane dispatch
    return extract(lo, 0);
  }

  template <class S>
  void pow_group(const Dom* base, const S* e, Dom* out,
                 std::size_t cnt) const {
    op_counts().pow += cnt;
    if (!grouped_) {
      for (std::size_t l = 0; l < cnt; ++l) out[l] = ladder_one(base[l], e[l]);
      return;
    }
    unsigned bits[L] = {};
    unsigned max_bits = 0;
    for (std::size_t l = 0; l < cnt; ++l) {
      bits[l] = exp_bit_length(e[l]);
      if (bits[l] > max_bits) max_bits = bits[l];
    }
    // Same round-interleaved independent ladders as the Mont64 tier, but
    // through the counted Montgomery<W> ops directly: each CIOS chain is
    // long enough that the accessor overhead is noise, and every lane
    // performs exactly ladder_one's multiset — identical counts for free.
    // The interleaved-CIOS group kernel stays on the table-build paths
    // (mul_lanes / to_mont_lanes), where every slot does real work.
    Dom b[L], r[L];
    bool started[L] = {};
    for (std::size_t l = 0; l < cnt; ++l)
      if (bits[l] != 0) b[l] = m_->to_mont(base[l]);
    for (unsigned i = 0; i < max_bits; ++i) {
      for (std::size_t l = 0; l < cnt; ++l) {
        if (i >= bits[l]) continue;
        if (exp_bit(e[l], i)) {
          if (started[l]) {
            r[l] = m_->mul(r[l], b[l]);
          } else {
            r[l] = b[l];
            started[l] = true;
          }
        }
        if (i + 1 < bits[l]) b[l] = m_->mul(b[l], b[l]);
      }
    }
    for (std::size_t l = 0; l < cnt; ++l)
      out[l] = bits[l] == 0 ? Dom::one() : m_->from_mont(r[l]);
  }

  template <class S>
  Dom ladder_one(const Dom& a, const S& e) const {
    const unsigned bits = exp_bit_length(e);
    if (bits == 0) return Dom::one();
    Dom b = m_->to_mont(a);
    Dom r;
    bool started = false;
    for (unsigned i = 0;; ++i) {
      if (exp_bit(e, i)) {
        r = started ? m_->mul(r, b) : b;
        started = true;
      }
      if (i + 1 >= bits) break;
      b = m_->mul(b, b);
    }
    return m_->from_mont(r);
  }

  const Montgomery<W>* m_;
  bool grouped_;
};

}  // namespace dmw::num
