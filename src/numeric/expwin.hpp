// Windowed exponentiation engine: the shared machinery behind every fast
// exponentiation path in the repo.
//
// DMW's per-agent cost is dominated by exponentiations in the Schnorr group
// (paper Thm. 12: O(mn^2 log p) modular ops), so the group backends must not
// leave constant factors on the table. This header provides:
//
//   - exponent digit access (bits and w-bit windows) for u64 and BigUInt<W>;
//   - a DomainOps concept: the minimal multiplicative structure the engine
//     needs (identity + multiplication). Both group backends supply
//     Montgomery-domain arithmetic (Mont64 for the u64 tier, Montgomery<W>
//     for BigUInt — each models DomainOps directly), so whole squaring
//     chains run without ever leaving the Montgomery domain; plain divmod
//     arithmetic (Mod64Ops) remains for even or out-of-range moduli;
//   - sliding-window (wNAF-style odd-digit) decomposition of exponents, and
//     pow_window(), the left-to-right sliding-window exponentiation built on
//     it: ~bits squarings + bits/(w+1) table multiplications instead of the
//     textbook bits squarings + bits/2 multiplications.
//
// Window sizes: for a b-bit exponent the odd-power table costs 2^(w-1)
// multiplications and saves bits/2 - bits/(w+1) of them, so the optimum
// grows logarithmically in b; pow_window_bits() encodes the break-even
// points. Fixed-base tables (fixedbase.hpp) and the windowed Straus
// multi-exponentiation (multiexp.hpp) build on the same primitives.
//
// Op-count contract (see opcount.hpp): every multiplication the engine
// performs goes through Ops::mul, which is a counted operation in both
// backends, so fast and naive paths are comparable by their `mul` counters.
#pragma once

#include <array>
#include <bit>
#include <concepts>
#include <vector>

#include "numeric/biguint.hpp"

namespace dmw::num {

// ---- exponent digit access -------------------------------------------------

inline unsigned exp_bit_length(u64 e) {
  return e == 0 ? 0 : 64 - static_cast<unsigned>(__builtin_clzll(e));
}
inline bool exp_bit(u64 e, unsigned i) { return ((e >> i) & 1) != 0; }

template <std::size_t W>
unsigned exp_bit_length(const BigUInt<W>& e) {
  return e.bit_length();
}
template <std::size_t W>
bool exp_bit(const BigUInt<W>& e, unsigned i) {
  return e.bit(i);
}

/// 64 bits of e starting at bit `lo` (zero-padded past the top): the word
/// extraction the window readers below are built on. One or two limb reads
/// instead of a per-bit loop — digit decomposition and Pippenger's window
/// scans read millions of bits per protocol run.
inline u64 exp_word64_at(u64 e, unsigned lo) { return lo >= 64 ? 0 : e >> lo; }
template <std::size_t W>
u64 exp_word64_at(const BigUInt<W>& e, unsigned lo) {
  const unsigned wi = lo / 64;
  const unsigned sh = lo % 64;
  u64 v = wi < W ? e.limb(wi) >> sh : 0;
  if (sh != 0 && wi + 1 < W) v |= e.limb(wi + 1) << (64 - sh);
  return v;
}

/// Value of the bit window [lo, lo + len) of e, len <= 16. Bits beyond the
/// representation read as zero.
template <class S>
unsigned exp_window(const S& e, unsigned lo, unsigned len) {
  return static_cast<unsigned>(exp_word64_at(e, lo) &
                               ((u64{1} << len) - 1));
}

// ---- multiplicative domain -------------------------------------------------

/// The minimal structure the exponentiation engine needs: a multiplicative
/// identity and an associative multiplication, over some element
/// representation `Dom`. Backends choose the representation that makes
/// `mul` cheapest (plain residues for Group64, Montgomery form for
/// GroupBig) and convert at the boundary only.
template <class Ops>
concept DomainOps = requires(const Ops o, const typename Ops::Dom d) {
  typename Ops::Dom;
  { o.one() } -> std::convertible_to<typename Ops::Dom>;
  { o.mul(d, d) } -> std::convertible_to<typename Ops::Dom>;
};

// ---- window-size heuristics ------------------------------------------------

/// Sliding-window width for a single b-bit exponentiation. Break-even:
/// table cost 2^(w-1) muls vs ~b/(w+1) window muls.
constexpr unsigned pow_window_bits(unsigned exp_bits) {
  if (exp_bits <= 8) return 1;
  if (exp_bits <= 24) return 2;
  if (exp_bits <= 80) return 3;
  if (exp_bits <= 240) return 4;
  return 5;
}

/// Window width for interleaved (Straus) multi-exponentiation: the squaring
/// chain is shared, so only the per-base table cost vs per-base window muls
/// trade off — same break-even structure as pow_window_bits.
constexpr unsigned multiexp_window_bits(unsigned exp_bits) {
  return pow_window_bits(exp_bits);
}

// ---- sliding-window decomposition ------------------------------------------

/// One digit of a sliding-window decomposition: e = sum value_t * 2^{pos_t}
/// with every value odd and < 2^w. Greedy LSB-anchored scan, so consecutive
/// digits are separated by at least w zero bits on average.
struct WindowDigit {
  unsigned pos = 0;
  unsigned value = 0;  ///< odd, in [1, 2^w)
};

/// Appends the decomposition of e (ascending pos) to `out`. Scans 64 bits
/// at a time: zero runs skip by whole words, set bits locate via countr_zero,
/// and the digit value reads straight out of the extracted word — the
/// LSB-anchored greedy structure (odd digits, trailing set bit) is unchanged
/// from the per-bit formulation.
template <class S>
void decompose_windows(const S& e, unsigned w, std::vector<WindowDigit>& out) {
  const unsigned bits = exp_bit_length(e);
  unsigned i = 0;
  while (i < bits) {
    u64 word = exp_word64_at(e, i);
    if (word == 0) {
      i += 64;
      continue;
    }
    const unsigned skip = static_cast<unsigned>(std::countr_zero(word));
    i += skip;
    word >>= skip;
    // Digit anchored at the set bit i: up to w bits, trimmed to end on a
    // set bit so the value is odd (w <= 16 < 64, so `word` covers it).
    unsigned len = w;
    if (i + len > bits) len = bits - i;
    unsigned val = static_cast<unsigned>(word & ((u64{1} << len) - 1));
    while ((val >> (len - 1)) == 0) {
      --len;
      val &= (1u << len) - 1;
    }
    out.push_back(WindowDigit{i, val});
    i += len;
  }
}

/// Odd-power table base^1, base^3, ..., base^(2^w - 1):
/// 2^(w-1) entries, 2^(w-1) multiplications (one of them the squaring).
template <DomainOps Ops>
std::vector<typename Ops::Dom> odd_power_table(const Ops& ops,
                                               const typename Ops::Dom& base,
                                               unsigned w) {
  std::vector<typename Ops::Dom> table;
  table.reserve(std::size_t(1) << (w - 1));
  table.push_back(base);
  if (w > 1) {
    const auto sq = ops.mul(base, base);
    for (std::size_t j = 1; j < (std::size_t(1) << (w - 1)); ++j)
      table.push_back(ops.mul(table.back(), sq));
  }
  return table;
}

// ---- sliding-window exponentiation -----------------------------------------

/// Largest window pow_window accepts; the odd-power table lives on the
/// stack (2^(max-1) entries), so single exponentiations never touch the
/// heap — at u64 scale an allocation would cost more than the saved
/// multiplications.
inline constexpr unsigned kPowWindowMax = 6;

/// base^e in the domain, left-to-right sliding window (MSB-anchored scan,
/// same odd-digit structure as decompose_windows). `window = 0` picks the
/// width from the exponent length.
template <DomainOps Ops, class S>
typename Ops::Dom pow_window(const Ops& ops, const typename Ops::Dom& base,
                             const S& e, unsigned window = 0) {
  const unsigned bits = exp_bit_length(e);
  if (bits == 0) return ops.one();
  const unsigned w = window != 0 ? window : pow_window_bits(bits);
  // Odd powers base^1, base^3, ..., base^(2^w - 1), on the stack.
  std::array<typename Ops::Dom, std::size_t(1) << (kPowWindowMax - 1)> table;
  table[0] = base;
  if (w > 1) {
    const auto sq = ops.mul(base, base);
    for (std::size_t j = 1; j < (std::size_t(1) << (w - 1)); ++j)
      table[j] = ops.mul(table[j - 1], sq);
  }
  typename Ops::Dom acc = ops.one();
  bool started = false;
  unsigned i = bits;
  while (i > 0) {
    const unsigned bit = i - 1;
    if (!exp_bit(e, bit)) {
      if (started) acc = ops.mul(acc, acc);
      --i;
      continue;
    }
    // Window [j, bit] trimmed to end on a set bit, so its value is odd.
    unsigned j = bit + 1 >= w ? bit + 1 - w : 0;
    while (!exp_bit(e, j)) ++j;
    const unsigned len = bit - j + 1;
    const unsigned val = exp_window(e, j, len);
    if (started) {
      for (unsigned k = 0; k < len; ++k) acc = ops.mul(acc, acc);
      acc = ops.mul(acc, table[(val - 1) / 2]);
    } else {
      acc = table[(val - 1) / 2];
      started = true;
    }
    i = j;
  }
  return acc;
}

}  // namespace dmw::num
