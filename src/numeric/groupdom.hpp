// Group-backend glue shared by the multi-exponentiation engines.
//
// Both the windowed Straus interleaving (multiexp.hpp) and the Pippenger
// bucket method (pippenger.hpp) need the same two pieces on top of a
// GroupBackend: digit access to protocol scalars (the exponents) and the
// backend's multiplicative domain presented as a DomainOps (expwin.hpp), so
// whole evaluation runs convert into the domain once per base and back once
// per result. Splitting the glue out of multiexp.hpp lets the two engines
// layer without a cyclic include: multiexp.hpp includes pippenger.hpp to
// build the auto-dispatching multi_pow on top of both.
#pragma once

#include "numeric/group.hpp"

namespace dmw::num {

// ---- scalar bit accessors shared by both backends -------------------------

inline bool scalar_bit(const Group64&, Group64::Scalar s, unsigned i) {
  return ((s >> i) & 1) != 0;
}
inline unsigned scalar_bit_length(const Group64&, Group64::Scalar s) {
  return s == 0 ? 0 : 64 - static_cast<unsigned>(__builtin_clzll(s));
}

template <std::size_t W>
bool scalar_bit(const GroupBig<W>&, const BigUInt<W>& s, unsigned i) {
  return s.bit(i);
}
template <std::size_t W>
unsigned scalar_bit_length(const GroupBig<W>&, const BigUInt<W>& s) {
  return s.bit_length();
}

// ---- a group backend's domain as DomainOps --------------------------------

/// Adapter exposing a backend's multiplicative domain to the exponentiation
/// engine (expwin.hpp / fixedbase.hpp).
template <GroupBackend G>
struct GroupDomOps {
  using Dom = typename G::Dom;
  const G* g;
  Dom one() const { return g->dom_one(); }
  Dom mul(const Dom& a, const Dom& b) const { return g->dom_mul(a, b); }
};

}  // namespace dmw::num
