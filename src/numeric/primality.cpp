#include "numeric/primality.hpp"

#include <array>

#include "numeric/modarith.hpp"
#include "numeric/mont.hpp"

namespace dmw::num {

namespace {

constexpr std::array<u64, 12> kDeterministicWitnesses = {
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37};

constexpr std::array<u64, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// One Miller-Rabin round for u64: n-1 = d * 2^s with d odd.
bool miller_rabin_round_u64(u64 n, u64 d, int s, u64 a) {
  u64 x = mod_pow(a % n, d, n);
  if (x == 1 || x == n - 1) return true;
  for (int i = 1; i < s; ++i) {
    x = mod_mul(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool is_prime_u64(u64 n) {
  if (n < 2) return false;
  for (u64 p : kSmallPrimes) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  u64 d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  // This witness set is deterministic for all n < 3.3 * 10^24, which covers
  // the full 64-bit range (Sorenson & Webster).
  for (u64 a : kDeterministicWitnesses) {
    if (a % n == 0) continue;
    if (!miller_rabin_round_u64(n, d, s, a)) return false;
  }
  return true;
}

u64 random_prime_u64(unsigned bits, dmw::Xoshiro256ss& rng) {
  DMW_REQUIRE(bits >= 2 && bits <= 63);
  for (;;) {
    u64 candidate = rng.next();
    if (bits < 64) candidate &= (u64{1} << bits) - 1;
    candidate |= u64{1} << (bits - 1);  // exact bit length
    candidate |= 1;                     // odd
    if (is_prime_u64(candidate)) return candidate;
  }
}

template <std::size_t W>
bool is_probable_prime(const BigUInt<W>& n, dmw::Xoshiro256ss& rng,
                       int rounds) {
  if (n.fits_u64()) return is_prime_u64(n.to_u64());
  for (u64 p : kSmallPrimes) {
    if (mod(n, BigUInt<W>(p)).is_zero()) return false;
  }
  if (!n.is_odd()) return false;

  BigUInt<W> n_minus_1 = n;
  n_minus_1.sub_with_borrow(BigUInt<W>::one());
  BigUInt<W> d = n_minus_1;
  int s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }
  const Montgomery<W> mont(n);
  const BigUInt<W> two(2);
  // Bases in [2, n-2].
  BigUInt<W> base_bound = n_minus_1;
  base_bound.sub_with_borrow(two);
  for (int round = 0; round < rounds; ++round) {
    BigUInt<W> a = random_below(base_bound, rng);
    a.add_with_carry(two);
    BigUInt<W> x = mont.pow(a, d);
    if (x == BigUInt<W>::one() || x == n_minus_1) continue;
    bool composite = true;
    for (int i = 1; i < s; ++i) {
      x = mont.from_mont(mont.mul(mont.to_mont(x), mont.to_mont(x)));
      if (x == n_minus_1) {
        composite = false;
        break;
      }
      if (x == BigUInt<W>::one()) break;
    }
    if (composite) return false;
  }
  return true;
}

template <std::size_t W>
BigUInt<W> random_prime(unsigned bits, dmw::Xoshiro256ss& rng, int rounds) {
  DMW_REQUIRE(bits >= 2 && bits <= BigUInt<W>::kBits);
  for (;;) {
    BigUInt<W> candidate;
    for (std::size_t i = 0; i * 64 < bits; ++i) candidate.set_limb(i, rng.next());
    for (unsigned b = bits; b < BigUInt<W>::kBits; ++b)
      candidate.set_bit(b, false);
    candidate.set_bit(bits - 1, true);
    candidate.set_bit(0, true);
    if (is_probable_prime(candidate, rng, rounds)) return candidate;
  }
}

template bool is_probable_prime<2>(const BigUInt<2>&, dmw::Xoshiro256ss&, int);
template bool is_probable_prime<4>(const BigUInt<4>&, dmw::Xoshiro256ss&, int);
template bool is_probable_prime<8>(const BigUInt<8>&, dmw::Xoshiro256ss&, int);
template BigUInt<2> random_prime<2>(unsigned, dmw::Xoshiro256ss&, int);
template BigUInt<4> random_prime<4>(unsigned, dmw::Xoshiro256ss&, int);
template BigUInt<8> random_prime<8>(unsigned, dmw::Xoshiro256ss&, int);

}  // namespace dmw::num
