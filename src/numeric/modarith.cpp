#include "numeric/modarith.hpp"

namespace dmw::num {

u64 mod_pow(u64 a, u64 e, u64 m) {
  DMW_REQUIRE(m > 0);
  ++op_counts().pow;
  return pow_window(Mod64Ops{m}, a % m, e);
}

u64 mod_pow_naive(u64 a, u64 e, u64 m) {
  DMW_REQUIRE(m > 0);
  ++op_counts().pow;
  const Mod64Ops ops{m};
  a %= m;
  u64 result = ops.one();
  while (e != 0) {
    if (e & 1) result = ops.mul(result, a);
    a = ops.mul(a, a);
    e >>= 1;
  }
  return result;
}

u64 mod_inv(u64 a, u64 m) {
  DMW_REQUIRE(m > 1);
  ++op_counts().inv;
  // Extended Euclid with signed 128-bit intermediates (coefficients are
  // bounded by m but the update term q*t1 can reach 2m, which would overflow
  // int64 for moduli near 2^63).
  __int128 t0 = 0, t1 = 1;
  u64 r0 = m, r1 = a % m;
  DMW_REQUIRE_MSG(r1 != 0, "mod_inv: zero operand");
  while (r1 != 0) {
    const u64 q = r0 / r1;
    const u64 r2 = r0 % r1;
    const __int128 t2 = t0 - static_cast<__int128>(q) * t1;
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t1 = t2;
  }
  DMW_CHECK_MSG(r0 == 1, "mod_inv: operand not invertible");
  return t0 >= 0 ? static_cast<u64>(t0)
                 : m - static_cast<u64>(-t0);
}

u64 gcd_u64(u64 a, u64 b) {
  while (b != 0) {
    const u64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

OpCounts& op_counts() {
  thread_local OpCounts counts;
  return counts;
}

}  // namespace dmw::num
