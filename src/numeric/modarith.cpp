#include "numeric/modarith.hpp"

#include "numeric/mont.hpp"

namespace dmw::num {

u64 mod_pow(u64 a, u64 e, u64 m) {
  DMW_REQUIRE(m > 0);
  a %= m;
  // Montgomery fast path (every Group64 modulus lands here): a domain
  // multiplication is three 64x64 multiplies instead of mod_mul's 128/64
  // division, which more than repays the two per-call divisions the
  // context setup spends.
  if ((m & 1) != 0 && m > 1 && m < (u64{1} << 63))
    return pow_mont64(Mont64(m), a, e);
  // Even / out-of-range moduli (never the protocol path): the divmod tier.
  ++op_counts().pow;
  const unsigned bits = exp_bit_length(e);
  const Mod64Ops ops{m};
  if (bits == 0) return ops.one();
  if (bits >= kPow64WindowMinBits) return pow_window(ops, a, e);
  u64 result = a;
  for (unsigned i = bits - 1; i-- > 0;) {
    result = ops.mul(result, result);
    if (exp_bit(e, i)) result = ops.mul(result, a);
  }
  return result;
}

u64 mod_pow_naive(u64 a, u64 e, u64 m) {
  DMW_REQUIRE(m > 0);
  ++op_counts().pow;
  const Mod64Ops ops{m};
  a %= m;
  u64 result = ops.one();
  while (e != 0) {
    if (e & 1) result = ops.mul(result, a);
    a = ops.mul(a, a);
    e >>= 1;
  }
  return result;
}

u64 mod_inv(u64 a, u64 m) {
  DMW_REQUIRE(m > 1);
  ++op_counts().inv;
  // Extended Euclid with signed 128-bit intermediates (coefficients are
  // bounded by m but the update term q*t1 can reach 2m, which would overflow
  // int64 for moduli near 2^63).
  __int128 t0 = 0, t1 = 1;
  u64 r0 = m, r1 = a % m;
  DMW_REQUIRE_MSG(r1 != 0, "mod_inv: zero operand");
  while (r1 != 0) {
    const u64 q = r0 / r1;
    const u64 r2 = r0 % r1;
    const __int128 t2 = t0 - static_cast<__int128>(q) * t1;
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t1 = t2;
  }
  DMW_CHECK_MSG(r0 == 1, "mod_inv: operand not invertible");
  return t0 >= 0 ? static_cast<u64>(t0)
                 : m - static_cast<u64>(-t0);
}

u64 gcd_u64(u64 a, u64 b) {
  while (b != 0) {
    const u64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

OpCounts& op_counts() {
  thread_local OpCounts counts;
  return counts;
}

}  // namespace dmw::num
