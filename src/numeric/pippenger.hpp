// Pippenger (bucket-method) multi-exponentiation.
//
// The windowed Straus interleaving (multiexp.hpp) pays a per-base odd-power
// table plus ~bits/(w+1) table multiplications per base; its cost is linear
// in the base count with a large constant. The bucket method instead scans
// the exponents c bits at a time: within one round every base whose current
// digit is d lands in bucket d with a single multiplication, and the round
// total  sum_d d * bucket_d  is recovered with ~2 * 2^c more via the
// running-suffix-product trick. Per base the whole evaluation costs about
// one multiplication per round — asymptotically bits/log(len) — so beyond a
// crossover length (a few hundred bases at protocol scalar sizes) Pippenger
// wins, and RLC batch verification (dmw/batchverify.hpp) is exactly the
// producer of such long products.
//
// multi_pow_prefers_pippenger() compares the two closed-form cost models so
// the dispatching multi_pow (multiexp.hpp) can pick per call; the models are
// in counted domain multiplications, matching the op-count contract
// (opcount.hpp) both engines honour — every multiplication either performs
// goes through a counted backend op. bench_multiexp measures the real
// crossover against the models.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <span>
#include <type_traits>
#include <vector>

#include "numeric/groupdom.hpp"

namespace dmw::num {

// ---- cost models -----------------------------------------------------------

/// Largest bucket window the cost scan considers: 2^12 buckets is already
/// past the optimum for any product the protocol can produce.
inline constexpr unsigned kPippengerWindowMax = 12;

/// Estimated domain multiplications for the bucket method on `len` bases of
/// `bits`-bit exponents with a c-bit window: per round one bucket
/// multiplication per base with a nonzero digit (fraction 1 - 2^-c) plus
/// ~2 per live bucket for the suffix-product recovery, plus the shared
/// squaring chain (one squaring per exponent bit overall) and one
/// domain conversion per base.
inline double pippenger_cost_estimate(std::size_t len, unsigned bits,
                                      unsigned c) {
  const double rounds = std::ceil(static_cast<double>(bits) / c);
  const double adds =
      static_cast<double>(len) * (1.0 - std::ldexp(1.0, -static_cast<int>(c)));
  const double live = std::min<double>(static_cast<double>(len),
                                       std::ldexp(1.0, static_cast<int>(c)));
  return rounds * (adds + 2.0 * live) + static_cast<double>(bits) +
         static_cast<double>(len);
}

/// Bucket window minimizing the model above. The scan is additionally
/// capped so the bucket count stays <= ~2x the base count: the mul-count
/// model cannot see the 2^c-slot recovery walk each round performs, and an
/// oversized window (mostly-empty buckets) makes that uncounted scan
/// dominate on the cheap-mul Group64 tier. The cap is what puts the real
/// dispatch crossover at a few hundred bases instead of "always buckets".
inline unsigned pippenger_window_bits(std::size_t len, unsigned bits) {
  const unsigned cap = std::min(
      kPippengerWindowMax,
      std::max(1u, static_cast<unsigned>(std::bit_width(len))));
  unsigned best = 1;
  double best_cost = pippenger_cost_estimate(len, bits, 1);
  for (unsigned c = 2; c <= cap; ++c) {
    const double cost = pippenger_cost_estimate(len, bits, c);
    if (cost < best_cost) {
      best = c;
      best_cost = cost;
    }
  }
  return best;
}

/// Estimated domain multiplications for windowed Straus (multiexp.hpp):
/// per base one odd-power table (2^(w-1) muls + one conversion) and
/// ~bits/(w+1) window muls, plus the shared squaring chain.
inline double straus_cost_estimate(std::size_t len, unsigned bits) {
  const unsigned w = multiexp_window_bits(bits == 0 ? 1 : bits);
  const double per_base = std::ldexp(1.0, static_cast<int>(w) - 1) + 1.0 +
                          static_cast<double>(bits) / (w + 1);
  return static_cast<double>(len) * per_base + static_cast<double>(bits);
}

/// Dispatch predicate for multi_pow: true when the bucket method models
/// cheaper than Straus for this shape.
inline bool multi_pow_prefers_pippenger(std::size_t len, unsigned bits) {
  if (len < 2 || bits == 0) return false;
  const unsigned c = pippenger_window_bits(len, bits);
  return pippenger_cost_estimate(len, bits, c) < straus_cost_estimate(len, bits);
}

// ---- the bucket method -----------------------------------------------------

/// prod_j bases[j]^{exponents[j]} via fixed c-bit windows and bucket
/// accumulation. `window = 0` picks the width from the cost model. Exact for
/// any exponents (no probabilistic structure); used directly by bench/tests
/// and through the dispatching multi_pow for long products.
template <GroupBackend G>
typename G::Elem multi_pow_pippenger(
    const G& g, std::span<const typename G::Elem> bases,
    std::span<const typename G::Scalar> exponents, unsigned window = 0) {
  DMW_REQUIRE(bases.size() == exponents.size());
  if (bases.empty()) return g.identity();
  const GroupDomOps<G> ops{&g};
  unsigned max_bits = 0;
  for (const auto& e : exponents)
    max_bits = std::max(max_bits, scalar_bit_length(g, e));
  if (max_bits == 0) return g.identity();
  const unsigned c =
      window != 0 ? window : pippenger_window_bits(bases.size(), max_bits);
  DMW_REQUIRE(c >= 1 && c <= kPippengerWindowMax);

  // Bases enter the multiplicative domain once, up front — lane-grouped
  // when the group's SimdMode engages (independent conversions, identical
  // values and OpCounts either way).
  const bool use_lanes = lanes_profitable(g, bases.size());
  const auto lane = make_lane_engine(g);
  constexpr std::size_t kL = std::remove_cvref_t<decltype(lane)>::kLanes;
  std::vector<typename G::Dom> dom(bases.size());
  if (use_lanes) {
    lane.to_mont_lanes(bases.data(), dom.data(), bases.size());
  } else {
    for (std::size_t j = 0; j < bases.size(); ++j) dom[j] = g.to_dom(bases[j]);
  }

  // Buckets for digit values 1..2^c-1; a presence mask avoids spending
  // identity multiplications on empty buckets.
  const std::size_t bucket_count = (std::size_t(1) << c) - 1;
  std::vector<typename G::Dom> bucket(bucket_count);
  std::vector<char> filled(bucket_count, 0);

  // Pending bucket multiplications for the lane engine: accumulations into
  // *distinct* buckets are independent, so up to kLanes of them retire as
  // one masked lane group. A second hit on a pending bucket flushes first,
  // preserving each bucket's accumulation order — the grouped schedule
  // performs the same multiset of multiplications in the same per-bucket
  // order as the scalar loop, so values and OpCounts are identical.
  std::array<std::size_t, kL> pend_bucket{};
  std::array<std::size_t, kL> pend_base{};
  std::size_t npend = 0;
  const auto flush = [&]() {
    if (npend == 0) return;
    typename G::Dom a[kL], b[kL];
    bool active[kL] = {};
    for (std::size_t k = 0; k < npend; ++k) {
      a[k] = bucket[pend_bucket[k]];
      b[k] = dom[pend_base[k]];
      active[k] = true;
    }
    for (std::size_t k = npend; k < kL; ++k) {
      a[k] = a[0];
      b[k] = b[0];
    }
    lane.mul_masked(a, b, active);
    for (std::size_t k = 0; k < npend; ++k) bucket[pend_bucket[k]] = a[k];
    npend = 0;
  };

  const unsigned rounds = (max_bits + c - 1) / c;
  typename G::Dom acc{};
  bool acc_started = false;
  for (unsigned r = rounds; r-- > 0;) {
    if (acc_started) {
      for (unsigned s = 0; s < c; ++s) acc = ops.mul(acc, acc);
    }
    std::fill(filled.begin(), filled.end(), 0);
    for (std::size_t j = 0; j < dom.size(); ++j) {
      const unsigned d = exp_window(exponents[j], r * c, c);
      if (d == 0) continue;
      if (filled[d - 1]) {
        if (use_lanes) {
          for (std::size_t k = 0; k < npend; ++k) {
            if (pend_bucket[k] == d - 1) {
              flush();
              break;
            }
          }
          pend_bucket[npend] = d - 1;
          pend_base[npend] = j;
          if (++npend == kL) flush();
        } else {
          bucket[d - 1] = ops.mul(bucket[d - 1], dom[j]);
        }
      } else {
        bucket[d - 1] = dom[j];
        filled[d - 1] = 1;
      }
    }
    flush();
    // sum_d d * bucket_d by suffix products: scanning d downward, `running`
    // holds prod_{d' >= d} bucket_{d'} and is folded into `sum` once per
    // level, so bucket_d ends up counted exactly d times.
    typename G::Dom running{};
    bool running_started = false;
    typename G::Dom sum{};
    bool sum_started = false;
    for (std::size_t d = bucket_count; d-- > 0;) {
      if (filled[d]) {
        running = running_started ? ops.mul(running, bucket[d]) : bucket[d];
        running_started = true;
      }
      if (running_started) {
        sum = sum_started ? ops.mul(sum, running) : running;
        sum_started = true;
      }
    }
    if (sum_started) {
      acc = acc_started ? ops.mul(acc, sum) : sum;
      acc_started = true;
    }
  }
  return acc_started ? g.from_dom(acc) : g.identity();
}

}  // namespace dmw::num
