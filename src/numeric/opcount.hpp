// Modular-operation counters.
//
// Theorem 12 bounds DMW's computational cost by counting modular
// multiplications and exponentiations. The benchmark harness validates the
// claimed O(m n^2 log p) shape with these counters rather than wall time
// alone, which makes the fit independent of machine noise.
#pragma once

#include <cstdint>

namespace dmw::num {

struct OpCounts {
  std::uint64_t mul = 0;   ///< modular multiplications
  std::uint64_t pow = 0;   ///< modular exponentiations
  std::uint64_t inv = 0;   ///< modular inverses
  std::uint64_t add = 0;   ///< modular additions/subtractions

  OpCounts& operator+=(const OpCounts& o) {
    mul += o.mul;
    pow += o.pow;
    inv += o.inv;
    add += o.add;
    return *this;
  }
  friend OpCounts operator-(OpCounts a, const OpCounts& b) {
    a.mul -= b.mul;
    a.pow -= b.pow;
    a.inv -= b.inv;
    a.add -= b.add;
    return a;
  }
  std::uint64_t total() const { return mul + pow + inv + add; }
};

/// Process-wide counters (the simulator is single-threaded).
OpCounts& op_counts();

/// RAII scope that measures the ops executed within it.
class OpCountScope {
 public:
  OpCountScope() : start_(op_counts()) {}
  OpCounts delta() const { return op_counts() - start_; }

 private:
  OpCounts start_;
};

}  // namespace dmw::num
