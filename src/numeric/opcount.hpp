// Modular-operation counters.
//
// Theorem 12 bounds DMW's computational cost by counting modular
// multiplications and exponentiations. The benchmark harness validates the
// claimed O(m n^2 log p) shape with these counters rather than wall time
// alone, which makes the fit independent of machine noise.
//
// Accounting contract (all arithmetic tiers follow it, so fast and naive
// paths are directly comparable):
//
//   - `mul` counts every modular multiplication actually executed, including
//     squarings, window-table construction, Montgomery-domain conversions
//     (each is one Montgomery multiplication), and the multiplications
//     *inside* exponentiation loops. A windowed exponentiation therefore
//     reports fewer `mul`s than a square-and-multiply one — that difference
//     is the measured saving, not an accounting artifact.
//   - `pow` counts exponentiation *calls* (one per `pow`; a Pedersen
//     `commit` counts two — it raises both bases), on top of the `mul`s the
//     call performs. Use it for "number of exponentiations" accounting
//     (e.g. Thm. 12's O(n^2) exponentiations per agent), never as a proxy
//     for multiplication work.
//   - `inv` / `add` count modular inverses and additions/subtractions.
//
// Comparing the total modular work of two code paths means comparing
// `mul` (+ `add`/`inv` where relevant); comparing `pow` alone only says how
// often exponentiation was invoked.
//
// Lane-grouped crediting (numeric/montlane.hpp): when the vectorized
// Montgomery tier retires a group of kLanes multiplications as one SIMD
// kernel call, it credits one `mul` per *active lane slot* — masked padding
// slots whose outputs are discarded are never counted. A lane-batched
// exponentiation likewise credits one `pow` per element plus exactly the
// ladder's per-element `mul`s (1 domain entry + bits-1 squarings +
// popcount-1 products + 1 domain exit, zero exponents just the `pow`).
// Consequence: OpCounts — and therefore RunReports — are bit-identical
// across SimdMode off/auto/on; the grouping is visible only in wall time
// and in the separate simd::lane_ops() engine telemetry (thread-local
// kernel-dispatch counter, deliberately NOT part of OpCounts so reports
// never depend on the host ISA).
#pragma once

#include <cstdint>

namespace dmw::num {

struct OpCounts {
  std::uint64_t mul = 0;   ///< modular multiplications (incl. inside pows)
  std::uint64_t pow = 0;   ///< modular exponentiation calls
  std::uint64_t inv = 0;   ///< modular inverses
  std::uint64_t add = 0;   ///< modular additions/subtractions

  OpCounts& operator+=(const OpCounts& o) {
    mul += o.mul;
    pow += o.pow;
    inv += o.inv;
    add += o.add;
    return *this;
  }
  friend OpCounts operator-(OpCounts a, const OpCounts& b) {
    a.mul -= b.mul;
    a.pow -= b.pow;
    a.inv -= b.inv;
    a.add -= b.add;
    return a;
  }
  std::uint64_t total() const { return mul + pow + inv + add; }
};

/// Per-thread counters. Every arithmetic tier increments the counters of the
/// thread it runs on, so workers of the task-parallel engine never contend on
/// (or tear) a shared counter; the parallel driver snapshots each worker's
/// delta with OpCountScope inside the job and merges the deltas at the stage
/// barrier. Single-threaded callers see the historical process-wide
/// behaviour unchanged.
OpCounts& op_counts();

/// RAII scope that measures the ops executed within it.
class OpCountScope {
 public:
  OpCountScope() : start_(op_counts()) {}
  OpCounts delta() const { return op_counts() - start_; }

 private:
  OpCounts start_;
};

}  // namespace dmw::num
