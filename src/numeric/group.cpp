#include "numeric/group.hpp"

#include <sstream>

namespace dmw::num {

Group64::Group64(u64 p, u64 q, u64 z1, u64 z2)
    : p_(p), q_(q), z1_(z1), z2_(z2), pmont_(p) {
  DMW_REQUIRE_MSG(p_ >= 5 && p_ < (u64{1} << 63), "p must fit in 63 bits");
  DMW_REQUIRE_MSG(is_prime_u64(p_), "p must be prime");
  DMW_REQUIRE_MSG(is_prime_u64(q_), "q must be prime");
  DMW_REQUIRE_MSG((p_ - 1) % q_ == 0, "q must divide p-1");
  DMW_REQUIRE(z1_ != z2_);
  DMW_REQUIRE_MSG(in_subgroup(z1_) && z1_ != 1, "bad generator z1");
  DMW_REQUIRE_MSG(in_subgroup(z2_) && z2_ != 1, "bad generator z2");
  // Fixed-base tables live in the Montgomery domain (see GroupBig): a
  // commitment is a chain of REDC multiplications, converting out once.
  const unsigned qbits = exp_bit_length(q_);
  z1_tab_ = FixedBaseTable<Mont64>(pmont_, pmont_.to_mont(z1_), qbits);
  z2_tab_ = FixedBaseTable<Mont64>(pmont_, pmont_.to_mont(z2_), qbits);
}

Group64 Group64::generate(unsigned p_bits, unsigned q_bits,
                          dmw::Xoshiro256ss& rng) {
  DMW_REQUIRE(q_bits >= 2 && q_bits < p_bits && p_bits <= 63);
  const unsigned k_bits = p_bits - q_bits;
  for (;;) {
    // A fresh q per batch: when the cofactor space {2^(k_bits-1)..2^k_bits}
    // is small, a given q may admit no prime p = k*q + 1 at all, so retrying
    // k alone could loop forever.
    const u64 q = random_prime_u64(q_bits, rng);
    u64 p = 0;
    for (int attempt = 0; attempt < 512 && p == 0; ++attempt) {
      u64 k = rng.next();
      if (k_bits < 64) k &= (u64{1} << k_bits) - 1;
      k |= u64{1} << (k_bits - 1);
      const u128 p_wide = static_cast<u128>(k) * q + 1;
      if (p_wide >= (u128{1} << 63)) continue;
      const u64 candidate = static_cast<u64>(p_wide);
      if (64 - static_cast<unsigned>(__builtin_clzll(candidate)) != p_bits)
        continue;
      if (is_prime_u64(candidate)) p = candidate;
    }
    if (p == 0) continue;
    const u64 exponent = (p - 1) / q;
    auto gen = [&]() -> u64 {
      for (;;) {
        const u64 h = 2 + rng.below(p - 3);
        const u64 z = mod_pow(h, exponent, p);
        if (z != 1) return z;
      }
    };
    const u64 z1 = gen();
    for (;;) {
      const u64 z2 = gen();
      if (z2 != z1) return Group64(p, q, z1, z2);
    }
  }
}

const Group64& Group64::test_group() {
  // Deterministically generated once (seed 42, 61-bit p / 40-bit q) and
  // frozen here so every test and bench agrees on the fixture.
  static const Group64 group = [] {
    dmw::Xoshiro256ss rng(42);
    return generate(/*p_bits=*/61, /*q_bits=*/40, rng);
  }();
  return group;
}

unsigned Group64::p_bits() const {
  return 64 - static_cast<unsigned>(__builtin_clzll(p_));
}

std::string Group64::describe() const {
  std::ostringstream os;
  os << "Group64: p=" << p_ << " (" << p_bits() << " bits), q=" << q_
     << ", z1=" << z1_ << ", z2=" << z2_;
  return os.str();
}

}  // namespace dmw::num
