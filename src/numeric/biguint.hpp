// Fixed-width big unsigned integers.
//
// BigUInt<W> is a little-endian array of W 64-bit limbs with value semantics
// and wrapping arithmetic modulo 2^(64*W) (like the built-in unsigned types).
// Widening multiplication and full division (Knuth's Algorithm D) are
// provided for the modular arithmetic layer. The protocol's cryptographic
// backend (Group256) runs on BigUInt<4>.
#pragma once

#include <algorithm>
#include <array>
#include <compare>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "support/check.hpp"

namespace dmw::num {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

template <std::size_t W>
class BigUInt {
  static_assert(W >= 1);

 public:
  static constexpr std::size_t kLimbs = W;
  static constexpr std::size_t kBits = 64 * W;

  constexpr BigUInt() = default;
  constexpr explicit BigUInt(u64 value) { limbs_[0] = value; }

  static constexpr BigUInt zero() { return BigUInt(); }
  static constexpr BigUInt one() { return BigUInt(1); }

  /// Largest representable value (all bits set).
  static constexpr BigUInt max_value() {
    BigUInt r;
    for (auto& l : r.limbs_) l = ~u64{0};
    return r;
  }

  constexpr u64 limb(std::size_t i) const { return limbs_[i]; }
  constexpr void set_limb(std::size_t i, u64 v) { limbs_[i] = v; }

  constexpr bool is_zero() const {
    for (u64 l : limbs_)
      if (l != 0) return false;
    return true;
  }

  constexpr bool is_odd() const { return (limbs_[0] & 1) != 0; }

  /// True iff the value fits in a single limb.
  constexpr bool fits_u64() const {
    for (std::size_t i = 1; i < W; ++i)
      if (limbs_[i] != 0) return false;
    return true;
  }

  constexpr u64 to_u64() const {
    DMW_REQUIRE_MSG(fits_u64(), "BigUInt value does not fit in u64");
    return limbs_[0];
  }

  friend constexpr bool operator==(const BigUInt& a, const BigUInt& b) {
    return a.limbs_ == b.limbs_;
  }

  friend constexpr std::strong_ordering operator<=>(const BigUInt& a,
                                                    const BigUInt& b) {
    for (std::size_t i = W; i-- > 0;) {
      if (a.limbs_[i] != b.limbs_[i])
        return a.limbs_[i] <=> b.limbs_[i];
    }
    return std::strong_ordering::equal;
  }

  /// Number of significant bits (0 for zero).
  constexpr unsigned bit_length() const {
    for (std::size_t i = W; i-- > 0;) {
      if (limbs_[i] != 0) {
        return static_cast<unsigned>(64 * i) + 64 -
               static_cast<unsigned>(__builtin_clzll(limbs_[i]));
      }
    }
    return 0;
  }

  constexpr bool bit(unsigned i) const {
    DMW_REQUIRE(i < kBits);
    return ((limbs_[i / 64] >> (i % 64)) & 1) != 0;
  }

  constexpr void set_bit(unsigned i, bool v = true) {
    DMW_REQUIRE(i < kBits);
    const u64 mask = u64{1} << (i % 64);
    if (v)
      limbs_[i / 64] |= mask;
    else
      limbs_[i / 64] &= ~mask;
  }

  // ---- addition / subtraction -------------------------------------------

  /// a += b; returns the carry out (0 or 1).
  constexpr u64 add_with_carry(const BigUInt& b) {
    u64 carry = 0;
    for (std::size_t i = 0; i < W; ++i) {
      const u128 sum = static_cast<u128>(limbs_[i]) + b.limbs_[i] + carry;
      limbs_[i] = static_cast<u64>(sum);
      carry = static_cast<u64>(sum >> 64);
    }
    return carry;
  }

  /// a -= b; returns the borrow out (0 or 1).
  constexpr u64 sub_with_borrow(const BigUInt& b) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < W; ++i) {
      const u128 diff =
          static_cast<u128>(limbs_[i]) - b.limbs_[i] - borrow;
      limbs_[i] = static_cast<u64>(diff);
      borrow = static_cast<u64>((diff >> 64) & 1);
    }
    return borrow;
  }

  friend constexpr BigUInt operator+(BigUInt a, const BigUInt& b) {
    a.add_with_carry(b);
    return a;
  }
  friend constexpr BigUInt operator-(BigUInt a, const BigUInt& b) {
    a.sub_with_borrow(b);
    return a;
  }
  BigUInt& operator+=(const BigUInt& b) {
    add_with_carry(b);
    return *this;
  }
  BigUInt& operator-=(const BigUInt& b) {
    sub_with_borrow(b);
    return *this;
  }

  // ---- shifts ------------------------------------------------------------

  friend constexpr BigUInt operator<<(const BigUInt& a, unsigned s) {
    DMW_REQUIRE(s < kBits);
    if (s == 0) return a;
    BigUInt r;
    const std::size_t limb_shift = s / 64;
    const unsigned bit_shift = s % 64;
    for (std::size_t i = W; i-- > limb_shift;) {
      u64 v = a.limbs_[i - limb_shift] << bit_shift;
      if (bit_shift != 0 && i > limb_shift)
        v |= a.limbs_[i - limb_shift - 1] >> (64 - bit_shift);
      r.limbs_[i] = v;
    }
    return r;
  }

  friend constexpr BigUInt operator>>(const BigUInt& a, unsigned s) {
    DMW_REQUIRE(s < kBits);
    if (s == 0) return a;
    BigUInt r;
    const std::size_t limb_shift = s / 64;
    const unsigned bit_shift = s % 64;
    for (std::size_t i = 0; i + limb_shift < W; ++i) {
      u64 v = a.limbs_[i + limb_shift] >> bit_shift;
      if (bit_shift != 0 && i + limb_shift + 1 < W)
        v |= a.limbs_[i + limb_shift + 1] << (64 - bit_shift);
      r.limbs_[i] = v;
    }
    return r;
  }

  // ---- multiplication ----------------------------------------------------

  /// Full-width product (no truncation).
  friend constexpr BigUInt<2 * W> mul_wide(const BigUInt& a, const BigUInt& b) {
    BigUInt<2 * W> r;
    for (std::size_t i = 0; i < W; ++i) {
      u64 carry = 0;
      for (std::size_t j = 0; j < W; ++j) {
        const u128 cur = static_cast<u128>(a.limbs_[i]) * b.limbs_[j] +
                         r.limb(i + j) + carry;
        r.set_limb(i + j, static_cast<u64>(cur));
        carry = static_cast<u64>(cur >> 64);
      }
      r.set_limb(i + W, r.limb(i + W) + carry);
    }
    return r;
  }

  /// Truncating product modulo 2^kBits.
  friend constexpr BigUInt operator*(const BigUInt& a, const BigUInt& b) {
    BigUInt r;
    for (std::size_t i = 0; i < W; ++i) {
      u64 carry = 0;
      for (std::size_t j = 0; i + j < W; ++j) {
        const u128 cur = static_cast<u128>(a.limbs_[i]) * b.limbs_[j] +
                         r.limbs_[i + j] + carry;
        r.limbs_[i + j] = static_cast<u64>(cur);
        carry = static_cast<u64>(cur >> 64);
      }
    }
    return r;
  }

  // ---- conversions -------------------------------------------------------

  /// Zero-extend (or truncate) to a different width.
  template <std::size_t W2>
  constexpr BigUInt<W2> resized() const {
    BigUInt<W2> r;
    for (std::size_t i = 0; i < (W < W2 ? W : W2); ++i)
      r.set_limb(i, limbs_[i]);
    return r;
  }

  static BigUInt from_hex(std::string_view hex) {
    BigUInt r;
    DMW_REQUIRE_MSG(!hex.empty(), "empty hex literal");
    DMW_REQUIRE_MSG(hex.size() <= W * 16, "hex literal wider than BigUInt");
    unsigned bit = 0;
    for (std::size_t i = hex.size(); i-- > 0;) {
      const char c = hex[i];
      int v = -1;
      if (c >= '0' && c <= '9') v = c - '0';
      else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
      DMW_REQUIRE_MSG(v >= 0, "invalid hex digit");
      r.limbs_[bit / 64] |= static_cast<u64>(v) << (bit % 64);
      bit += 4;
    }
    return r;
  }

  std::string to_hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    bool leading = true;
    for (std::size_t i = W; i-- > 0;) {
      for (int nib = 15; nib >= 0; --nib) {
        const unsigned v =
            static_cast<unsigned>((limbs_[i] >> (4 * nib)) & 0xf);
        if (leading && v == 0) continue;
        leading = false;
        out.push_back(kDigits[v]);
      }
    }
    if (out.empty()) out = "0";
    return out;
  }

  std::string to_dec() const;

  friend std::ostream& operator<<(std::ostream& os, const BigUInt& v) {
    return os << "0x" << v.to_hex();
  }

 private:
  std::array<u64, W> limbs_{};
};

// ---- division (Knuth Algorithm D) ----------------------------------------

struct DivLimbsResult {
  bool ok = false;  ///< false iff divisor was zero.
};

/// Divide the little-endian limb array `u` (length un) by `v` (length vn),
/// writing the quotient to `q` (length un - vn + 1 when un >= vn) and the
/// remainder to `r` (length vn). Scratch-free textbook Algorithm D.
/// Preconditions: vn >= 1, v[vn-1] != 0 after trimming, un >= vn.
void divmod_limbs(const u64* u, std::size_t un, const u64* v, std::size_t vn,
                  u64* q, u64* r);

template <std::size_t WU, std::size_t WV>
struct DivModResult {
  BigUInt<WU> quotient;
  BigUInt<WV> remainder;
};

/// Full division: returns quotient and remainder with remainder < divisor.
template <std::size_t WU, std::size_t WV>
DivModResult<WU, WV> divmod(const BigUInt<WU>& dividend,
                            const BigUInt<WV>& divisor) {
  DMW_REQUIRE_MSG(!divisor.is_zero(), "division by zero");
  DivModResult<WU, WV> out;
  // Trim significant limb counts.
  std::size_t un = WU;
  while (un > 0 && dividend.limb(un - 1) == 0) --un;
  std::size_t vn = WV;
  while (vn > 0 && divisor.limb(vn - 1) == 0) --vn;
  if (un < vn || un == 0) {
    out.remainder = dividend.template resized<WV>();
    return out;  // quotient zero
  }
  std::array<u64, WU> u{};
  std::array<u64, WV> v{};
  for (std::size_t i = 0; i < un; ++i) u[i] = dividend.limb(i);
  for (std::size_t i = 0; i < vn; ++i) v[i] = divisor.limb(i);
  std::array<u64, WU> q{};
  std::array<u64, WV> r{};
  divmod_limbs(u.data(), un, v.data(), vn, q.data(), r.data());
  for (std::size_t i = 0; i < WU; ++i) out.quotient.set_limb(i, q[i]);
  for (std::size_t i = 0; i < WV; ++i) out.remainder.set_limb(i, r[i]);
  return out;
}

template <std::size_t WU, std::size_t WV>
BigUInt<WV> mod(const BigUInt<WU>& dividend, const BigUInt<WV>& divisor) {
  return divmod(dividend, divisor).remainder;
}

template <std::size_t W>
std::string BigUInt<W>::to_dec() const {
  if (is_zero()) return "0";
  std::string out;
  BigUInt<W> cur = *this;
  const BigUInt<W> ten(10);
  while (!cur.is_zero()) {
    auto dm = divmod(cur, ten);
    out.push_back(static_cast<char>('0' + dm.remainder.to_u64()));
    cur = dm.quotient;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

using U128 = BigUInt<2>;
using U256 = BigUInt<4>;
using U512 = BigUInt<8>;

}  // namespace dmw::num
