// Modular arithmetic.
//
// Two tiers:
//   - 64-bit: operations modulo primes up to 63 bits using 128-bit
//     intermediates; this is the default simulation backend (Group64).
//   - BigUInt<W>: generic-width operations used by the cryptographic-scale
//     backend (Group256) and by prime/group generation.
// All functions are pure; instrumented variants bump the op_counts()
// counters used for complexity validation.
#pragma once

#include <cstdint>

#include "numeric/biguint.hpp"
#include "numeric/expwin.hpp"
#include "numeric/opcount.hpp"
#include "support/check.hpp"

namespace dmw::num {

// ---------------------------------------------------------------------------
// 64-bit tier
// ---------------------------------------------------------------------------

inline u64 mod_add(u64 a, u64 b, u64 m) {
  DMW_REQUIRE(a < m && b < m);
  ++op_counts().add;
  const u64 s = a + b;  // cannot overflow for m < 2^63
  return s >= m ? s - m : s;
}

inline u64 mod_sub(u64 a, u64 b, u64 m) {
  DMW_REQUIRE(a < m && b < m);
  ++op_counts().add;
  return a >= b ? a - b : a + (m - b);
}

inline u64 mod_neg(u64 a, u64 m) {
  DMW_REQUIRE(a < m);
  return a == 0 ? 0 : m - a;
}

inline u64 mod_mul(u64 a, u64 b, u64 m) {
  DMW_REQUIRE(a < m && b < m);
  ++op_counts().mul;
  return static_cast<u64>(static_cast<u128>(a) * b % m);
}

/// Plain modular arithmetic as an exponentiation-engine domain
/// (see expwin.hpp): the Group64 / small-prime tier.
struct Mod64Ops {
  using Dom = u64;
  u64 m;
  Dom one() const { return 1 % m; }
  Dom mul(Dom a, Dom b) const { return mod_mul(a, b, m); }
};

/// Window-profitability threshold for the 64-bit tier: exponents shorter
/// than this take a tight LSB-first square-and-multiply loop instead of
/// pow_window. Measured on the 61-bit test prime: the sliding window's
/// table build and digit scan cost about what the <= bits/2 -> bits/(w+1)
/// multiplication saving buys back at every exponent length that fits in
/// 64 bits, while the LSB loop's off-critical-path products overlap the
/// squaring chain — the windowed engine only clearly pays off once
/// multiplications are multi-limb (BigUInt tier).
inline constexpr unsigned kPow64WindowMinBits = 64;

/// a^e mod m. Odd m below 2^63 (every Group64 modulus) runs in Montgomery
/// form (Mont64, mont.hpp) — three 64x64 multiplies per product instead of
/// a 128/64 division; below kPow64WindowMinBits a tight LSB-first
/// square-and-multiply, at or beyond it sliding-window exponentiation
/// (expwin.hpp). Even / out-of-range moduli fall back to the divmod tier.
u64 mod_pow(u64 a, u64 e, u64 m);

/// Textbook square-and-multiply reference; kept as the differential-testing
/// oracle and the ablation baseline. Same op-count contract as mod_pow.
u64 mod_pow_naive(u64 a, u64 e, u64 m);

/// Modular inverse via the extended Euclidean algorithm.
/// Requires gcd(a, m) == 1.
u64 mod_inv(u64 a, u64 m);

/// Greatest common divisor.
u64 gcd_u64(u64 a, u64 b);

// ---------------------------------------------------------------------------
// BigUInt tier
// ---------------------------------------------------------------------------

template <std::size_t W>
BigUInt<W> mod_add(const BigUInt<W>& a, const BigUInt<W>& b,
                   const BigUInt<W>& m) {
  DMW_REQUIRE(a < m && b < m);
  ++op_counts().add;
  BigUInt<W> s = a;
  const u64 carry = s.add_with_carry(b);
  if (carry != 0 || s >= m) s.sub_with_borrow(m);
  return s;
}

template <std::size_t W>
BigUInt<W> mod_sub(const BigUInt<W>& a, const BigUInt<W>& b,
                   const BigUInt<W>& m) {
  DMW_REQUIRE(a < m && b < m);
  ++op_counts().add;
  BigUInt<W> s = a;
  if (s.sub_with_borrow(b) != 0) s.add_with_carry(m);
  return s;
}

template <std::size_t W>
BigUInt<W> mod_neg(const BigUInt<W>& a, const BigUInt<W>& m) {
  if (a.is_zero()) return a;
  return m - a;
}

template <std::size_t W>
BigUInt<W> mod_mul(const BigUInt<W>& a, const BigUInt<W>& b,
                   const BigUInt<W>& m) {
  DMW_REQUIRE(a < m && b < m);
  ++op_counts().mul;
  const BigUInt<2 * W> prod = mul_wide(a, b);
  return mod(prod, m);
}

/// Divmod-reduced modular arithmetic as an exponentiation-engine domain
/// (generic tier, any modulus; the Montgomery context is faster for odd m).
template <std::size_t W>
struct ModBigOps {
  using Dom = BigUInt<W>;
  const BigUInt<W>* m;
  Dom one() const { return mod(BigUInt<W>::one(), *m); }
  Dom mul(const Dom& a, const Dom& b) const { return mod_mul(a, b, *m); }
};

/// a^e mod m via sliding-window exponentiation (expwin.hpp).
template <std::size_t W>
BigUInt<W> mod_pow(BigUInt<W> a, const BigUInt<W>& e, const BigUInt<W>& m) {
  DMW_REQUIRE(!m.is_zero());
  ++op_counts().pow;
  return pow_window(ModBigOps<W>{&m}, mod(a, m), e);
}

/// Square-and-multiply reference (differential-testing oracle / ablation).
template <std::size_t W>
BigUInt<W> mod_pow_naive(BigUInt<W> a, const BigUInt<W>& e,
                         const BigUInt<W>& m) {
  DMW_REQUIRE(!m.is_zero());
  ++op_counts().pow;
  const ModBigOps<W> ops{&m};
  BigUInt<W> result = ops.one();
  a = mod(a, m);
  const unsigned bits = e.bit_length();
  for (unsigned i = 0; i < bits; ++i) {
    if (e.bit(i)) result = ops.mul(result, a);
    a = ops.mul(a, a);
  }
  return result;
}

/// Extended Euclid over BigUInt; requires gcd(a, m) == 1 and m > 1.
template <std::size_t W>
BigUInt<W> mod_inv(const BigUInt<W>& a, const BigUInt<W>& m) {
  DMW_REQUIRE(!a.is_zero());
  ++op_counts().inv;
  // Iterative extended Euclid with signed bookkeeping done via parity:
  // track x such that a*x ≡ r (mod m) where the xs may go "negative";
  // represent negative values as m - |x|.
  BigUInt<W> r0 = m, r1 = mod(a, m);
  BigUInt<W> x0 = BigUInt<W>::zero(), x1 = BigUInt<W>::one();
  while (!r1.is_zero()) {
    const auto dm = divmod(r0, r1);
    const BigUInt<W> qx1 = mod(mul_wide(mod(dm.quotient, m), x1), m);
    BigUInt<W> x2 = x0;
    if (x2.sub_with_borrow(qx1) != 0) x2.add_with_carry(m);
    r0 = r1;
    r1 = dm.remainder;
    x0 = x1;
    x1 = x2;
  }
  DMW_CHECK_MSG(r0 == BigUInt<W>::one(), "mod_inv: operand not invertible");
  return x0;
}

}  // namespace dmw::num
