#include "numeric/biguint.hpp"

#include <vector>

namespace dmw::num {

namespace {

// Single-limb divisor fast path: classic schoolbook division.
void divmod_by_limb(const u64* u, std::size_t un, u64 v, u64* q, u64* r) {
  u128 rem = 0;
  for (std::size_t i = un; i-- > 0;) {
    const u128 cur = (rem << 64) | u[i];
    q[i] = static_cast<u64>(cur / v);
    rem = cur % v;
  }
  r[0] = static_cast<u64>(rem);
}

}  // namespace

void divmod_limbs(const u64* u, std::size_t un, const u64* v, std::size_t vn,
                  u64* q, u64* r) {
  DMW_REQUIRE(vn >= 1);
  DMW_REQUIRE(v[vn - 1] != 0);
  DMW_REQUIRE(un >= vn);

  if (vn == 1) {
    divmod_by_limb(u, un, v[0], q, r);
    return;
  }

  // Knuth TAOCP vol. 2, 4.3.1, Algorithm D, with 64-bit limbs.
  // D1: normalize so the divisor's top bit is set.
  const unsigned shift = static_cast<unsigned>(__builtin_clzll(v[vn - 1]));
  std::vector<u64> vn_norm(vn);
  for (std::size_t i = vn; i-- > 1;) {
    vn_norm[i] = shift == 0 ? v[i]
                            : (v[i] << shift) | (v[i - 1] >> (64 - shift));
  }
  vn_norm[0] = v[0] << shift;

  std::vector<u64> un_norm(un + 1);
  un_norm[un] = shift == 0 ? 0 : (u[un - 1] >> (64 - shift));
  for (std::size_t i = un; i-- > 1;) {
    un_norm[i] = shift == 0 ? u[i]
                            : (u[i] << shift) | (u[i - 1] >> (64 - shift));
  }
  un_norm[0] = u[0] << shift;

  const u64 vtop = vn_norm[vn - 1];
  const u64 vsecond = vn_norm[vn - 2];

  // D2..D7: main loop over quotient digits.
  for (std::size_t j = un - vn + 1; j-- > 0;) {
    // D3: estimate qhat from the top two dividend limbs.
    const u128 numer =
        (static_cast<u128>(un_norm[j + vn]) << 64) | un_norm[j + vn - 1];
    u128 qhat = numer / vtop;
    u128 rhat = numer % vtop;
    const u128 kBase = static_cast<u128>(1) << 64;
    while (qhat >= kBase ||
           qhat * vsecond > ((rhat << 64) | un_norm[j + vn - 2])) {
      --qhat;
      rhat += vtop;
      if (rhat >= kBase) break;
    }

    // D4: multiply and subtract u[j..j+vn] -= qhat * v.
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < vn; ++i) {
      const u128 product = qhat * vn_norm[i] + carry;
      carry = product >> 64;
      const u128 sub = static_cast<u128>(un_norm[j + i]) -
                       static_cast<u64>(product) - borrow;
      un_norm[j + i] = static_cast<u64>(sub);
      borrow = (sub >> 64) & 1;
    }
    const u128 subtop = static_cast<u128>(un_norm[j + vn]) - carry - borrow;
    un_norm[j + vn] = static_cast<u64>(subtop);

    u64 qdigit = static_cast<u64>(qhat);
    // D5/D6: qhat was at most one too large; add back if we went negative.
    if ((subtop >> 64) & 1) {
      --qdigit;
      u64 add_carry = 0;
      for (std::size_t i = 0; i < vn; ++i) {
        const u128 sum =
            static_cast<u128>(un_norm[j + i]) + vn_norm[i] + add_carry;
        un_norm[j + i] = static_cast<u64>(sum);
        add_carry = static_cast<u64>(sum >> 64);
      }
      un_norm[j + vn] += add_carry;
    }
    q[j] = qdigit;
  }

  // D8: denormalize the remainder.
  for (std::size_t i = 0; i < vn; ++i) {
    r[i] = shift == 0
               ? un_norm[i]
               : (un_norm[i] >> shift) | (un_norm[i + 1] << (64 - shift));
  }
}

}  // namespace dmw::num
