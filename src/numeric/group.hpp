// Schnorr groups: the prime-order subgroup of Z_p^* used by DMW.
//
// DMW's public parameters (paper §3, "Notation") are primes p, q with
// q | p - 1 and two distinct generators z1, z2 of the order-q subgroup.
// Polynomial shares and all Lagrange arithmetic live in the *exponent* field
// Z_q; commitments and the published Λ/Ψ values live in the subgroup of
// Z_p^*.
//
// Two interchangeable backends implement the same GroupTraits shape:
//   - Group64:   p up to 63 bits, u64/__int128 arithmetic (simulation default)
//   - GroupBig:  BigUInt<W> with Montgomery arithmetic (cryptographic scale)
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "numeric/biguint.hpp"
#include "numeric/expwin.hpp"
#include "numeric/fixedbase.hpp"
#include "numeric/modarith.hpp"
#include "numeric/mont.hpp"
#include "numeric/montlane.hpp"
#include "numeric/primality.hpp"
#include "numeric/simd.hpp"
#include "support/rng.hpp"

namespace dmw::num {

/// Requirements on a group backend used by the DMW protocol.
///
/// Besides the group/scalar operations, every backend exposes its
/// *multiplicative domain* (`Dom`, `to_dom`/`from_dom`, `dom_one`,
/// `dom_mul`): the element representation in which repeated multiplication
/// is cheapest. Group64's domain is the plain residue; GroupBig's is the
/// Montgomery form, so callers that convert once and chain multiplications
/// (window tables, multi-exponentiation, commitment-vector caches) never pay
/// a per-multiplication reduction. `pow`/`commit` are windowed and
/// fixed-base accelerated; `pow_naive`/`commit_naive` are the textbook
/// references kept for differential testing and the ablation benches.
template <class G>
concept GroupBackend = requires(const G g, typename G::Elem e,
                                typename G::Scalar s, typename G::Dom d,
                                dmw::Xoshiro256ss rng,
                                u64 v, const std::vector<std::uint8_t> bytes,
                                std::size_t pos) {
  typename G::Elem;
  typename G::Scalar;
  typename G::Dom;
  { g.identity() } -> std::same_as<typename G::Elem>;
  { g.is_identity(e) } -> std::same_as<bool>;
  { g.mul(e, e) } -> std::same_as<typename G::Elem>;
  { g.inv(e) } -> std::same_as<typename G::Elem>;
  { g.pow(e, s) } -> std::same_as<typename G::Elem>;
  // dmwlint:allow(naive-call) concept requirement, never executed
  { g.pow_naive(e, s) } -> std::same_as<typename G::Elem>;
  { g.z1() } -> std::same_as<typename G::Elem>;
  { g.z2() } -> std::same_as<typename G::Elem>;
  { g.commit(s, s) } -> std::same_as<typename G::Elem>;
  // dmwlint:allow(naive-call) concept requirement, never executed
  { g.commit_naive(s, s) } -> std::same_as<typename G::Elem>;
  { g.to_dom(e) } -> std::same_as<typename G::Dom>;
  { g.from_dom(d) } -> std::same_as<typename G::Elem>;
  { g.dom_one() } -> std::same_as<typename G::Dom>;
  { g.dom_mul(d, d) } -> std::same_as<typename G::Dom>;
  { g.scalar_bits() } -> std::same_as<unsigned>;
  { g.szero() } -> std::same_as<typename G::Scalar>;
  { g.sone() } -> std::same_as<typename G::Scalar>;
  { g.sadd(s, s) } -> std::same_as<typename G::Scalar>;
  { g.ssub(s, s) } -> std::same_as<typename G::Scalar>;
  { g.smul(s, s) } -> std::same_as<typename G::Scalar>;
  { g.sneg(s) } -> std::same_as<typename G::Scalar>;
  { g.sinv(s) } -> std::same_as<typename G::Scalar>;
  { g.scalar_from_u64(v) } -> std::same_as<typename G::Scalar>;
  { g.random_scalar(rng) } -> std::same_as<typename G::Scalar>;
  { g.valid_elem(e) } -> std::same_as<bool>;
  { g.valid_scalar(s) } -> std::same_as<bool>;
  { g.scalar_bytes() } -> std::same_as<std::size_t>;
  { g.elem_bytes() } -> std::same_as<std::size_t>;
};

/// 64-bit backend. p is at most 63 bits so modular addition cannot overflow.
class Group64 {
 public:
  using Elem = u64;
  using Scalar = u64;
  using Dom = u64;  ///< multiplicative domain: Montgomery form (Mont64)

  /// Constructs from published parameters; validates the group structure and
  /// precomputes the fixed-base window tables for z1 and z2.
  Group64(u64 p, u64 q, u64 z1, u64 z2);

  /// Generate fresh parameters: a `p_bits`-bit prime p = r*q + 1 with a
  /// `q_bits`-bit prime q, and two distinct order-q generators.
  static Group64 generate(unsigned p_bits, unsigned q_bits,
                          dmw::Xoshiro256ss& rng);

  /// A fixed, precomputed 61-bit group used as the default test fixture.
  static const Group64& test_group();

  u64 p() const { return p_; }
  u64 q() const { return q_; }
  Elem z1() const { return z1_; }
  Elem z2() const { return z2_; }
  unsigned p_bits() const;

  // Group operations (mod p).
  Elem identity() const { return 1; }
  bool is_identity(Elem e) const { return e == 1; }
  Elem mul(Elem a, Elem b) const { return mod_mul(a, b, p_); }
  Elem inv(Elem a) const { return mod_inv(a, p_); }
  Elem pow(Elem base, Scalar e) const {
    return pow_mont64(pmont_, base % p_, e);
  }
  Elem pow_naive(Elem base, Scalar e) const {
    // dmwlint:allow(naive-call) the oracle's own body
    return mod_pow_naive(base, e, p_);
  }
  /// Pedersen commitment z1^a * z2^b via the precomputed fixed-base tables:
  /// no squarings, at most ceil(qbits/w) multiplications per base.
  Elem commit(Scalar a, Scalar b) const {
    op_counts().pow += 2;
    return pmont_.from_mont(z2_tab_.mul_pow(pmont_, z1_tab_.pow(pmont_, a), b));
  }
  /// Square-and-multiply commitment (ablation baseline / test oracle).
  Elem commit_naive(Scalar a, Scalar b) const {
    // dmwlint:allow(naive-call) the oracle's own body
    return mul(pow_naive(z1_, a), pow_naive(z2_, b));
  }
  /// Batched Pedersen commitments out[i] = z1^{a[i]} z2^{b[i]}: when the
  /// simd policy engages, the lane engine scans both fixed-base tables
  /// kLanes commitments at a time. Values and OpCounts identical to
  /// calling commit() in a loop.
  void commit_many(const Scalar* a, const Scalar* b, Elem* out,
                   std::size_t n) const {
    constexpr std::size_t L = MontLane<Mont64>::kLanes;
    if (!simd_grouped() || n < L) {
      for (std::size_t i = 0; i < n; ++i) out[i] = commit(a[i], b[i]);
      return;
    }
    const MontLane<Mont64> lanes(pmont_, true);
    for (std::size_t off = 0; off < n; off += L) {
      const std::size_t cnt = n - off < L ? n - off : L;
      op_counts().pow += 2 * cnt;
      Dom acc[L];
      for (std::size_t l = 0; l < L; ++l) acc[l] = pmont_.one();
      z1_tab_.mul_pow_lanes(lanes, a + off, acc, cnt);
      z2_tab_.mul_pow_lanes(lanes, b + off, acc, cnt);
      lanes.from_mont_lanes(acc, out + off, cnt);
    }
  }

  // Multiplicative domain: Montgomery form, one REDC mul per conversion —
  // chained multiplications (window tables, multi-exp squaring chains) cost
  // three 64x64 multiplies each instead of a 128/64 division.
  Dom to_dom(Elem e) const { return pmont_.to_mont(e); }
  Elem from_dom(Dom d) const { return pmont_.from_mont(d); }
  Dom dom_one() const { return pmont_.one(); }
  Dom dom_mul(Dom a, Dom b) const { return pmont_.mul(a, b); }
  /// Bit width of the scalar field: exponents are < q.
  unsigned scalar_bits() const { return exp_bit_length(q_); }

  // Scalar field operations (mod q).
  Scalar szero() const { return 0; }
  Scalar sone() const { return 1; }
  Scalar sadd(Scalar a, Scalar b) const { return mod_add(a, b, q_); }
  Scalar ssub(Scalar a, Scalar b) const { return mod_sub(a, b, q_); }
  Scalar smul(Scalar a, Scalar b) const { return mod_mul(a, b, q_); }
  Scalar sneg(Scalar a) const { return mod_neg(a, q_); }
  Scalar sinv(Scalar a) const { return mod_inv(a, q_); }
  Scalar scalar_from_u64(u64 v) const { return v % q_; }
  template <class Rng>
  Scalar random_scalar(Rng& rng) const {
    return rng.below(q_);
  }
  template <class Rng>
  Scalar random_nonzero_scalar(Rng& rng) const {
    return 1 + rng.below(q_ - 1);
  }

  /// True iff e is in the order-q subgroup (e^q == 1).
  bool in_subgroup(Elem e) const { return e != 0 && pow(e, q_) == 1; }

  /// Wire-format validation: an element must be a unit of Z_p (full subgroup
  /// membership costs an exponentiation; the protocol's algebraic checks
  /// catch non-members), a scalar must be < q.
  bool valid_elem(Elem e) const { return e >= 1 && e < p_; }
  bool valid_scalar(Scalar s) const { return s < q_; }

  // Wire encoding sizes (net layer).
  std::size_t scalar_bytes() const { return 8; }
  std::size_t elem_bytes() const { return 8; }

  /// The Montgomery context mod p (montlane.hpp engines build on it).
  const Mont64& mont() const { return pmont_; }

  /// Lane-grouping policy (simd.hpp). Set before the group is shared
  /// across threads — the backends treat it like every other immutable
  /// parameter after publication.
  void set_simd_mode(simd::SimdMode m) { simd_mode_ = m; }
  simd::SimdMode simd_mode() const { return simd_mode_; }
  /// True when batch producers should group independent work into lanes
  /// (the mode resolved against the runtime-detected kernel backend).
  bool simd_grouped() const { return simd::mode_groups_lanes(simd_mode_); }

  std::string describe() const;

 private:
  u64 p_, q_, z1_, z2_;
  Mont64 pmont_;  ///< Montgomery context mod p: pow, commit, the domain ops
  FixedBaseTable<Mont64> z1_tab_, z2_tab_;  ///< commit() acceleration
  simd::SimdMode simd_mode_ = simd::SimdMode::kAuto;
};

/// BigUInt backend with Montgomery arithmetic modulo p.
template <std::size_t W>
class GroupBig {
 public:
  using Elem = BigUInt<W>;
  using Scalar = BigUInt<W>;
  using Dom = BigUInt<W>;  ///< multiplicative domain: Montgomery form

  GroupBig(const Elem& p, const Scalar& q, const Elem& z1, const Elem& z2)
      : p_(p), q_(q), z1_(z1), z2_(z2), mont_(p) {
    DMW_REQUIRE_MSG(mod(p_ - Elem::one(), q_).is_zero(), "q must divide p-1");
    DMW_REQUIRE(z1_ != z2_);
    DMW_REQUIRE_MSG(in_subgroup(z1_) && !is_identity(z1_), "bad generator z1");
    DMW_REQUIRE_MSG(in_subgroup(z2_) && !is_identity(z2_), "bad generator z2");
    // Fixed-base tables live in the Montgomery domain, so a commitment is a
    // chain of REDC multiplications with one conversion out at the end.
    const unsigned qbits = q_.bit_length();
    z1_tab_ = FixedBaseTable<Montgomery<W>>(mont_, mont_.to_mont(z1_), qbits);
    z2_tab_ = FixedBaseTable<Montgomery<W>>(mont_, mont_.to_mont(z2_), qbits);
    // Scalar-field products go through their own Montgomery context when q
    // is odd (always, for the prime q > 2 the protocol requires): two REDC
    // passes instead of a wide-product long division roughly halves smul,
    // which the RLC batch verifier calls once per folded exponent.
    if (q_.is_odd()) qmont_.emplace(q_);
  }

  static GroupBig generate(unsigned p_bits, unsigned q_bits,
                           dmw::Xoshiro256ss& rng) {
    DMW_REQUIRE(q_bits >= 2 && q_bits < p_bits && p_bits <= Elem::kBits - 1);
    for (;;) {
      // A fresh q per batch (see Group64::generate): small cofactor spaces
      // may contain no prime p = k*q + 1 for an unlucky q.
      const Scalar q = random_prime<W>(q_bits, rng);
      BigUInt<W> p;
      bool found = false;
      for (int attempt = 0; attempt < 512 && !found; ++attempt) {
        BigUInt<W> k =
            random_below(BigUInt<W>::one() << (p_bits - q_bits), rng);
        k.set_bit(p_bits - q_bits - 1, true);
        BigUInt<W> candidate = k * q;
        candidate.add_with_carry(BigUInt<W>::one());
        if (candidate.bit_length() != p_bits) continue;
        if (!is_probable_prime(candidate, rng)) continue;
        p = candidate;
        found = true;
      }
      if (!found) continue;
      // Generators: h^((p-1)/q) for random h, rejected if identity.
      const BigUInt<W> exponent = divmod(p - Elem::one(), q).quotient;
      const Montgomery<W> mont(p);
      auto gen = [&]() -> Elem {
        for (;;) {
          Elem h = random_below(p, rng);
          if (h <= Elem::one()) continue;
          Elem z = mont.pow(h, exponent);
          if (z != Elem::one()) return z;
        }
      };
      const Elem z1 = gen();
      for (;;) {
        const Elem z2 = gen();
        if (z2 != z1) return GroupBig(p, q, z1, z2);
      }
    }
  }

  const Elem& p() const { return p_; }
  const Scalar& q() const { return q_; }
  Elem z1() const { return z1_; }
  Elem z2() const { return z2_; }
  unsigned p_bits() const { return p_.bit_length(); }

  Elem identity() const { return Elem::one(); }
  bool is_identity(const Elem& e) const { return e == Elem::one(); }
  Elem mul(const Elem& a, const Elem& b) const { return mod_mul(a, b, p_); }
  Elem inv(const Elem& a) const { return mod_inv(a, p_); }
  Elem pow(const Elem& base, const Scalar& e) const {
    return mont_.pow(base, e);
  }
  Elem pow_naive(const Elem& base, const Scalar& e) const {
    // dmwlint:allow(naive-call) the oracle's own body
    return mont_.pow_naive(base, e);
  }
  /// Pedersen commitment via the Montgomery-domain fixed-base tables.
  Elem commit(const Scalar& a, const Scalar& b) const {
    op_counts().pow += 2;
    return mont_.from_mont(
        z2_tab_.mul_pow(mont_, z1_tab_.pow(mont_, a), b));
  }
  /// Square-and-multiply commitment (ablation baseline / test oracle).
  Elem commit_naive(const Scalar& a, const Scalar& b) const {
    // dmwlint:allow(naive-call) the oracle's own body
    return mul(pow_naive(z1_, a), pow_naive(z2_, b));
  }
  /// Batched Pedersen commitments (see Group64::commit_many): lane scans of
  /// both fixed-base tables over the interleaved-limb engine.
  void commit_many(const Scalar* a, const Scalar* b, Elem* out,
                   std::size_t n) const {
    constexpr std::size_t L = MontLane<Montgomery<W>>::kLanes;
    if (!simd_grouped() || n < L) {
      for (std::size_t i = 0; i < n; ++i) out[i] = commit(a[i], b[i]);
      return;
    }
    const MontLane<Montgomery<W>> lanes(mont_, true);
    for (std::size_t off = 0; off < n; off += L) {
      const std::size_t cnt = n - off < L ? n - off : L;
      op_counts().pow += 2 * cnt;
      std::array<Dom, L> acc;
      acc.fill(mont_.one());
      z1_tab_.mul_pow_lanes(lanes, a + off, acc.data(), cnt);
      z2_tab_.mul_pow_lanes(lanes, b + off, acc.data(), cnt);
      lanes.from_mont_lanes(acc.data(), out + off, cnt);
    }
  }

  // Multiplicative domain: Montgomery form, one REDC mul per conversion.
  Dom to_dom(const Elem& e) const { return mont_.to_mont(e); }
  Elem from_dom(const Dom& d) const { return mont_.from_mont(d); }
  Dom dom_one() const { return mont_.one(); }
  Dom dom_mul(const Dom& a, const Dom& b) const { return mont_.mul(a, b); }
  /// Bit width of the scalar field: exponents are < q.
  unsigned scalar_bits() const { return q_.bit_length(); }

  Scalar szero() const { return Scalar::zero(); }
  Scalar sone() const { return Scalar::one(); }
  Scalar sadd(const Scalar& a, const Scalar& b) const {
    return mod_add(a, b, q_);
  }
  Scalar ssub(const Scalar& a, const Scalar& b) const {
    return mod_sub(a, b, q_);
  }
  Scalar smul(const Scalar& a, const Scalar& b) const {
    if (qmont_) return qmont_->mul_values(a, b);
    return mod_mul(a, b, q_);
  }
  Scalar sneg(const Scalar& a) const { return mod_neg(a, q_); }
  Scalar sinv(const Scalar& a) const { return mod_inv(a, q_); }
  Scalar scalar_from_u64(u64 v) const { return mod(BigUInt<W>(v), q_); }
  template <class Rng>
  Scalar random_scalar(Rng& rng) const {
    return random_below(q_, rng);
  }
  template <class Rng>
  Scalar random_nonzero_scalar(Rng& rng) const {
    for (;;) {
      Scalar s = random_below(q_, rng);
      if (!s.is_zero()) return s;
    }
  }

  bool in_subgroup(const Elem& e) const {
    return !e.is_zero() && pow(e, q_) == Elem::one();
  }

  bool valid_elem(const Elem& e) const {
    return !e.is_zero() && e < p_;
  }
  bool valid_scalar(const Scalar& s) const { return s < q_; }

  std::size_t scalar_bytes() const { return 8 * W; }
  std::size_t elem_bytes() const { return 8 * W; }

  /// The Montgomery context mod p (montlane.hpp engines build on it).
  const Montgomery<W>& mont() const { return mont_; }

  /// Lane-grouping policy (simd.hpp); see Group64::set_simd_mode.
  void set_simd_mode(simd::SimdMode m) { simd_mode_ = m; }
  simd::SimdMode simd_mode() const { return simd_mode_; }
  bool simd_grouped() const { return simd::mode_groups_lanes(simd_mode_); }

  std::string describe() const {
    return "GroupBig<" + std::to_string(W) + ">: p=0x" + p_.to_hex() +
           " q=0x" + q_.to_hex();
  }

 private:
  Elem p_;
  Scalar q_;
  Elem z1_, z2_;
  Montgomery<W> mont_;
  std::optional<Montgomery<W>> qmont_;  ///< scalar field mod q (odd q only)
  FixedBaseTable<Montgomery<W>> z1_tab_, z2_tab_;  ///< commit() acceleration
  simd::SimdMode simd_mode_ = simd::SimdMode::kAuto;
};

using Group256 = GroupBig<4>;

static_assert(GroupBackend<Group64>);
static_assert(GroupBackend<Group256>);

// ---- lane-engine glue ------------------------------------------------------

/// Maps a group backend to the Montgomery context its MontLane engine runs
/// over (the mod-p context, shared by Dom values and commitments).
template <class G>
struct GroupLaneCtx;
template <>
struct GroupLaneCtx<Group64> {
  using Ctx = Mont64;
};
template <std::size_t W>
struct GroupLaneCtx<GroupBig<W>> {
  using Ctx = Montgomery<W>;
};

/// Lane engine over g's modulus honouring its SimdMode: grouped when the
/// policy resolves on (montlane.hpp), the scalar ablation otherwise.
template <GroupBackend G>
MontLane<typename GroupLaneCtx<G>::Ctx> make_lane_engine(const G& g) {
  return {g.mont(), g.simd_grouped()};
}

/// Lane cost model for batch producers: grouping pays only when the policy
/// engages and the batch fills at least one lane group.
template <GroupBackend G>
bool lanes_profitable(const G& g, std::size_t n) {
  return g.simd_grouped() && n >= simd::kLanes;
}

}  // namespace dmw::num
