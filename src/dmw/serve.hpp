// Marketplace server mode: a persistent engine for streams of auctions.
//
// The one-shot drivers (tools/dmw_sim, ProtocolRunner/ParallelProtocol) pay
// the full setup bill per run: spawn a worker pool, rebuild the
// pseudonym-power matrix and the group's fixed-base commitment tables, then
// tear it all down. A marketplace serving heavy traffic runs *many* auctions
// against one agent set, so ServeEngine inverts the ownership: it holds ONE
// PublicParams (pseudonym powers + fixed-base/MultiExp commitment tables
// built once, immutable, read concurrently), ONE warmed ThreadPool (borrowed
// by each ParallelProtocol via its server-mode constructor), and per-worker
// arenas (support/arena.hpp) for per-auction scratch. Per request it derives
// a fresh instance and secret seed, runs the pipelined engine, folds the
// Outcome into a running SHA-256 stream digest, and rewinds the arenas. After
// warmup the arena slab set is at its high-water mark and the per-auction
// steady state performs zero arena heap allocations — the serve report
// exposes that and tests/CI gate it.
//
// Reproducibility contract: request r with seed s is bit-identical to the
// one-shot drivers —
//
//   instance   = workload generator seeded with s*3+1   (dmw_sim's derivation)
//   secret_seed = serve_secret_seed(base, s)            (public helper below)
//
// so `dmw_sim --seed <master> --instance-seed <s*3+1> --secret-seed <x>`
// replays any single auction from a serve stream, and ServeEngine's own
// check_oneshot mode re-runs every request through the sequential
// ProtocolRunner and compares all Outcome fields. The stream digest is a
// function of Outcomes only, so it is bit-identical across thread counts and
// schedule modes (the serve-smoke CI job pins this).
//
// This header is JSON-free on purpose: report assembly (worker counts,
// hardware_concurrency, latency tables) lives in tools/dmw_serve.cpp, keeping
// dmwlint's thread-id-sink rule trivially satisfied for protocol code.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "dmw/parallel.hpp"
#include "dmw/protocol.hpp"
#include "dmw/strategies.hpp"
#include "mech/problem.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dmw::proto {

/// Workload families a request can draw its cost matrix from (the same
/// four generators tools/dmw_sim exposes).
enum class WorkloadKind { kUniform, kMachine, kTask, kWorst };

inline const char* to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kUniform: return "uniform";
    case WorkloadKind::kMachine: return "machine";
    case WorkloadKind::kTask: return "task";
    case WorkloadKind::kWorst: return "worst";
  }
  return "?";
}

/// Parse a workload name; DMW_REQUIREs on unknown names (caller validates
/// user input with the same error text dmw_sim uses).
inline WorkloadKind parse_workload(const std::string& name) {
  if (name == "uniform") return WorkloadKind::kUniform;
  if (name == "machine") return WorkloadKind::kMachine;
  if (name == "task") return WorkloadKind::kTask;
  if (name == "worst") return WorkloadKind::kWorst;
  DMW_REQUIRE_MSG(false, "unknown workload: " + name);
  return WorkloadKind::kUniform;
}

/// One auction request in the stream.
struct AuctionRequest {
  std::uint64_t id = 0;    ///< position in the stream (0-based)
  std::uint64_t seed = 0;  ///< drives instance costs and secret randomness
  WorkloadKind workload = WorkloadKind::kUniform;
  std::int64_t arrival_ns = 0;  ///< open-loop arrival, relative to t0
};

/// The instance a request resolves to: the exact derivation dmw_sim uses
/// (generator RNG seeded with seed*3+1), so a serve request and a one-shot
/// run agree bit-for-bit on the cost matrix.
inline mech::SchedulingInstance make_workload_instance(
    WorkloadKind kind, std::size_t n, std::size_t m, const mech::BidSet& bids,
    std::uint64_t request_seed) {
  Xoshiro256ss rng(request_seed * 3 + 1);
  switch (kind) {
    case WorkloadKind::kUniform:
      return mech::make_uniform_instance(n, m, bids, rng);
    case WorkloadKind::kMachine:
      return mech::make_machine_correlated_instance(n, m, bids, rng);
    case WorkloadKind::kTask:
      return mech::make_task_correlated_instance(n, m, bids, rng);
    case WorkloadKind::kWorst:
      return mech::make_minwork_worst_case(n, m, bids);
  }
  return {};
}

/// Per-request secret-randomness seed: the base RunConfig seed xor a
/// splitmix64-finalized mix of the request seed, so distinct requests get
/// decorrelated agent secrets while request 0 with seed 0 degenerates to
/// the plain one-shot default.
inline std::uint64_t serve_secret_seed(std::uint64_t base,
                                       std::uint64_t request_seed) {
  std::uint64_t z = request_seed;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return base ^ z;
}

/// Open-loop arrival process: the stream's arrival times are fixed up front
/// (seeded), independent of service progress — a lagging server accumulates
/// queueing delay instead of silently throttling the offered load.
class ArrivalProcess {
 public:
  enum class Mode { kAsap, kFixed, kPoisson };

  ArrivalProcess(Mode mode, double rate_hz, std::uint64_t seed)
      : mode_(mode), rate_hz_(rate_hz), rng_(seed ^ 0xa44c7a11a44c7a11ULL) {
    DMW_REQUIRE_MSG(mode == Mode::kAsap || rate_hz > 0.0,
                    "arrival rate must be positive");
  }

  static Mode parse(const std::string& name) {
    if (name == "asap") return Mode::kAsap;
    if (name == "fixed") return Mode::kFixed;
    if (name == "poisson") return Mode::kPoisson;
    DMW_REQUIRE_MSG(false, "unknown arrival mode: " + name);
    return Mode::kAsap;
  }

  static const char* to_string(Mode mode) {
    switch (mode) {
      case Mode::kAsap: return "asap";
      case Mode::kFixed: return "fixed";
      case Mode::kPoisson: return "poisson";
    }
    return "?";
  }

  Mode mode() const { return mode_; }
  double rate_hz() const { return rate_hz_; }

  /// Gap to the next arrival. asap: 0. fixed: 1/rate. poisson: exponential
  /// with mean 1/rate (inverse-CDF over the seeded generator, so a stream's
  /// arrival schedule is reproducible).
  std::int64_t next_gap_ns() {
    switch (mode_) {
      case Mode::kAsap:
        return 0;
      case Mode::kFixed:
        return static_cast<std::int64_t>(1e9 / rate_hz_);
      case Mode::kPoisson: {
        // real() is in [0, 1); flip to (0, 1] so log never sees zero.
        const double u = 1.0 - rng_.real();
        return static_cast<std::int64_t>(-std::log(u) * 1e9 / rate_hz_);
      }
    }
    return 0;
  }

 private:
  const Mode mode_;
  const double rate_hz_;
  Xoshiro256ss rng_;
};

/// Generate a request stream: request i gets seed master_seed + i (each
/// expanded through the generators' own seeding), the given workload, and
/// cumulative arrivals from the process.
inline std::vector<AuctionRequest> make_request_stream(
    std::size_t count, std::uint64_t master_seed, WorkloadKind workload,
    ArrivalProcess& arrivals) {
  std::vector<AuctionRequest> stream(count);
  std::int64_t at_ns = 0;
  for (std::size_t i = 0; i < count; ++i) {
    at_ns += arrivals.next_gap_ns();
    stream[i].id = i;
    stream[i].seed = master_seed + i;
    stream[i].workload = workload;
    stream[i].arrival_ns = at_ns;
  }
  return stream;
}

/// Fixed-capacity latency bookkeeping. Capacity is reserved up front;
/// record() never allocates (records past capacity are counted, not stored),
/// and summaries sort a preallocated scratch buffer in place — the
/// per-auction steady state stays heap-quiet, which test_serve pins with a
/// counting operator new.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t capacity) {
    latencies_.reserve(capacity);
    scratch_.reserve(capacity);
  }

  void record(std::int64_t latency_ns) {
    if (latencies_.size() < latencies_.capacity())
      latencies_.push_back(latency_ns);
    else
      ++dropped_;
  }

  std::size_t count() const { return latencies_.size(); }
  std::size_t dropped() const { return dropped_; }

  struct Summary {
    std::size_t count = 0;
    double mean_ms = 0, p50_ms = 0, p95_ms = 0, p99_ms = 0, max_ms = 0;
  };

  /// Summary over every recorded latency (pass 0), or over the trailing
  /// `last` records (an interval window).
  Summary summary(std::size_t last = 0) const {
    Summary out;
    const std::size_t total = latencies_.size();
    if (total == 0) return out;
    const std::size_t window = (last == 0 || last > total) ? total : last;
    scratch_.assign(latencies_.end() - static_cast<std::ptrdiff_t>(window),
                    latencies_.end());
    std::sort(scratch_.begin(), scratch_.end());
    double sum = 0;
    for (const std::int64_t v : scratch_) sum += static_cast<double>(v);
    out.count = window;
    out.mean_ms = sum / static_cast<double>(window) * 1e-6;
    out.p50_ms = sorted_percentile(50.0) * 1e-6;
    out.p95_ms = sorted_percentile(95.0) * 1e-6;
    out.p99_ms = sorted_percentile(99.0) * 1e-6;
    out.max_ms = static_cast<double>(scratch_.back()) * 1e-6;
    return out;
  }

 private:
  /// dmw::percentile's linear-interpolation rank over the sorted scratch,
  /// reimplemented here to stay allocation-free (stats.cpp's takes a copy).
  double sorted_percentile(double p) const {
    const std::size_t size = scratch_.size();
    if (size == 1) return static_cast<double>(scratch_[0]);
    const double rank = p / 100.0 * static_cast<double>(size - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= size) return static_cast<double>(scratch_.back());
    return static_cast<double>(scratch_[lo]) * (1.0 - frac) +
           static_cast<double>(scratch_[lo + 1]) * frac;
  }

  std::vector<std::int64_t> latencies_;
  mutable std::vector<std::int64_t> scratch_;
  std::size_t dropped_ = 0;
};

/// Persistent auction server: shared immutable parameters, one warmed pool,
/// per-worker arenas, honest agents, and a running Outcome-stream digest.
/// Single-threaded driver surface: run_auction() must be called from the
/// owning (non-pool) thread, one request at a time.
template <dmw::num::GroupBackend G>
class ServeEngine {
 public:
  struct Config {
    std::size_t threads = 1;  ///< 0 = hardware concurrency
    bool deterministic_schedule = false;
    bool encrypt_channels = true;
    /// Re-run every request through the sequential ProtocolRunner and
    /// compare all Outcome fields (the serve-smoke identity gate). Roughly
    /// doubles the work per request.
    bool check_oneshot = false;
    std::uint64_t base_secret_seed = RunConfig{}.secret_seed;
    std::size_t arena_slab_bytes = Arena::kDefaultSlabBytes;
  };

  ServeEngine(const PublicParams<G>& params, Config config)
      : params_(params),
        config_(config),
        pool_(config.threads == 0 ? ThreadPool::default_thread_count()
                                  : config.threads,
              config.deterministic_schedule),
        arenas_(pool_.size(), config.arena_slab_bytes),
        strategies_(params.n(), &honest_) {
    chain_.fill(0);
  }

  std::size_t threads() const { return pool_.size(); }
  const PublicParams<G>& params() const { return params_; }
  WorkerArenas& arenas() { return arenas_; }

  /// Run one request to completion on the shared pool. The returned Outcome
  /// reference is valid until the next run_auction() call.
  const Outcome& run_auction(const AuctionRequest& request) {
    const auto instance = make_workload_instance(
        request.workload, params_.n(), params_.m(), params_.bid_set(),
        request.seed);
    RunConfig config;
    config.secret_seed =
        serve_secret_seed(config_.base_secret_seed, request.seed);
    config.encrypt_channels = config_.encrypt_channels;
    config.deterministic_schedule = config_.deterministic_schedule;

    ParallelProtocol<G> engine(params_, instance, strategies_, pool_, config);
    outcome_ = engine.run();

    if (config_.check_oneshot) {
      ProtocolRunner<G> reference(params_, instance, strategies_, config);
      if (!outcomes_identical(outcome_, reference.run())) ++oneshot_mismatches_;
    }

    fold_into_digest(request);
    ++auctions_;
    if (outcome_.aborted) ++aborted_;
    // Auction boundary: engine.run() returned, the pool is quiescent — the
    // per-worker scratch of this request is dead and the slabs rewind.
    arenas_.reset_all();
    return outcome_;
  }

  std::uint64_t auctions() const { return auctions_; }
  std::uint64_t aborted() const { return aborted_; }
  /// Requests whose parallel Outcome differed from the sequential re-run
  /// (only ever counted with Config::check_oneshot; the gate is == 0).
  std::uint64_t oneshot_mismatches() const { return oneshot_mismatches_; }
  Arena::Stats arena_stats() const { return arenas_.combined_stats(); }

  /// Hex digest of the Outcome stream so far: a SHA-256 chain over every
  /// request's (id, seed, outcome fields). Equal digests <=> byte-identical
  /// per-auction outcome streams; the serve-smoke job compares them across
  /// thread counts and schedule modes.
  std::string outcome_digest() const { return crypto::digest_hex(chain_); }

  /// Field-by-field Outcome identity (the bit-identity contract's fields:
  /// abort record, schedule, prices, payments, rounds, and every
  /// TrafficStats column — unicast, broadcast, and p2p-equivalent alike).
  static bool outcomes_identical(const Outcome& a, const Outcome& b) {
    if (a.aborted != b.aborted) return false;
    if (a.aborted) {
      if (!a.abort_record || !b.abort_record) return false;
      if (a.abort_record->task != b.abort_record->task) return false;
      if (a.abort_record->reason != b.abort_record->reason) return false;
      if (a.aborting_agent != b.aborting_agent) return false;
    } else {
      if (!(a.schedule == b.schedule)) return false;
      if (a.first_prices != b.first_prices) return false;
      if (a.second_prices != b.second_prices) return false;
    }
    return a.payments == b.payments && a.rounds == b.rounds &&
           a.transcripts_consistent == b.transcripts_consistent &&
           a.traffic.unicast_messages == b.traffic.unicast_messages &&
           a.traffic.unicast_bytes == b.traffic.unicast_bytes &&
           a.traffic.broadcast_messages == b.traffic.broadcast_messages &&
           a.traffic.broadcast_bytes == b.traffic.broadcast_bytes &&
           a.traffic.p2p_equivalent_messages ==
               b.traffic.p2p_equivalent_messages &&
           a.traffic.p2p_equivalent_bytes == b.traffic.p2p_equivalent_bytes;
  }

 private:
  /// chain <- SHA256(chain || encode(request, outcome)). The encoding is
  /// staged in the driver's arena (per-auction scratch, rewound at the
  /// boundary), not the heap.
  void fold_into_digest(const AuctionRequest& request) {
    ArenaVector<std::uint8_t> buffer{
        ArenaAllocator<std::uint8_t>(arenas_.local())};
    buffer.reserve(64 + 8 * (params_.m() + 3 * params_.n()));
    append_u64(buffer, request.id);
    append_u64(buffer, request.seed);
    append_u64(buffer, outcome_.aborted ? 1 : 0);
    if (outcome_.aborted) {
      append_u64(buffer, outcome_.aborting_agent);
      append_u64(buffer, outcome_.abort_record->task);
      append_u64(buffer,
                 static_cast<std::uint64_t>(outcome_.abort_record->reason));
    } else {
      for (std::size_t j = 0; j < params_.m(); ++j)
        append_u64(buffer, outcome_.schedule.agent_for(j));
      for (const auto price : outcome_.first_prices) append_u64(buffer, price);
      for (const auto price : outcome_.second_prices) append_u64(buffer, price);
    }
    for (const auto payment : outcome_.payments) append_u64(buffer, payment);
    append_u64(buffer, outcome_.rounds);
    append_u64(buffer, outcome_.transcripts_consistent ? 1 : 0);

    crypto::Sha256 hasher;
    hasher.update(std::span<const std::uint8_t>(chain_.data(), chain_.size()));
    hasher.update(std::span<const std::uint8_t>(buffer.data(), buffer.size()));
    chain_ = hasher.finish();
  }

  static void append_u64(ArenaVector<std::uint8_t>& buffer, std::uint64_t v) {
    for (int b = 0; b < 8; ++b)
      buffer.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }

  const PublicParams<G>& params_;
  const Config config_;
  ThreadPool pool_;
  WorkerArenas arenas_;
  HonestStrategy<G> honest_;
  std::vector<Strategy<G>*> strategies_;
  Outcome outcome_;
  crypto::Digest256 chain_;
  std::uint64_t auctions_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t oneshot_mismatches_ = 0;
};

}  // namespace dmw::proto
