// Simulated payment infrastructure (paper §3, Phase IV).
//
// "The payment infrastructure issues the payment to A_i if the participating
// agents agree on P_i; otherwise, no payment is dispensed." The paper leaves
// the infrastructure itself out of scope; this escrow model implements
// exactly the agreement rule the mechanism's proofs rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "support/check.hpp"

namespace dmw::proto {

class PaymentInfrastructure {
 public:
  explicit PaymentInfrastructure(std::size_t n_agents) : n_(n_agents) {}

  /// Record agent `from`'s claimed payment vector.
  void submit(std::size_t from, std::vector<std::uint64_t> payments) {
    DMW_REQUIRE(from < n_);
    DMW_REQUIRE(payments.size() == n_);
    claims_.emplace_back(from, std::move(payments));
  }

  std::size_t claims_received() const { return claims_.size(); }

  /// Dispense iff at least `min_claims` agents submitted (default: all of
  /// them) and every submitted claim is identical. Crash-tolerant runs pass
  /// the quorum n - c so silent agents cannot block settlement, but a single
  /// conflicting claim still does.
  std::optional<std::vector<std::uint64_t>> settle(
      std::size_t min_claims = std::size_t(-1)) const {
    if (min_claims == std::size_t(-1)) min_claims = n_;
    if (claims_.size() < min_claims) return std::nullopt;
    std::vector<bool> seen(n_, false);
    for (const auto& [from, payments] : claims_) {
      if (seen[from]) return std::nullopt;  // duplicate claim
      seen[from] = true;
      if (payments != claims_.front().second) return std::nullopt;
    }
    return claims_.front().second;
  }

 private:
  std::size_t n_;
  std::vector<std::pair<std::size_t, std::vector<std::uint64_t>>> claims_;
};

}  // namespace dmw::proto
