// Random-linear-combination (small-exponent) batch verification for the
// Phase III commitment checks.
//
// Every Phase III check the agent performs has the shape
//     LHS_c == RHS_c            (both sides products in the Schnorr group),
// and the sequential scan evaluates each side check by check. Folding all
// checks of one task with random exponents r_c,
//     prod_c LHS_c^{r_c} == prod_c RHS_c^{r_c},
// turns n-1 peers' worth of checks into two long multi-exponentiations that
// share one squaring chain (and cross the Pippenger crossover as n grows).
// If every check holds the folded identity holds; if some check fails, the
// folded identity survives only when the adversary predicts the r_c — the
// failing factor prod_c (LHS_c/RHS_c)^{r_c} is a nontrivial power whose
// exponent is a nonzero linear form in the r_c, uniform over Z_q. Soundness
// error is therefore <= 2^-min(128, log2 q) per batch: the r_c are 128-bit
// values reduced mod q (so 2^-128 once q is large enough to keep all 128
// bits, 1/q ~ 2^-40 on the Group64 simulation tier). Caveat shared with the
// sequential path: elements are only range-validated on ingest (valid_elem),
// so cofactor components of small order d survive folding with probability
// 1/d — neither path validates subgroup membership, and the batch does not
// weaken what the sequential scan enforced.
//
// Determinism: callers seed the verifier with a dedicated per-(agent, task,
// stage) ChaCha stream (DmwAgent::rlc_rng) and fold checks in ascending
// peer order, so the r_c — and hence every Outcome byte — are identical no
// matter how many workers the parallel driver uses.
//
// Deviator identification: a failed batch says "some check in this task
// failed" but not which; callers re-run the task's original sequential scan
// to attribute the failure, so AbortReason records are byte-identical to
// the one-at-a-time ablation (see DESIGN.md "Batch verification").
//
// Vectorized tier: the two settling multi-exponentiations ride the lane
// engine (numeric/montlane.hpp) transparently — multi_pow's table build and
// Pippenger's bucket accumulation group independent multiplications
// kLanes at a time whenever the group's SimdMode (PublicParams::set_simd)
// engages. The grouped schedule performs the same counted multiplications
// in the same per-accumulator order, so verify() results, abort streams and
// OpCounts are bit-identical across SimdMode settings.
#pragma once

#include <span>
#include <vector>

#include "crypto/chacha.hpp"
#include "numeric/group.hpp"
#include "numeric/multiexp.hpp"

namespace dmw::proto {

/// One RLC coefficient: 128 random bits reduced into Z_q. Both backends
/// draw exactly two 64-bit words per coefficient, so transcripts of draws
/// depend only on the stream, never on the group size.
inline dmw::num::Group64::Scalar rlc_scalar(const dmw::num::Group64& g,
                                            crypto::ChaChaRng& rng) {
  const dmw::num::u64 hi = rng.next();
  const dmw::num::u64 lo = rng.next();
  const dmw::num::u128 v =
      (static_cast<dmw::num::u128>(hi) << 64) | static_cast<dmw::num::u128>(lo);
  return static_cast<dmw::num::u64>(v % g.q());
}

template <std::size_t W>
typename dmw::num::GroupBig<W>::Scalar rlc_scalar(
    const dmw::num::GroupBig<W>& g, crypto::ChaChaRng& rng) {
  auto v = dmw::num::BigUInt<W>::zero();
  const dmw::num::u64 hi = rng.next();
  const dmw::num::u64 lo = rng.next();
  v.set_limb(0, lo);
  if constexpr (W >= 2) v.set_limb(1, hi);
  return dmw::num::mod(v, g.q());
}

/// Accumulates the two sides of an RLC'd batch of checks and settles them
/// with one commitment and two multi-exponentiations. Usage per check c:
/// draw() one coefficient r_c, then fold LHS_c and RHS_c weighted by r_c
/// via fold_commit / lhs_term / rhs_term; finally verify().
///
/// fold_commit exploits that most LHS are Pedersen commitments over the
/// shared (z1, z2) basis: prod_c commit(a_c, b_c)^{r_c} ==
/// commit(sum_c r_c a_c, sum_c r_c b_c), so the whole commitment side of a
/// batch costs ONE fixed-base commitment regardless of the check count.
template <dmw::num::GroupBackend G>
class BatchVerifier {
 public:
  using Elem = typename G::Elem;
  using Scalar = typename G::Scalar;

  BatchVerifier(const G& g, crypto::ChaChaRng rng)
      : g_(&g), rng_(std::move(rng)), acc_a_(g.szero()), acc_b_(g.szero()) {}

  /// The next check's RLC coefficient (two ChaCha words, reduced mod q).
  Scalar draw() {
    ++checks_;
    return rlc_scalar(*g_, rng_);
  }

  /// Fold commit(a, b) = z1^a z2^b weighted by r into the left side.
  void fold_commit(const Scalar& r, const Scalar& a, const Scalar& b) {
    acc_a_ = g_->sadd(acc_a_, g_->smul(r, a));
    acc_b_ = g_->sadd(acc_b_, g_->smul(r, b));
    has_commit_ = true;
  }

  /// Fold base^exponent into the left / right side product.
  void lhs_term(const Elem& base, const Scalar& exponent) {
    lhs_bases_.push_back(base);
    lhs_exps_.push_back(exponent);
  }
  void rhs_term(const Elem& base, const Scalar& exponent) {
    rhs_bases_.push_back(base);
    rhs_exps_.push_back(exponent);
  }

  /// Number of draw() calls so far (== checks folded in).
  std::size_t checks() const { return checks_; }

  /// Settle the batch. True iff the folded identity holds; a true batch of
  /// all-honest checks always verifies (the fold is exact, nothing
  /// probabilistic on the honest path).
  bool verify() const {
    Elem lhs = has_commit_ ? g_->commit(acc_a_, acc_b_) : g_->identity();
    if (!lhs_bases_.empty()) {
      lhs = g_->mul(
          lhs, dmw::num::multi_pow<G>(
                   *g_, std::span<const Elem>(lhs_bases_),
                   std::span<const Scalar>(lhs_exps_)));
    }
    const Elem rhs =
        rhs_bases_.empty()
            ? g_->identity()
            : dmw::num::multi_pow<G>(*g_, std::span<const Elem>(rhs_bases_),
                                     std::span<const Scalar>(rhs_exps_));
    return lhs == rhs;
  }

 private:
  const G* g_;
  crypto::ChaChaRng rng_;
  std::size_t checks_ = 0;
  bool has_commit_ = false;
  Scalar acc_a_, acc_b_;
  std::vector<Elem> lhs_bases_, rhs_bases_;
  std::vector<Scalar> lhs_exps_, rhs_exps_;
};

}  // namespace dmw::proto
