// Agent strategies (paper Definitions 6-7).
//
// A distributed mechanism's strategy space contains every way an agent can
// act: what it reveals (bids), what it sends, and what it computes. The
// suggested strategy chi_suggest is HonestStrategy; the deviation catalogue
// in strategies.hpp mirrors the cases enumerated in the proofs of Theorems 4
// and 8 (corrupt shares, inconsistent commitments, withheld messages, bad
// Lambda/Psi, bad disclosures, bad payment claims, misreported bids).
//
// Hooks are "edit points": the honest agent computes the prescribed value
// and then lets the strategy replace or suppress it. Returning false from a
// send_* hook withholds the message entirely.
//
// Reentrancy contract (task-parallel runs): the per-task hooks of one
// strategy object are invoked concurrently for different tasks — and
// choose_bids concurrently for different agents when an instance is shared
// (run_honest_dmw shares one HonestStrategy across all n). Strategies must
// therefore be read-only after construction, as every strategy in
// strategies.hpp is; a stateful strategy needs its own synchronization and
// must not make its output depend on cross-task execution order, or the
// bit-identical-outcome guarantee of ParallelProtocol is void.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dmw/messages.hpp"
#include "dmw/polycommit.hpp"
#include "mech/problem.hpp"

namespace dmw::proto {

template <dmw::num::GroupBackend G>
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Name for reports.
  virtual std::string name() const { return "honest"; }

  /// Fail-silent strategies (crash faults) never broadcast aborts: a dead
  /// node cannot complain. When true, a failed local check halts the agent
  /// quietly instead of terminating the whole protocol.
  virtual bool fail_silent() const { return false; }

  // ---- information-revelation action (Def. 12) ---------------------------

  /// The bids to submit given the agent's true per-task costs. The honest
  /// strategy reports the costs themselves (truth-telling).
  virtual std::vector<mech::Cost> choose_bids(
      const std::vector<mech::Cost>& true_costs, const mech::BidSet&) {
    return true_costs;
  }

  // ---- channel-setup hook --------------------------------------------------

  /// May tamper with the published Diffie-Hellman key; return false to
  /// withhold it (peers then cannot open this agent's sealed shares).
  virtual bool edit_key_exchange(typename G::Elem& /*public_key*/) {
    return true;
  }

  // ---- Phase II hooks ------------------------------------------------------

  /// May tamper with the share bundle destined for `recipient`; return
  /// false to withhold it.
  virtual bool edit_share(std::size_t /*task*/, std::size_t /*recipient*/,
                          ShareBundle<G>& /*shares*/) {
    return true;
  }

  /// May tamper with the commitment vectors; return false to withhold.
  virtual bool edit_commitments(std::size_t /*task*/,
                                CommitmentVectors<G>& /*commitments*/) {
    return true;
  }

  // ---- Phase III hooks -----------------------------------------------------

  virtual bool edit_lambda_psi(std::size_t /*task*/,
                               typename G::Elem& /*lambda*/,
                               typename G::Elem& /*psi*/) {
    return true;
  }

  /// Winner-identification disclosure (III.3). `should_disclose` is true
  /// when the protocol prescribes this agent to disclose; a strategy may
  /// also volunteer when not required (the paper notes this is harmless).
  virtual bool edit_disclosure(std::size_t /*task*/, bool should_disclose,
                               std::vector<typename G::Scalar>& /*f_shares*/) {
    return should_disclose;
  }

  virtual bool edit_reduced_lambda_psi(std::size_t /*task*/,
                                       typename G::Elem& /*lambda*/,
                                       typename G::Elem& /*psi*/) {
    return true;
  }

  // ---- Phase IV hook -------------------------------------------------------

  virtual bool edit_payment_claim(std::vector<std::uint64_t>& /*payments*/) {
    return true;
  }
};

/// The suggested strategy chi_suggest: every hook is the identity.
template <dmw::num::GroupBackend G>
class HonestStrategy : public Strategy<G> {};

}  // namespace dmw::proto
