// Multi-unit (M+1)st-price auction on the DMW substrate.
//
// DMW "is based on the ideas presented in [23] where a distributed
// (M+1)st-price auction is implemented by a set of auctioneers" (paper
// §1.2/§3). This module closes the loop: the same degree-encoded secret
// sharing, Lambda aggregation and iterative winner reduction implement the
// ancestor construction — M identical units sold to the M highest bidders,
// all paying the (M+1)st-highest bid (uniform-price Vickrey, truthful).
//
// Construction: a *value* bid v in W is mapped to the cost domain by
// reversal (cost = max(W)+1-v), so "lowest cost" resolution finds the
// *highest* value. Each of the M winner rounds resolves the current best
// bid, identifies the winner through its f polynomial (Eq. 14) and divides
// the winner's e out of the aggregate (Eq. 15); the final resolution after
// M reductions yields the clearing price.
//
// Privacy note: unlike Kikuchi's one-shot (M+1)st-price resolution, the
// iterative reduction reveals the sorted top M bids, not just the clearing
// price. This is the same intrinsic disclosure DMW accepts for its winner
// (Remark after Thm. 10), compounded M times; the tests quantify it.
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "crypto/chacha.hpp"
#include "dmw/params.hpp"
#include "dmw/polycommit.hpp"
#include "poly/lagrange.hpp"
#include "support/trace.hpp"

namespace dmw::proto {

struct MultiUnitOutcome {
  bool resolved = false;
  std::vector<std::size_t> winners;       ///< M winners, highest bid first
  std::vector<mech::Cost> revealed_bids;  ///< their bids (disclosed by design)
  mech::Cost clearing_price = 0;          ///< the (M+1)st-highest bid
};

/// Run the auction over the cryptographic pipeline (shares, exponent-domain
/// resolution, f-interpolation, reduction). `value_bids[i]` in W; higher
/// wins. Requires units < n.
template <dmw::num::GroupBackend G>
MultiUnitOutcome run_multiunit_auction(const PublicParams<G>& params,
                                       const std::vector<mech::Cost>& value_bids,
                                       std::size_t units,
                                       std::uint64_t seed = 0x4d31) {
  DMW_SPAN("multiunit/run");
  const G& g = params.group();
  const std::size_t n = params.n();
  DMW_REQUIRE(value_bids.size() == n);
  DMW_REQUIRE_MSG(units >= 1 && units < n, "need 1 <= M < n bidders");
  const auto w_max = params.bid_set().max();

  // Reversal into the cost domain.
  std::vector<mech::Cost> cost_bids;
  cost_bids.reserve(n);
  for (mech::Cost v : value_bids) {
    DMW_REQUIRE_MSG(params.bid_set().contains(v), "bid not in W");
    cost_bids.push_back(static_cast<mech::Cost>(w_max + 1 - v));
    DMW_REQUIRE(params.bid_set().contains(cost_bids.back()));
  }

  // Phase II equivalent: sample polynomials, evaluate shares everywhere.
  auto rng = crypto::ChaChaRng::from_seed(seed);
  std::vector<BidPolynomials<G>> polys;
  polys.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    polys.push_back(BidPolynomials<G>::sample(params, cost_bids[i], rng));

  const auto& alphas = params.pseudonyms();
  // e-shares and f-shares: shares[i][k] = poly_i(alpha_k).
  std::vector<std::vector<typename G::Scalar>> e_shares(n), f_shares(n);
  for (std::size_t i = 0; i < n; ++i) {
    e_shares[i] = polys[i].e.eval_all(g, alphas);
    f_shares[i] = polys[i].f.eval_all(g, alphas);
  }

  MultiUnitOutcome outcome;
  std::vector<bool> excluded(n, false);

  for (std::size_t round = 0; round <= units; ++round) {
    DMW_SPAN("multiunit/winner_round", round);
    // Lambda_k = z1^{sum over remaining bidders of e_i(alpha_k)}.
    std::vector<typename G::Elem> lambdas;
    lambdas.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      typename G::Scalar sum = g.szero();
      for (std::size_t i = 0; i < n; ++i) {
        if (!excluded[i]) sum = g.sadd(sum, e_shares[i][k]);
      }
      lambdas.push_back(g.pow(g.z1(), sum));
    }
    const auto resolution =
        poly::resolve_degree_in_exponent(g, alphas, lambdas);
    if (!resolution.degree || !params.degree_is_valid_bid(*resolution.degree))
      return outcome;  // unresolved: leave resolved=false
    const mech::Cost best_cost = params.bid_for_degree(*resolution.degree);
    const auto best_value = static_cast<mech::Cost>(w_max + 1 - best_cost);

    if (round == units) {
      outcome.clearing_price = best_value;
      outcome.resolved = true;
      return outcome;
    }

    // Winner identification (Eq. 14): among the remaining bidders, the one
    // whose f interpolates to zero with best_cost+1 points; smallest
    // pseudonym wins ties.
    const std::size_t needed = best_cost + 1;
    DMW_CHECK(needed <= n);
    // Every candidate interpolates over the same leading `needed`
    // pseudonyms, so the Lagrange basis at zero (one batched inversion) is
    // hoisted out of the candidate loop; per candidate only a dot product
    // with its f-shares remains.
    const auto rho = poly::lagrange_basis_at_zero(g, alphas, needed);
    std::optional<std::size_t> winner;
    for (std::size_t candidate = 0; candidate < n && !winner; ++candidate) {
      if (excluded[candidate]) continue;
      typename G::Scalar at_zero = g.szero();
      for (std::size_t t = 0; t < needed; ++t)
        at_zero = g.sadd(at_zero, g.smul(f_shares[candidate][t], rho[t]));
      if (at_zero == g.szero()) winner = candidate;
    }
    if (!winner) return outcome;  // inconsistent state: unresolved

    outcome.winners.push_back(*winner);
    outcome.revealed_bids.push_back(best_value);
    excluded[*winner] = true;  // Eq. (15): divide the winner out
  }
  return outcome;  // unreachable
}

/// Reference outcome by sorting (for differential testing and as the
/// centralized baseline): winners are the `units` highest bidders
/// (smallest index on ties), price is the (units+1)-st highest bid.
inline MultiUnitOutcome reference_multiunit(
    const std::vector<mech::Cost>& value_bids, std::size_t units) {
  MultiUnitOutcome outcome;
  std::vector<std::size_t> order(value_bids.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return value_bids[a] > value_bids[b];
                   });
  for (std::size_t r = 0; r < units; ++r) {
    outcome.winners.push_back(order[r]);
    outcome.revealed_bids.push_back(value_bids[order[r]]);
  }
  outcome.clearing_price = value_bids[order[units]];
  outcome.resolved = true;
  return outcome;
}

}  // namespace dmw::proto
