// The centralized mechanism of Fig. 1 as an actual message-passing system.
//
// The paper's Table 1 compares DMW against MinWork run by a trusted
// administrator. To measure rather than hand-count the centralized
// communication cost, this runner plays the administrator and the n bidders
// over the same SimNetwork used by DMW: each agent unicasts its m-entry bid
// vector to the administrator, which computes the schedule and unicasts
// each agent its personal result (allocation + payment). This realizes the
// Θ(mn) communication the Remark after Theorem 11 derives.
//
// The administrator is modeled as one extra network node (id n).
#pragma once

#include "mech/minwork.hpp"
#include "net/network.hpp"
#include "net/serialize.hpp"
#include "support/check.hpp"

namespace dmw::proto {

struct CentralizedOutcome {
  mech::MinWorkOutcome mechanism;
  net::TrafficStats traffic;   ///< measured over the simulated network
  std::uint64_t rounds = 0;
};

/// Message kinds on the centralized wire.
enum class CentralMsg : std::uint32_t {
  kBidVector = 100,   ///< agent -> administrator: m bids
  kResult = 101,      ///< administrator -> agent: payment + assigned tasks
};

/// Run centralized MinWork over a simulated star network.
/// `bids[i][j]` is agent i's bid for task j (use truthful_bids(instance)
/// for the honest run).
inline CentralizedOutcome run_centralized_minwork(const mech::BidMatrix& bids) {
  DMW_REQUIRE(bids.size() >= 2);
  const std::size_t n = bids.size();
  const std::size_t m = bids[0].size();
  const net::AgentId admin = static_cast<net::AgentId>(n);
  net::SimNetwork net(n + 1);

  // Round 0: every agent submits its bid vector.
  for (std::size_t i = 0; i < n; ++i) {
    DMW_REQUIRE(bids[i].size() == m);
    net::Writer w;
    w.varint(m);
    for (mech::Cost bid : bids[i]) w.u32(bid);
    net.send(static_cast<net::AgentId>(i), admin,
             static_cast<std::uint32_t>(CentralMsg::kBidVector), w.take());
  }
  net.advance_round();

  // Round 1: the administrator decodes the bids and computes the outcome.
  mech::BidMatrix received(n);
  for (auto& env : net.receive(admin)) {
    DMW_CHECK(env.kind == static_cast<std::uint32_t>(CentralMsg::kBidVector));
    net::Reader r(env.payload);
    const std::uint64_t count = r.varint();
    DMW_CHECK(count == m);
    auto& row = received[env.from];
    row.reserve(m);
    for (std::uint64_t j = 0; j < m; ++j) row.push_back(r.u32());
    r.expect_done();
  }
  for (const auto& row : received)
    DMW_CHECK_MSG(row.size() == m, "administrator missing a bid vector");

  CentralizedOutcome outcome;
  outcome.mechanism = mech::run_minwork(received);

  // The administrator unicasts each agent its personal result.
  for (std::size_t i = 0; i < n; ++i) {
    net::Writer w;
    w.u64(outcome.mechanism.payments[i]);
    const auto mine = outcome.mechanism.schedule.tasks_for(i);
    w.varint(mine.size());
    for (std::size_t task : mine) w.u32(static_cast<std::uint32_t>(task));
    net.send(admin, static_cast<net::AgentId>(i),
             static_cast<std::uint32_t>(CentralMsg::kResult), w.take());
  }
  net.advance_round();

  // Agents read their results (drains the queues; content already known).
  for (std::size_t i = 0; i < n; ++i) {
    const auto inbox = net.receive(static_cast<net::AgentId>(i));
    DMW_CHECK(inbox.size() == 1);
  }

  outcome.traffic = net.stats();
  outcome.rounds = net.round();
  return outcome;
}

}  // namespace dmw::proto
