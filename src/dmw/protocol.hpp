// The DMW protocol runner.
//
// Drives n agents through the four phases of §3 in lockstep rounds over a
// SimNetwork, implements the payment infrastructure's agreement rule, and
// assembles the final Outcome (schedule, payments, per-phase traffic, abort
// record). One runner executes the auctions for all m tasks in parallel,
// exactly as the paper prescribes ("a set of parallel and independent
// distributed Vickrey auctions").
#pragma once

#include <array>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dmw/agent.hpp"
#include "dmw/payment.hpp"
#include "mech/schedule.hpp"
#include "numeric/opcount.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace dmw::proto {

/// Phase labels for the traffic breakdown (Fig. 2 reproduction).
enum class Phase : std::size_t {
  kBidding = 0,          // II: shares + commitments
  kLambdaPsi = 1,        // III.1-III.2
  kWinner = 2,           // III.3
  kSecondPrice = 3,      // III.4
  kPayments = 4,         // IV
  kCount = 5,
};

const char* to_string(Phase phase);

struct PhaseTraffic {
  net::TrafficStats stats;
  double seconds = 0.0;
  dmw::num::OpCounts ops;
};

struct Outcome {
  bool aborted = false;
  std::optional<AbortMsg> abort_record;
  std::size_t aborting_agent = 0;

  mech::Schedule schedule;                 ///< valid iff !aborted
  std::vector<std::uint64_t> payments;     ///< P_i; zeros when aborted
  std::vector<mech::Cost> first_prices;    ///< per task
  std::vector<mech::Cost> second_prices;   ///< per task
  std::vector<mech::Cost> winning_bids() const { return first_prices; }

  net::TrafficStats traffic;               ///< whole-run totals
  std::array<PhaseTraffic, static_cast<std::size_t>(Phase::kCount)> phases;
  /// Communication-ledger rows (SimNetwork::comm_rows()): every message
  /// attributed to its (phase, round, kind, sender) cell. Populated only
  /// when the run was traced (the ledger records iff trace::on()).
  std::vector<net::CommRow> comm;
  std::uint64_t rounds = 0;
  bool transcripts_consistent = true;      ///< all agents saw one broadcast

  /// U_i = P_i - sum of true costs of assigned tasks; 0 on abort.
  std::int64_t utility(const mech::SchedulingInstance& instance,
                       std::size_t agent) const {
    if (aborted) return 0;
    return mech::utility(instance, schedule, agent, payments[agent]);
  }
};

/// Per-run configuration.
struct RunConfig {
  std::uint64_t secret_seed = 0x5eed;  ///< base seed for agent secrets
  /// Seal Phase II shares with DH-derived AEAD keys (paper II.2 "securely
  /// transmits"). Disable to model physically private channels.
  bool encrypt_channels = true;
  /// Parallel engine only: pin the worker->work mapping to the static
  /// sharding (reproducible interleavings) instead of the default pipelined
  /// work-stealing schedule. Outcomes are bit-identical either way; this
  /// knob trades throughput for a reproducible *execution schedule*.
  /// Default comes from the DMW_DETERMINISTIC_SCHEDULE env var.
  bool deterministic_schedule = ThreadPool::deterministic_schedule_default();
};

// ---- Pieces shared by the sequential and task-parallel drivers -------------

/// Construct the n agents with their derived secret seeds.
template <dmw::num::GroupBackend G>
std::vector<std::unique_ptr<DmwAgent<G>>> make_dmw_agents(
    const PublicParams<G>& params, const mech::SchedulingInstance& instance,
    const std::vector<Strategy<G>*>& strategies, const RunConfig& config) {
  DMW_REQUIRE(instance.n == params.n());
  DMW_REQUIRE(instance.m == params.m());
  DMW_REQUIRE(strategies.size() == params.n());
  instance.validate();
  std::vector<std::unique_ptr<DmwAgent<G>>> agents;
  agents.reserve(params.n());
  for (std::size_t i = 0; i < params.n(); ++i) {
    DMW_REQUIRE(strategies[i] != nullptr);
    agents.push_back(std::make_unique<DmwAgent<G>>(
        params, i, instance.cost[i], *strategies[i],
        config.secret_seed + 0x9e3779b97f4a7c15ULL * (i + 1),
        config.encrypt_channels));
  }
  return agents;
}

inline void accumulate_traffic(net::TrafficStats& bucket,
                               const net::TrafficStats& now,
                               const net::TrafficStats& before) {
  bucket.unicast_messages += now.unicast_messages - before.unicast_messages;
  bucket.unicast_bytes += now.unicast_bytes - before.unicast_bytes;
  bucket.broadcast_messages +=
      now.broadcast_messages - before.broadcast_messages;
  bucket.broadcast_bytes += now.broadcast_bytes - before.broadcast_bytes;
  bucket.p2p_equivalent_messages +=
      now.p2p_equivalent_messages - before.p2p_equivalent_messages;
  bucket.p2p_equivalent_bytes +=
      now.p2p_equivalent_bytes - before.p2p_equivalent_bytes;
}

/// An abort by any agent terminates the protocol for everyone; the lowest
/// aborted agent id is recorded (= the first one the sequential scan saw).
template <dmw::num::GroupBackend G>
void note_aborts(const std::vector<std::unique_ptr<DmwAgent<G>>>& agents,
                 Outcome& outcome) {
  for (const auto& agent : agents) {
    if (agent->aborted() && !outcome.aborted) {
      outcome.aborted = true;
      outcome.abort_record = agent->abort_record();
      outcome.aborting_agent = agent->id();
    }
  }
}

/// Post-run settlement + outcome assembly (identical for both drivers):
/// decode payment claims, settle by quorum agreement, read the schedule and
/// prices off the first complete agent, audit transcript consistency.
template <dmw::num::GroupBackend G>
void finalize_outcome(const PublicParams<G>& params, net::SimNetwork& net,
                      PaymentInfrastructure& infra,
                      const std::vector<std::unique_ptr<DmwAgent<G>>>& agents,
                      Outcome& outcome) {
  DMW_SPAN("run/finalize");
  outcome.traffic = net.stats();
  outcome.comm = net.comm_rows();
  if (outcome.aborted) return;

  // Payment settlement (Phase IV): decode the published claims.
  std::size_t cursor = 0;
  for (const auto& posting : net.read_bulletin(cursor)) {
    if (posting.kind != static_cast<std::uint32_t>(MsgKind::kPaymentClaim))
      continue;
    try {
      auto msg = PaymentClaimMsg::decode(posting.payload);
      if (msg.payments.size() != params.n()) continue;
      infra.submit(posting.from, std::move(msg.payments));
    } catch (const net::DecodeError&) {
      // Malformed claim: simply never reaches agreement.
    }
  }
  const auto settled = infra.settle(params.quorum());
  if (!settled) {
    outcome.aborted = true;
    outcome.abort_record = AbortMsg{0, AbortReason::kPaymentDisagreement};
    return;
  }
  outcome.payments = *settled;

  // Assemble the schedule from the first agent that resolved every task
  // (in an all-honest run that is agent 0; with deviants or crashed
  // agents it is the first live honest agent — all of them agree).
  const DmwAgent<G>* reference_agent = nullptr;
  for (const auto& agent : agents) {
    bool complete = !agent->aborted();
    for (std::size_t j = 0; complete && j < params.m(); ++j) {
      const auto& view = agent->task_view(j);
      complete = view.winner && view.first_price && view.second_price;
    }
    if (complete) {
      reference_agent = agent.get();
      break;
    }
  }
  if (reference_agent == nullptr) {
    outcome.aborted = true;
    outcome.abort_record = AbortMsg{0, AbortReason::kQuorumLost};
    return;
  }
  std::vector<std::size_t> task_to_agent(params.m());
  outcome.first_prices.resize(params.m());
  outcome.second_prices.resize(params.m());
  for (std::size_t j = 0; j < params.m(); ++j) {
    const auto& view = reference_agent->task_view(j);
    task_to_agent[j] = *view.winner;
    outcome.first_prices[j] = *view.first_price;
    outcome.second_prices[j] = *view.second_price;
  }
  outcome.schedule = mech::Schedule(std::move(task_to_agent));

  // Broadcast-consistency audit: all transcripts must agree.
  const auto reference = agents[0]->transcript().digest();
  for (const auto& agent : agents) {
    if (agent->transcript().digest() != reference) {
      outcome.transcripts_consistent = false;
      break;
    }
  }
}

template <dmw::num::GroupBackend G>
class ProtocolRunner {
 public:
  /// `strategies[i]` controls agent i; entries may be shared. The instance
  /// provides the agents' true types (used by honest agents as their bids).
  ProtocolRunner(const PublicParams<G>& params,
                 const mech::SchedulingInstance& instance,
                 std::vector<Strategy<G>*> strategies,
                 RunConfig config = RunConfig{})
      : params_(params),
        instance_(instance),
        net_(params.n()),
        infra_(params.n()),
        agents_(make_dmw_agents(params, instance, strategies, config)) {
    if (params.tracing()) trace::Tracer::instance().set_enabled(true);
  }

  net::SimNetwork& network() { return net_; }

  Outcome run() {
    Outcome outcome;
    outcome.payments.assign(params_.n(), 0);

    // Channel setup: DH key publication for the private channels.
    step(Phase::kBidding, outcome,
         [&](DmwAgent<G>& agent) { agent.phase0_publish_key(net_); });

    // Phase II: bidding (II.1-II.3) + implicit synchronization (II.4).
    step(Phase::kBidding, outcome,
         [&](DmwAgent<G>& agent) { agent.phase2_bid_and_send(net_); });

    // Phase III.1 + III.2.
    step(Phase::kLambdaPsi, outcome, [&](DmwAgent<G>& agent) {
      agent.phase3_collect_and_verify(net_);
      agent.phase3_publish_lambda_psi(net_);
    });
    step(Phase::kLambdaPsi, outcome, [&](DmwAgent<G>& agent) {
      agent.phase3_verify_and_resolve_first_price(net_);
    });

    // Phase III.3.
    step(Phase::kWinner, outcome,
         [&](DmwAgent<G>& agent) { agent.phase3_disclose(net_); });
    step(Phase::kWinner, outcome,
         [&](DmwAgent<G>& agent) { agent.phase3_identify_winner(net_); });

    // Phase III.4.
    step(Phase::kSecondPrice, outcome,
         [&](DmwAgent<G>& agent) { agent.phase3_publish_reduced(net_); });
    step(Phase::kSecondPrice, outcome,
         [&](DmwAgent<G>& agent) { agent.phase3_resolve_second_price(net_); });

    // Phase IV.
    step(Phase::kPayments, outcome,
         [&](DmwAgent<G>& agent) { agent.phase4_submit_payment_claim(net_); });

    finalize(outcome);
    return outcome;
  }

  /// Read-only access to agents (experiments inspect their views).
  const DmwAgent<G>& agent(std::size_t i) const { return *agents_[i]; }

 private:
  template <class Fn>
  void step(Phase phase, Outcome& outcome, Fn&& fn) {
    if (outcome.aborted) return;
    net_.set_comm_phase(static_cast<std::uint32_t>(phase), to_string(phase));
    const auto traffic_before = net_.stats();
    dmw::num::OpCountScope ops;
    trace::Span span(to_string(phase));
    const std::int64_t step_begin_ns = trace::Tracer::instance().now_ns();

    for (auto& agent : agents_) fn(*agent);
    net_.advance_round();
    ++outcome.rounds;
    // Implicit synchronization (paper II.4): wait out injected delivery
    // delays so slow links cost rounds, not spurious aborts. The bound is a
    // safety net against a pathological injector.
    for (int wait = 0; net_.in_flight() > 0 && wait < 1024; ++wait) {
      net_.advance_round();
      ++outcome.rounds;
    }

    auto& bucket = outcome.phases[static_cast<std::size_t>(phase)];
    bucket.seconds +=
        static_cast<double>(trace::Tracer::instance().now_ns() -
                            step_begin_ns) *
        1e-9;
    bucket.ops += ops.delta();
    accumulate_traffic(bucket.stats, net_.stats(), traffic_before);

    note_aborts(agents_, outcome);
  }

  void finalize(Outcome& outcome) {
    finalize_outcome(params_, net_, infra_, agents_, outcome);
  }

  const PublicParams<G>& params_;
  const mech::SchedulingInstance& instance_;
  net::SimNetwork net_;
  PaymentInfrastructure infra_;
  std::vector<std::unique_ptr<DmwAgent<G>>> agents_;
};

/// Assemble the machine-readable RunReport for a finished run: the
/// Outcome's per-phase wall-time/ops/traffic table plus the tracer's span
/// aggregates and the metrics-registry snapshots (trace::collect_into).
/// Call on the driver thread, after run(), while the tracer state of the
/// run is still live (before the next reset()). Under ClockMode::kLogical
/// the returned report serializes bit-identically at any thread count and
/// for either driver's phase table.
template <dmw::num::GroupBackend G>
trace::RunReport make_run_report(const PublicParams<G>& params,
                                 const Outcome& outcome) {
  trace::RunReport report;
  report.label = params.describe();
  report.n = params.n();
  report.m = params.m();
  report.c = params.c();
  report.aborted = outcome.aborted;
  if (outcome.aborted && outcome.abort_record)
    report.abort_reason = to_string(outcome.abort_record->reason);
  report.rounds = outcome.rounds;
  for (std::size_t i = 0; i < outcome.phases.size(); ++i) {
    const PhaseTraffic& bucket = outcome.phases[i];
    trace::RunReport::PhaseRow row;
    row.name = to_string(static_cast<Phase>(i));
    // seconds round-trips through double; exact for the logical clock's
    // small tick counts, which is what the determinism gate relies on.
    row.wall_ns = std::llround(bucket.seconds * 1e9);
    row.ops = bucket.ops;
    row.unicasts = bucket.stats.unicast_messages;
    row.broadcasts = bucket.stats.broadcast_messages;
    row.p2p_messages = bucket.stats.p2p_equivalent_messages;
    row.p2p_bytes = bucket.stats.p2p_equivalent_bytes;
    report.phases.push_back(std::move(row));
  }
  for (const net::CommRow& row : outcome.comm) {
    trace::RunReport::CommRow out;
    out.phase = row.phase_label;
    out.round = row.key.round;
    out.kind = row.kind_name;
    out.sender = row.key.sender;
    out.messages = row.counts.messages;
    out.wire_bytes = row.counts.wire_bytes;
    out.p2p_messages = row.counts.p2p_messages;
    out.p2p_bytes = row.counts.p2p_bytes;
    report.comm.push_back(std::move(out));
  }
  trace::collect_into(report);
  return report;
}

/// Convenience: run DMW with every agent honest.
template <dmw::num::GroupBackend G>
Outcome run_honest_dmw(const PublicParams<G>& params,
                       const mech::SchedulingInstance& instance,
                       RunConfig config = RunConfig{}) {
  HonestStrategy<G> honest;
  std::vector<Strategy<G>*> strategies(params.n(), &honest);
  ProtocolRunner<G> runner(params, instance, std::move(strategies), config);
  return runner.run();
}

}  // namespace dmw::proto
