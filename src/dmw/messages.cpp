#include "dmw/messages.hpp"

#include "dmw/protocol.hpp"
#include "net/network.hpp"

namespace dmw::proto {

namespace {

/// Static-init registration of the protocol's kind tags with the network's
/// communication ledger, so every ledger row and flow event carries the
/// protocol-level name instead of a bare integer. This TU is always linked
/// (it provides to_string), so the registry is populated before main.
[[maybe_unused]] const bool g_comm_kinds_registered = [] {
  const auto reg = [](MsgKind kind, const char* name) {
    net::register_comm_kind(static_cast<std::uint32_t>(kind), name);
  };
  reg(MsgKind::kKeyExchange, "key_exchange");
  reg(MsgKind::kShares, "shares");
  reg(MsgKind::kCommitments, "commitments");
  reg(MsgKind::kLambdaPsi, "lambda_psi");
  reg(MsgKind::kWinnerShares, "winner_shares");
  reg(MsgKind::kReducedLambdaPsi, "reduced_lambda_psi");
  reg(MsgKind::kPaymentClaim, "payment_claim");
  reg(MsgKind::kAbort, "abort");
  return true;
}();

}  // namespace

const char* to_string(AbortReason reason) {
  switch (reason) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kMalformedMessage:
      return "malformed-message";
    case AbortReason::kMissingShares:
      return "missing-shares";
    case AbortReason::kMissingCommitments:
      return "missing-commitments";
    case AbortReason::kBadShareCommitment:
      return "bad-share-commitment";
    case AbortReason::kMissingLambdaPsi:
      return "missing-lambda-psi";
    case AbortReason::kBadLambdaPsi:
      return "bad-lambda-psi";
    case AbortReason::kFirstPriceUnresolved:
      return "first-price-unresolved";
    case AbortReason::kMissingDisclosure:
      return "missing-disclosure";
    case AbortReason::kBadDisclosure:
      return "bad-disclosure";
    case AbortReason::kNoWinner:
      return "no-winner";
    case AbortReason::kBadReducedLambdaPsi:
      return "bad-reduced-lambda-psi";
    case AbortReason::kSecondPriceUnresolved:
      return "second-price-unresolved";
    case AbortReason::kPaymentDisagreement:
      return "payment-disagreement";
    case AbortReason::kMissingPaymentClaim:
      return "missing-payment-claim";
    case AbortReason::kQuorumLost:
      return "quorum-lost";
  }
  return "?";
}

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kBidding:
      return "II bidding";
    case Phase::kLambdaPsi:
      return "III.1-2 lambda/psi";
    case Phase::kWinner:
      return "III.3 winner";
    case Phase::kSecondPrice:
      return "III.4 second price";
    case Phase::kPayments:
      return "IV payments";
    case Phase::kCount:
      break;
  }
  return "?";
}

}  // namespace dmw::proto
