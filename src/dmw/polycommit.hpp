// Per-(agent, task) bid polynomials, shares and commitment vectors
// (paper §3, Phase II and the verification identities (7)-(9) of Phase III).
//
// For a bid y with tau = sigma - y the agent samples (all with zero constant
// term, uniformly random coefficients, exact degree):
//     e  of degree tau          (bid encoding)
//     f  of degree sigma - tau  (winner-identification witness)
//     g  of degree sigma        (mask for the product commitment O)
//     h  of degree sigma        (mask shared by the Q and R commitments)
// and publishes commitment vectors of length sigma:
//     O_l = z1^{v_l} z2^{c_l}           (v = coefficients of e*f)
//     Q_l = z1^{a_l} z2^{d_l} (l <= tau),        z2^{d_l} otherwise
//     R_l = z1^{b_l} z2^{d_l} (l <= sigma-tau),  z2^{d_l} otherwise
// where a, b, c, d are the coefficients of e, f, g, h respectively.
// The z2-only entries are indistinguishable from full commitments under DL,
// so the commitment vectors do not reveal tau (i.e. the bid).
#pragma once

#include <vector>

#include "dmw/params.hpp"
#include "numeric/multiexp.hpp"
#include "poly/polynomial.hpp"
#include "support/secret.hpp"

namespace dmw::proto {

/// The secret polynomial bundle of one agent for one task.
template <dmw::num::GroupBackend G>
struct BidPolynomials {
  using Poly = poly::Polynomial<G>;

  mech::Cost bid = 0;
  std::size_t tau = 0;
  Poly e, f, g, h;

  template <class Rng>
  static BidPolynomials sample(const PublicParams<G>& params, mech::Cost bid,
                               Rng& rng) {
    const std::size_t sigma = params.sigma();
    const std::size_t tau = params.degree_for_bid(bid);
    BidPolynomials out;
    out.bid = bid;
    out.tau = tau;
    out.e = Poly::random_zero_const(params.group(), tau, rng);
    out.f = Poly::random_zero_const(params.group(), sigma - tau, rng);
    out.g = Poly::random_zero_const(params.group(), sigma, rng);
    out.h = Poly::random_zero_const(params.group(), sigma, rng);
    return out;
  }

  /// Secret-hygiene hook: the bundle *is* the agent's private bid (tau is
  /// the degree encoding), so Secret<BidPolynomials> wipes everything.
  void wipe_secret() noexcept {
    e.wipe_secret();
    f.wipe_secret();
    g.wipe_secret();
    h.wipe_secret();
    secure_wipe(&bid, sizeof(bid));
    secure_wipe(&tau, sizeof(tau));
  }
};

/// The four shares agent i sends privately to agent k (paper II.2):
/// e_i(alpha_k), f_i(alpha_k), g_i(alpha_k), h_i(alpha_k).
template <dmw::num::GroupBackend G>
struct ShareBundle {
  using Scalar = typename G::Scalar;
  Scalar e, f, g, h;

  static ShareBundle from_polys(const G& group, const BidPolynomials<G>& polys,
                                const Scalar& alpha) {
    return ShareBundle{polys.e.eval(group, alpha), polys.f.eval(group, alpha),
                       polys.g.eval(group, alpha), polys.h.eval(group, alpha)};
  }
};

/// The published commitment vectors O, Q, R (paper II.3), each of length
/// sigma, index l-1 holding the commitment for power l.
template <dmw::num::GroupBackend G>
struct CommitmentVectors {
  using Elem = typename G::Elem;
  std::vector<Elem> O, Q, R;

  static CommitmentVectors commit(const PublicParams<G>& params,
                                  const BidPolynomials<G>& polys) {
    using Scalar = typename G::Scalar;
    const G& g = params.group();
    const std::size_t sigma = params.sigma();
    const auto product = polys.e.mul(g, polys.f);  // degree exactly sigma
    // The 3*sigma commitments are independent, so each vector goes through
    // the batched fixed-base path (commit_many): the lane engine scans
    // kLanes commitments per table row when the simd policy engages, and
    // degenerates to the exact commit() loop otherwise — values and
    // OpCounts identical either way.
    std::vector<Scalar> v(sigma), a(sigma), b(sigma), c(sigma), d(sigma);
    for (std::size_t l = 1; l <= sigma; ++l) {
      v[l - 1] = product.coeff(g, l);
      // a_l and b_l are zero beyond the polynomial degrees, so commit()
      // degenerates to the z2-only form exactly where the paper specifies.
      a[l - 1] = polys.e.coeff(g, l);
      b[l - 1] = polys.f.coeff(g, l);
      c[l - 1] = polys.g.coeff(g, l);
      d[l - 1] = polys.h.coeff(g, l);
    }
    CommitmentVectors out;
    out.O.resize(sigma);
    out.Q.resize(sigma);
    out.R.resize(sigma);
    g.commit_many(v.data(), c.data(), out.O.data(), sigma);
    g.commit_many(a.data(), d.data(), out.Q.data(), sigma);
    g.commit_many(b.data(), d.data(), out.R.data(), sigma);
    return out;
  }

  bool well_formed(const PublicParams<G>& params) const {
    const std::size_t sigma = params.sigma();
    return O.size() == sigma && Q.size() == sigma && R.size() == sigma;
  }
};

/// Reusable evaluator for prod_l C_l^{alpha^l} over a fixed commitment
/// vector C — the right-hand side of the verification identities (7)-(9).
/// Wraps a windowed-Straus MultiExpCache (numeric/multiexp.hpp): the
/// per-base odd-power tables (and, for GroupBig, the Montgomery-domain
/// conversion of every C_l) are built once and amortize across every
/// pseudonym alpha the vector is evaluated at — Phase III evaluates each
/// vector at all n pseudonyms.
template <dmw::num::GroupBackend G>
class CommitmentEvalCache {
 public:
  CommitmentEvalCache(const G& g, const std::vector<typename G::Elem>& c)
      : g_(&g), cache_(g, std::span<const typename G::Elem>(c),
                       g.scalar_bits()) {}

  typename G::Elem eval(const typename G::Scalar& alpha) const {
    const G& g = *g_;
    std::vector<typename G::Scalar> powers;
    powers.reserve(cache_.size());
    typename G::Scalar power = alpha;  // alpha^l, starting at l=1
    for (std::size_t idx = 0; idx < cache_.size(); ++idx) {
      powers.push_back(power);
      power = g.smul(power, alpha);
    }
    return cache_.eval(powers);
  }

 private:
  const G* g_;
  dmw::num::MultiExpCache<G> cache_;
};

/// One-shot prod_l C_l^{alpha^l}. Builds the windowed tables for this single
/// evaluation; use CommitmentEvalCache when evaluating the same vector at
/// several pseudonyms.
template <dmw::num::GroupBackend G>
typename G::Elem commitment_eval(const G& g,
                                 const std::vector<typename G::Elem>& c,
                                 const typename G::Scalar& alpha) {
  return CommitmentEvalCache<G>(g, c).eval(alpha);
}

/// Naive variant (independent exponentiations); kept for the ablation
/// benchmark and as a differential-testing oracle.
template <dmw::num::GroupBackend G>
typename G::Elem commitment_eval_naive(const G& g,
                                       const std::vector<typename G::Elem>& c,
                                       const typename G::Scalar& alpha) {
  typename G::Elem acc = g.identity();
  typename G::Scalar power = alpha;
  for (std::size_t idx = 0; idx < c.size(); ++idx) {
    acc = g.mul(acc, g.pow(c[idx], power));
    power = g.smul(power, alpha);
  }
  return acc;
}

/// Eq. (7): z1^{e(alpha) f(alpha)} z2^{g(alpha)} == prod O_l^{alpha^l}.
/// Proves deg(e*f) <= sigma with zero coefficients at x^0 and x^1.
template <dmw::num::GroupBackend G>
bool verify_product_commitment(const G& g, const ShareBundle<G>& shares,
                               const std::vector<typename G::Elem>& O,
                               const typename G::Scalar& alpha) {
  const auto lhs = g.commit(g.smul(shares.e, shares.f), shares.g);
  return lhs == commitment_eval(g, O, alpha);
}

/// Gamma_{i,k} (Eq. (8) RHS): prod Q_{k,l}^{alpha_i^l} = z1^{e_k(a_i)} z2^{h_k(a_i)}.
template <dmw::num::GroupBackend G>
typename G::Elem gamma_value(const G& g,
                             const std::vector<typename G::Elem>& Q,
                             const typename G::Scalar& alpha) {
  return commitment_eval(g, Q, alpha);
}

/// Phi_{i,k} (Eq. (9) RHS): prod R_{k,l}^{alpha_i^l} = z1^{f_k(a_i)} z2^{h_k(a_i)}.
template <dmw::num::GroupBackend G>
typename G::Elem phi_value(const G& g,
                           const std::vector<typename G::Elem>& R,
                           const typename G::Scalar& alpha) {
  return commitment_eval(g, R, alpha);
}

/// Eq. (8): z1^{e(alpha)} z2^{h(alpha)} == Gamma.
template <dmw::num::GroupBackend G>
bool verify_eh_commitment(const G& g, const ShareBundle<G>& shares,
                          const typename G::Elem& gamma) {
  return g.commit(shares.e, shares.h) == gamma;
}

/// Eq. (9): z1^{f(alpha)} z2^{h(alpha)} == Phi.
template <dmw::num::GroupBackend G>
bool verify_fh_commitment(const G& g, const ShareBundle<G>& shares,
                          const typename G::Elem& phi) {
  return g.commit(shares.f, shares.h) == phi;
}

}  // namespace dmw::proto
