// The DMW agent state machine (paper §3, Phases II-IV).
//
// Each agent owns its secrets (bid polynomials), verifies everything it can
// observe, and aborts the protocol the moment a check fails — the behaviour
// the faithfulness proof (Thms. 4, 8) relies on. The runner drives agents
// through the phase steps in lockstep, mirroring the implicit
// synchronization point II.4; all communication flows through SimNetwork so
// traffic statistics are real.
//
// Efficiency note (Thm. 12): verifying Eq. (11) for every publisher naively
// costs O(n^3 log p) per task because Gamma_{i,l} depends on both the
// verifier's pseudonym and the publisher. We instead aggregate the
// commitment vectors once per task — Qhat_l = prod_l' Q_{l',l} — after which
// prod_l Gamma_{i,l} == commitment_eval(Qhat, alpha_i), restoring the
// claimed O(m n^2 log p) bound. The same aggregate serves Eq. (13) via Rhat.
//
// Execution model: every phase is split into a per-agent *ingest* step
// (drains the inbox / bulletin and touches cross-task members: transcript,
// peer keys, bids) and per-task *compute* steps that read shared-const state
// and write only their own TaskView. The classic phase methods are wrappers
// chaining ingest -> per-task loop -> commit_task_failures(); the
// task-parallel driver (dmw/parallel.hpp) runs the same pieces with the
// per-task steps sharded across ThreadPool workers. Per-task randomness
// comes from an independent ChaCha stream keyed by (master seed, task id),
// so sampled polynomials are identical no matter which worker — or how many
// workers — execute the task. Failed checks are *recorded* per task and
// committed at the stage barrier as a single abort on the lowest failing
// task, which is exactly the abort the historical sequential scan (tasks in
// ascending order, stop at first failure) produced.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "crypto/aead.hpp"
#include "crypto/chacha.hpp"
#include "crypto/dh.hpp"
#include "crypto/transcript.hpp"
#include "dmw/batchverify.hpp"
#include "dmw/messages.hpp"
#include "dmw/params.hpp"
#include "dmw/polycommit.hpp"
#include "dmw/strategy.hpp"
#include "net/network.hpp"
#include "poly/lagrange.hpp"
#include "support/logging.hpp"
#include "support/secret.hpp"
#include "support/trace.hpp"

namespace dmw::proto {

/// Resolved auction result for one task, as seen by one agent.
template <dmw::num::GroupBackend G>
struct TaskView {
  // Phase II inputs. The polynomial bundle and incoming shares are the
  // losing-bid witnesses Thm. 10's privacy argument protects: both live
  // behind the secret-hygiene wrapper and are zeroized with the view.
  std::optional<Secret<BidPolynomials<G>>> secrets;
  std::vector<std::optional<Secret<ShareBundle<G>>>> shares_in;  // by sender
  std::vector<std::optional<CommitmentVectors<G>>> commitments;  // by agent
  /// Participation mask: false for agents that posted no commitments and are
  /// treated as crashed (crash-tolerant mode only; everyone is alive in the
  /// strict protocol). All honest agents agree on this mask because it is a
  /// function of the shared bulletin.
  std::vector<bool> alive;

  // Aggregated commitment vectors (see header comment).
  std::vector<typename G::Elem> qhat, rhat;

  // Phase III state.
  std::vector<std::optional<typename G::Elem>> lambda, psi;       // by agent
  std::vector<std::optional<std::vector<typename G::Scalar>>> disclosures;
  std::vector<std::optional<typename G::Elem>> lambda_red, psi_red;

  std::optional<mech::Cost> first_price;
  std::optional<std::size_t> winner;
  std::optional<mech::Cost> second_price;
};

template <dmw::num::GroupBackend G>
class DmwAgent {
 public:
  DmwAgent(const PublicParams<G>& params, std::size_t id,
           std::vector<mech::Cost> true_costs, Strategy<G>& strategy,
           std::uint64_t secret_seed, bool encrypt_channels = true)
      : params_(params),
        id_(id),
        true_costs_(std::move(true_costs)),
        strategy_(strategy),
        secret_seed_(secret_seed),
        rng_(crypto::ChaChaRng::from_seed(secret_seed, id)),
        transcript_("dmw-session"),
        tasks_(params.m()),
        task_failures_(params.m()),
        encrypt_(encrypt_channels),
        dh_(crypto::DhKeyPair<G>::generate(params.group(), rng_)),
        peer_keys_(params.n()) {
    DMW_REQUIRE(id_ < params_.n());
    DMW_REQUIRE(true_costs_.size() == params_.m());
    build_stream_caches();
    for (auto& view : tasks_) {
      view.shares_in.assign(params_.n(), std::nullopt);
      view.commitments.assign(params_.n(), std::nullopt);
      view.alive.assign(params_.n(), true);
      view.lambda.assign(params_.n(), std::nullopt);
      view.psi.assign(params_.n(), std::nullopt);
      view.disclosures.assign(params_.n(), std::nullopt);
      view.lambda_red.assign(params_.n(), std::nullopt);
      view.psi_red.assign(params_.n(), std::nullopt);
    }
  }

  std::size_t id() const { return id_; }
  bool aborted() const { return abort_.has_value(); }
  /// True when a fail-silent strategy stopped this agent without an abort.
  bool halted() const { return halted_; }
  /// No further participation: either aborted (with broadcast) or halted.
  bool stopped() const { return aborted() || halted_; }
  std::optional<AbortMsg> abort_record() const { return abort_; }
  const std::vector<mech::Cost>& bids() const { return bids_; }
  const crypto::Transcript& transcript() const { return transcript_; }

  /// Resolved outcome views (valid only after the corresponding step).
  const TaskView<G>& task_view(std::size_t task) const {
    DMW_REQUIRE(task < tasks_.size());
    return tasks_[task];
  }

  // ---- Channel setup -------------------------------------------------------

  /// Publish the Diffie-Hellman public key that peers use to seal the
  /// private-channel traffic ("securely transmits the shares", II.2).
  void phase0_publish_key(net::SimNetwork& net) {
    if (stopped() || !encrypt_) return;
    DMW_SPAN("phase0/publish_key", id_);
    typename G::Elem public_key = dh_.public_key;
    if (!strategy_.edit_key_exchange(public_key)) return;  // withheld
    KeyExchangeMsg<G> msg{public_key};
    net.publish(static_cast<net::AgentId>(id_),
                static_cast<std::uint32_t>(MsgKind::kKeyExchange),
                msg.encode(params_.group()));
  }

  // ---- Phase II ------------------------------------------------------------

  /// II.1 ingest: absorb peers' DH keys, choose bids, derive every channel
  /// key eagerly (the per-task send steps then only *read* the key caches,
  /// which keeps them safe to run concurrently).
  void phase2_prepare(net::SimNetwork& net) {
    if (stopped()) return;
    DMW_SPAN("phase2/prepare", id_);
    absorb_bulletin(net);  // peers' DH keys
    bids_ = strategy_.choose_bids(true_costs_, params_.bid_set());
    DMW_CHECK_MSG(bids_.size() == params_.m(), "strategy returned bad bids");
    derive_channel_keys();
  }

  /// II.2-II.3 for one task: sample the bid polynomials from the task's own
  /// ChaCha stream, distribute shares over the private channels, publish
  /// commitments. Writes only tasks_[task].
  void phase2_send_task(net::SimNetwork& net, std::size_t j) {
    if (stopped()) return;
    DMW_SPAN("phase2/send_task", j);
    const G& g = params_.group();
    auto& view = tasks_[j];
    crypto::ChaChaRng rng = task_rng(j);
    view.secrets = Secret<BidPolynomials<G>>(
        BidPolynomials<G>::sample(params_, bids_[j], rng));

    for (std::size_t k = 0; k < params_.n(); ++k) {
      Secret<ShareBundle<G>> bundle(ShareBundle<G>::from_polys(
          g, view.secrets->reveal(), params_.pseudonym(k)));
      if (k == id_) {
        view.shares_in[id_] = bundle;  // my own shares, kept locally
        continue;
      }
      if (!strategy_.edit_share(j, k, bundle.reveal_mut())) continue;
      SharesMsg<G> msg{static_cast<std::uint32_t>(j), bundle.reveal()};
      std::vector<std::uint8_t> payload = msg.encode(g);
      if (encrypt_) {
        // No published key means the peer cannot open anything we send;
        // skip (a silent peer is handled by the crash/abort logic).
        if (!peer_keys_[k]) continue;
        // Wire format: cleartext 4-byte nonce (the task id, one use per
        // directional key) followed by ciphertext||tag.
        const auto sealed =
            crypto::aead_seal(channel_key(k, /*outbound=*/true),
                              /*nonce=*/j, payload, channel_aad(id_, k));
        net::Writer wrapper;
        wrapper.u32(static_cast<std::uint32_t>(j));
        wrapper.raw(sealed);
        payload = wrapper.take();
      }
      net.send(static_cast<net::AgentId>(id_), static_cast<net::AgentId>(k),
               static_cast<std::uint32_t>(MsgKind::kShares),
               std::move(payload));
    }

    CommitmentVectors<G> commitments =
        CommitmentVectors<G>::commit(params_, view.secrets->reveal());
    if (!strategy_.edit_commitments(j, commitments)) return;  // withheld
    CommitmentsMsg<G> msg{static_cast<std::uint32_t>(j),
                          std::move(commitments)};
    net.publish(static_cast<net::AgentId>(id_),
                static_cast<std::uint32_t>(MsgKind::kCommitments),
                msg.encode(g));
  }

  /// II.1-II.3: choose bids, sample polynomials, distribute shares over the
  /// private channels and publish commitments.
  void phase2_bid_and_send(net::SimNetwork& net) {
    if (stopped()) return;
    phase2_prepare(net);
    for (std::size_t j = 0; j < params_.m(); ++j) phase2_send_task(net, j);
  }

  // ---- Phase III -----------------------------------------------------------

  /// III.1 ingest: open the sealed share envelopes and absorb the published
  /// commitments. Touches every TaskView, so it runs per-agent, before the
  /// per-task verification steps.
  void phase3_ingest(net::SimNetwork& net) {
    if (stopped()) return;
    DMW_SPAN("phase3/ingest", id_);
    drain_unicasts(net);
    absorb_bulletin(net);
  }

  /// Bulletin catch-up for the verification steps of III.2-III.4 (no inbox
  /// traffic in those rounds).
  void absorb_published(net::SimNetwork& net) {
    if (stopped()) return;
    DMW_SPAN("phase3/absorb_published", id_);
    absorb_bulletin(net);
  }

  /// III.1 for one task: verify Eqs. (7)-(9) and build the Qhat/Rhat
  /// aggregates. Failures are recorded, not thrown: commit_task_failures()
  /// turns the lowest failing task into the abort broadcast.
  ///
  /// With params.batch_verify() (the default) all 3*(n-1) commitment checks
  /// of the task fold into one RLC batch (dmw/batchverify.hpp): one
  /// fixed-base commitment on the left against one long multi-exponentiation
  /// on the right. An honest transcript always passes the batch (the fold is
  /// exact); any presence/shape problem or a failed batch delegates to the
  /// sequential scan, whose early-return order is what assigns the abort —
  /// so AbortReason records are byte-identical in both modes.
  void phase3_verify_task(net::SimNetwork& net, std::size_t j) {
    if (stopped()) return;
    DMW_SPAN("phase3/verify_shares", j);
    (void)net;
    if (!params_.batch_verify()) return phase3_verify_task_sequential(j);
    const G& g = params_.group();
    auto& view = tasks_[j];
    // Presence / well-formedness scan, ascending k, with the same
    // crash-handling side effects as the sequential path (idempotent, so
    // the fallback below can replay them safely). Attributing any failure
    // here needs the sequential interleaving of presence and value checks —
    // delegate the whole task.
    for (std::size_t k = 0; k < params_.n(); ++k) {
      if (!view.commitments[k]) {
        if (params_.crash_tolerant()) {
          view.alive[k] = false;
          view.shares_in[k].reset();  // ignore any stray shares it sent
          continue;
        }
        return phase3_verify_task_sequential(j);
      }
      if (!view.shares_in[k] || !view.commitments[k]->well_formed(params_))
        return phase3_verify_task_sequential(j);
    }
    // alpha_i^{l+1} for l = 0..sigma-1, shared by all three equations of
    // every peer: the precomputed PublicParams row, never rebuilt per task.
    const std::size_t sigma = params_.sigma();
    const auto& apow = params_.pseudonym_powers(id_);
    BatchVerifier<G> batch(g, rlc_rng(j, kRlcStageVerify));
    for (std::size_t k = 0; k < params_.n(); ++k) {
      if (!view.alive[k]) continue;
      const auto& commitments = *view.commitments[k];
      const auto& shares = view.shares_in[k]->reveal();
      // Eq. (7): commit(e*f, g) == prod_l O_l^{alpha_i^l}.
      const auto r7 = batch.draw();
      batch.fold_commit(r7, g.smul(shares.e, shares.f), shares.g);
      for (std::size_t l = 0; l < sigma; ++l)
        batch.rhs_term(commitments.O[l], g.smul(r7, apow[l]));
      // Eq. (8): commit(e, h) == prod_l Q_l^{alpha_i^l}.
      const auto r8 = batch.draw();
      batch.fold_commit(r8, shares.e, shares.h);
      for (std::size_t l = 0; l < sigma; ++l)
        batch.rhs_term(commitments.Q[l], g.smul(r8, apow[l]));
      // Eq. (9): commit(f, h) == prod_l R_l^{alpha_i^l}.
      const auto r9 = batch.draw();
      batch.fold_commit(r9, shares.f, shares.h);
      for (std::size_t l = 0; l < sigma; ++l)
        batch.rhs_term(commitments.R[l], g.smul(r9, apow[l]));
    }
    if (!batch.verify()) {
      DMW_COUNT("batchverify/replays", 1);
      return phase3_verify_task_sequential(j);
    }
    DMW_COUNT("batchverify/batches", 1);
    DMW_COUNT("batchverify/checks_batched", batch.checks());
    finish_verified_task(j);
  }

  /// III.1: collect shares + commitments, verify Eqs. (7)-(9), and build
  /// the Qhat/Rhat aggregates.
  void phase3_collect_and_verify(net::SimNetwork& net) {
    if (stopped()) return;
    phase3_ingest(net);
    for (std::size_t j = 0; j < params_.m(); ++j) phase3_verify_task(net, j);
    commit_task_failures(net);
  }

  /// III.2 (Eq. 10) for one task: publish Lambda_i = z1^{E(alpha_i)},
  /// Psi_i = z2^{H(alpha_i)}.
  void phase3_lambda_task(net::SimNetwork& net, std::size_t j) {
    if (stopped()) return;
    DMW_SPAN("phase3/lambda_psi", j);
    const G& g = params_.group();
    {
      auto& view = tasks_[j];
      typename G::Scalar e_sum = g.szero();
      typename G::Scalar h_sum = g.szero();
      for (std::size_t k = 0; k < params_.n(); ++k) {
        if (!view.alive[k]) continue;
        e_sum = g.sadd(e_sum, view.shares_in[k]->reveal().e);
        h_sum = g.sadd(h_sum, view.shares_in[k]->reveal().h);
      }
      typename G::Elem lambda = g.pow(g.z1(), e_sum);
      typename G::Elem psi = g.pow(g.z2(), h_sum);
      if (!strategy_.edit_lambda_psi(j, lambda, psi)) return;  // withheld
      LambdaPsiMsg<G> msg{static_cast<std::uint32_t>(j), lambda, psi};
      net.publish(static_cast<net::AgentId>(id_),
                  static_cast<std::uint32_t>(MsgKind::kLambdaPsi),
                  msg.encode(g));
    }
  }

  /// III.2 (Eq. 10): publish Lambda/Psi for every task.
  void phase3_publish_lambda_psi(net::SimNetwork& net) {
    if (stopped()) return;
    for (std::size_t j = 0; j < params_.m(); ++j) phase3_lambda_task(net, j);
  }

  /// III.2 verification (Eq. 11) for one task. Batched by default: one RLC
  /// coefficient per publisher folds prod_k (Lambda_k Psi_k)^{r_k} against
  /// prod_l Qhat_l^{w_l} with merged weights w_l = sum_k r_k alpha_k^{l+1} —
  /// sigma right-hand bases total, instead of one full commitment
  /// evaluation per publisher. Presence failures and batch mismatches
  /// delegate to the sequential scan for attribution.
  void phase3_first_price_checks_task(net::SimNetwork& net, std::size_t j) {
    if (stopped()) return;
    DMW_SPAN("phase3/first_price_checks", j);
    (void)net;
    if (!params_.batch_verify()) return phase3_first_price_checks_sequential(j);
    const G& g = params_.group();
    auto& view = tasks_[j];
    for (std::size_t k = 0; k < params_.n(); ++k) {
      if (!view.alive[k]) continue;  // crashed agents publish nothing
      if (!view.lambda[k] || !view.psi[k]) {
        // A participant that fell silent after Phase II: tolerated as a
        // lost resolution point in crash-tolerant mode, fatal otherwise.
        if (params_.crash_tolerant()) continue;
        return phase3_first_price_checks_sequential(j);
      }
    }
    const std::size_t sigma = params_.sigma();
    std::vector<typename G::Scalar> weights(sigma, g.szero());
    BatchVerifier<G> batch(g, rlc_rng(j, kRlcStageFirstPrice));
    for (std::size_t k = 0; k < params_.n(); ++k) {
      if (!view.alive[k] || !view.lambda[k] || !view.psi[k]) continue;
      const auto r = batch.draw();
      batch.lhs_term(g.mul(*view.lambda[k], *view.psi[k]), r);
      const auto& kpow = params_.pseudonym_powers(k);
      for (std::size_t l = 0; l < sigma; ++l)
        weights[l] = g.sadd(weights[l], g.smul(r, kpow[l]));
    }
    for (std::size_t l = 0; l < sigma; ++l)
      batch.rhs_term(view.qhat[l], weights[l]);
    if (!batch.verify()) {
      DMW_COUNT("batchverify/replays", 1);
      return phase3_first_price_checks_sequential(j);
    }
    DMW_COUNT("batchverify/batches", 1);
    DMW_COUNT("batchverify/checks_batched", batch.checks());
  }

  /// First-price resolution (Eq. 12) for one task: least s with
  /// z1^{E^{(s)}(0)} == 1; degree = s - 1. Skips tasks the checks already
  /// doomed. Idempotent, so benchmarks may re-run it.
  void phase3_first_price_resolve_task(net::SimNetwork& net, std::size_t j) {
    if (stopped()) return;
    (void)net;
    if (task_failures_[j]) return;
    DMW_SPAN("phase3/price_resolution", j);
    const G& g = params_.group();
    auto& view = tasks_[j];
    std::vector<typename G::Scalar> points;
    std::vector<typename G::Elem> lambdas;
    points.reserve(params_.n());
    lambdas.reserve(params_.n());
    for (std::size_t k = 0; k < params_.n(); ++k) {
      if (!view.alive[k] || !view.lambda[k] || !view.psi[k]) continue;
      points.push_back(params_.pseudonym(k));
      lambdas.push_back(*view.lambda[k]);
    }
    const auto resolution =
        poly::resolve_degree_in_exponent(g, points, lambdas);
    if (!resolution.degree || !params_.degree_is_valid_bid(*resolution.degree))
      return record_failure(j, AbortReason::kFirstPriceUnresolved);
    view.first_price = params_.bid_for_degree(*resolution.degree);
  }

  /// III.2 verification (Eq. 11) + first-price resolution (Eq. 12) for one
  /// task.
  void phase3_first_price_task(net::SimNetwork& net, std::size_t j) {
    phase3_first_price_checks_task(net, j);
    phase3_first_price_resolve_task(net, j);
  }

  /// III.2 verification + first-price resolution across every task.
  void phase3_verify_and_resolve_first_price(net::SimNetwork& net) {
    if (stopped()) return;
    absorb_published(net);
    for (std::size_t j = 0; j < params_.m(); ++j)
      phase3_first_price_task(net, j);
    commit_task_failures(net);
  }

  /// III.3 disclosure for one task: the first y*+1 agents publish the
  /// f-shares they hold.
  void phase3_disclose_task(net::SimNetwork& net, std::size_t j) {
    if (stopped()) return;
    DMW_SPAN("phase3/disclose", j);
    const G& g = params_.group();
    {
      auto& view = tasks_[j];
      // Prescribed disclosers: the first y*+1 participants in pseudonym
      // order; crash-tolerant runs add c backups so up to c silent
      // disclosers cannot deadlock winner identification (cf. Thm. 8's
      // "any of the other properly functioning agents can transmit").
      const std::size_t needed = *view.first_price + 1 +
                                 (params_.crash_tolerant() ? params_.c() : 0);
      bool should_disclose = false;
      std::size_t alive_rank = 0;
      for (std::size_t k = 0; k <= id_; ++k) {
        if (!view.alive[k]) continue;
        ++alive_rank;
        if (k == id_) should_disclose = alive_rank <= needed;
      }
      std::vector<typename G::Scalar> f_shares;
      f_shares.reserve(params_.n());
      for (std::size_t k = 0; k < params_.n(); ++k)
        f_shares.push_back(view.alive[k] ? view.shares_in[k]->reveal().f
                                         : g.szero());
      if (!strategy_.edit_disclosure(j, should_disclose, f_shares)) return;
      WinnerSharesMsg<G> msg{static_cast<std::uint32_t>(j),
                             std::move(f_shares)};
      net.publish(static_cast<net::AgentId>(id_),
                  static_cast<std::uint32_t>(MsgKind::kWinnerShares),
                  msg.encode(g));
    }
  }

  /// III.3 disclosure across every task.
  void phase3_disclose(net::SimNetwork& net) {
    if (stopped()) return;
    for (std::size_t j = 0; j < params_.m(); ++j) phase3_disclose_task(net, j);
  }

  /// III.3 winner identification for one task: verify disclosures (Eq. 13),
  /// interpolate every f at the disclosed points (Eq. 14), pick the winner
  /// (smallest pseudonym on ties).
  void phase3_winner_task(net::SimNetwork& net, std::size_t j) {
    if (stopped()) return;
    DMW_SPAN("phase3/winner", j);
    (void)net;
    const G& g = params_.group();
    {
      auto& view = tasks_[j];
      const std::size_t needed = *view.first_price + 1;

      // Validate each disclosure with Eq. (13) and keep the valid ones.
      std::vector<std::size_t> valid_disclosers;
      const CommitmentEvalCache<G> rhat_eval(g, view.rhat);
      for (std::size_t k = 0; k < params_.n(); ++k) {
        if (!view.alive[k] || !view.disclosures[k]) continue;
        const auto& disclosed = *view.disclosures[k];
        if (disclosed.size() != params_.n()) {
          view.disclosures[k].reset();
          continue;
        }
        if (!view.psi[k]) continue;
        typename G::Scalar f_sum = g.szero();
        for (std::size_t l = 0; l < params_.n(); ++l) {
          if (view.alive[l]) f_sum = g.sadd(f_sum, disclosed[l]);
        }
        const auto lhs = g.mul(g.pow(g.z1(), f_sum), *view.psi[k]);
        const auto rhs = rhat_eval.eval(params_.pseudonym(k));
        if (lhs != rhs) return record_failure(j, AbortReason::kBadDisclosure);
        valid_disclosers.push_back(k);
        if (valid_disclosers.size() == needed) break;
      }
      if (valid_disclosers.size() < needed)
        return record_failure(j, AbortReason::kMissingDisclosure);

      // Interpolate each agent's f over the disclosed points; the winner's
      // f (degree y*) vanishes at zero with y*+1 points (Eq. 14). Every
      // candidate interpolates over the same point set, so the Lagrange
      // basis at zero — and its one batched field inversion — is hoisted
      // out of the candidate loop; per candidate only the dot product with
      // the disclosed values remains.
      std::vector<typename G::Scalar> points;
      points.reserve(needed);
      for (std::size_t k : valid_disclosers)
        points.push_back(params_.pseudonym(k));
      const auto rho = poly::lagrange_basis_at_zero(g, points, needed);
      std::optional<std::size_t> winner;
      for (std::size_t candidate = 0; candidate < params_.n(); ++candidate) {
        if (!view.alive[candidate]) continue;
        typename G::Scalar at_zero = g.szero();
        for (std::size_t t = 0; t < needed; ++t) {
          at_zero = g.sadd(
              at_zero,
              g.smul((*view.disclosures[valid_disclosers[t]])[candidate],
                     rho[t]));
        }
        if (at_zero == g.szero()) {
          winner = candidate;  // smallest pseudonym first: loop order
          break;
        }
      }
      if (!winner) return record_failure(j, AbortReason::kNoWinner);
      view.winner = winner;
    }
  }

  /// III.3 winner identification across every task.
  void phase3_identify_winner(net::SimNetwork& net) {
    if (stopped()) return;
    absorb_published(net);
    for (std::size_t j = 0; j < params_.m(); ++j) phase3_winner_task(net, j);
    commit_task_failures(net);
  }

  /// III.4 (Eq. 15) for one task: publish the winner-excluded Lambda/Psi.
  void phase3_reduced_task(net::SimNetwork& net, std::size_t j) {
    if (stopped()) return;
    DMW_SPAN("phase3/reduced_lambda_psi", j);
    const G& g = params_.group();
    {
      auto& view = tasks_[j];
      const std::size_t w = *view.winner;
      // An agent that never published its own Lambda/Psi (e.g. a deviant
      // strategy suppressed them in a crash-tolerant run) has nothing to
      // reduce.
      if (!view.lambda[id_] || !view.psi[id_]) return;
      // Lambda_i / z1^{e_*(alpha_i)}, Psi_i / z2^{h_*(alpha_i)}: I know the
      // winner's shares at my own pseudonym.
      typename G::Elem lambda = g.mul(
          *view.lambda[id_],
          g.inv(g.pow(g.z1(), view.shares_in[w]->reveal().e)));
      typename G::Elem psi = g.mul(
          *view.psi[id_],
          g.inv(g.pow(g.z2(), view.shares_in[w]->reveal().h)));
      if (!strategy_.edit_reduced_lambda_psi(j, lambda, psi)) return;
      LambdaPsiMsg<G> msg{static_cast<std::uint32_t>(j), lambda, psi};
      net.publish(static_cast<net::AgentId>(id_),
                  static_cast<std::uint32_t>(MsgKind::kReducedLambdaPsi),
                  msg.encode(g));
    }
  }

  /// III.4 (Eq. 15): publish the reduced Lambda/Psi for every task.
  void phase3_publish_reduced(net::SimNetwork& net) {
    if (stopped()) return;
    for (std::size_t j = 0; j < params_.m(); ++j) phase3_reduced_task(net, j);
  }

  /// III.4 verification (Eq. 11 excluding the winner) for one task. The
  /// batched form clears the winner's denominator instead of inverting it:
  ///   prod_k (LambdaRed_k PsiRed_k)^{r_k} * prod_l WinnerQ_l^{w_l}
  ///     == prod_l Qhat_l^{w_l},          w_l = sum_k r_k alpha_k^{l+1},
  /// so the batched path needs no group inversions at all. Presence
  /// failures and batch mismatches delegate to the sequential scan.
  void phase3_second_price_checks_task(net::SimNetwork& net, std::size_t j) {
    if (stopped()) return;
    DMW_SPAN("phase3/second_price_checks", j);
    (void)net;
    if (!params_.batch_verify())
      return phase3_second_price_checks_sequential(j);
    const G& g = params_.group();
    auto& view = tasks_[j];
    for (std::size_t k = 0; k < params_.n(); ++k) {
      if (!view.alive[k]) continue;
      if (!view.lambda_red[k] || !view.psi_red[k]) {
        if (params_.crash_tolerant()) continue;  // lost point, not fatal
        return phase3_second_price_checks_sequential(j);
      }
    }
    const auto& winner_commits = *view.commitments[*view.winner];
    const std::size_t sigma = params_.sigma();
    std::vector<typename G::Scalar> weights(sigma, g.szero());
    BatchVerifier<G> batch(g, rlc_rng(j, kRlcStageSecondPrice));
    for (std::size_t k = 0; k < params_.n(); ++k) {
      if (!view.alive[k] || !view.lambda_red[k] || !view.psi_red[k]) continue;
      const auto r = batch.draw();
      batch.lhs_term(g.mul(*view.lambda_red[k], *view.psi_red[k]), r);
      const auto& kpow = params_.pseudonym_powers(k);
      for (std::size_t l = 0; l < sigma; ++l)
        weights[l] = g.sadd(weights[l], g.smul(r, kpow[l]));
    }
    for (std::size_t l = 0; l < sigma; ++l) {
      batch.lhs_term(winner_commits.Q[l], weights[l]);
      batch.rhs_term(view.qhat[l], weights[l]);
    }
    if (!batch.verify()) {
      DMW_COUNT("batchverify/replays", 1);
      return phase3_second_price_checks_sequential(j);
    }
    DMW_COUNT("batchverify/batches", 1);
    DMW_COUNT("batchverify/checks_batched", batch.checks());
  }

  /// Second-price resolution for one task over the reduced Lambda points.
  /// Skips tasks the checks already doomed. Idempotent.
  void phase3_second_price_resolve_task(net::SimNetwork& net, std::size_t j) {
    if (stopped()) return;
    (void)net;
    if (task_failures_[j]) return;
    DMW_SPAN("phase3/second_price_resolution", j);
    const G& g = params_.group();
    auto& view = tasks_[j];
    std::vector<typename G::Scalar> points;
    std::vector<typename G::Elem> lambdas;
    points.reserve(params_.n());
    lambdas.reserve(params_.n());
    for (std::size_t k = 0; k < params_.n(); ++k) {
      if (!view.alive[k] || !view.lambda_red[k] || !view.psi_red[k]) continue;
      points.push_back(params_.pseudonym(k));
      lambdas.push_back(*view.lambda_red[k]);
    }
    const auto resolution =
        poly::resolve_degree_in_exponent(g, points, lambdas);
    if (!resolution.degree || !params_.degree_is_valid_bid(*resolution.degree))
      return record_failure(j, AbortReason::kSecondPriceUnresolved);
    view.second_price = params_.bid_for_degree(*resolution.degree);
  }

  /// III.4 verification + second-price resolution for one task.
  void phase3_second_price_task(net::SimNetwork& net, std::size_t j) {
    phase3_second_price_checks_task(net, j);
    phase3_second_price_resolve_task(net, j);
  }

  /// III.4 verification + second-price resolution across every task.
  void phase3_resolve_second_price(net::SimNetwork& net) {
    if (stopped()) return;
    absorb_published(net);
    for (std::size_t j = 0; j < params_.m(); ++j)
      phase3_second_price_task(net, j);
    commit_task_failures(net);
  }

  // ---- Phase IV ------------------------------------------------------------

  /// IV.1: compute the full payment vector and submit it to the payment
  /// infrastructure (modeled as a published claim).
  void phase4_submit_payment_claim(net::SimNetwork& net) {
    if (stopped()) return;
    DMW_SPAN("phase4/payment_claim", id_);
    std::vector<std::uint64_t> payments(params_.n(), 0);
    for (std::size_t j = 0; j < params_.m(); ++j) {
      const auto& view = tasks_[j];
      payments[*view.winner] += *view.second_price;
    }
    if (!strategy_.edit_payment_claim(payments)) return;  // withheld
    PaymentClaimMsg msg{std::move(payments)};
    net.publish(static_cast<net::AgentId>(id_),
                static_cast<std::uint32_t>(MsgKind::kPaymentClaim),
                msg.encode());
  }

  // ---- Abort semantics -----------------------------------------------------

  /// Stage barrier: turn the recorded per-task failures into the abort
  /// broadcast. The lowest failing task wins, which reproduces bit-for-bit
  /// the abort the historical sequential scan (tasks in ascending order,
  /// stop at the first failure) chose — regardless of which worker found
  /// which failure first. Serial: call from the driver thread only.
  void commit_task_failures(net::SimNetwork& net) {
    if (stopped()) return;
    for (std::size_t j = 0; j < tasks_.size(); ++j) {
      if (task_failures_[j]) return abort(net, j, *task_failures_[j]);
    }
  }

 private:
  /// Record a per-task check failure for the stage barrier to commit. First
  /// reason per task wins (matching the sequential early-return). Safe to
  /// call concurrently for *different* tasks: each slot is written by the
  /// one worker that owns the task.
  void record_failure(std::size_t task, AbortReason reason) {
    if (!task_failures_[task]) task_failures_[task] = reason;
  }

  /// The historical one-check-at-a-time III.1 scan. The batch_verify=false
  /// ablation runs it for every task; the batched path runs it only for a
  /// task whose batch failed (or that has a presence/shape problem), because
  /// its ascending-k early-return order is the definition of which
  /// AbortReason the task gets. All mutations (alive mask, stray-share
  /// reset) are idempotent, so replaying after the batched scan is safe.
  void phase3_verify_task_sequential(std::size_t j) {
    const G& g = params_.group();
    const auto& alpha_i = params_.pseudonym(id_);
    auto& view = tasks_[j];
    for (std::size_t k = 0; k < params_.n(); ++k) {
      if (!view.commitments[k]) {
        // Crash-tolerant mode: an agent that published nothing is treated
        // as crashed and excluded from the auction (Open Problem 11); the
        // strict protocol aborts. An agent that published commitments but
        // withheld shares is an equivocator, not a crash — abort in both
        // modes.
        if (params_.crash_tolerant()) {
          view.alive[k] = false;
          view.shares_in[k].reset();  // ignore any stray shares it sent
          continue;
        }
        return record_failure(j, AbortReason::kMissingCommitments);
      }
      if (!view.shares_in[k])
        return record_failure(j, AbortReason::kMissingShares);
      const auto& commitments = *view.commitments[k];
      if (!commitments.well_formed(params_))
        return record_failure(j, AbortReason::kBadShareCommitment);
      const auto& shares = view.shares_in[k]->reveal();
      if (!verify_product_commitment(g, shares, commitments.O, alpha_i))
        return record_failure(j, AbortReason::kBadShareCommitment);
      const auto gamma = gamma_value<G>(g, commitments.Q, alpha_i);
      if (!verify_eh_commitment(g, shares, gamma))
        return record_failure(j, AbortReason::kBadShareCommitment);
      const auto phi = phi_value<G>(g, commitments.R, alpha_i);
      if (!verify_fh_commitment(g, shares, phi))
        return record_failure(j, AbortReason::kBadShareCommitment);
    }
    finish_verified_task(j);
  }

  /// Shared III.1 epilogue: quorum check, then the Qhat/Rhat aggregates for
  /// Eqs. (11) and (13) over the participating agents only.
  void finish_verified_task(std::size_t j) {
    const G& g = params_.group();
    auto& view = tasks_[j];
    std::size_t alive_count = 0;
    for (std::size_t k = 0; k < params_.n(); ++k)
      if (view.alive[k]) ++alive_count;
    if (alive_count < params_.quorum() || alive_count < 2)
      return record_failure(j, AbortReason::kQuorumLost);
    const std::size_t sigma = params_.sigma();
    view.qhat.assign(sigma, g.identity());
    view.rhat.assign(sigma, g.identity());
    for (std::size_t k = 0; k < params_.n(); ++k) {
      if (!view.alive[k]) continue;
      const auto& commitments = *view.commitments[k];
      for (std::size_t l = 0; l < sigma; ++l) {
        view.qhat[l] = g.mul(view.qhat[l], commitments.Q[l]);
        view.rhat[l] = g.mul(view.rhat[l], commitments.R[l]);
      }
    }
  }

  /// The historical per-publisher Eq. (11) scan (one full commitment
  /// evaluation per publisher), kept as the batch_verify=false ablation and
  /// as the attribution fallback for a failed first-price batch.
  void phase3_first_price_checks_sequential(std::size_t j) {
    const G& g = params_.group();
    auto& view = tasks_[j];
    // One windowed-multiexp cache over Qhat, reused for all n pseudonyms.
    const CommitmentEvalCache<G> qhat_eval(g, view.qhat);
    for (std::size_t k = 0; k < params_.n(); ++k) {
      if (!view.alive[k]) continue;  // crashed agents publish nothing
      if (!view.lambda[k] || !view.psi[k]) {
        if (params_.crash_tolerant()) continue;
        return record_failure(j, AbortReason::kMissingLambdaPsi);
      }
      // Eq. (11): prod_l Gamma_{k,l} == Lambda_k * Psi_k, via the Qhat
      // aggregate evaluated at alpha_k.
      const auto expected = qhat_eval.eval(params_.pseudonym(k));
      if (g.mul(*view.lambda[k], *view.psi[k]) != expected)
        return record_failure(j, AbortReason::kBadLambdaPsi);
    }
  }

  /// The historical winner-excluded Eq. (11) scan: ablation and attribution
  /// fallback for III.4, mirroring phase3_first_price_checks_sequential.
  void phase3_second_price_checks_sequential(std::size_t j) {
    const G& g = params_.group();
    auto& view = tasks_[j];
    const auto& winner_commits = *view.commitments[*view.winner];
    const CommitmentEvalCache<G> qhat_eval(g, view.qhat);
    const CommitmentEvalCache<G> winner_q_eval(g, winner_commits.Q);
    for (std::size_t k = 0; k < params_.n(); ++k) {
      if (!view.alive[k]) continue;
      if (!view.lambda_red[k] || !view.psi_red[k]) {
        if (params_.crash_tolerant()) continue;  // lost point, not fatal
        return record_failure(j, AbortReason::kBadReducedLambdaPsi);
      }
      // Eq. (11) excluding the winner: divide the winner's Q out of the
      // aggregate before evaluating at alpha_k. (The batched path clears
      // this denominator instead of inverting it.)
      const auto& alpha_k = params_.pseudonym(k);
      const auto full = qhat_eval.eval(alpha_k);
      const auto winner_part = winner_q_eval.eval(alpha_k);
      // dmwlint:allow(loop-inverse) ablation kept verbatim; batching avoids it
      const auto expected = g.mul(full, g.inv(winner_part));
      if (g.mul(*view.lambda_red[k], *view.psi_red[k]) != expected)
        return record_failure(j, AbortReason::kBadReducedLambdaPsi);
    }
  }

  /// Independent ChaCha stream for one task's polynomial sampling. Streams
  /// (task+1)<<32 | id never collide with the DH stream (= id < 2^32), and
  /// depend only on (master seed, agent, task) — never on which worker runs
  /// the task or in which order. Returns a copy of the cached pristine
  /// stream state (built once in the constructor), so the per-task steps
  /// skip the SHA-256 key derivation and touch the cache read-only.
  crypto::ChaChaRng task_rng(std::size_t task) const {
    DMW_REQUIRE(task < task_rngs_.size());
    return task_rngs_[task];
  }

  /// Stage tags for the RLC batch-verification streams (dmw/batchverify.hpp).
  static constexpr std::uint64_t kRlcStageVerify = 1;
  static constexpr std::uint64_t kRlcStageFirstPrice = 2;
  static constexpr std::uint64_t kRlcStageSecondPrice = 3;
  static constexpr std::uint64_t kRlcStages = 3;

  /// Dedicated ChaCha stream for one task's RLC coefficients at one Phase
  /// III stage. The stage tag lives in the top byte, so these streams never
  /// collide with task_rng (stage bits zero there) or the DH stream; the
  /// batch folds checks in ascending peer order, so coefficients — and
  /// every byte derived from them — are independent of worker count and
  /// scheduling (the determinism contract of the parallel driver). Copies
  /// the cached pristine state, like task_rng.
  crypto::ChaChaRng rlc_rng(std::size_t task, std::uint64_t stage) const {
    DMW_REQUIRE(stage >= 1 && stage <= kRlcStages);
    DMW_REQUIRE(task < params_.m());
    return rlc_rngs_[(stage - 1) * params_.m() + task];
  }

  /// Build the per-(agent, task) stream caches once, before any fan-out:
  /// 1 polynomial stream + kRlcStages RLC streams per task. Hoisting the
  /// SHA-256 key derivations out of the per-task steps amortizes the setup
  /// across the m auctions and makes the hot-path accessors pure reads of
  /// immutable state (the cache-sharing contract; workers only ever copy).
  void build_stream_caches() {
    const std::size_t m = params_.m();
    task_rngs_.reserve(m);
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint64_t stream =
          ((static_cast<std::uint64_t>(j) + 1) << 32) |
          static_cast<std::uint64_t>(id_);
      task_rngs_.push_back(crypto::ChaChaRng::from_seed(secret_seed_, stream));
    }
    rlc_rngs_.reserve(kRlcStages * m);
    for (std::uint64_t stage = 1; stage <= kRlcStages; ++stage) {
      for (std::size_t j = 0; j < m; ++j) {
        const std::uint64_t stream =
            (stage << 56) | ((static_cast<std::uint64_t>(j) + 1) << 32) |
            static_cast<std::uint64_t>(id_);
        rlc_rngs_.push_back(
            crypto::ChaChaRng::from_seed(secret_seed_, stream));
      }
    }
  }

  void abort(net::SimNetwork& net, std::size_t task, AbortReason reason) {
    if (aborted() || halted_) return;
    if (strategy_.fail_silent()) {
      // A crashed node cannot broadcast complaints: halt quietly.
      halted_ = true;
      return;
    }
    abort_ = AbortMsg{static_cast<std::uint32_t>(task), reason};
    if (trace::on()) {
      trace::counter("aborts/total").add(1);
      trace::counter(std::string("aborts/") + to_string(reason)).add(1);
    }
    DMW_DEBUG() << "agent " << id_ << " aborts on task " << task << ": "
                << to_string(reason);
    net.publish(static_cast<net::AgentId>(id_),
                static_cast<std::uint32_t>(MsgKind::kAbort), abort_->encode());
  }

  void drain_unicasts(net::SimNetwork& net) {
    const G& g = params_.group();
    for (auto& env : net.receive(static_cast<net::AgentId>(id_))) {
      if (env.kind != static_cast<std::uint32_t>(MsgKind::kShares)) continue;
      try {
        std::vector<std::uint8_t> plaintext = std::move(env.payload);
        if (encrypt_) {
          if (!peer_keys_[env.from])
            throw net::DecodeError("sealed message from key-less sender");
          net::Reader wrapper(plaintext);
          const std::uint32_t nonce = wrapper.u32();
          std::vector<std::uint8_t> sealed(
              plaintext.begin() + 4, plaintext.end());
          auto opened = crypto::aead_open(
              channel_key(env.from, /*outbound=*/false), nonce, sealed,
              channel_aad(env.from, id_));
          if (!opened) throw net::DecodeError("AEAD authentication failed");
          plaintext = std::move(*opened);
        }
        auto msg = SharesMsg<G>::decode(g, plaintext);
        if (msg.task >= params_.m()) throw net::DecodeError("bad task id");
        if (!g.valid_scalar(msg.shares.e) || !g.valid_scalar(msg.shares.f) ||
            !g.valid_scalar(msg.shares.g) || !g.valid_scalar(msg.shares.h))
          throw net::DecodeError("share out of range");
        tasks_[msg.task].shares_in[env.from] =
            Secret<ShareBundle<G>>(msg.shares);
        zeroize(msg.shares);
      } catch (const net::DecodeError&) {
        return abort(net, 0, AbortReason::kMalformedMessage);
      }
    }
  }

  void absorb_bulletin(net::SimNetwork& net) {
    const G& g = params_.group();
    for (const auto& posting : net.read_bulletin(bulletin_cursor_)) {
      transcript_.append_u64("from", posting.from);
      transcript_.append_u64("kind", posting.kind);
      transcript_.append_bytes("payload", posting.payload);
      try {
        switch (static_cast<MsgKind>(posting.kind)) {
          case MsgKind::kKeyExchange: {
            auto msg = KeyExchangeMsg<G>::decode(g, posting.payload);
            if (!g.valid_elem(msg.public_key))
              throw net::DecodeError("DH key out of range");
            if (posting.from != id_) peer_keys_[posting.from] = msg.public_key;
            break;
          }
          case MsgKind::kCommitments: {
            auto msg = CommitmentsMsg<G>::decode(g, posting.payload);
            if (msg.task >= params_.m()) throw net::DecodeError("task");
            for (const auto* vec : {&msg.commitments.O, &msg.commitments.Q,
                                    &msg.commitments.R})
              for (const auto& e : *vec)
                if (!g.valid_elem(e))
                  throw net::DecodeError("commitment out of range");
            tasks_[msg.task].commitments[posting.from] =
                std::move(msg.commitments);
            break;
          }
          case MsgKind::kLambdaPsi: {
            auto msg = LambdaPsiMsg<G>::decode(g, posting.payload);
            if (msg.task >= params_.m()) throw net::DecodeError("task");
            if (!g.valid_elem(msg.lambda) || !g.valid_elem(msg.psi))
              throw net::DecodeError("lambda/psi out of range");
            tasks_[msg.task].lambda[posting.from] = msg.lambda;
            tasks_[msg.task].psi[posting.from] = msg.psi;
            break;
          }
          case MsgKind::kWinnerShares: {
            auto msg = WinnerSharesMsg<G>::decode(g, posting.payload);
            if (msg.task >= params_.m()) throw net::DecodeError("task");
            for (const auto& s : msg.f_shares)
              if (!g.valid_scalar(s))
                throw net::DecodeError("f-share out of range");
            tasks_[msg.task].disclosures[posting.from] =
                std::move(msg.f_shares);
            break;
          }
          case MsgKind::kReducedLambdaPsi: {
            auto msg = LambdaPsiMsg<G>::decode(g, posting.payload);
            if (msg.task >= params_.m()) throw net::DecodeError("task");
            if (!g.valid_elem(msg.lambda) || !g.valid_elem(msg.psi))
              throw net::DecodeError("lambda/psi out of range");
            tasks_[msg.task].lambda_red[posting.from] = msg.lambda;
            tasks_[msg.task].psi_red[posting.from] = msg.psi;
            break;
          }
          default:
            break;  // abort / payment messages are handled by the runner
        }
      } catch (const net::DecodeError&) {
        return abort(net, 0, AbortReason::kMalformedMessage);
      }
    }
  }

  /// Derive both directional AEAD keys for every peer whose DH key is
  /// known. Eager (phase2_prepare) rather than memoized-on-first-use so the
  /// per-task send/open steps touch the caches read-only — lazy fills from
  /// concurrent workers would race.
  void derive_channel_keys() {
    if (!encrypt_) return;
    if (send_keys_.empty()) send_keys_.resize(params_.n());
    if (recv_keys_.empty()) recv_keys_.resize(params_.n());
    for (std::size_t k = 0; k < params_.n(); ++k) {
      if (k == id_ || !peer_keys_[k] || send_keys_[k]) continue;
      const auto shared = crypto::dh_shared_element(
          params_.group(), dh_.secret, *peer_keys_[k]);
      send_keys_[k] = crypto::derive_channel_key(params_.group(), shared,
                                                 id_, k);
      recv_keys_[k] = crypto::derive_channel_key(params_.group(), shared,
                                                 k, id_);
    }
  }

  /// Directional AEAD key for traffic with peer k (outbound: id_ -> k).
  /// Read-only: derive_channel_keys() must have run for this peer.
  const crypto::AeadKey& channel_key(std::size_t k, bool outbound) const {
    const auto& cache = outbound ? send_keys_ : recv_keys_;
    DMW_REQUIRE(k < cache.size() && cache[k].has_value());
    return *cache[k];
  }

  /// AAD binding (sender, receiver, kind) into the seal.
  static std::vector<std::uint8_t> channel_aad(std::size_t sender,
                                               std::size_t receiver) {
    net::Writer w;
    w.u32(static_cast<std::uint32_t>(sender));
    w.u32(static_cast<std::uint32_t>(receiver));
    w.u32(static_cast<std::uint32_t>(MsgKind::kShares));
    return w.take();
  }

  const PublicParams<G>& params_;
  std::size_t id_;
  std::vector<mech::Cost> true_costs_;
  Strategy<G>& strategy_;
  std::uint64_t secret_seed_;
  crypto::ChaChaRng rng_;  ///< DH keypair stream; tasks use task_rng()
  /// Pristine per-task stream states (built once in the constructor,
  /// immutable afterwards; accessors hand out copies).
  std::vector<crypto::ChaChaRng> task_rngs_;
  std::vector<crypto::ChaChaRng> rlc_rngs_;  // [(stage-1)*m + task]
  crypto::Transcript transcript_;
  std::vector<TaskView<G>> tasks_;
  /// Deferred per-task failures (see record_failure/commit_task_failures).
  std::vector<std::optional<AbortReason>> task_failures_;
  std::vector<mech::Cost> bids_;
  std::size_t bulletin_cursor_ = 0;
  std::optional<AbortMsg> abort_;
  bool halted_ = false;

  // Private-channel state.
  bool encrypt_;
  crypto::DhKeyPair<G> dh_;
  std::vector<std::optional<typename G::Elem>> peer_keys_;
  std::vector<std::optional<crypto::AeadKey>> send_keys_, recv_keys_;
};

}  // namespace dmw::proto
