// DMW public parameters (paper §3, Phase I: Initialization).
//
// Published before the run: the Schnorr group (p, q, z1, z2), the maximum
// number of faulty agents c, the pseudonym set A = {alpha_1 < ... < alpha_n}
// (distinct nonzero elements of Z_q), and the discrete bid set
// W = {w_1 < ... < w_k}. The degree bound is sigma = w_k + c + 1; a bid y is
// encoded as a polynomial of degree tau = sigma - y (small bids -> large
// degrees), so at least c+1 shares are needed to expose even the weakest
// bid.
//
// Erratum applied (see DESIGN.md): the paper requires w_k < n - c + 1; with
// the corrected degree-resolution index (deg = s_min - 1) the resolvable
// bound is w_k <= n - c - 1, which validate() enforces.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/chacha.hpp"
#include "mech/problem.hpp"
#include "numeric/group.hpp"
#include "support/check.hpp"

namespace dmw::proto {

template <dmw::num::GroupBackend G>
class PublicParams {
 public:
  using Scalar = typename G::Scalar;

  /// `pseudonyms` must be strictly increasing (by scalar value) so the
  /// "smallest pseudonym wins" tie-break (III.3) coincides with agent-index
  /// order; factories below guarantee this.
  PublicParams(G group, std::size_t n_agents, std::size_t m_tasks,
               std::size_t max_faulty, mech::BidSet bid_set,
               std::vector<Scalar> pseudonyms, bool crash_tolerant = false)
      : group_(std::move(group)),
        n_(n_agents),
        m_(m_tasks),
        c_(max_faulty),
        crash_tolerant_(crash_tolerant),
        bid_set_(std::move(bid_set)),
        pseudonyms_(std::move(pseudonyms)) {
    validate();
    build_pseudonym_powers();
  }

  /// Standard construction: W = {1..k_max} with the largest k admissible for
  /// (n, c), pseudonyms derived deterministically from `seed`.
  static PublicParams make(G group, std::size_t n_agents, std::size_t m_tasks,
                           std::size_t max_faulty, std::uint64_t seed) {
    DMW_REQUIRE_MSG(n_agents >= max_faulty + 2,
                    "need n >= c + 2 for a non-empty bid set");
    const auto k_max = static_cast<mech::Cost>(n_agents - max_faulty - 1);
    return with_bid_set(std::move(group), n_agents, m_tasks, max_faulty,
                        mech::BidSet::iota(k_max), seed);
  }

  static PublicParams with_bid_set(G group, std::size_t n_agents,
                                   std::size_t m_tasks, std::size_t max_faulty,
                                   mech::BidSet bid_set, std::uint64_t seed,
                                   bool crash_tolerant = false) {
    std::vector<Scalar> pseudonyms =
        derive_pseudonyms(group, n_agents, seed);
    return PublicParams(std::move(group), n_agents, m_tasks, max_faulty,
                        std::move(bid_set), std::move(pseudonyms),
                        crash_tolerant);
  }

  /// Crash-tolerant construction (paper Open Problem 11): the protocol
  /// completes as long as at most c agents go silent. Tolerating c missing
  /// resolution points tightens the bid-set bound to w_k <= n - 2c - 1
  /// (deg E + 1 <= n - c must remain resolvable), so this mode trades bid
  /// granularity for availability.
  static PublicParams make_crash_tolerant(G group, std::size_t n_agents,
                                          std::size_t m_tasks,
                                          std::size_t max_faulty,
                                          std::uint64_t seed) {
    DMW_REQUIRE_MSG(n_agents >= 2 * max_faulty + 2,
                    "crash tolerance needs n >= 2c + 2");
    const auto k_max =
        static_cast<mech::Cost>(n_agents - 2 * max_faulty - 1);
    return with_bid_set(std::move(group), n_agents, m_tasks, max_faulty,
                        mech::BidSet::iota(k_max), seed,
                        /*crash_tolerant=*/true);
  }

  const G& group() const { return group_; }
  std::size_t n() const { return n_; }
  std::size_t m() const { return m_; }
  std::size_t c() const { return c_; }
  /// True when the run must survive up to c silent (crashed) agents
  /// instead of aborting on the first missing message.
  bool crash_tolerant() const { return crash_tolerant_; }
  /// True (the default) when agents fold each task's Phase III commitment
  /// checks into one random-linear-combination batch (dmw/batchverify.hpp)
  /// instead of verifying them one at a time. Outcome-invariant either way:
  /// a failed batch falls back to the sequential scan for attribution, so
  /// every Outcome/AbortReason byte matches the one-at-a-time ablation.
  bool batch_verify() const { return batch_verify_; }
  void set_batch_verify(bool on) { batch_verify_ = on; }
  /// True when protocol runners should switch on the process-wide dmwtrace
  /// tracer (support/trace.hpp) when they are constructed. Off by default:
  /// the spans stay compiled in, at the cost of one predicted branch each
  /// and no allocation. Enabling is one-way — the caller that turned
  /// tracing on (e.g. dmw_sim --trace-out) owns disabling and exporting.
  bool tracing() const { return tracing_; }
  void set_tracing(bool on) { tracing_ = on; }
  /// Lane-grouping policy for the vectorized Montgomery tier
  /// (numeric/simd.hpp): kAuto (the default) engages the lane engine when
  /// the host has a vector ISA, kOn forces it (portable kernels included),
  /// kOff pins the historical scalar paths. Outcome-, abort-stream- and
  /// RunReport-invariant in every mode — the lane engine performs the same
  /// counted multiplications, just grouped (montlane.hpp contract). Set
  /// before the params are shared across threads, like every other knob.
  dmw::num::simd::SimdMode simd() const { return group_.simd_mode(); }
  void set_simd(dmw::num::simd::SimdMode mode) { group_.set_simd_mode(mode); }
  /// Smallest number of participating agents the protocol can finish with.
  std::size_t quorum() const { return n_ - (crash_tolerant_ ? c_ : 0); }
  const mech::BidSet& bid_set() const { return bid_set_; }
  const std::vector<Scalar>& pseudonyms() const { return pseudonyms_; }
  const Scalar& pseudonym(std::size_t agent) const {
    DMW_REQUIRE(agent < n_);
    return pseudonyms_[agent];
  }

  /// Power table pseudonym_powers(k)[l] = alpha_k^{l+1} for l in [0, sigma).
  /// Every Phase III check walks these powers for every task; building the
  /// n x sigma table once here (instead of per (agent, task) in the hot
  /// steps) amortizes the setup across the m auctions. Built in the
  /// constructor and immutable afterwards, so protocol workers share it
  /// read-only — the cache-sharing contract the parallel engine relies on
  /// (DESIGN.md "Parallel execution model").
  const std::vector<Scalar>& pseudonym_powers(std::size_t agent) const {
    DMW_REQUIRE(agent < n_);
    return pseudonym_powers_[agent];
  }

  /// sigma = w_k + c + 1 (paper II.1): the degree of every masking
  /// polynomial and of every product polynomial e*f.
  std::size_t sigma() const { return bid_set_.max() + c_ + 1; }

  /// tau = sigma - y: the degree encoding bid y.
  std::size_t degree_for_bid(mech::Cost bid) const {
    DMW_REQUIRE_MSG(bid_set_.contains(bid), "bid not in published set W");
    return sigma() - bid;
  }

  /// Inverse map; `degree` must correspond to some bid in W.
  mech::Cost bid_for_degree(std::size_t degree) const {
    DMW_REQUIRE(degree < sigma());
    const auto bid = static_cast<mech::Cost>(sigma() - degree);
    DMW_REQUIRE_MSG(bid_set_.contains(bid), "degree encodes no bid in W");
    return bid;
  }

  bool degree_is_valid_bid(std::size_t degree) const {
    return degree < sigma() &&
           bid_set_.contains(static_cast<mech::Cost>(sigma() - degree));
  }

  std::string describe() const {
    std::string out = "DMW params: n=" + std::to_string(n_) +
                      " m=" + std::to_string(m_) + " c=" + std::to_string(c_) +
                      " sigma=" + std::to_string(sigma()) +
                      " |W|=" + std::to_string(bid_set_.size()) + "; " +
                      group_.describe();
    return out;
  }

 private:
  void validate() const {
    DMW_REQUIRE(n_ >= 2);
    DMW_REQUIRE(m_ >= 1);
    DMW_REQUIRE_MSG(c_ < n_, "c must be < n (paper: c < n)");
    DMW_REQUIRE_MSG(bid_set_.max() + c_ + 1 <= n_,
                    "w_k <= n - c - 1 required for degree resolution "
                    "with n shares (DESIGN.md erratum)");
    if (crash_tolerant_) {
      DMW_REQUIRE_MSG(bid_set_.max() + 2 * c_ + 1 <= n_,
                      "crash tolerance requires w_k <= n - 2c - 1 so the "
                      "degree resolves from n - c surviving points");
    }
    DMW_REQUIRE(pseudonyms_.size() == n_);
    for (std::size_t i = 0; i < n_; ++i) {
      DMW_REQUIRE_MSG(pseudonyms_[i] != group_.szero(),
                      "pseudonyms must be nonzero");
      if (i > 0) {
        DMW_REQUIRE_MSG(pseudonyms_[i - 1] < pseudonyms_[i],
                        "pseudonyms must be strictly increasing");
      }
    }
  }

  void build_pseudonym_powers() {
    pseudonym_powers_.resize(n_);
    const std::size_t width = sigma();
    for (std::size_t k = 0; k < n_; ++k) {
      auto& row = pseudonym_powers_[k];
      row.resize(width);
      Scalar power = pseudonyms_[k];
      for (std::size_t l = 0; l < width; ++l) {
        row[l] = power;
        power = group_.smul(power, pseudonyms_[k]);
      }
    }
  }

  static std::vector<Scalar> derive_pseudonyms(const G& group, std::size_t n,
                                               std::uint64_t seed) {
    // Deterministic, collision-free draw from Z_q^*, sorted ascending so the
    // smallest-pseudonym tie-break equals index order.
    crypto::ChaChaRng rng =
        crypto::ChaChaRng::from_seed(seed, /*stream=*/0x70736575646f);
    std::vector<Scalar> out;
    out.reserve(n);
    while (out.size() < n) {
      Scalar candidate = group.random_nonzero_scalar(rng);
      if (std::find(out.begin(), out.end(), candidate) == out.end())
        out.push_back(candidate);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  G group_;
  std::size_t n_, m_, c_;
  bool crash_tolerant_ = false;
  bool batch_verify_ = true;
  bool tracing_ = false;
  mech::BidSet bid_set_;
  std::vector<Scalar> pseudonyms_;
  std::vector<std::vector<Scalar>> pseudonym_powers_;  // [agent][l] = a^{l+1}
};

}  // namespace dmw::proto
