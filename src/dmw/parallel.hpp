// Task-parallel DMW driver.
//
// The paper runs "a set of parallel and independent distributed Vickrey
// auctions" — one per task — and every per-task quantity (shares,
// commitments, Lambda/Psi, disclosures, prices) lives in its own TaskView.
// ParallelProtocol exploits exactly that independence: each lockstep round
// first runs the per-agent ingest steps (sharded over agents), then shards
// the m per-task compute steps across a fixed ThreadPool, then commits
// recorded failures serially in agent order. Determinism contract:
//
//   - Per-task randomness comes from ChaCha streams keyed by
//     (master seed, agent, task) — DmwAgent::task_rng — so sampled
//     polynomials never depend on worker count or execution order.
//   - Failed checks are recorded per task and committed at the stage
//     barrier as one abort on the lowest failing task; the runner then
//     records the lowest aborted agent id. Both match the sequential
//     scan order, so abort records are bit-identical too.
//   - Workers only write their own TaskView slots, per-worker traffic
//     accumulators (SimNetwork::enable_concurrency) and per-thread op
//     counters; everything cross-task happens between pool barriers.
//
// The bulletin may interleave *postings within a round* differently from
// the sequential runner, but every Outcome field is a function of
// per-sender keyed state, never of posting order — which is what
// tests/test_parallel_protocol.cpp pins down across thread counts.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "dmw/protocol.hpp"
#include "support/thread_pool.hpp"

namespace dmw::proto {

/// Drop-in parallel equivalent of ProtocolRunner: same constructor shape
/// plus a thread count (0 = one worker per hardware thread). Produces
/// bit-identical Outcomes at any thread count.
///
/// Strategies must be reentrant: with m tasks sharded across workers, the
/// per-task hooks (edit_share, edit_lambda_psi, ...) of one strategy object
/// run concurrently for different tasks (and choose_bids concurrently for
/// different agents when an instance is shared). Every strategy in
/// dmw/strategies.hpp is read-only after construction and qualifies.
template <dmw::num::GroupBackend G>
class ParallelProtocol {
 public:
  ParallelProtocol(const PublicParams<G>& params,
                   const mech::SchedulingInstance& instance,
                   std::vector<Strategy<G>*> strategies, std::size_t threads,
                   RunConfig config = RunConfig{})
      : params_(params),
        net_(params.n()),
        infra_(params.n()),
        agents_(make_dmw_agents(params, instance, strategies, config)),
        pool_(threads == 0 ? ThreadPool::default_thread_count() : threads),
        worker_ops_(pool_.size()) {
    net_.enable_concurrency(pool_.size());
    if (params.tracing()) trace::Tracer::instance().set_enabled(true);
  }

  std::size_t threads() const { return pool_.size(); }
  net::SimNetwork& network() { return net_; }
  const DmwAgent<G>& agent(std::size_t i) const { return *agents_[i]; }

  Outcome run() {
    Outcome outcome;
    outcome.payments.assign(params_.n(), 0);

    // Channel setup: DH key publication for the private channels.
    run_step(Phase::kBidding, outcome, [&] {
      for_each_agent([&](DmwAgent<G>& a) { a.phase0_publish_key(net_); });
    });

    // Phase II: bidding (II.1-II.3) + implicit synchronization (II.4).
    run_step(Phase::kBidding, outcome, [&] {
      for_each_agent([&](DmwAgent<G>& a) { a.phase2_prepare(net_); });
      for_each_task([&](DmwAgent<G>& a, std::size_t j) {
        a.phase2_send_task(net_, j);
      });
    });

    // Phase III.1 + III.2.
    run_step(Phase::kLambdaPsi, outcome, [&] {
      for_each_agent([&](DmwAgent<G>& a) { a.phase3_ingest(net_); });
      for_each_task([&](DmwAgent<G>& a, std::size_t j) {
        a.phase3_verify_task(net_, j);
      });
      commit_failures();
      for_each_task([&](DmwAgent<G>& a, std::size_t j) {
        a.phase3_lambda_task(net_, j);
      });
    });
    run_step(Phase::kLambdaPsi, outcome, [&] {
      for_each_agent([&](DmwAgent<G>& a) { a.absorb_published(net_); });
      for_each_task([&](DmwAgent<G>& a, std::size_t j) {
        a.phase3_first_price_task(net_, j);
      });
      commit_failures();
    });

    // Phase III.3.
    run_step(Phase::kWinner, outcome, [&] {
      for_each_task([&](DmwAgent<G>& a, std::size_t j) {
        a.phase3_disclose_task(net_, j);
      });
    });
    run_step(Phase::kWinner, outcome, [&] {
      for_each_agent([&](DmwAgent<G>& a) { a.absorb_published(net_); });
      for_each_task([&](DmwAgent<G>& a, std::size_t j) {
        a.phase3_winner_task(net_, j);
      });
      commit_failures();
    });

    // Phase III.4.
    run_step(Phase::kSecondPrice, outcome, [&] {
      for_each_task([&](DmwAgent<G>& a, std::size_t j) {
        a.phase3_reduced_task(net_, j);
      });
    });
    run_step(Phase::kSecondPrice, outcome, [&] {
      for_each_agent([&](DmwAgent<G>& a) { a.absorb_published(net_); });
      for_each_task([&](DmwAgent<G>& a, std::size_t j) {
        a.phase3_second_price_task(net_, j);
      });
      commit_failures();
    });

    // Phase IV.
    run_step(Phase::kPayments, outcome, [&] {
      for_each_agent(
          [&](DmwAgent<G>& a) { a.phase4_submit_payment_claim(net_); });
    });

    finalize_outcome(params_, net_, infra_, agents_, outcome);
    return outcome;
  }

 private:
  /// One lockstep round: body() runs the stage(s), then the round advances
  /// and the phase bucket absorbs this step's traffic, wall time and the
  /// op-count deltas of the driver and every worker.
  template <class Body>
  void run_step(Phase phase, Outcome& outcome, Body&& body) {
    if (outcome.aborted) return;
    const auto traffic_before = net_.stats();
    for (auto& ops : worker_ops_) ops = dmw::num::OpCounts{};
    dmw::num::OpCountScope driver_ops;
    trace::Span span(to_string(phase));
    const std::int64_t step_begin_ns = trace::Tracer::instance().now_ns();

    body();
    net_.advance_round();
    ++outcome.rounds;
    for (int wait = 0; net_.in_flight() > 0 && wait < 1024; ++wait) {
      net_.advance_round();
      ++outcome.rounds;
    }

    auto& bucket = outcome.phases[static_cast<std::size_t>(phase)];
    bucket.seconds +=
        static_cast<double>(trace::Tracer::instance().now_ns() -
                            step_begin_ns) *
        1e-9;
    bucket.ops += driver_ops.delta();
    dmw::num::OpCounts workers_total;
    for (const auto& ops : worker_ops_) workers_total += ops;
    bucket.ops += workers_total;
    // Credit the workers' ops to the driver thread too (after the
    // driver_ops.delta() read, so the bucket is not double-counted): the
    // enclosing phase span and any caller's OpCountScope then observe the
    // same per-phase deltas as the sequential driver, which is what keeps
    // RunReports engine-invariant.
    dmw::num::op_counts() += workers_total;
    accumulate_traffic(bucket.stats, net_.stats(), traffic_before);

    note_aborts(agents_, outcome);
    // Stage barrier: every worker is idle (parallel_for returned), so their
    // span buffers can be drained into the central log in worker-id order.
    if (trace::on()) trace::Tracer::instance().flush_thread_buffers();
  }

  /// Shard a per-agent ingest step over the pool (one index per agent).
  void for_each_agent(const std::function<void(DmwAgent<G>&)>& fn) {
    pool_.parallel_for(agents_.size(), [&](std::size_t i) {
      dmw::num::OpCountScope scope;
      fn(*agents_[i]);
      worker_ops_[static_cast<std::size_t>(ThreadPool::current_worker_id())] +=
          scope.delta();
    });
  }

  /// Shard a per-task compute step over the pool: worker owning task j runs
  /// it for every agent, so all writes to task-j state stay on one thread.
  void for_each_task(const std::function<void(DmwAgent<G>&, std::size_t)>& fn) {
    pool_.parallel_for(params_.m(), [&](std::size_t j) {
      dmw::num::OpCountScope scope;
      for (auto& agent : agents_) fn(*agent, j);
      worker_ops_[static_cast<std::size_t>(ThreadPool::current_worker_id())] +=
          scope.delta();
    });
  }

  /// Stage barrier, serial in agent order (the order the sequential runner
  /// would have published the aborts in).
  void commit_failures() {
    for (auto& agent : agents_) agent->commit_task_failures(net_);
  }

  const PublicParams<G>& params_;
  net::SimNetwork net_;
  PaymentInfrastructure infra_;
  std::vector<std::unique_ptr<DmwAgent<G>>> agents_;
  ThreadPool pool_;
  std::vector<dmw::num::OpCounts> worker_ops_;  // merged per run_step
};

/// Convenience: run DMW with every agent honest on `threads` workers.
template <dmw::num::GroupBackend G>
Outcome run_parallel_dmw(const PublicParams<G>& params,
                         const mech::SchedulingInstance& instance,
                         std::size_t threads, RunConfig config = RunConfig{}) {
  HonestStrategy<G> honest;
  std::vector<Strategy<G>*> strategies(params.n(), &honest);
  ParallelProtocol<G> runner(params, instance, std::move(strategies), threads,
                             config);
  return runner.run();
}

}  // namespace dmw::proto
