// Pipelined task-parallel DMW driver.
//
// The paper runs "a set of parallel and independent distributed Vickrey
// auctions" — one per task — and every per-task quantity (shares,
// commitments, Lambda/Psi, disclosures, prices) lives in its own TaskView.
// ParallelProtocol exploits exactly that independence. Execution is
// organized into *epochs*: the SimNetwork rounds, whose advance_round()
// calls are the only global barriers left (round structure is part of the
// Outcome identity, so an epoch genuinely cannot be crossed early). Inside
// an epoch, each agent advances through its stage chain independently:
//
//   ingest(i) -> { task slices (i, j-chunk) ... } -> commit(i) -> next stage
//
// with no cross-agent joins. The per-agent chains are driven by per-chain
// epoch counters (an atomic fan-out count per agent) instead of global pool
// barriers: a slow verification slice stalls only its own agent's chain, and
// idle workers steal slices from busy ones (support/thread_pool.hpp). Task
// work fans out in chunks of tasks per agent — n * ceil(m/chunk) stealable
// slices per stage — which is finer than task granularity and keeps all
// eight workers busy even when m < threads (the m=8 case): each Phase III
// BatchVerifier invocation is one independent (agent, task) job in that bag.
//
// Determinism contract (Outcomes, AbortReason streams and RunReports are
// bit-identical across thread counts, schedule modes and vs the sequential
// engine):
//
//   - Per-task randomness comes from ChaCha streams keyed by
//     (master seed, agent, task) — DmwAgent::task_rng — so sampled
//     polynomials never depend on worker count or execution order.
//   - Failed checks are recorded per task and committed at the agent's
//     stage boundary as one abort on the lowest failing task; the runner
//     then records the lowest aborted agent id at the epoch boundary. Both
//     match the sequential scan order, so abort records are bit-identical.
//   - Workers only write the TaskView slots of the slice they own,
//     per-worker traffic accumulators (SimNetwork::enable_concurrency) and
//     per-thread op counters; cross-agent data only moves through the
//     network, which delivers at epoch boundaries.
//   - Shared caches (PublicParams pseudonym-power tables, per-agent RNG
//     stream states, AEAD channel keys, group fixed-base tables) are built
//     once before the fan-out and are immutable afterwards; workers only
//     read them.
//
// Under RunConfig::deterministic_schedule the engine degrades to the
// legacy lockstep interpreter (static contiguous shards + a pool barrier
// per stage), pinning the execution interleaving itself; results are
// identical either way, which the bit-identity soak in
// tests/test_parallel_protocol.cpp pins across {1,2,4,8} threads x
// {honest, deviant, crash} x both schedule modes.
//
// The bulletin may interleave *postings within a round* differently from
// the sequential runner, but every Outcome field is a function of
// per-sender keyed state, never of posting order.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "dmw/protocol.hpp"
#include "support/annotations.hpp"
#include "support/logging.hpp"
#include "support/thread_pool.hpp"

namespace dmw::proto {

/// Drop-in parallel equivalent of ProtocolRunner: same constructor shape
/// plus a thread count (0 = one worker per hardware thread, logged at Info).
/// Produces bit-identical Outcomes at any thread count.
///
/// Strategies must be reentrant: with per-(agent, task-chunk) slices stolen
/// across workers, the per-task hooks (edit_share, edit_lambda_psi, ...) of
/// one strategy object run concurrently for different tasks (and choose_bids
/// concurrently for different agents when an instance is shared). Every
/// strategy in dmw/strategies.hpp is read-only after construction and
/// qualifies.
template <dmw::num::GroupBackend G>
class ParallelProtocol {
 public:
  ParallelProtocol(const PublicParams<G>& params,
                   const mech::SchedulingInstance& instance,
                   std::vector<Strategy<G>*> strategies, std::size_t threads,
                   RunConfig config = RunConfig{})
      : ParallelProtocol(
            params, instance, std::move(strategies),
            std::make_unique<ThreadPool>(
                threads == 0 ? ThreadPool::default_thread_count() : threads,
                config.deterministic_schedule),
            /*borrowed=*/nullptr, config) {
    if (threads == 0) {
      DMW_INFO() << "--threads 0 resolved to " << pool_->size()
                 << " workers (std::thread::hardware_concurrency)";
    }
  }

  /// Server-mode hook: borrow a caller-owned pool instead of spawning one.
  /// A stream of auctions (tools/dmw_serve) then reuses a single warmed set
  /// of workers across requests — thread creation and teardown leave the
  /// per-auction path entirely. The pool must be quiescent for the duration
  /// of run() (the engine is its only client between drain barriers), and
  /// the pool's scheduling discipline must match config.deterministic_schedule
  /// — the pool's discipline is what actually executes.
  ParallelProtocol(const PublicParams<G>& params,
                   const mech::SchedulingInstance& instance,
                   std::vector<Strategy<G>*> strategies, ThreadPool& pool,
                   RunConfig config = RunConfig{})
      : ParallelProtocol(params, instance, std::move(strategies),
                         /*owned=*/nullptr, &pool, config) {
    DMW_REQUIRE_MSG(
        pool.deterministic_schedule() == config.deterministic_schedule,
        "ParallelProtocol: borrowed pool discipline disagrees with RunConfig");
  }

  std::size_t threads() const { return pool_->size(); }
  bool deterministic_schedule() const {
    return pool_->deterministic_schedule();
  }
  net::SimNetwork& network() { return net_; }
  const DmwAgent<G>& agent(std::size_t i) const { return *agents_[i]; }

  Outcome run() {
    assert_driver();
    Outcome outcome;
    outcome.payments.assign(params_.n(), 0);

    using Agent = DmwAgent<G>;

    // Channel setup: DH key publication for the private channels.
    run_epoch(Phase::kBidding, outcome,
              {Stage{[this](Agent& a) { a.phase0_publish_key(net_); }, nullptr,
                     false}});

    // Phase II: bidding (II.1-II.3) + implicit synchronization (II.4). An
    // agent starts sealing and sending shares the moment its own key
    // derivation is done; it does not wait for its peers'.
    run_epoch(Phase::kBidding, outcome,
              {Stage{[this](Agent& a) { a.phase2_prepare(net_); },
                     [this](Agent& a, std::size_t j) {
                       a.phase2_send_task(net_, j);
                     },
                     false}});

    // Phase III.1 + III.2: verification fans out per (agent, task) — the
    // BatchVerifier multi-exps are the dominant independent jobs — then each
    // agent commits its own deferred failures and pipelines straight into
    // Lambda/Psi aggregation without waiting for other agents to finish
    // verifying.
    run_epoch(Phase::kLambdaPsi, outcome,
              {Stage{[this](Agent& a) { a.phase3_ingest(net_); },
                     [this](Agent& a, std::size_t j) {
                       a.phase3_verify_task(net_, j);
                     },
                     /*commit_after=*/true},
               Stage{nullptr,
                     [this](Agent& a, std::size_t j) {
                       a.phase3_lambda_task(net_, j);
                     },
                     false}});
    run_epoch(Phase::kLambdaPsi, outcome,
              {Stage{[this](Agent& a) { a.absorb_published(net_); },
                     [this](Agent& a, std::size_t j) {
                       a.phase3_first_price_task(net_, j);
                     },
                     /*commit_after=*/true}});

    // Phase III.3.
    run_epoch(Phase::kWinner, outcome,
              {Stage{nullptr,
                     [this](Agent& a, std::size_t j) {
                       a.phase3_disclose_task(net_, j);
                     },
                     false}});
    run_epoch(Phase::kWinner, outcome,
              {Stage{[this](Agent& a) { a.absorb_published(net_); },
                     [this](Agent& a, std::size_t j) {
                       a.phase3_winner_task(net_, j);
                     },
                     /*commit_after=*/true}});

    // Phase III.4.
    run_epoch(Phase::kSecondPrice, outcome,
              {Stage{nullptr,
                     [this](Agent& a, std::size_t j) {
                       a.phase3_reduced_task(net_, j);
                     },
                     false}});
    run_epoch(Phase::kSecondPrice, outcome,
              {Stage{[this](Agent& a) { a.absorb_published(net_); },
                     [this](Agent& a, std::size_t j) {
                       a.phase3_second_price_task(net_, j);
                     },
                     /*commit_after=*/true}});

    // Phase IV.
    run_epoch(Phase::kPayments, outcome,
              {Stage{[this](Agent& a) { a.phase4_submit_payment_claim(net_); },
                     nullptr, false}});

    finalize_outcome(params_, net_, infra_, agents_, outcome);
    return outcome;
  }

 private:
  /// Delegation target for both public constructors: exactly one of `owned`
  /// / `borrowed` is set; pool_ points at whichever the caller provided.
  ParallelProtocol(const PublicParams<G>& params,
                   const mech::SchedulingInstance& instance,
                   std::vector<Strategy<G>*> strategies,
                   std::unique_ptr<ThreadPool> owned, ThreadPool* borrowed,
                   const RunConfig& config)
      : params_(params),
        net_(params.n()),
        infra_(params.n()),
        agents_(make_dmw_agents(params, instance, strategies, config)),
        owned_pool_(std::move(owned)),
        pool_(borrowed != nullptr ? borrowed : owned_pool_.get()),
        worker_ops_(pool_->size()) {
    net_.enable_concurrency(pool_->size());
    if (params.tracing()) trace::Tracer::instance().set_enabled(true);
  }

  /// One stage of an epoch: an optional per-agent prologue, an optional
  /// per-(agent, task) fan-out, and an optional deferred-failure commit at
  /// the agent's stage boundary. An epoch is a short sequence of stages
  /// executed per agent chain.
  struct Stage {
    std::function<void(DmwAgent<G>&)> agent_fn;
    std::function<void(DmwAgent<G>&, std::size_t)> task_fn;
    bool commit_after = false;
  };

  /// Runtime-checked entry to the driver-only surface. run() may be invoked
  /// from any non-pool thread; everything downstream of it — run_epoch, the
  /// two interpreters, advance_round, worker_ops_ merges, deferred-failure
  /// commits on the lockstep path — assumes the caller IS the (single)
  /// driver. The assert tells clang's capability analysis to assume the
  /// driver_role_ role from here on, and the DMW_REQUIRE backs that up at
  /// runtime: a pool worker reaching run() (e.g. a future nested-engine
  /// refactor) trips immediately instead of racing the epoch bookkeeping.
  void assert_driver() DMW_ASSERT_CAPABILITY(driver_role_) {
    DMW_REQUIRE_MSG(ThreadPool::current_worker_id() == -1,
                    "ParallelProtocol::run called from a pool worker");
  }

  /// One network epoch: the stages run (pipelined per agent, or lockstep
  /// under deterministic_schedule), then the round advances and the phase
  /// bucket absorbs this epoch's traffic, wall time and the op-count deltas
  /// of the driver and every worker.
  void run_epoch(Phase phase, Outcome& outcome, std::vector<Stage> stages)
      DMW_REQUIRES(driver_role_) {
    if (outcome.aborted) return;
    net_.set_comm_phase(static_cast<std::uint32_t>(phase), to_string(phase));
    const auto traffic_before = net_.stats();
    for (auto& ops : worker_ops_) ops = dmw::num::OpCounts{};
    dmw::num::OpCountScope driver_ops;
    trace::Span span(to_string(phase));
    const std::int64_t step_begin_ns = trace::Tracer::instance().now_ns();

    if (pool_->deterministic_schedule())
      run_lockstep(stages);
    else
      run_pipelined(stages);

    net_.advance_round();
    ++outcome.rounds;
    for (int wait = 0; net_.in_flight() > 0 && wait < 1024; ++wait) {
      net_.advance_round();
      ++outcome.rounds;
    }

    auto& bucket = outcome.phases[static_cast<std::size_t>(phase)];
    bucket.seconds +=
        static_cast<double>(trace::Tracer::instance().now_ns() -
                            step_begin_ns) *
        1e-9;
    bucket.ops += driver_ops.delta();
    dmw::num::OpCounts workers_total;
    for (const auto& ops : worker_ops_) workers_total += ops;
    bucket.ops += workers_total;
    // Credit the workers' ops to the driver thread too (after the
    // driver_ops.delta() read, so the bucket is not double-counted): the
    // enclosing phase span and any caller's OpCountScope then observe the
    // same per-phase deltas as the sequential driver, which is what keeps
    // RunReports engine-invariant.
    dmw::num::op_counts() += workers_total;
    accumulate_traffic(bucket.stats, net_.stats(), traffic_before);

    note_aborts(agents_, outcome);
    // Epoch boundary: every worker is idle (the barrier/drain returned), so
    // their span buffers can be drained into the central log in worker-id
    // order. This is the only place spans are flushed — there are no
    // intra-epoch stage barriers anymore.
    if (trace::on()) trace::Tracer::instance().flush_thread_buffers();
  }

  // ---- Legacy lockstep interpreter (deterministic_schedule) ----------------

  /// Runs every stage as a global barrier: per-agent prologue sharded over
  /// agents, per-task fan-out sharded over tasks (worker owning task j runs
  /// it for every agent), commits serial on the driver in agent order. The
  /// worker->indices mapping is the pool's static partition — a pure
  /// function of (count, thread count).
  void run_lockstep(const std::vector<Stage>& stages)
      DMW_REQUIRES(driver_role_) {
    for (const Stage& stage : stages) {
      if (stage.agent_fn) {
        pool_->parallel_for(agents_.size(), [&](std::size_t i) {
          charge([&] { stage.agent_fn(*agents_[i]); });
        });
      }
      if (stage.task_fn) {
        pool_->parallel_for(params_.m(), [&](std::size_t j) {
          charge([&] {
            for (auto& agent : agents_) stage.task_fn(*agent, j);
          });
        });
      }
      if (stage.commit_after)
        for (auto& agent : agents_) agent->commit_task_failures(net_);
    }
  }

  // ---- Pipelined interpreter (default) -------------------------------------

  /// Per-agent chains through the epoch's stages. Each chain runs its
  /// prologue, fans its task work out as stealable chunk slices, and the
  /// last slice to finish (per-chain epoch counter hitting zero) commits the
  /// agent's deferred failures and advances the chain — no cross-agent join
  /// anywhere; the driver only waits for the whole epoch to drain.
  void run_pipelined(const std::vector<Stage>& stages)
      DMW_REQUIRES(driver_role_) {
    const std::size_t n = agents_.size();
    const std::size_t m = params_.m();
    // Chunk width for the task fan-out: slices of the n*m (agent, task)
    // grid, sized so every stage yields several stealable slices per worker
    // even when m < threads.
    const std::size_t chunk = pool_->chunk_size(n * m);

    struct Chain {
      std::size_t stage = 0;
      std::atomic<std::size_t> remaining{0};
    };
    std::vector<Chain> chains(n);

    // advance(i) runs agent i's chain from its current stage until it either
    // fans out task slices (the last slice re-enters advance) or finishes
    // the epoch. Lives on the heap so slice jobs can re-enter it; all jobs
    // complete before drain() returns, so the by-reference captures of this
    // frame stay valid.
    auto advance = std::make_shared<std::function<void(std::size_t)>>();
    *advance = [&, advance, chunk, m](std::size_t i) {
      Chain& chain = chains[i];
      while (chain.stage < stages.size()) {
        const Stage& stage = stages[chain.stage];
        if (stage.agent_fn) charge([&] { stage.agent_fn(*agents_[i]); });
        if (stage.task_fn && m > 0) {
          const std::size_t slices = (m + chunk - 1) / chunk;
          chain.remaining.store(slices, std::memory_order_relaxed);
          for (std::size_t begin = 0; begin < m; begin += chunk) {
            const std::size_t end = begin + chunk < m ? begin + chunk : m;
            pool_->submit([this, advance, &chain, &stage, i, begin, end] {
              charge([&] {
                for (std::size_t j = begin; j < end; ++j)
                  stage.task_fn(*agents_[i], j);
              });
              if (chain.remaining.fetch_sub(1, std::memory_order_acq_rel) ==
                  1) {
                if (stage.commit_after)
                  charge([&] { agents_[i]->commit_task_failures(net_); });
                ++chain.stage;
                (*advance)(i);
              }
            });
          }
          return;  // the last slice continues the chain
        }
        if (stage.commit_after)
          charge([&] { agents_[i]->commit_task_failures(net_); });
        ++chain.stage;
      }
    };

    for (std::size_t i = 0; i < n; ++i)
      pool_->submit([advance, i] { (*advance)(i); });
    pool_->drain();
  }

  /// Run body() under an op-count scope and bank the delta in the calling
  /// worker's slot (the driver's thread-local counter already feeds
  /// driver_ops in run_epoch).
  template <class Body>
  void charge(Body&& body) {
    dmw::num::OpCountScope scope;
    body();
    const int worker = ThreadPool::current_worker_id();
    if (worker >= 0) worker_ops_[static_cast<std::size_t>(worker)] +=
        scope.delta();
  }

  const PublicParams<G>& params_;
  net::SimNetwork net_;
  PaymentInfrastructure infra_;
  std::vector<std::unique_ptr<DmwAgent<G>>> agents_;
  std::unique_ptr<ThreadPool> owned_pool_;  ///< null when the pool is borrowed
  ThreadPool* pool_;                        ///< owned_pool_.get() or borrowed
  std::vector<dmw::num::OpCounts> worker_ops_;  // merged per run_epoch
  /// Phantom "driver" capability (annotations.hpp): run_epoch and the
  /// interpreters DMW_REQUIRES it, assert_driver() produces it.
  ThreadRole driver_role_;
};

/// Convenience: run DMW with every agent honest on `threads` workers.
template <dmw::num::GroupBackend G>
Outcome run_parallel_dmw(const PublicParams<G>& params,
                         const mech::SchedulingInstance& instance,
                         std::size_t threads, RunConfig config = RunConfig{}) {
  HonestStrategy<G> honest;
  std::vector<Strategy<G>*> strategies(params.n(), &honest);
  ParallelProtocol<G> runner(params, instance, std::move(strategies), threads,
                             config);
  return runner.run();
}

}  // namespace dmw::proto
