// Typed protocol messages and their wire codecs.
//
// Unicast (private channels): SharesMsg.
// Published (broadcast bulletin): everything else.
// The sequence matches Fig. 2 of the paper: shares + commitments (Phase II),
// Lambda/Psi (III.2), winner disclosures (III.3), reduced Lambda/Psi (III.4),
// payment claims (Phase IV), plus an abort record.
#pragma once

#include <cstdint>
#include <vector>

#include "dmw/polycommit.hpp"
#include "net/serialize.hpp"

namespace dmw::proto {

enum class MsgKind : std::uint32_t {
  kKeyExchange = 0,     ///< published: DH public key for the private channels
  kShares = 1,          ///< unicast: the four per-task shares (II.2)
  kCommitments = 2,     ///< published: O, Q, R vectors (II.3)
  kLambdaPsi = 3,       ///< published: Lambda_i, Psi_i (III.2, Eq. 10)
  kWinnerShares = 4,    ///< published: received f-shares (III.3, Eq. 13)
  kReducedLambdaPsi = 5,///< published: winner-excluded Lambda/Psi (III.4)
  kPaymentClaim = 6,    ///< published: full payment vector (IV.1)
  kAbort = 7,           ///< published: protocol abort with reason
};

/// Why an agent aborted; mirrored in Outcome for the faithfulness harness.
enum class AbortReason : std::uint32_t {
  kNone = 0,
  kMalformedMessage,       ///< undecodable payload
  kMissingShares,          ///< private share never arrived (II.4 timeout)
  kMissingCommitments,     ///< commitment posting never arrived
  kBadShareCommitment,     ///< Eq. (7)/(8)/(9) failed
  kMissingLambdaPsi,       ///< Lambda/Psi posting never arrived
  kBadLambdaPsi,           ///< Eq. (11) failed
  kFirstPriceUnresolved,   ///< Eq. (12) found no admissible degree
  kMissingDisclosure,      ///< fewer than y*+1 valid disclosures (III.3)
  kBadDisclosure,          ///< Eq. (13) failed
  kNoWinner,               ///< no f-polynomial interpolated to zero
  kBadReducedLambdaPsi,    ///< Eq. (11)-excluding-winner failed
  kSecondPriceUnresolved,  ///< second-price resolution failed
  kPaymentDisagreement,    ///< payment claims not unanimous (IV.1)
  kMissingPaymentClaim,
  kQuorumLost,             ///< more than c agents silent (crash-tolerant mode)
};

const char* to_string(AbortReason reason);

template <dmw::num::GroupBackend G>
struct KeyExchangeMsg {
  typename G::Elem public_key{};

  std::vector<std::uint8_t> encode(const G& g) const {
    net::Writer w;
    net::write_elem(w, g, public_key);
    return w.take();
  }

  static KeyExchangeMsg decode(const G& g,
                               std::span<const std::uint8_t> bytes) {
    net::Reader r(bytes);
    KeyExchangeMsg msg;
    msg.public_key = net::read_elem(r, g);
    r.expect_done();
    return msg;
  }
};

template <dmw::num::GroupBackend G>
struct SharesMsg {
  std::uint32_t task = 0;
  ShareBundle<G> shares{};

  std::vector<std::uint8_t> encode(const G& g) const {
    net::Writer w;
    w.u32(task);
    net::write_scalar(w, g, shares.e);
    net::write_scalar(w, g, shares.f);
    net::write_scalar(w, g, shares.g);
    net::write_scalar(w, g, shares.h);
    return w.take();
  }

  static SharesMsg decode(const G& g, std::span<const std::uint8_t> bytes) {
    net::Reader r(bytes);
    SharesMsg msg;
    msg.task = r.u32();
    msg.shares.e = net::read_scalar(r, g);
    msg.shares.f = net::read_scalar(r, g);
    msg.shares.g = net::read_scalar(r, g);
    msg.shares.h = net::read_scalar(r, g);
    r.expect_done();
    return msg;
  }
};

template <dmw::num::GroupBackend G>
struct CommitmentsMsg {
  std::uint32_t task = 0;
  CommitmentVectors<G> commitments;

  std::vector<std::uint8_t> encode(const G& g) const {
    net::Writer w;
    w.u32(task);
    for (const auto* vec :
         {&commitments.O, &commitments.Q, &commitments.R}) {
      w.varint(vec->size());
      for (const auto& e : *vec) net::write_elem(w, g, e);
    }
    return w.take();
  }

  static CommitmentsMsg decode(const G& g,
                               std::span<const std::uint8_t> bytes) {
    net::Reader r(bytes);
    CommitmentsMsg msg;
    msg.task = r.u32();
    for (auto* vec : {&msg.commitments.O, &msg.commitments.Q,
                      &msg.commitments.R}) {
      const std::uint64_t len = r.varint();
      if (len > 4096) throw net::DecodeError("commitment vector too long");
      vec->reserve(len);
      for (std::uint64_t i = 0; i < len; ++i)
        vec->push_back(net::read_elem(r, g));
    }
    r.expect_done();
    return msg;
  }
};

template <dmw::num::GroupBackend G>
struct LambdaPsiMsg {
  std::uint32_t task = 0;
  typename G::Elem lambda{};
  typename G::Elem psi{};

  std::vector<std::uint8_t> encode(const G& g) const {
    net::Writer w;
    w.u32(task);
    net::write_elem(w, g, lambda);
    net::write_elem(w, g, psi);
    return w.take();
  }

  static LambdaPsiMsg decode(const G& g, std::span<const std::uint8_t> bytes) {
    net::Reader r(bytes);
    LambdaPsiMsg msg;
    msg.task = r.u32();
    msg.lambda = net::read_elem(r, g);
    msg.psi = net::read_elem(r, g);
    r.expect_done();
    return msg;
  }
};

/// Agent k disclosing the f-shares it received: f_1(a_k), ..., f_n(a_k).
template <dmw::num::GroupBackend G>
struct WinnerSharesMsg {
  std::uint32_t task = 0;
  std::vector<typename G::Scalar> f_shares;

  std::vector<std::uint8_t> encode(const G& g) const {
    net::Writer w;
    w.u32(task);
    w.varint(f_shares.size());
    for (const auto& s : f_shares) net::write_scalar(w, g, s);
    return w.take();
  }

  static WinnerSharesMsg decode(const G& g,
                                std::span<const std::uint8_t> bytes) {
    net::Reader r(bytes);
    WinnerSharesMsg msg;
    msg.task = r.u32();
    const std::uint64_t len = r.varint();
    if (len > 4096) throw net::DecodeError("share vector too long");
    msg.f_shares.reserve(len);
    for (std::uint64_t i = 0; i < len; ++i)
      msg.f_shares.push_back(net::read_scalar(r, g));
    r.expect_done();
    return msg;
  }
};

struct PaymentClaimMsg {
  std::vector<std::uint64_t> payments;  ///< claimed P_i for every agent

  std::vector<std::uint8_t> encode() const {
    net::Writer w;
    w.u64_vec(payments);
    return w.take();
  }

  static PaymentClaimMsg decode(std::span<const std::uint8_t> bytes) {
    net::Reader r(bytes);
    PaymentClaimMsg msg;
    msg.payments = r.u64_vec();
    r.expect_done();
    return msg;
  }
};

struct AbortMsg {
  std::uint32_t task = 0;
  AbortReason reason = AbortReason::kNone;

  std::vector<std::uint8_t> encode() const {
    net::Writer w;
    w.u32(task);
    w.u32(static_cast<std::uint32_t>(reason));
    return w.take();
  }

  static AbortMsg decode(std::span<const std::uint8_t> bytes) {
    net::Reader r(bytes);
    AbortMsg msg;
    msg.task = r.u32();
    msg.reason = static_cast<AbortReason>(r.u32());
    r.expect_done();
    return msg;
  }
};

}  // namespace dmw::proto
