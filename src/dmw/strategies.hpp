// The deviation catalogue.
//
// One strategy class per deviation analyzed in the proofs of Theorem 4
// (strong algorithm compatibility) and Theorem 8 (voluntary algorithm
// participation). The faithfulness experiments run each of these as a
// unilateral deviation against honest opponents and verify the deviant's
// utility never exceeds its honest utility.
#pragma once

#include <cstdint>

#include "dmw/strategy.hpp"
#include "support/rng.hpp"

namespace dmw::proto {

/// Information-revelation deviation: misreport the bid for every task by a
/// fixed offset within W (over- or under-bidding).
template <dmw::num::GroupBackend G>
class MisreportStrategy : public Strategy<G> {
 public:
  explicit MisreportStrategy(int index_offset) : offset_(index_offset) {}
  std::string name() const override {
    return offset_ > 0 ? "misreport(+" + std::to_string(offset_) + ")"
                       : "misreport(" + std::to_string(offset_) + ")";
  }

  std::vector<mech::Cost> choose_bids(const std::vector<mech::Cost>& costs,
                                      const mech::BidSet& bids) override {
    std::vector<mech::Cost> out;
    out.reserve(costs.size());
    for (mech::Cost c : costs) {
      const auto idx = static_cast<std::ptrdiff_t>(bids.index_of(c)) + offset_;
      const auto clamped = std::min<std::ptrdiff_t>(
          std::max<std::ptrdiff_t>(idx, 0),
          static_cast<std::ptrdiff_t>(bids.size()) - 1);
      out.push_back(bids.values()[static_cast<std::size_t>(clamped)]);
    }
    return out;
  }

 private:
  int offset_;
};

/// Misreport a single task's bid to a specific value (used by the
/// exhaustive truthfulness sweep).
template <dmw::num::GroupBackend G>
class SingleTaskMisreport : public Strategy<G> {
 public:
  SingleTaskMisreport(std::size_t task, mech::Cost bid)
      : task_(task), bid_(bid) {}
  std::string name() const override { return "misreport-one-task"; }

  std::vector<mech::Cost> choose_bids(const std::vector<mech::Cost>& costs,
                                      const mech::BidSet&) override {
    std::vector<mech::Cost> out = costs;
    DMW_REQUIRE(task_ < out.size());
    out[task_] = bid_;
    return out;
  }

 private:
  std::size_t task_;
  mech::Cost bid_;
};

/// Computational deviation (Thm. 4): send a corrupted share to one victim.
/// Detected by the victim's Eq. (7)-(9) checks.
template <dmw::num::GroupBackend G>
class CorruptShareStrategy : public Strategy<G> {
 public:
  explicit CorruptShareStrategy(std::size_t victim) : victim_(victim) {}
  std::string name() const override { return "corrupt-share"; }

  bool edit_share(std::size_t, std::size_t recipient,
                  ShareBundle<G>& shares) override {
    if (recipient == victim_) shares.e = bump(shares.e);
    return true;
  }

 private:
  static std::uint64_t bump(std::uint64_t v) { return v ^ 1; }
  template <std::size_t W>
  static dmw::num::BigUInt<W> bump(dmw::num::BigUInt<W> v) {
    v.set_limb(0, v.limb(0) ^ 1);
    return v;
  }
  std::size_t victim_;
};

/// Withhold the share bundle from one victim (Thm. 4: "fails to send the
/// shares ... an agent not receiving its share will abort").
template <dmw::num::GroupBackend G>
class WithholdShareStrategy : public Strategy<G> {
 public:
  explicit WithholdShareStrategy(std::size_t victim) : victim_(victim) {}
  std::string name() const override { return "withhold-share"; }

  bool edit_share(std::size_t, std::size_t recipient,
                  ShareBundle<G>&) override {
    return recipient != victim_;
  }

 private:
  std::size_t victim_;
};

/// Publish commitments inconsistent with the distributed shares.
template <dmw::num::GroupBackend G>
class InconsistentCommitmentsStrategy : public Strategy<G> {
 public:
  std::string name() const override { return "inconsistent-commitments"; }

  bool edit_commitments(std::size_t,
                        CommitmentVectors<G>& commitments) override {
    if (!commitments.O.empty())
      std::swap(commitments.O.front(), commitments.O.back());
    return true;
  }
};

/// Never publish commitments (Thm. 4: "neglects to send the commitments").
template <dmw::num::GroupBackend G>
class WithholdCommitmentsStrategy : public Strategy<G> {
 public:
  std::string name() const override { return "withhold-commitments"; }
  bool edit_commitments(std::size_t, CommitmentVectors<G>&) override {
    return false;
  }
};

/// Publish a miscomputed Lambda (Thm. 4: fails Eq. (11)).
template <dmw::num::GroupBackend G>
class BadLambdaStrategy : public Strategy<G> {
 public:
  std::string name() const override { return "bad-lambda"; }
  bool edit_lambda_psi(std::size_t, typename G::Elem& lambda,
                       typename G::Elem&) override {
    lambda_tweak(lambda);
    return true;
  }

 private:
  static void lambda_tweak(std::uint64_t& v) { v ^= 2; }
  template <std::size_t W>
  static void lambda_tweak(dmw::num::BigUInt<W>& v) {
    v.set_limb(0, v.limb(0) ^ 2);
  }
};

/// A *compensated* Lambda/Psi forgery: multiply Lambda by z1^delta and Psi
/// by z1^{-delta} so Eq. (11) still holds. This is the strongest published-
/// value attack available without breaking commitments; it corrupts the
/// degree resolution input and (per Thm. 4's case analysis) either aborts
/// the run or leaves the resolution unchanged.
template <dmw::num::GroupBackend G>
class CompensatedLambdaStrategy : public Strategy<G> {
 public:
  explicit CompensatedLambdaStrategy(const G& group, std::uint64_t delta)
      : group_(group), delta_(delta) {}
  std::string name() const override { return "compensated-lambda"; }

  bool edit_lambda_psi(std::size_t, typename G::Elem& lambda,
                       typename G::Elem& psi) override {
    const auto d = group_.scalar_from_u64(delta_);
    lambda = group_.mul(lambda, group_.pow(group_.z1(), d));
    psi = group_.mul(psi, group_.inv(group_.pow(group_.z1(), d)));
    return true;
  }

 private:
  const G& group_;
  std::uint64_t delta_;
};

/// Withhold Lambda/Psi entirely.
template <dmw::num::GroupBackend G>
class SilentLambdaStrategy : public Strategy<G> {
 public:
  std::string name() const override { return "silent-lambda"; }
  bool edit_lambda_psi(std::size_t, typename G::Elem&,
                       typename G::Elem&) override {
    return false;
  }
};

/// Refuse to disclose f-shares during winner identification (Thm. 8:
/// "too few agents disclose ... the protocol deadlocks").
template <dmw::num::GroupBackend G>
class WithholdDisclosureStrategy : public Strategy<G> {
 public:
  std::string name() const override { return "withhold-disclosure"; }
  bool edit_disclosure(std::size_t, bool,
                       std::vector<typename G::Scalar>&) override {
    return false;
  }
};

/// Disclose corrupted f-shares (fails Eq. (13)).
template <dmw::num::GroupBackend G>
class CorruptDisclosureStrategy : public Strategy<G> {
 public:
  std::string name() const override { return "corrupt-disclosure"; }
  bool edit_disclosure(std::size_t, bool should_disclose,
                       std::vector<typename G::Scalar>& f_shares) override {
    if (should_disclose && !f_shares.empty()) bump(f_shares.front());
    return should_disclose;
  }

 private:
  static void bump(std::uint64_t& v) { v ^= 1; }
  template <std::size_t W>
  static void bump(dmw::num::BigUInt<W>& v) {
    v.set_limb(0, v.limb(0) ^ 1);
  }
};

/// Volunteer a disclosure even when not prescribed (Thm. 4: "transmits its
/// share when not needed, it receives the same amount of utility").
template <dmw::num::GroupBackend G>
class EagerDisclosureStrategy : public Strategy<G> {
 public:
  std::string name() const override { return "eager-disclosure"; }
  bool edit_disclosure(std::size_t, bool,
                       std::vector<typename G::Scalar>&) override {
    return true;  // always disclose
  }
};

/// Publish a miscomputed reduced Lambda (fails the winner-excluded Eq. 11).
template <dmw::num::GroupBackend G>
class BadReducedLambdaStrategy : public Strategy<G> {
 public:
  std::string name() const override { return "bad-reduced-lambda"; }
  bool edit_reduced_lambda_psi(std::size_t, typename G::Elem& lambda,
                               typename G::Elem&) override {
    bump(lambda);
    return true;
  }

 private:
  static void bump(std::uint64_t& v) { v ^= 2; }
  template <std::size_t W>
  static void bump(dmw::num::BigUInt<W>& v) {
    v.set_limb(0, v.limb(0) ^ 2);
  }
};

/// Claim an inflated payment for itself (Phase IV: "the infrastructure will
/// detect the conflict and will issue no payments").
template <dmw::num::GroupBackend G>
class GreedyPaymentStrategy : public Strategy<G> {
 public:
  explicit GreedyPaymentStrategy(std::size_t self) : self_(self) {}
  std::string name() const override { return "greedy-payment"; }
  bool edit_payment_claim(std::vector<std::uint64_t>& payments) override {
    payments[self_] += 1000;
    return true;
  }

 private:
  std::size_t self_;
};

/// Never submit a payment claim.
template <dmw::num::GroupBackend G>
class SilentPaymentStrategy : public Strategy<G> {
 public:
  std::string name() const override { return "silent-payment"; }
  bool edit_payment_claim(std::vector<std::uint64_t>&) override {
    return false;
  }
};

/// Crash fault: the agent stops sending anything from a given point on
/// (it is fail-silent, not Byzantine). Used by the crash-tolerance
/// experiments for Open Problem 11.
enum class CrashPoint {
  kBeforeBidding,    ///< never sends shares or commitments
  kAfterBidding,     ///< completes Phase II, silent from III on
  kAfterLambdaPsi,   ///< silent from the disclosure step on
  kAfterDisclosure,  ///< silent from the reduced Lambda/Psi step on
  kAfterReduced,     ///< only the payment claim is lost
};

template <dmw::num::GroupBackend G>
class CrashStrategy : public Strategy<G> {
 public:
  explicit CrashStrategy(CrashPoint when) : when_(when) {}
  std::string name() const override { return "crash"; }
  bool fail_silent() const override { return true; }

  bool edit_key_exchange(typename G::Elem&) override {
    return when_ > CrashPoint::kBeforeBidding;
  }
  bool edit_share(std::size_t, std::size_t, ShareBundle<G>&) override {
    return when_ > CrashPoint::kBeforeBidding;
  }
  bool edit_commitments(std::size_t, CommitmentVectors<G>&) override {
    return when_ > CrashPoint::kBeforeBidding;
  }
  bool edit_lambda_psi(std::size_t, typename G::Elem&,
                       typename G::Elem&) override {
    return when_ > CrashPoint::kAfterBidding;
  }
  bool edit_disclosure(std::size_t, bool should_disclose,
                       std::vector<typename G::Scalar>&) override {
    return should_disclose && when_ > CrashPoint::kAfterLambdaPsi;
  }
  bool edit_reduced_lambda_psi(std::size_t, typename G::Elem&,
                               typename G::Elem&) override {
    return when_ > CrashPoint::kAfterDisclosure;
  }
  bool edit_payment_claim(std::vector<std::uint64_t>&) override {
    return false;  // every crash point precedes settlement
  }

 private:
  CrashPoint when_;
};

}  // namespace dmw::proto
