// Protocol audit transcript.
//
// Every published protocol message is absorbed into a running hash with a
// domain-separated label. At the end of a run all honest agents must hold the
// same transcript digest; a mismatch is evidence that some party equivocated
// on the broadcast channel. (The paper assumes a reliable broadcast; the
// transcript gives the simulation a cheap way to *check* that assumption.)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "crypto/sha256.hpp"

namespace dmw::crypto {

class Transcript {
 public:
  explicit Transcript(std::string_view domain) {
    append_label("dmw-transcript-v1");
    append_label(domain);
  }

  void append_label(std::string_view label) {
    absorb_length(label.size());
    hash_.update(label);
  }

  void append_u64(std::string_view label, std::uint64_t value) {
    append_label(label);
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
      bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
    absorb_length(8);
    hash_.update(std::span<const std::uint8_t>(bytes));
  }

  void append_bytes(std::string_view label,
                    std::span<const std::uint8_t> bytes) {
    append_label(label);
    absorb_length(bytes.size());
    hash_.update(bytes);
  }

  /// Finalize a copy of the running state (the transcript stays usable).
  Digest256 digest() const {
    Sha256 copy = hash_;
    return copy.finish();
  }

  std::string digest_hex() const { return crypto::digest_hex(digest()); }

 private:
  void absorb_length(std::size_t n) {
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
      bytes[i] = static_cast<std::uint8_t>(std::uint64_t{n} >> (8 * i));
    hash_.update(std::span<const std::uint8_t>(bytes));
  }

  Sha256 hash_;
};

}  // namespace dmw::crypto
