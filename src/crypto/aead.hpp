// Authenticated encryption (ChaCha20 + HMAC-SHA256, encrypt-then-MAC).
//
// Realizes the paper's "private channels among the agents" assumption:
// Phase II share bundles travel sealed under pairwise session keys (see
// crypto/dh.hpp). Not a misuse-resistant AEAD — nonces are deterministic
// per-message counters managed by the channel layer and must never repeat
// under one key.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "support/secret.hpp"

namespace dmw::crypto {

inline constexpr std::size_t kAeadKeyBytes = 32;
inline constexpr std::size_t kAeadTagBytes = 16;

/// AEAD key material is always handled through the secret-hygiene layer:
/// zeroized on destruction, auditable reveal() for the primitive calls.
using AeadKey = Secret<std::array<std::uint8_t, kAeadKeyBytes>>;

/// Build an AeadKey from raw bytes, wiping nothing (the caller owns the
/// source buffer and should zeroize it after handing the bytes over).
AeadKey make_aead_key(std::span<const std::uint8_t> bytes);

/// XOR `data` in place with the ChaCha20 keystream for (key, nonce).
void chacha20_xor(std::span<const std::uint8_t> key32, std::uint64_t nonce,
                  std::span<std::uint8_t> data);

/// Seal: returns ciphertext || tag. `aad` is authenticated but not
/// encrypted (the channel layer binds sender, receiver and message kind).
std::vector<std::uint8_t> aead_seal(const AeadKey& key, std::uint64_t nonce,
                                    std::span<const std::uint8_t> plaintext,
                                    std::span<const std::uint8_t> aad);

/// Open: verifies the tag (constant-time comparison) and decrypts.
/// Returns nullopt on any authentication failure.
std::optional<std::vector<std::uint8_t>> aead_open(
    const AeadKey& key, std::uint64_t nonce,
    std::span<const std::uint8_t> sealed, std::span<const std::uint8_t> aad);

}  // namespace dmw::crypto
