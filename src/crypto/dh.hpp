// Diffie-Hellman key agreement over the DMW Schnorr group.
//
// The same published group (p, q, z1) that carries the protocol's
// commitments also provides pairwise session keys: each agent publishes
// z1^x_i once; the (i, k) channel key is HKDF(z1^{x_i x_k}) with the agent
// ids in the info string for directional separation. Shares then travel
// sealed under crypto/aead.hpp, realizing the paper's "securely transmits
// the shares" (II.2) without any extra trust assumption.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/aead.hpp"
#include "crypto/sha256.hpp"
#include "net/serialize.hpp"
#include "numeric/group.hpp"

namespace dmw::crypto {

template <dmw::num::GroupBackend G>
struct DhKeyPair {
  typename G::Scalar secret;
  typename G::Elem public_key;

  template <class Rng>
  static DhKeyPair generate(const G& g, Rng& rng) {
    DhKeyPair pair;
    pair.secret = g.random_nonzero_scalar(rng);
    pair.public_key = g.pow(g.z1(), pair.secret);
    return pair;
  }
};

/// Raw shared group element z1^{x_mine * x_theirs}.
template <dmw::num::GroupBackend G>
typename G::Elem dh_shared_element(const G& g,
                                   const typename G::Scalar& my_secret,
                                   const typename G::Elem& their_public) {
  return g.pow(their_public, my_secret);
}

/// Directional 32-byte channel key for messages sender -> receiver.
/// Both endpoints derive the same value (the DH element is symmetric; the
/// direction lives in the HKDF info string).
template <dmw::num::GroupBackend G>
std::array<std::uint8_t, kAeadKeyBytes> derive_channel_key(
    const G& g, const typename G::Elem& shared, std::size_t sender,
    std::size_t receiver) {
  net::Writer w;
  net::write_elem(w, g, shared);
  const std::string info = "dmw-channel-" + std::to_string(sender) + "-" +
                           std::to_string(receiver);
  const auto bytes = hkdf_sha256(w.bytes(), {}, info, kAeadKeyBytes);
  std::array<std::uint8_t, kAeadKeyBytes> key{};
  std::copy(bytes.begin(), bytes.end(), key.begin());
  return key;
}

}  // namespace dmw::crypto
