// Diffie-Hellman key agreement over the DMW Schnorr group.
//
// The same published group (p, q, z1) that carries the protocol's
// commitments also provides pairwise session keys: each agent publishes
// z1^x_i once; the (i, k) channel key is HKDF(z1^{x_i x_k}) with the agent
// ids in the info string for directional separation. Shares then travel
// sealed under crypto/aead.hpp, realizing the paper's "securely transmits
// the shares" (II.2) without any extra trust assumption.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/aead.hpp"
#include "crypto/sha256.hpp"
#include "net/serialize.hpp"
#include "numeric/group.hpp"
#include "support/secret.hpp"

namespace dmw::crypto {

template <dmw::num::GroupBackend G>
struct DhKeyPair {
  Secret<typename G::Scalar> secret;
  typename G::Elem public_key;

  template <class Rng>
  static DhKeyPair generate(const G& g, Rng& rng) {
    DhKeyPair pair;
    pair.secret = Secret<typename G::Scalar>(g.random_nonzero_scalar(rng));
    pair.public_key = g.pow(g.z1(), pair.secret.reveal());
    return pair;
  }
};

/// Shared group element z1^{x_mine * x_theirs}. Key material: it feeds the
/// channel KDF and never travels or logs, so it stays wrapped.
template <dmw::num::GroupBackend G>
Secret<typename G::Elem> dh_shared_element(
    const G& g, const Secret<typename G::Scalar>& my_secret,
    const typename G::Elem& their_public) {
  return Secret<typename G::Elem>(g.pow(their_public, my_secret.reveal()));
}

/// Directional 32-byte channel key for messages sender -> receiver.
/// Both endpoints derive the same value (the DH element is symmetric; the
/// direction lives in the HKDF info string).
template <dmw::num::GroupBackend G>
AeadKey derive_channel_key(const G& g,
                           const Secret<typename G::Elem>& shared,
                           std::size_t sender, std::size_t receiver) {
  net::Writer w;
  net::write_elem(w, g, shared.reveal());
  std::vector<std::uint8_t> ikm = w.take();  // serialized secret element
  const std::string info = "dmw-channel-" + std::to_string(sender) + "-" +
                           std::to_string(receiver);
  auto bytes = hkdf_sha256(ikm, {}, info, kAeadKeyBytes);
  AeadKey key = make_aead_key(bytes);
  zeroize(bytes);
  zeroize(ikm);
  return key;
}

}  // namespace dmw::crypto
