// Feldman verifiable secret sharing.
//
// Completes the secret-sharing substrate: DMW's O/Q/R commitments are a
// two-generator (Pedersen-style) variant of Feldman's classic scheme, where
// the dealer publishes z1^{a_l} for every coefficient so each shareholder
// can verify its share against the public commitments:
//     z1^{f(alpha_i)} == prod_l C_l^{alpha_i^l}.
// Exposed as a standalone primitive for reuse and to make the lineage of
// the paper's Eqs. (7)-(9) explicit in code.
#pragma once

#include <vector>

#include "numeric/multiexp.hpp"
#include "poly/lagrange.hpp"
#include "poly/polynomial.hpp"

namespace dmw::crypto {

template <dmw::num::GroupBackend G>
struct FeldmanSharing {
  using Scalar = typename G::Scalar;
  using Elem = typename G::Elem;

  std::size_t threshold = 0;
  std::vector<Scalar> points;
  std::vector<Scalar> shares;
  /// Public coefficient commitments C_l = z1^{a_l}, l = 0..threshold-1
  /// (C_0 = z1^{secret}; Feldman sharing reveals z1^{secret} by design).
  std::vector<Elem> commitments;

  /// Deal a (threshold, n) verifiable sharing of `secret`.
  template <class Rng>
  static FeldmanSharing deal(const G& g, const Scalar& secret,
                             std::size_t threshold,
                             const std::vector<Scalar>& points, Rng& rng) {
    DMW_REQUIRE(threshold >= 1 && points.size() >= threshold);
    std::vector<Scalar> coeffs(threshold, g.szero());
    coeffs[0] = secret;
    for (std::size_t l = 1; l < threshold; ++l)
      coeffs[l] = g.random_scalar(rng);
    const poly::Polynomial<G> f(coeffs);

    FeldmanSharing out;
    out.threshold = threshold;
    out.points = points;
    out.shares = f.eval_all(g, points);
    out.commitments.reserve(threshold);
    for (const auto& a : coeffs) out.commitments.push_back(g.pow(g.z1(), a));
    return out;
  }

  /// Shareholder-side verification of one share against the public
  /// commitments: z1^{share} == prod_l C_l^{alpha^l}.
  static bool verify_share(const G& g, const std::vector<Elem>& commitments,
                           const Scalar& alpha, const Scalar& share) {
    std::vector<Scalar> exponents;
    exponents.reserve(commitments.size());
    Scalar power = g.sone();  // alpha^0
    for (std::size_t l = 0; l < commitments.size(); ++l) {
      exponents.push_back(power);
      power = g.smul(power, alpha);
    }
    const auto rhs = dmw::num::multi_pow<G>(g, commitments, exponents);
    return g.pow(g.z1(), share) == rhs;
  }

  bool verify(const G& g, std::size_t index) const {
    DMW_REQUIRE(index < shares.size());
    return verify_share(g, commitments, points[index], shares[index]);
  }

  /// Reconstruct the secret from the first `count` >= threshold shares.
  Scalar reconstruct(const G& g, std::size_t count) const {
    DMW_REQUIRE(count >= threshold && count <= shares.size());
    return poly::interpolate_at_zero(g, points, shares, count);
  }
};

}  // namespace dmw::crypto
