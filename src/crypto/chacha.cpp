#include "crypto/chacha.hpp"

#include <cstring>

#include "crypto/sha256.hpp"

namespace dmw::crypto {

namespace {

// The keystream kernel below must not branch on key or counter material.
// dmwlint: constant-time
inline std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

}  // namespace

void chacha20_block(const std::array<std::uint32_t, 8>& key,
                    std::uint32_t counter,
                    const std::array<std::uint32_t, 3>& nonce,
                    std::array<std::uint8_t, 64>& out) {
  std::uint32_t state[16] = {
      0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,  // "expand 32-byte k"
      key[0], key[1], key[2], key[3],
      key[4], key[5], key[6], key[7],
      counter, nonce[0], nonce[1], nonce[2]};
  std::uint32_t working[16];
  std::memcpy(working, state, sizeof(state));
  for (int round = 0; round < 10; ++round) {
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = working[i] + state[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}
// dmwlint: end-constant-time

ChaChaRng::ChaChaRng(std::span<const std::uint8_t> key32,
                     std::uint64_t stream) {
  DMW_REQUIRE(key32.size() == 32);
  for (int i = 0; i < 8; ++i) {
    key_[i] = std::uint32_t{key32[4 * i]} |
              (std::uint32_t{key32[4 * i + 1]} << 8) |
              (std::uint32_t{key32[4 * i + 2]} << 16) |
              (std::uint32_t{key32[4 * i + 3]} << 24);
  }
  nonce_[0] = static_cast<std::uint32_t>(stream);
  nonce_[1] = static_cast<std::uint32_t>(stream >> 32);
  nonce_[2] = 0;
}

ChaChaRng ChaChaRng::from_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint8_t seed_bytes[8];
  for (int i = 0; i < 8; ++i)
    seed_bytes[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  const Digest256 key = Sha256::hash(std::span<const std::uint8_t>(seed_bytes));
  return ChaChaRng(std::span<const std::uint8_t>(key), stream);
}

void ChaChaRng::refill() {
  chacha20_block(key_, counter_, nonce_, block_);
  ++counter_;
  DMW_CHECK_MSG(counter_ != 0, "ChaChaRng stream exhausted");
  used_ = 0;
}

std::uint64_t ChaChaRng::next() {
  if (used_ + 8 > block_.size()) refill();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= std::uint64_t{block_[used_ + i]} << (8 * i);
  used_ += 8;
  return v;
}

void ChaChaRng::fill(std::span<std::uint8_t> out) {
  for (auto& b : out) {
    if (used_ >= block_.size()) refill();
    b = block_[used_++];
  }
}

}  // namespace dmw::crypto
