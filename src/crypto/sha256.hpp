// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for pseudonym derivation, deterministic per-task seed expansion
// (via HMAC/HKDF) and the protocol audit transcript.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dmw::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  }
  /// Finalize and return the digest; the object must be reset() before reuse.
  Digest256 finish();

  static Digest256 hash(std::span<const std::uint8_t> data) {
    Sha256 h;
    h.update(data);
    return h.finish();
  }
  static Digest256 hash(std::string_view text) {
    Sha256 h;
    h.update(text);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

std::string digest_hex(const Digest256& digest);

/// HMAC-SHA256 (RFC 2104).
Digest256 hmac_sha256(std::span<const std::uint8_t> key,
                      std::span<const std::uint8_t> message);

/// HKDF-SHA256 expand (RFC 5869); `length` <= 255*32.
std::vector<std::uint8_t> hkdf_sha256(std::span<const std::uint8_t> ikm,
                                      std::span<const std::uint8_t> salt,
                                      std::string_view info,
                                      std::size_t length);

}  // namespace dmw::crypto
