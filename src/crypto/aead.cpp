#include "crypto/aead.hpp"

#include <cstring>

#include "crypto/chacha.hpp"
#include "crypto/sha256.hpp"
#include "support/check.hpp"

namespace dmw::crypto {

namespace {

// Domain-separated subkeys: one for the cipher, one for the MAC.
struct SubKeys {
  std::array<std::uint8_t, 32> enc;
  std::array<std::uint8_t, 32> mac;
};

SubKeys derive_subkeys(std::span<const std::uint8_t> key32) {
  DMW_REQUIRE(key32.size() == kAeadKeyBytes);
  SubKeys keys;
  const auto enc = hkdf_sha256(key32, {}, "dmw-aead-enc", 32);
  const auto mac = hkdf_sha256(key32, {}, "dmw-aead-mac", 32);
  std::memcpy(keys.enc.data(), enc.data(), 32);
  std::memcpy(keys.mac.data(), mac.data(), 32);
  return keys;
}

Digest256 compute_tag(std::span<const std::uint8_t> mac_key,
                      std::uint64_t nonce,
                      std::span<const std::uint8_t> ciphertext,
                      std::span<const std::uint8_t> aad) {
  // MAC input: len(aad) || aad || nonce || ciphertext (length framing
  // prevents boundary ambiguity).
  std::vector<std::uint8_t> input;
  input.reserve(16 + aad.size() + ciphertext.size());
  for (int i = 0; i < 8; ++i)
    input.push_back(static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(aad.size()) >> (8 * i)));
  input.insert(input.end(), aad.begin(), aad.end());
  for (int i = 0; i < 8; ++i)
    input.push_back(static_cast<std::uint8_t>(nonce >> (8 * i)));
  input.insert(input.end(), ciphertext.begin(), ciphertext.end());
  return hmac_sha256(mac_key, input);
}

bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace

void chacha20_xor(std::span<const std::uint8_t> key32, std::uint64_t nonce,
                  std::span<std::uint8_t> data) {
  DMW_REQUIRE(key32.size() == kAeadKeyBytes);
  std::array<std::uint32_t, 8> key;
  for (int i = 0; i < 8; ++i) {
    key[i] = std::uint32_t{key32[4 * i]} |
             (std::uint32_t{key32[4 * i + 1]} << 8) |
             (std::uint32_t{key32[4 * i + 2]} << 16) |
             (std::uint32_t{key32[4 * i + 3]} << 24);
  }
  const std::array<std::uint32_t, 3> nonce_words = {
      static_cast<std::uint32_t>(nonce),
      static_cast<std::uint32_t>(nonce >> 32), 0x64616561};  // "aead"
  std::array<std::uint8_t, 64> block;
  std::uint32_t counter = 0;
  for (std::size_t offset = 0; offset < data.size(); offset += 64) {
    chacha20_block(key, counter++, nonce_words, block);
    const std::size_t chunk = std::min<std::size_t>(64, data.size() - offset);
    for (std::size_t i = 0; i < chunk; ++i) data[offset + i] ^= block[i];
  }
}

std::vector<std::uint8_t> aead_seal(std::span<const std::uint8_t> key32,
                                    std::uint64_t nonce,
                                    std::span<const std::uint8_t> plaintext,
                                    std::span<const std::uint8_t> aad) {
  const SubKeys keys = derive_subkeys(key32);
  std::vector<std::uint8_t> out(plaintext.begin(), plaintext.end());
  chacha20_xor(keys.enc, nonce, out);
  const Digest256 tag = compute_tag(keys.mac, nonce, out, aad);
  out.insert(out.end(), tag.begin(), tag.begin() + kAeadTagBytes);
  return out;
}

std::optional<std::vector<std::uint8_t>> aead_open(
    std::span<const std::uint8_t> key32, std::uint64_t nonce,
    std::span<const std::uint8_t> sealed, std::span<const std::uint8_t> aad) {
  if (sealed.size() < kAeadTagBytes) return std::nullopt;
  const SubKeys keys = derive_subkeys(key32);
  const auto ciphertext = sealed.first(sealed.size() - kAeadTagBytes);
  const auto tag = sealed.last(kAeadTagBytes);
  const Digest256 expected = compute_tag(keys.mac, nonce, ciphertext, aad);
  if (!constant_time_equal(
          tag, std::span<const std::uint8_t>(expected.data(), kAeadTagBytes)))
    return std::nullopt;
  std::vector<std::uint8_t> out(ciphertext.begin(), ciphertext.end());
  chacha20_xor(keys.enc, nonce, out);
  return out;
}

}  // namespace dmw::crypto
