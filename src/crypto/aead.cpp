#include "crypto/aead.hpp"

#include <cstring>

#include "crypto/chacha.hpp"
#include "crypto/sha256.hpp"
#include "support/check.hpp"
#include "support/secret.hpp"

namespace dmw::crypto {

namespace {

// Domain-separated subkeys: one for the cipher, one for the MAC. Both live
// behind the secret-hygiene wrapper so they are wiped when sealing returns.
struct SubKeys {
  AeadKey enc;
  AeadKey mac;
};

SubKeys derive_subkeys(const AeadKey& key) {
  SubKeys keys;
  auto enc = hkdf_sha256(key.reveal(), {}, "dmw-aead-enc", 32);
  auto mac = hkdf_sha256(key.reveal(), {}, "dmw-aead-mac", 32);
  keys.enc = make_aead_key(enc);
  keys.mac = make_aead_key(mac);
  zeroize(enc);
  zeroize(mac);
  return keys;
}

Digest256 compute_tag(const AeadKey& mac_key, std::uint64_t nonce,
                      std::span<const std::uint8_t> ciphertext,
                      std::span<const std::uint8_t> aad) {
  // MAC input: len(aad) || aad || nonce || ciphertext (length framing
  // prevents boundary ambiguity).
  std::vector<std::uint8_t> input;
  input.reserve(16 + aad.size() + ciphertext.size());
  for (int i = 0; i < 8; ++i)
    input.push_back(static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(aad.size()) >> (8 * i)));
  input.insert(input.end(), aad.begin(), aad.end());
  for (int i = 0; i < 8; ++i)
    input.push_back(static_cast<std::uint8_t>(nonce >> (8 * i)));
  input.insert(input.end(), ciphertext.begin(), ciphertext.end());
  return hmac_sha256(mac_key.reveal(), input);
}

}  // namespace

AeadKey make_aead_key(std::span<const std::uint8_t> bytes) {
  DMW_REQUIRE(bytes.size() == kAeadKeyBytes);
  std::array<std::uint8_t, kAeadKeyBytes> raw{};
  std::memcpy(raw.data(), bytes.data(), kAeadKeyBytes);
  AeadKey key{raw};
  zeroize(raw);
  return key;
}

void chacha20_xor(std::span<const std::uint8_t> key32, std::uint64_t nonce,
                  std::span<std::uint8_t> data) {
  DMW_REQUIRE(key32.size() == kAeadKeyBytes);
  std::array<std::uint32_t, 8> key;
  for (int i = 0; i < 8; ++i) {
    key[i] = std::uint32_t{key32[4 * i]} |
             (std::uint32_t{key32[4 * i + 1]} << 8) |
             (std::uint32_t{key32[4 * i + 2]} << 16) |
             (std::uint32_t{key32[4 * i + 3]} << 24);
  }
  const std::array<std::uint32_t, 3> nonce_words = {
      static_cast<std::uint32_t>(nonce),
      static_cast<std::uint32_t>(nonce >> 32), 0x64616561};  // "aead"
  std::array<std::uint8_t, 64> block;
  std::uint32_t counter = 0;
  for (std::size_t offset = 0; offset < data.size(); offset += 64) {
    chacha20_block(key, counter++, nonce_words, block);
    const std::size_t chunk = std::min<std::size_t>(64, data.size() - offset);
    for (std::size_t i = 0; i < chunk; ++i) data[offset + i] ^= block[i];
  }
  zeroize(key);
  zeroize(block);
}

std::vector<std::uint8_t> aead_seal(const AeadKey& key, std::uint64_t nonce,
                                    std::span<const std::uint8_t> plaintext,
                                    std::span<const std::uint8_t> aad) {
  const SubKeys keys = derive_subkeys(key);
  std::vector<std::uint8_t> out(plaintext.begin(), plaintext.end());
  chacha20_xor(keys.enc.reveal(), nonce, out);
  const Digest256 tag = compute_tag(keys.mac, nonce, out, aad);
  out.insert(out.end(), tag.begin(), tag.begin() + kAeadTagBytes);
  return out;
}

std::optional<std::vector<std::uint8_t>> aead_open(
    const AeadKey& key, std::uint64_t nonce,
    std::span<const std::uint8_t> sealed, std::span<const std::uint8_t> aad) {
  if (sealed.size() < kAeadTagBytes) return std::nullopt;
  const SubKeys keys = derive_subkeys(key);
  const auto ciphertext = sealed.first(sealed.size() - kAeadTagBytes);
  const auto tag = sealed.last(kAeadTagBytes);
  const Digest256 expected = compute_tag(keys.mac, nonce, ciphertext, aad);
  if (!ct_eq(tag, std::span<const std::uint8_t>(expected.data(),
                                                kAeadTagBytes)))
    return std::nullopt;
  std::vector<std::uint8_t> out(ciphertext.begin(), ciphertext.end());
  chacha20_xor(keys.enc.reveal(), nonce, out);
  return out;
}

}  // namespace dmw::crypto
