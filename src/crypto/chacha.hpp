// ChaCha20-based deterministic CSPRNG (from scratch).
//
// Agents draw their secret polynomial coefficients from this generator: the
// statistical-quality xoshiro generator is fine for workloads, but the
// protocol's hiding properties rest on unpredictable coefficients, so agent
// secrets come from a keyed stream cipher. Deterministic seeding keeps runs
// reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "support/check.hpp"

namespace dmw::crypto {

/// Raw ChaCha20 block function (RFC 8439).
void chacha20_block(const std::array<std::uint32_t, 8>& key,
                    std::uint32_t counter,
                    const std::array<std::uint32_t, 3>& nonce,
                    std::array<std::uint8_t, 64>& out);

/// Deterministic random generator producing 64-bit words from a 32-byte key.
/// Satisfies std::uniform_random_bit_generator.
class ChaChaRng {
 public:
  using result_type = std::uint64_t;

  explicit ChaChaRng(std::span<const std::uint8_t> key32,
                     std::uint64_t stream = 0);

  /// Convenience: derive the key from a 64-bit seed via SHA-256.
  static ChaChaRng from_seed(std::uint64_t seed, std::uint64_t stream = 0);

  std::uint64_t next();
  std::uint64_t operator()() { return next(); }

  /// Unbiased integer in [0, bound).
  std::uint64_t below(std::uint64_t bound) {
    DMW_REQUIRE(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  void fill(std::span<std::uint8_t> out);

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }

 private:
  void refill();

  std::array<std::uint32_t, 8> key_{};
  std::array<std::uint32_t, 3> nonce_{};
  std::uint32_t counter_ = 0;
  std::array<std::uint8_t, 64> block_{};
  std::size_t used_ = 64;
};

}  // namespace dmw::crypto
