# Empty compiler generated dependencies file for dmw_core.
# This may be replaced when dependencies are built.
