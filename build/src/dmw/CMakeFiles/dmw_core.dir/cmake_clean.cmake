file(REMOVE_RECURSE
  "CMakeFiles/dmw_core.dir/messages.cpp.o"
  "CMakeFiles/dmw_core.dir/messages.cpp.o.d"
  "libdmw_core.a"
  "libdmw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
