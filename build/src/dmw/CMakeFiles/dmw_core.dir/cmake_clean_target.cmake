file(REMOVE_RECURSE
  "libdmw_core.a"
)
