# Empty dependencies file for dmw_net.
# This may be replaced when dependencies are built.
