file(REMOVE_RECURSE
  "libdmw_net.a"
)
