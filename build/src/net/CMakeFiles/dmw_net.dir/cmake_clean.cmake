file(REMOVE_RECURSE
  "CMakeFiles/dmw_net.dir/network.cpp.o"
  "CMakeFiles/dmw_net.dir/network.cpp.o.d"
  "libdmw_net.a"
  "libdmw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
