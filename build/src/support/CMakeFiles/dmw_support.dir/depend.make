# Empty dependencies file for dmw_support.
# This may be replaced when dependencies are built.
