file(REMOVE_RECURSE
  "libdmw_support.a"
)
