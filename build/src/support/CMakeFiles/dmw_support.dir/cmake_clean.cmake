file(REMOVE_RECURSE
  "CMakeFiles/dmw_support.dir/logging.cpp.o"
  "CMakeFiles/dmw_support.dir/logging.cpp.o.d"
  "CMakeFiles/dmw_support.dir/rng.cpp.o"
  "CMakeFiles/dmw_support.dir/rng.cpp.o.d"
  "CMakeFiles/dmw_support.dir/stats.cpp.o"
  "CMakeFiles/dmw_support.dir/stats.cpp.o.d"
  "libdmw_support.a"
  "libdmw_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmw_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
