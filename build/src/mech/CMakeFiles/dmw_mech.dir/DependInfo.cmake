
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mech/minwork.cpp" "src/mech/CMakeFiles/dmw_mech.dir/minwork.cpp.o" "gcc" "src/mech/CMakeFiles/dmw_mech.dir/minwork.cpp.o.d"
  "/root/repo/src/mech/opt.cpp" "src/mech/CMakeFiles/dmw_mech.dir/opt.cpp.o" "gcc" "src/mech/CMakeFiles/dmw_mech.dir/opt.cpp.o.d"
  "/root/repo/src/mech/problem.cpp" "src/mech/CMakeFiles/dmw_mech.dir/problem.cpp.o" "gcc" "src/mech/CMakeFiles/dmw_mech.dir/problem.cpp.o.d"
  "/root/repo/src/mech/schedule.cpp" "src/mech/CMakeFiles/dmw_mech.dir/schedule.cpp.o" "gcc" "src/mech/CMakeFiles/dmw_mech.dir/schedule.cpp.o.d"
  "/root/repo/src/mech/truthful.cpp" "src/mech/CMakeFiles/dmw_mech.dir/truthful.cpp.o" "gcc" "src/mech/CMakeFiles/dmw_mech.dir/truthful.cpp.o.d"
  "/root/repo/src/mech/vickrey.cpp" "src/mech/CMakeFiles/dmw_mech.dir/vickrey.cpp.o" "gcc" "src/mech/CMakeFiles/dmw_mech.dir/vickrey.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dmw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
