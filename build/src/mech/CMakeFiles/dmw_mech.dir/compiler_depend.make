# Empty compiler generated dependencies file for dmw_mech.
# This may be replaced when dependencies are built.
