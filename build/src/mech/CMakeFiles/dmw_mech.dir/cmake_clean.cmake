file(REMOVE_RECURSE
  "CMakeFiles/dmw_mech.dir/minwork.cpp.o"
  "CMakeFiles/dmw_mech.dir/minwork.cpp.o.d"
  "CMakeFiles/dmw_mech.dir/opt.cpp.o"
  "CMakeFiles/dmw_mech.dir/opt.cpp.o.d"
  "CMakeFiles/dmw_mech.dir/problem.cpp.o"
  "CMakeFiles/dmw_mech.dir/problem.cpp.o.d"
  "CMakeFiles/dmw_mech.dir/schedule.cpp.o"
  "CMakeFiles/dmw_mech.dir/schedule.cpp.o.d"
  "CMakeFiles/dmw_mech.dir/truthful.cpp.o"
  "CMakeFiles/dmw_mech.dir/truthful.cpp.o.d"
  "CMakeFiles/dmw_mech.dir/vickrey.cpp.o"
  "CMakeFiles/dmw_mech.dir/vickrey.cpp.o.d"
  "libdmw_mech.a"
  "libdmw_mech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmw_mech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
