file(REMOVE_RECURSE
  "libdmw_mech.a"
)
