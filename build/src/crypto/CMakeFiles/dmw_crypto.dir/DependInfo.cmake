
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aead.cpp" "src/crypto/CMakeFiles/dmw_crypto.dir/aead.cpp.o" "gcc" "src/crypto/CMakeFiles/dmw_crypto.dir/aead.cpp.o.d"
  "/root/repo/src/crypto/chacha.cpp" "src/crypto/CMakeFiles/dmw_crypto.dir/chacha.cpp.o" "gcc" "src/crypto/CMakeFiles/dmw_crypto.dir/chacha.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/dmw_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/dmw_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dmw_support.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/dmw_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
