file(REMOVE_RECURSE
  "libdmw_crypto.a"
)
