# Empty compiler generated dependencies file for dmw_crypto.
# This may be replaced when dependencies are built.
