file(REMOVE_RECURSE
  "CMakeFiles/dmw_crypto.dir/aead.cpp.o"
  "CMakeFiles/dmw_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/dmw_crypto.dir/chacha.cpp.o"
  "CMakeFiles/dmw_crypto.dir/chacha.cpp.o.d"
  "CMakeFiles/dmw_crypto.dir/sha256.cpp.o"
  "CMakeFiles/dmw_crypto.dir/sha256.cpp.o.d"
  "libdmw_crypto.a"
  "libdmw_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmw_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
