# Empty compiler generated dependencies file for dmw_numeric.
# This may be replaced when dependencies are built.
