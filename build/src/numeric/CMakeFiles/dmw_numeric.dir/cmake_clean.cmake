file(REMOVE_RECURSE
  "CMakeFiles/dmw_numeric.dir/biguint.cpp.o"
  "CMakeFiles/dmw_numeric.dir/biguint.cpp.o.d"
  "CMakeFiles/dmw_numeric.dir/group.cpp.o"
  "CMakeFiles/dmw_numeric.dir/group.cpp.o.d"
  "CMakeFiles/dmw_numeric.dir/modarith.cpp.o"
  "CMakeFiles/dmw_numeric.dir/modarith.cpp.o.d"
  "CMakeFiles/dmw_numeric.dir/primality.cpp.o"
  "CMakeFiles/dmw_numeric.dir/primality.cpp.o.d"
  "libdmw_numeric.a"
  "libdmw_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmw_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
