file(REMOVE_RECURSE
  "libdmw_numeric.a"
)
