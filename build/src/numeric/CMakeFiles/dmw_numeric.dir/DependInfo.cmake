
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/biguint.cpp" "src/numeric/CMakeFiles/dmw_numeric.dir/biguint.cpp.o" "gcc" "src/numeric/CMakeFiles/dmw_numeric.dir/biguint.cpp.o.d"
  "/root/repo/src/numeric/group.cpp" "src/numeric/CMakeFiles/dmw_numeric.dir/group.cpp.o" "gcc" "src/numeric/CMakeFiles/dmw_numeric.dir/group.cpp.o.d"
  "/root/repo/src/numeric/modarith.cpp" "src/numeric/CMakeFiles/dmw_numeric.dir/modarith.cpp.o" "gcc" "src/numeric/CMakeFiles/dmw_numeric.dir/modarith.cpp.o.d"
  "/root/repo/src/numeric/primality.cpp" "src/numeric/CMakeFiles/dmw_numeric.dir/primality.cpp.o" "gcc" "src/numeric/CMakeFiles/dmw_numeric.dir/primality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dmw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
