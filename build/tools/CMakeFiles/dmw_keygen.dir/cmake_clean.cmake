file(REMOVE_RECURSE
  "CMakeFiles/dmw_keygen.dir/dmw_keygen.cpp.o"
  "CMakeFiles/dmw_keygen.dir/dmw_keygen.cpp.o.d"
  "dmw_keygen"
  "dmw_keygen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmw_keygen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
