# Empty compiler generated dependencies file for dmw_keygen.
# This may be replaced when dependencies are built.
