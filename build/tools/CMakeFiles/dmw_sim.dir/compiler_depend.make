# Empty compiler generated dependencies file for dmw_sim.
# This may be replaced when dependencies are built.
