file(REMOVE_RECURSE
  "CMakeFiles/dmw_sim.dir/dmw_sim.cpp.o"
  "CMakeFiles/dmw_sim.dir/dmw_sim.cpp.o.d"
  "dmw_sim"
  "dmw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
