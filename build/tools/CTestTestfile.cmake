# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_sim_honest "/root/repo/build/tools/dmw_sim" "--n" "6" "--m" "2" "--seed" "3" "--json")
set_tests_properties(tool_sim_honest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_deviant "/root/repo/build/tools/dmw_sim" "--n" "5" "--m" "1" "--deviant" "withhold-commitments" "--deviator" "2")
set_tests_properties(tool_sim_deviant PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_crash_tolerant "/root/repo/build/tools/dmw_sim" "--n" "9" "--m" "1" "--c" "2" "--crash-tolerant" "--crashes" "2" "--json")
set_tests_properties(tool_sim_crash_tolerant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_plain "/root/repo/build/tools/dmw_sim" "--n" "5" "--m" "1" "--plain")
set_tests_properties(tool_sim_plain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_help "/root/repo/build/tools/dmw_sim" "--help")
set_tests_properties(tool_sim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_keygen "/root/repo/build/tools/dmw_keygen" "--n" "8" "--c" "2" "--json")
set_tests_properties(tool_keygen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_keygen_256 "/root/repo/build/tools/dmw_keygen" "--backend" "256" "--p-bits" "96" "--q-bits" "64")
set_tests_properties(tool_keygen_256 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
