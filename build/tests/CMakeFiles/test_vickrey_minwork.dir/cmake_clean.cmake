file(REMOVE_RECURSE
  "CMakeFiles/test_vickrey_minwork.dir/test_vickrey_minwork.cpp.o"
  "CMakeFiles/test_vickrey_minwork.dir/test_vickrey_minwork.cpp.o.d"
  "test_vickrey_minwork"
  "test_vickrey_minwork.pdb"
  "test_vickrey_minwork[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vickrey_minwork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
