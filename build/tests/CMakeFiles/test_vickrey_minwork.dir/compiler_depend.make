# Empty compiler generated dependencies file for test_vickrey_minwork.
# This may be replaced when dependencies are built.
