# Empty compiler generated dependencies file for test_polycommit.
# This may be replaced when dependencies are built.
