file(REMOVE_RECURSE
  "CMakeFiles/test_polycommit.dir/test_polycommit.cpp.o"
  "CMakeFiles/test_polycommit.dir/test_polycommit.cpp.o.d"
  "test_polycommit"
  "test_polycommit.pdb"
  "test_polycommit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polycommit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
