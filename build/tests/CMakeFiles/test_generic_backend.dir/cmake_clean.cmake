file(REMOVE_RECURSE
  "CMakeFiles/test_generic_backend.dir/test_generic_backend.cpp.o"
  "CMakeFiles/test_generic_backend.dir/test_generic_backend.cpp.o.d"
  "test_generic_backend"
  "test_generic_backend.pdb"
  "test_generic_backend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generic_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
