# Empty dependencies file for test_generic_backend.
# This may be replaced when dependencies are built.
