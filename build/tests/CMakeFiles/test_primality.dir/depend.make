# Empty dependencies file for test_primality.
# This may be replaced when dependencies are built.
