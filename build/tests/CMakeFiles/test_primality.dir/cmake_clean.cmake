file(REMOVE_RECURSE
  "CMakeFiles/test_primality.dir/test_primality.cpp.o"
  "CMakeFiles/test_primality.dir/test_primality.cpp.o.d"
  "test_primality"
  "test_primality.pdb"
  "test_primality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_primality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
