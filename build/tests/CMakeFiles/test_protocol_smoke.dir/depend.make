# Empty dependencies file for test_protocol_smoke.
# This may be replaced when dependencies are built.
