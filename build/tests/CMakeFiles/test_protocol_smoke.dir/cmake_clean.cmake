file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_smoke.dir/test_protocol_smoke.cpp.o"
  "CMakeFiles/test_protocol_smoke.dir/test_protocol_smoke.cpp.o.d"
  "test_protocol_smoke"
  "test_protocol_smoke.pdb"
  "test_protocol_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
