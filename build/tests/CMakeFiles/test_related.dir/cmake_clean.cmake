file(REMOVE_RECURSE
  "CMakeFiles/test_related.dir/test_related.cpp.o"
  "CMakeFiles/test_related.dir/test_related.cpp.o.d"
  "test_related"
  "test_related.pdb"
  "test_related[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_related.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
