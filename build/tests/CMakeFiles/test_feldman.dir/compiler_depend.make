# Empty compiler generated dependencies file for test_feldman.
# This may be replaced when dependencies are built.
