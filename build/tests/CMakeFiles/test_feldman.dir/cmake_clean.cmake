file(REMOVE_RECURSE
  "CMakeFiles/test_feldman.dir/test_feldman.cpp.o"
  "CMakeFiles/test_feldman.dir/test_feldman.cpp.o.d"
  "test_feldman"
  "test_feldman.pdb"
  "test_feldman[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feldman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
