# Empty dependencies file for test_biguint.
# This may be replaced when dependencies are built.
