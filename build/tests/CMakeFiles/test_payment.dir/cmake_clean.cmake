file(REMOVE_RECURSE
  "CMakeFiles/test_payment.dir/test_payment.cpp.o"
  "CMakeFiles/test_payment.dir/test_payment.cpp.o.d"
  "test_payment"
  "test_payment.pdb"
  "test_payment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_payment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
