# Empty dependencies file for test_multiexp.
# This may be replaced when dependencies are built.
