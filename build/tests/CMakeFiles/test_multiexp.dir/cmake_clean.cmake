file(REMOVE_RECURSE
  "CMakeFiles/test_multiexp.dir/test_multiexp.cpp.o"
  "CMakeFiles/test_multiexp.dir/test_multiexp.cpp.o.d"
  "test_multiexp"
  "test_multiexp.pdb"
  "test_multiexp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
