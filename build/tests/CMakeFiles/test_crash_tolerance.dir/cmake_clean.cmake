file(REMOVE_RECURSE
  "CMakeFiles/test_crash_tolerance.dir/test_crash_tolerance.cpp.o"
  "CMakeFiles/test_crash_tolerance.dir/test_crash_tolerance.cpp.o.d"
  "test_crash_tolerance"
  "test_crash_tolerance.pdb"
  "test_crash_tolerance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
