# Empty compiler generated dependencies file for test_crash_tolerance.
# This may be replaced when dependencies are built.
