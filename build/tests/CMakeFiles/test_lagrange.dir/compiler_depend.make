# Empty compiler generated dependencies file for test_lagrange.
# This may be replaced when dependencies are built.
