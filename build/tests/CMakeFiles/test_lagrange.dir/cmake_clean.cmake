file(REMOVE_RECURSE
  "CMakeFiles/test_lagrange.dir/test_lagrange.cpp.o"
  "CMakeFiles/test_lagrange.dir/test_lagrange.cpp.o.d"
  "test_lagrange"
  "test_lagrange.pdb"
  "test_lagrange[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lagrange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
