file(REMOVE_RECURSE
  "CMakeFiles/test_resolution_error.dir/test_resolution_error.cpp.o"
  "CMakeFiles/test_resolution_error.dir/test_resolution_error.cpp.o.d"
  "test_resolution_error"
  "test_resolution_error.pdb"
  "test_resolution_error[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolution_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
