# Empty dependencies file for test_truthful.
# This may be replaced when dependencies are built.
