file(REMOVE_RECURSE
  "CMakeFiles/test_truthful.dir/test_truthful.cpp.o"
  "CMakeFiles/test_truthful.dir/test_truthful.cpp.o.d"
  "test_truthful"
  "test_truthful.pdb"
  "test_truthful[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_truthful.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
