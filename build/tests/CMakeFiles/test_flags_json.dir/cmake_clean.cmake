file(REMOVE_RECURSE
  "CMakeFiles/test_flags_json.dir/test_flags_json.cpp.o"
  "CMakeFiles/test_flags_json.dir/test_flags_json.cpp.o.d"
  "test_flags_json"
  "test_flags_json.pdb"
  "test_flags_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flags_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
