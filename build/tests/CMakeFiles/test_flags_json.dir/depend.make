# Empty dependencies file for test_flags_json.
# This may be replaced when dependencies are built.
