# Empty compiler generated dependencies file for test_secure_channel.
# This may be replaced when dependencies are built.
