# Empty dependencies file for test_group256_e2e.
# This may be replaced when dependencies are built.
