file(REMOVE_RECURSE
  "CMakeFiles/test_multiunit.dir/test_multiunit.cpp.o"
  "CMakeFiles/test_multiunit.dir/test_multiunit.cpp.o.d"
  "test_multiunit"
  "test_multiunit.pdb"
  "test_multiunit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiunit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
