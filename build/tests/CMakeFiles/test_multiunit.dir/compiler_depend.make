# Empty compiler generated dependencies file for test_multiunit.
# This may be replaced when dependencies are built.
