file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_misc.dir/test_fuzz_misc.cpp.o"
  "CMakeFiles/test_fuzz_misc.dir/test_fuzz_misc.cpp.o.d"
  "test_fuzz_misc"
  "test_fuzz_misc.pdb"
  "test_fuzz_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
