# Empty compiler generated dependencies file for test_fuzz_misc.
# This may be replaced when dependencies are built.
