file(REMOVE_RECURSE
  "CMakeFiles/test_repeated.dir/test_repeated.cpp.o"
  "CMakeFiles/test_repeated.dir/test_repeated.cpp.o.d"
  "test_repeated"
  "test_repeated.pdb"
  "test_repeated[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repeated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
