file(REMOVE_RECURSE
  "CMakeFiles/bench_minwork.dir/bench_minwork.cpp.o"
  "CMakeFiles/bench_minwork.dir/bench_minwork.cpp.o.d"
  "bench_minwork"
  "bench_minwork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minwork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
