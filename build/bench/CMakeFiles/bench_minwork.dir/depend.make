# Empty dependencies file for bench_minwork.
# This may be replaced when dependencies are built.
