file(REMOVE_RECURSE
  "CMakeFiles/bench_degree_resolution.dir/bench_degree_resolution.cpp.o"
  "CMakeFiles/bench_degree_resolution.dir/bench_degree_resolution.cpp.o.d"
  "bench_degree_resolution"
  "bench_degree_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_degree_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
