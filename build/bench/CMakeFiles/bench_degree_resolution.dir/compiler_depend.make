# Empty compiler generated dependencies file for bench_degree_resolution.
# This may be replaced when dependencies are built.
