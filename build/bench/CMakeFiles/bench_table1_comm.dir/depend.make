# Empty dependencies file for bench_table1_comm.
# This may be replaced when dependencies are built.
