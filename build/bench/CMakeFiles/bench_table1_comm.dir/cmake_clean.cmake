file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_comm.dir/bench_table1_comm.cpp.o"
  "CMakeFiles/bench_table1_comm.dir/bench_table1_comm.cpp.o.d"
  "bench_table1_comm"
  "bench_table1_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
