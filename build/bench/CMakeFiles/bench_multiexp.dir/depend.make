# Empty dependencies file for bench_multiexp.
# This may be replaced when dependencies are built.
