
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_multiexp.cpp" "bench/CMakeFiles/bench_multiexp.dir/bench_multiexp.cpp.o" "gcc" "bench/CMakeFiles/bench_multiexp.dir/bench_multiexp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dmw/CMakeFiles/dmw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dmw_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dmw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/dmw_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/mech/CMakeFiles/dmw_mech.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dmw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
