file(REMOVE_RECURSE
  "CMakeFiles/bench_multiexp.dir/bench_multiexp.cpp.o"
  "CMakeFiles/bench_multiexp.dir/bench_multiexp.cpp.o.d"
  "bench_multiexp"
  "bench_multiexp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
