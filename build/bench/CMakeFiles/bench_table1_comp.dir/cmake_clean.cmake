file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_comp.dir/bench_table1_comp.cpp.o"
  "CMakeFiles/bench_table1_comp.dir/bench_table1_comp.cpp.o.d"
  "bench_table1_comp"
  "bench_table1_comp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_comp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
