# Empty compiler generated dependencies file for bench_faithfulness.
# This may be replaced when dependencies are built.
