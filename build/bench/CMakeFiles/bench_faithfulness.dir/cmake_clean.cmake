file(REMOVE_RECURSE
  "CMakeFiles/bench_faithfulness.dir/bench_faithfulness.cpp.o"
  "CMakeFiles/bench_faithfulness.dir/bench_faithfulness.cpp.o.d"
  "bench_faithfulness"
  "bench_faithfulness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_faithfulness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
