file(REMOVE_RECURSE
  "CMakeFiles/bench_resolution_error.dir/bench_resolution_error.cpp.o"
  "CMakeFiles/bench_resolution_error.dir/bench_resolution_error.cpp.o.d"
  "bench_resolution_error"
  "bench_resolution_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resolution_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
