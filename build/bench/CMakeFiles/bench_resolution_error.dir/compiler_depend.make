# Empty compiler generated dependencies file for bench_resolution_error.
# This may be replaced when dependencies are built.
