file(REMOVE_RECURSE
  "CMakeFiles/bench_repeated.dir/bench_repeated.cpp.o"
  "CMakeFiles/bench_repeated.dir/bench_repeated.cpp.o.d"
  "bench_repeated"
  "bench_repeated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repeated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
