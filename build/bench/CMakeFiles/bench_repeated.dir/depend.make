# Empty dependencies file for bench_repeated.
# This may be replaced when dependencies are built.
