# Empty compiler generated dependencies file for private_bids.
# This may be replaced when dependencies are built.
