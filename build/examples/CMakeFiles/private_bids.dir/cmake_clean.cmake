file(REMOVE_RECURSE
  "CMakeFiles/private_bids.dir/private_bids.cpp.o"
  "CMakeFiles/private_bids.dir/private_bids.cpp.o.d"
  "private_bids"
  "private_bids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_bids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
