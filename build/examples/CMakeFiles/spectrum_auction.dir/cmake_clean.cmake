file(REMOVE_RECURSE
  "CMakeFiles/spectrum_auction.dir/spectrum_auction.cpp.o"
  "CMakeFiles/spectrum_auction.dir/spectrum_auction.cpp.o.d"
  "spectrum_auction"
  "spectrum_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
