# Empty compiler generated dependencies file for spectrum_auction.
# This may be replaced when dependencies are built.
