file(REMOVE_RECURSE
  "CMakeFiles/deviation_detection.dir/deviation_detection.cpp.o"
  "CMakeFiles/deviation_detection.dir/deviation_detection.cpp.o.d"
  "deviation_detection"
  "deviation_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deviation_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
