# Empty compiler generated dependencies file for deviation_detection.
# This may be replaced when dependencies are built.
