# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_scheduling "/root/repo/build/examples/cluster_scheduling")
set_tests_properties(example_cluster_scheduling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_deviation_detection "/root/repo/build/examples/deviation_detection")
set_tests_properties(example_deviation_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_private_bids "/root/repo/build/examples/private_bids")
set_tests_properties(example_private_bids PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spectrum_auction "/root/repo/build/examples/spectrum_auction")
set_tests_properties(example_spectrum_auction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
