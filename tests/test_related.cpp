// Related machines (paper future work): exact embedding into the unrelated
// model, truthfulness inheritance, rounding effects, and the end-to-end
// distributed run.
#include <gtest/gtest.h>

#include "dmw/protocol.hpp"
#include "mech/opt.hpp"
#include "mech/related.hpp"
#include "mech/truthful.hpp"

namespace dmw::mech {
namespace {

TEST(Related, UnitSizeEmbeddingIsExact) {
  const auto related = make_unit_related({1, 3, 2, 5}, 4);
  const BidSet bids = BidSet::iota(5);
  bool exact = false;
  const auto instance = to_unrelated(related, bids, &exact);
  EXPECT_TRUE(exact);
  for (std::size_t j = 0; j < instance.m; ++j)
    for (std::size_t i = 0; i < instance.n; ++i)
      EXPECT_EQ(instance.cost[i][j], related.rates[i]);
}

TEST(Related, GeneralSizesRoundUpIntoW) {
  RelatedInstance related;
  related.rates = {1, 2};
  related.sizes = {3, 2};
  const BidSet bids({1, 2, 3, 4, 7});  // gaps force rounding
  bool exact = true;
  const auto instance = to_unrelated(related, bids, &exact);
  EXPECT_FALSE(exact);
  // rate 2 * size 3 = 6 -> rounds up to 7.
  EXPECT_EQ(instance.cost[1][0], 7u);
  EXPECT_EQ(instance.cost[0][0], 3u);  // exact
}

TEST(Related, OverflowingProductRejected) {
  RelatedInstance related;
  related.rates = {5, 5};
  related.sizes = {10};
  EXPECT_THROW(to_unrelated(related, BidSet::iota(8)), CheckError);
}

TEST(Related, MinWorkSendsAllTasksToFastestMachine) {
  const auto related = make_unit_related({3, 1, 2, 3}, 5);
  const auto outcome = run_related_minwork(related, BidSet::iota(3));
  for (std::size_t j = 0; j < 5; ++j)
    EXPECT_EQ(outcome.schedule.agent_for(j), 1u);
  // Each task pays the second-fastest rate.
  EXPECT_EQ(outcome.payments[1], 5u * 2u);
}

TEST(Related, TruthfulnessInheritedExactly) {
  // Unit sizes -> exact embedding -> MinWork truthfulness carries over.
  Xoshiro256ss rng(700);
  const BidSet bids = BidSet::iota(4);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Cost> rates(5);
    for (auto& r : rates) r = bids.values()[rng.below(bids.size())];
    const auto related = make_unit_related(rates, 3);
    const auto instance = to_unrelated(related, bids);
    const auto report = check_minwork_truthfulness(instance, bids, 5, rng);
    EXPECT_TRUE(report.truthful);
    EXPECT_TRUE(report.voluntary);
  }
}

TEST(Related, LowerBoundIsALowerBound) {
  Xoshiro256ss rng(701);
  const BidSet bids = BidSet::iota(6);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Cost> rates(4);
    for (auto& r : rates) r = bids.values()[rng.below(bids.size())];
    const auto related = make_unit_related(rates, 6);
    const auto instance = to_unrelated(related, bids);
    const auto opt = optimal_makespan(instance);
    EXPECT_GE(static_cast<double>(opt.makespan) + 1e-9,
              related_makespan_lower_bound(related));
  }
}

TEST(Related, DistributedRunMatchesCentralized) {
  // The paper's future-work goal, realized: the related-machines mechanism
  // runs over DMW unchanged.
  using num::Group64;
  const auto params = proto::PublicParams<Group64>::make(
      Group64::test_group(), 6, 3, 1, 800);
  const auto related = make_unit_related({2, 4, 1, 3, 4, 4}, 3);
  const auto instance = to_unrelated(related, params.bid_set());
  const auto outcome = proto::run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted);
  const auto central = run_related_minwork(related, params.bid_set());
  EXPECT_EQ(outcome.schedule, central.schedule);
  EXPECT_EQ(outcome.payments, central.payments);
  // All tasks to the fastest machine (agent 2, rate 1), paid at rate 2.
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_EQ(outcome.schedule.agent_for(j), 2u);
  EXPECT_EQ(outcome.payments[2], 3u * 2u);
}

TEST(Related, RoundingCanPerturbIncentivesByAtMostOneStep) {
  // With a gappy W, a misreport can exploit the rounding — but any gain is
  // bounded by the gap size. This quantifies the caveat in EXPERIMENTS.md.
  RelatedInstance related;
  related.rates = {2, 3, 4};
  related.sizes = {1, 2};
  const BidSet bids({1, 2, 3, 4, 6, 8});
  const auto instance = to_unrelated(related, bids);
  Xoshiro256ss rng(702);
  const auto report = check_minwork_truthfulness(instance, bids, 10, rng);
  // The embedded instance itself is still a valid unrelated instance, so
  // MinWork on it stays truthful; the caveat concerns reports in *rate*
  // space, which this test documents as future work for a dedicated
  // related-machines mechanism.
  EXPECT_TRUE(report.truthful);
}

}  // namespace
}  // namespace dmw::mech
