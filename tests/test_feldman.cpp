// Feldman verifiable secret sharing: share verification, reconstruction,
// tamper detection, and the lineage to DMW's commitment identities.
#include <gtest/gtest.h>

#include "crypto/chacha.hpp"
#include "crypto/feldman.hpp"

namespace dmw::crypto {
namespace {

using num::Group64;
using Sharing = FeldmanSharing<Group64>;

const Group64& grp() { return Group64::test_group(); }

std::vector<std::uint64_t> points_for(const Group64& g, std::size_t n,
                                      std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<std::uint64_t> points;
  while (points.size() < n) {
    const auto candidate = g.random_nonzero_scalar(rng);
    if (std::find(points.begin(), points.end(), candidate) == points.end())
      points.push_back(candidate);
  }
  return points;
}

TEST(Feldman, DealVerifyReconstruct) {
  const Group64& g = grp();
  auto rng = ChaChaRng::from_seed(1);
  const auto points = points_for(g, 6, 2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto secret = g.random_scalar(rng);
    const auto sharing = Sharing::deal(g, secret, 3, points, rng);
    for (std::size_t i = 0; i < points.size(); ++i)
      EXPECT_TRUE(sharing.verify(g, i)) << i;
    for (std::size_t count = 3; count <= 6; ++count)
      EXPECT_EQ(sharing.reconstruct(g, count), secret);
  }
}

TEST(Feldman, TamperedShareFailsVerification) {
  const Group64& g = grp();
  auto rng = ChaChaRng::from_seed(3);
  const auto points = points_for(g, 5, 4);
  auto sharing = Sharing::deal(g, 12345, 3, points, rng);
  sharing.shares[2] = g.sadd(sharing.shares[2], g.sone());
  EXPECT_FALSE(sharing.verify(g, 2));
  EXPECT_TRUE(sharing.verify(g, 1));
}

TEST(Feldman, TamperedCommitmentFailsVerification) {
  const Group64& g = grp();
  auto rng = ChaChaRng::from_seed(5);
  const auto points = points_for(g, 5, 6);
  auto sharing = Sharing::deal(g, 999, 3, points, rng);
  sharing.commitments[1] = g.mul(sharing.commitments[1], g.z2());
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_FALSE(sharing.verify(g, i));
}

TEST(Feldman, CommitmentRevealsExponentOfSecretOnly) {
  // Feldman's known leakage: C_0 = z1^{secret} is public. The test pins the
  // property so the contrast with DMW's hiding commitments (z2-masked) is
  // explicit.
  const Group64& g = grp();
  auto rng = ChaChaRng::from_seed(7);
  const auto points = points_for(g, 4, 8);
  const std::uint64_t secret = 31337;
  const auto sharing = Sharing::deal(g, secret, 2, points, rng);
  EXPECT_EQ(sharing.commitments[0], g.pow(g.z1(), secret));
}

TEST(Feldman, WrongPointFailsVerification) {
  const Group64& g = grp();
  auto rng = ChaChaRng::from_seed(9);
  const auto points = points_for(g, 4, 10);
  const auto sharing = Sharing::deal(g, 55, 3, points, rng);
  // A share presented for the wrong evaluation point must not verify.
  EXPECT_FALSE(Sharing::verify_share(g, sharing.commitments, points[0],
                                     sharing.shares[1]));
}

TEST(Feldman, RejectsBadArguments) {
  const Group64& g = grp();
  auto rng = ChaChaRng::from_seed(11);
  const auto points = points_for(g, 3, 12);
  EXPECT_THROW(Sharing::deal(g, 1, 0, points, rng), CheckError);
  EXPECT_THROW(Sharing::deal(g, 1, 4, points, rng), CheckError);
  const auto sharing = Sharing::deal(g, 1, 2, points, rng);
  EXPECT_THROW(sharing.reconstruct(g, 1), CheckError);
}

}  // namespace
}  // namespace dmw::crypto
