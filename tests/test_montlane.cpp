// The vectorized Montgomery tier (numeric/simd.hpp + numeric/montlane.hpp):
// the dispatched lane kernel must agree with the scalar REDC on every host,
// the lane engine must be value- AND OpCount-identical to its scalar
// ablation (the montlane.hpp contract RunReport bit-identity rests on) for
// mul/to_mont/from_mont/pow over both arithmetic tiers — including ragged
// batch tails, zero exponents and edge moduli — and flipping
// PublicParams::set_simd must change no observable protocol byte at any
// thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dmw/parallel.hpp"
#include "dmw/polycommit.hpp"
#include "dmw/strategies.hpp"
#include "mech/minwork.hpp"
#include "numeric/montlane.hpp"
#include "numeric/multiexp.hpp"

namespace dmw::num {
namespace {

const Group64& grp() { return Group64::test_group(); }

// Odd moduli spanning the Mont64 contract range (1, 2^63): tiny, near 2^61
// (the test group's neighbourhood), and the largest admissible value. The
// REDC conditional-subtract and the AVX2 sign-flip compare are most
// stressed at the top of the range.
constexpr u64 kEdgeModuli[] = {3, 0x1fffffffffffffffULL,
                               (u64{1} << 61) + 9, 0x7fffffffffffffffULL};

TEST(SimdKernels, DispatchedLanesMatchScalarRedc) {
  Xoshiro256ss rng(101);
  for (const u64 n : kEdgeModuli) {
    const Mont64 m(n);
    for (int trial = 0; trial < 200; ++trial) {
      u64 a[simd::kLanes], b[simd::kLanes], out[simd::kLanes];
      for (std::size_t l = 0; l < simd::kLanes; ++l) {
        a[l] = rng.next() % n;
        b[l] = rng.next() % n;
      }
      simd::mont_mul_lanes(a, b, n, m.ninv(), out);
      for (std::size_t l = 0; l < simd::kLanes; ++l) {
        EXPECT_EQ(out[l], simd::mont_mul_scalar(a[l], b[l], n, m.ninv()))
            << "n=" << n << " lane " << l;
        // And against the production Mont64 path (counted there, not here).
        EXPECT_EQ(out[l], m.mul(a[l], b[l])) << "n=" << n << " lane " << l;
      }
    }
  }
}

TEST(SimdKernels, PortableKernelMatchesDispatched) {
  // Whatever backend the host latched, the portable loop is the reference.
  Xoshiro256ss rng(102);
  const u64 n = kEdgeModuli[3];
  const Mont64 m(n);
  for (int trial = 0; trial < 100; ++trial) {
    u64 a[simd::kLanes], b[simd::kLanes], got[simd::kLanes],
        want[simd::kLanes];
    for (std::size_t l = 0; l < simd::kLanes; ++l) {
      a[l] = rng.next() % n;
      b[l] = rng.next() % n;
    }
    simd::mont_mul_lanes(a, b, n, m.ninv(), got);
    simd::mont_mul_lanes_portable(a, b, n, m.ninv(), want);
    for (std::size_t l = 0; l < simd::kLanes; ++l)
      EXPECT_EQ(got[l], want[l]);
  }
}

TEST(SimdKernels, PaddedSlotsStayInKernelRange) {
  // Ragged-tail padding contract: a zero slot (0 * anything) and duplicate
  // slots must run through the kernel without disturbing live lanes.
  const u64 n = kEdgeModuli[1];
  const Mont64 m(n);
  u64 a[simd::kLanes] = {n - 1, 0, n - 1, 0};
  u64 b[simd::kLanes] = {n - 1, 0, 1, n - 1};
  u64 out[simd::kLanes];
  simd::mont_mul_lanes(a, b, n, m.ninv(), out);
  for (std::size_t l = 0; l < simd::kLanes; ++l)
    EXPECT_EQ(out[l], simd::mont_mul_scalar(a[l], b[l], n, m.ninv()));
}

TEST(SimdKernels, BackendIsConsistent) {
  const simd::LaneBackend backend = simd::active_backend();
  EXPECT_EQ(backend, simd::active_backend());  // latched once
  EXPECT_NE(std::string(simd::backend_name(backend)), "");
  if (!simd::compiled_in())
    EXPECT_EQ(backend, simd::LaneBackend::kScalar);
  // kOn always groups, kOff never does; kAuto follows the backend.
  EXPECT_TRUE(simd::mode_groups_lanes(simd::SimdMode::kOn));
  EXPECT_FALSE(simd::mode_groups_lanes(simd::SimdMode::kOff));
  EXPECT_EQ(simd::mode_groups_lanes(simd::SimdMode::kAuto),
            backend != simd::LaneBackend::kScalar);
}

// ---- MontLane<Mont64>: grouped vs scalar ablation --------------------------

template <std::size_t L>
void expect_mont64_lane_identity(u64 modulus, std::uint64_t seed) {
  const Mont64 m(modulus);
  const MontLane<Mont64, L> grouped(m, true);
  const MontLane<Mont64, L> scalar(m, false);
  Xoshiro256ss rng(seed);
  // Ragged sizes on both sides of the lane width, including count % L != 0.
  for (std::size_t n : {std::size_t{1}, L - 1, L, L + 1, 2 * L + 3,
                        std::size_t{17}}) {
    if (n == 0) continue;
    std::vector<u64> a(n), b(n), e(n), ga(n), sa(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.next() % modulus;
      b[i] = rng.next() % modulus;
      e[i] = rng.next() >> (i % 3 == 0 ? 24 : 0);  // mixed widths
    }
    if (n > 2) e[2] = 0;  // zero exponent inside a group
    e[0] = 1;

    OpCountScope gs;
    grouped.mul_lanes(a.data(), b.data(), ga.data(), n);
    const auto gd = gs.delta();
    OpCountScope ss;
    scalar.mul_lanes(a.data(), b.data(), sa.data(), n);
    const auto sd = ss.delta();
    EXPECT_EQ(ga, sa) << "mul L=" << L << " n=" << n;
    EXPECT_EQ(gd.mul, sd.mul);
    EXPECT_EQ(gd.mul, n);

    grouped.to_mont_lanes(a.data(), ga.data(), n);
    scalar.to_mont_lanes(a.data(), sa.data(), n);
    EXPECT_EQ(ga, sa) << "to_mont L=" << L << " n=" << n;
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ga[i], m.to_mont(a[i]));

    grouped.from_mont_lanes(ga.data(), ga.data(), n);
    scalar.from_mont_lanes(sa.data(), sa.data(), n);
    EXPECT_EQ(ga, sa) << "from_mont L=" << L << " n=" << n;
    EXPECT_EQ(ga, a);  // round trip

    OpCountScope gp;
    grouped.pow_lanes(a.data(), e.data(), ga.data(), n);
    const auto gpd = gp.delta();
    OpCountScope sp;
    scalar.pow_lanes(a.data(), e.data(), sa.data(), n);
    const auto spd = sp.delta();
    EXPECT_EQ(ga, sa) << "pow L=" << L << " n=" << n;
    EXPECT_EQ(gpd.mul, spd.mul) << "pow muls L=" << L << " n=" << n;
    EXPECT_EQ(gpd.pow, spd.pow);
    EXPECT_EQ(gpd.pow, n);
    // Cross-check against the group's own pow (Group64 protocol exponents
    // take the same LSB-first ladder).
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(ga[i], pow_mont64(m, a[i], e[i]));
  }
}

TEST(MontLane64, GroupedMatchesScalarAcrossWidths) {
  for (const u64 n : kEdgeModuli) {
    expect_mont64_lane_identity<2>(n, 7);
    expect_mont64_lane_identity<4>(n, 8);
    expect_mont64_lane_identity<8>(n, 9);
  }
}

TEST(MontLane64, MaskedMulCountsLiveSlotsOnly) {
  const Mont64 m(kEdgeModuli[1]);
  for (const bool g : {true, false}) {
    const MontLane<Mont64> lane(m, g);
    u64 acc[simd::kLanes] = {5, 6, 7, 8};
    u64 acc2[simd::kLanes] = {5, 6, 7, 8};
    const u64 b[simd::kLanes] = {9, 10, 11, 12};
    const bool active[simd::kLanes] = {true, false, true, false};
    OpCountScope scope;
    lane.mul_masked(acc, b, active);
    EXPECT_EQ(scope.delta().mul, 2u);
    EXPECT_EQ(acc[1], 6u);  // masked slots untouched
    EXPECT_EQ(acc[3], 8u);
    EXPECT_EQ(acc[0], m.mul(5, 9));
    EXPECT_EQ(acc[2], m.mul(7, 11));
    const bool none[simd::kLanes] = {};
    OpCountScope idle;
    lane.mul_masked(acc2, b, none);
    EXPECT_EQ(idle.delta().mul, 0u);
  }
}

// ---- MontLane<Montgomery<W>>: the multi-limb tier --------------------------

TEST(MontLaneBig, GroupedMatchesScalarOnGroup256Modulus) {
  Xoshiro256ss grng(11);
  const Group256 g = Group256::generate(96, 64, grng);
  const Montgomery<4>& m = g.mont();
  const MontLane<Montgomery<4>> grouped(m, true);
  const MontLane<Montgomery<4>> scalar(m, false);
  Xoshiro256ss rng(12);
  const auto rand_residue = [&] {
    auto v = BigUInt<4>::zero();
    v.set_limb(0, rng.next());
    v.set_limb(1, rng.next());
    return mod(v, m.modulus());
  };
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                        std::size_t{7}, std::size_t{13}}) {
    std::vector<BigUInt<4>> a(n), b(n), ga(n), sa(n);
    std::vector<u64> e(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rand_residue();
      b[i] = rand_residue();
      e[i] = rng.next() >> (i % 2 ? 30 : 4);
    }
    if (n > 1) e[1] = 0;

    OpCountScope gs;
    grouped.mul_lanes(a.data(), b.data(), ga.data(), n);
    const auto gd = gs.delta();
    OpCountScope ss;
    scalar.mul_lanes(a.data(), b.data(), sa.data(), n);
    EXPECT_EQ(gd.mul, ss.delta().mul);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(ga[i], sa[i]) << "mul n=" << n << " i=" << i;
      EXPECT_EQ(ga[i], m.mul(a[i], b[i]));
    }

    grouped.to_mont_lanes(a.data(), ga.data(), n);
    scalar.to_mont_lanes(a.data(), sa.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ga[i], sa[i]);
    grouped.from_mont_lanes(ga.data(), ga.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ga[i], a[i]);

    OpCountScope gp;
    grouped.pow_lanes(a.data(), e.data(), ga.data(), n);
    const auto gpd = gp.delta();
    OpCountScope sp;
    scalar.pow_lanes(a.data(), e.data(), sa.data(), n);
    const auto spd = sp.delta();
    EXPECT_EQ(gpd.mul, spd.mul) << "pow muls n=" << n;
    EXPECT_EQ(gpd.pow, spd.pow);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(ga[i], sa[i]) << "pow n=" << n << " i=" << i;
  }
}

// ---- group-level consumers -------------------------------------------------

template <GroupBackend G>
void expect_commit_many_invariant(const G& g_on, std::size_t sigma,
                                  std::uint64_t seed) {
  G g_off = g_on;
  G g_forced = g_on;
  g_off.set_simd_mode(simd::SimdMode::kOff);
  g_forced.set_simd_mode(simd::SimdMode::kOn);
  Xoshiro256ss rng(seed);
  std::vector<typename G::Scalar> a(sigma), b(sigma);
  for (std::size_t i = 0; i < sigma; ++i) {
    a[i] = g_on.random_scalar(rng);
    b[i] = g_on.random_scalar(rng);
  }
  std::vector<typename G::Elem> off(sigma), forced(sigma);
  OpCountScope so;
  g_off.commit_many(a.data(), b.data(), off.data(), sigma);
  const auto od = so.delta();
  OpCountScope sf;
  g_forced.commit_many(a.data(), b.data(), forced.data(), sigma);
  const auto fd = sf.delta();
  EXPECT_EQ(off, forced) << "sigma=" << sigma;
  EXPECT_EQ(od.mul, fd.mul) << "sigma=" << sigma;
  EXPECT_EQ(od.pow, fd.pow) << "sigma=" << sigma;
  for (std::size_t i = 0; i < sigma; ++i)
    EXPECT_EQ(off[i], g_off.commit(a[i], b[i])) << "i=" << i;
}

TEST(MontLaneGroup, CommitManyInvariantAcrossSimdModes) {
  // Ragged sigma on both sides of the lane width, both backends.
  for (std::size_t sigma : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                            std::size_t{7}, std::size_t{12}})
    expect_commit_many_invariant(grp(), sigma, 21 + sigma);
  Xoshiro256ss grng(22);
  const Group256 big = Group256::generate(96, 64, grng);
  for (std::size_t sigma : {std::size_t{3}, std::size_t{7}})
    expect_commit_many_invariant(big, sigma, 23 + sigma);
}

template <GroupBackend G>
void expect_multiexp_invariant(const G& g_base, std::size_t count,
                               std::uint64_t seed) {
  G g_off = g_base;
  G g_on = g_base;
  g_off.set_simd_mode(simd::SimdMode::kOff);
  g_on.set_simd_mode(simd::SimdMode::kOn);
  Xoshiro256ss rng(seed);
  std::vector<typename G::Elem> bases(count);
  std::vector<typename G::Scalar> exps(count);
  for (std::size_t i = 0; i < count; ++i) {
    bases[i] = g_base.pow(g_base.z1(), g_base.random_nonzero_scalar(rng));
    exps[i] = g_base.random_scalar(rng);
  }
  const std::string label = " count=" + std::to_string(count);

  OpCountScope so;
  const auto off = multi_pow<G>(g_off, bases, exps);
  const auto od = so.delta();
  OpCountScope sn;
  const auto on = multi_pow<G>(g_on, bases, exps);
  const auto nd = sn.delta();
  EXPECT_EQ(off, on) << "multi_pow" << label;
  EXPECT_EQ(od.mul, nd.mul) << "multi_pow muls" << label;

  OpCountScope po;
  const auto boff = multi_pow_batched<G>(g_off, bases, exps);
  const auto pod = po.delta();
  OpCountScope pn;
  const auto bon = multi_pow_batched<G>(g_on, bases, exps);
  const auto pnd = pn.delta();
  EXPECT_EQ(boff, bon) << "multi_pow_batched" << label;
  EXPECT_EQ(pod.mul, pnd.mul) << "batched muls" << label;
  EXPECT_EQ(pod.pow, pnd.pow) << "batched pows" << label;
  for (std::size_t i = 0; i < count; ++i)
    EXPECT_EQ(boff[i], g_base.pow(bases[i], exps[i])) << label << " i=" << i;
}

TEST(MontLaneGroup, MultiExpInvariantAcrossSimdModes) {
  // Sizes straddling the Straus/Pippenger crossover so both engines run
  // their lane paths (table build, bucket accumulation, batched ladder).
  for (std::size_t count : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                            std::size_t{7}, std::size_t{33},
                            std::size_t{300}})
    expect_multiexp_invariant(grp(), count, 31 + count);
  Xoshiro256ss grng(32);
  const Group256 big = Group256::generate(96, 48, grng);
  for (std::size_t count : {std::size_t{5}, std::size_t{9}})
    expect_multiexp_invariant(big, count, 33 + count);
}

// ---- protocol-level bit-identity -------------------------------------------

using proto::Outcome;

void expect_same_protocol_bytes(const Outcome& a, const Outcome& b,
                                const std::string& label) {
  ASSERT_EQ(a.aborted, b.aborted) << label;
  if (a.aborted) {
    ASSERT_TRUE(a.abort_record && b.abort_record) << label;
    EXPECT_EQ(a.abort_record->task, b.abort_record->task) << label;
    EXPECT_EQ(a.abort_record->reason, b.abort_record->reason) << label;
    EXPECT_EQ(a.aborting_agent, b.aborting_agent) << label;
  } else {
    EXPECT_EQ(a.schedule, b.schedule) << label;
    EXPECT_EQ(a.first_prices, b.first_prices) << label;
    EXPECT_EQ(a.second_prices, b.second_prices) << label;
  }
  EXPECT_EQ(a.payments, b.payments) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.transcripts_consistent, b.transcripts_consistent) << label;
  EXPECT_EQ(a.traffic.unicast_bytes, b.traffic.unicast_bytes) << label;
  EXPECT_EQ(a.traffic.broadcast_bytes, b.traffic.broadcast_bytes) << label;
}

/// Run `strategies` with the simd policy off and forced on, sequentially
/// (with full OpCount comparison — the RunReport identity) and at 1 and 4
/// workers, and require one identical outcome.
void expect_simd_invariant(const proto::PublicParams<Group64>& params,
                           const mech::SchedulingInstance& instance,
                           std::vector<proto::Strategy<Group64>*> strategies,
                           const std::string& label) {
  auto params_off = params;
  auto params_on = params;
  params_off.set_simd(simd::SimdMode::kOff);
  params_on.set_simd(simd::SimdMode::kOn);

  proto::ProtocolRunner<Group64> off(params_off, instance, strategies);
  OpCountScope off_scope;
  const auto reference = off.run();
  const auto off_ops = off_scope.delta();

  proto::ProtocolRunner<Group64> on(params_on, instance, strategies);
  OpCountScope on_scope;
  const auto forced = on.run();
  const auto on_ops = on_scope.delta();
  expect_same_protocol_bytes(reference, forced, label + " serial");
  EXPECT_EQ(off_ops.mul, on_ops.mul) << label;
  EXPECT_EQ(off_ops.pow, on_ops.pow) << label;
  EXPECT_EQ(off_ops.inv, on_ops.inv) << label;
  EXPECT_EQ(off_ops.add, on_ops.add) << label;

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::string tl = label + " threads=" + std::to_string(threads);
    proto::ParallelProtocol<Group64> mt_on(params_on, instance, strategies,
                                           threads);
    expect_same_protocol_bytes(reference, mt_on.run(), tl + " simd-on");
    proto::ParallelProtocol<Group64> mt_off(params_off, instance, strategies,
                                            threads);
    expect_same_protocol_bytes(reference, mt_off.run(), tl + " simd-off");
  }
}

TEST(MontLaneProtocol, HonestRunsInvariantAcrossSimdModes) {
  const auto params = proto::PublicParams<Group64>::make(grp(), 6, 3, 1, 2);
  Xoshiro256ss rng(41);
  const auto instance =
      mech::make_uniform_instance(6, 3, params.bid_set(), rng);
  proto::HonestStrategy<Group64> honest;
  std::vector<proto::Strategy<Group64>*> strategies(6, &honest);
  expect_simd_invariant(params, instance, strategies, "honest");
}

TEST(MontLaneProtocol, AbortStreamsInvariantAcrossSimdModes) {
  const auto params = proto::PublicParams<Group64>::make(grp(), 6, 3, 1, 2);
  Xoshiro256ss rng(42);
  const auto instance =
      mech::make_uniform_instance(6, 3, params.bid_set(), rng);
  proto::CorruptShareStrategy<Group64> corrupt_share(/*victim=*/1);
  proto::InconsistentCommitmentsStrategy<Group64> bad_commitments;
  proto::BadLambdaStrategy<Group64> bad_lambda;
  for (proto::Strategy<Group64>* deviant :
       std::initializer_list<proto::Strategy<Group64>*>{
           &corrupt_share, &bad_commitments, &bad_lambda}) {
    proto::HonestStrategy<Group64> honest;
    std::vector<proto::Strategy<Group64>*> strategies(6, &honest);
    strategies[0] = deviant;
    auto params_ref = params;
    params_ref.set_simd(simd::SimdMode::kOff);
    proto::ProtocolRunner<Group64> reference(params_ref, instance, strategies);
    ASSERT_TRUE(reference.run().aborted) << deviant->name();
    expect_simd_invariant(params, instance, strategies, deviant->name());
  }
}

TEST(MontLaneProtocol, CommitmentVectorsInvariantAcrossSimdModes) {
  // Phase II commitment vectors go through commit_many directly.
  const auto params = proto::PublicParams<Group64>::make(grp(), 8, 1, 2, 5);
  auto params_off = params;
  auto params_on = params;
  params_off.set_simd(simd::SimdMode::kOff);
  params_on.set_simd(simd::SimdMode::kOn);
  auto rng = crypto::ChaChaRng::from_seed(6);
  const auto polys =
      proto::BidPolynomials<Group64>::sample(params_off, 3, rng);
  OpCountScope so;
  const auto off = proto::CommitmentVectors<Group64>::commit(params_off, polys);
  const auto od = so.delta();
  OpCountScope sn;
  const auto on = proto::CommitmentVectors<Group64>::commit(params_on, polys);
  const auto nd = sn.delta();
  EXPECT_EQ(off.O, on.O);
  EXPECT_EQ(off.Q, on.Q);
  EXPECT_EQ(off.R, on.R);
  EXPECT_EQ(od.mul, nd.mul);
  EXPECT_EQ(od.pow, nd.pow);
}

}  // namespace
}  // namespace dmw::num
