// The paper's headline properties, verified empirically end-to-end:
//   Theorem 5  — DMW is faithful (no unilateral deviation profits).
//   Theorem 9  — strong voluntary participation (honest agents never lose).
//   Theorem 2 lifted — DMW as a mechanism is truthful in its bids.
#include <gtest/gtest.h>

#include "exp/faithfulness.hpp"
#include "mech/truthful.hpp"

namespace dmw::exp {
namespace {

using num::Group64;
using proto::PublicParams;

const Group64& grp() { return Group64::test_group(); }

TEST(Faithfulness, FullDeviationSuiteOnSmallInstance) {
  const auto params = PublicParams<Group64>::make(grp(), 5, 2, 1, 70);
  Xoshiro256ss rng(71);
  const auto instance =
      mech::make_uniform_instance(5, 2, params.bid_set(), rng);

  const auto report = run_faithfulness_suite(params, instance);
  EXPECT_TRUE(report.faithful);
  EXPECT_TRUE(report.strong_voluntary);
  // 15 deviations x 5 positions.
  EXPECT_EQ(report.results.size(), 15u * 5u);
  for (const auto& result : report.results) {
    EXPECT_LE(result.deviant_utility, result.honest_utility)
        << result.strategy << " by agent " << result.deviator;
    EXPECT_GE(result.min_honest_bystander_utility, 0)
        << result.strategy << " by agent " << result.deviator;
  }
}

TEST(Faithfulness, HonestBaselineHasNonNegativeUtilities) {
  const auto params = PublicParams<Group64>::make(grp(), 6, 3, 2, 72);
  Xoshiro256ss rng(73);
  const auto instance =
      mech::make_uniform_instance(6, 3, params.bid_set(), rng);
  const auto outcome = proto::run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_GE(outcome.utility(instance, i), 0) << "agent " << i;
}

TEST(Faithfulness, DetectionDeviationsAllAbort) {
  const auto params = PublicParams<Group64>::make(grp(), 4, 1, 1, 74);
  Xoshiro256ss rng(75);
  const auto instance =
      mech::make_uniform_instance(4, 1, params.bid_set(), rng);
  const auto report = run_faithfulness_suite(params, instance);
  // Every "hard" computational deviation must be caught.
  for (const auto& result : report.results) {
    if (result.strategy == "withhold-commitments" ||
        result.strategy == "silent-lambda" ||
        result.strategy == "inconsistent-commitments" ||
        result.strategy == "greedy-payment" ||
        result.strategy == "silent-payment") {
      EXPECT_TRUE(result.aborted) << result.strategy;
      EXPECT_EQ(result.deviant_utility, 0) << result.strategy;
    }
    if (result.strategy == "eager-disclosure" ||
        result.strategy.rfind("misreport", 0) == 0) {
      EXPECT_FALSE(result.aborted) << result.strategy;
    }
  }
}

TEST(Faithfulness, DmwEndToEndTruthfulness) {
  // Definition 3 applied to the whole distributed mechanism: exhaustive
  // per-task misreports through the real protocol (not the centralized
  // shortcut). m=1 keeps the run count tractable.
  const auto params = PublicParams<Group64>::make(grp(), 4, 1, 1, 76);
  Xoshiro256ss rng(77);
  const auto instance =
      mech::make_uniform_instance(4, 1, params.bid_set(), rng);

  const auto dmw_utility = [&](const mech::BidMatrix& bids,
                               std::size_t agent) -> std::int64_t {
    // Run DMW where each agent's strategy reports the given bid row.
    std::vector<std::unique_ptr<proto::Strategy<Group64>>> owned;
    std::vector<proto::Strategy<Group64>*> strategies;
    for (std::size_t i = 0; i < params.n(); ++i) {
      owned.push_back(std::make_unique<proto::SingleTaskMisreport<Group64>>(
          0, bids[i][0]));
      strategies.push_back(owned.back().get());
    }
    proto::ProtocolRunner<Group64> runner(params, instance, strategies);
    return runner.run().utility(instance, agent);
  };

  Xoshiro256ss check_rng(78);
  const auto report = mech::check_truthfulness(instance, params.bid_set(),
                                               dmw_utility, 0, check_rng);
  EXPECT_TRUE(report.truthful) << "max gain " << report.max_gain;
  EXPECT_TRUE(report.voluntary);
}

TEST(Faithfulness, VoluntaryParticipationUnderRandomOpponentDeviation) {
  // Theorem 9: whatever a defector does, honest agents end >= 0.
  const auto params = PublicParams<Group64>::make(grp(), 5, 2, 1, 79);
  Xoshiro256ss rng(80);
  const auto instance =
      mech::make_uniform_instance(5, 2, params.bid_set(), rng);
  const auto catalogue = deviation_catalogue<Group64>(params.n());
  for (const auto& deviation : catalogue) {
    auto deviant = deviation.make(3, params.group());
    proto::HonestStrategy<Group64> honest;
    std::vector<proto::Strategy<Group64>*> strategies(params.n(), &honest);
    strategies[3] = deviant.get();
    proto::ProtocolRunner<Group64> runner(params, instance, strategies);
    const auto outcome = runner.run();
    for (std::size_t i = 0; i < params.n(); ++i) {
      if (i == 3) continue;
      EXPECT_GE(outcome.utility(instance, i), 0)
          << deviation.name << " harmed honest agent " << i;
    }
  }
}

}  // namespace
}  // namespace dmw::exp
