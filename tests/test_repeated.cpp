// Repeated executions (paper Remark after Thm. 10): unilateral price
// learning gains nothing; a price-fixing coalition exploits the revealed
// winner/second-price information.
#include <gtest/gtest.h>

#include "exp/repeated.hpp"

namespace dmw::exp {
namespace {

mech::SchedulingInstance demo_instance() {
  // One task where agent 0 wins with cost 1 and agent 1 sets the price (3),
  // plus a second task with a different structure.
  return mech::SchedulingInstance{4, 2, {{1, 4}, {3, 2}, {4, 3}, {4, 4}}};
}

TEST(Repeated, UnilateralShadingGainsNothing) {
  const auto instance = demo_instance();
  const mech::BidSet bids = mech::BidSet::iota(4);
  ShadeToSecondPricePolicy policy;
  for (std::size_t agent = 0; agent < instance.n; ++agent) {
    const auto result = run_repeated(instance, bids, agent, policy, 10);
    EXPECT_LE(result.adaptive_total, result.truthful_total)
        << "agent " << agent;
  }
}

TEST(Repeated, UnilateralUndercuttingNeverBeatsTruth) {
  const auto instance = demo_instance();
  const mech::BidSet bids = mech::BidSet::iota(4);
  UndercutFirstPricePolicy policy;
  for (std::size_t agent = 0; agent < instance.n; ++agent) {
    const auto result = run_repeated(instance, bids, agent, policy, 10);
    EXPECT_LE(result.adaptive_total, result.truthful_total)
        << "agent " << agent;
  }
}

TEST(Repeated, RandomInstancesUnilateralRobustness) {
  Xoshiro256ss rng(404);
  const mech::BidSet bids = mech::BidSet::iota(5);
  ShadeToSecondPricePolicy shade;
  UndercutFirstPricePolicy undercut;
  for (int trial = 0; trial < 10; ++trial) {
    const auto instance = mech::make_uniform_instance(5, 3, bids, rng);
    for (BiddingPolicy* policy :
         std::initializer_list<BiddingPolicy*>{&shade, &undercut}) {
      for (std::size_t agent = 0; agent < instance.n; ++agent) {
        const auto result = run_repeated(instance, bids, agent, *policy, 6);
        EXPECT_LE(result.adaptive_total, result.truthful_total)
            << policy->name() << " agent " << agent << " trial " << trial;
      }
    }
  }
}

TEST(Repeated, PriceFixingCoalitionProfits) {
  // The exploit the paper's remark warns about: agent 1 learns (from the
  // revealed prices) that it sets agent 0's payment on task 0 and jumps to
  // max(W); agent 0's payment rises from 3 to 4 every subsequent round.
  const auto instance = demo_instance();
  const mech::BidSet bids = mech::BidSet::iota(4);
  TruthfulPolicy winner_policy;  // the winner keeps bidding truthfully
  AccomplicePolicy accomplice(/*partner=*/0);
  const auto result = run_repeated(instance, bids, /*adaptive_agent=*/0,
                                   winner_policy, 10, /*partner=*/1,
                                   &accomplice);
  EXPECT_GT(result.coalition_adaptive, result.coalition_truthful);
}

TEST(Repeated, CoalitionGainGrowsWithRounds) {
  const auto instance = demo_instance();
  const mech::BidSet bids = mech::BidSet::iota(4);
  TruthfulPolicy winner_policy;
  AccomplicePolicy accomplice(0);
  const auto short_run =
      run_repeated(instance, bids, 0, winner_policy, 3, 1, &accomplice);
  const auto long_run =
      run_repeated(instance, bids, 0, winner_policy, 12, 1, &accomplice);
  const auto short_gain =
      short_run.coalition_adaptive - short_run.coalition_truthful;
  const auto long_gain =
      long_run.coalition_adaptive - long_run.coalition_truthful;
  EXPECT_GT(long_gain, short_gain);
}

TEST(Repeated, PolicyNames) {
  EXPECT_EQ(TruthfulPolicy().name(), "truthful");
  EXPECT_EQ(ShadeToSecondPricePolicy().name(), "shade-to-second-price");
  EXPECT_EQ(UndercutFirstPricePolicy().name(), "undercut-first-price");
  EXPECT_EQ(AccomplicePolicy(0).name(), "price-fixing-accomplice");
}

}  // namespace
}  // namespace dmw::exp
