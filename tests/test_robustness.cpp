// Robustness and failure injection: under random network latency the
// protocol completes with an identical outcome; under arbitrary payload
// corruption it must abort cleanly or produce the honest outcome — never
// crash, never misallocate, never pay the wrong amount.
#include <gtest/gtest.h>

#include "dmw/protocol.hpp"
#include "mech/minwork.hpp"

namespace dmw::proto {
namespace {

using num::Group64;

const Group64& grp() { return Group64::test_group(); }

struct Setup {
  PublicParams<Group64> params;
  mech::SchedulingInstance instance;

  static Setup make(std::size_t n, std::size_t m, std::uint64_t seed) {
    auto params = PublicParams<Group64>::make(grp(), n, m, 1, seed);
    Xoshiro256ss rng(seed + 1);
    auto instance = mech::make_uniform_instance(n, m, params.bid_set(), rng);
    return Setup{std::move(params), std::move(instance)};
  }
};

TEST(Robustness, RandomLatencyPreservesOutcome) {
  auto setup = Setup::make(6, 2, 100);
  const auto baseline = run_honest_dmw(setup.params, setup.instance);
  ASSERT_FALSE(baseline.aborted);

  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    HonestStrategy<Group64> honest;
    std::vector<Strategy<Group64>*> strategies(6, &honest);
    ProtocolRunner<Group64> runner(setup.params, setup.instance, strategies);
    auto latency_rng = std::make_shared<Xoshiro256ss>(seed);
    runner.network().set_fault_injector([latency_rng](const net::Envelope&) {
      net::FaultAction action;
      action.extra_delay_rounds =
          static_cast<std::uint32_t>(latency_rng->below(4));
      return action;
    });
    const auto outcome = runner.run();
    ASSERT_FALSE(outcome.aborted) << "latency seed " << seed;
    EXPECT_EQ(outcome.schedule, baseline.schedule);
    EXPECT_EQ(outcome.payments, baseline.payments);
    EXPECT_GE(outcome.rounds, baseline.rounds);
  }
}

TEST(Robustness, UniformExtraLatencyJustAddsRounds) {
  auto setup = Setup::make(5, 1, 101);
  HonestStrategy<Group64> honest;
  std::vector<Strategy<Group64>*> strategies(5, &honest);
  ProtocolRunner<Group64> runner(setup.params, setup.instance, strategies);
  runner.network().set_fault_injector([](const net::Envelope&) {
    net::FaultAction action;
    action.extra_delay_rounds = 3;
    return action;
  });
  const auto outcome = runner.run();
  ASSERT_FALSE(outcome.aborted);
  const auto baseline = run_honest_dmw(setup.params, setup.instance);
  EXPECT_EQ(outcome.schedule, baseline.schedule);
  EXPECT_GT(outcome.rounds, baseline.rounds);
}

// Fuzz: corrupt one random in-flight message per run (random byte flips,
// truncation, or replacement) across many seeds. The only acceptable
// outcomes are a clean abort or the exact honest result (a corrupted
// payload that decodes to semantically identical content cannot occur with
// byte flips in practice, but equality is the safe acceptance criterion).
class CorruptionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionFuzz, AbortOrExactOutcome) {
  auto setup = Setup::make(5, 2, 102);
  const auto baseline = run_honest_dmw(setup.params, setup.instance);
  ASSERT_FALSE(baseline.aborted);

  const std::uint64_t seed = GetParam();
  auto fuzz_rng = std::make_shared<Xoshiro256ss>(seed);
  // Pick one message index to corrupt and how.
  const std::uint64_t target_index = fuzz_rng->below(120);
  auto counter = std::make_shared<std::uint64_t>(0);

  HonestStrategy<Group64> honest;
  std::vector<Strategy<Group64>*> strategies(5, &honest);
  ProtocolRunner<Group64> runner(setup.params, setup.instance, strategies);
  runner.network().set_fault_injector(
      [fuzz_rng, counter, target_index](const net::Envelope& env) {
        net::FaultAction action;
        if ((*counter)++ != target_index) return action;
        auto payload = env.payload;
        switch (fuzz_rng->below(3)) {
          case 0: {  // flip random bytes
            const std::size_t flips = 1 + fuzz_rng->below(4);
            for (std::size_t f = 0; f < flips && !payload.empty(); ++f) {
              payload[fuzz_rng->below(payload.size())] ^=
                  static_cast<std::uint8_t>(1 + fuzz_rng->below(255));
            }
            break;
          }
          case 1:  // truncate
            payload.resize(payload.size() / 2);
            break;
          default:  // replace with garbage
            payload.assign(1 + fuzz_rng->below(40),
                           static_cast<std::uint8_t>(fuzz_rng->next()));
        }
        action.replace_payload = std::move(payload);
        return action;
      });

  const auto outcome = runner.run();
  if (!outcome.aborted) {
    EXPECT_EQ(outcome.schedule, baseline.schedule) << "fuzz seed " << seed;
    EXPECT_EQ(outcome.payments, baseline.payments) << "fuzz seed " << seed;
  }
  // Either way: no crash, no CheckError escape, statistics consistent.
  EXPECT_GT(outcome.traffic.p2p_equivalent_messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzz,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(Robustness, DroppedBroadcastIsImpossibleByModel) {
  // The paper assumes a reliable broadcast; the bulletin board enforces it
  // structurally — the injector only sees unicasts. Corrupting every
  // unicast must abort (nothing verifiable survives).
  auto setup = Setup::make(4, 1, 103);
  HonestStrategy<Group64> honest;
  std::vector<Strategy<Group64>*> strategies(4, &honest);
  ProtocolRunner<Group64> runner(setup.params, setup.instance, strategies);
  runner.network().set_fault_injector([](const net::Envelope&) {
    net::FaultAction action;
    action.replace_payload = std::vector<std::uint8_t>{0xde, 0xad};
    return action;
  });
  const auto outcome = runner.run();
  EXPECT_TRUE(outcome.aborted);
}

}  // namespace
}  // namespace dmw::proto
