// Modular arithmetic, both tiers, plus the Montgomery context and the
// operation counters.
#include <gtest/gtest.h>

#include "numeric/modarith.hpp"
#include "numeric/mont.hpp"
#include "numeric/primality.hpp"
#include "support/rng.hpp"

namespace dmw::num {
namespace {

using dmw::Xoshiro256ss;

constexpr u64 kPrime61 = 2305843009213693951ULL;  // 2^61 - 1 (Mersenne)

TEST(ModArith64, AddSubNeg) {
  const u64 m = 97;
  EXPECT_EQ(mod_add(50, 60, m), 13u);
  EXPECT_EQ(mod_sub(10, 20, m), 87u);
  EXPECT_EQ(mod_neg(0, m), 0u);
  EXPECT_EQ(mod_neg(1, m), 96u);
}

TEST(ModArith64, MulMatchesNative) {
  Xoshiro256ss rng(11);
  for (int i = 0; i < 500; ++i) {
    const u64 a = rng.below(kPrime61), b = rng.below(kPrime61);
    EXPECT_EQ(mod_mul(a, b, kPrime61),
              static_cast<u64>(static_cast<u128>(a) * b % kPrime61));
  }
}

TEST(ModArith64, PowMatchesRepeatedMul) {
  const u64 m = 1000003;
  u64 acc = 1;
  for (u64 e = 0; e < 40; ++e) {
    EXPECT_EQ(mod_pow(7, e, m), acc);
    acc = mod_mul(acc, 7 % m, m);
  }
}

TEST(ModArith64, FermatLittleTheorem) {
  Xoshiro256ss rng(12);
  for (int i = 0; i < 50; ++i) {
    const u64 a = 1 + rng.below(kPrime61 - 1);
    EXPECT_EQ(mod_pow(a, kPrime61 - 1, kPrime61), 1u);
  }
}

TEST(ModArith64, PowEdgeCases) {
  EXPECT_EQ(mod_pow(0, 0, 7), 1u);  // 0^0 := 1 (mod-exp convention)
  EXPECT_EQ(mod_pow(5, 0, 7), 1u);
  EXPECT_EQ(mod_pow(0, 5, 7), 0u);
  EXPECT_EQ(mod_pow(5, 1, 1), 0u);  // everything is 0 mod 1
}

TEST(ModArith64, InverseIsInverse) {
  Xoshiro256ss rng(13);
  for (int i = 0; i < 200; ++i) {
    const u64 a = 1 + rng.below(kPrime61 - 1);
    const u64 inv = mod_inv(a, kPrime61);
    EXPECT_EQ(mod_mul(a, inv, kPrime61), 1u);
  }
}

TEST(ModArith64, InverseNearM63Boundary) {
  // Exercise the 128-bit bookkeeping in extended Euclid with a large prime.
  const u64 p = 9223372036854775783ULL;  // largest prime < 2^63
  for (u64 a : {u64{2}, u64{3}, p - 1, p - 2, u64{123456789}}) {
    EXPECT_EQ(mod_mul(a % p, mod_inv(a % p, p), p), 1u);
  }
}

TEST(ModArith64, InverseOfNonUnitThrows) {
  EXPECT_THROW(mod_inv(6, 9), CheckError);   // gcd 3
  EXPECT_THROW(mod_inv(0, 97), CheckError);  // zero
}

TEST(ModArith64, Gcd) {
  EXPECT_EQ(gcd_u64(12, 18), 6u);
  EXPECT_EQ(gcd_u64(17, 5), 1u);
  EXPECT_EQ(gcd_u64(0, 7), 7u);
  EXPECT_EQ(gcd_u64(7, 0), 7u);
}

TEST(ModArithBig, MatchesU64TierOnSmallValues) {
  Xoshiro256ss rng(14);
  const u64 m = 1000000007ULL;
  const U256 big_m(m);
  for (int i = 0; i < 200; ++i) {
    const u64 a = rng.below(m), b = rng.below(m);
    EXPECT_EQ(mod_add(U256(a), U256(b), big_m).to_u64(), mod_add(a, b, m));
    EXPECT_EQ(mod_sub(U256(a), U256(b), big_m).to_u64(), mod_sub(a, b, m));
    EXPECT_EQ(mod_mul(U256(a), U256(b), big_m).to_u64(), mod_mul(a, b, m));
  }
}

TEST(ModArithBig, PowMatchesU64Tier) {
  Xoshiro256ss rng(15);
  const u64 m = kPrime61;
  const U256 big_m(m);
  for (int i = 0; i < 50; ++i) {
    const u64 a = rng.below(m), e = rng.next();
    EXPECT_EQ(mod_pow(U256(a), U256(e), big_m).to_u64(), mod_pow(a, e, m));
  }
}

TEST(ModArithBig, InverseIsInverse256Bit) {
  Xoshiro256ss rng(16);
  const U256 p = random_prime<4>(200, rng);
  for (int i = 0; i < 30; ++i) {
    U256 a = random_below(p, rng);
    if (a.is_zero()) a = U256(7);
    const U256 inv = mod_inv(a, p);
    EXPECT_EQ(mod_mul(a, inv, p), U256(1));
  }
}

TEST(ModArithBig, NegIsAdditiveInverse) {
  Xoshiro256ss rng(17);
  const U256 m = U256::from_hex("ffffffffffffffffffffffffffffff61");
  for (int i = 0; i < 50; ++i) {
    const U256 a = random_below(m, rng);
    EXPECT_TRUE(mod_add(a, mod_neg(a, m), m).is_zero());
  }
}

TEST(Montgomery, RequiresOddModulus) {
  EXPECT_THROW(Montgomery<4>(U256(10)), CheckError);
  EXPECT_THROW(Montgomery<4>(U256(1)), CheckError);
}

TEST(Montgomery, RoundTripThroughDomain) {
  Xoshiro256ss rng(18);
  const U256 p = random_prime<4>(250, rng);
  const Montgomery<4> mont(p);
  for (int i = 0; i < 100; ++i) {
    const U256 x = random_below(p, rng);
    EXPECT_EQ(mont.from_mont(mont.to_mont(x)), x);
  }
}

TEST(Montgomery, MulMatchesPlainModMul) {
  Xoshiro256ss rng(19);
  const U256 p = random_prime<4>(250, rng);
  const Montgomery<4> mont(p);
  for (int i = 0; i < 100; ++i) {
    const U256 a = random_below(p, rng), b = random_below(p, rng);
    const U256 via_mont =
        mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b)));
    EXPECT_EQ(via_mont, mod_mul(a, b, p));
  }
}

TEST(Montgomery, PowMatchesPlainModPow) {
  Xoshiro256ss rng(20);
  const U256 p = random_prime<4>(200, rng);
  const Montgomery<4> mont(p);
  for (int i = 0; i < 30; ++i) {
    const U256 a = random_below(p, rng);
    const U256 e = random_below(p, rng);
    EXPECT_EQ(mont.pow(a, e), mod_pow(a, e, p));
  }
}

TEST(Montgomery, FermatOnBigPrime) {
  Xoshiro256ss rng(21);
  const U256 p = random_prime<4>(220, rng);
  const Montgomery<4> mont(p);
  U256 p_minus_1 = p;
  p_minus_1.sub_with_borrow(U256(1));
  for (int i = 0; i < 10; ++i) {
    U256 a = random_below(p, rng);
    if (a.is_zero()) a = U256(2);
    EXPECT_EQ(mont.pow(a, p_minus_1), U256(1)) << "iteration " << i;
  }
}

TEST(OpCounters, ScopesMeasureDeltas) {
  OpCountScope outer;
  mod_mul(3, 4, 97);
  {
    OpCountScope inner;
    mod_pow(3, 1000, 97);
    mod_inv(5, 97);
    const auto d = inner.delta();
    EXPECT_EQ(d.pow, 1u);
    EXPECT_EQ(d.inv, 1u);
    // Under the opcount.hpp contract the pow's internal multiplications are
    // themselves counted: a 10-bit exponent needs at least 9 squarings.
    EXPECT_GE(d.mul, 9u);
  }
  EXPECT_GE(outer.delta().total(), 3u);
}

}  // namespace
}  // namespace dmw::num
