// Windowed exponentiation engine: randomized cross-checks of the windowed
// pow / fixed-base commit / windowed multi-exponentiation paths against the
// naive implementations, on both group backends, plus decomposition
// invariants, edge cases, and the op-count accounting contract.
#include <gtest/gtest.h>

#include <bit>

#include "numeric/expwin.hpp"
#include "numeric/fixedbase.hpp"
#include "numeric/group.hpp"
#include "numeric/multiexp.hpp"
#include "support/rng.hpp"

namespace dmw::num {
namespace {

using dmw::Xoshiro256ss;

const Group256& big() {
  static const Group256 group = [] {
    Xoshiro256ss rng(77);
    return Group256::generate(96, 64, rng);
  }();
  return group;
}

// ---- decomposition invariants ---------------------------------------------

TEST(ExpWin, DecompositionReconstructsExponent) {
  Xoshiro256ss rng(1);
  for (unsigned w = 1; w <= 6; ++w) {
    for (int trial = 0; trial < 50; ++trial) {
      const u64 e = rng.next() >> (trial % 40);
      std::vector<WindowDigit> digits;
      decompose_windows(e, w, digits);
      u64 reconstructed = 0;
      unsigned prev_end = 0;
      for (std::size_t t = 0; t < digits.size(); ++t) {
        const auto& d = digits[t];
        EXPECT_EQ(d.value % 2, 1u) << "digits must be odd";
        EXPECT_LT(d.value, 1u << w);
        if (t > 0) {
          EXPECT_GE(d.pos, prev_end) << "digits must not overlap";
        }
        prev_end = d.pos + w;
        reconstructed += static_cast<u64>(d.value) << d.pos;
      }
      EXPECT_EQ(reconstructed, e);
    }
  }
}

TEST(ExpWin, WindowAccessors) {
  const u64 e = 0b1101'0110'1011ULL;
  EXPECT_EQ(exp_window(e, 0, 4), 0b1011u);
  EXPECT_EQ(exp_window(e, 4, 4), 0b0110u);
  EXPECT_EQ(exp_window(e, 8, 4), 0b1101u);
  EXPECT_EQ(exp_window(e, 10, 4), 0b11u);  // bits beyond the top read zero
  EXPECT_EQ(exp_bit_length(u64{0}), 0u);
  EXPECT_EQ(exp_bit_length(u64{1}), 1u);
  EXPECT_EQ(exp_bit_length(BigUInt<4>::one() << 200), 201u);
}

// ---- windowed pow vs naive -------------------------------------------------

TEST(ExpWin, PowWindowMatchesNaiveGroup64) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const auto base = g.pow(g.z1(), g.random_scalar(rng));
    const auto e = g.random_scalar(rng);
    EXPECT_EQ(g.pow(base, e), g.pow_naive(base, e));
  }
}

TEST(ExpWin, PowWindowMatchesNaiveGroup256) {
  const Group256& g = big();
  Xoshiro256ss rng(3);
  for (int trial = 0; trial < 12; ++trial) {
    const auto base = g.pow(g.z1(), g.random_scalar(rng));
    const auto e = g.random_scalar(rng);
    EXPECT_EQ(g.pow(base, e), g.pow_naive(base, e));
  }
}

TEST(ExpWin, PowEdgeExponents) {
  const Group64& g64 = Group64::test_group();
  const auto b64 = g64.z1();
  EXPECT_EQ(g64.pow(b64, 0), g64.identity());
  EXPECT_EQ(g64.pow(b64, 1), b64);
  EXPECT_EQ(g64.pow(b64, g64.q() - 1), g64.pow_naive(b64, g64.q() - 1));
  EXPECT_EQ(g64.pow(b64, g64.q()), g64.identity());  // order-q subgroup

  const Group256& g = big();
  const auto base = g.z2();
  EXPECT_EQ(g.pow(base, g.szero()), g.identity());
  EXPECT_EQ(g.pow(base, g.sone()), base);
  const auto qm1 = g.q() - Group256::Scalar::one();
  EXPECT_EQ(g.pow(base, qm1), g.pow_naive(base, qm1));
  EXPECT_EQ(g.pow(base, g.q()), g.identity());
}

TEST(ExpWin, ModPowMatchesNaiveU64) {
  Xoshiro256ss rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const u64 m = (rng.next() >> (trial % 32)) | 1;
    if (m <= 2) continue;
    const u64 a = rng.next() % m;
    const u64 e = rng.next() >> (trial % 48);
    EXPECT_EQ(mod_pow(a, e, m), mod_pow_naive(a, e, m));
  }
  EXPECT_EQ(mod_pow(0, 0, 7), 1u);  // 0^0 == 1, as before
  EXPECT_EQ(mod_pow(5, 0, 1), 0u);  // everything is 0 mod 1
}

TEST(ExpWin, ModPowMatchesNaiveBigUInt) {
  Xoshiro256ss rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    BigUInt<4> m = random_below(BigUInt<4>::max_value() >> 1, rng);
    m.set_bit(0, true);  // odd, > 1 after the next line
    m.set_bit(100, true);
    const auto a = mod(random_below(BigUInt<4>::max_value(), rng), m);
    const auto e = random_below(m, rng);
    EXPECT_EQ(mod_pow(a, e, m), mod_pow_naive(a, e, m));
  }
}

TEST(ExpWin, MontgomeryPowMatchesNaive) {
  Xoshiro256ss rng(6);
  const Group256& g = big();
  const Montgomery<4> mont(g.p());
  for (int trial = 0; trial < 10; ++trial) {
    const auto base = mod(random_below(BigUInt<4>::max_value(), rng), g.p());
    const auto e = random_below(g.p(), rng);
    EXPECT_EQ(mont.pow(base, e), mont.pow_naive(base, e));
  }
}

// ---- fixed-base tables -----------------------------------------------------

TEST(FixedBase, TableMatchesNaivePow) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(7);
  const Mod64Ops ops{g.p()};
  const auto base = g.pow(g.z1(), g.random_scalar(rng));
  const unsigned qbits = exp_bit_length(g.q());
  for (unsigned window = 1; window <= 6; ++window) {
    const FixedBaseTable<Mod64Ops> table(ops, base, qbits, window);
    for (int trial = 0; trial < 30; ++trial) {
      const auto e = g.random_scalar(rng);
      EXPECT_EQ(table.pow(ops, e), g.pow_naive(base, e));
    }
    EXPECT_EQ(table.pow(ops, u64{0}), u64{1});
    EXPECT_EQ(table.pow(ops, u64{1}), base);
    EXPECT_EQ(table.pow(ops, g.q() - 1), g.pow_naive(base, g.q() - 1));
  }
}

TEST(FixedBase, CommitMatchesNaiveGroup64) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = g.random_scalar(rng), b = g.random_scalar(rng);
    EXPECT_EQ(g.commit(a, b), g.commit_naive(a, b));
  }
  EXPECT_EQ(g.commit(0, 0), g.identity());
  EXPECT_EQ(g.commit(1, 0), g.z1());
  EXPECT_EQ(g.commit(0, 1), g.z2());
  EXPECT_EQ(g.commit(g.q() - 1, g.q() - 1),
            g.commit_naive(g.q() - 1, g.q() - 1));
}

TEST(FixedBase, CommitMatchesNaiveGroup256) {
  const Group256& g = big();
  Xoshiro256ss rng(9);
  for (int trial = 0; trial < 12; ++trial) {
    const auto a = g.random_scalar(rng), b = g.random_scalar(rng);
    EXPECT_EQ(g.commit(a, b), g.commit_naive(a, b));
  }
  const auto zero = g.szero(), one = g.sone();
  const auto qm1 = g.q() - Group256::Scalar::one();
  EXPECT_EQ(g.commit(zero, zero), g.identity());
  EXPECT_EQ(g.commit(one, zero), g.z1());
  EXPECT_EQ(g.commit(zero, one), g.z2());
  EXPECT_EQ(g.commit(qm1, qm1), g.commit_naive(qm1, qm1));
}

// ---- windowed multi-exponentiation ----------------------------------------

TEST(MultiExpWindowed, MatchesNaiveGroup64) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(10);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t count = 1 + rng.below(20);
    std::vector<Group64::Elem> bases;
    std::vector<Group64::Scalar> exps;
    for (std::size_t i = 0; i < count; ++i) {
      bases.push_back(g.pow(g.z1(), g.random_scalar(rng)));
      // Mix full-width, tiny, and zero exponents.
      const auto roll = trial % 3;
      exps.push_back(roll == 0   ? g.random_scalar(rng)
                     : roll == 1 ? g.random_scalar(rng) % 17
                                 : 0);
    }
    EXPECT_EQ(multi_pow<Group64>(g, bases, exps),
              multi_pow_naive<Group64>(g, bases, exps));
  }
}

TEST(MultiExpWindowed, MatchesNaiveGroup256) {
  const Group256& g = big();
  Xoshiro256ss rng(11);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<Group256::Elem> bases;
    std::vector<Group256::Scalar> exps;
    for (std::size_t i = 0; i < 6; ++i) {
      bases.push_back(g.pow(g.z1(), g.random_scalar(rng)));
      exps.push_back(g.random_scalar(rng));
    }
    EXPECT_EQ(multi_pow<Group256>(g, bases, exps),
              multi_pow_naive<Group256>(g, bases, exps));
  }
}

TEST(MultiExpWindowed, EdgeCases) {
  const Group64& g = Group64::test_group();
  // Empty base span.
  EXPECT_EQ(multi_pow<Group64>(g, {}, {}), g.identity());
  // Single-element span degenerates to pow.
  std::vector<Group64::Elem> one_base{g.z1()};
  std::vector<Group64::Scalar> one_exp{12345};
  EXPECT_EQ(multi_pow<Group64>(g, one_base, one_exp), g.pow(g.z1(), 12345));
  // All-zero exponents.
  std::vector<Group64::Elem> bases{g.z1(), g.z2()};
  std::vector<Group64::Scalar> zeros{0, 0};
  EXPECT_EQ(multi_pow<Group64>(g, bases, zeros), g.identity());
  // Exponents 1 and q-1.
  std::vector<Group64::Scalar> edge{1, g.q() - 1};
  EXPECT_EQ(multi_pow<Group64>(g, bases, edge),
            multi_pow_naive<Group64>(g, bases, edge));
}

TEST(MultiExpCacheTest, ReusedAcrossExponentVectors) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(12);
  std::vector<Group64::Elem> bases;
  for (std::size_t i = 0; i < 9; ++i)
    bases.push_back(g.pow(g.z2(), g.random_scalar(rng)));
  const MultiExpCache<Group64> cache(g, bases, g.scalar_bits());
  for (int round = 0; round < 10; ++round) {
    std::vector<Group64::Scalar> exps;
    for (std::size_t i = 0; i < bases.size(); ++i)
      exps.push_back(g.random_scalar(rng));
    EXPECT_EQ(cache.eval(exps), multi_pow_naive<Group64>(g, bases, exps));
  }
}

TEST(MultiExpCacheTest, Group256StaysInMontgomeryDomain) {
  const Group256& g = big();
  Xoshiro256ss rng(13);
  std::vector<Group256::Elem> bases;
  for (std::size_t i = 0; i < 4; ++i)
    bases.push_back(g.pow(g.z1(), g.random_scalar(rng)));
  const MultiExpCache<Group256> cache(g, bases, g.scalar_bits());
  std::vector<Group256::Scalar> exps;
  for (std::size_t i = 0; i < 4; ++i) exps.push_back(g.random_scalar(rng));

  // Correctness.
  ASSERT_EQ(cache.eval(exps), multi_pow_naive<Group256>(g, bases, exps));

  // The cached evaluation must not pay per-multiplication divmod reductions:
  // its mul count should be far below the naive product's.
  OpCountScope fast_scope;
  (void)cache.eval(exps);
  const auto fast = fast_scope.delta();
  OpCountScope naive_scope;
  (void)multi_pow_naive<Group256>(g, bases, exps);
  const auto naive = naive_scope.delta();
  EXPECT_LT(fast.mul, naive.mul);
}

// ---- op-count contract -----------------------------------------------------

TEST(OpCountContract, PowCountsItsMultiplications) {
  const Group64& g = Group64::test_group();
  OpCountScope scope;
  (void)g.pow(g.z1(), g.q() - 1);
  const auto delta = scope.delta();
  EXPECT_EQ(delta.pow, 1u);
  // A ~40-bit exponent needs at least one mul per exponent bit.
  EXPECT_GE(delta.mul, exp_bit_length(g.q()) - 1);
}

TEST(OpCountContract, FixedBaseCommitCountsFewerMulsThanNaive) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(14);
  const auto a = g.random_scalar(rng), b = g.random_scalar(rng);

  OpCountScope fast_scope;
  (void)g.commit(a, b);
  const auto fast = fast_scope.delta();

  OpCountScope naive_scope;
  (void)g.commit_naive(a, b);
  const auto naive = naive_scope.delta();

  // Both count two exponentiations; the fixed-base path does a fraction of
  // the multiplications (<= 2*ceil(bits/w)+1 vs ~1.5 per exponent bit).
  EXPECT_EQ(fast.pow, naive.pow);
  EXPECT_LT(fast.mul * 2, naive.mul);
}

TEST(OpCountContract, ModPow64BelowWindowThresholdUsesTightLoop) {
  // Below kPow64WindowMinBits — i.e. always, for u64 exponents — mod_pow on
  // an odd modulus must take the Montgomery LSB-first square-and-multiply
  // path, whose op-count signature is exactly bits + popcount
  // multiplications: bits-1 squarings + popcount-1 products (no initial
  // identity multiply, no wasted final squaring) plus the two domain
  // conversions. That equals mod_pow_naive's count — the measured >= 1.0
  // pow-speedup of BENCH_commit.json comes from each counted mul being
  // three 64x64 multiplies (REDC) instead of a 128/64 division, not from
  // doing fewer of them. Asserting the exact counts pins the dispatch
  // decision and the accounting contract.
  const u64 m = 1196215904639352043ull;
  for (u64 e : {(u64{1} << 40) - 1, u64{0x5eed5eed5eed}, u64{3}, u64{2}}) {
    const unsigned bits = exp_bit_length(e);
    const auto pop = static_cast<unsigned>(std::popcount(e));
    ASSERT_LT(bits, kPow64WindowMinBits);

    OpCountScope tight_scope;
    (void)mod_pow(123456789, e, m);
    const auto tight = tight_scope.delta();

    OpCountScope naive_scope;
    (void)mod_pow_naive(123456789, e, m);
    const auto naive = naive_scope.delta();

    EXPECT_EQ(tight.mul, bits + pop) << "e=" << e;
    EXPECT_EQ(naive.mul, bits + pop) << "e=" << e;
    EXPECT_EQ(mod_pow(123456789, e, m), mod_pow_naive(123456789, e, m));
  }
}

TEST(OpCountContract, MontgomeryPowCountsMuls) {
  const Group256& g = big();
  OpCountScope scope;
  (void)g.pow(g.z1(), g.q() - Group256::Scalar::one());
  const auto delta = scope.delta();
  EXPECT_EQ(delta.pow, 1u);
  EXPECT_GE(delta.mul, g.scalar_bits() - 1);
}

}  // namespace
}  // namespace dmw::num
