// Payment infrastructure escrow (paper Phase IV agreement rule).
#include <gtest/gtest.h>

#include "dmw/payment.hpp"

namespace dmw::proto {
namespace {

TEST(PaymentInfra, UnanimousClaimsSettle) {
  PaymentInfrastructure infra(3);
  const std::vector<std::uint64_t> claim{4, 0, 9};
  infra.submit(0, claim);
  infra.submit(1, claim);
  infra.submit(2, claim);
  const auto settled = infra.settle();
  ASSERT_TRUE(settled.has_value());
  EXPECT_EQ(*settled, claim);
}

TEST(PaymentInfra, MissingClaimBlocksSettlement) {
  PaymentInfrastructure infra(3);
  infra.submit(0, {1, 2, 3});
  infra.submit(1, {1, 2, 3});
  EXPECT_FALSE(infra.settle().has_value());
  EXPECT_EQ(infra.claims_received(), 2u);
}

TEST(PaymentInfra, ConflictingClaimBlocksSettlement) {
  PaymentInfrastructure infra(2);
  infra.submit(0, {5, 5});
  infra.submit(1, {5, 6});
  EXPECT_FALSE(infra.settle().has_value());
}

TEST(PaymentInfra, DuplicateClaimantBlocksSettlement) {
  PaymentInfrastructure infra(2);
  infra.submit(0, {5, 5});
  infra.submit(0, {5, 5});
  EXPECT_FALSE(infra.settle().has_value());
}

TEST(PaymentInfra, RejectsMalformedSubmissions) {
  PaymentInfrastructure infra(2);
  EXPECT_THROW(infra.submit(5, {1, 2}), CheckError);     // unknown agent
  EXPECT_THROW(infra.submit(0, {1, 2, 3}), CheckError);  // wrong vector size
}

TEST(PaymentInfra, EmptyNeverSettles) {
  PaymentInfrastructure infra(1);
  EXPECT_FALSE(infra.settle().has_value());
}

}  // namespace
}  // namespace dmw::proto
