// Empirical truthfulness of MinWork (paper Theorem 2, Definitions 3-4):
// exhaustive single-task misreports plus random joint misreports must never
// beat truth-telling, and truthful agents never lose.
#include <gtest/gtest.h>

#include "mech/truthful.hpp"

namespace dmw::mech {
namespace {

class TruthfulnessSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TruthfulnessSweep, MinWorkIsTruthfulOnRandomInstances) {
  Xoshiro256ss rng(GetParam());
  const std::size_t n = 3 + rng.below(4);
  const std::size_t m = 1 + rng.below(4);
  const BidSet bids = BidSet::iota(4);
  const auto instance = make_uniform_instance(n, m, bids, rng);
  const auto report = check_minwork_truthfulness(instance, bids, 10, rng);
  EXPECT_TRUE(report.truthful) << "gain " << report.max_gain;
  EXPECT_TRUE(report.voluntary);
  EXPECT_LE(report.max_gain, 0);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_GT(report.deviations_tried, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TruthfulnessSweep,
                         ::testing::Range<std::uint64_t>(100, 130));

TEST(Truthfulness, CorrelatedWorkloadsAreAlsoTruthful) {
  Xoshiro256ss rng(300);
  const BidSet bids = BidSet::iota(5);
  const auto machine = make_machine_correlated_instance(5, 3, bids, rng);
  const auto task = make_task_correlated_instance(5, 3, bids, rng);
  for (const auto* instance : {&machine, &task}) {
    const auto report = check_minwork_truthfulness(*instance, bids, 5, rng);
    EXPECT_TRUE(report.truthful);
    EXPECT_TRUE(report.voluntary);
  }
}

TEST(Truthfulness, DetectsANonTruthfulMechanism) {
  // Sanity-check the checker itself against a first-price mechanism, which
  // is famously NOT truthful: a winner gains by inflating its bid toward
  // the second price.
  Xoshiro256ss rng(301);
  const BidSet bids = BidSet::iota(4);
  SchedulingInstance instance{3, 1, {{1}, {3}, {4}}};
  const auto first_price_utility = [&](const BidMatrix& b, std::size_t agent) {
    const auto outcome = run_minwork(b);
    // First-price payment: the winner receives its own bid.
    std::uint64_t payment = 0;
    for (std::size_t j = 0; j < instance.m; ++j)
      if (outcome.schedule.agent_for(j) == agent)
        payment += b[agent][j];
    return utility(instance, outcome.schedule, agent, payment);
  };
  const auto report =
      check_truthfulness(instance, bids, first_price_utility, 0, rng);
  EXPECT_FALSE(report.truthful);
  EXPECT_GT(report.max_gain, 0);
  EXPECT_FALSE(report.violations.empty());
}

TEST(Truthfulness, ViolationRecordsAreWellFormed) {
  Xoshiro256ss rng(302);
  const BidSet bids = BidSet::iota(3);
  SchedulingInstance instance{3, 1, {{1}, {2}, {3}}};
  const auto silly_utility = [&](const BidMatrix& b, std::size_t agent) {
    // Pathological: utility equals your reported bid. Higher reports win.
    return static_cast<std::int64_t>(b[agent][0]);
  };
  const auto report =
      check_truthfulness(instance, bids, silly_utility, 0, rng);
  ASSERT_FALSE(report.truthful);
  for (const auto& v : report.violations) {
    EXPECT_GT(v.gain(), 0);
    EXPECT_LT(v.agent, instance.n);
  }
}

}  // namespace
}  // namespace dmw::mech
