// The message-passing centralized MinWork runner (Fig. 1 over SimNetwork).
#include <gtest/gtest.h>

#include "dmw/centralized.hpp"

namespace dmw::proto {
namespace {

TEST(Centralized, OutcomeMatchesDirectMinWork) {
  Xoshiro256ss rng(900);
  const auto instance =
      mech::make_uniform_instance(6, 4, mech::BidSet::iota(4), rng);
  const auto wire = run_centralized_minwork(mech::truthful_bids(instance));
  const auto direct = mech::run_minwork(instance);
  EXPECT_EQ(wire.mechanism.schedule, direct.schedule);
  EXPECT_EQ(wire.mechanism.payments, direct.payments);
}

TEST(Centralized, MessageCountIsExactly2N) {
  Xoshiro256ss rng(901);
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    const auto instance =
        mech::make_uniform_instance(n, 3, mech::BidSet::iota(2), rng);
    const auto wire = run_centralized_minwork(mech::truthful_bids(instance));
    // n inbound bid vectors + n outbound results.
    EXPECT_EQ(wire.traffic.unicast_messages, 2 * n);
    EXPECT_EQ(wire.traffic.broadcast_messages, 0u);
    EXPECT_EQ(wire.rounds, 2u);
  }
}

TEST(Centralized, BytesGrowLinearlyInTasks) {
  Xoshiro256ss rng(902);
  const std::size_t n = 6;
  std::uint64_t previous = 0;
  for (std::size_t m : {2u, 4u, 8u}) {
    const auto instance =
        mech::make_uniform_instance(n, m, mech::BidSet::iota(2), rng);
    const auto wire = run_centralized_minwork(mech::truthful_bids(instance));
    EXPECT_GT(wire.traffic.unicast_bytes, previous);
    previous = wire.traffic.unicast_bytes;
  }
}

TEST(Centralized, RejectsDegenerateInput) {
  EXPECT_THROW(run_centralized_minwork(mech::BidMatrix{{1, 2}}), CheckError);
}

}  // namespace
}  // namespace dmw::proto
