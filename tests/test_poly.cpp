// Polynomials over Z_q: evaluation, arithmetic, random sampling invariants.
#include <gtest/gtest.h>

#include "poly/polynomial.hpp"
#include "support/rng.hpp"

namespace dmw::poly {
namespace {

using dmw::Xoshiro256ss;
using dmw::num::Group64;
using Poly = Polynomial<Group64>;

const Group64& grp() { return Group64::test_group(); }

TEST(Polynomial, ZeroProperties) {
  const Poly z = Poly::zero();
  EXPECT_TRUE(z.is_zero(grp()));
  EXPECT_FALSE(z.degree(grp()).has_value());
  EXPECT_EQ(z.eval(grp(), 5), 0u);
}

TEST(Polynomial, EvalMatchesNaivePowerSum) {
  const Group64& g = grp();
  Xoshiro256ss rng(50);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t deg = 1 + rng.below(10);
    std::vector<std::uint64_t> coeffs(deg + 1);
    for (auto& c : coeffs) c = g.random_scalar(rng);
    const Poly p(coeffs);
    const auto x = g.random_scalar(rng);
    // Naive sum c_i * x^i via repeated pow.
    std::uint64_t expected = 0;
    std::uint64_t xp = 1;
    for (std::size_t i = 0; i <= deg; ++i) {
      expected = g.sadd(expected, g.smul(coeffs[i], xp));
      xp = g.smul(xp, x);
    }
    EXPECT_EQ(p.eval(g, x), expected);
  }
}

TEST(Polynomial, EvalAtZeroIsConstantTerm) {
  const Poly p({7, 3, 9});
  EXPECT_EQ(p.eval(grp(), 0), 7u);
}

TEST(Polynomial, DegreeIgnoresTrailingZeros) {
  const Poly p({1, 2, 0, 0});
  EXPECT_EQ(p.degree(grp()), 1u);
}

TEST(Polynomial, RandomZeroConstHasExactShape) {
  const Group64& g = grp();
  Xoshiro256ss rng(51);
  for (std::size_t deg = 1; deg <= 12; ++deg) {
    const Poly p = Poly::random_zero_const(g, deg, rng);
    EXPECT_EQ(p.degree(g), deg);
    EXPECT_EQ(p.coeff(g, 0), g.szero());
    EXPECT_EQ(p.eval(g, 0), g.szero());
    EXPECT_NE(p.coeff(g, deg), g.szero());
  }
}

TEST(Polynomial, RandomZeroConstDegreeZeroRejected) {
  Xoshiro256ss rng(52);
  EXPECT_THROW(Poly::random_zero_const(grp(), 0, rng), dmw::CheckError);
}

TEST(Polynomial, AdditionIsPointwise) {
  const Group64& g = grp();
  Xoshiro256ss rng(53);
  const Poly a = Poly::random_zero_const(g, 5, rng);
  const Poly b = Poly::random_zero_const(g, 8, rng);
  const Poly sum = a.add(g, b);
  for (int i = 0; i < 20; ++i) {
    const auto x = g.random_scalar(rng);
    EXPECT_EQ(sum.eval(g, x), g.sadd(a.eval(g, x), b.eval(g, x)));
  }
}

TEST(Polynomial, SubtractionInvertsAddition) {
  const Group64& g = grp();
  Xoshiro256ss rng(54);
  const Poly a = Poly::random_zero_const(g, 6, rng);
  const Poly b = Poly::random_zero_const(g, 4, rng);
  const Poly diff = a.add(g, b).sub(g, b);
  for (int i = 0; i < 10; ++i) {
    const auto x = g.random_scalar(rng);
    EXPECT_EQ(diff.eval(g, x), a.eval(g, x));
  }
}

TEST(Polynomial, MultiplicationIsPointwiseAndDegreeAdds) {
  const Group64& g = grp();
  Xoshiro256ss rng(55);
  const Poly a = Poly::random_zero_const(g, 3, rng);
  const Poly b = Poly::random_zero_const(g, 4, rng);
  const Poly prod = a.mul(g, b);
  EXPECT_EQ(prod.degree(g), 7u);
  // Zero constant terms make the product vanish to order 2.
  EXPECT_EQ(prod.coeff(g, 0), g.szero());
  EXPECT_EQ(prod.coeff(g, 1), g.szero());
  for (int i = 0; i < 20; ++i) {
    const auto x = g.random_scalar(rng);
    EXPECT_EQ(prod.eval(g, x), g.smul(a.eval(g, x), b.eval(g, x)));
  }
}

TEST(Polynomial, MulByZeroIsZero) {
  const Group64& g = grp();
  Xoshiro256ss rng(56);
  const Poly a = Poly::random_zero_const(g, 3, rng);
  EXPECT_TRUE(a.mul(g, Poly::zero()).is_zero(g));
}

TEST(Polynomial, ScaleIsScalarMultiple) {
  const Group64& g = grp();
  Xoshiro256ss rng(57);
  const Poly a = Poly::random_zero_const(g, 5, rng);
  const auto k = g.random_nonzero_scalar(rng);
  const Poly scaled = a.scale(g, k);
  const auto x = g.random_scalar(rng);
  EXPECT_EQ(scaled.eval(g, x), g.smul(k, a.eval(g, x)));
}

TEST(Polynomial, EvalAllMatchesEval) {
  const Group64& g = grp();
  Xoshiro256ss rng(58);
  const Poly a = Poly::random_zero_const(g, 4, rng);
  const std::vector<std::uint64_t> points{1, 2, 3, 4, 5};
  const auto values = a.eval_all(g, points);
  ASSERT_EQ(values.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(values[i], a.eval(g, points[i]));
}

}  // namespace
}  // namespace dmw::poly
