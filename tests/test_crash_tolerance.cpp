// Crash-fault tolerance (paper Open Problem 11): "as long as the number of
// agents obeying the protocol remains above a threshold, the mechanism is
// computable". In crash-tolerant mode a run must survive up to c
// fail-silent agents at ANY phase boundary and still produce the MinWork
// outcome over the agents that actually bid; the strict protocol aborts on
// the first missing message.
#include <gtest/gtest.h>

#include "dmw/protocol.hpp"
#include "dmw/strategies.hpp"
#include "mech/minwork.hpp"

namespace dmw::proto {
namespace {

using num::Group64;

const Group64& grp() { return Group64::test_group(); }

struct Setup {
  PublicParams<Group64> params;
  mech::SchedulingInstance instance;

  static Setup tolerant(std::size_t n, std::size_t m, std::size_t c,
                        std::uint64_t seed) {
    auto params =
        PublicParams<Group64>::make_crash_tolerant(grp(), n, m, c, seed);
    Xoshiro256ss rng(seed + 1);
    auto instance =
        mech::make_uniform_instance(n, m, params.bid_set(), rng);
    return Setup{std::move(params), std::move(instance)};
  }

  Outcome run_with_crashes(const std::vector<std::size_t>& who,
                           CrashPoint when) {
    HonestStrategy<Group64> honest;
    CrashStrategy<Group64> crash(when);
    std::vector<Strategy<Group64>*> strategies(params.n(), &honest);
    for (std::size_t agent : who) strategies[agent] = &crash;
    ProtocolRunner<Group64> runner(params, instance, strategies);
    return runner.run();
  }
};

TEST(CrashTolerance, ParamsValidation) {
  // w_k <= n - 2c - 1: n=8, c=2 admits W = {1..3}.
  const auto params =
      PublicParams<Group64>::make_crash_tolerant(grp(), 8, 1, 2, 1);
  EXPECT_TRUE(params.crash_tolerant());
  EXPECT_EQ(params.bid_set().max(), 3u);
  EXPECT_EQ(params.quorum(), 6u);
  EXPECT_THROW(PublicParams<Group64>::make_crash_tolerant(grp(), 5, 1, 2, 1),
               CheckError);
  // Strict params keep quorum == n.
  const auto strict = PublicParams<Group64>::make(grp(), 8, 1, 2, 1);
  EXPECT_FALSE(strict.crash_tolerant());
  EXPECT_EQ(strict.quorum(), 8u);
}

TEST(CrashTolerance, NoCrashesBehavesLikeStrict) {
  auto setup = Setup::tolerant(8, 2, 2, 10);
  const auto outcome = setup.run_with_crashes({}, CrashPoint::kBeforeBidding);
  ASSERT_FALSE(outcome.aborted);
  const auto central = mech::run_minwork(setup.instance);
  EXPECT_EQ(outcome.schedule, central.schedule);
  EXPECT_EQ(outcome.payments, central.payments);
}

class CrashPointSweep : public ::testing::TestWithParam<CrashPoint> {};

TEST_P(CrashPointSweep, OneCrashSurvives) {
  auto setup = Setup::tolerant(8, 2, 2, 11);
  const std::size_t crashed = 3;
  const auto outcome = setup.run_with_crashes({crashed}, GetParam());
  ASSERT_FALSE(outcome.aborted)
      << "crash point " << static_cast<int>(GetParam()) << " aborted with "
      << to_string(outcome.abort_record->reason);

  if (GetParam() == CrashPoint::kBeforeBidding) {
    // The crashed agent never bid: the outcome is MinWork over the rest.
    for (std::size_t j = 0; j < setup.instance.m; ++j)
      EXPECT_NE(outcome.schedule.agent_for(j), crashed);
    // Compare against MinWork on the surviving bid matrix.
    mech::BidMatrix survivors;
    std::vector<std::size_t> index_map;
    for (std::size_t i = 0; i < setup.instance.n; ++i) {
      if (i == crashed) continue;
      survivors.push_back(setup.instance.cost[i]);
      index_map.push_back(i);
    }
    const auto central = mech::run_minwork(survivors);
    for (std::size_t j = 0; j < setup.instance.m; ++j) {
      EXPECT_EQ(outcome.schedule.agent_for(j),
                index_map[central.schedule.agent_for(j)]);
      EXPECT_EQ(outcome.second_prices[j], central.auctions[j].second_price);
    }
  } else {
    // The crashed agent's Phase II bid still participates: the outcome is
    // plain MinWork over everyone.
    const auto central = mech::run_minwork(setup.instance);
    EXPECT_EQ(outcome.schedule, central.schedule);
    EXPECT_EQ(outcome.payments, central.payments);
  }
}

INSTANTIATE_TEST_SUITE_P(Points, CrashPointSweep,
                         ::testing::Values(CrashPoint::kBeforeBidding,
                                           CrashPoint::kAfterBidding,
                                           CrashPoint::kAfterLambdaPsi,
                                           CrashPoint::kAfterDisclosure,
                                           CrashPoint::kAfterReduced));

TEST(CrashTolerance, TwoCrashesAtDifferentPointsSurvive) {
  auto setup = Setup::tolerant(9, 2, 2, 12);
  HonestStrategy<Group64> honest;
  CrashStrategy<Group64> early(CrashPoint::kBeforeBidding);
  CrashStrategy<Group64> late(CrashPoint::kAfterLambdaPsi);
  std::vector<Strategy<Group64>*> strategies(9, &honest);
  strategies[1] = &early;
  strategies[6] = &late;
  ProtocolRunner<Group64> runner(setup.params, setup.instance, strategies);
  const auto outcome = runner.run();
  ASSERT_FALSE(outcome.aborted)
      << to_string(outcome.abort_record->reason);
  for (std::size_t j = 0; j < setup.instance.m; ++j)
    EXPECT_NE(outcome.schedule.agent_for(j), 1u);
}

TEST(CrashTolerance, MoreThanCPreBiddingCrashesLoseQuorum) {
  auto setup = Setup::tolerant(8, 1, 2, 13);
  const auto outcome =
      setup.run_with_crashes({1, 4, 6}, CrashPoint::kBeforeBidding);
  ASSERT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.abort_record->reason, AbortReason::kQuorumLost);
}

TEST(CrashTolerance, StrictModeStillAbortsOnAnyCrash) {
  const auto params = PublicParams<Group64>::make(grp(), 8, 1, 2, 14);
  Xoshiro256ss rng(15);
  const auto instance =
      mech::make_uniform_instance(8, 1, params.bid_set(), rng);
  HonestStrategy<Group64> honest;
  CrashStrategy<Group64> crash(CrashPoint::kBeforeBidding);
  std::vector<Strategy<Group64>*> strategies(8, &honest);
  strategies[2] = &crash;
  ProtocolRunner<Group64> runner(params, instance, strategies);
  const auto outcome = runner.run();
  ASSERT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.abort_record->reason, AbortReason::kMissingCommitments);
}

TEST(CrashTolerance, CrashedWinnerStaysAllocated) {
  // A bidder that crashes right after Phase II can still win: its bid is
  // committed and the auction proceeds without its cooperation. (A real
  // deployment would claw the task back at the SLA layer; the mechanism
  // itself completes.)
  auto params = PublicParams<Group64>::make_crash_tolerant(grp(), 8, 1, 2, 16);
  mech::SchedulingInstance instance{
      8, 1, {{3}, {3}, {1}, {3}, {2}, {3}, {3}, {3}}};
  HonestStrategy<Group64> honest;
  CrashStrategy<Group64> crash(CrashPoint::kAfterBidding);
  std::vector<Strategy<Group64>*> strategies(8, &honest);
  strategies[2] = &crash;  // the cheapest agent crashes after bidding
  ProtocolRunner<Group64> runner(params, instance, strategies);
  const auto outcome = runner.run();
  ASSERT_FALSE(outcome.aborted)
      << to_string(outcome.abort_record->reason);
  EXPECT_EQ(outcome.schedule.agent_for(0), 2u);
  EXPECT_EQ(outcome.second_prices[0], 2u);
}

TEST(CrashTolerance, DeviationDetectionStillWorks) {
  // Crash tolerance must not weaken cheating detection: equivocation
  // (commitments posted, shares withheld) and bad commitments still abort.
  auto setup = Setup::tolerant(8, 1, 2, 17);
  {
    HonestStrategy<Group64> honest;
    WithholdShareStrategy<Group64> equivocator(/*victim=*/4);
    std::vector<Strategy<Group64>*> strategies(8, &honest);
    strategies[1] = &equivocator;
    ProtocolRunner<Group64> runner(setup.params, setup.instance, strategies);
    const auto outcome = runner.run();
    ASSERT_TRUE(outcome.aborted);
    EXPECT_EQ(outcome.abort_record->reason, AbortReason::kMissingShares);
  }
  {
    HonestStrategy<Group64> honest;
    InconsistentCommitmentsStrategy<Group64> cheat;
    std::vector<Strategy<Group64>*> strategies(8, &honest);
    strategies[5] = &cheat;
    ProtocolRunner<Group64> runner(setup.params, setup.instance, strategies);
    const auto outcome = runner.run();
    ASSERT_TRUE(outcome.aborted);
    EXPECT_EQ(outcome.abort_record->reason, AbortReason::kBadShareCommitment);
  }
}

TEST(CrashTolerance, FaithfulnessHoldsInTolerantMode) {
  // Deviants must still never profit when the protocol is lenient about
  // silence: silence now yields a completed run in which the silent agent
  // simply keeps (at most) its honest allocation.
  auto setup = Setup::tolerant(7, 2, 1, 18);
  const auto honest_outcome = run_honest_dmw(setup.params, setup.instance);
  ASSERT_FALSE(honest_outcome.aborted);
  for (auto when :
       {CrashPoint::kBeforeBidding, CrashPoint::kAfterBidding,
        CrashPoint::kAfterLambdaPsi, CrashPoint::kAfterReduced}) {
    for (std::size_t who = 0; who < setup.params.n(); ++who) {
      const auto outcome = setup.run_with_crashes({who}, when);
      EXPECT_LE(outcome.utility(setup.instance, who),
                honest_outcome.utility(setup.instance, who))
          << "crash point " << static_cast<int>(when) << " agent " << who;
    }
  }
}

}  // namespace
}  // namespace dmw::proto
