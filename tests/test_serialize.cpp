// Wire-format writer/reader: round-trips, varint edge cases and decode
// failure modes — plus the Envelope/Posting transport codecs.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/serialize.hpp"
#include "numeric/group.hpp"

namespace dmw::net {
namespace {

TEST(Serialize, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VarintRoundTripBoundaries) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ULL << 32) - 1,
                                  1ULL << 32,
                                  ~std::uint64_t{0}};
  Writer w;
  for (auto v : values) w.varint(v);
  Reader r(w.bytes());
  for (auto v : values) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VarintEncodingIsMinimalForSmallValues) {
  Writer w;
  w.varint(5);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.varint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Serialize, StringsAndBlobs) {
  Writer w;
  w.str("hello");
  w.str("");
  const std::vector<std::uint8_t> blob{1, 2, 3};
  w.blob(blob);
  Reader r(w.bytes());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.blob(), blob);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, U64Vector) {
  Writer w;
  w.u64_vec({10, 20, 30});
  w.u64_vec({});
  Reader r(w.bytes());
  EXPECT_EQ(r.u64_vec(), (std::vector<std::uint64_t>{10, 20, 30}));
  EXPECT_EQ(r.u64_vec(), std::vector<std::uint64_t>{});
}

TEST(Serialize, BigUIntRoundTrip) {
  const auto v = dmw::num::U256::from_hex("123456789abcdef0fedcba9876543210");
  Writer w;
  w.big(v);
  EXPECT_EQ(w.size(), 32u);
  Reader r(w.bytes());
  EXPECT_EQ(r.big<4>(), v);
}

TEST(Serialize, UnderrunThrows) {
  Writer w;
  w.u32(1);
  Reader r(w.bytes());
  EXPECT_THROW(r.u64(), DecodeError);
}

TEST(Serialize, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.expect_done(), DecodeError);
  r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Serialize, OverlongVarintRejected) {
  // 11 continuation bytes cannot encode a u64.
  std::vector<std::uint8_t> bad(11, 0x80);
  Reader r(bad);
  EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Serialize, VarintOverflowRejected) {
  // 10 bytes whose top bits overflow 64 bits.
  std::vector<std::uint8_t> bad = {0xff, 0xff, 0xff, 0xff, 0xff,
                                   0xff, 0xff, 0xff, 0xff, 0x7f};
  Reader r(bad);
  EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Serialize, U64VecLengthBombRejected) {
  Writer w;
  w.varint(1ULL << 40);  // claims ~10^12 entries
  Reader r(w.bytes());
  EXPECT_THROW(r.u64_vec(), DecodeError);
}

TEST(Serialize, GroupCodecsRoundTrip64) {
  const auto& g = dmw::num::Group64::test_group();
  Writer w;
  write_scalar(w, g, 12345u);
  write_elem(w, g, g.z1());
  Reader r(w.bytes());
  EXPECT_EQ(read_scalar(r, g), 12345u);
  EXPECT_EQ(read_elem(r, g), g.z1());
}

TEST(Serialize, EnvelopeRoundTrip) {
  Envelope env;
  env.from = 3;
  env.to = 7;
  env.kind = 2;
  env.payload = {0xde, 0xad, 0xbe, 0xef};
  env.msg_id = 99;  // simulator-local: must not survive the codec

  const auto bytes = Envelope::decode(env.encode());
  EXPECT_EQ(bytes.from, env.from);
  EXPECT_EQ(bytes.to, env.to);
  EXPECT_EQ(bytes.kind, env.kind);
  EXPECT_EQ(bytes.payload, env.payload);
  EXPECT_EQ(bytes.msg_id, 0u);
}

TEST(Serialize, EnvelopeEmptyPayloadRoundTrip) {
  Envelope env;
  env.from = 0;
  env.to = 1;
  const auto decoded = Envelope::decode(env.encode());
  EXPECT_EQ(decoded.to, 1u);
  EXPECT_TRUE(decoded.payload.empty());
}

TEST(Serialize, PostingRoundTrip) {
  Posting posting;
  posting.from = 5;
  posting.kind = 4;
  posting.round = 0x1122334455667788ULL;
  posting.payload = {1, 2, 3};
  posting.msg_id = 42;

  const auto decoded = Posting::decode(posting.encode());
  EXPECT_EQ(decoded.from, posting.from);
  EXPECT_EQ(decoded.kind, posting.kind);
  EXPECT_EQ(decoded.round, posting.round);
  EXPECT_EQ(decoded.payload, posting.payload);
  EXPECT_EQ(decoded.msg_id, 0u);
}

TEST(Serialize, EnvelopeTruncationRejected) {
  Envelope env;
  env.from = 1;
  env.to = 2;
  env.kind = 3;
  env.payload = {9, 9, 9};
  auto bytes = env.encode();
  // Every proper prefix must fail: either a header underrun or a payload
  // blob whose declared length runs past the buffer.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        Envelope::decode(std::span<const std::uint8_t>(bytes.data(), len)),
        DecodeError)
        << "prefix length " << len;
  }
}

TEST(Serialize, EnvelopeTrailingBytesRejected) {
  Envelope env;
  env.payload = {1};
  auto bytes = env.encode();
  bytes.push_back(0x00);
  EXPECT_THROW(Envelope::decode(bytes), DecodeError);
}

TEST(Serialize, PostingTruncationAndTrailingRejected) {
  Posting posting;
  posting.from = 2;
  posting.kind = 6;
  posting.round = 9;
  posting.payload = {7, 7};
  auto bytes = posting.encode();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        Posting::decode(std::span<const std::uint8_t>(bytes.data(), len)),
        DecodeError)
        << "prefix length " << len;
  }
  bytes.push_back(0xff);
  EXPECT_THROW(Posting::decode(bytes), DecodeError);
}

}  // namespace
}  // namespace dmw::net
