// BigUInt<W>: construction, comparison, arithmetic, shifts, division and
// string codecs, cross-checked against native 128-bit arithmetic.
#include <gtest/gtest.h>

#include "numeric/biguint.hpp"
#include "support/rng.hpp"

namespace dmw::num {
namespace {

using dmw::Xoshiro256ss;

TEST(BigUInt, DefaultIsZero) {
  U256 v;
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.bit_length(), 0u);
  EXPECT_EQ(v.to_hex(), "0");
  EXPECT_EQ(v.to_dec(), "0");
}

TEST(BigUInt, FromU64RoundTrip) {
  const U256 v(0xdeadbeefcafebabeULL);
  EXPECT_TRUE(v.fits_u64());
  EXPECT_EQ(v.to_u64(), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(v.to_hex(), "deadbeefcafebabe");
}

TEST(BigUInt, HexRoundTrip) {
  const std::string hex = "1fffffffffffffffffffffffffffffffffffffffff";
  const U256 v = U256::from_hex(hex);
  EXPECT_EQ(v.to_hex(), hex);
}

TEST(BigUInt, HexRejectsBadDigit) {
  EXPECT_THROW(U256::from_hex("12g4"), CheckError);
  EXPECT_THROW(U256::from_hex(""), CheckError);
}

TEST(BigUInt, DecString) {
  EXPECT_EQ(U256(1234567890123456789ULL).to_dec(), "1234567890123456789");
  // 2^64 = 18446744073709551616
  U256 v(1);
  v = v << 64;
  EXPECT_EQ(v.to_dec(), "18446744073709551616");
}

TEST(BigUInt, ComparisonOrdering) {
  const U256 a(5), b(7);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, U256(5));
  U256 high;
  high.set_limb(3, 1);
  EXPECT_GT(high, b);
}

TEST(BigUInt, AdditionCarriesAcrossLimbs) {
  U256 a;
  a.set_limb(0, ~u64{0});
  a.set_limb(1, ~u64{0});
  const U256 sum = a + U256(1);
  EXPECT_EQ(sum.limb(0), 0u);
  EXPECT_EQ(sum.limb(1), 0u);
  EXPECT_EQ(sum.limb(2), 1u);
}

TEST(BigUInt, SubtractionBorrows) {
  U256 a;
  a.set_limb(2, 1);  // 2^128
  const U256 diff = a - U256(1);
  EXPECT_EQ(diff.limb(0), ~u64{0});
  EXPECT_EQ(diff.limb(1), ~u64{0});
  EXPECT_EQ(diff.limb(2), 0u);
}

TEST(BigUInt, AddSubInverse) {
  Xoshiro256ss rng(1);
  for (int i = 0; i < 200; ++i) {
    U256 a, b;
    for (int l = 0; l < 4; ++l) {
      a.set_limb(l, rng.next());
      b.set_limb(l, rng.next());
    }
    EXPECT_EQ((a + b) - b, a);
  }
}

TEST(BigUInt, WrapAroundAtMax) {
  const U256 max = U256::max_value();
  EXPECT_TRUE((max + U256(1)).is_zero());
  EXPECT_EQ(U256::zero() - U256(1), max);
}

TEST(BigUInt, MulWideMatchesNativeOn64BitOperands) {
  Xoshiro256ss rng(2);
  for (int i = 0; i < 200; ++i) {
    const u64 a = rng.next(), b = rng.next();
    const auto wide = mul_wide(U128(a), U128(b));
    const u128 expected = static_cast<u128>(a) * b;
    EXPECT_EQ(wide.limb(0), static_cast<u64>(expected));
    EXPECT_EQ(wide.limb(1), static_cast<u64>(expected >> 64));
    EXPECT_EQ(wide.limb(2), 0u);
    EXPECT_EQ(wide.limb(3), 0u);
  }
}

TEST(BigUInt, TruncatingMulMatchesWideLowLimbs) {
  Xoshiro256ss rng(3);
  for (int i = 0; i < 100; ++i) {
    U256 a, b;
    for (int l = 0; l < 4; ++l) {
      a.set_limb(l, rng.next());
      b.set_limb(l, rng.next());
    }
    const auto narrow = a * b;
    const auto wide = mul_wide(a, b);
    for (int l = 0; l < 4; ++l) EXPECT_EQ(narrow.limb(l), wide.limb(l));
  }
}

TEST(BigUInt, ShiftsRoundTrip) {
  Xoshiro256ss rng(4);
  for (unsigned s : {1u, 7u, 63u, 64u, 65u, 127u, 128u, 200u, 255u}) {
    U256 v;
    v.set_limb(0, rng.next());
    // Keep the round trip lossless: drop bits that the left shift would
    // push past the 256-bit width.
    for (unsigned b = 256 - s; b < 256; ++b) v.set_bit(b, false);
    const U256 shifted = v << s;
    EXPECT_EQ(shifted >> s, v) << "shift " << s;
  }
}

TEST(BigUInt, ShiftByZeroIsIdentity) {
  const U256 v(0x1234);
  EXPECT_EQ(v << 0, v);
  EXPECT_EQ(v >> 0, v);
}

TEST(BigUInt, BitAccessors) {
  U256 v;
  v.set_bit(0, true);
  v.set_bit(100, true);
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(100));
  EXPECT_FALSE(v.bit(99));
  EXPECT_EQ(v.bit_length(), 101u);
  v.set_bit(100, false);
  EXPECT_EQ(v.bit_length(), 1u);
}

TEST(BigUInt, DivModMatchesNativeOnSmallOperands) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 300; ++i) {
    const u128 a = (static_cast<u128>(rng.next()) << 64) | rng.next();
    u128 b = (static_cast<u128>(rng.below(1u << 20)) << 64) | rng.next();
    if (b == 0) b = 1;
    U128 big_a, big_b;
    big_a.set_limb(0, static_cast<u64>(a));
    big_a.set_limb(1, static_cast<u64>(a >> 64));
    big_b.set_limb(0, static_cast<u64>(b));
    big_b.set_limb(1, static_cast<u64>(b >> 64));
    const auto dm = divmod(big_a, big_b);
    const u128 q = a / b, r = a % b;
    EXPECT_EQ(dm.quotient.limb(0), static_cast<u64>(q));
    EXPECT_EQ(dm.quotient.limb(1), static_cast<u64>(q >> 64));
    EXPECT_EQ(dm.remainder.limb(0), static_cast<u64>(r));
    EXPECT_EQ(dm.remainder.limb(1), static_cast<u64>(r >> 64));
  }
}

TEST(BigUInt, DivModReconstructsDividend) {
  Xoshiro256ss rng(6);
  for (int i = 0; i < 300; ++i) {
    U256 a, b;
    const int b_limbs = 1 + static_cast<int>(rng.below(4));
    for (int l = 0; l < 4; ++l) a.set_limb(l, rng.next());
    for (int l = 0; l < b_limbs; ++l) b.set_limb(l, rng.next());
    if (b.is_zero()) b = U256(1);
    const auto dm = divmod(a, b);
    EXPECT_LT(dm.remainder, b);
    // a == q*b + r (mod 2^256; the product cannot overflow since q*b <= a).
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  }
}

TEST(BigUInt, DivModByOneAndSelf) {
  U256 a = U256::from_hex("123456789abcdef0123456789abcdef0");
  auto by_one = divmod(a, U256(1));
  EXPECT_EQ(by_one.quotient, a);
  EXPECT_TRUE(by_one.remainder.is_zero());
  auto by_self = divmod(a, a);
  EXPECT_EQ(by_self.quotient, U256(1));
  EXPECT_TRUE(by_self.remainder.is_zero());
}

TEST(BigUInt, DivModSmallByLarge) {
  const auto dm = divmod(U256(5), U256::from_hex("ffffffffffffffffff"));
  EXPECT_TRUE(dm.quotient.is_zero());
  EXPECT_EQ(dm.remainder, U256(5));
}

TEST(BigUInt, DivByZeroThrows) {
  EXPECT_THROW(divmod(U256(5), U256::zero()), CheckError);
}

TEST(BigUInt, KnuthD6AddBackCase) {
  // A crafted case that exercises the rare "add back" branch of Algorithm D:
  // dividend = 2^192 - 1, divisor = 2^128 - 2^64 (qhat over-estimates).
  U256 a;
  a.set_limb(0, ~u64{0});
  a.set_limb(1, ~u64{0});
  a.set_limb(2, ~u64{0});
  U256 b;
  b.set_limb(1, ~u64{0});  // 2^128 - 2^64
  const auto dm = divmod(a, b);
  EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  EXPECT_LT(dm.remainder, b);
}

TEST(BigUInt, ResizedPreservesLowLimbs) {
  U256 v;
  v.set_limb(0, 11);
  v.set_limb(3, 22);
  const auto wide = v.resized<8>();
  EXPECT_EQ(wide.limb(0), 11u);
  EXPECT_EQ(wide.limb(3), 22u);
  EXPECT_EQ(wide.limb(7), 0u);
  const auto narrow = v.resized<2>();
  EXPECT_EQ(narrow.limb(0), 11u);  // truncates the high limbs
}

}  // namespace
}  // namespace dmw::num
