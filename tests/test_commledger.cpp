// Communication-ledger conformance: the per-(phase, round, kind, sender)
// ledger a traced run exports (net/network.hpp) must equal the closed-form
// honest-run expectations of exp/commexpect.hpp exactly — the executable
// statement of Theorem 11's cost bookkeeping — and must be bit-identical
// across thread counts and schedule disciplines.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dmw/parallel.hpp"
#include "dmw/protocol.hpp"
#include "exp/commexpect.hpp"
#include "mech/minwork.hpp"
#include "support/trace.hpp"

namespace dmw::exp {
namespace {

using num::Group64;

const Group64& grp() { return Group64::test_group(); }

/// Every test starts and ends with the process-wide tracer disabled and
/// zeroed (the test_trace.cpp discipline), so the ledger state of one test
/// cannot leak into the next.
class CommLedger : public ::testing::Test {
 protected:
  void SetUp() override { restore(); }
  void TearDown() override { restore(); }

  static void restore() {
    auto& tracer = trace::Tracer::instance();
    tracer.set_enabled(false);
    tracer.set_clock_mode(trace::ClockMode::kReal);
    tracer.reset();
  }
};

/// Row-by-row equality with a readable failure message.
void expect_rows_equal(const std::vector<net::CommRow>& measured,
                       const std::vector<net::CommRow>& expected) {
  ASSERT_EQ(measured.size(), expected.size());
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const auto& got = measured[i];
    const auto& want = expected[i];
    SCOPED_TRACE("row " + std::to_string(i) + ": phase=" + want.phase_label +
                 " kind=" + want.kind_name +
                 " sender=" + std::to_string(want.key.sender));
    EXPECT_TRUE(got.key == want.key);
    EXPECT_EQ(got.phase_label, want.phase_label);
    EXPECT_EQ(got.kind_name, want.kind_name);
    EXPECT_EQ(got.counts.messages, want.counts.messages);
    EXPECT_EQ(got.counts.wire_bytes, want.counts.wire_bytes);
    EXPECT_EQ(got.counts.p2p_messages, want.counts.p2p_messages);
    EXPECT_EQ(got.counts.p2p_bytes, want.counts.p2p_bytes);
  }
}

proto::Outcome run_traced(const proto::PublicParams<Group64>& params,
                          const mech::SchedulingInstance& instance,
                          const proto::RunConfig& config) {
  trace::Tracer::instance().set_enabled(true);
  const auto outcome = proto::run_honest_dmw(params, instance, config);
  trace::Tracer::instance().set_enabled(false);
  return outcome;
}

TEST_F(CommLedger, HonestRunMatchesClosedFormExactly) {
  const auto params = proto::PublicParams<Group64>::make(grp(), 6, 3, 1, 91);
  Xoshiro256ss rng(92);
  const auto instance =
      mech::make_uniform_instance(6, 3, params.bid_set(), rng);
  proto::RunConfig config;
  config.encrypt_channels = false;

  const auto outcome = run_traced(params, instance, config);
  ASSERT_FALSE(outcome.aborted);

  const auto spec = comm_spec_for(params, outcome, config);
  expect_rows_equal(outcome.comm, expected_honest_comm(spec));
}

TEST_F(CommLedger, EncryptedRunAddsKeyExchangeAndAeadOverhead) {
  const auto params = proto::PublicParams<Group64>::make(grp(), 6, 3, 1, 91);
  Xoshiro256ss rng(92);
  const auto instance =
      mech::make_uniform_instance(6, 3, params.bid_set(), rng);
  proto::RunConfig config;
  config.encrypt_channels = true;

  const auto outcome = run_traced(params, instance, config);
  ASSERT_FALSE(outcome.aborted);

  const auto spec = comm_spec_for(params, outcome, config);
  const auto expected = expected_honest_comm(spec);
  expect_rows_equal(outcome.comm, expected);

  // The encrypted ledger differs from the plaintext closed form in exactly
  // two places: n key-exchange postings appear, and every share envelope
  // grows by the nonce + AEAD tag.
  const auto totals = comm_totals_by_kind(expected);
  EXPECT_EQ(totals.at("key_exchange").messages, params.n());
  CommSpec plain = spec;
  plain.encrypt_channels = false;
  EXPECT_EQ(expected_wire_size(spec, proto::MsgKind::kShares),
            expected_wire_size(plain, proto::MsgKind::kShares) + 4 + 16);
}

TEST_F(CommLedger, CrashTolerantQuorumPadsDisclosures) {
  const auto params =
      proto::PublicParams<Group64>::make_crash_tolerant(grp(), 8, 2, 2, 93);
  Xoshiro256ss rng(94);
  const auto instance =
      mech::make_uniform_instance(8, 2, params.bid_set(), rng);
  proto::RunConfig config;
  config.encrypt_channels = false;

  const auto outcome = run_traced(params, instance, config);
  ASSERT_FALSE(outcome.aborted);

  const auto spec = comm_spec_for(params, outcome, config);
  ASSERT_TRUE(spec.crash_tolerant);
  expect_rows_equal(outcome.comm, expected_honest_comm(spec));

  // c extra prescribed disclosers per task versus the fault-free quorum.
  for (std::size_t j = 0; j < spec.m; ++j)
    EXPECT_EQ(expected_disclosers(spec, j),
              static_cast<std::size_t>(spec.first_prices[j]) + 1 + spec.c);
}

TEST_F(CommLedger, LedgerTotalsMatchTrafficStats) {
  const auto params = proto::PublicParams<Group64>::make(grp(), 8, 4, 2, 95);
  Xoshiro256ss rng(96);
  const auto instance =
      mech::make_uniform_instance(8, 4, params.bid_set(), rng);

  const auto outcome = run_traced(params, instance, proto::RunConfig{});
  ASSERT_FALSE(outcome.aborted);

  // The ledger and TrafficStats bill the same wire sizes at the same call
  // sites, so their totals must agree field for field.
  const auto total = comm_grand_total(outcome.comm);
  const auto& traffic = outcome.traffic;
  EXPECT_EQ(total.messages,
            traffic.unicast_messages + traffic.broadcast_messages);
  EXPECT_EQ(total.wire_bytes,
            traffic.unicast_bytes + traffic.broadcast_bytes);
  EXPECT_EQ(total.p2p_messages, traffic.p2p_equivalent_messages);
  EXPECT_EQ(total.p2p_bytes, traffic.p2p_equivalent_bytes);
}

TEST_F(CommLedger, LedgerBitIdenticalAcrossThreadsAndSchedules) {
  auto params = proto::PublicParams<Group64>::make(grp(), 8, 3, 2, 77);
  Xoshiro256ss rng(78);
  const auto instance =
      mech::make_uniform_instance(8, 3, params.bid_set(), rng);

  // Sequential reference, already pinned to the closed form above.
  proto::RunConfig config;
  const auto reference = run_traced(params, instance, config);
  ASSERT_FALSE(reference.aborted);
  const auto spec = comm_spec_for(params, reference, config);
  expect_rows_equal(reference.comm, expected_honest_comm(spec));

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const bool deterministic : {false, true}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " deterministic=" + std::to_string(deterministic));
      trace::Tracer::instance().reset();
      trace::Tracer::instance().set_enabled(true);
      proto::RunConfig parallel_config;
      parallel_config.deterministic_schedule = deterministic;
      const auto outcome =
          proto::run_parallel_dmw(params, instance, threads, parallel_config);
      trace::Tracer::instance().set_enabled(false);
      ASSERT_FALSE(outcome.aborted);
      expect_rows_equal(outcome.comm, reference.comm);
    }
  }
}

TEST_F(CommLedger, UntracedRunLeavesLedgerEmpty) {
  const auto params = proto::PublicParams<Group64>::make(grp(), 6, 2, 1, 97);
  Xoshiro256ss rng(98);
  const auto instance =
      mech::make_uniform_instance(6, 2, params.bid_set(), rng);

  // No tracer: the hot path takes the single predicted branch and records
  // nothing, so the exported ledger must stay empty (the overhead contract).
  const auto outcome = proto::run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted);
  EXPECT_TRUE(outcome.comm.empty());
  EXPECT_GT(outcome.traffic.p2p_equivalent_messages, 0u);
}

}  // namespace
}  // namespace dmw::exp
