// Scheduling instances, bid sets and workload generators.
#include <gtest/gtest.h>

#include "mech/problem.hpp"

namespace dmw::mech {
namespace {

TEST(BidSet, IotaShape) {
  const BidSet w = BidSet::iota(5);
  EXPECT_EQ(w.size(), 5u);
  EXPECT_EQ(w.min(), 1u);
  EXPECT_EQ(w.max(), 5u);
  for (Cost v = 1; v <= 5; ++v) EXPECT_TRUE(w.contains(v));
  EXPECT_FALSE(w.contains(0));
  EXPECT_FALSE(w.contains(6));
}

TEST(BidSet, CustomValues) {
  const BidSet w({2, 5, 9});
  EXPECT_EQ(w.index_of(5), 1u);
  EXPECT_EQ(w.round_up(3), 5u);
  EXPECT_EQ(w.round_up(2), 2u);
  EXPECT_EQ(w.round_up(100), 9u);
  EXPECT_THROW(w.index_of(3), CheckError);
}

TEST(BidSet, RejectsInvalid) {
  EXPECT_THROW(BidSet({}), CheckError);
  EXPECT_THROW(BidSet({0, 1}), CheckError);          // zero bid
  EXPECT_THROW(BidSet({3, 3}), CheckError);          // not increasing
  EXPECT_THROW(BidSet({5, 2}), CheckError);          // decreasing
  EXPECT_THROW(BidSet::iota(0), CheckError);
}

TEST(Instance, ValidateCatchesShapeErrors) {
  SchedulingInstance bad;
  bad.n = 2;
  bad.m = 2;
  bad.cost = {{1, 2}};  // one row missing
  EXPECT_THROW(bad.validate(), CheckError);
  bad.cost = {{1, 2}, {3, 0}};  // zero cost
  EXPECT_THROW(bad.validate(), CheckError);
  bad.cost = {{1, 2}, {3, 4}};
  EXPECT_NO_THROW(bad.validate());
}

TEST(Instance, AtIsBoundsChecked) {
  SchedulingInstance instance{2, 1, {{3}, {4}}};
  EXPECT_EQ(instance.at(1, 0), 4u);
  EXPECT_THROW(instance.at(2, 0), CheckError);
  EXPECT_THROW(instance.at(0, 1), CheckError);
}

TEST(Instance, DescribeContainsAllCosts) {
  SchedulingInstance instance{2, 2, {{1, 2}, {3, 4}}};
  const std::string text = instance.describe();
  EXPECT_NE(text.find("n=2"), std::string::npos);
  EXPECT_NE(text.find("A2: 3 4"), std::string::npos);
}

TEST(Generators, UniformDrawsFromBidSet) {
  Xoshiro256ss rng(70);
  const BidSet w = BidSet::iota(4);
  const auto instance = make_uniform_instance(6, 5, w, rng);
  EXPECT_EQ(instance.n, 6u);
  EXPECT_EQ(instance.m, 5u);
  for (const auto& row : instance.cost)
    for (Cost c : row) EXPECT_TRUE(w.contains(c));
}

TEST(Generators, UniformCoversWholeBidSet) {
  Xoshiro256ss rng(71);
  const BidSet w = BidSet::iota(3);
  std::vector<bool> seen(4, false);
  const auto instance = make_uniform_instance(8, 8, w, rng);
  for (const auto& row : instance.cost)
    for (Cost c : row) seen[c] = true;
  EXPECT_TRUE(seen[1] && seen[2] && seen[3]);
}

TEST(Generators, MachineCorrelatedStaysInBidSet) {
  Xoshiro256ss rng(72);
  const BidSet w = BidSet::iota(6);
  const auto instance = make_machine_correlated_instance(9, 7, w, rng);
  for (const auto& row : instance.cost)
    for (Cost c : row) EXPECT_TRUE(w.contains(c));
}

TEST(Generators, TaskCorrelatedJitterIsBounded) {
  Xoshiro256ss rng(73);
  const BidSet w = BidSet::iota(8);
  const auto instance = make_task_correlated_instance(10, 6, w, rng);
  for (std::size_t j = 0; j < instance.m; ++j) {
    Cost lo = instance.cost[0][j], hi = lo;
    for (std::size_t i = 1; i < instance.n; ++i) {
      lo = std::min(lo, instance.cost[i][j]);
      hi = std::max(hi, instance.cost[i][j]);
    }
    // +-1 index jitter around a common base -> spread of at most 2 indices.
    EXPECT_LE(w.index_of(hi) - w.index_of(lo), 2u);
  }
}

TEST(Generators, WorstCaseFavorsAgentZeroEverywhere) {
  const BidSet w = BidSet::iota(4);
  const auto instance = make_minwork_worst_case(5, 6, w);
  for (std::size_t j = 0; j < instance.m; ++j) {
    for (std::size_t i = 1; i < instance.n; ++i)
      EXPECT_GT(instance.cost[i][j], instance.cost[0][j]);
  }
}

TEST(Generators, ZipfFavorsLightTasks) {
  Xoshiro256ss rng(75);
  const BidSet w = BidSet::iota(6);
  const auto instance = make_zipf_instance(6, 400, w, rng);
  instance.validate();
  // Count tasks whose (row-0) size class is in the lightest third vs the
  // heaviest third: the Zipf skew must be visible.
  std::size_t light = 0, heavy = 0;
  for (std::size_t j = 0; j < instance.m; ++j) {
    if (instance.cost[0][j] <= 2) ++light;
    if (instance.cost[0][j] >= 5) ++heavy;
  }
  EXPECT_GT(light, 2 * heavy);
}

TEST(Generators, ZipfStaysInBidSet) {
  Xoshiro256ss rng(76);
  const BidSet w({2, 3, 5, 8});
  const auto instance = make_zipf_instance(4, 30, w, rng);
  for (const auto& row : instance.cost)
    for (Cost c : row) EXPECT_TRUE(w.contains(c));
}

TEST(Generators, BimodalSeparatesModes) {
  Xoshiro256ss rng(77);
  const BidSet w = BidSet::iota(9);
  const auto instance = make_bimodal_instance(5, 300, w, 0.3, rng);
  instance.validate();
  std::size_t heavy = 0, light = 0, middle = 0;
  for (std::size_t j = 0; j < instance.m; ++j) {
    const Cost c = instance.cost[0][j];
    if (c >= 7) ++heavy;
    else if (c <= 3) ++light;
    else ++middle;
  }
  EXPECT_EQ(middle, 0u);          // nothing lands between the modes
  EXPECT_GT(light, heavy);        // 70/30 split
  EXPECT_GT(heavy, instance.m / 6);
}

TEST(Generators, BimodalFractionBounds) {
  Xoshiro256ss rng(78);
  const BidSet w = BidSet::iota(4);
  EXPECT_NO_THROW(make_bimodal_instance(3, 5, w, 0.0, rng));
  EXPECT_NO_THROW(make_bimodal_instance(3, 5, w, 1.0, rng));
  EXPECT_THROW(make_bimodal_instance(3, 5, w, 1.5, rng), CheckError);
}

TEST(Generators, TruthfulBidsEqualCosts) {
  Xoshiro256ss rng(74);
  const auto instance = make_uniform_instance(4, 3, BidSet::iota(3), rng);
  EXPECT_EQ(truthful_bids(instance), instance.cost);
}

}  // namespace
}  // namespace dmw::mech
