// The secret-hygiene layer: zeroize-on-destruction really clears the
// backing bytes, ct_eq is correct, and reveal() round-trips.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <new>
#include <vector>

#include "crypto/aead.hpp"
#include "crypto/chacha.hpp"
#include "dmw/polycommit.hpp"
#include "numeric/group.hpp"
#include "poly/polynomial.hpp"
#include "support/secret.hpp"

namespace dmw {
namespace {

using num::Group64;

TEST(SecureWipe, ClearsEveryByte) {
  std::array<std::uint8_t, 64> buffer;
  buffer.fill(0xAB);
  secure_wipe(buffer.data(), buffer.size());
  for (auto b : buffer) EXPECT_EQ(b, 0);
}

TEST(Zeroize, TriviallyCopyableValue) {
  std::uint64_t value = 0xDEADBEEFCAFEF00Dull;
  zeroize(value);
  EXPECT_EQ(value, 0u);
}

TEST(Zeroize, VectorWipesElementsAndEmpties) {
  std::vector<std::uint64_t> values = {1, 2, 3};
  zeroize(values);
  EXPECT_TRUE(values.empty());
}

TEST(Zeroize, ArrayWipesInPlace) {
  std::array<std::uint32_t, 4> values = {9, 9, 9, 9};
  zeroize(values);
  for (auto v : values) EXPECT_EQ(v, 0u);
}

// The core claim of the hygiene layer: after a Secret<T> is destroyed, the
// storage it occupied holds zeros. Placement-new gives us a stable address
// to inspect after the destructor runs.
TEST(Secret, DestructionClearsBackingBytes) {
  using Payload = std::array<std::uint64_t, 4>;
  alignas(Secret<Payload>) unsigned char storage[sizeof(Secret<Payload>)];
  std::memset(storage, 0x5A, sizeof(storage));

  auto* secret = new (storage)
      Secret<Payload>(Payload{0x1111, 0x2222, 0x3333, 0x4444});
  ASSERT_EQ(secret->reveal()[0], 0x1111u);
  secret->~Secret<Payload>();

  for (unsigned char byte : storage) EXPECT_EQ(byte, 0);
}

TEST(Secret, MoveWipesTheSource) {
  using Payload = std::array<std::uint64_t, 2>;
  Secret<Payload> source(Payload{7, 8});
  Secret<Payload> sink(std::move(source));
  EXPECT_EQ(sink.reveal()[0], 7u);
  EXPECT_EQ(source.reveal()[0], 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(source.reveal()[1], 0u);
}

TEST(Secret, RevealRoundTrip) {
  Secret<std::uint64_t> secret(42);
  EXPECT_EQ(secret.reveal(), 42u);
  secret.reveal_mut() = 43;
  EXPECT_EQ(secret.reveal(), 43u);
}

TEST(Secret, PolynomialWipeSecretClearsCoefficients) {
  poly::Polynomial<Group64> f({1, 2, 3});
  zeroize(f);
  EXPECT_TRUE(f.coeffs().empty());
}

TEST(Secret, BidPolynomialsWipeClearsEverything) {
  const auto params =
      proto::PublicParams<Group64>::make(Group64::test_group(), 8, 1, 2, 7);
  auto rng = crypto::ChaChaRng::from_seed(7);
  auto bundle = proto::BidPolynomials<Group64>::sample(params, 2, rng);
  EXPECT_FALSE(bundle.g.coeffs().empty());
  zeroize(bundle);
  EXPECT_TRUE(bundle.e.coeffs().empty());
  EXPECT_TRUE(bundle.f.coeffs().empty());
  EXPECT_TRUE(bundle.g.coeffs().empty());
  EXPECT_TRUE(bundle.h.coeffs().empty());
  EXPECT_EQ(bundle.bid, 0u);
  EXPECT_EQ(bundle.tau, 0u);
}

TEST(CtEq, SpanSemantics) {
  const std::vector<std::uint8_t> a = {1, 2, 3, 4};
  const std::vector<std::uint8_t> b = {1, 2, 3, 4};
  const std::vector<std::uint8_t> c = {1, 2, 3, 5};
  const std::vector<std::uint8_t> d = {1, 2, 3};
  EXPECT_TRUE(ct_eq(std::span<const std::uint8_t>(a),
                    std::span<const std::uint8_t>(b)));
  EXPECT_FALSE(ct_eq(std::span<const std::uint8_t>(a),
                     std::span<const std::uint8_t>(c)));
  EXPECT_FALSE(ct_eq(std::span<const std::uint8_t>(a),
                     std::span<const std::uint8_t>(d)));
  EXPECT_TRUE(ct_eq(std::span<const std::uint8_t>(d.data(), 0),
                    std::span<const std::uint8_t>(a.data(), 0)));
}

TEST(CtEq, DiffersInEveryBytePosition) {
  std::array<std::uint8_t, 16> a{}, b{};
  for (std::size_t i = 0; i < a.size(); ++i) {
    b = a;
    b[i] ^= 0x01;
    EXPECT_FALSE(ct_eq(a, b)) << i;
  }
  EXPECT_TRUE(ct_eq(a, a));
}

TEST(CtEq, TriviallyCopyableOverload) {
  const std::uint64_t a = 0x0123456789ABCDEFull;
  const std::uint64_t b = 0x0123456789ABCDEFull;
  const std::uint64_t c = a ^ 1;
  EXPECT_TRUE(ct_eq(a, b));
  EXPECT_FALSE(ct_eq(a, c));
}

TEST(CtEq, SecretOverload) {
  using Key = std::array<std::uint8_t, 32>;
  Key raw;
  raw.fill(0x11);
  const Secret<Key> a{raw};
  const Secret<Key> b{raw};
  raw[31] = 0x12;
  const Secret<Key> c{raw};
  EXPECT_TRUE(ct_eq(a, b));
  EXPECT_FALSE(ct_eq(a, c));
}

TEST(AeadKey, MakeFromBytesAndCompare) {
  std::vector<std::uint8_t> bytes(crypto::kAeadKeyBytes, 0x42);
  const auto key = crypto::make_aead_key(bytes);
  EXPECT_EQ(key.reveal()[0], 0x42);
  std::vector<std::uint8_t> other(crypto::kAeadKeyBytes, 0x42);
  EXPECT_TRUE(ct_eq(key, crypto::make_aead_key(other)));
  other[0] = 0x43;
  EXPECT_FALSE(ct_eq(key, crypto::make_aead_key(other)));
}

}  // namespace
}  // namespace dmw
