// dmwlint engine tests: each rule fires on its fixture, the allowlist
// comment suppresses, and the parsing layer blanks what it should.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using dmwlint::Finding;
using dmwlint::lint_file;

std::size_t count_rule(const std::vector<Finding>& findings,
                       std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(DmwLint, RuleNamesAreStable) {
  const auto& names = dmwlint::rule_names();
  ASSERT_EQ(names.size(), 12u);
  EXPECT_NE(std::find(names.begin(), names.end(), "raw-send"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "guarded-member"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "thread-id-sink"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "bad-allow"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "loop-inverse"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "naive-call"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "secret-sink"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "ct-branch"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "banned-pattern"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "raw-thread"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "include-hygiene"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "raw-clock"), names.end());
}

TEST(DmwLint, NaiveCallFiresOnCallsNotDeclarations) {
  const std::string text =
      "Elem pow_naive(Elem b, Scalar e);\n"
      "Elem fast(const G& g, Elem b, Scalar e) {\n"
      "  return g.pow_naive(b, e);\n"
      "}\n";
  const auto findings = lint_file("src/numeric/x.cpp", text);
  EXPECT_EQ(count_rule(findings, "naive-call"), 1u);
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(DmwLint, NaiveCallSkippedInTestsAndBench) {
  const std::string text = "auto r = g.pow_naive(b, e);\n";
  EXPECT_EQ(count_rule(lint_file("tests/x.cpp", text), "naive-call"), 0u);
  EXPECT_EQ(count_rule(lint_file("bench/x.cpp", text), "naive-call"), 0u);
  EXPECT_EQ(count_rule(lint_file("src/a/x.cpp", text), "naive-call"), 1u);
}

TEST(DmwLint, NaiveCallAllowlistSuppresses) {
  const std::string with_inline_allow =
      "auto r = g.pow_naive(b, e);  // dmwlint:allow(naive-call) oracle\n";
  EXPECT_EQ(
      count_rule(lint_file("src/a.cpp", with_inline_allow), "naive-call"),
      0u);
  const std::string with_preceding_allow =
      "// dmwlint:allow(naive-call) ablation block\n"
      "auto r = g.pow_naive(b, e);\n";
  EXPECT_EQ(
      count_rule(lint_file("src/a.cpp", with_preceding_allow), "naive-call"),
      0u);
  // An allow for a different rule does not suppress.
  const std::string wrong_allow =
      "auto r = g.pow_naive(b, e);  // dmwlint:allow(ct-branch)\n";
  EXPECT_EQ(count_rule(lint_file("src/a.cpp", wrong_allow), "naive-call"),
            1u);
}

TEST(DmwLint, SecretSinkRequiresReveal) {
  const std::string leaking =
      "void f(const Secret<int>& token) {\n"
      "  DMW_INFO() << token;\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_file("src/a.cpp", leaking), "secret-sink"), 1u);
  const std::string revealed =
      "void f(const Secret<int>& token) {\n"
      "  DMW_INFO() << token.reveal();\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_file("src/a.cpp", revealed), "secret-sink"), 0u);
}

TEST(DmwLint, SecretSinkSeesMultiLineStatements) {
  const std::string text =
      "void f(const crypto::AeadKey& key) {\n"
      "  std::printf(\"%u\",\n"
      "              key[0]);\n"
      "}\n";
  const auto findings = lint_file("src/a.cpp", text);
  ASSERT_EQ(count_rule(findings, "secret-sink"), 1u);
  EXPECT_EQ(findings[0].line, 2u);  // reported at the sink statement start
}

TEST(DmwLint, SecretMentionInStringIsNotASink) {
  const std::string text =
      "void f(const Secret<int>& token) {\n"
      "  DMW_INFO() << \"token not printed\";\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_file("src/a.cpp", text), "secret-sink"), 0u);
}

TEST(DmwLint, CtBranchOnlyInsideRegions) {
  const std::string text =
      "int a(int x) { return x ? 1 : 2; }\n"
      "// dmwlint: constant-time\n"
      "int b(int x) { return x ? 1 : 2; }\n"
      "// dmwlint: end-constant-time\n"
      "int c(int x) { return x ? 1 : 2; }\n";
  const auto findings = lint_file("src/a.cpp", text);
  ASSERT_EQ(count_rule(findings, "ct-branch"), 1u);
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(DmwLint, CtBranchProseMentionDoesNotOpenRegion) {
  const std::string text =
      "// regions tagged `// dmwlint: constant-time` get checked\n"
      "int a(int x) { return x ? 1 : 2; }\n";
  EXPECT_EQ(count_rule(lint_file("src/a.cpp", text), "ct-branch"), 0u);
}

TEST(DmwLint, BannedPatternsByScope) {
  // Unordered containers: only protocol-visible directories.
  const std::string unordered = "std::unordered_map<int, int> t;\n";
  EXPECT_EQ(
      count_rule(lint_file("src/dmw/a.cpp", unordered), "banned-pattern"),
      1u);
  EXPECT_EQ(
      count_rule(lint_file("src/mech/a.cpp", unordered), "banned-pattern"),
      0u);
  // Raw stderr: src/ and tools/, not tests/.
  const std::string stderr_diag = "std::cerr << \"x\";\n";
  EXPECT_EQ(
      count_rule(lint_file("tools/a.cpp", stderr_diag), "banned-pattern"),
      1u);
  EXPECT_EQ(
      count_rule(lint_file("tests/a.cpp", stderr_diag), "banned-pattern"),
      0u);
  // assert/rand fire everywhere; lookalike identifiers do not.
  EXPECT_EQ(count_rule(lint_file("tests/a.cpp", "assert(x);\n"),
                       "banned-pattern"),
            1u);
  EXPECT_EQ(count_rule(lint_file("tests/a.cpp", "static_assert(x);\n"),
                       "banned-pattern"),
            0u);
  EXPECT_EQ(count_rule(lint_file("src/a.cpp", "int y = operand(x);\n"),
                       "banned-pattern"),
            0u);
}

TEST(DmwLint, RawThreadScopedToProtocolDirs) {
  const std::string text = "std::thread t([] {});\n";
  EXPECT_EQ(count_rule(lint_file("src/dmw/a.cpp", text), "raw-thread"), 1u);
  EXPECT_EQ(count_rule(lint_file("src/exp/a.cpp", text), "raw-thread"), 1u);
  // The sanctioned home of the primitives, and everything else, is exempt.
  EXPECT_EQ(
      count_rule(lint_file("src/support/thread_pool.hpp", text), "raw-thread"),
      0u);
  EXPECT_EQ(count_rule(lint_file("src/net/a.cpp", text), "raw-thread"), 0u);
  EXPECT_EQ(count_rule(lint_file("tests/a.cpp", text), "raw-thread"), 0u);
}

TEST(DmwLint, RawThreadCatchesPrimitivesAndDetach) {
  EXPECT_EQ(count_rule(lint_file("src/dmw/a.cpp", "std::mutex m;\n"),
                       "raw-thread"),
            1u);
  EXPECT_EQ(count_rule(lint_file("src/dmw/a.cpp",
                                 "std::condition_variable cv;\n"),
                       "raw-thread"),
            1u);
  EXPECT_EQ(count_rule(lint_file("src/dmw/a.cpp", "worker.detach();\n"),
                       "raw-thread"),
            1u);
  EXPECT_EQ(count_rule(lint_file("src/dmw/a.cpp",
                                 "auto f = std::async([] {});\n"),
                       "raw-thread"),
            1u);
  // Lookalikes and the ThreadPool wrapper do not fire.
  EXPECT_EQ(count_rule(lint_file("src/dmw/a.cpp",
                                 "ThreadPool pool(4);\n"
                                 "int thread_count = 0;\n"),
                       "raw-thread"),
            0u);
  // The allowlist escape works as for every rule.
  EXPECT_EQ(count_rule(lint_file("src/dmw/a.cpp",
                                 "// dmwlint:allow(raw-thread) shim\n"
                                 "std::thread t([] {});\n"),
                       "raw-thread"),
            0u);
}

TEST(DmwLint, LoopInverseScopedToDmwAndPoly) {
  const std::string text =
      "void f(const G& g, std::vector<S>& v) {\n"
      "  for (auto& d : v) {\n"
      "    d = g.sinv(d);\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_file("src/dmw/a.hpp", text), "loop-inverse"), 1u);
  EXPECT_EQ(count_rule(lint_file("src/poly/a.hpp", text), "loop-inverse"),
            1u);
  // Numeric kernels (batch_inverse itself lives there) and tests are exempt.
  EXPECT_EQ(count_rule(lint_file("src/numeric/a.hpp", text), "loop-inverse"),
            0u);
  EXPECT_EQ(count_rule(lint_file("tests/a.cpp", text), "loop-inverse"), 0u);
}

TEST(DmwLint, LoopInverseBodiesHeadersAndAllow) {
  // Braceless single-statement bodies count; while loops count.
  EXPECT_EQ(count_rule(lint_file("src/poly/a.hpp",
                                 "for (auto& d : v) d = g.sinv(d);\n"),
                       "loop-inverse"),
            1u);
  EXPECT_EQ(count_rule(lint_file("src/poly/a.hpp",
                                 "while (i < n) { x = mod_inv(x, q); ++i; }\n"),
                       "loop-inverse"),
            1u);
  // A call in the loop header runs once: no finding. Neither for straight-
  // line code, nor after the loop closes.
  EXPECT_EQ(count_rule(lint_file("src/poly/a.hpp",
                                 "for (auto s = g.sinv(d); s != o;) {\n"
                                 "  s = g.smul(s, d);\n"
                                 "}\n"
                                 "auto t = g.sinv(d);\n"),
                       "loop-inverse"),
            0u);
  // Nested braces inside the body still count as the body.
  EXPECT_EQ(count_rule(lint_file("src/poly/a.hpp",
                                 "for (std::size_t k = 0; k < n; ++k) {\n"
                                 "  if (live[k]) {\n"
                                 "    d[k] = g.sinv(d[k]);\n"
                                 "  }\n"
                                 "}\n"),
                       "loop-inverse"),
            1u);
  // Lookalike identifiers do not fire.
  EXPECT_EQ(count_rule(lint_file("src/poly/a.hpp",
                                 "for (auto& d : v) batch_inverse(g, d);\n"
                                 "for (auto& d : v) d = invariant(d);\n"),
                       "loop-inverse"),
            0u);
  // The allowlist escape works as for every rule.
  EXPECT_EQ(count_rule(lint_file("src/poly/a.hpp",
                                 "for (auto& d : v)\n"
                                 "  // dmwlint:allow(loop-inverse) oracle\n"
                                 "  d = g.sinv(d);\n"),
                       "loop-inverse"),
            0u);
}

TEST(DmwLint, RawClockFiresOutsideSanctionedClocks) {
  const std::string reads =
      "const auto t0 = steady_clock::now();\n"
      "clock_gettime(0, &ts);\n";
  EXPECT_EQ(count_rule(lint_file("src/exp/a.cpp", reads), "raw-clock"), 2u);
  EXPECT_EQ(count_rule(lint_file("tools/a.cpp", reads), "raw-clock"), 2u);
  // The two sanctioned clock homes are exempt.
  EXPECT_EQ(count_rule(lint_file("src/support/stopwatch.hpp", reads),
                       "raw-clock"),
            0u);
  EXPECT_EQ(count_rule(lint_file("src/support/trace.hpp", reads),
                       "raw-clock"),
            0u);
  EXPECT_EQ(count_rule(lint_file("src/support/trace.cpp", reads),
                       "raw-clock"),
            0u);
  // The <chrono> include itself is a finding outside those files.
  EXPECT_EQ(count_rule(lint_file("src/a.cpp", "#include <chrono>\n"),
                       "raw-clock"),
            1u);
  // Prose, strings and lookalikes ("Round-synchronous") do not fire.
  EXPECT_EQ(count_rule(lint_file("src/a.cpp",
                                 "// steady_clock in a comment\n"
                                 "const char* s = \"std::chrono\";\n"
                                 "// Round-synchronous message-passing\n"),
                       "raw-clock"),
            0u);
  // The allowlist escape works as for every rule.
  EXPECT_EQ(count_rule(lint_file("src/a.cpp",
                                 "// dmwlint:allow(raw-clock) os check\n"
                                 "clock_gettime(0, &ts);\n"),
                       "raw-clock"),
            0u);
}

TEST(DmwLint, IncludeHygiene) {
  const std::string header_without_guard = "int x;\n";
  EXPECT_EQ(count_rule(lint_file("src/a.hpp", header_without_guard),
                       "include-hygiene"),
            1u);
  const std::string header_with_guard = "#pragma once\nint x;\n";
  EXPECT_EQ(count_rule(lint_file("src/a.hpp", header_with_guard),
                       "include-hygiene"),
            0u);
  const std::string updir = "#include \"../numeric/group.hpp\"\n";
  EXPECT_EQ(count_rule(lint_file("src/a.cpp", updir), "include-hygiene"),
            1u);
  const std::string angled = "#include <dmw/protocol.hpp>\n";
  EXPECT_EQ(count_rule(lint_file("src/a.cpp", angled), "include-hygiene"),
            1u);
  const std::string iostream_in_src = "#include <iostream>\n";
  EXPECT_EQ(count_rule(lint_file("src/a.cpp", iostream_in_src),
                       "include-hygiene"),
            1u);
  EXPECT_EQ(count_rule(lint_file("tools/a.cpp", iostream_in_src),
                       "include-hygiene"),
            0u);
}

TEST(DmwLint, IntrinsicHeadersConfinedToSimdHome) {
  const std::string avx = "#include <immintrin.h>\n";
  const std::string neon = "#include <arm_neon.h>\n";
  const std::string sse = "#include <emmintrin.h>\n";
  // Anywhere but src/numeric/simd.hpp, intrinsics fire — other numeric
  // headers, protocol code, tools.
  EXPECT_EQ(count_rule(lint_file("src/numeric/mont.hpp",
                                 "#pragma once\n" + avx),
                       "include-hygiene"),
            1u);
  EXPECT_EQ(count_rule(lint_file("src/dmw/agent.hpp",
                                 "#pragma once\n" + neon),
                       "include-hygiene"),
            1u);
  EXPECT_EQ(count_rule(lint_file("tools/bench_json.cpp", sse),
                       "include-hygiene"),
            1u);
  // The sanctioned home is exempt.
  EXPECT_EQ(count_rule(lint_file("src/numeric/simd.hpp",
                                 "#pragma once\n" + avx + neon),
                       "include-hygiene"),
            0u);
  // An intrinsic header named in a comment must not fire (includes are
  // matched on preprocessor lines only).
  const std::string prose = "// uses <immintrin.h> via numeric/simd.hpp\n";
  EXPECT_EQ(count_rule(lint_file("src/numeric/montlane.hpp",
                                 "#pragma once\n" + prose),
                       "include-hygiene"),
            0u);
}

TEST(DmwLint, RawThreadLockBanCoversAllOfSrc) {
  const std::string locks =
      "std::mutex m;\n"
      "std::unique_lock<std::mutex> lock(m);\n";
  // The capability-blind lock vocabulary fires anywhere in src/ (here: a
  // non-protocol directory), steering to the annotated wrappers.
  EXPECT_EQ(count_rule(lint_file("src/net/a.cpp", locks), "raw-thread"), 3u);
  EXPECT_EQ(count_rule(lint_file("src/support/pool.hpp", locks),
                       "raw-thread"),
            3u);
  // The wrappers' own home is exempt; tools/ and tests/ are out of scope.
  EXPECT_EQ(count_rule(lint_file("src/support/annotations.hpp", locks),
                       "raw-thread"),
            0u);
  EXPECT_EQ(count_rule(lint_file("tools/a.cpp", locks), "raw-thread"), 0u);
  EXPECT_EQ(count_rule(lint_file("tests/a.cpp", locks), "raw-thread"), 0u);
  // The annotated wrappers themselves never fire.
  EXPECT_EQ(count_rule(lint_file("src/net/a.cpp",
                                 "Mutex m;\nMutexLock lock(m);\n"),
                       "raw-thread"),
            0u);
}

TEST(DmwLint, GuardedMemberRequiresAnnotationOrExemption) {
  const std::string text =
      "#pragma once\n"
      "class Box {\n"
      " public:\n"
      "  void put(int value);\n"
      "  std::size_t size() const;\n"
      "\n"
      " private:\n"
      "  Mutex mutex_;\n"
      "  std::deque<int> items_ DMW_GUARDED_BY(mutex_);\n"
      "  std::size_t capacity_;\n"
      "};\n";
  const auto findings = lint_file("src/net/box.hpp", text);
  ASSERT_EQ(count_rule(findings, "guarded-member"), 1u);
  for (const auto& finding : findings) {
    if (finding.rule != "guarded-member") continue;
    EXPECT_EQ(finding.line, 10u);
    EXPECT_NE(finding.message.find("capacity_"), std::string::npos);
  }
}

TEST(DmwLint, GuardedMemberExemptKindsAndScope) {
  // const, static/constexpr, std::atomic and the lock vocabulary never
  // need an annotation.
  const std::string exempt =
      "#pragma once\n"
      "class Box {\n"
      "  Mutex mutex_;\n"
      "  const std::size_t limit_ = 8;\n"
      "  static constexpr int kDefault = 4;\n"
      "  std::atomic<int> hits_ = 0;\n"
      "  CondVar ready_;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_file("src/net/box.hpp", exempt),
                       "guarded-member"),
            0u);
  // A class with no mutex member is out of scope entirely.
  const std::string no_mutex =
      "#pragma once\n"
      "struct Stats {\n"
      "  std::size_t count = 0;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_file("src/net/stats.hpp", no_mutex),
                       "guarded-member"),
            0u);
  // The allow escape states the discipline in place.
  const std::string allowed =
      "#pragma once\n"
      "class Box {\n"
      "  Mutex mutex_;\n"
      "  // dmwlint:allow(guarded-member) epoch-frozen between rounds\n"
      "  std::uint64_t round_ = 0;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_file("src/net/box.hpp", allowed),
                       "guarded-member"),
            0u);
}

TEST(DmwLint, ThreadIdSinkBansGetIdEverywhereInSrc) {
  const std::string get_id = "const auto id = std::this_thread::get_id();\n";
  EXPECT_EQ(count_rule(lint_file("src/support/pool.cpp", get_id),
                       "thread-id-sink"),
            1u);
  EXPECT_EQ(count_rule(lint_file("tools/a.cpp", get_id), "thread-id-sink"),
            1u);
  EXPECT_EQ(count_rule(lint_file("tests/a.cpp", get_id), "thread-id-sink"),
            0u);
}

TEST(DmwLint, ThreadIdSinkCatchesIdentityFlowingIntoSinks) {
  const std::string flow =
      "report.field(\"workers\", ThreadPool::current_worker_id());\n";
  EXPECT_EQ(count_rule(lint_file("src/dmw/a.cpp", flow), "thread-id-sink"),
            1u);
  // Multi-line statements are assembled from the sink line forward.
  const std::string multi_line =
      "transcript.absorb(\n"
      "    static_cast<unsigned>(ThreadPool::current_worker_id()));\n";
  const auto findings = lint_file("src/net/a.cpp", multi_line);
  ASSERT_EQ(count_rule(findings, "thread-id-sink"), 1u);
  EXPECT_EQ(findings[0].line, 1u);
  // src/support is out of scope for the flow check (trace exporters label
  // per-worker lanes by design).
  EXPECT_EQ(count_rule(lint_file("src/support/trace.cpp", flow),
                       "thread-id-sink"),
            0u);
  // Slot addressing — a worker id that never reaches an output — is fine.
  const std::string slots =
      "slots[static_cast<std::size_t>(ThreadPool::current_worker_id())] "
      "+= 1;\n";
  EXPECT_EQ(count_rule(lint_file("src/dmw/a.cpp", slots), "thread-id-sink"),
            0u);
}

TEST(DmwLint, RawSendFlagsLiteralKindTags) {
  // send(from, to, kind, payload): the third argument is the kind.
  EXPECT_EQ(count_rule(lint_file("src/exp/a.cpp",
                                 "net.send(0, 1, 7, payload);\n"),
                       "raw-send"),
            1u);
  // publish(from, kind, payload): the second argument is the kind.
  EXPECT_EQ(count_rule(lint_file("src/exp/a.cpp",
                                 "net.publish(2, 0x2a, payload);\n"),
                       "raw-send"),
            1u);
  // Named kinds (enum casts, named constants) and variables do not fire,
  // and literals in *other* argument positions are not kind tags.
  EXPECT_EQ(count_rule(
                lint_file("src/dmw/a.cpp",
                          "net.publish(0, static_cast<std::uint32_t>("
                          "MsgKind::kShares), msg.encode(g));\n"
                          "net.send(0, 1, kind, payload);\n"
                          "net.send(0, 1, kind_of(7), make_payload(16));\n"),
                "raw-send"),
            0u);
  // Multi-line calls are assembled; the finding anchors on the call line.
  const auto findings = lint_file("src/exp/a.cpp",
                                  "net.send(0, 1,\n"
                                  "         3u,\n"
                                  "         std::move(payload));\n");
  ASSERT_EQ(count_rule(findings, "raw-send"), 1u);
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(DmwLint, RawSendScopeAndAllow) {
  const std::string literal = "net.send(0, 1, 7, payload);\n";
  // tests/ drives arbitrary kinds through the raw transport on purpose.
  EXPECT_EQ(count_rule(lint_file("tests/a.cpp", literal), "raw-send"), 0u);
  // src/, tools/ and bench/ are all in scope.
  EXPECT_EQ(count_rule(lint_file("tools/a.cpp", literal), "raw-send"), 1u);
  EXPECT_EQ(count_rule(lint_file("bench/a.cpp", literal), "raw-send"), 1u);
  // The allowlist escape works as for every rule.
  EXPECT_EQ(count_rule(lint_file("src/exp/a.cpp",
                                 "// dmwlint:allow(raw-send) probe\n"
                                 "net.publish(0, 999, payload);\n"),
                       "raw-send"),
            0u);
}

TEST(DmwLint, BadAllowFlagsUnknownSlugs) {
  EXPECT_EQ(count_rule(lint_file("src/a.cpp",
                                 "// dmwlint:allow(raw-cloak) typo\n"
                                 "int x;\n"),
                       "bad-allow"),
            1u);
  EXPECT_EQ(count_rule(lint_file("src/a.cpp",
                                 "// dmwlint:allow(raw-clock) boot check\n"
                                 "clock_gettime(0, &ts);\n"),
                       "bad-allow"),
            0u);
  // Every slug in a multi-rule allow is validated independently.
  EXPECT_EQ(count_rule(lint_file("src/a.cpp",
                                 "// dmwlint:allow(raw-clock, secret-sync)\n"
                                 "int x;\n"),
                       "bad-allow"),
            1u);
  // Prose placeholders are not slug-shaped and are ignored.
  EXPECT_EQ(count_rule(lint_file("src/a.cpp",
                                 "// write dmwlint:allow(<rule>) in docs\n"
                                 "int x;\n"),
                       "bad-allow"),
            0u);
}

TEST(DmwLint, AllowWorksAcrossBlankLinesAndNamesManyRules) {
  // Blank lines between the allow comment and the code are fine.
  const std::string spaced =
      "// dmwlint:allow(raw-clock) os boot check\n"
      "\n"
      "\n"
      "clock_gettime(0, &ts);\n";
  EXPECT_EQ(count_rule(lint_file("src/a.cpp", spaced), "raw-clock"), 0u);
  // A code line between the allow and the finding breaks the walk.
  const std::string blocked =
      "// dmwlint:allow(raw-clock) too far away\n"
      "int x;\n"
      "clock_gettime(0, &ts);\n";
  EXPECT_EQ(count_rule(lint_file("src/a.cpp", blocked), "raw-clock"), 1u);
  // One allow can cover a line that trips several rules.
  const std::string multi =
      "// dmwlint:allow(raw-clock, raw-thread) timing shim\n"
      "std::unique_lock<std::mutex> hold(m, std::chrono::seconds{1});\n";
  EXPECT_EQ(count_rule(lint_file("src/net/a.cpp", multi), "raw-clock"), 0u);
  EXPECT_EQ(count_rule(lint_file("src/net/a.cpp", multi), "raw-thread"), 0u);
}

TEST(DmwLint, RawStringsAndCommentsAreBlanked) {
  const std::string text =
      "const char* s = R\"(rand() assert(x) std::cerr)\";\n"
      "// rand() in a comment\n"
      "/* assert(x) in a block comment */\n";
  EXPECT_TRUE(lint_file("src/a.cpp", text).empty());
}

TEST(DmwLint, ExpectationsParse) {
  const std::string text =
      "int x;  // EXPECT: naive-call\n"
      "int y;\n"
      "int z;  // EXPECT: include-hygiene\n";
  const auto expectations = dmwlint::parse_expectations(text);
  ASSERT_EQ(expectations.size(), 2u);
  EXPECT_EQ(expectations[0].line, 1u);
  EXPECT_EQ(expectations[0].rule, "naive-call");
  EXPECT_EQ(expectations[1].line, 3u);
  EXPECT_EQ(expectations[1].rule, "include-hygiene");
}

// The shipped fixtures, via the library API (the CLI self-test covers the
// same ground end-to-end; this pins the library behavior).
TEST(DmwLint, ShippedFixturesMatchExpectations) {
  const std::vector<std::string> fixtures = {
      "naive_call.cpp",     "secret_sink.cpp",     "ct_branch.cpp",
      "banned_pattern.cpp", "raw_thread.cpp",      "include_hygiene.hpp",
      "raw_clock.cpp",      "loop_inverse.cpp",    "guarded_member.cpp",
      "thread_id_sink.cpp", "bad_allow.cpp",       "suppression.cpp",
      "raw_send.cpp",       "clean.cpp"};
  for (const auto& name : fixtures) {
    const std::string path = std::string(DMWLINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    // Honor the fixture's pretend path, as the CLI self-test does.
    std::string lint_as = path;
    const std::string tag = "dmwlint-fixture-path:";
    if (const auto pos = text.find(tag); pos != std::string::npos) {
      std::istringstream rest(text.substr(pos + tag.size()));
      rest >> lint_as;
    }
    const auto findings = dmwlint::lint_file(lint_as, text);
    const auto expectations = dmwlint::parse_expectations(text);
    EXPECT_EQ(findings.size(), expectations.size()) << name;
    for (const auto& expectation : expectations) {
      const bool fired = std::any_of(
          findings.begin(), findings.end(), [&](const Finding& f) {
            return f.line == expectation.line && f.rule == expectation.rule;
          });
      EXPECT_TRUE(fired) << name << ":" << expectation.line << " "
                         << expectation.rule;
    }
  }
}

}  // namespace
