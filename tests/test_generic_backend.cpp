// Genericity coverage: the polynomial/Lagrange/secret-sharing layers work
// identically over the BigUInt Montgomery backend, and cross-backend
// protocol invariants hold on random sweeps.
#include <gtest/gtest.h>

#include "crypto/chacha.hpp"
#include "crypto/feldman.hpp"
#include "dmw/multiunit.hpp"
#include "dmw/protocol.hpp"
#include "poly/lagrange.hpp"
#include "poly/shamir.hpp"

namespace dmw {
namespace {

using num::Group256;
using num::Group64;
using num::U256;

const Group256& big() {
  static const Group256 group = [] {
    Xoshiro256ss rng(4242);
    return Group256::generate(96, 64, rng);
  }();
  return group;
}

TEST(GenericBackend, PolynomialAlgebraOnGroup256) {
  const Group256& g = big();
  auto rng = crypto::ChaChaRng::from_seed(1);
  using Poly = poly::Polynomial<Group256>;
  const Poly a = Poly::random_zero_const(g, 3, rng);
  const Poly b = Poly::random_zero_const(g, 5, rng);
  EXPECT_EQ(a.degree(g), 3u);
  EXPECT_EQ(b.degree(g), 5u);
  const auto x = g.random_scalar(rng);
  EXPECT_EQ(a.add(g, b).eval(g, x), g.sadd(a.eval(g, x), b.eval(g, x)));
  EXPECT_EQ(a.mul(g, b).eval(g, x), g.smul(a.eval(g, x), b.eval(g, x)));
  EXPECT_EQ(a.mul(g, b).degree(g), 8u);
}

TEST(GenericBackend, DegreeResolutionOnGroup256) {
  const Group256& g = big();
  auto rng = crypto::ChaChaRng::from_seed(2);
  using Poly = poly::Polynomial<Group256>;
  for (std::size_t degree : {1u, 3u, 6u}) {
    const Poly p = Poly::random_zero_const(g, degree, rng);
    std::vector<U256> points;
    while (points.size() < degree + 2) {
      auto candidate = g.random_nonzero_scalar(rng);
      if (std::find(points.begin(), points.end(), candidate) == points.end())
        points.push_back(candidate);
    }
    const auto scalar_res =
        poly::resolve_degree(g, points, p.eval_all(g, points));
    ASSERT_TRUE(scalar_res.degree.has_value());
    EXPECT_EQ(*scalar_res.degree, degree);

    std::vector<U256> lambdas;
    for (const auto& x : points)
      lambdas.push_back(g.pow(g.z1(), p.eval(g, x)));
    const auto exp_res = poly::resolve_degree_in_exponent(g, points, lambdas);
    ASSERT_TRUE(exp_res.degree.has_value());
    EXPECT_EQ(*exp_res.degree, degree);
  }
}

TEST(GenericBackend, ShamirOnGroup256) {
  const Group256& g = big();
  auto rng = crypto::ChaChaRng::from_seed(3);
  std::vector<U256> points;
  while (points.size() < 5) {
    auto candidate = g.random_nonzero_scalar(rng);
    if (std::find(points.begin(), points.end(), candidate) == points.end())
      points.push_back(candidate);
  }
  const auto secret = g.random_scalar(rng);
  const auto sharing =
      poly::ShamirSharing<Group256>::split(g, secret, 3, points, rng);
  EXPECT_EQ(sharing.reconstruct(g, 3), secret);
  EXPECT_EQ(sharing.reconstruct(g, 5), secret);
}

TEST(GenericBackend, FeldmanOnGroup256) {
  const Group256& g = big();
  auto rng = crypto::ChaChaRng::from_seed(4);
  std::vector<U256> points;
  while (points.size() < 4) {
    auto candidate = g.random_nonzero_scalar(rng);
    if (std::find(points.begin(), points.end(), candidate) == points.end())
      points.push_back(candidate);
  }
  const auto secret = g.random_scalar(rng);
  auto sharing =
      crypto::FeldmanSharing<Group256>::deal(g, secret, 2, points, rng);
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_TRUE(sharing.verify(g, i));
  EXPECT_EQ(sharing.reconstruct(g, 2), secret);
  sharing.shares[0] = g.sadd(sharing.shares[0], g.sone());
  EXPECT_FALSE(sharing.verify(g, 0));
}

TEST(GenericBackend, MultiUnitOnGroup256) {
  const auto params = proto::PublicParams<Group256>::make(big(), 6, 1, 1, 5);
  const std::vector<mech::Cost> bids{3, 1, 4, 2, 4, 1};
  const auto outcome = proto::run_multiunit_auction(params, bids, 2);
  const auto reference = proto::reference_multiunit(bids, 2);
  ASSERT_TRUE(outcome.resolved);
  EXPECT_EQ(outcome.winners, reference.winners);
  EXPECT_EQ(outcome.clearing_price, reference.clearing_price);
}

// Protocol-level invariants over random instances, both backends where
// cheap enough.
class InvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InvariantSweep, OutcomeInvariantsHold) {
  const std::uint64_t seed = GetParam();
  Xoshiro256ss rng(seed);
  const std::size_t n = 4 + rng.below(6);
  const std::size_t m = 1 + rng.below(4);
  const std::size_t c = 1 + rng.below(std::min<std::size_t>(3, n - 3));
  const auto params = proto::PublicParams<Group64>::make(
      Group64::test_group(), n, m, c, seed);
  const auto instance =
      mech::make_uniform_instance(n, m, params.bid_set(), rng);
  const auto outcome = proto::run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted) << "seed " << seed;

  // Invariant 1: schedule is a valid partition.
  outcome.schedule.validate(instance);
  std::uint64_t total_payments = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t w = outcome.schedule.agent_for(j);
    // Invariant 2: the winner quoted the task's minimum cost.
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_GE(instance.cost[i][j], instance.cost[w][j]);
    // Invariant 3: first <= second price, both in W.
    EXPECT_LE(outcome.first_prices[j], outcome.second_prices[j]);
    EXPECT_TRUE(params.bid_set().contains(outcome.first_prices[j]));
    EXPECT_TRUE(params.bid_set().contains(outcome.second_prices[j]));
    EXPECT_EQ(outcome.first_prices[j], instance.cost[w][j]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    total_payments += outcome.payments[i];
    // Invariant 4: non-negative utility (voluntary participation).
    EXPECT_GE(outcome.utility(instance, i), 0);
    // Invariant 5: agents with no tasks receive no payment.
    if (outcome.schedule.tasks_for(i).empty())
      EXPECT_EQ(outcome.payments[i], 0u);
  }
  // Invariant 6: total payments = sum of second prices.
  std::uint64_t expected = 0;
  for (auto p : outcome.second_prices) expected += p;
  EXPECT_EQ(total_payments, expected);
  // Invariant 7: transcripts agree (single consistent broadcast).
  EXPECT_TRUE(outcome.transcripts_consistent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSweep,
                         ::testing::Range<std::uint64_t>(5000, 5025));

}  // namespace
}  // namespace dmw
