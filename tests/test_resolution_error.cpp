// Statistical test of §2.4's false-resolution probability: on a small-q
// group the measured false-vanish rate must match 1/q within generous
// binomial confidence bounds (and must be exactly 0 when probing with
// enough points).
#include <gtest/gtest.h>

#include <cmath>

#include "poly/lagrange.hpp"
#include "poly/polynomial.hpp"

namespace dmw::poly {
namespace {

using dmw::Xoshiro256ss;
using dmw::num::Group64;
using Poly = Polynomial<Group64>;

std::vector<std::uint64_t> distinct_points(const Group64& g, std::size_t n,
                                           Xoshiro256ss& rng) {
  std::vector<std::uint64_t> points;
  while (points.size() < n) {
    const auto candidate = g.random_nonzero_scalar(rng);
    if (std::find(points.begin(), points.end(), candidate) == points.end())
      points.push_back(candidate);
  }
  return points;
}

TEST(ResolutionError, RateMatchesOneOverQAtTwoShort) {
  // Probing with s = d-1 points: the interpolation residue is a uniform
  // random field element, so it vanishes with probability 1/q (§2.4).
  Xoshiro256ss group_rng(555);
  const Group64 g = Group64::generate(14, 8, group_rng);  // q in [128, 255]
  const double predicted = 1.0 / static_cast<double>(g.q());

  Xoshiro256ss rng(556);
  const std::size_t trials = 60000;
  const std::size_t degree = 5;
  std::size_t hits = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const Poly p = Poly::random_zero_const(g, degree, rng);
    const auto points = distinct_points(g, degree - 1, rng);
    if (interpolate_at_zero(g, points, p.eval_all(g, points), degree - 1) ==
        0)
      ++hits;
  }
  const double expected_hits = predicted * static_cast<double>(trials);
  const double sigma = std::sqrt(expected_hits);
  EXPECT_GT(hits, 0u) << "q=" << g.q();
  EXPECT_NEAR(static_cast<double>(hits), expected_hits, 6 * sigma)
      << "q=" << g.q();
}

TEST(ResolutionError, ImpossibleExactlyOneShort) {
  // Refinement over the paper: with s = d points the probe value equals
  // a_d * prod(alpha_k), and a_d != 0 by exact-degree sampling — a false
  // resolution one point short can never happen, at any q.
  Xoshiro256ss group_rng(560);
  const Group64 g = Group64::generate(14, 8, group_rng);  // tiny q
  Xoshiro256ss rng(561);
  for (int t = 0; t < 20000; ++t) {
    const std::size_t degree = 2 + rng.below(5);
    const Poly p = Poly::random_zero_const(g, degree, rng);
    const auto points = distinct_points(g, degree, rng);
    ASSERT_NE(interpolate_at_zero(g, points, p.eval_all(g, points), degree),
              0u);
  }
}

TEST(ResolutionError, NeverFalseWithEnoughPoints) {
  Xoshiro256ss group_rng(557);
  const Group64 g = Group64::generate(14, 8, group_rng);
  Xoshiro256ss rng(558);
  for (int t = 0; t < 2000; ++t) {
    const std::size_t degree = 2 + rng.below(5);
    const Poly p = Poly::random_zero_const(g, degree, rng);
    const auto points = distinct_points(g, degree + 1, rng);
    // With degree+1 points the interpolation is exact: always vanishes.
    EXPECT_EQ(interpolate_at_zero(g, points, p.eval_all(g, points),
                                  degree + 1),
              0u);
  }
}

TEST(ResolutionError, ProductionGroupNeverFalselyResolves) {
  // q ~ 2^40: the 1/q event at s = d-1 is ~1e-12 per probe.
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(559);
  for (int t = 0; t < 500; ++t) {
    const Poly p = Poly::random_zero_const(g, 7, rng);
    const auto points = distinct_points(g, 6, rng);
    EXPECT_NE(interpolate_at_zero(g, points, p.eval_all(g, points), 6), 0u);
  }
}

}  // namespace
}  // namespace dmw::poly
