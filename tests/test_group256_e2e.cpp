// The protocol is generic over the group backend: run it end-to-end on the
// 256-bit Montgomery backend and on a freshly generated 64-bit group, and
// check both against centralized MinWork.
#include <gtest/gtest.h>

#include "dmw/protocol.hpp"
#include "dmw/strategies.hpp"
#include "mech/minwork.hpp"

namespace dmw::proto {
namespace {

TEST(CrossBackend, Group256HonestRunMatchesMinWork) {
  Xoshiro256ss group_rng(7);
  // Cryptographically small but structurally real: 128-bit p, 80-bit q.
  const auto group = num::Group256::generate(128, 80, group_rng);
  const auto params = PublicParams<num::Group256>::make(group, 4, 2, 1, 5);
  Xoshiro256ss rng(8);
  const auto instance =
      mech::make_uniform_instance(4, 2, params.bid_set(), rng);

  const auto outcome = run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted)
      << to_string(outcome.abort_record->reason);
  const auto central = mech::run_minwork(instance);
  EXPECT_EQ(outcome.schedule, central.schedule);
  EXPECT_EQ(outcome.payments, central.payments);
  EXPECT_TRUE(outcome.transcripts_consistent);
}

TEST(CrossBackend, Group256DetectsCorruptShare) {
  Xoshiro256ss group_rng(9);
  const auto group = num::Group256::generate(128, 80, group_rng);
  const auto params = PublicParams<num::Group256>::make(group, 4, 1, 1, 6);
  Xoshiro256ss rng(10);
  const auto instance =
      mech::make_uniform_instance(4, 1, params.bid_set(), rng);

  CorruptShareStrategy<num::Group256> deviant(2);
  HonestStrategy<num::Group256> honest;
  std::vector<Strategy<num::Group256>*> strategies(4, &honest);
  strategies[0] = &deviant;
  ProtocolRunner<num::Group256> runner(params, instance, strategies);
  const auto outcome = runner.run();
  EXPECT_TRUE(outcome.aborted);
}

TEST(CrossBackend, FreshGroup64MatchesTestGroupOutcome) {
  // The outcome must be independent of which valid group was published.
  Xoshiro256ss group_rng(11);
  const auto fresh = num::Group64::generate(47, 32, group_rng);
  mech::SchedulingInstance instance{4, 2, {{1, 2}, {2, 2}, {1, 1}, {2, 1}}};

  const auto params_fresh = PublicParams<num::Group64>::make(fresh, 4, 2, 1, 5);
  const auto params_std =
      PublicParams<num::Group64>::make(num::Group64::test_group(), 4, 2, 1, 5);
  const auto a = run_honest_dmw(params_fresh, instance);
  const auto b = run_honest_dmw(params_std, instance);
  ASSERT_FALSE(a.aborted);
  ASSERT_FALSE(b.aborted);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.payments, b.payments);
}

TEST(CrossBackend, SmallQGroupStillResolves) {
  // A 20-bit q leaves ~1e-6 false-resolution probability per probe; a
  // single run must still be overwhelmingly likely to succeed.
  Xoshiro256ss group_rng(12);
  const auto group = num::Group64::generate(29, 20, group_rng);
  const auto params = PublicParams<num::Group64>::make(group, 5, 2, 1, 13);
  Xoshiro256ss rng(14);
  const auto instance =
      mech::make_uniform_instance(5, 2, params.bid_set(), rng);
  const auto outcome = run_honest_dmw(params, instance);
  EXPECT_FALSE(outcome.aborted);
}

}  // namespace
}  // namespace dmw::proto
