// Schedules, objectives, valuations and utilities.
#include <gtest/gtest.h>

#include "mech/schedule.hpp"

namespace dmw::mech {
namespace {

SchedulingInstance demo() {
  //        T1 T2 T3
  // A1:     1  4  2
  // A2:     3  1  5
  return SchedulingInstance{2, 3, {{1, 4, 2}, {3, 1, 5}}};
}

TEST(Schedule, TasksForPartitionsAllTasks) {
  const Schedule s({0, 1, 0});
  EXPECT_EQ(s.tasks_for(0), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(s.tasks_for(1), (std::vector<std::size_t>{1}));
}

TEST(Schedule, LoadsAndMakespan) {
  const auto instance = demo();
  const Schedule s({0, 1, 0});
  EXPECT_EQ(s.load(instance, 0), 3u);  // 1 + 2
  EXPECT_EQ(s.load(instance, 1), 1u);
  EXPECT_EQ(s.makespan(instance), 3u);
  EXPECT_EQ(s.total_work(instance), 4u);
}

TEST(Schedule, AllOnOneMachine) {
  const auto instance = demo();
  const Schedule s({1, 1, 1});
  EXPECT_EQ(s.load(instance, 0), 0u);
  EXPECT_EQ(s.load(instance, 1), 9u);
  EXPECT_EQ(s.makespan(instance), 9u);
}

TEST(Schedule, ValidateChecksShape) {
  const auto instance = demo();
  Schedule wrong_size({0, 1});
  EXPECT_THROW(wrong_size.validate(instance), CheckError);
  Schedule bad_agent({0, 1, 5});
  EXPECT_THROW(bad_agent.validate(instance), CheckError);
  Schedule ok({0, 1, 0});
  EXPECT_NO_THROW(ok.validate(instance));
}

TEST(Schedule, DescribeIsHumanReadable) {
  const Schedule s({0, 1});
  EXPECT_EQ(s.describe(), "{T1->A1, T2->A2}");
}

TEST(Schedule, EqualityIsStructural) {
  EXPECT_EQ(Schedule({0, 1}), Schedule({0, 1}));
  EXPECT_NE(Schedule({0, 1}), Schedule({1, 0}));
}

TEST(Utility, ValuationIsNegativeLoad) {
  const auto instance = demo();
  const Schedule s({0, 1, 0});
  EXPECT_EQ(valuation(instance, s, 0), -3);
  EXPECT_EQ(valuation(instance, s, 1), -1);
}

TEST(Utility, UtilityIsPaymentPlusValuation) {
  const auto instance = demo();
  const Schedule s({0, 1, 0});
  EXPECT_EQ(utility(instance, s, 0, 7), 4);
  EXPECT_EQ(utility(instance, s, 1, 0), -1);
  EXPECT_EQ(utility(instance, s, 1, 1), 0);
}

TEST(Schedule, AgentForIsBoundsChecked) {
  const Schedule s({0, 1});
  EXPECT_EQ(s.agent_for(1), 1u);
  EXPECT_THROW(s.agent_for(2), CheckError);
}

}  // namespace
}  // namespace dmw::mech
