// End-to-end smoke tests: an all-honest DMW run must terminate without
// abort and reproduce the centralized MinWork outcome exactly.
#include <gtest/gtest.h>

#include "dmw/protocol.hpp"
#include "mech/minwork.hpp"

namespace dmw {
namespace {

using num::Group64;
using proto::PublicParams;

TEST(ProtocolSmoke, HonestRunMatchesMinWork) {
  const Group64& group = Group64::test_group();
  const std::size_t n = 6, m = 3, c = 1;
  auto params = PublicParams<Group64>::make(group, n, m, c, /*seed=*/7);

  Xoshiro256ss rng(123);
  auto instance = mech::make_uniform_instance(n, m, params.bid_set(), rng);

  const auto outcome = proto::run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted)
      << "abort reason: "
      << proto::to_string(outcome.abort_record
                              ? outcome.abort_record->reason
                              : proto::AbortReason::kNone);

  const auto central = mech::run_minwork(instance);
  EXPECT_EQ(outcome.schedule, central.schedule);
  EXPECT_EQ(outcome.payments, central.payments);
  for (std::size_t j = 0; j < m; ++j) {
    EXPECT_EQ(outcome.first_prices[j], central.auctions[j].first_price);
    EXPECT_EQ(outcome.second_prices[j], central.auctions[j].second_price);
  }
  EXPECT_TRUE(outcome.transcripts_consistent);
}

}  // namespace
}  // namespace dmw
