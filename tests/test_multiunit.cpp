// Multi-unit (M+1)st-price auction (Kikuchi's construction, paper ref [23])
// on the DMW substrate: differential testing against the sorted reference,
// truthfulness of the uniform-price rule, and the disclosure accounting.
#include <gtest/gtest.h>

#include "dmw/multiunit.hpp"

namespace dmw::proto {
namespace {

using num::Group64;

const Group64& grp() { return Group64::test_group(); }

PublicParams<Group64> params_for(std::size_t n, std::size_t c = 1,
                                 std::uint64_t seed = 5) {
  return PublicParams<Group64>::make(grp(), n, /*m_tasks=*/1, c, seed);
}

TEST(MultiUnit, MatchesReferenceOnFixedBids) {
  const auto params = params_for(8, 2);  // W = {1..5}
  const std::vector<mech::Cost> bids{3, 5, 1, 4, 2, 5, 3, 1};
  for (std::size_t units : {1u, 2u, 3u, 4u}) {
    const auto crypto_outcome = run_multiunit_auction(params, bids, units);
    const auto reference = reference_multiunit(bids, units);
    ASSERT_TRUE(crypto_outcome.resolved) << "units " << units;
    EXPECT_EQ(crypto_outcome.winners, reference.winners) << "units " << units;
    EXPECT_EQ(crypto_outcome.revealed_bids, reference.revealed_bids);
    EXPECT_EQ(crypto_outcome.clearing_price, reference.clearing_price);
  }
}

class MultiUnitRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiUnitRandomSweep, MatchesReference) {
  Xoshiro256ss rng(GetParam());
  const std::size_t n = 6 + rng.below(5);
  const auto params = params_for(n, 1, GetParam());
  std::vector<mech::Cost> bids(n);
  for (auto& b : bids)
    b = params.bid_set().values()[rng.below(params.bid_set().size())];
  const std::size_t units = 1 + rng.below(n - 1);
  const auto crypto_outcome =
      run_multiunit_auction(params, bids, units, GetParam());
  const auto reference = reference_multiunit(bids, units);
  ASSERT_TRUE(crypto_outcome.resolved);
  EXPECT_EQ(crypto_outcome.winners, reference.winners);
  EXPECT_EQ(crypto_outcome.clearing_price, reference.clearing_price);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiUnitRandomSweep,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(MultiUnit, VickreySpecialCaseIsMEquals1) {
  const auto params = params_for(6);
  const std::vector<mech::Cost> bids{2, 4, 1, 3, 4, 2};
  const auto outcome = run_multiunit_auction(params, bids, 1);
  ASSERT_TRUE(outcome.resolved);
  EXPECT_EQ(outcome.winners, (std::vector<std::size_t>{1}));  // bid 4, index 1
  EXPECT_EQ(outcome.clearing_price, 4u);  // tie: the other 4 sets the price
}

TEST(MultiUnit, UniformPriceIsTruthful) {
  // (M+1)st-price multi-unit with unit demand is strategyproof: check
  // exhaustively that no bidder gains by misreporting.
  const auto params = params_for(7, 1, 9);  // W = {1..5}
  const std::vector<mech::Cost> true_values{3, 5, 2, 4, 1, 5, 2};
  const std::size_t units = 3;

  auto utility_of = [&](const std::vector<mech::Cost>& bids,
                        std::size_t agent) -> std::int64_t {
    const auto outcome = run_multiunit_auction(params, bids, units);
    DMW_CHECK(outcome.resolved);
    for (std::size_t w : outcome.winners) {
      if (w == agent)
        return static_cast<std::int64_t>(true_values[agent]) -
               static_cast<std::int64_t>(outcome.clearing_price);
    }
    return 0;
  };

  for (std::size_t agent = 0; agent < true_values.size(); ++agent) {
    const auto truthful_u = utility_of(true_values, agent);
    EXPECT_GE(truthful_u, 0);  // voluntary participation
    for (mech::Cost misreport : params.bid_set().values()) {
      if (misreport == true_values[agent]) continue;
      auto bids = true_values;
      bids[agent] = misreport;
      EXPECT_LE(utility_of(bids, agent), truthful_u)
          << "agent " << agent << " misreport " << misreport;
    }
  }
}

TEST(MultiUnit, DisclosureIsExactlyTopM) {
  // The iterative construction reveals the sorted top-M bids and the
  // clearing price; losing bids below the clearing price stay hidden
  // (they were never resolved).
  const auto params = params_for(8, 2);
  const std::vector<mech::Cost> bids{5, 4, 3, 2, 1, 1, 2, 3};
  const auto outcome = run_multiunit_auction(params, bids, 2);
  ASSERT_TRUE(outcome.resolved);
  EXPECT_EQ(outcome.revealed_bids, (std::vector<mech::Cost>{5, 4}));
  EXPECT_EQ(outcome.clearing_price, 3u);
}

TEST(MultiUnit, RejectsBadArguments) {
  const auto params = params_for(5);
  std::vector<mech::Cost> bids{1, 2, 3, 1, 2};
  EXPECT_THROW(run_multiunit_auction(params, bids, 0), CheckError);
  EXPECT_THROW(run_multiunit_auction(params, bids, 5), CheckError);
  bids[0] = 99;  // not in W
  EXPECT_THROW(run_multiunit_auction(params, bids, 1), CheckError);
  EXPECT_THROW(run_multiunit_auction(params, {1, 2}, 1), CheckError);
}

}  // namespace
}  // namespace dmw::proto
