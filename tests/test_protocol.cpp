// End-to-end protocol runs across (n, m, c) configurations: DMW must
// reproduce the centralized MinWork outcome, complete without abort, keep a
// consistent broadcast transcript, and exhibit the claimed traffic shape.
#include <gtest/gtest.h>

#include "dmw/protocol.hpp"
#include "mech/minwork.hpp"

namespace dmw::proto {
namespace {

using num::Group64;

const Group64& grp() { return Group64::test_group(); }

struct Config {
  std::size_t n, m, c;
  std::uint64_t seed;
};

class ProtocolSweep : public ::testing::TestWithParam<Config> {};

TEST_P(ProtocolSweep, HonestRunEqualsCentralizedMinWork) {
  const auto [n, m, c, seed] = GetParam();
  const auto params = PublicParams<Group64>::make(grp(), n, m, c, seed);
  Xoshiro256ss rng(seed * 31 + 1);
  const auto instance = mech::make_uniform_instance(n, m, params.bid_set(), rng);

  const auto outcome = run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted)
      << to_string(outcome.abort_record->reason);

  const auto central = mech::run_minwork(instance);
  EXPECT_EQ(outcome.schedule, central.schedule);
  EXPECT_EQ(outcome.payments, central.payments);
  for (std::size_t j = 0; j < m; ++j) {
    EXPECT_EQ(outcome.first_prices[j], central.auctions[j].first_price);
    EXPECT_EQ(outcome.second_prices[j], central.auctions[j].second_price);
  }
  EXPECT_TRUE(outcome.transcripts_consistent);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ProtocolSweep,
    ::testing::Values(Config{3, 1, 1, 1}, Config{4, 1, 1, 2},
                      Config{4, 3, 1, 3}, Config{5, 2, 2, 4},
                      Config{6, 4, 1, 5}, Config{6, 1, 3, 6},
                      Config{8, 2, 2, 7}, Config{8, 5, 4, 8},
                      Config{10, 3, 2, 9}, Config{12, 2, 3, 10},
                      Config{3, 6, 1, 11}, Config{16, 2, 4, 12}));

TEST(Protocol, ManyRandomInstancesAgreeWithMinWork) {
  const auto params = PublicParams<Group64>::make(grp(), 6, 2, 1, 99);
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Xoshiro256ss rng(seed);
    const auto instance =
        mech::make_uniform_instance(6, 2, params.bid_set(), rng);
    RunConfig config;
    config.secret_seed = seed * 1000 + 7;
    const auto outcome = run_honest_dmw(params, instance, config);
    ASSERT_FALSE(outcome.aborted) << "seed " << seed;
    const auto central = mech::run_minwork(instance);
    EXPECT_EQ(outcome.schedule, central.schedule) << "seed " << seed;
    EXPECT_EQ(outcome.payments, central.payments) << "seed " << seed;
  }
}

TEST(Protocol, AllAgentsAgreeOnResolvedPrices) {
  const auto params = PublicParams<Group64>::make(grp(), 7, 3, 2, 21);
  Xoshiro256ss rng(22);
  const auto instance =
      mech::make_uniform_instance(7, 3, params.bid_set(), rng);
  HonestStrategy<Group64> honest;
  std::vector<Strategy<Group64>*> strategies(7, &honest);
  ProtocolRunner<Group64> runner(params, instance, strategies);
  const auto outcome = runner.run();
  ASSERT_FALSE(outcome.aborted);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const auto& view = runner.agent(i).task_view(j);
      EXPECT_EQ(*view.first_price, outcome.first_prices[j]);
      EXPECT_EQ(*view.second_price, outcome.second_prices[j]);
      EXPECT_EQ(*view.winner, outcome.schedule.agent_for(j));
    }
  }
}

TEST(Protocol, TieBreakGoesToSmallestPseudonym) {
  // All agents quote the same cost: agent 0 (smallest pseudonym) wins, and
  // the second price equals the first.
  const auto params = PublicParams<Group64>::make(grp(), 5, 1, 1, 30);
  mech::SchedulingInstance instance{5, 1, {{2}, {2}, {2}, {2}, {2}}};
  const auto outcome = run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted);
  EXPECT_EQ(outcome.schedule.agent_for(0), 0u);
  EXPECT_EQ(outcome.first_prices[0], 2u);
  EXPECT_EQ(outcome.second_prices[0], 2u);
  EXPECT_EQ(outcome.payments[0], 2u);
}

TEST(Protocol, ExtremeBidsResolve) {
  // Lowest and highest admissible bids in one auction.
  const auto params = PublicParams<Group64>::make(grp(), 6, 1, 1, 31);
  const auto w_min = params.bid_set().min();
  const auto w_max = params.bid_set().max();
  mech::SchedulingInstance instance{
      6, 1, {{w_max}, {w_min}, {w_max}, {w_max}, {w_max}, {w_max}}};
  const auto outcome = run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted);
  EXPECT_EQ(outcome.schedule.agent_for(0), 1u);
  EXPECT_EQ(outcome.first_prices[0], w_min);
  EXPECT_EQ(outcome.second_prices[0], w_max);
}

TEST(Protocol, UtilitiesAreVickreyRents) {
  const auto params = PublicParams<Group64>::make(grp(), 6, 1, 1, 32);
  mech::SchedulingInstance instance{6, 1, {{1}, {3}, {4}, {4}, {4}, {4}}};
  const auto outcome = run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted);
  // Winner's utility = second price - own cost = 3 - 1 = 2; losers get 0.
  EXPECT_EQ(outcome.utility(instance, 0), 2);
  for (std::size_t i = 1; i < 6; ++i)
    EXPECT_EQ(outcome.utility(instance, i), 0);
}

TEST(Protocol, TrafficShapeMatchesTheorem11) {
  // Phase II unicasts: exactly m * n * (n-1) share messages.
  const std::size_t n = 8, m = 3;
  const auto params = PublicParams<Group64>::make(grp(), n, m, 2, 33);
  Xoshiro256ss rng(34);
  const auto instance = mech::make_uniform_instance(n, m, params.bid_set(), rng);
  const auto outcome = run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted);
  EXPECT_EQ(outcome.traffic.unicast_messages, m * n * (n - 1));
  // Published messages per task: n commitments + n lambda/psi + (y*+1)
  // disclosures + n reduced + n payment claims (per run, not per task).
  EXPECT_GE(outcome.traffic.broadcast_messages, m * (3 * n) + n);
  // p2p-equivalents dominate: every publish costs n-1.
  EXPECT_EQ(outcome.traffic.p2p_equivalent_messages,
            outcome.traffic.unicast_messages +
                outcome.traffic.broadcast_messages * (n - 1));
}

TEST(Protocol, PhaseBreakdownCoversAllTraffic) {
  const auto params = PublicParams<Group64>::make(grp(), 6, 2, 1, 35);
  Xoshiro256ss rng(36);
  const auto instance = mech::make_uniform_instance(6, 2, params.bid_set(), rng);
  const auto outcome = run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted);
  std::uint64_t sum = 0;
  for (const auto& phase : outcome.phases)
    sum += phase.stats.p2p_equivalent_messages;
  EXPECT_EQ(sum, outcome.traffic.p2p_equivalent_messages);
  // Bidding dominates unicast traffic; it must be nonzero.
  EXPECT_GT(outcome.phases[0].stats.unicast_messages, 0u);
  EXPECT_GT(outcome.rounds, 4u);
}

TEST(Protocol, RunnerValidatesConfiguration) {
  const auto params = PublicParams<Group64>::make(grp(), 4, 2, 1, 37);
  Xoshiro256ss rng(38);
  const auto instance = mech::make_uniform_instance(4, 2, params.bid_set(), rng);
  HonestStrategy<Group64> honest;

  // Wrong agent count.
  std::vector<Strategy<Group64>*> too_few(3, &honest);
  EXPECT_THROW(ProtocolRunner<Group64>(params, instance, too_few), CheckError);

  // Instance shape mismatch.
  const auto other =
      mech::make_uniform_instance(5, 2, params.bid_set(), rng);
  std::vector<Strategy<Group64>*> four(4, &honest);
  EXPECT_THROW(ProtocolRunner<Group64>(params, other, four), CheckError);

  // Null strategy.
  std::vector<Strategy<Group64>*> with_null(4, &honest);
  with_null[2] = nullptr;
  EXPECT_THROW(ProtocolRunner<Group64>(params, instance, with_null),
               CheckError);
}

TEST(Protocol, DifferentSecretSeedsSameOutcome) {
  // The outcome is a function of bids only; polynomial randomness must not
  // change allocations or payments.
  const auto params = PublicParams<Group64>::make(grp(), 5, 2, 1, 39);
  Xoshiro256ss rng(40);
  const auto instance = mech::make_uniform_instance(5, 2, params.bid_set(), rng);
  RunConfig c1, c2;
  c1.secret_seed = 111;
  c2.secret_seed = 222;
  const auto o1 = run_honest_dmw(params, instance, c1);
  const auto o2 = run_honest_dmw(params, instance, c2);
  ASSERT_FALSE(o1.aborted);
  ASSERT_FALSE(o2.aborted);
  EXPECT_EQ(o1.schedule, o2.schedule);
  EXPECT_EQ(o1.payments, o2.payments);
}

TEST(Protocol, NetworkMessageLossCausesCleanAbort) {
  // Drop every private share to agent 2: it cannot verify Phase II and the
  // protocol must abort (missing shares), not crash or misallocate.
  const auto params = PublicParams<Group64>::make(grp(), 5, 1, 1, 41);
  Xoshiro256ss rng(42);
  const auto instance = mech::make_uniform_instance(5, 1, params.bid_set(), rng);
  HonestStrategy<Group64> honest;
  std::vector<Strategy<Group64>*> strategies(5, &honest);
  ProtocolRunner<Group64> runner(params, instance, strategies);
  runner.network().set_fault_injector([](const net::Envelope& env) {
    net::FaultAction a;
    a.drop = (env.to == 2);
    return a;
  });
  const auto outcome = runner.run();
  EXPECT_TRUE(outcome.aborted);
  ASSERT_TRUE(outcome.abort_record.has_value());
  EXPECT_EQ(outcome.abort_record->reason, AbortReason::kMissingShares);
  EXPECT_EQ(outcome.aborting_agent, 2u);
}

TEST(Protocol, CorruptedWireBytesCauseAbortNotCrash) {
  const auto params = PublicParams<Group64>::make(grp(), 4, 1, 1, 43);
  Xoshiro256ss rng(44);
  const auto instance = mech::make_uniform_instance(4, 1, params.bid_set(), rng);
  HonestStrategy<Group64> honest;
  std::vector<Strategy<Group64>*> strategies(4, &honest);
  ProtocolRunner<Group64> runner(params, instance, strategies);
  runner.network().set_fault_injector([](const net::Envelope& env) {
    net::FaultAction a;
    if (env.to == 1) a.replace_payload = std::vector<std::uint8_t>{1, 2, 3};
    return a;
  });
  const auto outcome = runner.run();
  EXPECT_TRUE(outcome.aborted);
}

}  // namespace
}  // namespace dmw::proto
