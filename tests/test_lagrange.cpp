// Lagrange interpolation at zero and degree resolution, in both the scalar
// and exponent domains (paper §2.4 and Eq. (12)). Includes parameterized
// sweeps over the encoded degree — the core primitive of DMW's bid encoding.
#include <gtest/gtest.h>

#include "poly/lagrange.hpp"
#include "poly/polynomial.hpp"
#include "support/rng.hpp"

namespace dmw::poly {
namespace {

using dmw::Xoshiro256ss;
using dmw::num::Group64;
using Poly = Polynomial<Group64>;

const Group64& grp() { return Group64::test_group(); }

std::vector<std::uint64_t> distinct_points(const Group64& g, std::size_t n,
                                           Xoshiro256ss& rng) {
  std::vector<std::uint64_t> points;
  while (points.size() < n) {
    const auto candidate = g.random_nonzero_scalar(rng);
    if (std::find(points.begin(), points.end(), candidate) == points.end())
      points.push_back(candidate);
  }
  return points;
}

TEST(Lagrange, BasisSumsToOne) {
  // The Lagrange basis at any evaluation point sums to 1 (interpolating the
  // constant-1 polynomial).
  const Group64& g = grp();
  Xoshiro256ss rng(60);
  const auto points = distinct_points(g, 6, rng);
  const auto rho = lagrange_basis_at_zero(g, points, 6);
  std::uint64_t sum = 0;
  for (const auto& r : rho) sum = g.sadd(sum, r);
  EXPECT_EQ(sum, g.sone());
}

TEST(Lagrange, InterpolationRecoversValueAtZero) {
  const Group64& g = grp();
  Xoshiro256ss rng(61);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t deg = 1 + rng.below(8);
    // Random polynomial WITH nonzero constant term.
    std::vector<std::uint64_t> coeffs(deg + 1);
    for (auto& c : coeffs) c = g.random_scalar(rng);
    coeffs[0] = g.random_nonzero_scalar(rng);
    const Poly p(coeffs);
    const auto points = distinct_points(g, deg + 1, rng);
    const auto values = p.eval_all(g, points);
    EXPECT_EQ(interpolate_at_zero(g, points, values, deg + 1), coeffs[0]);
  }
}

TEST(Lagrange, PaperAlgorithmMatchesStandardUpToSign) {
  // The printed §2.4 algorithm computes (-1)^{s-1} * L(0).
  const Group64& g = grp();
  Xoshiro256ss rng(62);
  for (std::size_t s = 1; s <= 9; ++s) {
    const auto points = distinct_points(g, s, rng);
    std::vector<std::uint64_t> values(s);
    for (auto& v : values) v = g.random_scalar(rng);
    const auto standard = interpolate_at_zero(g, points, values, s);
    const auto paper = paper_interpolation_at_zero(g, points, values, s);
    if (s % 2 == 1) {
      EXPECT_EQ(paper, standard) << "s=" << s;
    } else {
      EXPECT_EQ(paper, g.sneg(standard)) << "s=" << s;
    }
  }
}

TEST(Lagrange, PaperAlgorithmZeroTestAgrees) {
  // Sign aside, the zero test (all DMW uses) is identical.
  const Group64& g = grp();
  Xoshiro256ss rng(63);
  const std::size_t deg = 4;
  const Poly p = Poly::random_zero_const(g, deg, rng);
  const auto points = distinct_points(g, deg + 2, rng);
  const auto values = p.eval_all(g, points);
  for (std::size_t s = 1; s <= deg + 2; ++s) {
    const bool std_zero = interpolate_at_zero(g, points, values, s) == 0;
    const bool paper_zero = paper_interpolation_at_zero(g, points, values, s) == 0;
    EXPECT_EQ(std_zero, paper_zero) << "s=" << s;
    EXPECT_EQ(std_zero, s >= deg + 1) << "s=" << s;
  }
}

// Parameterized sweep: resolution must recover every encodable degree.
class DegreeResolutionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DegreeResolutionSweep, ScalarDomainRecoversDegree) {
  const Group64& g = grp();
  const std::size_t deg = GetParam();
  Xoshiro256ss rng(100 + deg);
  for (int trial = 0; trial < 10; ++trial) {
    const Poly p = Poly::random_zero_const(g, deg, rng);
    const auto points = distinct_points(g, deg + 3, rng);
    const auto values = p.eval_all(g, points);
    const auto res = resolve_degree(g, points, values);
    ASSERT_TRUE(res.degree.has_value());
    EXPECT_EQ(*res.degree, deg);
    // Erratum check (DESIGN.md): s_min = deg + 1 probes, not deg.
    EXPECT_EQ(res.probes, deg + 1);
  }
}

TEST_P(DegreeResolutionSweep, ExponentDomainRecoversDegree) {
  const Group64& g = grp();
  const std::size_t deg = GetParam();
  Xoshiro256ss rng(200 + deg);
  const Poly p = Poly::random_zero_const(g, deg, rng);
  const auto points = distinct_points(g, deg + 3, rng);
  std::vector<std::uint64_t> lambdas;
  for (const auto& x : points)
    lambdas.push_back(g.pow(g.z1(), p.eval(g, x)));
  const auto res = resolve_degree_in_exponent(g, points, lambdas);
  ASSERT_TRUE(res.degree.has_value());
  EXPECT_EQ(*res.degree, deg);
}

INSTANTIATE_TEST_SUITE_P(Degrees, DegreeResolutionSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10, 12, 16));

TEST(DegreeResolution, SumOfPolynomialsResolvesToMaxDegree) {
  // The DMW property: deg(sum of e_i) = max deg(e_i), i.e. the minimum bid.
  const Group64& g = grp();
  Xoshiro256ss rng(64);
  const Poly a = Poly::random_zero_const(g, 3, rng);
  const Poly b = Poly::random_zero_const(g, 7, rng);
  const Poly c = Poly::random_zero_const(g, 5, rng);
  const Poly sum = a.add(g, b).add(g, c);
  const auto points = distinct_points(g, 10, rng);
  const auto res = resolve_degree(g, points, sum.eval_all(g, points));
  ASSERT_TRUE(res.degree.has_value());
  EXPECT_EQ(*res.degree, 7u);
}

TEST(DegreeResolution, UnresolvableWhenTooFewPoints) {
  const Group64& g = grp();
  Xoshiro256ss rng(65);
  const Poly p = Poly::random_zero_const(g, 8, rng);
  const auto points = distinct_points(g, 5, rng);  // 5 < deg+1
  const auto res = resolve_degree(g, points, p.eval_all(g, points));
  EXPECT_FALSE(res.degree.has_value());
  EXPECT_EQ(res.probes, 5u);
}

TEST(DegreeResolution, ZeroPolynomialResolvesToDegreeZero) {
  const Group64& g = grp();
  Xoshiro256ss rng(66);
  const auto points = distinct_points(g, 4, rng);
  const std::vector<std::uint64_t> values(4, 0);
  const auto res = resolve_degree(g, points, values);
  ASSERT_TRUE(res.degree.has_value());
  EXPECT_EQ(*res.degree, 0u);
}

TEST(DegreeResolution, ExponentDomainUnresolvable) {
  const Group64& g = grp();
  Xoshiro256ss rng(67);
  const Poly p = Poly::random_zero_const(g, 6, rng);
  const auto points = distinct_points(g, 4, rng);
  std::vector<std::uint64_t> lambdas;
  for (const auto& x : points) lambdas.push_back(g.pow(g.z1(), p.eval(g, x)));
  EXPECT_FALSE(resolve_degree_in_exponent(g, points, lambdas).degree);
}

TEST(DegreeResolution, HidingBelowThreshold) {
  // With s <= deg points, the interpolated value at zero is (w.h.p.) a
  // nonzero "random" field element: nothing about the degree leaks. This is
  // the information-hiding property Theorem 10 builds on.
  const Group64& g = grp();
  Xoshiro256ss rng(68);
  int zero_hits = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const Poly p = Poly::random_zero_const(g, 6, rng);
    const auto points = distinct_points(g, 6, rng);  // exactly deg points
    const auto v = interpolate_at_zero(g, points, p.eval_all(g, points), 6);
    if (v == 0) ++zero_hits;
  }
  EXPECT_EQ(zero_hits, 0);  // probability ~200/2^40 of a false hit
}

TEST(Lagrange, RejectsMismatchedInput) {
  const Group64& g = grp();
  const std::vector<std::uint64_t> points{1, 2, 3};
  const std::vector<std::uint64_t> values{4, 5};
  EXPECT_THROW(resolve_degree(g, points, values), dmw::CheckError);
  EXPECT_THROW(interpolate_at_zero(g, points, values, 3), dmw::CheckError);
  EXPECT_THROW(lagrange_basis_at_zero(g, points, 0), dmw::CheckError);
  EXPECT_THROW(lagrange_basis_at_zero(g, points, 4), dmw::CheckError);
}

}  // namespace
}  // namespace dmw::poly
