// SimNetwork: round-based delivery, bulletin visibility, traffic accounting
// (including the n-1 unicast billing of broadcasts), fault injection.
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace dmw::net {
namespace {

std::vector<std::uint8_t> payload(std::size_t n) {
  return std::vector<std::uint8_t>(n, 0x5a);
}

TEST(SimNetwork, UnicastDeliveredNextRound) {
  SimNetwork net(3);
  net.send(0, 1, 7, payload(4));
  EXPECT_TRUE(net.receive(1).empty());  // not yet visible in round 0
  net.advance_round();
  auto inbox = net.receive(1);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].from, 0u);
  EXPECT_EQ(inbox[0].kind, 7u);
  EXPECT_EQ(inbox[0].payload, payload(4));
  EXPECT_TRUE(net.receive(1).empty());  // drained
}

TEST(SimNetwork, UnicastIsPrivate) {
  SimNetwork net(3);
  net.send(0, 1, 1, payload(1));
  net.advance_round();
  EXPECT_TRUE(net.receive(2).empty());
  EXPECT_EQ(net.receive(1).size(), 1u);
}

TEST(SimNetwork, FifoOrderPreserved) {
  SimNetwork net(2);
  for (std::uint32_t k = 0; k < 5; ++k) net.send(0, 1, k, payload(1));
  net.advance_round();
  const auto inbox = net.receive(1);
  ASSERT_EQ(inbox.size(), 5u);
  for (std::uint32_t k = 0; k < 5; ++k) EXPECT_EQ(inbox[k].kind, k);
}

TEST(SimNetwork, BulletinVisibleNextRoundToAll) {
  SimNetwork net(4);
  net.publish(2, 9, payload(3));
  std::size_t cursor = 0;
  EXPECT_TRUE(net.read_bulletin(cursor).empty());
  net.advance_round();
  const auto postings = net.read_bulletin(cursor);
  ASSERT_EQ(postings.size(), 1u);
  EXPECT_EQ(postings[0].from, 2u);
  EXPECT_EQ(postings[0].kind, 9u);
  // Cursor advanced; re-reading yields nothing new.
  EXPECT_TRUE(net.read_bulletin(cursor).empty());
  // A fresh cursor sees history.
  std::size_t cursor2 = 0;
  EXPECT_EQ(net.read_bulletin(cursor2).size(), 1u);
}

TEST(SimNetwork, TrafficAccounting) {
  SimNetwork net(5);
  net.send(0, 1, 1, payload(8));
  EXPECT_EQ(net.stats().unicast_messages, 1u);
  EXPECT_EQ(net.stats().unicast_bytes, 12u + 8u);
  EXPECT_EQ(net.stats().p2p_equivalent_messages, 1u);

  net.publish(0, 2, payload(10));
  EXPECT_EQ(net.stats().broadcast_messages, 1u);
  // Broadcast billed as n-1 = 4 unicasts.
  EXPECT_EQ(net.stats().p2p_equivalent_messages, 1u + 4u);
  EXPECT_EQ(net.stats().p2p_equivalent_bytes, 20u + 4u * 22u);

  EXPECT_EQ(net.stats_for(0).unicast_messages, 1u);
  EXPECT_EQ(net.stats_for(0).broadcast_messages, 1u);
  EXPECT_EQ(net.stats_for(1).unicast_messages, 0u);
}

TEST(SimNetwork, ResetStats) {
  SimNetwork net(2);
  net.send(0, 1, 1, payload(1));
  net.reset_stats();
  EXPECT_EQ(net.stats().unicast_messages, 0u);
  EXPECT_EQ(net.stats_for(0).unicast_messages, 0u);
}

TEST(SimNetwork, FaultInjectionDrop) {
  SimNetwork net(2);
  net.set_fault_injector([](const Envelope&) {
    FaultAction a;
    a.drop = true;
    return a;
  });
  net.send(0, 1, 1, payload(1));
  net.advance_round();
  EXPECT_TRUE(net.receive(1).empty());
  // Dropped messages are still counted as sent (the sender paid for them).
  EXPECT_EQ(net.stats().unicast_messages, 1u);
}

TEST(SimNetwork, FaultInjectionDelay) {
  SimNetwork net(2);
  net.set_fault_injector([](const Envelope&) {
    FaultAction a;
    a.extra_delay_rounds = 2;
    return a;
  });
  net.send(0, 1, 1, payload(1));
  net.advance_round();
  EXPECT_TRUE(net.receive(1).empty());
  net.advance_round();
  EXPECT_TRUE(net.receive(1).empty());
  net.advance_round();
  EXPECT_EQ(net.receive(1).size(), 1u);
}

TEST(SimNetwork, FaultInjectionCorrupt) {
  SimNetwork net(2);
  net.set_fault_injector([](const Envelope&) {
    FaultAction a;
    a.replace_payload = std::vector<std::uint8_t>{9, 9, 9};
    return a;
  });
  net.send(0, 1, 1, payload(5));
  net.advance_round();
  const auto inbox = net.receive(1);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].payload, (std::vector<std::uint8_t>{9, 9, 9}));
}

TEST(SimNetwork, SelectiveFaultInjection) {
  SimNetwork net(3);
  net.set_fault_injector([](const Envelope& env) {
    FaultAction a;
    a.drop = (env.to == 2);
    return a;
  });
  net.send(0, 1, 1, payload(1));
  net.send(0, 2, 1, payload(1));
  net.advance_round();
  EXPECT_EQ(net.receive(1).size(), 1u);
  EXPECT_TRUE(net.receive(2).empty());
}

TEST(SimNetwork, InvalidAgentIdsRejected) {
  SimNetwork net(2);
  EXPECT_THROW(net.send(0, 5, 1, payload(1)), dmw::CheckError);
  EXPECT_THROW(net.send(5, 0, 1, payload(1)), dmw::CheckError);
  EXPECT_THROW(net.publish(5, 1, payload(1)), dmw::CheckError);
  EXPECT_THROW(net.receive(9), dmw::CheckError);
  EXPECT_THROW(net.stats_for(9), dmw::CheckError);
}

TEST(SimNetwork, RoundCounterAdvances) {
  SimNetwork net(1);
  EXPECT_EQ(net.round(), 0u);
  net.advance_round();
  net.advance_round();
  EXPECT_EQ(net.round(), 2u);
}

}  // namespace
}  // namespace dmw::net
