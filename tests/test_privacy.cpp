// Privacy (paper Theorem 10): losing bids stay hidden from small
// coalitions. The e-attack threshold must be exactly sigma - y + 1 shares;
// the f-attack documents the winner-phase disclosure leak (EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "exp/privacy.hpp"

namespace dmw::exp {
namespace {

using num::Group64;
using proto::PublicParams;

const Group64& grp() { return Group64::test_group(); }

struct PrivacyFixture {
  PublicParams<Group64> params;
  mech::SchedulingInstance instance;
  std::unique_ptr<proto::ProtocolRunner<Group64>> runner;
  proto::Outcome outcome;
  proto::HonestStrategy<Group64> honest;

  explicit PrivacyFixture(mech::SchedulingInstance inst, std::uint64_t seed)
      : params(PublicParams<Group64>::make(grp(), inst.n, inst.m, 2, seed)),
        instance(std::move(inst)) {
    std::vector<proto::Strategy<Group64>*> strategies(params.n(), &honest);
    runner = std::make_unique<proto::ProtocolRunner<Group64>>(
        params, instance, strategies);
    outcome = runner->run();
  }
};

TEST(Privacy, EAttackThresholdIsExactlySigmaMinusBidPlusOne) {
  // n=9, c=2 -> W={1..6}, sigma=9. Agent bids: winner bids 1, targets bid
  // 3 and 6. e-degree of bid y is 9-y; resolution needs 9-y+1 shares.
  mech::SchedulingInstance instance{
      9, 1, {{1}, {3}, {6}, {6}, {6}, {6}, {6}, {6}, {6}}};
  PrivacyFixture fx(instance, 90);
  ASSERT_FALSE(fx.outcome.aborted);

  struct Case {
    std::size_t target;
    mech::Cost bid;
  };
  for (const Case c : {Case{1, 3}, Case{2, 6}}) {
    const std::size_t threshold = fx.params.sigma() - c.bid + 1;
    for (std::size_t size = 1; size < fx.params.n(); ++size) {
      const auto attack =
          attack_bid_privacy(*fx.runner, fx.params, size, c.target, 0);
      EXPECT_EQ(attack.true_bid, c.bid);
      if (size >= threshold) {
        EXPECT_TRUE(attack.e_attack_succeeded())
            << "size " << size << " target " << c.target;
      } else {
        EXPECT_FALSE(attack.e_attack_succeeded())
            << "size " << size << " target " << c.target;
      }
    }
  }
}

TEST(Privacy, LowerBidsNeedMoreColluders) {
  // Theorem 10's remark: the number of colluders needed is inversely
  // related to the bid value. Verify monotonicity of the threshold.
  mech::SchedulingInstance instance{
      9, 1, {{1}, {2}, {4}, {6}, {6}, {6}, {6}, {6}, {6}}};
  PrivacyFixture fx(instance, 91);
  ASSERT_FALSE(fx.outcome.aborted);

  auto min_coalition_to_crack = [&](std::size_t target) -> std::size_t {
    for (std::size_t size = 1; size < fx.params.n(); ++size) {
      if (attack_bid_privacy(*fx.runner, fx.params, size, target, 0)
              .e_attack_succeeded())
        return size;
    }
    return fx.params.n();
  };
  // Targets 1 (bid 2), 2 (bid 4), 3 (bid 6): lower bid -> larger threshold.
  EXPECT_GT(min_coalition_to_crack(1), min_coalition_to_crack(2));
  EXPECT_GT(min_coalition_to_crack(2), min_coalition_to_crack(3));
}

TEST(Privacy, CoalitionWithinCPlusOneLearnsNothing) {
  // The paper's design goal: with at most c (here even c+1) colluders, no
  // losing bid is ever recovered via the e-encoding.
  Xoshiro256ss rng(92);
  const auto params = PublicParams<Group64>::make(grp(), 8, 2, 2, 93);
  const auto instance =
      mech::make_uniform_instance(8, 2, params.bid_set(), rng);
  const auto rows = privacy_sweep(params, instance, params.c() + 1);
  for (const auto& row : rows) {
    EXPECT_EQ(row.e_successes, 0u)
        << "coalition of " << row.coalition_size << " cracked a bid";
    EXPECT_GT(row.trials, 0u);
  }
}

TEST(Privacy, SweepRatesAreMonotoneInCoalitionSize) {
  Xoshiro256ss rng(94);
  const auto params = PublicParams<Group64>::make(grp(), 8, 2, 2, 95);
  const auto instance =
      mech::make_uniform_instance(8, 2, params.bid_set(), rng);
  const auto rows = privacy_sweep(params, instance, params.n() - 1);
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_GE(rows[i].e_rate(), rows[i - 1].e_rate());
  // A full-size coalition (everyone but the target) resolves every bid
  // whose threshold is within reach: with n-1 = sigma - 1 shares only bids
  // y >= 2 are crackable; uniform instances usually contain some bid-1
  // losers, so the top rate is high but need not be 1.
  EXPECT_GT(rows.back().e_rate(), 0.5);
}

TEST(Privacy, FAttackLeaksTieLosersBidViaPublicDisclosures) {
  // A loser tied with the winner has deg f = y*; the y*+1 public
  // winner-identification points alone resolve it — a leak the paper's
  // privacy theorem does not cover (see EXPERIMENTS.md). Coalition size 1
  // holds no extra f-share of use; the public data suffices.
  mech::SchedulingInstance instance{
      8, 1, {{2}, {2}, {5}, {5}, {5}, {5}, {5}, {5}}};
  PrivacyFixture fx(instance, 96);
  ASSERT_FALSE(fx.outcome.aborted);
  // Agent 1 ties the winner (agent 0) with bid 2 and loses the tie-break.
  const auto attack = attack_bid_privacy(*fx.runner, fx.params, 1, 1, 0);
  EXPECT_TRUE(attack.f_attack_succeeded());
}

TEST(Privacy, FAttackNeedsEnoughPointsForHighBids) {
  // A loser far above y* is still protected from small coalitions even via
  // the f channel: y+1 points are needed but only y*+1 are public.
  mech::SchedulingInstance instance{
      9, 1, {{1}, {6}, {6}, {6}, {6}, {6}, {6}, {6}, {6}}};
  PrivacyFixture fx(instance, 97);
  ASSERT_FALSE(fx.outcome.aborted);
  // y* = 1 -> 2 public points; target bid 6 needs 7 points. A coalition of
  // 3 adds at most 3 more distinct points: still unresolved.
  const auto attack = attack_bid_privacy(*fx.runner, fx.params, 3, 1, 0);
  EXPECT_FALSE(attack.f_attack_succeeded());
}

TEST(Privacy, WinnerBidIsPublicByDesign) {
  // The first price is intrinsic disclosure (paper Remark after Thm. 10).
  Xoshiro256ss rng(98);
  const auto params = PublicParams<Group64>::make(grp(), 6, 1, 1, 99);
  const auto instance =
      mech::make_uniform_instance(6, 1, params.bid_set(), rng);
  const auto outcome = proto::run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted);
  const std::size_t winner = outcome.schedule.agent_for(0);
  EXPECT_EQ(outcome.first_prices[0], instance.cost[winner][0]);
}

}  // namespace
}  // namespace dmw::exp
