// The private-channel substrate: AEAD, Diffie-Hellman key agreement, and
// the sealed Phase II share traffic (paper II.2 "securely transmits").
#include <gtest/gtest.h>

#include "crypto/aead.hpp"
#include "crypto/dh.hpp"
#include "dmw/protocol.hpp"
#include "mech/minwork.hpp"

namespace dmw {
namespace {

using crypto::aead_open;
using crypto::aead_seal;
using num::Group64;

crypto::AeadKey key_of(std::uint8_t fill) {
  std::array<std::uint8_t, crypto::kAeadKeyBytes> raw;
  raw.fill(fill);
  return crypto::AeadKey(raw);
}

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Aead, SealOpenRoundTrip) {
  const auto key = key_of(7);
  const auto plaintext = bytes_of("the quick brown fox");
  const auto aad = bytes_of("header");
  const auto sealed = aead_seal(key, 42, plaintext, aad);
  EXPECT_EQ(sealed.size(), plaintext.size() + crypto::kAeadTagBytes);
  const auto opened = aead_open(key, 42, sealed, aad);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST(Aead, EmptyPlaintextAndAad) {
  const auto key = key_of(9);
  const auto sealed = aead_seal(key, 0, {}, {});
  EXPECT_EQ(sealed.size(), crypto::kAeadTagBytes);
  const auto opened = aead_open(key, 0, sealed, {});
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(Aead, CiphertextHidesPlaintext) {
  const auto key = key_of(3);
  const auto plaintext = bytes_of("secret bid value 12345");
  const auto sealed = aead_seal(key, 1, plaintext, {});
  // No window of the ciphertext equals the plaintext.
  const std::string hay(sealed.begin(), sealed.end());
  const std::string needle(plaintext.begin(), plaintext.end());
  EXPECT_EQ(hay.find(needle), std::string::npos);
}

TEST(Aead, EveryTamperIsDetected) {
  const auto key = key_of(5);
  const auto plaintext = bytes_of("tamper me");
  const auto aad = bytes_of("aad");
  const auto sealed = aead_seal(key, 9, plaintext, aad);
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    auto corrupted = sealed;
    corrupted[i] ^= 0x40;
    EXPECT_FALSE(aead_open(key, 9, corrupted, aad).has_value()) << i;
  }
}

TEST(Aead, WrongKeyNonceOrAadRejected) {
  const auto key = key_of(5);
  const auto plaintext = bytes_of("payload");
  const auto aad = bytes_of("aad");
  const auto sealed = aead_seal(key, 9, plaintext, aad);
  EXPECT_FALSE(aead_open(key_of(6), 9, sealed, aad).has_value());
  EXPECT_FALSE(aead_open(key, 10, sealed, aad).has_value());
  EXPECT_FALSE(aead_open(key, 9, sealed, bytes_of("other")).has_value());
  EXPECT_FALSE(aead_open(key, 9, bytes_of("short"), aad).has_value());
}

TEST(Aead, XorIsAnInvolution) {
  const auto key = key_of(1);
  auto data = bytes_of("some stream data, longer than one block? no - "
                       "make it longer than sixty four bytes to be sure!");
  const auto original = data;
  crypto::chacha20_xor(key.reveal(), 77, data);
  EXPECT_NE(data, original);
  crypto::chacha20_xor(key.reveal(), 77, data);
  EXPECT_EQ(data, original);
}

TEST(Dh, SharedSecretIsSymmetric) {
  const Group64& g = Group64::test_group();
  auto rng_a = crypto::ChaChaRng::from_seed(1);
  auto rng_b = crypto::ChaChaRng::from_seed(2);
  const auto alice = crypto::DhKeyPair<Group64>::generate(g, rng_a);
  const auto bob = crypto::DhKeyPair<Group64>::generate(g, rng_b);
  EXPECT_EQ(
      crypto::dh_shared_element(g, alice.secret, bob.public_key).reveal(),
      crypto::dh_shared_element(g, bob.secret, alice.public_key).reveal());
  EXPECT_NE(alice.public_key, bob.public_key);
}

TEST(Dh, DirectionalKeysDifferButAgree) {
  const Group64& g = Group64::test_group();
  auto rng_a = crypto::ChaChaRng::from_seed(3);
  auto rng_b = crypto::ChaChaRng::from_seed(4);
  const auto alice = crypto::DhKeyPair<Group64>::generate(g, rng_a);
  const auto bob = crypto::DhKeyPair<Group64>::generate(g, rng_b);
  const auto shared_a =
      crypto::dh_shared_element(g, alice.secret, bob.public_key);
  const auto shared_b =
      crypto::dh_shared_element(g, bob.secret, alice.public_key);
  // Alice's outbound (0 -> 1) equals Bob's inbound (0 -> 1); comparison is
  // via the hygiene layer's constant-time equality.
  EXPECT_TRUE(ct_eq(crypto::derive_channel_key(g, shared_a, 0, 1),
                    crypto::derive_channel_key(g, shared_b, 0, 1)));
  // The reverse direction uses a different key.
  EXPECT_FALSE(ct_eq(crypto::derive_channel_key(g, shared_a, 0, 1),
                     crypto::derive_channel_key(g, shared_a, 1, 0)));
}

TEST(SecureChannel, ProtocolRunsEncryptedByDefault) {
  const auto params = proto::PublicParams<Group64>::make(
      Group64::test_group(), 5, 2, 1, 200);
  Xoshiro256ss rng(201);
  const auto instance =
      mech::make_uniform_instance(5, 2, params.bid_set(), rng);
  const auto outcome = proto::run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted);
  EXPECT_EQ(outcome.schedule, mech::run_minwork(instance).schedule);
}

TEST(SecureChannel, PlaintextModeMatchesEncryptedOutcome) {
  const auto params = proto::PublicParams<Group64>::make(
      Group64::test_group(), 5, 2, 1, 202);
  Xoshiro256ss rng(203);
  const auto instance =
      mech::make_uniform_instance(5, 2, params.bid_set(), rng);
  proto::RunConfig plain;
  plain.encrypt_channels = false;
  const auto encrypted = proto::run_honest_dmw(params, instance);
  const auto plaintext = proto::run_honest_dmw(params, instance, plain);
  ASSERT_FALSE(encrypted.aborted);
  ASSERT_FALSE(plaintext.aborted);
  EXPECT_EQ(encrypted.schedule, plaintext.schedule);
  EXPECT_EQ(encrypted.payments, plaintext.payments);
  // Encryption costs bytes (tags + key postings) but not correctness.
  EXPECT_GT(encrypted.traffic.p2p_equivalent_bytes,
            plaintext.traffic.p2p_equivalent_bytes);
}

TEST(SecureChannel, EavesdropperSeesNoShareMaterial) {
  // Capture every unicast payload via the fault injector and check the
  // plaintext share encodings never appear on the wire.
  const auto params = proto::PublicParams<Group64>::make(
      Group64::test_group(), 4, 1, 1, 204);
  Xoshiro256ss rng(205);
  const auto instance =
      mech::make_uniform_instance(4, 1, params.bid_set(), rng);
  proto::HonestStrategy<Group64> honest;
  std::vector<proto::Strategy<Group64>*> strategies(4, &honest);
  proto::ProtocolRunner<Group64> runner(params, instance, strategies);
  auto captured = std::make_shared<std::vector<std::vector<std::uint8_t>>>();
  runner.network().set_fault_injector([captured](const net::Envelope& env) {
    captured->push_back(env.payload);
    return net::FaultAction{};
  });
  const auto outcome = runner.run();
  ASSERT_FALSE(outcome.aborted);
  // Every wire payload must carry an AEAD tag's worth of expansion over the
  // 36-byte plaintext SharesMsg (4 + 4*8), plus the 4-byte nonce prefix.
  for (const auto& payload : *captured) {
    EXPECT_EQ(payload.size(), 4u + 36u + crypto::kAeadTagBytes);
  }
  EXPECT_FALSE(captured->empty());
}

TEST(SecureChannel, TamperedCiphertextAborts) {
  const auto params = proto::PublicParams<Group64>::make(
      Group64::test_group(), 4, 1, 1, 206);
  Xoshiro256ss rng(207);
  const auto instance =
      mech::make_uniform_instance(4, 1, params.bid_set(), rng);
  proto::HonestStrategy<Group64> honest;
  std::vector<proto::Strategy<Group64>*> strategies(4, &honest);
  proto::ProtocolRunner<Group64> runner(params, instance, strategies);
  runner.network().set_fault_injector([](const net::Envelope& env) {
    net::FaultAction action;
    if (env.to == 2) {
      auto corrupted = env.payload;
      if (corrupted.size() > 8) corrupted[8] ^= 1;
      action.replace_payload = std::move(corrupted);
    }
    return action;
  });
  const auto outcome = runner.run();
  ASSERT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.abort_record->reason,
            proto::AbortReason::kMalformedMessage);
  EXPECT_EQ(outcome.aborting_agent, 2u);
}

TEST(SecureChannel, WithheldKeyExchangeIsDetected) {
  // A deviant that participates but never publishes its DH key: peers
  // cannot seal shares to it, so the run aborts (strict mode).
  class WithholdKey : public proto::Strategy<Group64> {
   public:
    bool edit_key_exchange(Group64::Elem&) override { return false; }
  };
  const auto params = proto::PublicParams<Group64>::make(
      Group64::test_group(), 4, 1, 1, 208);
  Xoshiro256ss rng(209);
  const auto instance =
      mech::make_uniform_instance(4, 1, params.bid_set(), rng);
  proto::HonestStrategy<Group64> honest;
  WithholdKey deviant;
  std::vector<proto::Strategy<Group64>*> strategies(4, &honest);
  strategies[1] = &deviant;
  proto::ProtocolRunner<Group64> runner(params, instance, strategies);
  const auto outcome = runner.run();
  EXPECT_TRUE(outcome.aborted);
}

}  // namespace
}  // namespace dmw
