// Bid polynomials, shares and commitments: the Phase II objects and the
// verification identities (7)-(9) they must satisfy.
#include <gtest/gtest.h>

#include "crypto/chacha.hpp"
#include "dmw/polycommit.hpp"

namespace dmw::proto {
namespace {

using num::Group64;

const Group64& grp() { return Group64::test_group(); }

PublicParams<Group64> params8() {
  return PublicParams<Group64>::make(grp(), 8, 1, 2, 7);
}

TEST(BidPolynomials, DegreesEncodeTheBid) {
  const auto params = params8();
  auto rng = crypto::ChaChaRng::from_seed(1);
  for (mech::Cost bid : params.bid_set().values()) {
    const auto polys = BidPolynomials<Group64>::sample(params, bid, rng);
    const Group64& g = params.group();
    EXPECT_EQ(polys.bid, bid);
    EXPECT_EQ(polys.tau, params.sigma() - bid);
    EXPECT_EQ(polys.e.degree(g), polys.tau);
    EXPECT_EQ(polys.f.degree(g), params.sigma() - polys.tau);
    EXPECT_EQ(polys.g.degree(g), params.sigma());
    EXPECT_EQ(polys.h.degree(g), params.sigma());
    // All constant terms are zero (paper Eq. (3)-(4) sums start at l=1).
    for (const auto* p : {&polys.e, &polys.f, &polys.g, &polys.h})
      EXPECT_EQ(p->coeff(g, 0), g.szero());
  }
}

TEST(BidPolynomials, ProductHasDegreeSigmaAndNoLinearTerm) {
  const auto params = params8();
  auto rng = crypto::ChaChaRng::from_seed(2);
  const Group64& g = params.group();
  for (mech::Cost bid : params.bid_set().values()) {
    const auto polys = BidPolynomials<Group64>::sample(params, bid, rng);
    const auto product = polys.e.mul(g, polys.f);
    EXPECT_EQ(product.degree(g), params.sigma());
    EXPECT_EQ(product.coeff(g, 0), g.szero());
    EXPECT_EQ(product.coeff(g, 1), g.szero());  // paper: v_1 = 0
  }
}

TEST(Shares, FromPolysEvaluatesAtPseudonym) {
  const auto params = params8();
  auto rng = crypto::ChaChaRng::from_seed(3);
  const Group64& g = params.group();
  const auto polys = BidPolynomials<Group64>::sample(params, 2, rng);
  const auto alpha = params.pseudonym(3);
  const auto bundle = ShareBundle<Group64>::from_polys(g, polys, alpha);
  EXPECT_EQ(bundle.e, polys.e.eval(g, alpha));
  EXPECT_EQ(bundle.f, polys.f.eval(g, alpha));
  EXPECT_EQ(bundle.g, polys.g.eval(g, alpha));
  EXPECT_EQ(bundle.h, polys.h.eval(g, alpha));
}

TEST(Commitments, WellFormedShape) {
  const auto params = params8();
  auto rng = crypto::ChaChaRng::from_seed(4);
  const auto polys = BidPolynomials<Group64>::sample(params, 3, rng);
  const auto commitments = CommitmentVectors<Group64>::commit(params, polys);
  EXPECT_TRUE(commitments.well_formed(params));
  EXPECT_EQ(commitments.O.size(), params.sigma());
}

TEST(Commitments, HonestSharesVerifyAtEveryPseudonym) {
  const auto params = params8();
  auto rng = crypto::ChaChaRng::from_seed(5);
  const Group64& g = params.group();
  for (mech::Cost bid : {1u, 3u, 5u}) {
    const auto polys = BidPolynomials<Group64>::sample(params, bid, rng);
    const auto commitments = CommitmentVectors<Group64>::commit(params, polys);
    for (std::size_t k = 0; k < params.n(); ++k) {
      const auto alpha = params.pseudonym(k);
      const auto bundle = ShareBundle<Group64>::from_polys(g, polys, alpha);
      EXPECT_TRUE(
          verify_product_commitment(g, bundle, commitments.O, alpha));
      EXPECT_TRUE(verify_eh_commitment(
          g, bundle, gamma_value<Group64>(g, commitments.Q, alpha)));
      EXPECT_TRUE(verify_fh_commitment(
          g, bundle, phi_value<Group64>(g, commitments.R, alpha)));
    }
  }
}

TEST(Commitments, TamperedSharesFailVerification) {
  const auto params = params8();
  auto rng = crypto::ChaChaRng::from_seed(6);
  const Group64& g = params.group();
  const auto polys = BidPolynomials<Group64>::sample(params, 2, rng);
  const auto commitments = CommitmentVectors<Group64>::commit(params, polys);
  const auto alpha = params.pseudonym(1);
  auto bundle = ShareBundle<Group64>::from_polys(g, polys, alpha);

  auto tampered = bundle;
  tampered.e = g.sadd(tampered.e, g.sone());
  EXPECT_FALSE(verify_product_commitment(g, tampered, commitments.O, alpha));
  EXPECT_FALSE(verify_eh_commitment(
      g, tampered, gamma_value<Group64>(g, commitments.Q, alpha)));

  tampered = bundle;
  tampered.f = g.sadd(tampered.f, g.sone());
  EXPECT_FALSE(verify_fh_commitment(
      g, tampered, phi_value<Group64>(g, commitments.R, alpha)));

  tampered = bundle;
  tampered.h = g.sadd(tampered.h, g.sone());
  EXPECT_FALSE(verify_eh_commitment(
      g, tampered, gamma_value<Group64>(g, commitments.Q, alpha)));
}

TEST(Commitments, TamperedCommitmentVectorFailsVerification) {
  const auto params = params8();
  auto rng = crypto::ChaChaRng::from_seed(7);
  const Group64& g = params.group();
  const auto polys = BidPolynomials<Group64>::sample(params, 2, rng);
  auto commitments = CommitmentVectors<Group64>::commit(params, polys);
  std::swap(commitments.O.front(), commitments.O.back());
  const auto alpha = params.pseudonym(2);
  const auto bundle = ShareBundle<Group64>::from_polys(g, polys, alpha);
  EXPECT_FALSE(verify_product_commitment(g, bundle, commitments.O, alpha));
}

TEST(Commitments, DifferentBidsSameShapeCommitments) {
  // The commitment vectors must not reveal tau: all bids produce vectors of
  // identical length with full-looking entries (z2-only commitments are
  // indistinguishable without the DL).
  const auto params = params8();
  auto rng = crypto::ChaChaRng::from_seed(8);
  const auto lo = CommitmentVectors<Group64>::commit(
      params, BidPolynomials<Group64>::sample(params, params.bid_set().min(), rng));
  const auto hi = CommitmentVectors<Group64>::commit(
      params, BidPolynomials<Group64>::sample(params, params.bid_set().max(), rng));
  EXPECT_EQ(lo.Q.size(), hi.Q.size());
  EXPECT_EQ(lo.R.size(), hi.R.size());
  for (const auto& q : lo.Q) EXPECT_NE(q, params.group().identity());
}

TEST(CommitmentEval, EmptyVectorIsIdentity) {
  const Group64& g = grp();
  EXPECT_EQ(commitment_eval<Group64>(g, {}, 5), g.identity());
}

TEST(Commitments, SumStructureMatchesLambdaPsi) {
  // z1^{sum e_i(alpha)} * z2^{sum h_i(alpha)} must equal the product of the
  // per-agent Gamma values — the algebra behind Eq. (11).
  const auto params = params8();
  auto rng = crypto::ChaChaRng::from_seed(9);
  const Group64& g = params.group();
  std::vector<BidPolynomials<Group64>> all;
  std::vector<CommitmentVectors<Group64>> commits;
  for (std::size_t i = 0; i < params.n(); ++i) {
    all.push_back(BidPolynomials<Group64>::sample(
        params, params.bid_set().values()[i % params.bid_set().size()], rng));
    commits.push_back(CommitmentVectors<Group64>::commit(params, all.back()));
  }
  for (std::size_t k = 0; k < params.n(); ++k) {
    const auto alpha = params.pseudonym(k);
    std::uint64_t e_sum = g.szero(), h_sum = g.szero();
    auto gamma_prod = g.identity();
    for (std::size_t i = 0; i < params.n(); ++i) {
      e_sum = g.sadd(e_sum, all[i].e.eval(g, alpha));
      h_sum = g.sadd(h_sum, all[i].h.eval(g, alpha));
      gamma_prod =
          g.mul(gamma_prod, gamma_value<Group64>(g, commits[i].Q, alpha));
    }
    EXPECT_EQ(g.mul(g.pow(g.z1(), e_sum), g.pow(g.z2(), h_sum)), gamma_prod);
  }
}

}  // namespace
}  // namespace dmw::proto
