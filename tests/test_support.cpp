// Support utilities: checks, RNG, statistics, hex, logging, stopwatch.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/check.hpp"
#include "support/hex.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace dmw {
namespace {

TEST(Check, ThrowsWithExpressionAndMessage) {
  try {
    DMW_CHECK_MSG(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
}

TEST(Check, PassingConditionIsSilent) {
  EXPECT_NO_THROW(DMW_CHECK(2 + 2 == 4));
  EXPECT_NO_THROW(DMW_REQUIRE_MSG(true, "fine"));
}

TEST(Rng, SplitMix64KnownSequence) {
  // Reference values for seed 0 (widely published SplitMix64 outputs).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Rng, XoshiroDeterministic) {
  Xoshiro256ss a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256ss a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowBoundsAndCoverage) {
  Xoshiro256ss rng(7);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 10000; ++i) ++histogram[rng.below(10)];
  for (int h : histogram) {
    EXPECT_GT(h, 800);
    EXPECT_LT(h, 1200);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Xoshiro256ss rng(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Xoshiro256ss rng(8);
  EXPECT_THROW(rng.below(0), CheckError);
}

TEST(Rng, BetweenInclusive) {
  Xoshiro256ss rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval) {
  Xoshiro256ss rng(10);
  Summary s;
  for (int i = 0; i < 10000; ++i) {
    const double r = rng.real();
    ASSERT_GE(r, 0.0);
    ASSERT_LT(r, 1.0);
    s.add(r);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Xoshiro256ss a(11);
  Xoshiro256ss child = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == child.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DeterministicShuffleIsPermutationAndStable) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  Xoshiro256ss r1(5), r2(5);
  auto v1 = v, v2 = v;
  deterministic_shuffle(v1, r1);
  deterministic_shuffle(v2, r2);
  EXPECT_EQ(v1, v2);
  std::sort(v1.begin(), v1.end());
  EXPECT_EQ(v1, v);
}

TEST(Stats, SummaryMatchesClosedForm) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(Stats, LineFitExact) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{3, 5, 7, 9};  // y = 2x + 1
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, PowerLawRecoversExponent) {
  std::vector<double> x, y;
  for (double v : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    x.push_back(v);
    y.push_back(3.0 * v * v * std::sqrt(v));  // exponent 2.5
  }
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Stats, PowerLawRejectsNonPositive) {
  const std::vector<double> x{1, 2}, y{0, 3};
  EXPECT_THROW(fit_power_law(x, y), CheckError);
}

TEST(Stats, Percentiles) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
  EXPECT_THROW(percentile({}, 50), CheckError);
}

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> data{0x00, 0xff, 0x12, 0xab};
  EXPECT_EQ(to_hex(data), "00ff12ab");
  EXPECT_EQ(from_hex("00ff12ab"), data);
  EXPECT_EQ(from_hex("00FF12AB"), data);
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), CheckError);   // odd length
  EXPECT_THROW(from_hex("zz"), CheckError);    // bad digit
}

TEST(Logging, LevelGatingAndCapture) {
  auto& logger = Logger::instance();
  const auto old_level = logger.level();
  std::vector<std::string> captured;
  auto old_sink = logger.set_sink(
      [&](LogLevel, const std::string& message) { captured.push_back(message); });
  logger.set_level(LogLevel::kInfo);
  DMW_DEBUG() << "hidden";
  DMW_INFO() << "visible " << 42;
  DMW_ERROR() << "also visible";
  logger.set_sink(old_sink);
  logger.set_level(old_level);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "visible 42");
  EXPECT_EQ(captured[1], "also visible");
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kTrace), "TRACE");
}

TEST(Logging, ConcurrentStatementsDoNotInterleave) {
  // ThreadPool workers log concurrently (dmw/parallel.hpp does exactly
  // this); every emitted line must arrive at the sink whole, and a
  // concurrent set_level() must not tear. The sink runs under the logger's
  // emission mutex, so the capture vector needs no lock of its own.
  auto& logger = Logger::instance();
  const auto old_level = logger.level();
  std::vector<std::string> captured;
  auto old_sink = logger.set_sink(
      [&](LogLevel, const std::string& message) { captured.push_back(message); });
  logger.set_level(LogLevel::kInfo);

  constexpr std::size_t kMessages = 200;
  ThreadPool pool(4);
  pool.parallel_for(kMessages, [&](std::size_t i) {
    // Both levels pass the kInfo gate, so the message count stays exact
    // while the level atomic is hammered from every worker.
    logger.set_level(i % 2 == 0 ? LogLevel::kInfo : LogLevel::kDebug);
    DMW_INFO() << "worker message " << i << " part " << i * 3 << " end";
  });

  logger.set_sink(old_sink);
  logger.set_level(old_level);
  ASSERT_EQ(captured.size(), kMessages);
  std::vector<bool> seen(kMessages, false);
  for (const auto& message : captured) {
    bool matched = false;
    for (std::size_t i = 0; i < kMessages && !matched; ++i) {
      std::ostringstream expected;
      expected << "worker message " << i << " part " << i * 3 << " end";
      if (message == expected.str()) {
        EXPECT_FALSE(seen[i]) << "duplicate: " << message;
        seen[i] = true;
        matched = true;
      }
    }
    EXPECT_TRUE(matched) << "torn or interleaved line: " << message;
  }
}

TEST(Logging, StampComesFromTracerClock) {
  // The default sink prefixes lines with trace::log_stamp(): run-relative
  // "+<seconds>s" on the real clock, "t<tick>" on the logical clock, plus
  // the active span name while tracing.
  auto& tracer = trace::Tracer::instance();
  tracer.set_enabled(false);
  tracer.set_clock_mode(trace::ClockMode::kReal);
  const std::string real = trace::log_stamp();
  ASSERT_FALSE(real.empty());
  EXPECT_EQ(real.front(), '+');
  EXPECT_EQ(real.back(), 's');

  tracer.set_clock_mode(trace::ClockMode::kLogical);
  tracer.reset();
  tracer.set_enabled(true);
  {
    DMW_SPAN("support/log_stamp");
    EXPECT_EQ(trace::log_stamp(), "t0 support/log_stamp");
  }
  tracer.set_enabled(false);
  tracer.set_clock_mode(trace::ClockMode::kReal);
  tracer.reset();
}

TEST(Stopwatch, MeasuresMonotonically) {
  Stopwatch sw;
  const double t1 = sw.seconds();
  const double t2 = sw.seconds();
  EXPECT_GE(t2, t1);
  EXPECT_GE(t1, 0.0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

}  // namespace
}  // namespace dmw
