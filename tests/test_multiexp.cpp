// Straus multi-exponentiation and the optimized commitment evaluation:
// equivalence with the naive forms on both backends, plus edge cases.
#include <gtest/gtest.h>

#include "crypto/chacha.hpp"
#include "dmw/polycommit.hpp"
#include "numeric/multiexp.hpp"

namespace dmw::num {
namespace {

TEST(MultiExp, MatchesNaiveOnGroup64) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t count = 1 + rng.below(12);
    std::vector<Group64::Elem> bases;
    std::vector<Group64::Scalar> exps;
    for (std::size_t i = 0; i < count; ++i) {
      bases.push_back(g.pow(g.z1(), g.random_scalar(rng)));
      exps.push_back(g.random_scalar(rng));
    }
    EXPECT_EQ(multi_pow<Group64>(g, bases, exps),
              multi_pow_naive<Group64>(g, bases, exps));
  }
}

TEST(MultiExp, MatchesNaiveOnGroup256) {
  Xoshiro256ss grng(2);
  const Group256 g = Group256::generate(96, 64, grng);
  Xoshiro256ss rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Group256::Elem> bases;
    std::vector<Group256::Scalar> exps;
    for (std::size_t i = 0; i < 5; ++i) {
      bases.push_back(g.pow(g.z1(), g.random_scalar(rng)));
      exps.push_back(g.random_scalar(rng));
    }
    EXPECT_EQ(multi_pow<Group256>(g, bases, exps),
              multi_pow_naive<Group256>(g, bases, exps));
  }
}

TEST(MultiExp, EdgeCases) {
  const Group64& g = Group64::test_group();
  // Empty product is the identity.
  EXPECT_EQ(multi_pow<Group64>(g, {}, {}), g.identity());
  // Zero exponents contribute nothing.
  std::vector<Group64::Elem> bases{g.z1(), g.z2()};
  std::vector<Group64::Scalar> exps{0, 0};
  EXPECT_EQ(multi_pow<Group64>(g, bases, exps), g.identity());
  // Single term degenerates to pow.
  exps = {12345, 0};
  EXPECT_EQ(multi_pow<Group64>(g, bases, exps), g.pow(g.z1(), 12345));
  // Mismatched sizes rejected.
  std::vector<Group64::Scalar> short_exps{1};
  EXPECT_THROW(multi_pow<Group64>(g, bases, short_exps), CheckError);
}

TEST(MultiExp, ScalarBitHelpers) {
  const Group64& g = Group64::test_group();
  EXPECT_EQ(scalar_bit_length(g, Group64::Scalar{0}), 0u);
  EXPECT_EQ(scalar_bit_length(g, Group64::Scalar{1}), 1u);
  EXPECT_EQ(scalar_bit_length(g, Group64::Scalar{0xff}), 8u);
  EXPECT_TRUE(scalar_bit(g, Group64::Scalar{4}, 2));
  EXPECT_FALSE(scalar_bit(g, Group64::Scalar{4}, 1));
}

TEST(CommitmentEval, OptimizedMatchesNaive) {
  const Group64& g = Group64::test_group();
  const auto params = proto::PublicParams<Group64>::make(g, 8, 1, 2, 5);
  auto rng = crypto::ChaChaRng::from_seed(6);
  const auto polys = proto::BidPolynomials<Group64>::sample(params, 3, rng);
  const auto commitments =
      proto::CommitmentVectors<Group64>::commit(params, polys);
  for (std::size_t k = 0; k < params.n(); ++k) {
    const auto alpha = params.pseudonym(k);
    EXPECT_EQ(proto::commitment_eval<Group64>(g, commitments.Q, alpha),
              proto::commitment_eval_naive<Group64>(g, commitments.Q, alpha));
    EXPECT_EQ(proto::commitment_eval<Group64>(g, commitments.R, alpha),
              proto::commitment_eval_naive<Group64>(g, commitments.R, alpha));
    EXPECT_EQ(proto::commitment_eval<Group64>(g, commitments.O, alpha),
              proto::commitment_eval_naive<Group64>(g, commitments.O, alpha));
  }
}

TEST(CommitmentEval, FewerOpsThanNaive) {
  const Group64& g = Group64::test_group();
  const auto params = proto::PublicParams<Group64>::make(g, 16, 1, 3, 7);
  auto rng = crypto::ChaChaRng::from_seed(8);
  const auto polys = proto::BidPolynomials<Group64>::sample(params, 3, rng);
  const auto commitments =
      proto::CommitmentVectors<Group64>::commit(params, polys);
  const auto alpha = params.pseudonym(5);

  OpCountScope fast_scope;
  (void)proto::commitment_eval<Group64>(g, commitments.Q, alpha);
  const auto fast = fast_scope.delta();

  OpCountScope naive_scope;
  (void)proto::commitment_eval_naive<Group64>(g, commitments.Q, alpha);
  const auto naive = naive_scope.delta();

  // Under the opcount.hpp contract `mul` includes every multiplication the
  // exponentiations perform, so the two paths compare directly: the shared
  // squaring chain should save well over half the modular multiplications.
  EXPECT_LT(fast.mul * 2, naive.mul);
}

}  // namespace
}  // namespace dmw::num
