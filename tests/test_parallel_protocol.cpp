// The task-parallel engine's contract: ParallelProtocol produces Outcomes
// bit-identical to the sequential ProtocolRunner at every thread count and
// in both schedule modes (pipelined work stealing and deterministic static
// sharding) — honest runs, deviant aborts and crash-tolerant runs alike —
// and the concurrency substrate (ThreadPool's static shards, dynamic
// deque/steal scheduler and submit/drain chains; SimNetwork under concurrent
// traffic) behaves as specified. Run under TSan in CI (the `tsan` job, in
// both schedule modes) these tests double as the race-freedom proof
// obligation — including the proof that shared per-agent caches are only
// read after publication.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dmw/parallel.hpp"
#include "dmw/strategies.hpp"
#include "mech/minwork.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace dmw::proto {
namespace {

using num::Group64;

const Group64& grp() { return Group64::test_group(); }

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};
constexpr bool kScheduleModes[] = {false, true};  // deterministic_schedule

std::string schedule_name(bool deterministic) {
  return deterministic ? "static" : "dynamic";
}

// ---- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (bool deterministic : kScheduleModes) {
    ThreadPool pool(4, deterministic);
    std::vector<int> hits(1000, 0);
    std::vector<int> worker(1000, -2);
    pool.parallel_for(hits.size(), [&](std::size_t i) {
      ++hits[i];  // each index is owned by exactly one worker
      worker[i] = ThreadPool::current_worker_id();
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i], 1) << schedule_name(deterministic) << " index " << i;
      EXPECT_GE(worker[i], 0);
      EXPECT_LT(worker[i], 4);
    }
    EXPECT_EQ(ThreadPool::current_worker_id(), -1);  // off-pool thread
  }
}

TEST(ThreadPool, StaticPartitionIsContiguousPerWorker) {
  ThreadPool pool(3, /*deterministic=*/true);
  std::vector<int> worker(10, -1);
  pool.parallel_for(worker.size(), [&](std::size_t i) {
    worker[i] = ThreadPool::current_worker_id();
  });
  // Blocks [w*count/T, (w+1)*count/T): worker ids must be non-decreasing.
  for (std::size_t i = 1; i < worker.size(); ++i)
    EXPECT_LE(worker[i - 1], worker[i]);
}

TEST(ThreadPool, DynamicStealsFromSkewedLoad) {
  // Front-loaded work: the first chunk is ~100x the rest. Under the dynamic
  // scheduler the idle workers must steal the remaining chunks instead of
  // waiting at a shard boundary; every index still runs exactly once.
  ThreadPool pool(4, /*deterministic=*/false);
  std::vector<int> hits(256, 0);
  std::atomic<std::uint64_t> sink{0};
  pool.parallel_for(hits.size(), [&](std::size_t i) {
    ++hits[i];
    std::uint64_t burn = i < pool.chunk_size(hits.size()) ? 100000 : 1000;
    std::uint64_t acc = i;
    while (burn-- > 0) acc = acc * 6364136223846793005ull + 1;
    sink.fetch_add(acc, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, OversubscriptionCoversAllIndices) {
  // More workers than the host has cores (and than there are chunks):
  // stealing must terminate and cover everything exactly once.
  for (bool deterministic : kScheduleModes) {
    ThreadPool pool(16, deterministic);
    std::vector<int> hits(23, 0);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (int h : hits) EXPECT_EQ(h, 1) << schedule_name(deterministic);
  }
}

TEST(ThreadPool, HandlesFewerIndicesThanWorkers) {
  for (bool deterministic : kScheduleModes) {
    ThreadPool pool(8, deterministic);
    std::vector<int> hits(3, 0);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (int h : hits) EXPECT_EQ(h, 1) << schedule_name(deterministic);
    pool.parallel_for(0, [&](std::size_t) { FAIL() << "no indices to run"; });
  }
}

TEST(ThreadPool, PropagatesWorkerExceptions) {
  for (bool deterministic : kScheduleModes) {
    ThreadPool pool(4, deterministic);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](std::size_t i) {
                            if (i == 57)
                              throw std::runtime_error("worker failed");
                          }),
        std::runtime_error)
        << schedule_name(deterministic);
    // The pool stays usable after an exception.
    std::vector<int> hits(16, 0);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (int h : hits) EXPECT_EQ(h, 1) << schedule_name(deterministic);
  }
}

TEST(ThreadPool, SubmitChainsFromJobs) {
  // submit() from inside a job is the sanctioned way to schedule
  // continuations (the pipelined engine's per-agent chains). A binary tree
  // of spawning jobs must be counted in full by one drain().
  ThreadPool pool(4, /*deterministic=*/false);
  std::atomic<int> ran{0};
  std::function<void(int)> spawn = [&](int depth) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (depth == 0) return;
    pool.submit([&spawn, depth] { spawn(depth - 1); });
    pool.submit([&spawn, depth] { spawn(depth - 1); });
  };
  pool.submit([&spawn] { spawn(6); });
  pool.drain();
  EXPECT_EQ(ran.load(), (1 << 7) - 1);  // full binary tree, depth 6
  // The pool is reusable for another batch.
  ran.store(0);
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, NestedParallelForAndDrainRejected) {
  // parallel_for and drain are driver-only barriers: calling either from a
  // worker would deadlock the pool, so both are rejected with a CheckError
  // (which propagates to the driver at the batch boundary). submit() from a
  // worker stays legal — that is how chains grow.
  for (bool deterministic : kScheduleModes) {
    ThreadPool pool(4, deterministic);
    EXPECT_THROW(pool.parallel_for(
                     8,
                     [&](std::size_t) {
                       pool.parallel_for(2, [](std::size_t) {});
                     }),
                 dmw::CheckError)
        << schedule_name(deterministic);
    pool.submit([&pool] { pool.drain(); });
    EXPECT_THROW(pool.drain(), dmw::CheckError)
        << schedule_name(deterministic);
    // Usable after both rejections.
    std::vector<int> hits(8, 0);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (int h : hits) EXPECT_EQ(h, 1) << schedule_name(deterministic);
  }
}

// ---- Outcome bit-identity --------------------------------------------------

void expect_outcomes_identical(const Outcome& a, const Outcome& b,
                               const std::string& label) {
  ASSERT_EQ(a.aborted, b.aborted) << label;
  if (a.aborted) {
    ASSERT_TRUE(a.abort_record && b.abort_record) << label;
    EXPECT_EQ(a.abort_record->task, b.abort_record->task) << label;
    EXPECT_EQ(a.abort_record->reason, b.abort_record->reason) << label;
    EXPECT_EQ(a.aborting_agent, b.aborting_agent) << label;
  } else {
    EXPECT_EQ(a.schedule, b.schedule) << label;
    EXPECT_EQ(a.first_prices, b.first_prices) << label;
    EXPECT_EQ(a.second_prices, b.second_prices) << label;
  }
  EXPECT_EQ(a.payments, b.payments) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.transcripts_consistent, b.transcripts_consistent) << label;
  EXPECT_EQ(a.traffic.unicast_messages, b.traffic.unicast_messages) << label;
  EXPECT_EQ(a.traffic.unicast_bytes, b.traffic.unicast_bytes) << label;
  EXPECT_EQ(a.traffic.broadcast_messages, b.traffic.broadcast_messages)
      << label;
  EXPECT_EQ(a.traffic.broadcast_bytes, b.traffic.broadcast_bytes) << label;
  EXPECT_EQ(a.traffic.p2p_equivalent_messages,
            b.traffic.p2p_equivalent_messages)
      << label;
  EXPECT_EQ(a.traffic.p2p_equivalent_bytes, b.traffic.p2p_equivalent_bytes)
      << label;
  // The modular work per phase is a function of the protocol state alone,
  // never of the worker schedule: op counts must agree exactly too.
  for (std::size_t ph = 0; ph < a.phases.size(); ++ph) {
    EXPECT_EQ(a.phases[ph].ops.total(), b.phases[ph].ops.total())
        << label << " phase " << ph;
  }
}

TEST(ParallelProtocol, HonestRunsBitIdenticalAcrossThreadCounts) {
  struct Config {
    std::size_t n, m;
    std::uint64_t seed;
  };
  for (const auto& config :
       {Config{6, 4, 3}, Config{8, 6, 5}, Config{5, 1, 9}}) {
    const auto params =
        PublicParams<Group64>::make(grp(), config.n, config.m, 1, config.seed);
    Xoshiro256ss rng(config.seed * 31 + 1);
    const auto instance =
        mech::make_uniform_instance(config.n, config.m, params.bid_set(), rng);

    const auto sequential = run_honest_dmw(params, instance);
    ASSERT_FALSE(sequential.aborted);
    EXPECT_EQ(sequential.schedule, mech::run_minwork(instance).schedule);

    for (bool deterministic : kScheduleModes) {
      RunConfig run_config;
      run_config.deterministic_schedule = deterministic;
      for (std::size_t threads : kThreadCounts) {
        const auto parallel =
            run_parallel_dmw(params, instance, threads, run_config);
        expect_outcomes_identical(
            sequential, parallel,
            "n=" + std::to_string(config.n) + " m=" +
                std::to_string(config.m) + " threads=" +
                std::to_string(threads) + " " +
                schedule_name(deterministic));
      }
    }
  }
}

TEST(ParallelProtocol, SeedSweepMatchesSequential) {
  const auto params = PublicParams<Group64>::make(grp(), 6, 3, 1, 42);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Xoshiro256ss rng(seed);
    const auto instance =
        mech::make_uniform_instance(6, 3, params.bid_set(), rng);
    RunConfig config;
    config.secret_seed = seed * 1000 + 7;

    HonestStrategy<Group64> honest;
    std::vector<Strategy<Group64>*> strategies(6, &honest);
    ProtocolRunner<Group64> sequential(params, instance, strategies, config);
    const auto reference = sequential.run();

    for (bool deterministic : kScheduleModes) {
      RunConfig run_config = config;
      run_config.deterministic_schedule = deterministic;
      ParallelProtocol<Group64> runner(params, instance, strategies, 4,
                                       run_config);
      expect_outcomes_identical(reference, runner.run(),
                                "seed " + std::to_string(seed) + " " +
                                    schedule_name(deterministic));
    }
  }
}

TEST(ParallelProtocol, DeviantAbortRecordsMatchSequential) {
  const auto params = PublicParams<Group64>::make(grp(), 6, 3, 1, 2);
  Xoshiro256ss rng(11);
  const auto instance = mech::make_uniform_instance(6, 3, params.bid_set(), rng);

  // One early (Phase III.1 share verification) and one mid-run (Phase III.2
  // Lambda forgery) deviation: any worker's detected deviation must abort
  // every task at the same stage barrier the sequential runner aborts at.
  CorruptShareStrategy<Group64> corrupt(/*victim=*/1);
  BadLambdaStrategy<Group64> bad_lambda;
  for (Strategy<Group64>* deviant :
       {static_cast<Strategy<Group64>*>(&corrupt),
        static_cast<Strategy<Group64>*>(&bad_lambda)}) {
    HonestStrategy<Group64> honest;
    std::vector<Strategy<Group64>*> strategies(6, &honest);
    strategies[3] = deviant;

    ProtocolRunner<Group64> sequential(params, instance, strategies);
    const auto reference = sequential.run();
    ASSERT_TRUE(reference.aborted) << deviant->name();

    for (bool deterministic : kScheduleModes) {
      RunConfig run_config;
      run_config.deterministic_schedule = deterministic;
      for (std::size_t threads : kThreadCounts) {
        ParallelProtocol<Group64> runner(params, instance, strategies,
                                         threads, run_config);
        const auto parallel = runner.run();
        expect_outcomes_identical(reference, parallel,
                                  deviant->name() + " threads=" +
                                      std::to_string(threads) + " " +
                                      schedule_name(deterministic));
        // Abort propagation: once the deviation is detected, no later-phase
        // traffic may exist in the parallel run either.
        const auto& winner_phase =
            parallel.phases[static_cast<std::size_t>(Phase::kWinner)];
        const auto& payment_phase =
            parallel.phases[static_cast<std::size_t>(Phase::kPayments)];
        EXPECT_EQ(winner_phase.stats.broadcast_messages, 0u);
        EXPECT_EQ(payment_phase.stats.broadcast_messages, 0u);
      }
    }
  }
}

TEST(ParallelProtocol, CrashTolerantRunsMatchSequential) {
  const auto params =
      PublicParams<Group64>::make_crash_tolerant(grp(), 7, 3, 2, 21);
  Xoshiro256ss rng(77);
  const auto instance = mech::make_uniform_instance(7, 3, params.bid_set(), rng);

  CrashStrategy<Group64> crash(CrashPoint::kAfterBidding);
  HonestStrategy<Group64> honest;
  std::vector<Strategy<Group64>*> strategies(7, &honest);
  strategies[6] = &crash;
  strategies[5] = &crash;

  ProtocolRunner<Group64> sequential(params, instance, strategies);
  const auto reference = sequential.run();
  ASSERT_FALSE(reference.aborted);

  for (bool deterministic : kScheduleModes) {
    RunConfig run_config;
    run_config.deterministic_schedule = deterministic;
    for (std::size_t threads : kThreadCounts) {
      ParallelProtocol<Group64> runner(params, instance, strategies, threads,
                                       run_config);
      expect_outcomes_identical(reference, runner.run(),
                                "crash-tolerant threads=" +
                                    std::to_string(threads) + " " +
                                    schedule_name(deterministic));
    }
  }
}

TEST(ParallelProtocol, MoreThreadsThanTasksOrAgents) {
  const auto params = PublicParams<Group64>::make(grp(), 3, 1, 1, 4);
  Xoshiro256ss rng(5);
  const auto instance = mech::make_uniform_instance(3, 1, params.bid_set(), rng);
  const auto reference = run_honest_dmw(params, instance);
  for (bool deterministic : kScheduleModes) {
    RunConfig run_config;
    run_config.deterministic_schedule = deterministic;
    const auto parallel =
        run_parallel_dmw(params, instance, /*threads=*/8, run_config);
    expect_outcomes_identical(reference, parallel,
                              std::string("n=3 m=1 threads=8 ") +
                                  schedule_name(deterministic));
  }
}

// ---- Shared per-agent cache publication contract ---------------------------

// The amortized setup caches (pseudonym-power tables in PublicParams, pristine
// RNG streams inside each agent) are built once and then read concurrently by
// every worker. This test proves the publication contract two ways: the
// tables are byte-identical before and after a multi-threaded run, and a
// worker pool hammering reads against the same rows while a dynamic-schedule
// protocol run is using them stays TSan-clean (any post-publication write
// would be a data race the sanitizer job flags).
TEST(ParallelProtocol, SharedCachesImmutableAfterPublication) {
  const auto params = PublicParams<Group64>::make(grp(), 5, 4, 1, 9);
  Xoshiro256ss rng(31);
  const auto instance = mech::make_uniform_instance(5, 4, params.bid_set(), rng);

  // Snapshot the shared pseudonym-power rows before any protocol run.
  std::vector<std::vector<Group64::Scalar>> snapshot;
  for (std::size_t k = 0; k < params.n(); ++k) {
    snapshot.push_back(params.pseudonym_powers(k));
  }

  RunConfig dynamic_config;
  dynamic_config.deterministic_schedule = false;

  // Concurrent-reader hammer: while the protocol run below reads the caches
  // from its own workers, this pool re-reads every row and compares against
  // the pre-run snapshot. A mutation shows up as a value mismatch here and as
  // a race under TSan.
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> mismatches{0};
  ThreadPool readers(4, /*deterministic=*/false);
  for (std::size_t r = 0; r < 4; ++r) {
    readers.submit([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (std::size_t k = 0; k < params.n(); ++k) {
          const auto& row = params.pseudonym_powers(k);
          if (row != snapshot[k]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        std::this_thread::yield();
      }
    });
  }

  const auto reference = run_honest_dmw(params, instance);
  const auto parallel =
      run_parallel_dmw(params, instance, /*threads=*/4, dynamic_config);

  stop.store(true, std::memory_order_release);
  readers.drain();

  expect_outcomes_identical(reference, parallel, "shared-cache run");
  EXPECT_EQ(mismatches.load(), 0u);
  for (std::size_t k = 0; k < params.n(); ++k) {
    EXPECT_EQ(params.pseudonym_powers(k), snapshot[k])
        << "pseudonym powers mutated for agent " << k;
  }
}

// ---- SimNetwork under concurrent traffic -----------------------------------

TEST(SimNetworkConcurrency, StressPreservesTrafficTotals) {
  constexpr std::size_t kAgents = 4;
  constexpr std::size_t kWorkers = 8;
  constexpr std::size_t kSends = 200;
  constexpr std::size_t kPublishes = 50;

  net::SimNetwork network(kAgents);
  network.enable_concurrency(kWorkers);
  ThreadPool pool(kWorkers);

  pool.parallel_for(kWorkers, [&](std::size_t w) {
    const auto from = static_cast<net::AgentId>(w % kAgents);
    const auto to = static_cast<net::AgentId>((w + 1) % kAgents);
    for (std::size_t i = 0; i < kSends; ++i) {
      std::vector<std::uint8_t> payload((w + i) % 17 + 1, 0xab);
      network.send(from, to, /*kind=*/1, std::move(payload));
    }
    for (std::size_t i = 0; i < kPublishes; ++i) {
      std::vector<std::uint8_t> payload((w + i) % 11 + 1, 0xcd);
      network.publish(from, /*kind=*/2, std::move(payload));
    }
  });
  network.advance_round();

  // Expected totals, computed by replaying the loops serially.
  net::TrafficStats expected;
  std::vector<net::TrafficStats> expected_per_agent(kAgents);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    const std::size_t from = w % kAgents;
    for (std::size_t i = 0; i < kSends; ++i) {
      const std::uint64_t size = 12 + ((w + i) % 17 + 1);
      expected.unicast_messages += 1;
      expected.unicast_bytes += size;
      expected.p2p_equivalent_messages += 1;
      expected.p2p_equivalent_bytes += size;
      expected_per_agent[from].unicast_messages += 1;
      expected_per_agent[from].unicast_bytes += size;
    }
    for (std::size_t i = 0; i < kPublishes; ++i) {
      const std::uint64_t size = 12 + ((w + i) % 11 + 1);
      expected.broadcast_messages += 1;
      expected.broadcast_bytes += size;
      expected.p2p_equivalent_messages += kAgents - 1;
      expected.p2p_equivalent_bytes += (kAgents - 1) * size;
      expected_per_agent[from].broadcast_messages += 1;
      expected_per_agent[from].broadcast_bytes += size;
    }
  }

  EXPECT_EQ(network.stats().unicast_messages, expected.unicast_messages);
  EXPECT_EQ(network.stats().unicast_bytes, expected.unicast_bytes);
  EXPECT_EQ(network.stats().broadcast_messages, expected.broadcast_messages);
  EXPECT_EQ(network.stats().broadcast_bytes, expected.broadcast_bytes);
  EXPECT_EQ(network.stats().p2p_equivalent_messages,
            expected.p2p_equivalent_messages);
  EXPECT_EQ(network.stats().p2p_equivalent_bytes,
            expected.p2p_equivalent_bytes);
  for (std::size_t a = 0; a < kAgents; ++a) {
    EXPECT_EQ(network.stats_for(static_cast<net::AgentId>(a)).unicast_messages,
              expected_per_agent[a].unicast_messages)
        << "agent " << a;
    EXPECT_EQ(network.stats_for(static_cast<net::AgentId>(a)).unicast_bytes,
              expected_per_agent[a].unicast_bytes)
        << "agent " << a;
    EXPECT_EQ(
        network.stats_for(static_cast<net::AgentId>(a)).broadcast_messages,
        expected_per_agent[a].broadcast_messages)
        << "agent " << a;
  }

  // Every envelope is delivered exactly once, every posting became visible.
  std::size_t delivered = 0;
  for (std::size_t a = 0; a < kAgents; ++a)
    delivered += network.receive(static_cast<net::AgentId>(a)).size();
  EXPECT_EQ(delivered, kWorkers * kSends);
  EXPECT_EQ(network.bulletin().size(), kWorkers * kPublishes);
  EXPECT_EQ(network.in_flight(), 0u);
}

// Concurrent receive/read_bulletin alongside sends: the protocol never does
// this within one stage, but the lock structure must keep it safe for the
// ingest stages that drain inboxes from several agents at once.
TEST(SimNetworkConcurrency, ParallelDrainAfterParallelSend) {
  constexpr std::size_t kAgents = 8;
  net::SimNetwork network(kAgents);
  network.enable_concurrency(kAgents);
  ThreadPool pool(kAgents);

  pool.parallel_for(kAgents, [&](std::size_t w) {
    for (std::size_t to = 0; to < kAgents; ++to) {
      if (to == w) continue;
      network.send(static_cast<net::AgentId>(w),
                   static_cast<net::AgentId>(to), 7, {1, 2, 3});
    }
  });
  network.advance_round();

  std::vector<std::size_t> counts(kAgents, 0);
  pool.parallel_for(kAgents, [&](std::size_t a) {
    counts[a] = network.receive(static_cast<net::AgentId>(a)).size();
  });
  for (std::size_t a = 0; a < kAgents; ++a)
    EXPECT_EQ(counts[a], kAgents - 1) << "agent " << a;
}

}  // namespace
}  // namespace dmw::proto
