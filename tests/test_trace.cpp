// dmwtrace: span nesting/balance, the logical clock, the metrics registry,
// exporter schemas (golden files), RunReport bit-identity across thread
// counts and engines, honest-run metric invariants, and the overhead
// contract of tracing-off.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dmw/parallel.hpp"
#include "dmw/protocol.hpp"
#include "dmw/strategies.hpp"
#include "mech/minwork.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace dmw::trace {
namespace {

using num::Group64;

const Group64& grp() { return Group64::test_group(); }

/// Every test starts and ends with the process-wide tracer disabled, on the
/// real clock, with all buffers and metrics zeroed, so tests in this binary
/// cannot observe each other's state.
class Trace : public ::testing::Test {
 protected:
  void SetUp() override { restore(); }
  void TearDown() override { restore(); }

  static void restore() {
    auto& tracer = Tracer::instance();
    tracer.set_enabled(false);
    tracer.set_clock_mode(ClockMode::kReal);
    tracer.reset();
  }
};

std::uint64_t counter_value(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters,
    std::string_view name) {
  for (const auto& [key, value] : counters)
    if (key == name) return value;
  return 0;
}

TEST_F(Trace, SpanNestingBalanceAndActiveSpan) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  EXPECT_EQ(tracer.active_span(), nullptr);
  {
    DMW_SPAN("outer");
    EXPECT_STREQ(tracer.active_span(), "outer");
    {
      DMW_SPAN("inner", 7);
      EXPECT_STREQ(tracer.active_span(), "inner");
    }
    EXPECT_STREQ(tracer.active_span(), "outer");
  }
  EXPECT_EQ(tracer.active_span(), nullptr);

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // Inner completes (and is buffered) first; depths record the nesting.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].id, 7u);
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].id, kNoId);
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_LE(events[0].begin_ns, events[0].end_ns);
  EXPECT_LE(events[1].begin_ns, events[0].begin_ns);
  EXPECT_EQ(tracer.events_dropped(), 0u);
}

TEST_F(Trace, AggregateSpansByNameSorted) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  { DMW_SPAN("b/two"); }
  { DMW_SPAN("a/one"); }
  { DMW_SPAN("b/two", 3); }
  const auto aggregates = tracer.aggregate_spans();
  ASSERT_EQ(aggregates.size(), 2u);
  EXPECT_EQ(aggregates[0].name, "a/one");
  EXPECT_EQ(aggregates[0].count, 1u);
  EXPECT_EQ(aggregates[1].name, "b/two");
  EXPECT_EQ(aggregates[1].count, 2u);
}

TEST_F(Trace, LogicalClockTicksOnlyOnDemand) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  tracer.set_clock_mode(ClockMode::kLogical);
  tracer.reset();
  EXPECT_EQ(tracer.now_ns(), 0);
  {
    DMW_SPAN("round");
    tracer.tick();
    tracer.tick();
  }
  EXPECT_EQ(tracer.now_ns(), 2);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].begin_ns, 0);
  EXPECT_EQ(events[0].end_ns, 2);
}

TEST_F(Trace, DisabledTracingRecordsNothing) {
  auto& tracer = Tracer::instance();
  ASSERT_FALSE(on());
  {
    DMW_SPAN("ghost");
    EXPECT_EQ(tracer.active_span(), nullptr);
  }
  DMW_COUNT("ghost/counter", 3);
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(counter_value(counters_snapshot(), "ghost/counter"), 0u);
}

TEST_F(Trace, MetricsRegistryCountersGaugesHistograms) {
  Counter& hits = counter("test/hits");
  hits.add(2);
  hits.add();
  EXPECT_EQ(hits.value(), 3u);
  EXPECT_EQ(&hits, &counter("test/hits"));  // stable reference

  gauge("test/level").set(-4);
  EXPECT_EQ(gauge("test/level").value(), -4);

  Histogram& hist = histogram("test/sizes");
  hist.observe(0);
  hist.observe(1);
  hist.observe(5);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.sum(), 6u);
  const auto buckets = hist.buckets();
  // bucket b = bit_width(v): 0 -> 0, 1 -> 1, 5 -> 3.
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], (std::pair<unsigned, std::uint64_t>{0u, 1u}));
  EXPECT_EQ(buckets[1], (std::pair<unsigned, std::uint64_t>{1u, 1u}));
  EXPECT_EQ(buckets[2], (std::pair<unsigned, std::uint64_t>{3u, 1u}));

  // reset() zeroes values but keeps the entries (cached refs stay valid).
  Tracer::instance().reset();
  EXPECT_EQ(hits.value(), 0u);
  EXPECT_EQ(hist.count(), 0u);
  hits.add(1);
  EXPECT_EQ(counter_value(counters_snapshot(), "test/hits"), 1u);
}

// The exact RunReport schema, as a golden string. A formatting or
// field-order change here is a schema change: bump schema_version and
// update docs/tracing.md and tools/check_bench_regression.py with it.
TEST_F(Trace, RunReportGoldenSchema) {
  RunReport report;
  report.label = "golden";
  report.n = 3;
  report.m = 2;
  report.c = 1;
  report.rounds = 7;
  RunReport::PhaseRow row;
  row.name = "bidding";
  row.wall_ns = 1500;
  row.ops.mul = 4;
  row.ops.pow = 3;
  row.ops.inv = 2;
  row.ops.add = 1;
  row.unicasts = 12;
  row.broadcasts = 3;
  row.p2p_messages = 18;
  row.p2p_bytes = 2048;
  report.phases.push_back(row);
  RunReport::CommRow comm_row;
  comm_row.phase = "bidding";
  comm_row.round = 1;
  comm_row.kind = "shares";
  comm_row.sender = 2;
  comm_row.messages = 4;
  comm_row.wire_bytes = 192;
  comm_row.p2p_messages = 4;
  comm_row.p2p_bytes = 192;
  report.comm.push_back(comm_row);
  SpanAggregate span;
  span.name = "phase3/lambda_psi";
  span.count = 2;
  span.total_ns = 10;
  span.ops.pow = 6;
  report.spans.push_back(span);
  report.counters = {{"batchverify/batches", 2}};
  report.gauges = {{"net/bulletin_postings", 40}};
  HistogramSnapshot hist;
  hist.name = "net/round_p2p_messages";
  hist.count = 2;
  hist.sum = 3;
  hist.buckets = {{1u, 1u}, {2u, 1u}};
  report.histograms.push_back(hist);

  const std::string expected =
      R"({"report":"dmw-run","bench":"runreport","schema_version":2,)"
      R"("label":"golden","n":3,"m":2,"c":1,"aborted":false,)"
      R"("abort_reason":"","rounds":7,"phases":[{"phase":"bidding",)"
      R"("wall_ns":1500,"ops":{"mul":4,"pow":3,"inv":2,"add":1,"total":10},)"
      R"("unicasts":12,"broadcasts":3,"p2p_messages":18,"p2p_bytes":2048}],)"
      R"("comm_report":[{"phase":"bidding","round":1,"kind":"shares",)"
      R"("sender":2,"messages":4,"wire_bytes":192,"p2p_messages":4,)"
      R"("p2p_bytes":192}],)"
      R"("spans":[{"name":"phase3/lambda_psi","count":2,"total_ns":10,)"
      R"("ops":{"mul":0,"pow":6,"inv":0,"add":0,"total":6}}],)"
      R"("metrics":{"counters":{"batchverify/batches":2},)"
      R"("gauges":{"net/bulletin_postings":40},)"
      R"("histograms":[{"name":"net/round_p2p_messages","count":2,"sum":3,)"
      R"("buckets":[{"pow2":1,"count":1},{"pow2":2,"count":1}]}]},)"
      R"("events_dropped":0})";
  EXPECT_EQ(report.json(), expected);
}

// The Chrome exporter's schema, pinned the same way (one driver-thread span
// under the logical clock, so every field is deterministic).
TEST_F(Trace, ChromeTraceGoldenSchema) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  tracer.set_clock_mode(ClockMode::kLogical);
  tracer.reset();
  {
    DMW_SPAN("alpha", 3);
    tracer.tick();
  }
  const std::string expected =
      R"({"traceEvents":[{"name":"thread_name","ph":"M","pid":1,"tid":0,)"
      R"("args":{"name":"driver"}},{"name":"alpha","cat":"dmw","ph":"X",)"
      R"("ts":0,"dur":0,"pid":1,"tid":0,"args":{"id":3,"depth":0,)"
      R"("begin_ns":0,"end_ns":1,)"
      R"("ops":{"mul":0,"pow":0,"inv":0,"add":0,"total":0}}}],)"
      R"("displayTimeUnit":"ms"})";
  EXPECT_EQ(tracer.chrome_trace_json(), expected);
}

TEST_F(Trace, RunReportBitIdenticalAcrossThreadCountsAndEngines) {
  auto params = proto::PublicParams<Group64>::make(grp(), 8, 3, 2, 77);
  params.set_tracing(true);
  Xoshiro256ss rng(78);
  const auto instance =
      mech::make_uniform_instance(8, 3, params.bid_set(), rng);
  auto& tracer = Tracer::instance();

  std::string reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    tracer.set_clock_mode(ClockMode::kLogical);
    tracer.reset();
    const auto outcome = proto::run_parallel_dmw(params, instance, threads);
    tracer.set_enabled(false);
    ASSERT_FALSE(outcome.aborted) << "threads=" << threads;
    const std::string json = proto::make_run_report(params, outcome).json();
    if (reference.empty()) reference = json;
    EXPECT_EQ(json, reference) << "threads=" << threads;
  }

  // The sequential driver reproduces the identical report: the spans and
  // metrics are a property of the protocol, not of the execution engine.
  tracer.set_clock_mode(ClockMode::kLogical);
  tracer.reset();
  const auto outcome = proto::run_honest_dmw(params, instance);
  tracer.set_enabled(false);
  ASSERT_FALSE(outcome.aborted);
  EXPECT_EQ(proto::make_run_report(params, outcome).json(), reference);
}

TEST_F(Trace, HonestRunMetricInvariants) {
  auto params = proto::PublicParams<Group64>::make(grp(), 6, 2, 1, 50);
  params.set_tracing(true);
  Xoshiro256ss rng(51);
  const auto instance =
      mech::make_uniform_instance(6, 2, params.bid_set(), rng);
  Tracer::instance().reset();
  const auto outcome = proto::run_honest_dmw(params, instance);
  Tracer::instance().set_enabled(false);
  ASSERT_FALSE(outcome.aborted);
  const auto report = proto::make_run_report(params, outcome);

  // The invariants tools/check_bench_regression.py gates in CI.
  EXPECT_GT(counter_value(report.counters, "batchverify/batches"), 0u);
  EXPECT_GT(counter_value(report.counters, "batchverify/checks_batched"), 0u);
  EXPECT_GT(counter_value(report.counters, "expwin/fixedbase_evals"), 0u);
  EXPECT_EQ(counter_value(report.counters, "batchverify/replays"), 0u);
  for (const auto& [name, value] : report.counters)
    EXPECT_FALSE(name.starts_with("aborts/")) << name << "=" << value;
  EXPECT_EQ(report.events_dropped, 0u);

  // The network observes the traffic histograms exactly once per round.
  const auto hist = std::find_if(
      report.histograms.begin(), report.histograms.end(),
      [](const HistogramSnapshot& h) {
        return h.name == "net/round_p2p_messages";
      });
  ASSERT_NE(hist, report.histograms.end());
  EXPECT_EQ(hist->count, outcome.rounds);

  // The span table covers the Phase III price resolution of the paper.
  const bool has_resolution = std::any_of(
      report.spans.begin(), report.spans.end(), [](const SpanAggregate& s) {
        return s.name == "phase3/price_resolution";
      });
  EXPECT_TRUE(has_resolution);
}

TEST_F(Trace, DeviantRunCountsReplaysAndAborts) {
  auto params = proto::PublicParams<Group64>::make(grp(), 6, 2, 1, 52);
  params.set_tracing(true);
  Xoshiro256ss rng(53);
  const auto instance =
      mech::make_uniform_instance(6, 2, params.bid_set(), rng);
  Tracer::instance().reset();

  proto::HonestStrategy<Group64> honest;
  proto::InconsistentCommitmentsStrategy<Group64> deviant;
  std::vector<proto::Strategy<Group64>*> strategies(6, &honest);
  strategies[0] = &deviant;
  proto::ProtocolRunner<Group64> runner(params, instance, strategies);
  const auto outcome = runner.run();
  Tracer::instance().set_enabled(false);
  ASSERT_TRUE(outcome.aborted);
  ASSERT_TRUE(outcome.abort_record.has_value());
  EXPECT_EQ(outcome.abort_record->reason,
            proto::AbortReason::kBadShareCommitment);

  // The failed batch was replayed sequentially for attribution, and the
  // abort shows up both in the total and under its reason.
  const auto counters = counters_snapshot();
  EXPECT_GE(counter_value(counters, "batchverify/replays"), 1u);
  EXPECT_GE(counter_value(counters, "aborts/total"), 1u);
  const std::string by_reason =
      std::string("aborts/") +
      proto::to_string(proto::AbortReason::kBadShareCommitment);
  EXPECT_GE(counter_value(counters, by_reason), 1u);
}

// Overhead contract: with tracing off (the default), instrumented code pays
// one relaxed load + branch per span. A full honest run with tracing off
// must not be slower than the same run with tracing on (plus generous noise
// margin) — if it were, the off path would be doing real work.
TEST_F(Trace, TracingOffOverheadSoak) {
  const std::size_t n = 8, m = 3;
  auto params = proto::PublicParams<Group64>::make(grp(), n, m, 2, 91);
  Xoshiro256ss rng(92);
  const auto instance =
      mech::make_uniform_instance(n, m, params.bid_set(), rng);

  const auto median_of_5 = [&]() {
    std::vector<double> seconds;
    for (int i = 0; i < 5; ++i) {
      if (on()) Tracer::instance().reset();
      Stopwatch stopwatch;
      const auto outcome = proto::run_honest_dmw(params, instance);
      seconds.push_back(stopwatch.seconds());
      EXPECT_FALSE(outcome.aborted);
    }
    std::sort(seconds.begin(), seconds.end());
    return seconds[2];
  };

  const double off_s = median_of_5();
  params.set_tracing(true);
  Tracer::instance().reset();
  const double on_s = median_of_5();
  Tracer::instance().set_enabled(false);

  EXPECT_LE(off_s, on_s * 1.25 + 0.05)
      << "tracing-off run slower than tracing-on: off=" << off_s
      << "s on=" << on_s << "s";
}

}  // namespace
}  // namespace dmw::trace
