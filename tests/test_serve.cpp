// Server mode: request-stream determinism, arrival statistics, the
// steady-state contract (zero arena growth after warmup, allocation-free
// bookkeeping via a counting operator new), and the identity contract
// (per-auction Outcomes byte-identical to the one-shot sequential runner at
// every thread count and schedule mode, pinned by the stream digest).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "dmw/serve.hpp"
#include "numeric/group.hpp"
#include "support/stats.hpp"

// ---- Counting operator new -------------------------------------------------
// Thread-local allocation counter: the steady-state tests assert that the
// per-auction bookkeeping path (latency record + window summaries, arena
// cycles) performs zero heap allocations once warmed up.
namespace {
thread_local std::uint64_t t_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++t_allocations;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  ++t_allocations;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dmw::proto {
namespace {

using num::Group64;

const Group64& grp() { return Group64::test_group(); }

// ---- Request stream --------------------------------------------------------

TEST(ServeStream, GeneratorIsDeterministic) {
  ArrivalProcess a1(ArrivalProcess::Mode::kPoisson, 250.0, 7);
  ArrivalProcess a2(ArrivalProcess::Mode::kPoisson, 250.0, 7);
  const auto s1 = make_request_stream(64, 42, WorkloadKind::kMachine, a1);
  const auto s2 = make_request_stream(64, 42, WorkloadKind::kMachine, a2);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].id, i);
    EXPECT_EQ(s1[i].seed, 42 + i);
    EXPECT_EQ(s1[i].workload, WorkloadKind::kMachine);
    EXPECT_EQ(s1[i].arrival_ns, s2[i].arrival_ns);
  }
  // Arrivals are strictly ordered and (at 250/s) strictly increasing with
  // overwhelming probability over 64 draws.
  for (std::size_t i = 1; i < s1.size(); ++i)
    EXPECT_GE(s1[i].arrival_ns, s1[i - 1].arrival_ns);
}

TEST(ServeStream, InstanceDerivationMatchesOneShotDriver) {
  // make_workload_instance(seed) must equal the generator seeded with
  // seed*3+1 — dmw_sim's derivation, so --instance-seed replays it.
  const mech::BidSet bids = PublicParams<Group64>::make(grp(), 5, 3, 1, 9)
                                .bid_set();
  Xoshiro256ss rng(11 * 3 + 1);
  const auto direct = mech::make_uniform_instance(5, 3, bids, rng);
  const auto served =
      make_workload_instance(WorkloadKind::kUniform, 5, 3, bids, 11);
  EXPECT_EQ(direct.cost, served.cost);
}

TEST(ServeStream, SecretSeedDerivationDecorrelatesRequests) {
  const std::uint64_t base = RunConfig{}.secret_seed;
  EXPECT_EQ(serve_secret_seed(base, 0), base);  // request 0 = one-shot default
  EXPECT_NE(serve_secret_seed(base, 1), serve_secret_seed(base, 2));
  EXPECT_NE(serve_secret_seed(base, 1), base);
}

TEST(ServeStream, FixedAndPoissonArrivalStatistics) {
  ArrivalProcess fixed(ArrivalProcess::Mode::kFixed, 1000.0, 1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fixed.next_gap_ns(), 1000000);

  // Poisson at 1e6/s: mean gap 1000ns. 40k draws put the sample mean within
  // a few percent with overwhelming probability.
  ArrivalProcess poisson(ArrivalProcess::Mode::kPoisson, 1e6, 3);
  double sum = 0;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i)
    sum += static_cast<double>(poisson.next_gap_ns());
  const double mean = sum / draws;
  EXPECT_GT(mean, 900.0);
  EXPECT_LT(mean, 1100.0);
}

// ---- Latency bookkeeping ---------------------------------------------------

TEST(LatencyRecorder, MatchesStatsPercentile) {
  LatencyRecorder recorder(128);
  std::vector<double> reference;
  for (int i = 1; i <= 100; ++i) {
    recorder.record(i * 1000000);  // 1..100 ms
    reference.push_back(static_cast<double>(i));
  }
  const auto s = recorder.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.p50_ms, percentile(reference, 50.0), 1e-9);
  EXPECT_NEAR(s.p95_ms, percentile(reference, 95.0), 1e-9);
  EXPECT_NEAR(s.p99_ms, percentile(reference, 99.0), 1e-9);
  EXPECT_NEAR(s.max_ms, 100.0, 1e-9);
  EXPECT_NEAR(s.mean_ms, 50.5, 1e-9);

  // Window summary covers only the trailing records.
  const auto tail = recorder.summary(10);
  EXPECT_EQ(tail.count, 10u);
  EXPECT_NEAR(tail.mean_ms, 95.5, 1e-9);
}

TEST(LatencyRecorder, SteadyStateRecordingIsAllocationFree) {
  LatencyRecorder recorder(4096);
  for (int i = 0; i < 100; ++i) recorder.record(i);  // warm the scratch
  (void)recorder.summary(50);
  const std::uint64_t before = t_allocations;
  for (int i = 0; i < 2000; ++i) recorder.record(i * 17);
  (void)recorder.summary(500);
  (void)recorder.summary();
  EXPECT_EQ(t_allocations, before);
}

TEST(Arena, SteadyStateCyclesAreAllocationFree) {
  Arena arena(8 * 1024);
  for (int cycle = 0; cycle < 3; ++cycle) {  // warm the slab chain
    for (int i = 0; i < 40; ++i) arena.allocate(100, 8);
    arena.reset();
  }
  const std::uint64_t before = t_allocations;
  for (int cycle = 0; cycle < 200; ++cycle) {
    for (int i = 0; i < 40; ++i) arena.allocate(100, 8);
    arena.reset();
  }
  EXPECT_EQ(t_allocations, before);
  EXPECT_EQ(arena.stats().slab_allocations, 1u);
}

// ---- Engine identity and steady state --------------------------------------

ServeEngine<Group64>::Config engine_config(std::size_t threads,
                                           bool deterministic,
                                           bool check_oneshot) {
  ServeEngine<Group64>::Config config;
  config.threads = threads;
  config.deterministic_schedule = deterministic;
  config.check_oneshot = check_oneshot;
  return config;
}

/// Run `count` auctions through a fresh engine and return the stream digest.
std::string run_stream_digest(const PublicParams<Group64>& params,
                              const std::vector<AuctionRequest>& stream,
                              std::size_t threads, bool deterministic,
                              bool check_oneshot) {
  ServeEngine<Group64> engine(
      params, engine_config(threads, deterministic, check_oneshot));
  for (const auto& request : stream) {
    const Outcome& outcome = engine.run_auction(request);
    EXPECT_FALSE(outcome.aborted) << "request " << request.id;
  }
  EXPECT_EQ(engine.aborted(), 0u);
  EXPECT_EQ(engine.oneshot_mismatches(), 0u);
  return engine.outcome_digest();
}

TEST(ServeEngine, OutcomesIdenticalToOneShotAcrossThreadsAndSchedules) {
  const auto params = PublicParams<Group64>::make(grp(), 5, 2, 1, 21);
  ArrivalProcess arrivals(ArrivalProcess::Mode::kAsap, 0.0, 0);
  const auto stream =
      make_request_stream(10, 21, WorkloadKind::kUniform, arrivals);

  // threads=1 with the sequential cross-check anchors the digest; every
  // other (threads, schedule) combination must reproduce it bit for bit.
  const std::string anchor =
      run_stream_digest(params, stream, 1, false, /*check_oneshot=*/true);
  EXPECT_EQ(anchor, run_stream_digest(params, stream, 4, false,
                                      /*check_oneshot=*/true));
  EXPECT_EQ(anchor, run_stream_digest(params, stream, 4, true, false));
  EXPECT_EQ(anchor, run_stream_digest(params, stream, 2, true, false));
}

TEST(ServeEngine, MixedWorkloadStreamStaysIdentical) {
  const auto params = PublicParams<Group64>::make(grp(), 4, 2, 1, 5);
  std::vector<AuctionRequest> stream;
  const WorkloadKind kinds[] = {WorkloadKind::kUniform, WorkloadKind::kMachine,
                                WorkloadKind::kTask, WorkloadKind::kWorst};
  for (std::uint64_t i = 0; i < 8; ++i)
    stream.push_back(AuctionRequest{i, 5 + i, kinds[i % 4], 0});
  const std::string anchor = run_stream_digest(params, stream, 1, false, true);
  EXPECT_EQ(anchor, run_stream_digest(params, stream, 4, false, false));
}

TEST(ServeEngine, SteadyStateHasZeroArenaGrowth) {
  const auto params = PublicParams<Group64>::make(grp(), 4, 1, 1, 3);
  ArrivalProcess arrivals(ArrivalProcess::Mode::kAsap, 0.0, 0);
  const auto stream =
      make_request_stream(60, 3, WorkloadKind::kUniform, arrivals);
  ServeEngine<Group64> engine(params, engine_config(2, false, false));

  const std::size_t warmup = 8;
  std::size_t slabs_at_warmup = 0;
  for (const auto& request : stream) {
    engine.run_auction(request);
    if (engine.auctions() == warmup)
      slabs_at_warmup = engine.arena_stats().slab_allocations;
  }
  EXPECT_EQ(engine.aborted(), 0u);
  const auto arena = engine.arena_stats();
  EXPECT_GT(arena.slab_allocations, 0u);  // the arena is actually in use
  EXPECT_EQ(arena.slab_allocations, slabs_at_warmup)
      << "steady state allocated new arena slabs after warmup";
  EXPECT_EQ(arena.resets, 60u * engine.arenas().size());
}

TEST(ServeEngine, AbortedAuctionsAreCountedAndDigested) {
  // A one-task instance where agent secrets collide enough to abort is hard
  // to fabricate honestly; instead check the bookkeeping contract directly:
  // honest streams count zero aborts and the digest moves per auction.
  const auto params = PublicParams<Group64>::make(grp(), 4, 1, 1, 13);
  ServeEngine<Group64> engine(params, engine_config(1, false, false));
  const std::string empty = engine.outcome_digest();
  engine.run_auction(AuctionRequest{0, 13, WorkloadKind::kUniform, 0});
  const std::string one = engine.outcome_digest();
  EXPECT_NE(empty, one);
  engine.run_auction(AuctionRequest{1, 14, WorkloadKind::kUniform, 0});
  EXPECT_NE(one, engine.outcome_digest());
  EXPECT_EQ(engine.auctions(), 2u);
  EXPECT_EQ(engine.aborted(), 0u);
}

}  // namespace
}  // namespace dmw::proto
