// Shamir free-term sharing, and the contrast with DMW's degree encoding
// that the paper calls out in §3.
#include <gtest/gtest.h>

#include "crypto/chacha.hpp"
#include "poly/shamir.hpp"

namespace dmw::poly {
namespace {

using num::Group64;
using Sharing = ShamirSharing<Group64>;

const Group64& grp() { return Group64::test_group(); }

std::vector<std::uint64_t> points_for(const Group64& g, std::size_t n,
                                      std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<std::uint64_t> points;
  while (points.size() < n) {
    const auto candidate = g.random_nonzero_scalar(rng);
    if (std::find(points.begin(), points.end(), candidate) == points.end())
      points.push_back(candidate);
  }
  return points;
}

TEST(Shamir, SplitReconstructRoundTrip) {
  const Group64& g = grp();
  auto rng = crypto::ChaChaRng::from_seed(1);
  const auto points = points_for(g, 7, 2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto secret = g.random_scalar(rng);
    const auto sharing = Sharing::split(g, secret, 4, points, rng);
    for (std::size_t count = 4; count <= 7; ++count)
      EXPECT_EQ(sharing.reconstruct(g, count), secret);
  }
}

TEST(Shamir, BelowThresholdRefuses) {
  const Group64& g = grp();
  auto rng = crypto::ChaChaRng::from_seed(3);
  const auto points = points_for(g, 5, 4);
  const auto sharing = Sharing::split(g, 42, 3, points, rng);
  EXPECT_THROW(sharing.reconstruct(g, 2), CheckError);
}

TEST(Shamir, BelowThresholdSharesAreUninformative) {
  // With t-1 shares, every candidate secret is equally consistent: the
  // interpolation through t-1 points plus any hypothesized secret at zero
  // is a valid polynomial. Spot-check: two different secrets can produce
  // the *same* t-1 shares under different randomness.
  const Group64& g = grp();
  const auto points = points_for(g, 4, 5);
  // Directly: the t-1 interpolation of the real shares is (w.h.p.) NOT the
  // secret — partial shares do not leak it.
  auto rng = crypto::ChaChaRng::from_seed(6);
  int leaks = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto secret = g.random_scalar(rng);
    const auto sharing = Sharing::split(g, secret, 3, points, rng);
    const auto guess =
        interpolate_at_zero(g, sharing.points(), sharing.shares(), 2);
    if (guess == secret) ++leaks;
  }
  EXPECT_EQ(leaks, 0);
}

TEST(Shamir, AdditiveHomomorphism) {
  const Group64& g = grp();
  auto rng = crypto::ChaChaRng::from_seed(7);
  const auto points = points_for(g, 6, 8);
  const std::uint64_t s1 = 111, s2 = 222;
  const auto a = Sharing::split(g, s1, 3, points, rng);
  const auto b = Sharing::split(g, s2, 3, points, rng);
  const auto sum = Sharing::add(g, a, b);
  EXPECT_EQ(sum.reconstruct(g, 3), g.sadd(s1, s2));
}

TEST(Shamir, ThresholdOneIsPlainReplication) {
  const Group64& g = grp();
  auto rng = crypto::ChaChaRng::from_seed(9);
  const auto points = points_for(g, 3, 10);
  const auto sharing = Sharing::split(g, 77, 1, points, rng);
  for (const auto& share : sharing.shares()) EXPECT_EQ(share, 77u);
}

TEST(Shamir, ContrastWithDegreeEncoding) {
  // The paper's design rationale, executable: summing FREE-TERM sharings
  // yields the SUM of the secrets (useless for a minimum), while summing
  // DEGREE-encoded sharings yields the MAX of the degrees (which is how
  // DMW computes the minimum bid, bids being encoded inversely).
  const Group64& g = grp();
  auto rng = crypto::ChaChaRng::from_seed(11);
  const auto points = points_for(g, 10, 12);

  // Free-term encoding of "bids" 2 and 5.
  const auto shamir_a = Sharing::split(g, 2, 4, points, rng);
  const auto shamir_b = Sharing::split(g, 5, 4, points, rng);
  const auto shamir_sum = Sharing::add(g, shamir_a, shamir_b);
  EXPECT_EQ(shamir_sum.reconstruct(g, 4), 7u);  // 2+5: not min, not max

  // Degree encoding of the same bids (degree = bid here for clarity).
  const auto deg_a = Polynomial<Group64>::random_zero_const(g, 2, rng);
  const auto deg_b = Polynomial<Group64>::random_zero_const(g, 5, rng);
  const auto sum = deg_a.add(g, deg_b);
  const auto resolution =
      resolve_degree(g, points, sum.eval_all(g, points));
  ASSERT_TRUE(resolution.degree.has_value());
  EXPECT_EQ(*resolution.degree, 5u);  // max of the encoded values
}

TEST(Shamir, RejectsBadArguments) {
  const Group64& g = grp();
  auto rng = crypto::ChaChaRng::from_seed(13);
  const auto points = points_for(g, 3, 14);
  EXPECT_THROW(Sharing::split(g, 1, 0, points, rng), CheckError);
  EXPECT_THROW(Sharing::split(g, 1, 4, points, rng), CheckError);
}

}  // namespace
}  // namespace dmw::poly
