// The Vickrey auction and the centralized MinWork mechanism
// (paper Definition 5, Theorem 2 and the Table 1 cost remarks).
#include <gtest/gtest.h>

#include "mech/minwork.hpp"
#include "mech/opt.hpp"
#include "mech/truthful.hpp"

namespace dmw::mech {
namespace {

TEST(Vickrey, WinnerAndPrices) {
  const auto out = run_vickrey({5, 2, 9, 4});
  EXPECT_EQ(out.winner, 1u);
  EXPECT_EQ(out.first_price, 2u);
  EXPECT_EQ(out.second_price, 4u);
  EXPECT_FALSE(out.tie);
}

TEST(Vickrey, TieGoesToSmallestIndex) {
  const auto out = run_vickrey({3, 1, 1, 5});
  EXPECT_EQ(out.winner, 1u);
  EXPECT_EQ(out.first_price, 1u);
  EXPECT_EQ(out.second_price, 1u);
  EXPECT_TRUE(out.tie);
}

TEST(Vickrey, TwoBidders) {
  const auto out = run_vickrey({7, 3});
  EXPECT_EQ(out.winner, 1u);
  EXPECT_EQ(out.second_price, 7u);
}

TEST(Vickrey, AllEqualBids) {
  const auto out = run_vickrey({4, 4, 4});
  EXPECT_EQ(out.winner, 0u);
  EXPECT_EQ(out.second_price, 4u);
  EXPECT_TRUE(out.tie);
}

TEST(Vickrey, RequiresTwoBidders) {
  EXPECT_THROW(run_vickrey({1}), CheckError);
}

TEST(MinWork, AllocationIsArgmin) {
  Xoshiro256ss rng(80);
  const auto instance = make_uniform_instance(5, 6, BidSet::iota(3), rng);
  const auto out = run_minwork(instance);
  out.schedule.validate(instance);
  for (std::size_t j = 0; j < instance.m; ++j) {
    const std::size_t w = out.schedule.agent_for(j);
    for (std::size_t i = 0; i < instance.n; ++i) {
      EXPECT_GE(instance.cost[i][j], instance.cost[w][j]);
      if (instance.cost[i][j] == instance.cost[w][j])
        EXPECT_GE(i, w);  // smallest-index tie-break
    }
  }
}

TEST(MinWork, PaymentsAreSecondPrices) {
  SchedulingInstance instance{3, 2, {{1, 5}, {2, 4}, {3, 3}}};
  const auto out = run_minwork(instance);
  // T1 -> A1 (pays 2), T2 -> A3 (pays 4).
  EXPECT_EQ(out.schedule.agent_for(0), 0u);
  EXPECT_EQ(out.schedule.agent_for(1), 2u);
  EXPECT_EQ(out.payments, (std::vector<std::uint64_t>{2, 0, 4}));
}

TEST(MinWork, MinimizesTotalWork) {
  // MinWork's allocation minimizes total work over all schedules: verify
  // by exhaustive enumeration on a small instance.
  Xoshiro256ss rng(81);
  const auto instance = make_uniform_instance(3, 4, BidSet::iota(4), rng);
  const auto out = run_minwork(instance);
  const std::uint64_t minwork_total = out.schedule.total_work(instance);
  for (std::size_t code = 0; code < 81; ++code) {  // 3^4 assignments
    std::size_t c = code;
    std::vector<std::size_t> assign(4);
    for (auto& a : assign) {
      a = c % 3;
      c /= 3;
    }
    EXPECT_LE(minwork_total, Schedule(assign).total_work(instance));
  }
}

TEST(MinWork, TruthfulUtilityIsNonNegative) {
  // Voluntary participation (Definition 4).
  Xoshiro256ss rng(82);
  for (int trial = 0; trial < 20; ++trial) {
    const auto instance = make_uniform_instance(4, 3, BidSet::iota(3), rng);
    const auto bids = truthful_bids(instance);
    for (std::size_t i = 0; i < instance.n; ++i)
      EXPECT_GE(minwork_utility(instance, bids, i), 0);
  }
}

TEST(MinWork, CostAccountingShape) {
  Xoshiro256ss rng(83);
  const auto small = run_minwork(make_uniform_instance(4, 2, BidSet::iota(2), rng));
  const auto large = run_minwork(make_uniform_instance(8, 4, BidSet::iota(2), rng));
  // Θ(mn) elementary operations: m * (2(n-1) + 1).
  EXPECT_EQ(small.comparisons, 2u * (2 * 3 + 1));
  EXPECT_EQ(large.comparisons, 4u * (2 * 7 + 1));
  EXPECT_EQ(small.message_count, 8u);   // 2n
  EXPECT_EQ(large.message_count, 16u);
}

TEST(MinWork, NApproximationBoundHolds) {
  // Theorem (Nisan-Ronen): MinWork makespan <= n * OPT makespan.
  Xoshiro256ss rng(84);
  for (int trial = 0; trial < 10; ++trial) {
    const auto instance = make_uniform_instance(4, 6, BidSet::iota(3), rng);
    const auto mw = run_minwork(instance);
    const auto opt = optimal_makespan(instance);
    EXPECT_LE(mw.schedule.makespan(instance), instance.n * opt.makespan);
  }
}

TEST(MinWork, WorstCaseApproachesFactorN) {
  // The adversarial instance drives the ratio to ~n (for m = n tasks).
  const std::size_t n = 4;
  const auto instance = make_minwork_worst_case(n, n, BidSet::iota(3));
  const auto mw = run_minwork(instance);
  const auto opt = optimal_makespan(instance);
  const double ratio = static_cast<double>(mw.schedule.makespan(instance)) /
                       static_cast<double>(opt.makespan);
  EXPECT_GE(ratio, static_cast<double>(n) / 2.0);
  EXPECT_LE(ratio, static_cast<double>(n));
}

TEST(MinWork, RejectsDegenerateInput) {
  EXPECT_THROW(run_minwork(BidMatrix{{1, 2}}), CheckError);       // 1 agent
  EXPECT_THROW(run_minwork(BidMatrix{{1, 2}, {1}}), CheckError);  // ragged
}

}  // namespace
}  // namespace dmw::mech
