// SHA-256 / HMAC / HKDF / ChaCha20 against published test vectors, plus the
// deterministic CSPRNG and the protocol transcript.
#include <gtest/gtest.h>

#include <string>

#include "crypto/chacha.hpp"
#include "crypto/sha256.hpp"
#include "crypto/transcript.hpp"
#include "support/hex.hpp"

namespace dmw::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Sha256, Fips180EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Fips180Abc) {
  EXPECT_EQ(digest_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, Fips180TwoBlockMessage) {
  EXPECT_EQ(digest_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, Fips180MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string message = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= message.size(); split += 7) {
    Sha256 h;
    h.update(message.substr(0, split));
    h.update(message.substr(split));
    EXPECT_EQ(digest_hex(h.finish()), digest_hex(Sha256::hash(message)));
  }
}

TEST(Sha256, ExactBlockBoundaryPadding) {
  // 55, 56 and 64 byte messages exercise all padding branches.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string message(len, 'x');
    Sha256 a;
    a.update(message);
    Sha256 b;
    for (char c : message) b.update(std::string_view(&c, 1));
    EXPECT_EQ(digest_hex(a.finish()), digest_hex(b.finish())) << len;
  }
}

TEST(Sha256, ReuseAfterFinishRequiresReset) {
  Sha256 h;
  h.update("abc");
  (void)h.finish();
  EXPECT_THROW(h.update("more"), dmw::CheckError);
  h.reset();
  h.update("abc");
  EXPECT_EQ(digest_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto mac = hmac_sha256(key, bytes_of("Hi There"));
  EXPECT_EQ(digest_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto mac =
      hmac_sha256(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(digest_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3LongKeyData) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6KeyLargerThanBlock) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto mac = hmac_sha256(
      key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(digest_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hkdf, Rfc5869Case1) {
  const std::vector<std::uint8_t> ikm(22, 0x0b);
  const auto salt = dmw::from_hex("000102030405060708090a0b0c");
  std::string info;
  for (int i = 0xf0; i <= 0xf9; ++i) info.push_back(static_cast<char>(i));
  const auto okm = hkdf_sha256(ikm, salt, info, 42);
  EXPECT_EQ(dmw::to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, LengthControl) {
  const std::vector<std::uint8_t> ikm(16, 1);
  const std::vector<std::uint8_t> salt;
  EXPECT_EQ(hkdf_sha256(ikm, salt, "x", 0).size(), 0u);
  EXPECT_EQ(hkdf_sha256(ikm, salt, "x", 33).size(), 33u);
  EXPECT_EQ(hkdf_sha256(ikm, salt, "x", 100).size(), 100u);
  // Prefix property: shorter output is a prefix of longer output.
  const auto a = hkdf_sha256(ikm, salt, "x", 40);
  const auto b = hkdf_sha256(ikm, salt, "x", 80);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(ChaCha20, Rfc8439BlockFunction) {
  std::array<std::uint32_t, 8> key;
  for (int i = 0; i < 8; ++i)
    key[i] = static_cast<std::uint32_t>(4 * i) |
             (static_cast<std::uint32_t>(4 * i + 1) << 8) |
             (static_cast<std::uint32_t>(4 * i + 2) << 16) |
             (static_cast<std::uint32_t>(4 * i + 3) << 24);
  const std::array<std::uint32_t, 3> nonce = {0x09000000, 0x4a000000,
                                              0x00000000};
  std::array<std::uint8_t, 64> block;
  chacha20_block(key, 1, nonce, block);
  EXPECT_EQ(dmw::to_hex(block),
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaChaRng, DeterministicAcrossInstances) {
  auto a = ChaChaRng::from_seed(7);
  auto b = ChaChaRng::from_seed(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(ChaChaRng, StreamsAreIndependent) {
  auto a = ChaChaRng::from_seed(7, 0);
  auto b = ChaChaRng::from_seed(7, 1);
  bool all_equal = true;
  for (int i = 0; i < 50; ++i)
    if (a.next() != b.next()) all_equal = false;
  EXPECT_FALSE(all_equal);
}

TEST(ChaChaRng, BelowIsInRange) {
  auto rng = ChaChaRng::from_seed(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(ChaChaRng, FillProducesKeystreamBytes) {
  auto a = ChaChaRng::from_seed(11);
  auto b = ChaChaRng::from_seed(11);
  std::vector<std::uint8_t> buf1(100), buf2(100);
  a.fill(buf1);
  b.fill(buf2);
  EXPECT_EQ(buf1, buf2);
  EXPECT_NE(buf1, std::vector<std::uint8_t>(100, 0));
}

TEST(Transcript, DeterministicAndOrderSensitive) {
  Transcript a("t"), b("t"), c("t");
  a.append_u64("x", 1);
  a.append_u64("y", 2);
  b.append_u64("x", 1);
  b.append_u64("y", 2);
  c.append_u64("y", 2);
  c.append_u64("x", 1);
  EXPECT_EQ(a.digest_hex(), b.digest_hex());
  EXPECT_NE(a.digest_hex(), c.digest_hex());
}

TEST(Transcript, DomainSeparated) {
  Transcript a("alpha"), b("beta");
  a.append_u64("x", 1);
  b.append_u64("x", 1);
  EXPECT_NE(a.digest_hex(), b.digest_hex());
}

TEST(Transcript, LengthFramingPreventsAmbiguity) {
  // ("ab", "c") must not collide with ("a", "bc").
  Transcript a("t"), b("t");
  a.append_label("ab");
  a.append_label("c");
  b.append_label("a");
  b.append_label("bc");
  EXPECT_NE(a.digest_hex(), b.digest_hex());
}

TEST(Transcript, DigestIsNonDestructive) {
  Transcript t("t");
  t.append_u64("x", 1);
  const auto d1 = t.digest_hex();
  const auto d2 = t.digest_hex();
  EXPECT_EQ(d1, d2);
  t.append_u64("y", 2);
  EXPECT_NE(t.digest_hex(), d1);
}

}  // namespace
}  // namespace dmw::crypto
