// Deviation detection: each strategy from the Theorem 4 / Theorem 8 case
// analyses must be caught (protocol abort) or provably harmless.
#include <gtest/gtest.h>

#include "dmw/protocol.hpp"
#include "dmw/strategies.hpp"
#include "mech/minwork.hpp"

namespace dmw::proto {
namespace {

using num::Group64;

const Group64& grp() { return Group64::test_group(); }

struct Fixture {
  PublicParams<Group64> params;
  mech::SchedulingInstance instance;

  static Fixture make(std::uint64_t seed = 50) {
    auto params = PublicParams<Group64>::make(grp(), 6, 2, 1, seed);
    Xoshiro256ss rng(seed + 1);
    auto instance =
        mech::make_uniform_instance(6, 2, params.bid_set(), rng);
    return Fixture{std::move(params), std::move(instance)};
  }

  Outcome run_with_deviant(Strategy<Group64>& deviant, std::size_t who) {
    HonestStrategy<Group64> honest;
    std::vector<Strategy<Group64>*> strategies(params.n(), &honest);
    strategies[who] = &deviant;
    ProtocolRunner<Group64> runner(params, instance, strategies);
    return runner.run();
  }
};

TEST(Deviations, CorruptShareDetectedByVictim) {
  auto fx = Fixture::make();
  CorruptShareStrategy<Group64> deviant(/*victim=*/3);
  const auto outcome = fx.run_with_deviant(deviant, 1);
  ASSERT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.aborting_agent, 3u);
  // Either the algebraic check fails or the tweak left the scalar range.
  EXPECT_TRUE(outcome.abort_record->reason == AbortReason::kBadShareCommitment ||
              outcome.abort_record->reason == AbortReason::kMalformedMessage);
}

TEST(Deviations, WithheldShareDetectedByVictim) {
  auto fx = Fixture::make(51);
  WithholdShareStrategy<Group64> deviant(/*victim=*/2);
  const auto outcome = fx.run_with_deviant(deviant, 4);
  ASSERT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.aborting_agent, 2u);
  EXPECT_EQ(outcome.abort_record->reason, AbortReason::kMissingShares);
}

TEST(Deviations, InconsistentCommitmentsDetectedByEveryone) {
  auto fx = Fixture::make(52);
  InconsistentCommitmentsStrategy<Group64> deviant;
  const auto outcome = fx.run_with_deviant(deviant, 0);
  ASSERT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.abort_record->reason, AbortReason::kBadShareCommitment);
}

TEST(Deviations, WithheldCommitmentsAbort) {
  auto fx = Fixture::make(53);
  WithholdCommitmentsStrategy<Group64> deviant;
  const auto outcome = fx.run_with_deviant(deviant, 5);
  ASSERT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.abort_record->reason, AbortReason::kMissingCommitments);
}

TEST(Deviations, BadLambdaFailsEq11) {
  auto fx = Fixture::make(54);
  BadLambdaStrategy<Group64> deviant;
  const auto outcome = fx.run_with_deviant(deviant, 2);
  ASSERT_TRUE(outcome.aborted);
  EXPECT_TRUE(outcome.abort_record->reason == AbortReason::kBadLambdaPsi ||
              outcome.abort_record->reason == AbortReason::kMalformedMessage);
}

TEST(Deviations, CompensatedLambdaStillHarmless) {
  // The forgery passes Eq. (11) but corrupts the resolution input; the
  // paper's case analysis (Thm. 4) says this either aborts or leaves the
  // outcome unchanged. Either way the deviant must not profit.
  auto fx = Fixture::make(55);
  CompensatedLambdaStrategy<Group64> deviant(fx.params.group(), 17);
  const auto honest_outcome = run_honest_dmw(fx.params, fx.instance);
  const auto outcome = fx.run_with_deviant(deviant, 1);
  if (outcome.aborted) {
    EXPECT_EQ(outcome.utility(fx.instance, 1), 0);
  } else {
    EXPECT_LE(outcome.utility(fx.instance, 1),
              honest_outcome.utility(fx.instance, 1));
  }
}

TEST(Deviations, SilentLambdaAborts) {
  auto fx = Fixture::make(56);
  SilentLambdaStrategy<Group64> deviant;
  const auto outcome = fx.run_with_deviant(deviant, 3);
  ASSERT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.abort_record->reason, AbortReason::kMissingLambdaPsi);
}

TEST(Deviations, WithheldDisclosureAbortsWhenPrescribed) {
  // Make the deviant agent 0 so it is always among the prescribed
  // disclosers (y* + 1 >= 2 agents disclose, and indices start at 0).
  auto fx = Fixture::make(57);
  WithholdDisclosureStrategy<Group64> deviant;
  const auto outcome = fx.run_with_deviant(deviant, 0);
  ASSERT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.abort_record->reason, AbortReason::kMissingDisclosure);
}

TEST(Deviations, CorruptDisclosureFailsEq13) {
  auto fx = Fixture::make(58);
  CorruptDisclosureStrategy<Group64> deviant;
  const auto outcome = fx.run_with_deviant(deviant, 0);
  ASSERT_TRUE(outcome.aborted);
  EXPECT_TRUE(outcome.abort_record->reason == AbortReason::kBadDisclosure ||
              outcome.abort_record->reason == AbortReason::kMalformedMessage);
}

TEST(Deviations, EagerDisclosureIsHarmless) {
  // Thm. 4: volunteering extra shares does not change the outcome.
  auto fx = Fixture::make(59);
  EagerDisclosureStrategy<Group64> deviant;
  const auto honest_outcome = run_honest_dmw(fx.params, fx.instance);
  const auto outcome = fx.run_with_deviant(deviant, 5);
  ASSERT_FALSE(outcome.aborted);
  EXPECT_EQ(outcome.schedule, honest_outcome.schedule);
  EXPECT_EQ(outcome.payments, honest_outcome.payments);
}

TEST(Deviations, BadReducedLambdaFailsExcludedEq11) {
  auto fx = Fixture::make(60);
  BadReducedLambdaStrategy<Group64> deviant;
  const auto outcome = fx.run_with_deviant(deviant, 4);
  ASSERT_TRUE(outcome.aborted);
  EXPECT_TRUE(
      outcome.abort_record->reason == AbortReason::kBadReducedLambdaPsi ||
      outcome.abort_record->reason == AbortReason::kMalformedMessage);
}

TEST(Deviations, GreedyPaymentClaimBlocksSettlement) {
  auto fx = Fixture::make(61);
  GreedyPaymentStrategy<Group64> deviant(2);
  const auto outcome = fx.run_with_deviant(deviant, 2);
  ASSERT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.abort_record->reason, AbortReason::kPaymentDisagreement);
  // Nobody is paid: the greedy claim earned the deviant nothing.
  EXPECT_EQ(outcome.utility(fx.instance, 2), 0);
}

TEST(Deviations, SilentPaymentClaimBlocksSettlement) {
  auto fx = Fixture::make(62);
  SilentPaymentStrategy<Group64> deviant;
  const auto outcome = fx.run_with_deviant(deviant, 1);
  ASSERT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.abort_record->reason, AbortReason::kPaymentDisagreement);
}

TEST(Deviations, MisreportNeverBeatsTruthEndToEnd) {
  // Information-revelation deviations run the protocol to completion; the
  // Vickrey structure makes them unprofitable (Thm. 2 lifted to DMW).
  auto fx = Fixture::make(63);
  const auto honest_outcome = run_honest_dmw(fx.params, fx.instance);
  for (int offset : {-2, -1, 1, 2}) {
    MisreportStrategy<Group64> deviant(offset);
    for (std::size_t who = 0; who < fx.params.n(); ++who) {
      const auto outcome = fx.run_with_deviant(deviant, who);
      ASSERT_FALSE(outcome.aborted);
      EXPECT_LE(outcome.utility(fx.instance, who),
                honest_outcome.utility(fx.instance, who))
          << "offset " << offset << " agent " << who;
    }
  }
}

TEST(Deviations, StrategyNamesAreStable) {
  EXPECT_EQ(MisreportStrategy<Group64>(1).name(), "misreport(+1)");
  EXPECT_EQ(MisreportStrategy<Group64>(-1).name(), "misreport(-1)");
  EXPECT_EQ(WithholdDisclosureStrategy<Group64>().name(),
            "withhold-disclosure");
  EXPECT_EQ(HonestStrategy<Group64>().name(), "honest");
}

}  // namespace
}  // namespace dmw::proto
