// Protocol message codecs: round trips on both group backends and
// rejection of malformed payloads.
#include <gtest/gtest.h>

#include "crypto/chacha.hpp"
#include "dmw/messages.hpp"

namespace dmw::proto {
namespace {

using num::Group64;

const Group64& grp() { return Group64::test_group(); }

TEST(Messages, SharesRoundTrip) {
  const Group64& g = grp();
  SharesMsg<Group64> msg{3, ShareBundle<Group64>{11, 22, 33, 44}};
  const auto bytes = msg.encode(g);
  const auto decoded = SharesMsg<Group64>::decode(g, bytes);
  EXPECT_EQ(decoded.task, 3u);
  EXPECT_EQ(decoded.shares.e, 11u);
  EXPECT_EQ(decoded.shares.f, 22u);
  EXPECT_EQ(decoded.shares.g, 33u);
  EXPECT_EQ(decoded.shares.h, 44u);
}

TEST(Messages, SharesRejectTruncation) {
  const Group64& g = grp();
  SharesMsg<Group64> msg{0, ShareBundle<Group64>{1, 2, 3, 4}};
  auto bytes = msg.encode(g);
  bytes.pop_back();
  EXPECT_THROW(SharesMsg<Group64>::decode(g, bytes), net::DecodeError);
}

TEST(Messages, SharesRejectTrailingBytes) {
  const Group64& g = grp();
  SharesMsg<Group64> msg{0, ShareBundle<Group64>{1, 2, 3, 4}};
  auto bytes = msg.encode(g);
  bytes.push_back(0);
  EXPECT_THROW(SharesMsg<Group64>::decode(g, bytes), net::DecodeError);
}

TEST(Messages, CommitmentsRoundTrip) {
  const Group64& g = grp();
  auto rng = crypto::ChaChaRng::from_seed(10);
  const auto params = PublicParams<Group64>::make(g, 6, 2, 1, 1);
  const auto polys = BidPolynomials<Group64>::sample(params, 2, rng);
  CommitmentsMsg<Group64> msg{
      1, CommitmentVectors<Group64>::commit(params, polys)};
  const auto decoded =
      CommitmentsMsg<Group64>::decode(g, msg.encode(g));
  EXPECT_EQ(decoded.task, 1u);
  EXPECT_EQ(decoded.commitments.O, msg.commitments.O);
  EXPECT_EQ(decoded.commitments.Q, msg.commitments.Q);
  EXPECT_EQ(decoded.commitments.R, msg.commitments.R);
}

TEST(Messages, CommitmentsRejectLengthBomb) {
  const Group64& g = grp();
  net::Writer w;
  w.u32(0);
  w.varint(100000);  // absurd vector length
  EXPECT_THROW(CommitmentsMsg<Group64>::decode(g, w.bytes()),
               net::DecodeError);
}

TEST(Messages, LambdaPsiRoundTrip) {
  const Group64& g = grp();
  LambdaPsiMsg<Group64> msg{7, g.z1(), g.z2()};
  const auto decoded = LambdaPsiMsg<Group64>::decode(g, msg.encode(g));
  EXPECT_EQ(decoded.task, 7u);
  EXPECT_EQ(decoded.lambda, g.z1());
  EXPECT_EQ(decoded.psi, g.z2());
}

TEST(Messages, WinnerSharesRoundTrip) {
  const Group64& g = grp();
  WinnerSharesMsg<Group64> msg{2, {5, 6, 7, 8, 9}};
  const auto decoded = WinnerSharesMsg<Group64>::decode(g, msg.encode(g));
  EXPECT_EQ(decoded.task, 2u);
  EXPECT_EQ(decoded.f_shares, msg.f_shares);
}

TEST(Messages, PaymentClaimRoundTrip) {
  PaymentClaimMsg msg{{0, 5, 0, 12}};
  const auto decoded = PaymentClaimMsg::decode(msg.encode());
  EXPECT_EQ(decoded.payments, msg.payments);
}

TEST(Messages, AbortRoundTrip) {
  AbortMsg msg{4, AbortReason::kBadLambdaPsi};
  const auto decoded = AbortMsg::decode(msg.encode());
  EXPECT_EQ(decoded.task, 4u);
  EXPECT_EQ(decoded.reason, AbortReason::kBadLambdaPsi);
}

TEST(Messages, AbortReasonNames) {
  EXPECT_STREQ(to_string(AbortReason::kBadShareCommitment),
               "bad-share-commitment");
  EXPECT_STREQ(to_string(AbortReason::kPaymentDisagreement),
               "payment-disagreement");
  EXPECT_STREQ(to_string(AbortReason::kNone), "none");
}

TEST(Messages, Group256RoundTrip) {
  Xoshiro256ss rng(11);
  const auto g = num::Group256::generate(96, 64, rng);
  SharesMsg<num::Group256> msg{
      1, ShareBundle<num::Group256>{g.scalar_from_u64(10), g.scalar_from_u64(20),
                                    g.scalar_from_u64(30),
                                    g.scalar_from_u64(40)}};
  const auto decoded = SharesMsg<num::Group256>::decode(g, msg.encode(g));
  EXPECT_EQ(decoded.shares.e, g.scalar_from_u64(10));
  EXPECT_EQ(decoded.shares.h, g.scalar_from_u64(40));

  LambdaPsiMsg<num::Group256> lp{0, g.z1(), g.z2()};
  const auto lp2 = LambdaPsiMsg<num::Group256>::decode(g, lp.encode(g));
  EXPECT_EQ(lp2.lambda, g.z1());
  EXPECT_EQ(lp2.psi, g.z2());
}

}  // namespace
}  // namespace dmw::proto
