// Pippenger bucket multi-exponentiation: equivalence with the naive product
// on both backends, window/crossover cost models, and the dispatching
// multi_pow picking the bucket method past the crossover.
#include <gtest/gtest.h>

#include "numeric/multiexp.hpp"
#include "numeric/pippenger.hpp"

namespace dmw::num {
namespace {

std::pair<std::vector<Group64::Elem>, std::vector<Group64::Scalar>>
random_product64(const Group64& g, std::size_t len, Xoshiro256ss& rng) {
  std::vector<Group64::Elem> bases;
  std::vector<Group64::Scalar> exps;
  for (std::size_t i = 0; i < len; ++i) {
    bases.push_back(g.pow(g.z1(), g.random_scalar(rng)));
    exps.push_back(g.random_scalar(rng));
  }
  return {std::move(bases), std::move(exps)};
}

TEST(Pippenger, MatchesNaiveOnGroup64) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(11);
  for (std::size_t len : {1u, 2u, 3u, 7u, 17u, 64u, 129u}) {
    auto [bases, exps] = random_product64(g, len, rng);
    EXPECT_EQ(multi_pow_pippenger<Group64>(g, bases, exps),
              multi_pow_naive<Group64>(g, bases, exps))
        << "len=" << len;
  }
}

TEST(Pippenger, MatchesNaiveOnGroup256) {
  Xoshiro256ss grng(12);
  const Group256 g = Group256::generate(96, 64, grng);
  Xoshiro256ss rng(13);
  for (std::size_t len : {1u, 5u, 23u}) {
    std::vector<Group256::Elem> bases;
    std::vector<Group256::Scalar> exps;
    for (std::size_t i = 0; i < len; ++i) {
      bases.push_back(g.pow(g.z1(), g.random_scalar(rng)));
      exps.push_back(g.random_scalar(rng));
    }
    EXPECT_EQ(multi_pow_pippenger<Group256>(g, bases, exps),
              multi_pow_naive<Group256>(g, bases, exps))
        << "len=" << len;
  }
}

TEST(Pippenger, AllWindowsAgree) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(14);
  auto [bases, exps] = random_product64(g, 31, rng);
  const auto want = multi_pow_naive<Group64>(g, bases, exps);
  for (unsigned c = 1; c <= kPippengerWindowMax; ++c) {
    EXPECT_EQ(multi_pow_pippenger<Group64>(g, bases, exps, c), want)
        << "window=" << c;
  }
}

TEST(Pippenger, EdgeCases) {
  const Group64& g = Group64::test_group();
  EXPECT_EQ(multi_pow_pippenger<Group64>(g, {}, {}), g.identity());
  std::vector<Group64::Elem> bases{g.z1(), g.z2()};
  std::vector<Group64::Scalar> exps{0, 0};
  EXPECT_EQ(multi_pow_pippenger<Group64>(g, bases, exps), g.identity());
  exps = {12345, 0};
  EXPECT_EQ(multi_pow_pippenger<Group64>(g, bases, exps),
            g.pow(g.z1(), 12345));
  std::vector<Group64::Scalar> short_exps{1};
  EXPECT_THROW(multi_pow_pippenger<Group64>(g, bases, short_exps), CheckError);
}

TEST(Pippenger, CostModelCrossover) {
  // Short products keep Straus; long ones switch to buckets. The exact
  // crossover is a few hundred bases at protocol scalar sizes — pin the
  // regimes well away from it so model tweaks don't churn the test.
  for (unsigned bits : {40u, 160u}) {
    EXPECT_FALSE(multi_pow_prefers_pippenger(1, bits));
    EXPECT_FALSE(multi_pow_prefers_pippenger(8, bits));
    EXPECT_TRUE(multi_pow_prefers_pippenger(2048, bits)) << "bits=" << bits;
  }
  // Degenerate shapes never dispatch to buckets.
  EXPECT_FALSE(multi_pow_prefers_pippenger(4096, 0));
  EXPECT_FALSE(multi_pow_prefers_pippenger(1, 160));
}

TEST(Pippenger, DispatchingMultiPowMatchesNaivePastCrossover) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(15);
  const std::size_t len = 600;
  auto [bases, exps] = random_product64(g, len, rng);
  unsigned max_bits = 0;
  for (const auto& e : exps) max_bits = std::max(max_bits, scalar_bit_length(g, e));
  ASSERT_TRUE(multi_pow_prefers_pippenger(len, max_bits));
  EXPECT_EQ(multi_pow<Group64>(g, bases, exps),
            multi_pow_naive<Group64>(g, bases, exps));
  EXPECT_EQ(multi_pow<Group64>(g, bases, exps),
            multi_pow_straus<Group64>(g, bases, exps));
}

TEST(Pippenger, FewerOpsThanStrausPastCrossover) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(16);
  auto [bases, exps] = random_product64(g, 600, rng);

  OpCountScope bucket_scope;
  (void)multi_pow_pippenger<Group64>(g, bases, exps);
  const auto bucket = bucket_scope.delta();

  OpCountScope straus_scope;
  (void)multi_pow_straus<Group64>(g, bases, exps);
  const auto straus = straus_scope.delta();

  // Both engines honour the op-count contract, so the crossover claim is
  // checkable in counted multiplications, not just wall time.
  EXPECT_LT(bucket.mul, straus.mul);
}

}  // namespace
}  // namespace dmw::num
