// Primality testing and prime generation.
#include <gtest/gtest.h>

#include "numeric/primality.hpp"
#include "numeric/modarith.hpp"

namespace dmw::num {
namespace {

using dmw::Xoshiro256ss;

TEST(PrimalityU64, SmallValues) {
  EXPECT_FALSE(is_prime_u64(0));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_FALSE(is_prime_u64(4));
  EXPECT_TRUE(is_prime_u64(5));
  EXPECT_FALSE(is_prime_u64(9));
  EXPECT_TRUE(is_prime_u64(97));
  EXPECT_FALSE(is_prime_u64(91));  // 7 * 13
}

TEST(PrimalityU64, SieveCrossCheckTo10000) {
  // Sieve of Eratosthenes as an independent oracle.
  const int limit = 10000;
  std::vector<bool> composite(limit + 1, false);
  for (int p = 2; p * p <= limit; ++p) {
    if (composite[p]) continue;
    for (int q = p * p; q <= limit; q += p) composite[q] = true;
  }
  for (int v = 2; v <= limit; ++v) {
    EXPECT_EQ(is_prime_u64(static_cast<u64>(v)), !composite[v]) << v;
  }
}

TEST(PrimalityU64, CarmichaelNumbersRejected) {
  // Carmichael numbers fool Fermat tests but not Miller-Rabin.
  for (u64 c : {561ULL, 1105ULL, 1729ULL, 2465ULL, 2821ULL, 6601ULL,
                825265ULL, 321197185ULL}) {
    EXPECT_FALSE(is_prime_u64(c)) << c;
  }
}

TEST(PrimalityU64, KnownLargePrimes) {
  EXPECT_TRUE(is_prime_u64(2305843009213693951ULL));   // 2^61 - 1
  EXPECT_TRUE(is_prime_u64(18446744073709551557ULL));  // largest u64 prime
  EXPECT_FALSE(is_prime_u64(18446744073709551555ULL));
  EXPECT_FALSE(is_prime_u64((1ULL << 62) - 1));  // composite Mersenne
}

TEST(PrimalityU64, StrongPseudoprimesToSmallBases) {
  // 3215031751 is a strong pseudoprime to bases 2, 3, 5, 7 simultaneously.
  EXPECT_FALSE(is_prime_u64(3215031751ULL));
  // 3825123056546413051 is a strong pseudoprime to bases 2..23.
  EXPECT_FALSE(is_prime_u64(3825123056546413051ULL));
}

TEST(PrimalityU64, RandomPrimeHasExactBitLength) {
  Xoshiro256ss rng(31);
  for (unsigned bits : {8u, 16u, 31u, 40u, 61u, 63u}) {
    const u64 p = random_prime_u64(bits, rng);
    EXPECT_TRUE(is_prime_u64(p));
    EXPECT_EQ(64 - static_cast<unsigned>(__builtin_clzll(p)), bits);
  }
}

TEST(PrimalityBig, AgreesWithU64TierOnSmallInputs) {
  Xoshiro256ss rng(32);
  for (int i = 0; i < 200; ++i) {
    const u64 v = rng.below(1u << 20);
    EXPECT_EQ(is_probable_prime(U256(v), rng), is_prime_u64(v)) << v;
  }
}

TEST(PrimalityBig, DetectsCompositeProductOfPrimes) {
  Xoshiro256ss rng(33);
  const U256 p = random_prime<4>(100, rng);
  const U256 q = random_prime<4>(100, rng);
  EXPECT_FALSE(is_probable_prime(p * q, rng));
}

TEST(PrimalityBig, RandomPrimeBitLengths) {
  Xoshiro256ss rng(34);
  for (unsigned bits : {80u, 128u, 200u}) {
    const U256 p = random_prime<4>(bits, rng);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

TEST(RandomBelow, StaysInRangeAndHitsLowValues) {
  Xoshiro256ss rng(35);
  const U256 bound(10);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 2000; ++i) {
    const U256 r = random_below(bound, rng);
    ASSERT_LT(r, bound);
    ++hits[r.to_u64()];
  }
  for (int h : hits) EXPECT_GT(h, 100);  // roughly uniform
}

TEST(RandomBelow, LargeBound) {
  Xoshiro256ss rng(36);
  const U256 bound = U256::from_hex("100000000000000000000000000000000");
  for (int i = 0; i < 50; ++i) EXPECT_LT(random_below(bound, rng), bound);
}

}  // namespace
}  // namespace dmw::num
