// Exact branch-and-bound optimum and the greedy/LPT baselines.
#include <gtest/gtest.h>

#include "mech/opt.hpp"

namespace dmw::mech {
namespace {

std::uint64_t brute_force_makespan(const SchedulingInstance& instance) {
  std::uint64_t best = ~std::uint64_t{0};
  std::size_t combos = 1;
  for (std::size_t j = 0; j < instance.m; ++j) combos *= instance.n;
  for (std::size_t code = 0; code < combos; ++code) {
    std::size_t c = code;
    std::vector<std::size_t> assign(instance.m);
    for (auto& a : assign) {
      a = c % instance.n;
      c /= instance.n;
    }
    best = std::min(best, Schedule(assign).makespan(instance));
  }
  return best;
}

class OptRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptRandomSweep, BnbMatchesBruteForce) {
  Xoshiro256ss rng(GetParam());
  const std::size_t n = 2 + rng.below(3);   // 2..4 agents
  const std::size_t m = 2 + rng.below(5);   // 2..6 tasks
  const auto instance = make_uniform_instance(n, m, BidSet::iota(5), rng);
  const auto opt = optimal_makespan(instance);
  opt.schedule.validate(instance);
  EXPECT_EQ(opt.makespan, brute_force_makespan(instance));
  EXPECT_EQ(opt.schedule.makespan(instance), opt.makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptRandomSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(Opt, SingleTaskGoesToCheapestMachine) {
  SchedulingInstance instance{3, 1, {{5}, {2}, {9}}};
  const auto opt = optimal_makespan(instance);
  EXPECT_EQ(opt.makespan, 2u);
  EXPECT_EQ(opt.schedule.agent_for(0), 1u);
}

TEST(Opt, GreedyIsUpperBoundOnOpt) {
  Xoshiro256ss rng(90);
  for (int trial = 0; trial < 20; ++trial) {
    const auto instance = make_uniform_instance(3, 6, BidSet::iota(4), rng);
    const auto opt = optimal_makespan(instance);
    const auto greedy = greedy_makespan(instance);
    const auto lpt = lpt_makespan(instance);
    EXPECT_GE(greedy.makespan, opt.makespan);
    EXPECT_GE(lpt.makespan, opt.makespan);
    greedy.schedule.validate(instance);
    lpt.schedule.validate(instance);
  }
}

TEST(Opt, PruningExploresFewerNodesThanExhaustive) {
  Xoshiro256ss rng(91);
  const auto instance = make_uniform_instance(4, 8, BidSet::iota(4), rng);
  const auto opt = optimal_makespan(instance);
  std::uint64_t exhaustive = 1;
  for (std::size_t j = 0; j <= instance.m; ++j) exhaustive *= instance.n;
  EXPECT_LT(opt.nodes_explored, exhaustive);
}

TEST(Opt, WorstCaseInstanceSpreadsLoad) {
  const auto instance = make_minwork_worst_case(4, 4, BidSet::iota(2));
  const auto opt = optimal_makespan(instance);
  // One task per machine: makespan = the slow cost (2).
  EXPECT_EQ(opt.makespan, 2u);
}

}  // namespace
}  // namespace dmw::mech
