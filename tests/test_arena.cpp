// Arena allocator: alignment, slab chaining, reset-reuse (the zero-growth
// steady-state contract), oversized requests, the std-allocator adapter, and
// per-worker isolation under the work-stealing pool (the TSan CI job runs
// this file under both schedule modes).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "support/arena.hpp"
#include "support/thread_pool.hpp"

namespace dmw {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return reinterpret_cast<std::size_t>(p) % align == 0;
}

TEST(Arena, AlignmentAndDistinctness) {
  Arena arena(1024);
  std::vector<void*> seen;
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u, 256u}) {
    for (std::size_t bytes : {1u, 3u, 17u, 100u}) {
      void* p = arena.allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_TRUE(aligned_to(p, align)) << "align=" << align;
      // Writable for the full extent.
      std::memset(p, 0xAB, bytes);
      for (void* q : seen) EXPECT_NE(p, q);
      seen.push_back(p);
    }
  }
}

TEST(Arena, SlabChainingAndOversizedRequests) {
  Arena arena(256);
  EXPECT_EQ(arena.stats().slabs, 0u);
  arena.allocate(200);
  EXPECT_EQ(arena.stats().slabs, 1u);
  arena.allocate(200);  // does not fit the remainder: chains a second slab
  EXPECT_EQ(arena.stats().slabs, 2u);
  // An oversized request gets a dedicated slab at least as large as asked.
  void* big = arena.allocate(10 * 1024, 64);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5C, 10 * 1024);
  const Arena::Stats s = arena.stats();
  EXPECT_EQ(s.slabs, 3u);
  EXPECT_GE(s.reserved_bytes, 10 * 1024u + 2 * 256u);
  EXPECT_EQ(s.slab_allocations, 3u);
}

TEST(Arena, ResetRewindsWithoutReleasing) {
  Arena arena(512);
  for (int i = 0; i < 8; ++i) arena.allocate(200);
  const Arena::Stats warm = arena.stats();
  EXPECT_GT(warm.slabs, 1u);
  arena.reset();
  EXPECT_EQ(arena.stats().used_bytes, 0u);
  EXPECT_EQ(arena.stats().slabs, warm.slabs);  // memory retained
  // Replaying the same footprint must not touch the heap again.
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int i = 0; i < 8; ++i) arena.allocate(200);
    arena.reset();
  }
  const Arena::Stats steady = arena.stats();
  EXPECT_EQ(steady.slab_allocations, warm.slab_allocations);
  EXPECT_EQ(steady.resets, 101u);
  EXPECT_GE(steady.high_water_bytes, 8u * 200u);
}

TEST(Arena, ResetRecyclesAddresses) {
  Arena arena(4096);
  void* first = arena.allocate(64, 16);
  arena.reset();
  void* again = arena.allocate(64, 16);
  EXPECT_EQ(first, again);  // bump cursor rewound to the same slab base
}

TEST(Arena, ArenaVectorDrawsFromArena) {
  Arena arena(4096);
  const std::size_t before = arena.stats().slab_allocations;
  {
    ArenaVector<std::uint64_t> v{ArenaAllocator<std::uint64_t>(arena)};
    for (std::uint64_t i = 0; i < 100; ++i) v.push_back(i * i);
    for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i * i);
    EXPECT_GT(arena.stats().used_bytes, 0u);
  }
  arena.reset();
  // A second generation of the same shape reuses the warmed slabs.
  {
    ArenaVector<std::uint64_t> v{ArenaAllocator<std::uint64_t>(arena)};
    for (std::uint64_t i = 0; i < 100; ++i) v.push_back(i);
  }
  EXPECT_EQ(arena.stats().slab_allocations,
            before + 1u);  // one slab covers both generations
}

TEST(WorkerArenas, DriverUsesTrailingSlot) {
  WorkerArenas arenas(4, 1024);
  EXPECT_EQ(arenas.size(), 5u);
  ASSERT_EQ(ThreadPool::current_worker_id(), -1);
  Arena& driver = arenas.local();
  EXPECT_EQ(&driver, &arenas.at(4));
  driver.allocate(100);
  EXPECT_EQ(arenas.at(4).stats().used_bytes, 100u);
  for (std::size_t w = 0; w < 4; ++w)
    EXPECT_EQ(arenas.at(w).stats().used_bytes, 0u);
}

// Each worker bumps only its own arena; the pattern written by one job is
// still intact when the same worker's later jobs run, and reset_all() at the
// drain() barrier is race-free. Run under both schedule modes by the TSan
// job via DMW_DETERMINISTIC_SCHEDULE.
TEST(WorkerArenas, PerWorkerIsolationUnderStealing) {
  const std::size_t kWorkers = 4;
  ThreadPool pool(kWorkers);
  WorkerArenas arenas(kWorkers, 2048);
  std::atomic<std::size_t> corruptions{0};

  for (int cycle = 0; cycle < 20; ++cycle) {
    pool.parallel_for(256, [&](std::size_t i) {
      const int id = ThreadPool::current_worker_id();
      ASSERT_GE(id, 0);
      Arena& mine = arenas.local();
      ASSERT_EQ(&mine, &arenas.at(static_cast<std::size_t>(id)));
      auto* block = mine.allocate_array<std::uint32_t>(16);
      const std::uint32_t tag =
          static_cast<std::uint32_t>((id << 16) ^ static_cast<int>(i));
      for (int k = 0; k < 16; ++k)
        block[k] = tag + static_cast<std::uint32_t>(k);
      for (int k = 0; k < 16; ++k)
        if (block[k] != tag + static_cast<std::uint32_t>(k))
          corruptions.fetch_add(1, std::memory_order_relaxed);
    });
    arenas.reset_all();  // legal: parallel_for returned, pool is quiescent
  }
  EXPECT_EQ(corruptions.load(), 0u);

  // Warm every slot to the worst case a schedule can produce — one worker
  // absorbing the entire parallel_for. (The 20 cycles above do NOT warm it:
  // stealing redistributes load every cycle, so a worker can exceed its own
  // high-water mark cycles later.) The pool is quiescent, so the test thread
  // may touch the worker slots, same as reset_all().
  for (std::size_t s = 0; s < arenas.size(); ++s)
    for (int i = 0; i < 256; ++i)
      arenas.at(s).allocate_array<std::uint32_t>(16);
  arenas.reset_all();

  // Warmed up: further cycles must not allocate a single new slab.
  const std::size_t warm = arenas.combined_stats().slab_allocations;
  for (int cycle = 0; cycle < 5; ++cycle) {
    pool.parallel_for(256, [&](std::size_t) {
      arenas.local().allocate_array<std::uint32_t>(16);
    });
    arenas.reset_all();
  }
  EXPECT_EQ(arenas.combined_stats().slab_allocations, warm);
}

TEST(WorkerArenas, CombinedStatsSumSlots) {
  WorkerArenas arenas(2, 1024);
  arenas.at(0).allocate(100);
  arenas.at(1).allocate(200);
  arenas.at(2).allocate(300);
  const Arena::Stats total = arenas.combined_stats();
  EXPECT_EQ(total.used_bytes, 600u);
  EXPECT_EQ(total.slabs, 3u);
  EXPECT_EQ(total.slab_allocations, 3u);
}

}  // namespace
}  // namespace dmw
