// Montgomery batch inversion: equivalence with per-element inversion on
// both backends, the 1-inversion op-count contract, and zero rejection.
#include <gtest/gtest.h>

#include <span>

#include "numeric/batchinv.hpp"
#include "numeric/multiexp.hpp"

namespace dmw::num {
namespace {

TEST(BatchInverse, MatchesElementwiseOnGroup64) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(21);
  for (std::size_t n : {1u, 2u, 3u, 17u, 64u}) {
    std::vector<Group64::Scalar> values;
    for (std::size_t i = 0; i < n; ++i)
      values.push_back(g.random_nonzero_scalar(rng));
    std::vector<Group64::Scalar> want;
    for (const auto& v : values) want.push_back(g.sinv(v));
    batch_inverse(g, std::span<Group64::Scalar>(values));
    EXPECT_EQ(values, want) << "n=" << n;
  }
}

TEST(BatchInverse, MatchesElementwiseOnGroup256) {
  Xoshiro256ss grng(22);
  const Group256 g = Group256::generate(96, 64, grng);
  Xoshiro256ss rng(23);
  std::vector<Group256::Scalar> values;
  for (std::size_t i = 0; i < 9; ++i)
    values.push_back(g.random_nonzero_scalar(rng));
  std::vector<Group256::Scalar> want;
  for (const auto& v : values) want.push_back(g.sinv(v));
  batch_inverse(g, std::span<Group256::Scalar>(values));
  EXPECT_EQ(values, want);
}

TEST(BatchInverse, EmptyIsNoop) {
  const Group64& g = Group64::test_group();
  std::vector<Group64::Scalar> values;
  batch_inverse(g, std::span<Group64::Scalar>(values));
  EXPECT_TRUE(values.empty());
}

TEST(BatchInverse, RejectsZero) {
  const Group64& g = Group64::test_group();
  std::vector<Group64::Scalar> values{3, 0, 5};
  EXPECT_THROW(batch_inverse(g, std::span<Group64::Scalar>(values)),
               CheckError);
}

TEST(BatchInverse, OneInversionTotal) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(24);
  std::vector<Group64::Scalar> values;
  for (std::size_t i = 0; i < 32; ++i)
    values.push_back(g.random_nonzero_scalar(rng));

  OpCountScope batch_scope;
  batch_inverse(g, std::span<Group64::Scalar>(values));
  const auto batch = batch_scope.delta();

  OpCountScope naive_scope;
  for (auto& v : values) v = g.sinv(v);
  const auto naive = naive_scope.delta();

  // Montgomery's trick: one inversion + 3(n-1) multiplications, against n
  // inversions for the loop.
  EXPECT_EQ(batch.inv, 1u);
  EXPECT_EQ(naive.inv, values.size());
  EXPECT_EQ(batch.mul, 3 * (values.size() - 1));
}

TEST(BatchInverse, ConvenienceWrapper) {
  const Group64& g = Group64::test_group();
  std::vector<Group64::Scalar> values{2, 7, 11};
  const auto inverted = batch_inverted(g, values);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_EQ(g.smul(values[i], inverted[i]), g.sone());
}

}  // namespace
}  // namespace dmw::num
