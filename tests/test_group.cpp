// Schnorr group backends: structure validation, subgroup membership,
// commitment algebra, and cross-backend consistency.
#include <gtest/gtest.h>

#include "numeric/group.hpp"

namespace dmw::num {
namespace {

using dmw::Xoshiro256ss;

TEST(Group64, TestGroupStructure) {
  const Group64& g = Group64::test_group();
  EXPECT_TRUE(is_prime_u64(g.p()));
  EXPECT_TRUE(is_prime_u64(g.q()));
  EXPECT_EQ((g.p() - 1) % g.q(), 0u);
  EXPECT_EQ(g.p_bits(), 61u);
  EXPECT_NE(g.z1(), g.z2());
  EXPECT_TRUE(g.in_subgroup(g.z1()));
  EXPECT_TRUE(g.in_subgroup(g.z2()));
}

TEST(Group64, GenerateProducesValidGroups) {
  Xoshiro256ss rng(41);
  for (auto [pb, qb] : {std::pair{24u, 16u}, {33u, 24u}, {47u, 32u}}) {
    const Group64 g = Group64::generate(pb, qb, rng);
    EXPECT_EQ(g.p_bits(), pb);
    EXPECT_EQ((g.p() - 1) % g.q(), 0u);
    EXPECT_EQ(g.pow(g.z1(), g.q()), 1u);
    EXPECT_EQ(g.pow(g.z2(), g.q()), 1u);
  }
}

TEST(Group64, ConstructorRejectsBadParameters) {
  const Group64& g = Group64::test_group();
  EXPECT_THROW(Group64(g.p() + 2, g.q(), g.z1(), g.z2()), CheckError);
  EXPECT_THROW(Group64(g.p(), g.q() + 2, g.z1(), g.z2()), CheckError);
  EXPECT_THROW(Group64(g.p(), g.q(), g.z1(), g.z1()), CheckError);
  EXPECT_THROW(Group64(g.p(), g.q(), 1, g.z2()), CheckError);
}

TEST(Group64, GroupAxioms) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(42);
  for (int i = 0; i < 50; ++i) {
    const auto a = g.pow(g.z1(), g.random_scalar(rng));
    const auto b = g.pow(g.z1(), g.random_scalar(rng));
    const auto c = g.pow(g.z2(), g.random_scalar(rng));
    EXPECT_EQ(g.mul(a, g.identity()), a);
    EXPECT_EQ(g.mul(a, g.inv(a)), g.identity());
    EXPECT_EQ(g.mul(g.mul(a, b), c), g.mul(a, g.mul(b, c)));
    EXPECT_EQ(g.mul(a, b), g.mul(b, a));
  }
}

TEST(Group64, PowHomomorphism) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(43);
  for (int i = 0; i < 50; ++i) {
    const auto x = g.random_scalar(rng);
    const auto y = g.random_scalar(rng);
    EXPECT_EQ(g.pow(g.z1(), g.sadd(x, y)),
              g.mul(g.pow(g.z1(), x), g.pow(g.z1(), y)));
    EXPECT_EQ(g.pow(g.pow(g.z1(), x), y), g.pow(g.z1(), g.smul(x, y)));
  }
}

TEST(Group64, CommitmentIsBindingUnderDistinctOpenings) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(44);
  // Same (a, b) -> same commitment; different a with same b -> different.
  for (int i = 0; i < 50; ++i) {
    const auto a = g.random_scalar(rng), b = g.random_scalar(rng);
    EXPECT_EQ(g.commit(a, b), g.commit(a, b));
    const auto a2 = g.sadd(a, g.sone());
    EXPECT_NE(g.commit(a, b), g.commit(a2, b));
  }
}

TEST(Group64, ScalarFieldAxioms) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(45);
  for (int i = 0; i < 50; ++i) {
    const auto a = g.random_scalar(rng);
    const auto b = g.random_nonzero_scalar(rng);
    EXPECT_EQ(g.sadd(a, g.sneg(a)), g.szero());
    EXPECT_EQ(g.smul(b, g.sinv(b)), g.sone());
    EXPECT_EQ(g.ssub(a, a), g.szero());
  }
}

TEST(Group64, Validation) {
  const Group64& g = Group64::test_group();
  EXPECT_FALSE(g.valid_elem(0));
  EXPECT_TRUE(g.valid_elem(1));
  EXPECT_TRUE(g.valid_elem(g.p() - 1));
  EXPECT_FALSE(g.valid_elem(g.p()));
  EXPECT_TRUE(g.valid_scalar(0));
  EXPECT_FALSE(g.valid_scalar(g.q()));
}

TEST(Group256, GenerateAndVerifyStructure) {
  Xoshiro256ss rng(46);
  const Group256 g = Group256::generate(96, 64, rng);
  EXPECT_EQ(g.p_bits(), 96u);
  EXPECT_TRUE(mod(g.p() - U256(1), g.q()).is_zero());
  EXPECT_TRUE(g.in_subgroup(g.z1()));
  EXPECT_TRUE(g.in_subgroup(g.z2()));
  EXPECT_NE(g.z1(), g.z2());
}

TEST(Group256, HomomorphismAndInverse) {
  Xoshiro256ss rng(47);
  const Group256 g = Group256::generate(96, 64, rng);
  for (int i = 0; i < 10; ++i) {
    const auto x = g.random_scalar(rng), y = g.random_scalar(rng);
    EXPECT_EQ(g.pow(g.z1(), g.sadd(x, y)),
              g.mul(g.pow(g.z1(), x), g.pow(g.z1(), y)));
    const auto e = g.pow(g.z2(), x);
    EXPECT_EQ(g.mul(e, g.inv(e)), g.identity());
  }
}

TEST(Group256, CommitMatchesManualComputation) {
  Xoshiro256ss rng(48);
  const Group256 g = Group256::generate(96, 64, rng);
  const auto a = g.random_scalar(rng), b = g.random_scalar(rng);
  EXPECT_EQ(g.commit(a, b), g.mul(g.pow(g.z1(), a), g.pow(g.z2(), b)));
}

}  // namespace
}  // namespace dmw::num
