// Flags parser and JSON writer (tool substrate).
#include <gtest/gtest.h>

#include "support/flags.hpp"
#include "support/json.hpp"

namespace dmw {
namespace {

Flags parse(std::vector<const char*> argv,
            const std::vector<std::string>& known) {
  argv.insert(argv.begin(), "prog");
  return Flags(static_cast<int>(argv.size()), argv.data(), known);
}

TEST(Flags, EqualsAndSpaceSyntax) {
  const auto flags = parse({"--n=8", "--seed", "42"}, {"n", "seed"});
  EXPECT_EQ(flags.get_u64("n", 0), 8u);
  EXPECT_EQ(flags.get_u64("seed", 0), 42u);
  EXPECT_TRUE(flags.has("n"));
  EXPECT_FALSE(flags.has("m"));
}

TEST(Flags, DefaultsApplyWhenAbsent) {
  const auto flags = parse({}, {"n"});
  EXPECT_EQ(flags.get_u64("n", 6), 6u);
  EXPECT_EQ(flags.get_string("n", "x"), "x");
  EXPECT_FALSE(flags.get_bool("n"));
}

TEST(Flags, BooleanFlags) {
  const auto flags = parse({"--json"}, {"json!", "other!"});
  EXPECT_TRUE(flags.get_bool("json"));
  EXPECT_FALSE(flags.get_bool("other"));
}

TEST(Flags, UnknownFlagRejected) {
  EXPECT_THROW(parse({"--bogus=1"}, {"n"}), CheckError);
}

TEST(Flags, BooleanFlagWithValueRejected) {
  EXPECT_THROW(parse({"--json=yes"}, {"json!"}), CheckError);
}

TEST(Flags, MissingValueRejected) {
  EXPECT_THROW(parse({"--n"}, {"n"}), CheckError);
}

TEST(Flags, NonIntegerRejected) {
  const auto flags = parse({"--n=abc"}, {"n"});
  EXPECT_THROW(flags.get_u64("n", 0), std::exception);
}

TEST(Flags, PositionalCollected) {
  const auto flags = parse({"alpha", "--n=2", "beta"}, {"n"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"alpha", "beta"}));
}

TEST(Json, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "dmw");
  w.field("n", std::uint64_t{8});
  w.field("ok", true);
  w.field("delta", std::int64_t{-3});
  w.end_object();
  EXPECT_EQ(w.str(), R"({"name":"dmw","n":8,"ok":true,"delta":-3})");
}

TEST(Json, NestedArrays) {
  JsonWriter w;
  w.begin_object();
  w.begin_array("xs");
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.end_array();
  w.key("inner");
  w.begin_object();
  w.field("k", "v");
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"xs":[1,2],"inner":{"k":"v"}})");
}

TEST(Json, StringEscaping) {
  JsonWriter w;
  w.begin_object();
  w.field("s", "a\"b\\c\nd");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(Json, UnbalancedDocumentRejected) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.str(), CheckError);
  w.end_object();
  EXPECT_NO_THROW(w.str());
  EXPECT_THROW(w.end_object(), CheckError);
}

TEST(Json, KeyOutsideObjectRejected) {
  JsonWriter w;
  w.begin_array();
  EXPECT_THROW(w.key("x"), CheckError);
  w.end_array();
}

}  // namespace
}  // namespace dmw
