// Additional property/fuzz coverage: the wire format never crashes on
// arbitrary bytes, wide BigUInt instantiations behave, and protocol edge
// configurations hold up.
#include <gtest/gtest.h>

#include "dmw/messages.hpp"
#include "dmw/protocol.hpp"
#include "mech/minwork.hpp"
#include "net/serialize.hpp"
#include "numeric/mont.hpp"
#include "numeric/primality.hpp"

namespace dmw {
namespace {

using num::Group64;

TEST(FuzzSerialize, ReaderNeverCrashesOnRandomBytes) {
  Xoshiro256ss rng(1000);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.below(64));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    net::Reader r(bytes);
    // Random decode sequence: every primitive either succeeds or throws
    // DecodeError; anything else (UB, crash) fails the test harness.
    try {
      switch (rng.below(6)) {
        case 0: (void)r.u8(); break;
        case 1: (void)r.u32(); break;
        case 2: (void)r.u64(); break;
        case 3: (void)r.varint(); break;
        case 4: (void)r.blob(); break;
        default: (void)r.u64_vec(); break;
      }
    } catch (const net::DecodeError&) {
      // expected failure mode
    }
  }
}

TEST(FuzzSerialize, MessageDecodersRejectRandomBytes) {
  const Group64& g = Group64::test_group();
  Xoshiro256ss rng(1001);
  int decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.below(80));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    try {
      switch (rng.below(4)) {
        case 0: (void)proto::SharesMsg<Group64>::decode(g, bytes); break;
        case 1: (void)proto::CommitmentsMsg<Group64>::decode(g, bytes); break;
        case 2: (void)proto::LambdaPsiMsg<Group64>::decode(g, bytes); break;
        default: (void)proto::PaymentClaimMsg::decode(bytes); break;
      }
      ++decoded;  // structurally valid random bytes are possible but rare
    } catch (const net::DecodeError&) {
    }
  }
  // The wire format is not self-describing enough to reject everything,
  // but the overwhelming majority of random buffers must fail cleanly.
  EXPECT_LT(decoded, 600);
}

TEST(WideBigUInt, U512Arithmetic) {
  using num::U512;
  Xoshiro256ss rng(1002);
  for (int trial = 0; trial < 50; ++trial) {
    U512 a, b;
    for (int l = 0; l < 8; ++l) {
      a.set_limb(l, rng.next());
      b.set_limb(l, rng.next());
    }
    EXPECT_EQ((a + b) - b, a);
    if (b.is_zero()) b = U512(1);
    const auto dm = num::divmod(a, b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
    EXPECT_LT(dm.remainder, b);
  }
}

TEST(WideBigUInt, U512MontgomeryAgainstPlain) {
  using num::U512;
  Xoshiro256ss rng(1003);
  const U512 p = num::random_prime<8>(400, rng, /*rounds=*/16);
  const num::Montgomery<8> mont(p);
  for (int trial = 0; trial < 10; ++trial) {
    const U512 a = num::random_below(p, rng);
    const U512 e = num::random_below(U512(1000000), rng);
    EXPECT_EQ(mont.pow(a, e), num::mod_pow(a, e, p));
  }
}

TEST(ProtocolEdge, TwoAgentsOneTask) {
  // The minimum viable auction: n=2 forces W={1}, so both bid 1 and the
  // tie-break decides.
  const auto& g = Group64::test_group();
  // n=2 requires c=0: c < n and w_k <= n-c-1 -> with c=0, W={1}.
  const auto params = proto::PublicParams<Group64>::with_bid_set(
      g, 2, 1, 0, mech::BidSet::iota(1), 99);
  mech::SchedulingInstance instance{2, 1, {{1}, {1}}};
  const auto outcome = proto::run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted)
      << to_string(outcome.abort_record->reason);
  EXPECT_EQ(outcome.schedule.agent_for(0), 0u);
  EXPECT_EQ(outcome.payments[0], 1u);
}

TEST(ProtocolEdge, ManyTasksSmallGroup) {
  const auto& g = Group64::test_group();
  const auto params = proto::PublicParams<Group64>::make(g, 4, 10, 1, 100);
  Xoshiro256ss rng(101);
  const auto instance =
      mech::make_uniform_instance(4, 10, params.bid_set(), rng);
  const auto outcome = proto::run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted);
  EXPECT_EQ(outcome.schedule, mech::run_minwork(instance).schedule);
  // Phase II unicasts: 10 tasks * 4 agents * 3 peers.
  EXPECT_EQ(outcome.traffic.unicast_messages, 120u);
}

TEST(ProtocolEdge, MaximalFaultParameter) {
  // c = n-2 leaves exactly W = {1}: still a valid (degenerate) mechanism.
  const auto& g = Group64::test_group();
  const auto params = proto::PublicParams<Group64>::make(g, 6, 1, 4, 102);
  EXPECT_EQ(params.bid_set().max(), 1u);
  mech::SchedulingInstance instance{6, 1, {{1}, {1}, {1}, {1}, {1}, {1}}};
  const auto outcome = proto::run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted);
  EXPECT_EQ(outcome.schedule.agent_for(0), 0u);
}

TEST(ProtocolEdge, OutcomeUtilityAccessors) {
  const auto& g = Group64::test_group();
  const auto params = proto::PublicParams<Group64>::make(g, 4, 1, 1, 103);
  mech::SchedulingInstance instance{4, 1, {{1}, {2}, {2}, {2}}};
  const auto outcome = proto::run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted);
  EXPECT_EQ(outcome.winning_bids(), outcome.first_prices);
  EXPECT_EQ(outcome.utility(instance, 0), 1);  // pays 2, costs 1
  // Aborted outcomes yield zero utility by definition.
  proto::Outcome aborted;
  aborted.aborted = true;
  EXPECT_EQ(aborted.utility(instance, 0), 0);
}

}  // namespace
}  // namespace dmw
