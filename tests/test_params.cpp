// DMW public parameters: validation, bid/degree encoding, pseudonyms.
#include <gtest/gtest.h>

#include "dmw/params.hpp"

namespace dmw::proto {
namespace {

using num::Group64;

const Group64& grp() { return Group64::test_group(); }

TEST(Params, MakeChoosesLargestAdmissibleBidSet) {
  const auto params = PublicParams<Group64>::make(grp(), 8, 2, 2, 1);
  // w_k = n - c - 1 = 5, sigma = w_k + c + 1 = 8 = n.
  EXPECT_EQ(params.bid_set().max(), 5u);
  EXPECT_EQ(params.sigma(), 8u);
  EXPECT_EQ(params.n(), 8u);
  EXPECT_EQ(params.m(), 2u);
  EXPECT_EQ(params.c(), 2u);
}

TEST(Params, DegreeEncodingIsInverseMap) {
  const auto params = PublicParams<Group64>::make(grp(), 8, 1, 2, 1);
  for (mech::Cost bid : params.bid_set().values()) {
    const std::size_t degree = params.degree_for_bid(bid);
    EXPECT_EQ(params.bid_for_degree(degree), bid);
    EXPECT_TRUE(params.degree_is_valid_bid(degree));
    // Small bids -> large degrees, always above the collusion padding c.
    EXPECT_GE(degree, params.c() + 1);
    EXPECT_LT(degree, params.sigma());
  }
}

TEST(Params, SmallerBidsGetLargerDegrees) {
  const auto params = PublicParams<Group64>::make(grp(), 10, 1, 2, 1);
  const auto& w = params.bid_set().values();
  for (std::size_t i = 1; i < w.size(); ++i)
    EXPECT_LT(params.degree_for_bid(w[i]), params.degree_for_bid(w[i - 1]));
}

TEST(Params, RejectsBidsOutsideW) {
  const auto params = PublicParams<Group64>::make(grp(), 6, 1, 1, 1);
  EXPECT_THROW(params.degree_for_bid(0), CheckError);
  EXPECT_THROW(params.degree_for_bid(99), CheckError);
  EXPECT_FALSE(params.degree_is_valid_bid(params.sigma()));
  EXPECT_FALSE(params.degree_is_valid_bid(0));  // degree 0 = bid sigma > w_k
}

TEST(Params, PseudonymsAreDistinctSortedNonzero) {
  const auto params = PublicParams<Group64>::make(grp(), 12, 1, 3, 42);
  const auto& alphas = params.pseudonyms();
  ASSERT_EQ(alphas.size(), 12u);
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    EXPECT_NE(alphas[i], 0u);
    if (i > 0) EXPECT_LT(alphas[i - 1], alphas[i]);
  }
}

TEST(Params, PseudonymsDeterministicInSeed) {
  const auto a = PublicParams<Group64>::make(grp(), 6, 1, 1, 5);
  const auto b = PublicParams<Group64>::make(grp(), 6, 1, 1, 5);
  const auto c = PublicParams<Group64>::make(grp(), 6, 1, 1, 6);
  EXPECT_EQ(a.pseudonyms(), b.pseudonyms());
  EXPECT_NE(a.pseudonyms(), c.pseudonyms());
}

TEST(Params, ValidatesBidSetBound) {
  // w_k <= n - c - 1 (DESIGN.md erratum): W = {1..5} needs n >= c + 6.
  EXPECT_NO_THROW(PublicParams<Group64>::with_bid_set(
      grp(), 8, 1, 2, mech::BidSet::iota(5), 1));
  EXPECT_THROW(PublicParams<Group64>::with_bid_set(
                   grp(), 7, 1, 2, mech::BidSet::iota(5), 1),
               CheckError);
}

TEST(Params, RequiresMinimumAgents) {
  EXPECT_THROW(PublicParams<Group64>::make(grp(), 2, 1, 1, 1), CheckError);
  EXPECT_NO_THROW(PublicParams<Group64>::make(grp(), 3, 1, 1, 1));
}

TEST(Params, CMustBeLessThanN) {
  EXPECT_THROW(PublicParams<Group64>::make(grp(), 4, 1, 4, 1), CheckError);
}

TEST(Params, DescribeMentionsKeyNumbers) {
  const auto params = PublicParams<Group64>::make(grp(), 6, 3, 1, 1);
  const auto text = params.describe();
  EXPECT_NE(text.find("n=6"), std::string::npos);
  EXPECT_NE(text.find("m=3"), std::string::npos);
  EXPECT_NE(text.find("sigma="), std::string::npos);
}

}  // namespace
}  // namespace dmw::proto
