// The RLC batch-verification contract (dmw/batchverify.hpp): flipping
// PublicParams::batch_verify() changes no observable Outcome byte — honest
// runs, every deviation's abort attribution (agent, task, AbortReason), and
// crash-tolerant runs alike, at every thread count and on both group
// backends. Plus the soundness soak: a batch folding one corrupted share
// among honest checks must never verify (failure probability 1/q per trial,
// ~2^-40 on the Group64 tier).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dmw/batchverify.hpp"
#include "dmw/parallel.hpp"
#include "dmw/strategies.hpp"
#include "mech/minwork.hpp"

namespace dmw::proto {
namespace {

using num::Group256;
using num::Group64;

const Group64& grp() { return Group64::test_group(); }

constexpr std::size_t kThreadCounts[] = {1, 4};

// Everything expect_outcomes_identical (test_parallel_protocol.cpp) compares
// EXCEPT the per-phase op counts: batching exists precisely to change the
// multiplication count, so op totals legitimately differ between the modes.
// Traffic, rounds, transcripts and the full abort record must not.
void expect_same_outcome(const Outcome& a, const Outcome& b,
                         const std::string& label) {
  ASSERT_EQ(a.aborted, b.aborted) << label;
  if (a.aborted) {
    ASSERT_TRUE(a.abort_record && b.abort_record) << label;
    EXPECT_EQ(a.abort_record->task, b.abort_record->task) << label;
    EXPECT_EQ(a.abort_record->reason, b.abort_record->reason) << label;
    EXPECT_EQ(a.aborting_agent, b.aborting_agent) << label;
  } else {
    EXPECT_EQ(a.schedule, b.schedule) << label;
    EXPECT_EQ(a.first_prices, b.first_prices) << label;
    EXPECT_EQ(a.second_prices, b.second_prices) << label;
  }
  EXPECT_EQ(a.payments, b.payments) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.transcripts_consistent, b.transcripts_consistent) << label;
  EXPECT_EQ(a.traffic.unicast_messages, b.traffic.unicast_messages) << label;
  EXPECT_EQ(a.traffic.unicast_bytes, b.traffic.unicast_bytes) << label;
  EXPECT_EQ(a.traffic.broadcast_messages, b.traffic.broadcast_messages)
      << label;
  EXPECT_EQ(a.traffic.broadcast_bytes, b.traffic.broadcast_bytes) << label;
}

/// Run `strategies` under batch_verify on and off, sequentially and at every
/// thread count, and require one identical outcome.
template <dmw::num::GroupBackend G>
void expect_mode_invariant(const PublicParams<G>& params,
                           const mech::SchedulingInstance& instance,
                           std::vector<Strategy<G>*> strategies,
                           const std::string& label) {
  auto params_seq = params;
  params_seq.set_batch_verify(false);
  ASSERT_TRUE(params.batch_verify());

  ProtocolRunner<G> sequential(params_seq, instance, strategies);
  const auto reference = sequential.run();
  ProtocolRunner<G> batched(params, instance, strategies);
  expect_same_outcome(reference, batched.run(), label + " batched-serial");

  for (std::size_t threads : kThreadCounts) {
    ParallelProtocol<G> batched_mt(params, instance, strategies, threads);
    expect_same_outcome(reference, batched_mt.run(),
                        label + " batched threads=" + std::to_string(threads));
    ParallelProtocol<G> seq_mt(params_seq, instance, strategies, threads);
    expect_same_outcome(
        reference, seq_mt.run(),
        label + " sequential threads=" + std::to_string(threads));
  }
}

// ---- Outcome invariance: honest runs ---------------------------------------

TEST(BatchVerify, HonestRunsIdenticalToSequentialMode) {
  const auto params = PublicParams<Group64>::make(grp(), 6, 3, 1, 2);
  Xoshiro256ss rng(11);
  const auto instance =
      mech::make_uniform_instance(6, 3, params.bid_set(), rng);
  HonestStrategy<Group64> honest;
  std::vector<Strategy<Group64>*> strategies(6, &honest);
  expect_mode_invariant(params, instance, strategies, "honest");

  // Sanity: the batched default still matches the centralized mechanism.
  const auto outcome = run_honest_dmw(params, instance);
  ASSERT_FALSE(outcome.aborted);
  EXPECT_EQ(outcome.schedule, mech::run_minwork(instance).schedule);
}

// ---- Outcome invariance: abort attribution under deviations ----------------

// Each deviation corrupts exactly one value (one share to one victim, one
// commitment vector, one published element); the batched run must attribute
// the abort to the same (agent, task, reason) the one-at-a-time scan picks,
// at every thread count.
TEST(BatchVerify, DeviantAttributionMatchesSequentialGroup64) {
  const auto params = PublicParams<Group64>::make(grp(), 6, 3, 1, 2);
  Xoshiro256ss rng(11);
  const auto instance =
      mech::make_uniform_instance(6, 3, params.bid_set(), rng);

  CorruptShareStrategy<Group64> corrupt_share(/*victim=*/1);
  WithholdShareStrategy<Group64> withhold_share(/*victim=*/2);
  InconsistentCommitmentsStrategy<Group64> bad_commitments;
  WithholdCommitmentsStrategy<Group64> withhold_commitments;
  BadLambdaStrategy<Group64> bad_lambda;
  SilentLambdaStrategy<Group64> silent_lambda;
  BadReducedLambdaStrategy<Group64> bad_reduced;
  CorruptDisclosureStrategy<Group64> corrupt_disclosure;
  for (Strategy<Group64>* deviant : std::initializer_list<Strategy<Group64>*>{
           &corrupt_share, &withhold_share, &bad_commitments,
           &withhold_commitments, &bad_lambda, &silent_lambda, &bad_reduced,
           &corrupt_disclosure}) {
    HonestStrategy<Group64> honest;
    std::vector<Strategy<Group64>*> strategies(6, &honest);
    // Agent 0 is always among the prescribed disclosers (first y*+1 alive
    // agents), so the disclosure deviation actually fires too.
    strategies[0] = deviant;

    auto params_seq = params;
    params_seq.set_batch_verify(false);
    ProtocolRunner<Group64> sequential(params_seq, instance, strategies);
    const auto reference = sequential.run();
    ASSERT_TRUE(reference.aborted) << deviant->name();

    expect_mode_invariant(params, instance, strategies, deviant->name());
  }
}

TEST(BatchVerify, DeviantAttributionMatchesSequentialGroup256) {
  Xoshiro256ss group_rng(9);
  const auto group = Group256::generate(128, 80, group_rng);
  const auto params = PublicParams<Group256>::make(group, 4, 2, 1, 6);
  Xoshiro256ss rng(10);
  const auto instance =
      mech::make_uniform_instance(4, 2, params.bid_set(), rng);

  {
    HonestStrategy<Group256> honest;
    std::vector<Strategy<Group256>*> strategies(4, &honest);
    expect_mode_invariant(params, instance, strategies, "g256 honest");
  }
  CorruptShareStrategy<Group256> corrupt_share(/*victim=*/2);
  BadLambdaStrategy<Group256> bad_lambda;
  BadReducedLambdaStrategy<Group256> bad_reduced;
  for (Strategy<Group256>* deviant : std::initializer_list<Strategy<Group256>*>{
           &corrupt_share, &bad_lambda, &bad_reduced}) {
    HonestStrategy<Group256> honest;
    std::vector<Strategy<Group256>*> strategies(4, &honest);
    strategies[0] = deviant;
    expect_mode_invariant(params, instance, strategies,
                          "g256 " + deviant->name());
  }
}

// Crash-tolerant mode drives the batched presence scan's alive-mask edits;
// the replayed sequential scan must land on the same mask and outcome.
TEST(BatchVerify, CrashTolerantRunsIdenticalToSequentialMode) {
  const auto params =
      PublicParams<Group64>::make_crash_tolerant(grp(), 7, 3, 2, 21);
  Xoshiro256ss rng(77);
  const auto instance =
      mech::make_uniform_instance(7, 3, params.bid_set(), rng);

  CrashStrategy<Group64> crash(CrashPoint::kAfterBidding);
  HonestStrategy<Group64> honest;
  std::vector<Strategy<Group64>*> strategies(7, &honest);
  strategies[6] = &crash;
  strategies[5] = &crash;
  expect_mode_invariant(params, instance, strategies, "crash-tolerant");
}

// ---- RLC soundness ---------------------------------------------------------

// The folded identity is exact on honest inputs: no probabilistic slack on
// the accept path, ever.
TEST(BatchVerify, HonestBatchAlwaysVerifies) {
  const auto& g = grp();
  for (std::uint64_t trial = 0; trial < 100; ++trial) {
    auto data = crypto::ChaChaRng::from_seed(0x601d, trial);
    BatchVerifier<Group64> batch(
        g, crypto::ChaChaRng::from_seed(0xbadc0de, trial));
    for (std::size_t c = 0; c < 8; ++c) {
      const auto a = g.random_nonzero_scalar(data);
      const auto b = g.random_nonzero_scalar(data);
      const auto r = batch.draw();
      batch.fold_commit(r, a, b);
      batch.rhs_term(g.commit(a, b), r);
    }
    EXPECT_EQ(batch.checks(), 8u);
    ASSERT_TRUE(batch.verify()) << "trial " << trial;
  }
}

// 10k seeded trials, each folding one corrupted share value among honest
// checks: the batch must reject every single time. A false accept needs the
// trial's RLC coefficient at the corrupted slot to vanish mod q
// (probability 1/q ~ 2^-40 here), so even one accept over the soak flags a
// broken fold with overwhelming probability.
TEST(BatchVerify, SoakNeverAcceptsACorruptedShare) {
  const auto& g = grp();
  constexpr std::size_t kChecks = 6;
  std::size_t accepted = 0;
  for (std::uint64_t trial = 0; trial < 10000; ++trial) {
    auto data = crypto::ChaChaRng::from_seed(0x5eed, trial);
    BatchVerifier<Group64> batch(
        g, crypto::ChaChaRng::from_seed(0xbadc0de, trial));
    const std::size_t bad = trial % kChecks;
    for (std::size_t c = 0; c < kChecks; ++c) {
      const auto a = g.random_nonzero_scalar(data);
      const auto b = g.random_nonzero_scalar(data);
      const auto r = batch.draw();
      // The deviant misreports `a` on one check; commitments stay honest.
      const auto claimed =
          c == bad ? g.sadd(a, g.scalar_from_u64(1 + trial % 7)) : a;
      batch.fold_commit(r, claimed, b);
      batch.rhs_term(g.commit(a, b), r);
    }
    if (batch.verify()) ++accepted;
  }
  EXPECT_EQ(accepted, 0u);
}

// Identically seeded verifiers draw identical coefficient streams (the
// determinism the parallel driver's bit-identity rests on), and the stream
// is consumed two words per draw on every backend.
TEST(BatchVerify, CoefficientStreamIsDeterministic) {
  const auto& g = grp();
  auto a = crypto::ChaChaRng::from_seed(7, 42);
  auto b = crypto::ChaChaRng::from_seed(7, 42);
  BatchVerifier<Group64> va(g, std::move(a));
  BatchVerifier<Group64> vb(g, std::move(b));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(va.draw(), vb.draw());

  auto raw = crypto::ChaChaRng::from_seed(7, 42);
  auto fed = crypto::ChaChaRng::from_seed(7, 42);
  const auto first = rlc_scalar(g, fed);
  (void)first;
  raw.next();
  raw.next();  // two words consumed per coefficient
  EXPECT_EQ(rlc_scalar(g, fed), rlc_scalar(g, raw));
}

}  // namespace
}  // namespace dmw::proto
