// dmw_keygen — generate and print DMW public parameters.
//
// Produces a fresh Schnorr group (and optionally the derived pseudonym set
// and bid set for a deployment size), in human-readable or JSON form, so a
// deployment can pin its Phase I constants.
//
//   dmw_keygen --p-bits 61 --q-bits 40 --seed 7
//   dmw_keygen --backend 256 --p-bits 250 --q-bits 160 --json
//   dmw_keygen --n 12 --c 2          # also derive pseudonyms + W
#include <cstdio>

#include "dmw/params.hpp"
#include "support/flags.hpp"
#include "support/json.hpp"
#include "support/logging.hpp"

namespace {

constexpr const char* kUsage = R"(dmw_keygen — DMW parameter generation

options:
  --backend B    64 | 256          (default 64)
  --p-bits P     prime p size      (default 61 / 250)
  --q-bits Q     prime q size      (default 40 / 160)
  --seed S       generator seed    (default 1)
  --n N          also derive parameters for N agents
  --m M          tasks             (default 1; only with --n)
  --c C          max faulty        (default 1; only with --n)
  --crash-tolerant  use the crash-tolerant bid-set bound
  --json         machine-readable output
  --help         this text
)";

template <class G>
int emit(const G& group, const dmw::Flags& flags) {
  const bool json = flags.get_bool("json");
  if (!flags.has("n")) {
    if (json) {
      dmw::JsonWriter w;
      w.begin_object();
      w.field("describe", group.describe());
      w.field("p_bits", std::uint64_t{group.p_bits()});
      w.end_object();
      std::printf("%s\n", w.str().c_str());
    } else {
      std::printf("%s\n", group.describe().c_str());
    }
    return 0;
  }

  const std::size_t n = flags.get_u64("n", 4);
  const std::size_t m = flags.get_u64("m", 1);
  const std::size_t c = flags.get_u64("c", 1);
  const std::uint64_t seed = flags.get_u64("seed", 1);
  const auto params =
      flags.get_bool("crash-tolerant")
          ? dmw::proto::PublicParams<G>::make_crash_tolerant(group, n, m, c,
                                                             seed)
          : dmw::proto::PublicParams<G>::make(group, n, m, c, seed);
  if (json) {
    dmw::JsonWriter w;
    w.begin_object();
    w.field("describe", params.describe());
    w.field("n", std::uint64_t{n});
    w.field("c", std::uint64_t{c});
    w.field("sigma", std::uint64_t{params.sigma()});
    w.field("crash_tolerant", params.crash_tolerant());
    w.begin_array("bid_set");
    for (auto v : params.bid_set().values()) w.value(std::uint64_t{v});
    w.end_array();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("%s\n", params.describe().c_str());
    std::printf("W = {%u..%u}, sigma = %zu, quorum = %zu\n",
                params.bid_set().min(), params.bid_set().max(),
                params.sigma(), params.quorum());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dmw::Logger::instance().set_level(dmw::LogLevel::kInfo);
  try {
    const dmw::Flags flags(
        argc, argv,
        {"backend", "p-bits", "q-bits", "seed", "n", "m", "c",
         "crash-tolerant!", "json!", "help!"});
    if (flags.get_bool("help")) {
      std::printf("%s", kUsage);
      return 0;
    }
    const auto backend = flags.get_u64("backend", 64);
    dmw::Xoshiro256ss rng(flags.get_u64("seed", 1));
    if (backend == 64) {
      const auto group = dmw::num::Group64::generate(
          static_cast<unsigned>(flags.get_u64("p-bits", 61)),
          static_cast<unsigned>(flags.get_u64("q-bits", 40)), rng);
      return emit(group, flags);
    }
    if (backend == 256) {
      const auto group = dmw::num::Group256::generate(
          static_cast<unsigned>(flags.get_u64("p-bits", 250)),
          static_cast<unsigned>(flags.get_u64("q-bits", 160)), rng);
      return emit(group, flags);
    }
    DMW_ERROR() << "unknown backend (use 64 or 256)";
    return 1;
  } catch (const std::exception& error) {
    DMW_ERROR() << error.what() << " (run with --help for usage)";
    return 1;
  }
}
