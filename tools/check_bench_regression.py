#!/usr/bin/env python3
"""Compare a fresh bench_json run against the checked-in baseline.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json [--tolerance 0.25]
                              [--keys commit_ns,multiexp_ns]

Reads the two BENCH_commit.json-shaped files and compares the hot-path
timings per group backend. Only *slower* counts as a failure: a fresh value
may exceed the baseline by at most `tolerance` (fractional, default 25%).
Faster is reported but never fails — the baseline is a ratchet, refreshed by
checking in a new BENCH_commit.json when an optimization lands.

Exit status: 0 within tolerance, 1 regression(s), 2 usage/schema error.
Needs only the Python standard library.
"""

import argparse
import json
import sys

DEFAULT_KEYS = ("commit_ns", "multiexp_ns")
BACKENDS = ("group64", "group256")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as error:
        print(f"check_bench_regression: cannot load {path}: {error}",
              file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(
        description="fail when bench timings regress past a tolerance")
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--keys", default=",".join(DEFAULT_KEYS),
                        help="comma-separated timing keys to compare")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    keys = [k for k in args.keys.split(",") if k]

    regressions = 0
    compared = 0
    for backend in BACKENDS:
        base_be = baseline.get(backend)
        fresh_be = fresh.get(backend)
        if not isinstance(base_be, dict) or not isinstance(fresh_be, dict):
            print(f"check_bench_regression: backend '{backend}' missing "
                  f"from one of the inputs", file=sys.stderr)
            sys.exit(2)
        for key in keys:
            if key not in base_be or key not in fresh_be:
                print(f"check_bench_regression: key '{key}' missing under "
                      f"'{backend}'", file=sys.stderr)
                sys.exit(2)
            base_ns = float(base_be[key])
            fresh_ns = float(fresh_be[key])
            if base_ns <= 0:
                print(f"check_bench_regression: non-positive baseline for "
                      f"{backend}.{key}", file=sys.stderr)
                sys.exit(2)
            ratio = fresh_ns / base_ns
            compared += 1
            verdict = "ok"
            if ratio > 1.0 + args.tolerance:
                verdict = "REGRESSION"
                regressions += 1
            elif ratio < 1.0 - args.tolerance:
                verdict = "faster (consider refreshing the baseline)"
            print(f"{backend}.{key}: baseline {base_ns:.1f} ns, "
                  f"fresh {fresh_ns:.1f} ns, ratio {ratio:.3f} [{verdict}]")

    limit = 1.0 + args.tolerance
    print(f"compared {compared} timing(s), limit {limit:.2f}x baseline: "
          f"{regressions} regression(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
